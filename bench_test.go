package p2h

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark runs the corresponding harness experiment at a reduced
// scale so `go test -bench=.` completes on a laptop; cmd/p2hbench runs the
// full-scale versions (EXPERIMENTS.md records a full run). The rows/series
// each benchmark prints match the paper's layout; the per-op time measures
// the whole experiment.
//
// Micro-benchmarks for the individual indexes (build and query) follow the
// experiment benchmarks.

import (
	"testing"

	"p2h/internal/harness"
)

// benchCfg is the reduced-scale configuration for the experiment benchmarks:
// about a tenth of the default surrogate sizes, 10 queries per set, and two
// representative data sets (one low-dimensional clustered, one
// high-dimensional) unless the experiment pins its own.
func benchCfg(sets ...string) harness.Config {
	return harness.Config{
		Scale: 0.1,
		NQ:    10,
		K:     10,
		Seed:  1,
		Sets:  sets,
		Params: harness.Params{
			LeafSize: 100,
			HashM:    16,
			HashL:    2,
		},
	}
}

// runExperiment executes one harness experiment b.N times and reports the
// output once (verbose mode only).
func runExperiment(b *testing.B, name string, cfg harness.Config) {
	b.Helper()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = harness.RunExperiment(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

// BenchmarkTable2DatasetStats regenerates Table II (data set statistics).
func BenchmarkTable2DatasetStats(b *testing.B) {
	runExperiment(b, "table2", benchCfg())
}

// BenchmarkTable3Indexing regenerates Table III (indexing time and size for
// BC-Tree, Ball-Tree, NH and FH at lambda = d and 8d).
func BenchmarkTable3Indexing(b *testing.B) {
	runExperiment(b, "table3", benchCfg("Sift", "Cifar-10"))
}

// BenchmarkFig5TimeRecall regenerates Figure 5 (query time vs recall, k=10).
func BenchmarkFig5TimeRecall(b *testing.B) {
	runExperiment(b, "fig5", benchCfg("Sift", "Cifar-10"))
}

// BenchmarkFig6TimeVsK regenerates Figure 6 (query time vs k at ~80% recall).
func BenchmarkFig6TimeVsK(b *testing.B) {
	runExperiment(b, "fig6", benchCfg("Sift"))
}

// BenchmarkFig7BranchPreference regenerates Figure 7 (center vs lower-bound
// branch preference for Ball-Tree and BC-Tree).
func BenchmarkFig7BranchPreference(b *testing.B) {
	runExperiment(b, "fig7", benchCfg("Sift"))
}

// BenchmarkFig8BoundAblation regenerates Figure 8 (BC-Tree without the
// point-level cone/ball/both bounds).
func BenchmarkFig8BoundAblation(b *testing.B) {
	runExperiment(b, "fig8", benchCfg("Sift"))
}

// BenchmarkFig9LargeScale regenerates Figure 9 (the large-scale surrogates).
func BenchmarkFig9LargeScale(b *testing.B) {
	cfg := benchCfg() // Deep100M/Sift100M surrogates default to 200k; 0.1 -> 20k
	runExperiment(b, "fig9", cfg)
}

// BenchmarkFig10TimeProfile regenerates Figure 10 (per-phase time profile at
// ~90% recall on Cifar-10 and Sun).
func BenchmarkFig10TimeProfile(b *testing.B) {
	runExperiment(b, "fig10", benchCfg())
}

// BenchmarkFig11LeafSize regenerates Figure 11 (BC-Tree leaf size sweep).
func BenchmarkFig11LeafSize(b *testing.B) {
	runExperiment(b, "fig11", benchCfg("Sift"))
}

// BenchmarkAblationExtras regenerates the repository's extra ablations:
// collaborative inner products (Theorem 5) and the KD-Tree box bound.
func BenchmarkAblationExtras(b *testing.B) {
	runExperiment(b, "ablation", benchCfg("Sift"))
}

// --- micro-benchmarks -------------------------------------------------------

// benchData prepares a 10k x 128 clustered data set and queries outside the
// timed region.
func benchData(b *testing.B) (*Matrix, *Matrix) {
	b.Helper()
	data := Dedup(GenerateDataset("Sift", 10000, 1))
	queries := GenerateQueries(data, 64, 2)
	return data, queries
}

func BenchmarkBuildBallTree(b *testing.B) {
	data, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBallTree(data, BallTreeOptions{Seed: 1})
	}
}

func BenchmarkBuildBCTree(b *testing.B) {
	data, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBCTree(data, BCTreeOptions{Seed: 1})
	}
}

func BenchmarkBuildNH(b *testing.B) {
	data, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewNH(data, NHOptions{M: 16, Seed: 1})
	}
}

func BenchmarkBuildFH(b *testing.B) {
	data, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFH(data, FHOptions{M: 16, Seed: 1})
	}
}

// queryBench measures exact top-10 query latency, cycling over 64 queries.
func queryBench(b *testing.B, ix Index, queries *Matrix) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(queries.Row(i%queries.N), SearchOptions{K: 10})
	}
}

func BenchmarkQueryExactBallTree(b *testing.B) {
	data, queries := benchData(b)
	queryBench(b, NewBallTree(data, BallTreeOptions{Seed: 1}), queries)
}

func BenchmarkQueryExactBCTree(b *testing.B) {
	data, queries := benchData(b)
	queryBench(b, NewBCTree(data, BCTreeOptions{Seed: 1}), queries)
}

func BenchmarkQueryExactBallTreeQuant(b *testing.B) {
	data, queries := benchData(b)
	queryBench(b, NewBallTree(data, BallTreeOptions{Seed: 1, Quantize: true}), queries)
}

func BenchmarkQueryExactBCTreeQuant(b *testing.B) {
	data, queries := benchData(b)
	queryBench(b, NewBCTree(data, BCTreeOptions{Seed: 1, Quantize: true}), queries)
}

func BenchmarkQueryExactLinearScan(b *testing.B) {
	data, queries := benchData(b)
	queryBench(b, NewLinearScan(data), queries)
}

// budgetQueryBench measures latency at a 5% candidate budget.
func budgetQueryBench(b *testing.B, ix Index, queries *Matrix, n int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(queries.Row(i%queries.N), SearchOptions{K: 10, Budget: n / 20})
	}
}

func BenchmarkQueryBudgetBCTree(b *testing.B) {
	data, queries := benchData(b)
	budgetQueryBench(b, NewBCTree(data, BCTreeOptions{Seed: 1}), queries, data.N)
}

func BenchmarkQueryBudgetNH(b *testing.B) {
	data, queries := benchData(b)
	budgetQueryBench(b, NewNH(data, NHOptions{M: 16, Seed: 1}), queries, data.N)
}

func BenchmarkQueryBudgetFH(b *testing.B) {
	data, queries := benchData(b)
	budgetQueryBench(b, NewFH(data, FHOptions{M: 16, Seed: 1}), queries, data.N)
}

// BenchmarkSearchBatchExact is the headline number of the batched execution
// engine: one uncached batch of 64 exact top-10 queries on a BC-Tree,
// answered per query (the pre-engine SearchBatch behavior: a plain loop
// over Search) versus through the native shared batched traversal. Both
// variants run on one goroutine so the ratio isolates the engine's
// algorithmic effect — shared node visits, per-prefix multi-query leaf
// kernels, conversion-free float64 inner loops — rather than parallelism.
// Results of the two paths are bitwise identical (the equivalence tests pin
// this); only the execution differs.
func BenchmarkSearchBatchExact(b *testing.B) {
	data, _ := benchData(b)
	queries := GenerateQueries(data, 64, 2)
	ix := NewBCTree(data, BCTreeOptions{Seed: 1})
	opts := SearchOptions{K: 10}

	b.Run("perquery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for qi := 0; qi < queries.N; qi++ {
				ix.Search(queries.Row(qi), opts)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.SearchBatch(queries, opts)
		}
	})
}

// BenchmarkServerBatched measures the serving layer on a batchable index
// with the cache disabled: concurrent callers flood the dispatcher, whose
// micro-batch chunks run through the index's native SearchBatch. This is
// the uncached steady-state throughput of the full engine stack
// (dispatcher + worker pool + batched traversal).
func BenchmarkServerBatched(b *testing.B) {
	data, queries := benchData(b)
	ix := NewBCTree(data, BCTreeOptions{Seed: 1})
	srv := NewServer(ix, ServerOptions{CacheEntries: -1})
	defer srv.Close()
	opts := SearchOptions{K: 10}
	b.SetParallelism(8) // enough concurrent callers to fill micro-batches
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			srv.Search(queries.Row(i%queries.N), opts)
			i++
		}
	})
}

// BenchmarkServer compares three ways of answering the same exact top-10
// workload on one BC-Tree: a sequential single-query loop (the baseline),
// the micro-batching server with its result cache disabled (batching +
// worker parallelism alone), and the full server (batching + cache; the
// workload cycles over 64 distinct hyperplanes, so steady state is nearly
// all cache hits). The server variants drive one concurrent caller per
// GOMAXPROCS via RunParallel — the serving scenario the layer exists for.
func BenchmarkServer(b *testing.B) {
	data, queries := benchData(b)
	ix := NewBCTree(data, BCTreeOptions{Seed: 1})
	opts := SearchOptions{K: 10}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Search(queries.Row(i%queries.N), opts)
		}
	})
	serverBench := func(cacheEntries int) func(b *testing.B) {
		return func(b *testing.B) {
			srv := NewServer(ix, ServerOptions{CacheEntries: cacheEntries})
			defer srv.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					srv.Search(queries.Row(i%queries.N), opts)
					i++
				}
			})
		}
	}
	b.Run("server-nocache", serverBench(-1))
	b.Run("server-cached", serverBench(0))
}
