package p2h_test

// Batch-vs-sequential equivalence: p2h.SearchBatch and the native
// BatchIndex surfaces must return results bitwise identical (values and
// ordering) to per-query Search calls, across every execution regime —
// exact (shared batched traversal), budgeted and filtered (per-query
// fallback inside the batch), k > n, and any worker count. Exact results
// are canonical (the unique k smallest (Dist, ID) pairs; see internal/exec),
// which is what makes this equality exact rather than approximate.

import (
	"testing"

	p2h "p2h"
)

func equivIndexes(data *p2h.Matrix) map[string]p2h.Index {
	return map[string]p2h.Index{
		"balltree": p2h.NewBallTree(data, p2h.BallTreeOptions{Seed: 5}),
		"bctree":   p2h.NewBCTree(data, p2h.BCTreeOptions{Seed: 5}),
		"sharded":  p2h.NewSharded(data, p2h.ShardedOptions{Shards: 4, Seed: 5}),
		"dynamic":  p2h.NewDynamic(data, p2h.DynamicOptions{Seed: 5}), // no native batch: loop fallback
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1500, 7))
	queries := p2h.GenerateQueries(data, 40, 8)
	n := data.N

	cases := []struct {
		name string
		opts p2h.SearchOptions
	}{
		{"exact-k1", p2h.SearchOptions{K: 1}},
		{"exact-k10", p2h.SearchOptions{K: 10}},
		{"exact-kBig", p2h.SearchOptions{K: n + 10}}, // k > n
		{"budget", p2h.SearchOptions{K: 10, Budget: n / 20}},
		{"filtered", p2h.SearchOptions{K: 10, Filter: func(id int32) bool { return id%5 != 0 }}},
	}
	for name, ix := range equivIndexes(data) {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				want := make([][]p2h.Result, queries.N)
				for qi := 0; qi < queries.N; qi++ {
					want[qi], _ = ix.Search(queries.Row(qi), tc.opts)
				}
				for _, workers := range []int{1, 3} {
					got := p2h.SearchBatch(ix, queries, tc.opts, workers)
					requireEqualBatches(t, got, want)
				}
				if bi, ok := ix.(p2h.BatchIndex); ok {
					got, stats := bi.SearchBatch(queries, tc.opts)
					requireEqualBatches(t, got, want)
					if len(stats) != queries.N {
						t.Fatalf("stats length %d, want %d", len(stats), queries.N)
					}
				}
			})
		}
	}
}

func requireEqualBatches(t *testing.T, got, want [][]p2h.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d batches, want %d", len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i] != want[qi][i] {
				t.Fatalf("query %d rank %d: %+v != %+v (batched result must be bitwise identical)",
					qi, i, got[qi][i], want[qi][i])
			}
		}
	}
}

// TestSearchBatchNormalizesLikeSearch feeds deliberately unnormalized
// queries: the batched path must canonicalize them exactly as checkQuery
// does per query, including leaving the caller's matrix untouched.
func TestSearchBatchNormalizesLikeSearch(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 600, 9))
	queries := p2h.GenerateQueries(data, 10, 10)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		for i := range q {
			q[i] *= 3.5 // uniform rescale: same hyperplane, non-unit normal
		}
	}
	before := append([]float32(nil), queries.Data...)

	ix := p2h.NewBCTree(data, p2h.BCTreeOptions{Seed: 11})
	got, _ := ix.SearchBatch(queries, p2h.SearchOptions{K: 5})
	for qi := 0; qi < queries.N; qi++ {
		want, _ := ix.Search(queries.Row(qi), p2h.SearchOptions{K: 5})
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", qi, i, got[qi][i], want[i])
			}
		}
	}
	for i := range before {
		if queries.Data[i] != before[i] {
			t.Fatal("SearchBatch must not mutate the caller's query matrix")
		}
	}
}

func TestSearchBatchEmptyQueries(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 200, 12))
	ix := p2h.NewBallTree(data, p2h.BallTreeOptions{Seed: 13})
	empty := &p2h.Matrix{N: 0, D: data.D + 1}
	if out := p2h.SearchBatch(ix, empty, p2h.SearchOptions{K: 3}, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}
