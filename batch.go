package p2h

import (
	"fmt"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// BatchIndex is the optional batched execution surface of an index: a native
// SearchBatch answers a whole group of queries in one shared traversal
// (internal/exec) instead of a per-query loop, amortizing node visits and
// leaf verification across the group. BallTree, BCTree and Sharded implement
// it; p2h.SearchBatch and the Server route through it automatically.
type BatchIndex interface {
	Index
	// SearchBatch answers one top-k query per row of queries (each row a
	// hyperplane (w; b), exactly as Search takes). Results and their
	// ordering are identical to per-query Search calls; the per-query Stats
	// reflect the work actually performed, which the shared traversal
	// distributes differently than a per-query loop would.
	SearchBatch(queries *Matrix, opts SearchOptions) ([][]Result, []Stats)
}

// checkQueryBatch validates a batch of hyperplane queries over d-dimensional
// points and rescales any row without a unit normal, copying the matrix at
// most once. Validation and the normalization band go through the same
// checked core as checkQuery (core.CheckQuery, core.UnitNormBand), so
// batched and per-query paths see bit-identical canonical queries.
func checkQueryBatch(queries *Matrix, d int) *Matrix {
	if queries.D != d+1 {
		panic(fmt.Sprintf("p2h: %v: batch queries have dimension %d, want %d (normal) + 1 (offset)",
			core.ErrDimMismatch, queries.D, d+1))
	}
	out := queries
	for i := 0; i < queries.N; i++ {
		n, err := core.CheckQuery(out.Row(i), d)
		if err != nil {
			panic("p2h: " + err.Error())
		}
		if core.UnitNormBand(n) {
			continue
		}
		if out == queries {
			out = queries.Clone()
		}
		vec.Scale(out.Row(i), 1/n)
	}
	return out
}

// SearchBatch implements BatchIndex: one shared Ball-Tree traversal for the
// whole batch.
func (t *BallTree) SearchBatch(queries *Matrix, opts SearchOptions) ([][]Result, []Stats) {
	return t.tree.SearchBatch(checkQueryBatch(queries, t.raw), opts)
}

// SearchBatch implements BatchIndex: one shared BC-Tree traversal for the
// whole batch.
func (t *BCTree) SearchBatch(queries *Matrix, opts SearchOptions) ([][]Result, []Stats) {
	return t.tree.SearchBatch(checkQueryBatch(queries, t.raw), opts)
}

// SearchBatch implements BatchIndex: every shard serves the whole batch
// through its shared traversal and the per-shard answers merge exactly per
// query. Shard fan-out uses at most ShardedOptions.Workers goroutines.
func (t *Sharded) SearchBatch(queries *Matrix, opts SearchOptions) ([][]Result, []Stats) {
	return t.index.SearchBatch(checkQueryBatch(queries, t.raw), opts)
}

// Interface conformance checks.
var (
	_ BatchIndex = (*BallTree)(nil)
	_ BatchIndex = (*BCTree)(nil)
	_ BatchIndex = (*Sharded)(nil)
)
