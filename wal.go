package p2h

import (
	"errors"
	"fmt"
	"os"

	"p2h/internal/attr"
	"p2h/internal/binio"
	"p2h/internal/dynamic"
)

// WALSyncMode is the write-ahead log's fsync policy.
type WALSyncMode int

const (
	// WALSyncAlways fsyncs every record before the mutation is
	// acknowledged: acknowledged writes survive even a machine crash.
	WALSyncAlways WALSyncMode = iota
	// WALSyncNone leaves flushing to the OS: acknowledged writes survive a
	// process crash but a machine crash may lose a recent suffix.
	WALSyncNone
)

// String returns the policy's flag/config name ("always" or "none").
func (m WALSyncMode) String() string {
	if m == WALSyncNone {
		return "none"
	}
	return "always"
}

// ParseWALSyncMode resolves the textual policy names used by flags and
// config files ("always", "none").
func ParseWALSyncMode(s string) (WALSyncMode, error) {
	switch s {
	case "", "always":
		return WALSyncAlways, nil
	case "none":
		return WALSyncNone, nil
	}
	return 0, fmt.Errorf("p2h: unknown wal sync mode %q (want always or none)", s)
}

func (m WALSyncMode) internal() dynamic.WALSync {
	if m == WALSyncNone {
		return dynamic.WALSyncNone
	}
	return dynamic.WALSyncAlways
}

// WALPath is the sidecar naming convention: the write-ahead log of the
// index container at path lives next to it as path + ".wal".
func WALPath(path string) string { return path + ".wal" }

// WAL is a write-ahead log attached to a Dynamic index. Pass it to
// NewServer through ServerOptions.WAL: every Insert/Delete the server
// applies is appended (and, under WALSyncAlways, fsynced) before the call
// returns, Server.Snapshot truncates the log atomically with the snapshot,
// and Open replays a pending log on top of its container — so a crash
// between snapshots loses no acknowledged mutation.
//
// Appends are serialized by the engine's mutation lock; the counters are
// safe to read concurrently.
type WAL struct {
	d        *Dynamic
	wal      *dynamic.WAL
	replayed int
}

// AttachWAL opens — creating if absent — the write-ahead log at path for
// ix, which must be a Dynamic index. Records already in the log (mutations
// acknowledged before a crash, less anything a later snapshot absorbed) are
// replayed into ix first, so the index is at its exact pre-crash state when
// AttachWAL returns; Replayed reports how many records were applied. A
// structurally corrupt log returns an error wrapping ErrFormat.
func AttachWAL(ix Index, path string, mode WALSyncMode) (*WAL, error) {
	d, ok := ix.(*Dynamic)
	if !ok {
		return nil, fmt.Errorf("p2h: write-ahead logging requires a dynamic index, got %s", KindOf(ix))
	}
	applied, err := replayWAL(d, path)
	if err != nil {
		return nil, err
	}
	w, _, err := dynamic.OpenWAL(path, d.raw, uint64(d.Handles()), mode.internal())
	if err != nil {
		return nil, wrapWALErr(path, err)
	}
	return &WAL{d: d, wal: w, replayed: applied}, nil
}

// replayWAL applies the pending records of the log at path to d. The first
// pass decodes the whole file — verifying every checksum and reading the
// header — before any record is applied, so a log that turns out corrupt
// halfway never leaves the index half-replayed; the second pass applies.
// A missing log (or a truncation remnant) replays zero records.
func replayWAL(d *Dynamic, path string) (int, error) {
	rep, err := dynamic.DecodeWALFile(path, nil)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, wrapWALErr(path, err)
	}
	if rep.Records == 0 {
		return 0, nil
	}
	if rep.Header.Dim != d.raw {
		return 0, fmt.Errorf("%w: wal %s holds %d-dimensional points, index holds %d",
			ErrFormat, path, rep.Header.Dim, d.raw)
	}
	if rep.Header.Base > uint64(d.Handles()) {
		// The log was truncated against a snapshot newer than this one:
		// mutations between the two are in neither file. Refuse rather than
		// resurrect a partial history.
		return 0, fmt.Errorf("%w: wal %s was truncated at handle %d but the index only reaches %d (stale snapshot?)",
			ErrFormat, path, rep.Header.Base, d.Handles())
	}

	applied := 0
	_, err = dynamic.DecodeWALFile(path, func(op byte, handle int32, v []float32, attrs []byte) error {
		h := d.Handles()
		switch op {
		case dynamic.WALOpInsert, dynamic.WALOpInsertAttrs:
			switch {
			case int(handle) < h:
				// Already inside the snapshot: the crash hit between the
				// snapshot rename and the log truncation. Skip.
			case int(handle) == h:
				var got int32
				if op == dynamic.WALOpInsertAttrs {
					pt, perr := attr.DecodePoint(attrs)
					if perr != nil {
						return fmt.Errorf("%w: wal %s: record for handle %d: %v",
							ErrFormat, path, handle, perr)
					}
					got = d.InsertWithAttrs(v, *pt)
				} else {
					got = d.Insert(v)
				}
				if got != handle {
					return fmt.Errorf("%w: wal %s: replayed insert got handle %d, want %d",
						ErrFormat, path, got, handle)
				}
				applied++
			default:
				return fmt.Errorf("%w: wal %s: record skips from handle %d to %d",
					ErrFormat, path, h, handle)
			}
		case dynamic.WALOpDelete:
			// Deletes are idempotent: one covered by the snapshot finds the
			// handle already dead (or, for a snapshot that also compacted it
			// away, out of range) and is a no-op.
			if int(handle) < h && d.Delete(handle) {
				applied++
			}
		}
		return nil
	})
	if err != nil {
		return applied, wrapWALErr(path, err)
	}
	return applied, nil
}

func wrapWALErr(path string, err error) error {
	if errors.Is(err, binio.ErrCorrupt) {
		return fmt.Errorf("%w: wal %s: %v", ErrFormat, path, err)
	}
	return err
}

// AppendInsert logs an applied insert; the serving engine calls it under
// the mutation lock (it implements server.Journal).
func (w *WAL) AppendInsert(handle int32, p []float32) error {
	return w.wal.AppendInsert(handle, p)
}

// AppendInsertAttrs logs an applied attributed insert (the payload travels
// with the vector so a replay restores both).
func (w *WAL) AppendInsertAttrs(handle int32, p []float32, at PointAttrs) error {
	return w.wal.AppendInsertAttrs(handle, p, attr.AppendPoint(nil, &at))
}

// AppendDelete logs an applied delete.
func (w *WAL) AppendDelete(handle int32) error { return w.wal.AppendDelete(handle) }

// WaitDurable blocks until every record appended before the call is on disk
// (a no-op under WALSyncNone). The serving engine calls it after releasing
// the mutation lock, so concurrent mutations share one fsync — group commit.
func (w *WAL) WaitDurable() error { return w.wal.WaitDurable() }

// Records returns the number of pending records — acknowledged mutations
// not yet absorbed by a snapshot. Safe to call concurrently with appends.
func (w *WAL) Records() int64 { return w.wal.Records() }

// Syncs returns how many fsyncs the group-commit path has issued; the ratio
// Records-ever-appended to Syncs is the group-commit amortization factor.
func (w *WAL) Syncs() int64 { return w.wal.Syncs() }

// Replayed reports how many pending records AttachWAL applied to the index
// when the log was opened.
func (w *WAL) Replayed() int { return w.replayed }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.wal.Path() }

// SyncMode returns the fsync policy the log was attached with.
func (w *WAL) SyncMode() WALSyncMode {
	if w.wal.Mode() == dynamic.WALSyncNone {
		return WALSyncNone
	}
	return WALSyncAlways
}

// truncate empties the log after a snapshot persisted every record; called
// by Server.Snapshot under the exclusive lock.
func (w *WAL) truncate() error { return w.wal.TruncateTo(uint64(w.d.Handles())) }

// Close syncs and closes the log file. The serving stack must be drained
// first: an append after Close fails (and the failed mutation is reported
// to its caller, never silently dropped).
func (w *WAL) Close() error { return w.wal.Close() }

// CountWALRecords reports how many pending records the log at path holds,
// without an index to replay into — the cheap existence/backlog probe used
// by Inspect. A missing or remnant-only file reports zero; a corrupt one
// returns an error wrapping ErrFormat.
func CountWALRecords(path string) (int, error) {
	rep, err := dynamic.DecodeWALFile(path, nil)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, wrapWALErr(path, err)
	}
	return rep.Records, nil
}
