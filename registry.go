package p2h

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"p2h/internal/balltree"
	"p2h/internal/bctree"
	"p2h/internal/dynamic"
	"p2h/internal/fh"
	"p2h/internal/kdtree"
	"p2h/internal/linearscan"
	"p2h/internal/nh"
	"p2h/internal/quant"
	"p2h/internal/shard"
)

// ErrUnknownKind is returned by New, Open and Load when Spec.Kind (or a
// container's kind tag) names no registered index backend.
var ErrUnknownKind = errors.New("p2h: unknown index kind")

// IndexKind describes one index backend to the registry: how to build it
// from a Spec and — for persistable kinds — how to serialize and restore it.
// The built-in kinds register themselves at init; RegisterKind adds new
// backends, which then work everywhere a kind name is accepted (p2h.New,
// p2h.Open, the cmd/ tools' -index and -spec flags).
type IndexKind struct {
	// Name is the canonical kind name (lowercase; see the Kind* constants).
	Name string
	// Aliases are alternative names resolving to this kind.
	Aliases []string
	// Description is a one-line summary for tool usage strings.
	Description string

	// Build constructs the index. It must validate its inputs and return
	// errors rather than panic.
	Build func(data *Matrix, spec Spec) (Index, error)

	// Save writes the index payload (the bytes following the container
	// header). Nil marks a build-only kind; BuildOnly must then say why.
	Save func(w io.Writer, ix Index) error
	// Load restores a payload written by Save. spec is the Spec recorded
	// in the container header (informational for self-contained payloads).
	Load func(r io.Reader, spec Spec) (Index, error)
	// Owns reports whether ix is an instance of this kind; it backs
	// KindOf and the Save dispatch. Required when Save is set.
	Owns func(ix Index) bool
	// SpecOf reconstructs the Spec recorded in a saved container from a
	// built index (construction-only fields such as Seed are not
	// recoverable and stay zero). Required when Save is set.
	SpecOf func(ix Index) Spec

	// BuildOnly documents why the kind has no persistence (for example
	// "cheaper to rebuild than to store"). Exactly one of Load/BuildOnly
	// must be set: every registered kind either round-trips through
	// Save/Load or carries this marker.
	BuildOnly string
}

// registry maps kind names (and aliases) to their descriptors. Guarded by a
// mutex so RegisterKind is safe from init functions and tests.
var registry = struct {
	sync.RWMutex
	kinds map[string]*IndexKind // canonical name -> kind
	alias map[string]string     // alias -> canonical name
}{
	kinds: make(map[string]*IndexKind),
	alias: make(map[string]string),
}

// normalizeKindName canonicalizes user-supplied kind names.
func normalizeKindName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// RegisterKind adds an index backend to the registry. It returns an error on
// an invalid descriptor (missing Name or Build, persistence hooks half-set,
// neither loader nor BuildOnly marker) or a name collision. Registered kinds
// are immediately usable by New, Open, Save and the cmd/ tools.
func RegisterKind(k IndexKind) error {
	k.Name = normalizeKindName(k.Name)
	if k.Name == "" {
		return errors.New("p2h: RegisterKind: empty kind name")
	}
	if k.Build == nil {
		return fmt.Errorf("p2h: RegisterKind %q: Build is required", k.Name)
	}
	if (k.Save == nil) != (k.Load == nil) {
		return fmt.Errorf("p2h: RegisterKind %q: Save and Load must both be set or both nil", k.Name)
	}
	if k.Save != nil && (k.Owns == nil || k.SpecOf == nil) {
		return fmt.Errorf("p2h: RegisterKind %q: persistable kinds require Owns and SpecOf", k.Name)
	}
	if k.Load == nil && k.BuildOnly == "" {
		return fmt.Errorf("p2h: RegisterKind %q: kinds without a loader must document BuildOnly", k.Name)
	}
	if k.Load != nil && k.BuildOnly != "" {
		return fmt.Errorf("p2h: RegisterKind %q: BuildOnly set on a persistable kind", k.Name)
	}

	registry.Lock()
	defer registry.Unlock()
	names := append([]string{k.Name}, k.Aliases...)
	for i, name := range names {
		names[i] = normalizeKindName(name)
		if _, dup := registry.kinds[names[i]]; dup {
			return fmt.Errorf("p2h: RegisterKind %q: name %q already registered", k.Name, names[i])
		}
		if _, dup := registry.alias[names[i]]; dup {
			return fmt.Errorf("p2h: RegisterKind %q: name %q already registered as an alias", k.Name, names[i])
		}
	}
	registry.kinds[k.Name] = &k
	for _, a := range names[1:] {
		registry.alias[a] = k.Name
	}
	return nil
}

// mustRegisterKind backs the built-in registrations.
func mustRegisterKind(k IndexKind) {
	if err := RegisterKind(k); err != nil {
		panic(err)
	}
}

// lookupKind resolves a kind name or alias.
func lookupKind(name string) (*IndexKind, error) {
	n := normalizeKindName(name)
	registry.RLock()
	defer registry.RUnlock()
	if canon, ok := registry.alias[n]; ok {
		n = canon
	}
	if k, ok := registry.kinds[n]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownKind, name, strings.Join(kindNamesLocked(), ", "))
}

// kindOwning finds the registered kind an index instance belongs to.
func kindOwning(ix Index) *IndexKind {
	registry.RLock()
	defer registry.RUnlock()
	for _, name := range kindNamesLocked() {
		k := registry.kinds[name]
		if k.Owns != nil && k.Owns(ix) {
			return k
		}
	}
	return nil
}

// kindNamesLocked returns the sorted canonical names; callers hold the lock.
func kindNamesLocked() []string {
	names := make([]string, 0, len(registry.kinds))
	for name := range registry.kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Kinds returns the sorted canonical names of every registered index kind.
func Kinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	return kindNamesLocked()
}

// KindOf reports the registered kind name of a built index, or "" when no
// registered kind owns it.
func KindOf(ix Index) string {
	if k := kindOwning(ix); k != nil {
		return k.Name
	}
	return ""
}

// KindIsPersistable reports whether the named kind round-trips through
// Save/Load; for build-only kinds the second result documents why not.
func KindIsPersistable(name string) (persistable bool, buildOnly string, err error) {
	k, err := lookupKind(name)
	if err != nil {
		return false, "", err
	}
	return k.Load != nil, k.BuildOnly, nil
}

// The built-in backends. Each Build owns the validation and construction
// that used to live in its New* constructor; the constructors are now thin
// panicking wrappers over New, so the registry is the only construction
// path.
func init() {
	mustRegisterKind(IndexKind{
		Name:        KindBallTree,
		Aliases:     []string{"ball"},
		Description: "the paper's Ball-Tree branch-and-bound index (Section III)",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindBallTree, data, spec); err != nil {
				return nil, err
			}
			tree := balltree.Build(data.AppendOnes(), balltree.Config{
				LeafSize: spec.LeafSize, Seed: spec.Seed, Quantize: spec.Quantize,
			})
			return &BallTree{tree: tree, raw: data.D}, nil
		},
		Save: func(w io.Writer, ix Index) error { return ix.(*BallTree).tree.Save(w) },
		Load: func(r io.Reader, _ Spec) (Index, error) {
			tree, err := balltree.Load(r)
			if err != nil {
				return nil, err
			}
			return &BallTree{tree: tree, raw: tree.Dim() - 1}, nil
		},
		Owns: func(ix Index) bool { _, ok := ix.(*BallTree); return ok },
		SpecOf: func(ix Index) Spec {
			t := ix.(*BallTree)
			return Spec{Kind: KindBallTree, LeafSize: t.tree.LeafSize(), Quantize: t.tree.Quantized()}
		},
	})

	mustRegisterKind(IndexKind{
		Name:        KindBCTree,
		Aliases:     []string{"bc"},
		Description: "BC-Tree: Ball-Tree plus point-level ball/cone bounds (Section IV)",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindBCTree, data, spec); err != nil {
				return nil, err
			}
			tree := bctree.Build(data.AppendOnes(), bctree.Config{
				LeafSize: spec.LeafSize, Seed: spec.Seed, Quantize: spec.Quantize,
			})
			return &BCTree{tree: tree, raw: data.D}, nil
		},
		Save: func(w io.Writer, ix Index) error { return ix.(*BCTree).tree.Save(w) },
		Load: func(r io.Reader, _ Spec) (Index, error) {
			tree, err := bctree.Load(r)
			if err != nil {
				return nil, err
			}
			return &BCTree{tree: tree, raw: tree.Dim() - 1}, nil
		},
		Owns: func(ix Index) bool { _, ok := ix.(*BCTree); return ok },
		SpecOf: func(ix Index) Spec {
			t := ix.(*BCTree)
			return Spec{Kind: KindBCTree, LeafSize: t.tree.LeafSize(), Quantize: t.tree.Quantized()}
		},
	})

	mustRegisterKind(IndexKind{
		Name:        KindKDTree,
		Aliases:     []string{"kd"},
		Description: "KD-Tree bounding-box alternative (the paper's Section III-A ablation)",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindKDTree, data, spec); err != nil {
				return nil, err
			}
			tree := kdtree.Build(data.AppendOnes(), kdtree.Config{LeafSize: spec.LeafSize})
			return &KDTree{tree: tree, raw: data.D}, nil
		},
		Save: func(w io.Writer, ix Index) error { return ix.(*KDTree).tree.Save(w) },
		Load: func(r io.Reader, _ Spec) (Index, error) {
			tree, err := kdtree.Load(r)
			if err != nil {
				return nil, err
			}
			return &KDTree{tree: tree, raw: tree.Dim() - 1}, nil
		},
		Owns: func(ix Index) bool { _, ok := ix.(*KDTree); return ok },
		SpecOf: func(ix Index) Spec {
			t := ix.(*KDTree)
			return Spec{Kind: KindKDTree, LeafSize: t.tree.LeafSize()}
		},
	})

	mustRegisterKind(IndexKind{
		Name:        KindSharded,
		Aliases:     []string{"shard"},
		Description: "parallel BC-Tree: compact shards searched over a goroutine pool",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindSharded, data, spec); err != nil {
				return nil, err
			}
			ix := shard.Build(data.AppendOnes(), shard.Config{
				Shards:   spec.Shards,
				LeafSize: spec.LeafSize,
				Seed:     spec.Seed,
				Workers:  spec.Workers,
				Quantize: spec.Quantize,
			})
			return &Sharded{index: ix, raw: data.D}, nil
		},
		Save: func(w io.Writer, ix Index) error { return ix.(*Sharded).index.Save(w) },
		Load: func(r io.Reader, _ Spec) (Index, error) {
			ix, err := shard.Load(r)
			if err != nil {
				return nil, err
			}
			return &Sharded{index: ix, raw: ix.Dim() - 1}, nil
		},
		Owns: func(ix Index) bool { _, ok := ix.(*Sharded); return ok },
		SpecOf: func(ix Index) Spec {
			t := ix.(*Sharded)
			return Spec{
				Kind:     KindSharded,
				LeafSize: t.index.LeafSize(),
				Shards:   t.index.Shards(),
				Workers:  t.index.Workers(),
				Quantize: t.index.Quantized(),
			}
		},
	})

	mustRegisterKind(IndexKind{
		Name:        KindDynamic,
		Aliases:     []string{"dyn"},
		Description: "mutable BC-Tree: snapshot plus insert buffer and tombstones",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			cfg := dynamic.Config{
				LeafSize:        spec.LeafSize,
				Seed:            spec.Seed,
				RebuildFraction: spec.RebuildFraction,
				CompactFraction: spec.CompactFraction,
			}
			d := spec.Dim
			if data != nil && data.N > 0 {
				if d != 0 && d != data.D {
					return nil, fmt.Errorf("%w: dynamic: Spec.Dim %d contradicts data dimension %d",
						ErrDimMismatch, d, data.D)
				}
				d = data.D
			}
			if d <= 0 {
				return nil, fmt.Errorf("%w: dynamic: empty start requires a positive Spec.Dim",
					ErrDimMismatch)
			}
			if data == nil || data.N == 0 {
				return &Dynamic{index: dynamic.New(d+1, cfg), raw: d}, nil
			}
			return &Dynamic{index: dynamic.NewFromMatrix(data.AppendOnes(), cfg), raw: data.D}, nil
		},
		Save: func(w io.Writer, ix Index) error { return ix.(*Dynamic).index.Save(w) },
		Load: func(r io.Reader, spec Spec) (Index, error) {
			ix, err := dynamic.Load(r)
			if err != nil {
				return nil, err
			}
			// The payload format predates CompactFraction; the container
			// header's Spec carries it across Save/Load.
			if spec.CompactFraction > 0 {
				ix.SetCompactFraction(spec.CompactFraction)
			}
			return &Dynamic{index: ix, raw: ix.Dim() - 1}, nil
		},
		Owns: func(ix Index) bool { _, ok := ix.(*Dynamic); return ok },
		SpecOf: func(ix Index) Spec {
			t := ix.(*Dynamic)
			cfg := t.index.Configuration()
			return Spec{
				Kind:            KindDynamic,
				LeafSize:        cfg.LeafSize,
				Seed:            cfg.Seed,
				RebuildFraction: cfg.RebuildFraction,
				CompactFraction: cfg.CompactFraction,
				Dim:             t.raw,
			}
		},
	})

	mustRegisterKind(IndexKind{
		Name:        KindNH,
		Description: "NH nearest-hyperplane hashing baseline (SIGMOD 2021)",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindNH, data, spec); err != nil {
				return nil, err
			}
			ix := nh.Build(data.AppendOnes(), nh.Config{
				Lambda: spec.Lambda, M: spec.M, L: spec.L, Seed: spec.Seed,
			})
			return &NH{index: ix, raw: data.D}, nil
		},
		Owns:      func(ix Index) bool { _, ok := ix.(*NH); return ok },
		BuildOnly: "randomized hash tables are cheaper to rebuild from the data (deterministic in Seed) than to store",
	})

	mustRegisterKind(IndexKind{
		Name:        KindFH,
		Description: "FH furthest-hyperplane hashing baseline (SIGMOD 2021)",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindFH, data, spec); err != nil {
				return nil, err
			}
			ix := fh.Build(data.AppendOnes(), fh.Config{
				Lambda: spec.Lambda, M: spec.M, L: spec.L, B: spec.B, Seed: spec.Seed,
			})
			return &FH{index: ix, raw: data.D}, nil
		},
		Owns:      func(ix Index) bool { _, ok := ix.(*FH); return ok },
		BuildOnly: "randomized hash tables are cheaper to rebuild from the data (deterministic in Seed) than to store",
	})

	mustRegisterKind(IndexKind{
		Name:        KindLinearScan,
		Aliases:     []string{"scan", "linear"},
		Description: "exhaustive exact baseline with no index structure",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindLinearScan, data, spec); err != nil {
				return nil, err
			}
			return &LinearScan{scan: linearscan.New(data.AppendOnes()), raw: data.D}, nil
		},
		Owns:      func(ix Index) bool { _, ok := ix.(*LinearScan); return ok },
		BuildOnly: "holds nothing beyond the data matrix; persist the data with SaveFvecs instead",
	})

	mustRegisterKind(IndexKind{
		Name:        KindQuantizedScan,
		Aliases:     []string{"quant", "qscan"},
		Description: "exact exhaustive baseline over 8-bit quantized codes",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData(KindQuantizedScan, data, spec); err != nil {
				return nil, err
			}
			return &QuantizedScan{scan: quant.NewScan(data.AppendOnes()), raw: data.D}, nil
		},
		Owns:      func(ix Index) bool { _, ok := ix.(*QuantizedScan); return ok },
		BuildOnly: "codes are derived from the data deterministically; persist the data with SaveFvecs instead",
	})
}
