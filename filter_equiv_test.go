package p2h_test

// Byte-equality property tests for filtered search at the public API
// boundary: for every kind, every option shape and a selectivity sweep
// (including predicates matching nothing), a search with SearchOptions.Pred
// must return results bitwise identical to the same search with an
// equivalent post-filter closure. The tree kinds answer the Pred form with
// subtree pushdown, so this is the soundness gate for the per-node summary
// skipping; DESIGN.md's "Filtered search" section derives why equality holds
// down to the float bits.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	p2h "p2h"
)

// attrsFor deterministically assigns attribute payloads to n rows: tags at
// ~1%, ~10% and ~50% selectivity, a dense float field and a small int field,
// with a sprinkling of fully empty payloads to exercise the presence
// bitmaps.
func attrsFor(n int) []p2h.PointAttrs {
	points := make([]p2h.PointAttrs, n)
	for i := range points {
		if i%13 == 5 {
			continue // no tags, no fields
		}
		var tags []string
		if i%100 == 0 {
			tags = append(tags, "hot")
		}
		if i%10 == 0 {
			tags = append(tags, "warm")
		}
		if i%2 == 0 {
			tags = append(tags, "even")
		}
		points[i] = p2h.PointAttrs{
			Tags:   tags,
			Floats: map[string]float64{"score": float64(i%1000) / 1000},
			Ints:   map[string]int64{"cat": int64(i % 7)},
		}
	}
	return points
}

// equivPreds is the selectivity sweep: the label notes the approximate match
// fraction. The last two match nothing at all.
func equivPreds() []struct {
	name string
	pred *p2h.Pred
} {
	return []struct {
		name string
		pred *p2h.Pred
	}{
		{"tag1pct", p2h.TagIs("hot")},
		{"tag10pct", p2h.TagIs("warm")},
		{"tag50pct", p2h.TagIs("even")},
		{"range10pct", p2h.FieldBetween("score", 0, 0.099)},
		{"range50pct", p2h.FieldAtMost("score", 0.499)},
		{"intfield", p2h.FieldBetween("cat", 2, 3)},
		{"and", p2h.AllOf(p2h.TagIs("even"), p2h.FieldAtLeast("score", 0.5))},
		{"or", p2h.OneOf(p2h.TagIs("hot"), p2h.FieldBetween("score", 0.2, 0.25))},
		{"not", p2h.NotOf(p2h.TagIs("even"))},
		{"empty-tag", p2h.TagIs("absent")},
		{"empty-range", p2h.FieldBetween("score", 2, 3)},
	}
}

// postFilter is the reference implementation a Pred search must match byte
// for byte: evaluate the predicate per row, through a plain Filter closure.
func postFilter(pred *p2h.Pred, points []p2h.PointAttrs) p2h.SearchOptions {
	return p2h.SearchOptions{Filter: func(id int32) bool { return pred.Matches(points[id]) }}
}

func allKindSpecs() map[string]p2h.Spec {
	specs := map[string]p2h.Spec{}
	for _, kind := range []string{
		p2h.KindBallTree, p2h.KindBCTree, p2h.KindKDTree, p2h.KindSharded,
		p2h.KindDynamic, p2h.KindNH, p2h.KindFH, p2h.KindLinearScan,
		p2h.KindQuantizedScan,
	} {
		spec := p2h.Spec{Kind: kind, Seed: 7, LeafSize: 64}
		if kind == p2h.KindSharded {
			spec.Shards = 4
			spec.Workers = 1
		}
		specs[kind] = spec
	}
	return specs
}

// TestPredEquivalence sweeps kinds x predicates x option shapes through the
// single-query path.
func TestPredEquivalence(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1500, 11))
	queries := p2h.GenerateQueries(data, 15, 12)
	points := attrsFor(data.N)

	shapes := []struct {
		name string
		opts p2h.SearchOptions
	}{
		{"exact", p2h.SearchOptions{K: 10}},
		{"kBig", p2h.SearchOptions{K: data.N + 3}},
		{"budget", p2h.SearchOptions{K: 10, Budget: 120}},
	}
	for kind, spec := range allKindSpecs() {
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2h.AttachAttributes(ix, points); err != nil {
			t.Fatalf("%s: attach: %v", kind, err)
		}
		for _, pc := range equivPreds() {
			for _, shape := range shapes {
				t.Run(kind+"/"+pc.name+"/"+shape.name, func(t *testing.T) {
					for qi := 0; qi < queries.N; qi++ {
						q := queries.Row(qi)
						wantOpts := postFilter(pc.pred, points)
						wantOpts.K, wantOpts.Budget = shape.opts.K, shape.opts.Budget
						want, _ := ix.Search(q, wantOpts)
						gotOpts := shape.opts
						gotOpts.Pred = pc.pred
						got, _ := ix.Search(q, gotOpts)
						requireIdentical(t, pc.name, got, want)
					}
				})
			}
		}
	}
}

// TestPredEquivalenceQuantized repeats the sweep on the quantized leaf
// mirrors: the pred-aware code-select path must stay exact.
func TestPredEquivalenceQuantized(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1500, 21))
	queries := p2h.GenerateQueries(data, 15, 22)
	points := attrsFor(data.N)

	for _, kind := range []string{p2h.KindBallTree, p2h.KindBCTree, p2h.KindSharded} {
		spec := p2h.Spec{Kind: kind, Seed: 7, LeafSize: 64, Quantize: true}
		if kind == p2h.KindSharded {
			spec.Shards = 4
			spec.Workers = 1
		}
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2h.AttachAttributes(ix, points); err != nil {
			t.Fatal(err)
		}
		for _, pc := range equivPreds() {
			t.Run(kind+"/"+pc.name, func(t *testing.T) {
				for qi := 0; qi < queries.N; qi++ {
					q := queries.Row(qi)
					wantOpts := postFilter(pc.pred, points)
					wantOpts.K = 10
					want, _ := ix.Search(q, wantOpts)
					got, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: pc.pred})
					requireIdentical(t, pc.name, got, want)
				}
			})
		}
	}
}

// TestPredEquivalenceBatched drives predicates through SearchBatch on every
// kind: batched answers must match per-query post-filtered answers.
func TestPredEquivalenceBatched(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1200, 31))
	queries := p2h.GenerateQueries(data, 20, 32)
	points := attrsFor(data.N)

	for kind, spec := range allKindSpecs() {
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2h.AttachAttributes(ix, points); err != nil {
			t.Fatal(err)
		}
		for _, pc := range equivPreds() {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", kind, pc.name, workers), func(t *testing.T) {
					got := p2h.SearchBatch(ix, queries, p2h.SearchOptions{K: 10, Pred: pc.pred}, workers)
					for qi := 0; qi < queries.N; qi++ {
						wantOpts := postFilter(pc.pred, points)
						wantOpts.K = 10
						want, _ := ix.Search(queries.Row(qi), wantOpts)
						requireIdentical(t, pc.name, got[qi], want)
					}
				})
			}
		}
	}
}

// TestPredWithUserFilter composes Pred with a caller Filter: the predicate
// applies first, then the closure, identically to one closure testing both.
func TestPredWithUserFilter(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 800, 41))
	queries := p2h.GenerateQueries(data, 10, 42)
	points := attrsFor(data.N)
	pred := p2h.TagIs("warm")

	for kind, spec := range allKindSpecs() {
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2h.AttachAttributes(ix, points); err != nil {
			t.Fatal(err)
		}
		t.Run(kind, func(t *testing.T) {
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				want, _ := ix.Search(q, p2h.SearchOptions{K: 10, Filter: func(id int32) bool {
					return pred.Matches(points[id]) && id%3 == 0
				}})
				got, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: pred, Filter: func(id int32) bool {
					return id%3 == 0
				}})
				requireIdentical(t, kind, got, want)
			}
		})
	}
}

// TestPredWithoutAttrs pins the no-store semantics: every payload reads as
// empty, so a predicate the empty payload satisfies keeps all results and
// one it fails returns none — on every kind, without a search panic.
func TestPredWithoutAttrs(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 600, 51))
	q := p2h.GenerateQueries(data, 1, 52).Row(0)

	for kind, spec := range allKindSpecs() {
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(kind, func(t *testing.T) {
			plain, _ := ix.Search(q, p2h.SearchOptions{K: 10})
			all, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: p2h.NotOf(p2h.TagIs("x"))})
			requireIdentical(t, "matches-empty", all, plain)
			none, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: p2h.TagIs("x")})
			if len(none) != 0 {
				t.Fatalf("predicate over no attributes returned %d results", len(none))
			}
		})
	}
}

// TestPredPushdownSkips proves the tentpole is actually engaged: a selective
// predicate on a tree kind must skip whole subtrees, visible in the Stats
// counters.
func TestPredPushdownSkips(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 4000, 61))
	q := p2h.GenerateQueries(data, 1, 62).Row(0)
	points := attrsFor(data.N)

	for _, kind := range []string{p2h.KindBallTree, p2h.KindBCTree, p2h.KindSharded} {
		spec := p2h.Spec{Kind: kind, Seed: 7, LeafSize: 32}
		if kind == p2h.KindSharded {
			spec.Shards = 4
			spec.Workers = 1
		}
		ix, err := p2h.New(data, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2h.AttachAttributes(ix, points); err != nil {
			t.Fatal(err)
		}
		_, st := ix.Search(q, p2h.SearchOptions{K: 10, Pred: p2h.TagIs("hot")})
		if st.FilterSkippedNodes == 0 || st.FilterSkippedPoints == 0 {
			t.Fatalf("%s: 1%% predicate skipped no subtrees (nodes=%d points=%d)",
				kind, st.FilterSkippedNodes, st.FilterSkippedPoints)
		}
	}
}

// TestAttributedContainerRoundTrip saves every persistable kind with
// attributes attached and checks the restored index answers predicate
// queries identically, and that Inspect reports the schema.
func TestAttributedContainerRoundTrip(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 700, 71))
	queries := p2h.GenerateQueries(data, 5, 72)
	points := attrsFor(data.N)
	pred := p2h.OneOf(p2h.TagIs("warm"), p2h.FieldAtMost("score", 0.2))

	for kind, spec := range allKindSpecs() {
		if ok, _, _ := p2h.KindIsPersistable(kind); !ok {
			continue
		}
		t.Run(kind, func(t *testing.T) {
			ix, err := p2h.New(data, spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := p2h.AttachAttributes(ix, points); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := p2h.Save(&buf, ix); err != nil {
				t.Fatal(err)
			}

			info, err := p2h.Inspect(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !info.HasAttrs {
				t.Fatal("Inspect did not report the attribute section")
			}
			if got := strings.Join(info.AttrTags, ","); got != "even,hot,warm" {
				t.Fatalf("Inspect tags = %q", got)
			}
			if got := strings.Join(info.AttrFields, ","); got != "cat:int,score:float" {
				t.Fatalf("Inspect fields = %q", got)
			}

			back, err := p2h.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				want, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: pred})
				got, _ := back.Search(q, p2h.SearchOptions{K: 10, Pred: pred})
				requireIdentical(t, kind, got, want)
			}
		})
	}
}

// TestUnattributedSaveUnchanged pins backward compatibility: an index with
// no attributes saves in the v1 container format, byte-identical to what
// earlier releases wrote and read.
func TestUnattributedSaveUnchanged(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 300, 81))
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p2h.Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P2HIX001")) {
		t.Fatalf("unattributed save begins %q, want the v1 magic", buf.Bytes()[:8])
	}
	// Attach, then detach: the save must return to v1 bytes exactly.
	if err := p2h.AttachAttributes(ix, attrsFor(data.N)); err != nil {
		t.Fatal(err)
	}
	var attributed bytes.Buffer
	if err := p2h.Save(&attributed, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(attributed.Bytes(), []byte("P2HIX002")) {
		t.Fatalf("attributed save begins %q, want the v2 magic", attributed.Bytes()[:8])
	}
	if err := p2h.AttachAttributes(ix, nil); err != nil {
		t.Fatal(err)
	}
	var detached bytes.Buffer
	if err := p2h.Save(&detached, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(detached.Bytes(), buf.Bytes()) {
		t.Fatal("save after detaching attributes is not byte-identical to the original")
	}
}

// TestDynamicInsertWithAttrs covers the mutable path: payloads attached per
// insert, surviving rebuilds and deletes, with Pred searches tracking them.
func TestDynamicInsertWithAttrs(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 900, 91))
	q := p2h.GenerateQueries(data, 1, 92).Row(0)

	ix := p2h.NewDynamic(nil, p2h.DynamicOptions{Dim: data.D, Seed: 7})
	points := attrsFor(data.N)
	for i := 0; i < data.N; i++ {
		if h := ix.InsertWithAttrs(data.Row(i), points[i]); h != int32(i) {
			t.Fatalf("insert %d returned handle %d", i, h)
		}
	}
	for i := 0; i < data.N; i += 17 {
		ix.Delete(int32(i))
	}
	pred := p2h.TagIs("warm")
	want, _ := ix.Search(q, p2h.SearchOptions{K: 10, Filter: func(id int32) bool {
		return pred.Matches(points[id])
	}})
	got, _ := ix.Search(q, p2h.SearchOptions{K: 10, Pred: pred})
	requireIdentical(t, "dynamic", got, want)

	// The attribute column must survive a container round-trip.
	var buf bytes.Buffer
	if err := p2h.Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	back, err := p2h.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := back.Search(q, p2h.SearchOptions{K: 10, Pred: pred})
	requireIdentical(t, "dynamic-roundtrip", got2, want)
}
