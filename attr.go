package p2h

import (
	"fmt"

	"p2h/internal/attr"
)

// PointAttrs is one point's attribute payload: free-form string tags plus
// named numeric fields (int64 or float64; a field keeps one kind across the
// whole data set). Attach payloads to a built index with AttachAttributes,
// or per insert with (*Dynamic).InsertWithAttrs; filter searches over them
// with SearchOptions.Pred.
type PointAttrs = attr.Point

// Pred is a declarative attribute predicate: tag membership, numeric range,
// and the and/or/not combinators, built with the constructors below (TagIs,
// FieldBetween, AllOf, ...) or decoded from its JSON form. Set it on
// SearchOptions.Pred to restrict a search to matching points.
//
// Unlike the opaque Filter callback, a Pred serializes (the daemon and the
// cluster router forward it), keys the server's result cache, and is pushed
// down into tree traversal: per-node attribute summaries let whole subtrees
// be skipped when the predicate provably cannot match under them, with
// results bitwise identical to filtering every row.
type Pred = attr.Pred

// TagIs matches points carrying the tag.
func TagIs(tag string) *Pred { return attr.TagIs(tag) }

// TagAny matches points carrying at least one of the tags.
func TagAny(tags ...string) *Pred { return attr.TagAny(tags...) }

// FieldBetween matches points whose field lies in [min, max].
func FieldBetween(field string, min, max float64) *Pred {
	return attr.FieldBetween(field, min, max)
}

// FieldAtLeast matches points whose field is >= min.
func FieldAtLeast(field string, min float64) *Pred { return attr.FieldAtLeast(field, min) }

// FieldAtMost matches points whose field is <= max.
func FieldAtMost(field string, max float64) *Pred { return attr.FieldAtMost(field, max) }

// AllOf matches points satisfying every predicate (logical AND).
func AllOf(ps ...*Pred) *Pred { return attr.AllOf(ps...) }

// OneOf matches points satisfying at least one predicate (logical OR).
func OneOf(ps ...*Pred) *Pred { return attr.OneOf(ps...) }

// NotOf matches points the predicate rejects (logical NOT).
func NotOf(p *Pred) *Pred { return attr.NotOf(p) }

// AttachAttributes binds one attribute payload per indexed point to a built
// index: points[i] belongs to data row i (for a Dynamic index, handle i; the
// index must have issued exactly len(points) handles). Passing nil detaches.
// The index keeps the payloads — callers must not mutate them afterwards.
//
// After attaching, searches with SearchOptions.Pred filter over the payloads.
// The tree kinds (balltree, bctree, sharded) additionally build per-node
// summaries and skip subtrees the predicate cannot match; the remaining kinds
// evaluate the predicate per row. Either way results are bitwise identical to
// an equivalent Filter callback. Mixed field kinds (one payload holding field
// f as an int, another as a float) are rejected.
func AttachAttributes(ix Index, points []PointAttrs) error {
	if d, ok := ix.(*Dynamic); ok {
		if points == nil {
			return d.index.SetAttrs(nil)
		}
		// Validate the payloads build a consistent schema before installing.
		if _, err := attr.Build(points); err != nil {
			return fmt.Errorf("p2h: AttachAttributes: %w", err)
		}
		return d.index.SetAttrs(points)
	}
	var st *attr.Store
	if points != nil {
		if len(points) != ix.N() {
			return fmt.Errorf("p2h: AttachAttributes: %d payloads for an index of %d points",
				len(points), ix.N())
		}
		var err error
		st, err = attr.Build(points)
		if err != nil {
			return fmt.Errorf("p2h: AttachAttributes: %w", err)
		}
	}
	return attachStore(ix, st)
}

// attachStore installs a built column store on an index (nil detaches). The
// Dynamic kind is handled by AttachAttributes directly (it keeps row-form
// payloads, not a store).
func attachStore(ix Index, st *attr.Store) error {
	switch t := ix.(type) {
	case *BallTree:
		return t.tree.AttachAttrs(st)
	case *BCTree:
		return t.tree.AttachAttrs(st)
	case *Sharded:
		return t.index.AttachAttrs(st)
	case *KDTree:
		t.attrs = st
	case *NH:
		t.attrs = st
	case *FH:
		t.attrs = st
	case *LinearScan:
		t.attrs = st
	case *QuantizedScan:
		t.attrs = st
	case *Dynamic:
		if st == nil {
			return t.index.SetAttrs(nil)
		}
		return t.index.SetAttrs(st.Points())
	default:
		return fmt.Errorf("p2h: index kind %s does not support attributes", KindOf(ix))
	}
	return nil
}

// storeOf extracts an index's attribute payloads as a column store for
// persistence; nil when the index carries none. For a Dynamic index the
// store covers every handle ever issued (dead handles hold what they held),
// so a restore round-trips the column exactly.
func storeOf(ix Index) (*attr.Store, error) {
	switch t := ix.(type) {
	case *BallTree:
		return t.tree.Attrs(), nil
	case *BCTree:
		return t.tree.Attrs(), nil
	case *Sharded:
		return t.index.Attrs(), nil
	case *KDTree:
		return t.attrs, nil
	case *NH:
		return t.attrs, nil
	case *FH:
		return t.attrs, nil
	case *LinearScan:
		return t.attrs, nil
	case *QuantizedScan:
		return t.attrs, nil
	case *Dynamic:
		if !t.index.HasAttrs() {
			return nil, nil
		}
		pts := make([]attr.Point, t.index.Handles())
		for h := range pts {
			pts[h] = t.index.AttrAt(int32(h))
		}
		return attr.Build(pts)
	}
	return nil, nil
}

// applyPred folds opts.Pred into opts.Filter for index kinds without a native
// predicate path, evaluating it through the attached store (predicate first,
// then the caller's filter — the same acceptance order the tree kinds use, so
// results stay bitwise identical across kinds). The second result reports
// that the predicate can match nothing at all (no store attached and the
// predicate rejects the empty payload): the caller returns empty results
// without searching.
func applyPred(opts SearchOptions, st *attr.Store) (SearchOptions, bool) {
	p := opts.Pred
	if p == nil {
		return opts, false
	}
	opts.Pred = nil
	if st == nil {
		if p.MatchesEmpty() {
			return opts, false
		}
		return opts, true
	}
	prog := st.Compile(p)
	user := opts.Filter
	opts.Filter = func(id int32) bool {
		if !prog.Match(id) {
			return false
		}
		return user == nil || user(id)
	}
	return opts, false
}
