package p2h

import (
	"context"
	"os"
	"path/filepath"
	"time"

	"p2h/internal/server"
)

// ServerOptions configures NewServer; zero values select the documented
// defaults.
type ServerOptions struct {
	// Workers bounds the goroutines executing searches (zero: GOMAXPROCS).
	Workers int
	// MaxBatch is the largest micro-batch dispatched to one worker
	// (zero: 16). 1 disables batching.
	MaxBatch int
	// MaxDelay is how long the dispatcher holds an under-filled batch
	// window open waiting for more queries (zero: 100µs). The window only
	// engages while every worker is busy; a query that an idle worker
	// could serve is dispatched immediately.
	MaxDelay time.Duration
	// CacheEntries bounds the result cache (zero: 1024; negative: cache
	// disabled).
	CacheEntries int
	// MaxQueue is the static ceiling on requests admitted through SearchCtx
	// but not yet finished (zero: 4*Workers*MaxBatch; negative: admission
	// control disabled). The blocking Search path ignores it.
	MaxQueue int
	// MaxQueueDelay bounds the queueing delay admission control will accept
	// (zero: 50ms); when the backlog's expected drain time exceeds it,
	// SearchCtx sheds new arrivals with an *OverloadError.
	MaxQueueDelay time.Duration
	// WAL, when non-nil, makes mutations durable: every applied
	// Insert/Delete is appended to the attached write-ahead log before the
	// call returns, and Snapshot truncates the log atomically with the
	// saved container. Attach it to the same Dynamic index with AttachWAL
	// (which also replays any pending records) before starting the server.
	WAL *WAL
	// BackgroundCompaction moves the Dynamic index's delta folding off the
	// mutation path: instead of rebuilding inline inside the unlucky
	// Insert/Delete that crosses the threshold — stalling every search for
	// the whole build — the server rebuilds on a background goroutine and
	// hot-swaps the tree, holding the mutation lock only for the capture
	// and install steps. Ignored for indexes without the compaction
	// surface.
	BackgroundCompaction bool
}

// ServerStats is a point-in-time snapshot of a Server's counters.
type ServerStats = server.Stats

// LatencySnapshot is a point-in-time copy of a Server's completion-latency
// histogram; subtract two snapshots and ask the window for a Quantile — the
// sampling loop an SLO controller runs.
type LatencySnapshot = server.LatencySnapshot

// OverloadError reports a search shed by admission control; it carries the
// backlog, the limit it exceeded, and a suggested retry delay. Matches
// ErrOverloaded under errors.Is.
type OverloadError = server.OverloadError

// ErrImmutable is returned by Server.Insert and Server.Delete when the
// wrapped index has no mutation surface (only Dynamic has one).
var ErrImmutable = server.ErrImmutable

// ErrOverloaded is the errors.Is target for admission rejections from
// Server.SearchCtx.
var ErrOverloaded = server.ErrOverloaded

// ErrDraining is returned by Server.SearchCtx once Drain or Close has
// stopped intake (where the blocking Search would panic).
var ErrDraining = server.ErrDraining

// Server is a concurrent query-serving layer over any Index: callers from
// any number of goroutines submit queries that are micro-batched over a
// bounded worker pool, answered through a bounded LRU cache of normalized
// queries, and — when the index is a Dynamic — kept snapshot-consistent
// against concurrent Insert and Delete calls, which invalidate the cache
// through a mutation epoch.
//
// All methods are safe for concurrent use. Close drains in-flight queries
// and stops the workers; searching after Close panics.
type Server struct {
	engine *server.Engine
	ix     Index
	wal    *WAL // nil unless ServerOptions.WAL attached one
}

// mutator matches the Insert/Delete surface of Dynamic (and of any
// user-provided Index exposing the same mutation methods).
type mutator interface {
	Insert(p []float32) int32
	Delete(handle int32) bool
}

// NewServerFromSpec builds the index declared by spec over data through the
// registry (exactly as New does) and starts a serving layer over it — the
// build-at-startup deployment path: one Spec, typically decoded from
// configuration, stands up a serving stack for any registered index kind.
func NewServerFromSpec(data *Matrix, spec Spec, opts ServerOptions) (*Server, error) {
	ix, err := New(data, spec)
	if err != nil {
		return nil, err
	}
	return NewServer(ix, opts), nil
}

// NewServer starts a serving layer over ix. If ix exposes the Dynamic
// mutation surface, Server.Insert and Server.Delete route through it with
// snapshot consistency; otherwise they return ErrImmutable.
func NewServer(ix Index, opts ServerOptions) *Server {
	var mut server.Mutator
	if m, ok := ix.(mutator); ok {
		mut = m
	}
	cfg := server.Config{
		Workers:              opts.Workers,
		MaxBatch:             opts.MaxBatch,
		MaxDelay:             opts.MaxDelay,
		CacheEntries:         opts.CacheEntries,
		MaxQueue:             opts.MaxQueue,
		MaxQueueDelay:        opts.MaxQueueDelay,
		BackgroundCompaction: opts.BackgroundCompaction,
	}
	if opts.WAL != nil {
		cfg.Journal = opts.WAL
	}
	return &Server{
		engine: server.New(ix, mut, cfg),
		ix:     ix,
		wal:    opts.WAL,
	}
}

// Search answers one top-k hyperplane query, blocking until a worker has
// served it. Semantics match Index.Search exactly (including panics on
// malformed queries, raised in the calling goroutine); cached answers are
// bit-identical to what the index would return.
func (s *Server) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	return s.engine.Search(q, opts)
}

// SearchCtx is the deadline-aware, admission-controlled form of Search — the
// submission path the network serving layer uses. A request is shed with an
// *OverloadError (errors.Is ErrOverloaded) when the backlog exceeds what the
// workers can drain within MaxQueueDelay; one whose ctx expires while queued
// is dropped before any index work with ctx.Err(); one expiring mid-search
// abandons the remaining traversal at the next leaf-block boundary and
// returns ctx.Err() alongside the partial results found so far. A drained
// server returns ErrDraining instead of panicking. Malformed queries still
// panic, exactly like Search.
func (s *Server) SearchCtx(ctx context.Context, q []float32, opts SearchOptions) ([]Result, Stats, error) {
	return s.engine.SearchCtx(ctx, q, opts)
}

// SetBudgetCeiling caps the candidate budget of every subsequently submitted
// search (zero removes the cap) — the degradation knob an SLO controller
// steps down under latency breach and restores as load recedes. See
// ServerStats.BudgetCeiling and DegradedQueries for observability.
func (s *Server) SetBudgetCeiling(ceiling int) { s.engine.SetBudgetCeiling(ceiling) }

// BudgetCeiling returns the current degradation cap (zero when serving
// exact).
func (s *Server) BudgetCeiling() int { return s.engine.BudgetCeiling() }

// Latency snapshots the server's completion-latency histogram (queue wait
// plus service, per submitted request).
func (s *Server) Latency() LatencySnapshot { return s.engine.Latency() }

// Insert adds a point through the underlying Dynamic index, serialized
// against in-flight searches, and returns its stable handle.
func (s *Server) Insert(p []float32) (int32, error) {
	return s.engine.Insert(p)
}

// InsertWithAttrs adds a point with an attribute payload through the
// underlying Dynamic index, serialized against in-flight searches, and
// returns its stable handle. With a WAL attached the payload is logged with
// the vector, so a replay restores both.
func (s *Server) InsertWithAttrs(p []float32, at PointAttrs) (int32, error) {
	return s.engine.InsertWithAttrs(p, at)
}

// Delete removes a handle through the underlying Dynamic index, serialized
// against in-flight searches. It reports whether the handle was live.
func (s *Server) Delete(handle int32) (bool, error) {
	return s.engine.Delete(handle)
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats { return s.engine.Stats() }

// Index returns the index the server wraps. The index is shared with the
// serving workers; callers must treat it as read-only and route mutations
// through Server.Insert and Server.Delete. On a mutable index, calling even
// read methods (N, IndexBytes, Search) directly is racy against concurrent
// Insert/Delete — use Describe for a synchronized snapshot.
func (s *Server) Index() Index { return s.ix }

// Describe reads the index's current size and memory footprint under the
// same lock that serializes mutations, so it is safe to call while
// Insert/Delete traffic flows (Index().N() directly is not, on a mutable
// index).
func (s *Server) Describe() (n int, indexBytes int64) {
	s.engine.Shared(func() {
		n = s.ix.N()
		indexBytes = s.ix.IndexBytes()
	})
	return n, indexBytes
}

// Snapshot atomically persists the wrapped index to path in the
// self-describing container format: the bytes are written to a temporary
// file in the destination directory, fsynced, and renamed into place only
// on success, so a reader never observes a partial file and a failed save
// leaves any existing file untouched. On a mutable index the whole
// save-sync-rename sequence runs with mutations excluded (in-flight
// searches finish first), so the snapshot is a consistent cut. With a
// write-ahead log attached the log is truncated under the same exclusion,
// after the rename: every logged record is inside the renamed container
// before it leaves the log, so a crash at any instant leaves either the old
// container plus the full log, or the new container plus a log whose
// leftover records replay as no-ops. It returns the snapshot size in bytes.
func (s *Server) Snapshot(path string) (int64, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	var saveErr error
	s.engine.Exclusive(func() {
		saveErr = Save(f, s.ix)
		if saveErr == nil {
			saveErr = f.Sync()
		}
		if cerr := f.Close(); saveErr == nil {
			saveErr = cerr
		}
		if saveErr == nil {
			saveErr = os.Rename(tmp, path)
		}
		if saveErr == nil && s.wal != nil {
			saveErr = s.wal.truncate()
		}
	})
	if saveErr != nil {
		os.Remove(tmp)
		return 0, saveErr
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// WAL returns the attached write-ahead log, or nil when the server runs
// without one.
func (s *Server) WAL() *WAL { return s.wal }

// Drain stops intake and waits — bounded by ctx — for every
// already-submitted query to finish and the workers to exit. It returns nil
// once the server is fully stopped, or ctx.Err() if the deadline expires
// first; a worker stuck inside the index or a user Filter cannot hold
// shutdown hostage. Drain is idempotent and safe to call concurrently;
// submitting after any Drain or Close panics.
func (s *Server) Drain(ctx context.Context) error { return s.engine.Drain(ctx) }

// Close drains every already-submitted query and stops the server, waiting
// without bound (Drain with a background context). It is idempotent; it must
// not race new Search/Insert/Delete calls.
func (s *Server) Close() { s.engine.Close() }
