package p2h

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"p2h/internal/attr"
	"p2h/internal/binio"
)

// ErrFormat is returned by Load and Open for malformed input: a stream that
// is not an index container (and matches no legacy tree format), a corrupt
// or truncated envelope, or a payload its kind's loader rejects.
var ErrFormat = errors.New("p2h: malformed index container")

// containerMagic opens the self-describing container: every index saved
// with p2h.Save starts with these bytes, followed by the length-prefixed
// kind tag and JSON-encoded Spec, then the kind's own payload.
var containerMagic = []byte("P2HIX001")

// containerMagicV2 opens the container variant carrying per-point
// attributes: the same header as v1, then one length-prefixed attribute
// section (see internal/attr.WriteSection) between the spec and the kind
// payload. Save emits it only when the index actually carries attributes, so
// unattributed saves stay byte-identical to every earlier release.
var containerMagicV2 = []byte("P2HIX002")

// Container header bounds; a corrupt length prefix fails fast instead of
// allocating.
const (
	maxKindTagLen     = 64
	maxSpecJSONLen    = 1 << 20
	maxAttrSectionLen = 1 << 28
)

// legacyMagics maps the bare tree formats that predate the container (what
// (*BallTree).Save and (*BCTree).Save still write) to their kinds, so Load
// and Open accept files written by every release.
var legacyMagics = map[string]string{
	"P2HBT001": KindBallTree,
	"P2HBT002": KindBallTree,
	"P2HBT003": KindBallTree,
	"P2HBC001": KindBCTree,
	"P2HBC002": KindBCTree,
	"P2HBC003": KindBCTree,
}

// Save writes ix to w as a self-describing container: any reader can
// restore it with Load without knowing the kind in advance. The index's
// kind must be registered and persistable; build-only kinds (NH, FH, the
// scan baselines) return an error naming the documented reason.
func Save(w io.Writer, ix Index) error {
	k := kindOwning(ix)
	if k == nil {
		return fmt.Errorf("p2h: Save: no registered index kind owns %T", ix)
	}
	if k.Save == nil {
		return fmt.Errorf("p2h: Save: index kind %q is build-only: %s", k.Name, k.BuildOnly)
	}
	spec := k.SpecOf(ix)
	spec.Kind = k.Name
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("p2h: Save: encoding spec: %w", err)
	}
	st, err := storeOf(ix)
	if err != nil {
		return fmt.Errorf("p2h: Save: collecting attributes: %w", err)
	}
	var head bytes.Buffer
	if st == nil {
		head.Write(containerMagic)
		writeBlock(&head, []byte(k.Name))
		writeBlock(&head, specJSON)
	} else {
		head.Write(containerMagicV2)
		writeBlock(&head, []byte(k.Name))
		writeBlock(&head, specJSON)
		section, err := encodeAttrSection(st)
		if err != nil {
			return fmt.Errorf("p2h: Save: encoding attributes: %w", err)
		}
		writeBlock(&head, section)
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return err
	}
	return k.Save(w, ix)
}

// encodeAttrSection serializes an attribute store to the block a v2
// container embeds.
func encodeAttrSection(st *attr.Store) ([]byte, error) {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	attr.WriteSection(bw, st)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if buf.Len() > maxAttrSectionLen {
		return nil, fmt.Errorf("attribute section is %d bytes, limit %d", buf.Len(), maxAttrSectionLen)
	}
	return buf.Bytes(), nil
}

// decodeAttrSection restores the store from a v2 container's attribute
// block.
func decodeAttrSection(section []byte) (*attr.Store, error) {
	br := binio.NewReader(bytes.NewReader(section))
	st := attr.ReadSection(br)
	if err := br.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// SaveFile writes ix to the named file in the container format.
func SaveFile(path string, ix Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, ix); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// Load restores an index of any registered kind from a stream written by
// Save. Bare legacy streams written by (*BallTree).Save / (*BCTree).Save
// (and their SaveFile variants) are recognized by their magic and load
// through the same registry. Malformed input returns an error wrapping
// ErrFormat; a container naming an unregistered kind returns ErrUnknownKind.
func Load(r io.Reader) (Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(containerMagic))
	if err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrFormat, err)
	}
	v2 := bytes.Equal(head, containerMagicV2)
	if !v2 && !bytes.Equal(head, containerMagic) {
		kindName, ok := legacyMagics[string(head)]
		if !ok {
			return nil, fmt.Errorf("%w: unrecognized magic %q", ErrFormat, head)
		}
		k, err := lookupKind(kindName)
		if err != nil {
			return nil, err
		}
		ix, err := k.Load(br, Spec{Kind: kindName})
		if err != nil {
			return nil, fmt.Errorf("%w: legacy %s stream: %v", ErrFormat, kindName, err)
		}
		return ix, nil
	}
	if _, err := br.Discard(len(containerMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	kindTag, err := readBlock(br, maxKindTagLen, "kind tag")
	if err != nil {
		return nil, err
	}
	specJSON, err := readBlock(br, maxSpecJSONLen, "spec")
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("%w: decoding spec: %v", ErrFormat, err)
	}
	var st *attr.Store
	if v2 {
		section, err := readBlock(br, maxAttrSectionLen, "attribute section")
		if err != nil {
			return nil, err
		}
		if st, err = decodeAttrSection(section); err != nil {
			return nil, fmt.Errorf("%w: attribute section: %v", ErrFormat, err)
		}
	}

	k, err := lookupKind(string(kindTag))
	if err != nil {
		return nil, err
	}
	if k.Load == nil {
		return nil, fmt.Errorf("%w: container holds build-only kind %q (%s)", ErrFormat, k.Name, k.BuildOnly)
	}
	if spec.Kind == "" {
		spec.Kind = k.Name
	}
	ix, err := k.Load(br, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrFormat, k.Name, err)
	}
	if st != nil {
		if err := attachStore(ix, st); err != nil {
			return nil, fmt.Errorf("%w: attaching attributes: %v", ErrFormat, err)
		}
	}
	return ix, nil
}

// Open restores an index of any registered kind from the named file; see
// Load for the accepted formats.
//
// For a dynamic index, Open also replays the sidecar write-ahead log
// (path + ".wal") when one is present: mutations acknowledged by a durable
// server after the container was last snapshotted are applied on top, so
// the returned index is at the exact pre-crash state — same live set, same
// handle counter. A corrupt sidecar fails the whole Open (wrapping
// ErrFormat) rather than silently serving a stale state; a missing sidecar
// is the common case and is not an error. The replay is read-only: to keep
// logging new mutations, attach the log with AttachWAL (idempotent over the
// same records) and serve through ServerOptions.WAL.
func Open(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("p2h: open %s: %w", path, err)
	}
	if d, ok := ix.(*Dynamic); ok {
		if _, err := replayWAL(d, WALPath(path)); err != nil {
			return nil, fmt.Errorf("p2h: open %s: %w", path, err)
		}
	}
	return ix, nil
}

// IndexInfo describes a saved index without its payload being loaded:
// everything Inspect can learn from the container header plus the fixed-size
// shape prefix of the kind's own payload.
type IndexInfo struct {
	// Kind is the registered kind name recorded in the container header (or
	// sniffed from a legacy bare-tree magic).
	Kind string
	// Spec is the declarative Spec recorded in the container header; the
	// zero value (with Kind set) for legacy streams, which predate specs.
	Spec Spec
	// Dim is the raw point dimensionality, or -1 when the payload format is
	// not one this decoder knows (an out-of-tree registered kind).
	Dim int
	// N is the number of indexed points (live points for a dynamic index),
	// or -1 when the payload format is unknown.
	N int
	// Legacy marks a bare tree stream written by (*BallTree).Save /
	// (*BCTree).Save rather than a self-describing container.
	Legacy bool
	// HasAttrs marks a v2 container carrying a per-point attribute section.
	HasAttrs bool
	// AttrTags is the attribute section's tag vocabulary (sorted); nil when
	// the container carries no attributes.
	AttrTags []string
	// AttrFields is the attribute section's field schema as "name:int" /
	// "name:float" entries in name order; nil when no attributes.
	AttrFields []string
	// WALPath is the sidecar write-ahead log found next to the container
	// ("" when none exists). Only InspectFile can probe for it; Inspect on
	// a bare stream always reports no sidecar.
	WALPath string
	// WALRecords is the number of pending records in the sidecar log:
	// acknowledged mutations a durable server has applied since the
	// container was last snapshotted, which Open will replay. Zero when
	// there is no sidecar (or it holds nothing).
	WALRecords int
}

// Inspect reads the header of an index stream written by Save (or by the
// legacy bare-tree Save methods) and reports its kind, recorded Spec, raw
// dimensionality and point count without loading the payload: only the
// container header and the payload's fixed-size shape prefix are read (for
// a dynamic index also its liveness bitmap, skipping the vector data). A
// container holding a payload this decoder does not know still reports its
// kind and Spec, with Dim and N set to -1. Malformed input returns an error
// wrapping ErrFormat.
func Inspect(r io.Reader) (IndexInfo, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(containerMagic))
	if err != nil {
		return IndexInfo{}, fmt.Errorf("%w: reading magic: %v", ErrFormat, err)
	}
	v2 := bytes.Equal(head, containerMagicV2)
	if !v2 && !bytes.Equal(head, containerMagic) {
		kindName, ok := legacyMagics[string(head)]
		if !ok {
			return IndexInfo{}, fmt.Errorf("%w: unrecognized magic %q", ErrFormat, head)
		}
		info := IndexInfo{Kind: kindName, Spec: Spec{Kind: kindName}, Legacy: true}
		info.Dim, info.N, err = payloadShape(br)
		if err != nil {
			return IndexInfo{}, err
		}
		return info, nil
	}
	if _, err := br.Discard(len(containerMagic)); err != nil {
		return IndexInfo{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	kindTag, err := readBlock(br, maxKindTagLen, "kind tag")
	if err != nil {
		return IndexInfo{}, err
	}
	specJSON, err := readBlock(br, maxSpecJSONLen, "spec")
	if err != nil {
		return IndexInfo{}, err
	}
	info := IndexInfo{Kind: string(kindTag)}
	if err := json.Unmarshal(specJSON, &info.Spec); err != nil {
		return IndexInfo{}, fmt.Errorf("%w: decoding spec: %v", ErrFormat, err)
	}
	if info.Spec.Kind == "" {
		info.Spec.Kind = info.Kind
	}
	if v2 {
		section, err := readBlock(br, maxAttrSectionLen, "attribute section")
		if err != nil {
			return IndexInfo{}, err
		}
		st, err := decodeAttrSection(section)
		if err != nil {
			return IndexInfo{}, fmt.Errorf("%w: attribute section: %v", ErrFormat, err)
		}
		info.HasAttrs = true
		info.AttrTags = st.Tags()
		names, kinds := st.Fields()
		for i, name := range names {
			k := "float"
			if kinds[i] == attr.FieldInt {
				k = "int"
			}
			info.AttrFields = append(info.AttrFields, name+":"+k)
		}
	}
	info.Dim, info.N, err = payloadShape(br)
	if err != nil {
		return IndexInfo{}, err
	}
	return info, nil
}

// InspectFile reports the kind, Spec, dimensionality and point count of the
// named index file without loading it; see Inspect. It additionally probes
// for a sidecar write-ahead log (path + ".wal") and reports its pending
// record count — the mutations Open would replay — without touching the
// container payload or the logged vectors beyond checksum verification. A
// corrupt sidecar fails the inspection, like a corrupt container.
func InspectFile(path string) (IndexInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return IndexInfo{}, err
	}
	defer f.Close()
	info, err := Inspect(f)
	if err != nil {
		return IndexInfo{}, fmt.Errorf("p2h: inspect %s: %w", path, err)
	}
	walPath := WALPath(path)
	if _, err := os.Stat(walPath); err == nil {
		n, err := CountWALRecords(walPath)
		if err != nil {
			return IndexInfo{}, fmt.Errorf("p2h: inspect %s: %w", path, err)
		}
		info.WALPath = walPath
		info.WALRecords = n
	}
	return info, nil
}

// maxInspectDim bounds a payload-declared dimensionality, mirroring the
// serializers' own guards, so a corrupt shape fails instead of driving a
// huge skip.
const maxInspectDim = 1 << 20

// payloadShape decodes the raw dimensionality and point count from the
// fixed-size shape prefix of a known payload format (the built-in kinds'
// serializers all start with an 8-byte magic and little-endian counters).
// Unknown payload magics — an out-of-tree registered kind, including one
// whose whole payload is shorter than a magic — report (-1, -1) with no
// error; only structurally corrupt known payloads fail.
func payloadShape(br *bufio.Reader) (dim, n int, err error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return -1, -1, nil // a payload too short for any built-in format
		}
		return 0, 0, fmt.Errorf("%w: reading payload magic: %v", ErrFormat, err)
	}
	u32 := func() (int, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, fmt.Errorf("%w: reading payload header: %v", ErrFormat, err)
		}
		return int(int32(binary.LittleEndian.Uint32(b[:]))), nil
	}
	switch string(magic[:]) {
	case "P2HBT001", "P2HBT002", "P2HBC001", "P2HBC002", "P2HKD001":
		// leafSize, n, d — the stored d is lifted (raw + 1).
		if _, err := u32(); err != nil { // leafSize
			return 0, 0, err
		}
		var lifted int
		if n, err = u32(); err != nil {
			return 0, 0, err
		}
		if lifted, err = u32(); err != nil {
			return 0, 0, err
		}
		if n <= 0 || lifted <= 1 || lifted > maxInspectDim {
			return 0, 0, fmt.Errorf("%w: payload header: n=%d d=%d", ErrFormat, n, lifted)
		}
		return lifted - 1, n, nil
	case "P2HSH001":
		// n, d (lifted), shards, workers.
		var lifted int
		if n, err = u32(); err != nil {
			return 0, 0, err
		}
		if lifted, err = u32(); err != nil {
			return 0, 0, err
		}
		if n <= 0 || lifted <= 1 || lifted > maxInspectDim {
			return 0, 0, fmt.Errorf("%w: payload header: n=%d d=%d", ErrFormat, n, lifted)
		}
		return lifted - 1, n, nil
	case "P2HDY001":
		// leafSize i32, seed i64, rebuild f64, dim i32 (lifted), rows i32,
		// then rows*dim float32s (skipped) and rows liveness bytes (read to
		// count the live points).
		if _, err := io.CopyN(io.Discard, br, 4+8+8); err != nil {
			return 0, 0, fmt.Errorf("%w: reading payload header: %v", ErrFormat, err)
		}
		lifted, err := u32()
		if err != nil {
			return 0, 0, err
		}
		rows, err := u32()
		if err != nil {
			return 0, 0, err
		}
		if lifted <= 1 || lifted > maxInspectDim || rows < 0 {
			return 0, 0, fmt.Errorf("%w: payload header: dim=%d rows=%d", ErrFormat, lifted, rows)
		}
		if _, err := io.CopyN(io.Discard, br, int64(rows)*int64(lifted)*4); err != nil {
			return 0, 0, fmt.Errorf("%w: skipping vector data: %v", ErrFormat, err)
		}
		live := 0
		for read := 0; read < rows; {
			chunk := rows - read
			if chunk > 4096 {
				chunk = 4096
			}
			buf := make([]byte, chunk)
			if _, err := io.ReadFull(br, buf); err != nil {
				return 0, 0, fmt.Errorf("%w: reading liveness bitmap: %v", ErrFormat, err)
			}
			for _, b := range buf {
				if b == 1 {
					live++
				}
			}
			read += chunk
		}
		return lifted - 1, live, nil
	}
	return -1, -1, nil
}

// writeBlock appends a little-endian uint32 length prefix and the bytes.
func writeBlock(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

// readBlock reads one length-prefixed block, bounding the length.
func readBlock(br *bufio.Reader, maxLen int, what string) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, fmt.Errorf("%w: reading %s length: %v", ErrFormat, what, err)
	}
	ln := int(binary.LittleEndian.Uint32(n[:]))
	if ln <= 0 || ln > maxLen {
		return nil, fmt.Errorf("%w: %s length %d out of range (1..%d)", ErrFormat, what, ln, maxLen)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, fmt.Errorf("%w: reading %s: %v", ErrFormat, what, err)
	}
	return b, nil
}
