package p2h

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrFormat is returned by Load and Open for malformed input: a stream that
// is not an index container (and matches no legacy tree format), a corrupt
// or truncated envelope, or a payload its kind's loader rejects.
var ErrFormat = errors.New("p2h: malformed index container")

// containerMagic opens the self-describing container: every index saved
// with p2h.Save starts with these bytes, followed by the length-prefixed
// kind tag and JSON-encoded Spec, then the kind's own payload.
var containerMagic = []byte("P2HIX001")

// Container header bounds; a corrupt length prefix fails fast instead of
// allocating.
const (
	maxKindTagLen  = 64
	maxSpecJSONLen = 1 << 20
)

// legacyMagics maps the bare tree formats that predate the container (what
// (*BallTree).Save and (*BCTree).Save still write) to their kinds, so Load
// and Open accept files written by every release.
var legacyMagics = map[string]string{
	"P2HBT001": KindBallTree,
	"P2HBT002": KindBallTree,
	"P2HBC001": KindBCTree,
	"P2HBC002": KindBCTree,
}

// Save writes ix to w as a self-describing container: any reader can
// restore it with Load without knowing the kind in advance. The index's
// kind must be registered and persistable; build-only kinds (NH, FH, the
// scan baselines) return an error naming the documented reason.
func Save(w io.Writer, ix Index) error {
	k := kindOwning(ix)
	if k == nil {
		return fmt.Errorf("p2h: Save: no registered index kind owns %T", ix)
	}
	if k.Save == nil {
		return fmt.Errorf("p2h: Save: index kind %q is build-only: %s", k.Name, k.BuildOnly)
	}
	spec := k.SpecOf(ix)
	spec.Kind = k.Name
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("p2h: Save: encoding spec: %w", err)
	}
	var head bytes.Buffer
	head.Write(containerMagic)
	writeBlock(&head, []byte(k.Name))
	writeBlock(&head, specJSON)
	if _, err := w.Write(head.Bytes()); err != nil {
		return err
	}
	return k.Save(w, ix)
}

// SaveFile writes ix to the named file in the container format.
func SaveFile(path string, ix Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, ix); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// Load restores an index of any registered kind from a stream written by
// Save. Bare legacy streams written by (*BallTree).Save / (*BCTree).Save
// (and their SaveFile variants) are recognized by their magic and load
// through the same registry. Malformed input returns an error wrapping
// ErrFormat; a container naming an unregistered kind returns ErrUnknownKind.
func Load(r io.Reader) (Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(containerMagic))
	if err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrFormat, err)
	}
	if !bytes.Equal(head, containerMagic) {
		kindName, ok := legacyMagics[string(head)]
		if !ok {
			return nil, fmt.Errorf("%w: unrecognized magic %q", ErrFormat, head)
		}
		k, err := lookupKind(kindName)
		if err != nil {
			return nil, err
		}
		ix, err := k.Load(br, Spec{Kind: kindName})
		if err != nil {
			return nil, fmt.Errorf("%w: legacy %s stream: %v", ErrFormat, kindName, err)
		}
		return ix, nil
	}
	if _, err := br.Discard(len(containerMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	kindTag, err := readBlock(br, maxKindTagLen, "kind tag")
	if err != nil {
		return nil, err
	}
	specJSON, err := readBlock(br, maxSpecJSONLen, "spec")
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("%w: decoding spec: %v", ErrFormat, err)
	}

	k, err := lookupKind(string(kindTag))
	if err != nil {
		return nil, err
	}
	if k.Load == nil {
		return nil, fmt.Errorf("%w: container holds build-only kind %q (%s)", ErrFormat, k.Name, k.BuildOnly)
	}
	if spec.Kind == "" {
		spec.Kind = k.Name
	}
	ix, err := k.Load(br, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrFormat, k.Name, err)
	}
	return ix, nil
}

// Open restores an index of any registered kind from the named file; see
// Load for the accepted formats.
func Open(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("p2h: open %s: %w", path, err)
	}
	return ix, nil
}

// writeBlock appends a little-endian uint32 length prefix and the bytes.
func writeBlock(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

// readBlock reads one length-prefixed block, bounding the length.
func readBlock(br *bufio.Reader, maxLen int, what string) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, fmt.Errorf("%w: reading %s length: %v", ErrFormat, what, err)
	}
	ln := int(binary.LittleEndian.Uint32(n[:]))
	if ln <= 0 || ln > maxLen {
		return nil, fmt.Errorf("%w: %s length %d out of range (1..%d)", ErrFormat, what, ln, maxLen)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, fmt.Errorf("%w: reading %s: %v", ErrFormat, what, err)
	}
	return b, nil
}
