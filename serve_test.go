package p2h

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestServerMatchesDirectSearchAllIndexes(t *testing.T) {
	data, queries, _ := testSetup(t)
	for name, ix := range allIndexes(data) {
		srv := NewServer(ix, ServerOptions{Workers: 3, MaxBatch: 4, MaxDelay: 20 * time.Microsecond})
		for pass := 0; pass < 2; pass++ { // pass 2 is served from the cache
			for i := 0; i < queries.N; i++ {
				got, _ := srv.Search(queries.Row(i), SearchOptions{K: 5})
				want, _ := ix.Search(queries.Row(i), SearchOptions{K: 5})
				if len(got) != len(want) {
					t.Fatalf("%s pass %d query %d: %d results, want %d", name, pass, i, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s pass %d query %d rank %d: %v != %v", name, pass, i, j, got[j], want[j])
					}
				}
			}
		}
		st := srv.Stats()
		if st.Queries != int64(2*queries.N) || st.CacheHits < int64(queries.N) {
			t.Fatalf("%s stats %+v", name, st)
		}
		srv.Close()
	}
}

func TestServerImmutableIndexRejectsMutation(t *testing.T) {
	data, _, _ := testSetup(t)
	srv := NewServer(NewBCTree(data, BCTreeOptions{Seed: 1}), ServerOptions{Workers: 1})
	defer srv.Close()
	if _, err := srv.Insert(data.Row(0)); err != ErrImmutable {
		t.Fatalf("Insert err %v", err)
	}
	if _, err := srv.Delete(0); err != ErrImmutable {
		t.Fatalf("Delete err %v", err)
	}
}

func TestServerDynamicMutationVisible(t *testing.T) {
	data, queries, _ := testSetup(t)
	srv := NewServer(NewDynamic(data, DynamicOptions{Seed: 1}), ServerOptions{Workers: 2})
	defer srv.Close()
	q := queries.Row(0)
	before, _ := srv.Search(q, SearchOptions{K: 2})
	// Deleting the best answer promotes the runner-up, through the cache.
	if ok, err := srv.Delete(before[0].ID); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	after, _ := srv.Search(q, SearchOptions{K: 1})
	if after[0].ID != before[1].ID {
		t.Fatalf("after delete want %v, got %v", before[1], after[0])
	}
	// Re-inserting the deleted vector restores the old distance (new handle).
	h, err := srv.Insert(data.Row(int(before[0].ID)))
	if err != nil {
		t.Fatal(err)
	}
	again, _ := srv.Search(q, SearchOptions{K: 1})
	if again[0].ID != h {
		t.Fatalf("reinserted point (handle %d) should win again, got %v", h, again[0])
	}
	st := srv.Stats()
	if st.Inserts != 1 || st.Deletes != 1 || st.Epoch != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestServerConcurrentSearchAndMutate interleaves concurrent Search callers
// with Dynamic Insert/Delete through one Server; run with -race it is the
// data-race acceptance test for the serving layer.
func TestServerConcurrentSearchAndMutate(t *testing.T) {
	data, queries, _ := testSetup(t)
	srv := NewServer(NewDynamic(data, DynamicOptions{Seed: 1}), ServerOptions{
		Workers:      4,
		MaxBatch:     4,
		MaxDelay:     20 * time.Microsecond,
		CacheEntries: 64,
	})
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				h, err := srv.Insert(data.Row((g*37 + i) % data.N))
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if _, err := srv.Delete(h); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, _ := srv.Search(queries.Row((g+i)%queries.N), SearchOptions{K: 5})
				if len(res) != 5 {
					t.Errorf("got %d results mid-mutation", len(res))
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Every original point is still live, so exact results must match a
	// fresh scan over the surviving set.
	res, _ := srv.Search(queries.Row(0), SearchOptions{K: 5})
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results out of order: %v", res)
		}
	}
	if st := srv.Stats(); st.Queries < 200 || st.Epoch == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestServerUncacheableOptions(t *testing.T) {
	data, queries, _ := testSetup(t)
	srv := NewServer(NewBCTree(data, BCTreeOptions{Seed: 1}), ServerOptions{Workers: 2})
	defer srv.Close()
	q := queries.Row(0)
	// A Filter bypasses the cache and is still honored.
	opts := SearchOptions{K: 3, Filter: func(id int32) bool { return id%2 == 0 }}
	for i := 0; i < 2; i++ {
		res, _ := srv.Search(q, opts)
		for _, r := range res {
			if r.ID%2 != 0 {
				t.Fatalf("filter ignored: %v", r)
			}
		}
	}
	// A Profile bypasses the cache and still accumulates time.
	var prof Profile
	srv.Search(q, SearchOptions{K: 3, Profile: &prof})
	if prof.Total() <= 0 {
		t.Fatal("profile not populated")
	}
	if st := srv.Stats(); st.CacheHits != 0 {
		t.Fatalf("uncacheable queries hit the cache: %+v", st)
	}
}

func TestServerPanicsOnBadQuery(t *testing.T) {
	data, _, _ := testSetup(t)
	srv := NewServer(NewBCTree(data, BCTreeOptions{}), ServerOptions{Workers: 1})
	defer srv.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	srv.Search(make([]float32, data.D), SearchOptions{K: 1}) // missing offset dim
}

// TestServerSnapshotRoundTrip: Snapshot writes a loadable container
// atomically, for both immutable and mutable indexes, and the restored index
// answers identically.
func TestServerSnapshotRoundTrip(t *testing.T) {
	data, queries, _ := testSetup(t)
	for name, ix := range map[string]Index{
		"bctree":  NewBCTree(data, BCTreeOptions{Seed: 1}),
		"dynamic": NewDynamic(data, DynamicOptions{Seed: 1}),
	} {
		srv := NewServer(ix, ServerOptions{Workers: 2})
		path := filepath.Join(t.TempDir(), name+".p2h")
		n, err := srv.Snapshot(path)
		if err != nil {
			t.Fatalf("%s: Snapshot: %v", name, err)
		}
		st, err := os.Stat(path)
		if err != nil || st.Size() != n {
			t.Fatalf("%s: snapshot size %d, stat %v %v", name, n, st, err)
		}
		loaded, err := Open(path)
		if err != nil {
			t.Fatalf("%s: Open: %v", name, err)
		}
		for i := 0; i < queries.N; i++ {
			want, _ := ix.Search(queries.Row(i), SearchOptions{K: 3})
			got, _ := loaded.Search(queries.Row(i), SearchOptions{K: 3})
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d results, want %d", name, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s query %d rank %d: %v != %v", name, i, j, got[j], want[j])
				}
			}
		}
		// No temp file debris in the destination directory.
		entries, err := os.ReadDir(filepath.Dir(path))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("%s: snapshot left debris: %v", name, entries)
		}
		srv.Close()
	}
}

// TestServerSnapshotConcurrentWithTraffic: snapshots interleaved with
// concurrent searches and mutations neither race (-race) nor corrupt the
// written container.
func TestServerSnapshotConcurrentWithTraffic(t *testing.T) {
	data, queries, _ := testSetup(t)
	srv := NewServer(NewDynamic(data, DynamicOptions{Seed: 1}), ServerOptions{Workers: 2})
	defer srv.Close()
	dir := t.TempDir()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := srv.Insert(data.Row(i % data.N)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			srv.Search(queries.Row(i%queries.N), SearchOptions{K: 3})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := srv.Snapshot(filepath.Join(dir, "snap.p2h")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := Open(filepath.Join(dir, "snap.p2h")); err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
}

// TestServerSnapshotBuildOnlyKindFails: a kind without persistence reports
// the error instead of leaving a temp file behind.
func TestServerSnapshotBuildOnlyKindFails(t *testing.T) {
	data, _, _ := testSetup(t)
	srv := NewServer(NewNH(data, NHOptions{Seed: 1}), ServerOptions{Workers: 1})
	defer srv.Close()
	dir := t.TempDir()
	if _, err := srv.Snapshot(filepath.Join(dir, "nh.p2h")); err == nil {
		t.Fatal("Snapshot of a build-only kind succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed snapshot left debris: %v", entries)
	}
}

// TestServerDrainAndIndex: the bounded-drain surface and the index accessor.
func TestServerDrainAndIndex(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 1})
	srv := NewServer(ix, ServerOptions{Workers: 2})
	if srv.Index() != Index(ix) {
		t.Fatal("Index() does not return the wrapped index")
	}
	srv.Search(queries.Row(0), SearchOptions{K: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	srv.Close() // still idempotent after Drain
}
