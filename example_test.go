package p2h_test

// Runnable godoc examples: `go test` executes each one and checks its
// output, so every snippet documented here is guaranteed to compile and
// behave as shown. Example_quickstart is the README quickstart.

import (
	"bytes"
	"fmt"

	p2h "p2h"
)

// A query is the hyperplane's normal with the offset appended; Hyperplane
// just assembles the two (normalization happens inside the indexes).
func ExampleHyperplane() {
	q := p2h.Hyperplane([]float32{0.6, 0.8}, -2)
	fmt.Println(q)
	// Output: [0.6 0.8 -2]
}

// Distance computes the paper's Equation 1 directly; unlike index queries
// it accepts non-unit normals.
func ExampleDistance() {
	p := []float32{1, 1}
	q := p2h.Hyperplane([]float32{3, 4}, -2) // |3*1 + 4*1 - 2| / ||(3,4)|| = 5/5
	fmt.Println(p2h.Distance(p, q))
	// Output: 1
}

// SearchBatch answers many hyperplane queries concurrently on any index,
// returning results in query order.
func ExampleSearchBatch() {
	data := p2h.FromRows([][]float32{{0}, {1}, {2}, {3}})
	index := p2h.NewBCTree(data, p2h.BCTreeOptions{})
	queries := p2h.FromRows([][]float32{
		{1, -0.4}, // hyperplane x = 0.4: nearest point is 0
		{1, -2.9}, // hyperplane x = 2.9: nearest point is 3
	})
	batch := p2h.SearchBatch(index, queries, p2h.SearchOptions{K: 1}, 2)
	fmt.Println(batch[0][0].ID, batch[1][0].ID)
	// Output: 0 3
}

// Server wraps any index behind a thread-safe micro-batching worker pool
// with a result cache; Search blocks until the answer is served.
func ExampleServer() {
	data := p2h.FromRows([][]float32{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	srv := p2h.NewServer(p2h.NewBCTree(data, p2h.BCTreeOptions{}), p2h.ServerOptions{Workers: 2})
	defer srv.Close()

	q := p2h.Hyperplane([]float32{1, 0}, -2.2) // hyperplane x = 2.2
	results, _ := srv.Search(q, p2h.SearchOptions{K: 2})
	for _, r := range results {
		fmt.Printf("point %d at distance %.1f\n", r.ID, r.Dist)
	}
	// Output:
	// point 2 at distance 0.2
	// point 3 at distance 0.8
}

// The README quickstart: declare a BC-Tree with a Spec, build it over a
// synthetic data set, answer one exact top-k hyperplane query, and
// cross-check it against the exhaustive scan.
func Example_quickstart() {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 2000, 1))
	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree})
	if err != nil {
		panic(err)
	}

	queries := p2h.GenerateQueries(data, 1, 2)
	q := queries.Row(0)
	results, stats := index.Search(q, p2h.SearchOptions{K: 10})

	exact, _ := p2h.NewLinearScan(data).Search(q, p2h.SearchOptions{K: 10})
	fmt.Println("top-k size:", len(results))
	fmt.Println("matches exhaustive scan:", results[0] == exact[0])
	fmt.Println("pruned some work:", stats.Candidates < int64(data.N))
	// Output:
	// top-k size: 10
	// matches exhaustive scan: true
	// pruned some work: true
}

// Spec.Quantize adds an 8-bit quantized mirror of the tree's leaf blocks:
// leaf rows are first screened by an integer-kernel scan whose error bound is
// exact, so results stay bitwise identical to the unquantized index while
// exact queries verify far fewer float rows. The mirror persists through
// Save/Load with the tree.
func ExampleNew_quantized() {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 2000, 1))
	plain, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 1})
	if err != nil {
		panic(err)
	}
	quantized, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 1, Quantize: true})
	if err != nil {
		panic(err)
	}

	q := p2h.GenerateQueries(data, 1, 2).Row(0)
	want, plainStats := plain.Search(q, p2h.SearchOptions{K: 10})
	got, quantStats := quantized.Search(q, p2h.SearchOptions{K: 10})

	same := len(got) == len(want)
	for i := range got {
		same = same && got[i] == want[i]
	}
	fmt.Println("identical results:", same)
	fmt.Println("fewer verified candidates:", quantStats.Candidates < plainStats.Candidates)
	// Output:
	// identical results: true
	// fewer verified candidates: true
}

// Any registered index kind builds from the same declarative Spec, and the
// persistable kinds round-trip through the self-describing container
// format: Save writes the kind and Spec alongside the payload, so Load
// restores the right backend with no type information from the caller.
func ExampleSave() {
	data := p2h.Dedup(p2h.GenerateDataset("Music", 1000, 1))
	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBallTree, LeafSize: 50, Seed: 1})
	if err != nil {
		panic(err)
	}

	var container bytes.Buffer
	if err := p2h.Save(&container, index); err != nil {
		panic(err)
	}
	loaded, err := p2h.Load(&container)
	if err != nil {
		panic(err)
	}

	q := p2h.GenerateQueries(data, 1, 2).Row(0)
	before, _ := index.Search(q, p2h.SearchOptions{K: 3})
	after, _ := loaded.Search(q, p2h.SearchOptions{K: 3})
	fmt.Println("restored kind:", p2h.KindOf(loaded))
	fmt.Println("identical results:", before[0] == after[0] && before[1] == after[1] && before[2] == after[2])
	// Output:
	// restored kind: balltree
	// identical results: true
}
