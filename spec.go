package p2h

import (
	"fmt"

	"p2h/internal/core"
)

// Validation errors of the declarative API. The legacy constructors and the
// panicking Search surface delegate to the same checks, so the two APIs can
// never drift apart; new code should prefer the error-returning entry points
// (New, Open, Save, Load).
var (
	// ErrDimMismatch reports inputs whose dimensionalities do not line up:
	// a query of the wrong length, a Spec.Dim contradicting the data
	// matrix, batch queries not matching the index.
	ErrDimMismatch = core.ErrDimMismatch
	// ErrZeroNormal reports a hyperplane query whose normal is the zero
	// vector.
	ErrZeroNormal = core.ErrZeroNormal
)

// Canonical kind names of the built-in index backends, as accepted by
// Spec.Kind and written into saved index containers. Kinds() lists every
// registered name; short aliases ("bc", "ball", "kd", "scan", "quant",
// "shard", "dyn") resolve to these.
const (
	KindBallTree      = "balltree"
	KindBCTree        = "bctree"
	KindKDTree        = "kdtree"
	KindNH            = "nh"
	KindFH            = "fh"
	KindLinearScan    = "linearscan"
	KindQuantizedScan = "quantizedscan"
	KindSharded       = "sharded"
	KindDynamic       = "dynamic"
)

// Spec declares an index: which backend to build (Kind) plus the tuning
// fields the backend reads. Fields a kind does not use are ignored, so one
// Spec literal — or one JSON document, via the struct tags — can be moved
// between kinds while tuning. The zero value of every field selects that
// kind's documented default.
//
// Spec is the portable configuration surface of the library: p2h.New builds
// any registered kind from it, the cmd/ tools accept it as -spec JSON, and
// p2h.Save embeds it into the container header so a saved index describes
// itself.
type Spec struct {
	// Kind names the index backend (see the Kind* constants and Kinds()).
	Kind string `json:"kind"`

	// LeafSize is the tree kinds' maximum leaf size N0 (zero: 100).
	LeafSize int `json:"leaf_size,omitempty"`
	// Seed makes randomized construction deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Quantize makes the balltree, bctree and sharded kinds store an 8-bit
	// quantized mirror of their leaf blocks and filter leaf rows through its
	// exact error bound before float verification. Results are unchanged (the
	// filter is conservative); exact unfiltered searches get cheaper leaf
	// scans for about 25% more memory. The dynamic kind ignores it: its
	// snapshot is rebuilt incrementally and would invalidate the mirror on
	// every insert batch. See docs/TUNING.md.
	Quantize bool `json:"quantize,omitempty"`

	// Lambda is NH/FH's sampled transform dimension (zero: 2*(Dim+1)).
	Lambda int `json:"lambda,omitempty"`
	// M is NH/FH's number of hash projections (zero: 64).
	M int `json:"m,omitempty"`
	// L is NH's collision / FH's separation threshold (zero: 2).
	L int `json:"l,omitempty"`
	// B is FH's norm partition ratio in (0,1) (zero: 0.9).
	B float64 `json:"b,omitempty"`

	// Shards is the sharded kind's partition count (zero: GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Workers bounds the sharded kind's per-query goroutines (zero:
	// min(Shards, GOMAXPROCS)).
	Workers int `json:"workers,omitempty"`

	// Dim is the data dimensionality, required by the dynamic kind when
	// starting empty (data == nil); other kinds take it from the data and
	// reject a contradicting value.
	Dim int `json:"dim,omitempty"`
	// RebuildFraction is the dynamic kind's rebuild trigger (zero: 0.25).
	RebuildFraction float64 `json:"rebuild_fraction,omitempty"`
	// CompactFraction is the dynamic kind's background-compaction trigger,
	// used instead of RebuildFraction when a server runs with
	// ServerOptions.BackgroundCompaction (zero: RebuildFraction). Keeping
	// the two distinct lets a serving deployment defer inline rebuilds
	// (large RebuildFraction) while compacting off-thread at a tighter
	// threshold.
	CompactFraction float64 `json:"compact_fraction,omitempty"`
}

// New builds an index declared by spec over the rows of data. It is the
// single constructor behind every kind-specific New* function: the kind is
// resolved through the registry (ErrUnknownKind if unregistered), the
// backend validates its inputs, and malformed input returns an error instead
// of panicking.
//
// data may be nil only for kinds that document an empty start (the dynamic
// kind, with Spec.Dim set).
func New(data *Matrix, spec Spec) (Index, error) {
	k, err := lookupKind(spec.Kind)
	if err != nil {
		return nil, err
	}
	return k.Build(data, spec)
}

// mustNew backs the legacy panicking constructors.
func mustNew(data *Matrix, spec Spec) Index {
	ix, err := New(data, spec)
	if err != nil {
		panic("p2h: " + err.Error())
	}
	return ix
}

// checkBuildData rejects construction over no data for the kinds that
// require a bulk load, and a Spec.Dim contradicting the data matrix (a
// config/data mix-up worth surfacing even though these kinds take their
// dimensionality from the data).
func checkBuildData(kind string, data *Matrix, spec Spec) error {
	if data == nil || data.N == 0 {
		return fmt.Errorf("p2h: %s: index construction needs a non-empty data matrix", kind)
	}
	if data.D <= 0 {
		return fmt.Errorf("%w: %s: data matrix has dimension %d", ErrDimMismatch, kind, data.D)
	}
	if spec.Dim != 0 && spec.Dim != data.D {
		return fmt.Errorf("%w: %s: Spec.Dim %d contradicts data dimension %d",
			ErrDimMismatch, kind, spec.Dim, data.D)
	}
	return nil
}
