package p2h_test

// Documentation lint: every exported symbol of the root package must carry a
// doc comment. The public API is the library's contract — an undocumented
// export either needs words or should not be exported. CI runs this test as
// its own step (see .github/workflows/ci.yml).

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	notTest := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, ".", notTest, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["p2h"]
	if !ok {
		t.Fatalf("package p2h not found in %v", pkgs)
	}
	d := doc.New(pkg, "p2h", 0)

	var missing []string
	report := func(kind, name, comment string) {
		if comment == "" && ast.IsExported(name) {
			missing = append(missing, kind+" "+name)
		}
	}
	// A const/var group counts as documented when either the group or the
	// individual spec carries a comment.
	values := func(kind string, vs []*doc.Value) {
		for _, v := range vs {
			if v.Doc != "" {
				continue
			}
			for _, spec := range v.Decl.Specs {
				vspec, ok := spec.(*ast.ValueSpec)
				if !ok || vspec.Doc.Text() != "" || vspec.Comment.Text() != "" {
					continue
				}
				for _, ident := range vspec.Names {
					report(kind, ident.Name, "")
				}
			}
		}
	}

	if d.Doc == "" {
		missing = append(missing, "package p2h")
	}
	values("const", d.Consts)
	values("var", d.Vars)
	for _, f := range d.Funcs {
		report("func", f.Name, f.Doc)
	}
	for _, typ := range d.Types {
		report("type", typ.Name, typ.Doc)
		for _, f := range typ.Funcs {
			report("func", f.Name, f.Doc)
		}
		for _, m := range typ.Methods {
			report("method "+typ.Name+".", m.Name, m.Doc)
		}
		values("const", typ.Consts)
		values("var", typ.Vars)
	}

	for _, m := range missing {
		t.Errorf("undocumented exported symbol: %s", m)
	}
}
