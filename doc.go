// Package p2h is a Go library for Point-to-Hyperplane Nearest Neighbor
// Search (P2HNNS): given a database of points and a hyperplane query, find
// the k points closest to the hyperplane.
//
// It reproduces "Lightweight-Yet-Efficient: Revitalizing Ball-Tree for
// Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023):
// the Ball-Tree branch-and-bound index with the paper's node-level ball
// bound, and BC-Tree, which adds point-level ball and cone bounds plus
// collaborative inner product computing. The hashing baselines NH and FH
// (Huang et al., SIGMOD 2021), a KD-Tree alternative, and an exhaustive scan
// are included for comparison and ground truth.
//
// # Model
//
// Data points are vectors p in R^d. A hyperplane query is a vector
// q = (w; b) in R^(d+1) whose first d coordinates are the hyperplane normal
// and whose last coordinate is the offset: the hyperplane is
// {y : <w, y> + b = 0}. Indexes internally lift every point to x = (p; 1) so
// the distance to the hyperplane reduces to |<x, q>| when ||w|| = 1 (the
// library rescales queries that are not normalized, which leaves the nearest
// neighbors unchanged).
//
// # Quick start
//
//	data := p2h.GenerateDataset("Sift", 10000, 1) // or p2h.FromRows(yourVectors)
//	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree})
//	q := p2h.Hyperplane(normal, offset)
//	results, _ := index.Search(q, p2h.SearchOptions{K: 10})
//
// New is the declarative entry point: a Spec names any registered index
// kind (Kinds lists them; RegisterKind adds more) plus its tuning fields,
// and malformed input returns an error (ErrUnknownKind, ErrDimMismatch)
// instead of panicking. The kind-specific constructors (NewBCTree, ...)
// remain as thin wrappers. Exact search is the default; set
// SearchOptions.Budget to cap the number of candidate verifications and
// trade recall for speed (the paper's candidate fraction).
//
// # Persistence
//
// Save and Load (SaveFile, Open) move any persistable index — BallTree,
// BCTree, KDTree, Sharded, Dynamic — through a self-describing container
// that records its own kind and Spec, so loading needs no type
// information:
//
//	_ = p2h.SaveFile("index.p2h", index)
//	loaded, err := p2h.Open("index.p2h") // any persistable kind
//
// Malformed input returns errors wrapping ErrFormat. Files written by the
// older kind-specific Save methods load through the same entry points.
//
// # Serving
//
// Every index is safe for concurrent readers, and SearchBatch fans a query
// matrix over a goroutine pool. For serving live traffic, Server wraps any
// Index (including Sharded and Dynamic) behind a micro-batching worker pool
// with a normalized-query result cache and snapshot-consistent reads across
// concurrent Insert/Delete:
//
//	srv := p2h.NewServer(index, p2h.ServerOptions{})
//	defer srv.Close()
//	results, _ := srv.Search(q, p2h.SearchOptions{K: 10})
//
// Server.Snapshot persists the wrapped index atomically while serving, and
// Server.Drain bounds shutdown with a context. The cmd/p2hd daemon exposes
// named servers over an HTTP API (search, mutation, snapshots, hot reload,
// Prometheus metrics); InspectFile describes a saved container — kind,
// recorded Spec, dimensionality, point count — without loading its payload.
//
// The cmd/p2hbench tool regenerates every table and figure of the paper's
// evaluation section, and cmd/p2hserve benchmarks the serving layer on a
// query stream (in-process, or against a running p2hd with -url); see
// README.md, DESIGN.md and EXPERIMENTS.md.
package p2h
