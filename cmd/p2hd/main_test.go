package main

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	p2h "p2h"
	"p2h/internal/httpapi"
)

// buildFixtures writes a data file, a saved container and a two-index config
// into dir and returns the config path and the snapshot destination.
func buildFixtures(t *testing.T, dir string) (configPath, snapPath string) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := p2h.NewMatrix(250, 6)
	for i := range data.Data {
		data.Data[i] = float32(rng.NormFloat64())
	}
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	container := filepath.Join(dir, "trees.p2h")
	if err := p2h.SaveFile(container, ix); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"drain_timeout": "5s",
		"server":        map[string]any{"workers": 2},
		"indexes": map[string]any{
			"trees": map[string]any{"path": container},
			"dyn":   map[string]any{"spec": map[string]any{"kind": "dynamic", "leaf_size": 25}, "data": dataPath},
		},
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	configPath = filepath.Join(dir, "p2hd.json")
	if err := os.WriteFile(configPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return configPath, filepath.Join(dir, "snap.p2h")
}

// startDaemon runs the daemon on a random port and returns its base URL plus
// a shutdown func that asserts a clean exit.
func startDaemon(t *testing.T, args []string) (base string, stdout *bytes.Buffer, shutdown func()) {
	t.Helper()
	ready := make(chan string, 1)
	notifyReady = func(addr string) { ready <- addr }
	t.Cleanup(func() { notifyReady = func(string) {} })

	ctx, cancel := context.WithCancel(context.Background())
	stdout = &bytes.Buffer{}
	stderr := &bytes.Buffer{}
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, stdout, stderr) }()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatalf("daemon never came up\nstdout: %s\nstderr: %s", stdout, stderr)
	}
	return base, stdout, func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("daemon exited %d\nstderr: %s", code, stderr)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	if resp.StatusCode >= 300 {
		t.Logf("%s %s -> %d: %s", method, url, resp.StatusCode, raw)
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd drives a real p2hd over a TCP socket: config startup
// with two index kinds, search, mutation, snapshot, hot reload, metrics and
// graceful drain.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	configPath, snapPath := buildFixtures(t, dir)
	base, stdout, shutdown := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-config", configPath})

	var health httpapi.HealthResponse
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != 200 || health.Indexes != 2 {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	q := make([]float32, 7)
	q[0] = 1
	var sr httpapi.SearchResponse
	if code := doJSON(t, "POST", base+"/v1/indexes/trees/search",
		httpapi.SearchRequest{Query: q, SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 3}}, &sr); code != 200 {
		t.Fatalf("search: %d", code)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("search results: %+v", sr)
	}

	var ir httpapi.InsertResponse
	p := make([]float32, 6)
	p[0] = 50
	if code := doJSON(t, "POST", base+"/v1/indexes/dyn/insert",
		httpapi.InsertRequest{Point: p}, &ir); code != 200 {
		t.Fatalf("insert: %d", code)
	}

	var snap httpapi.SnapshotResponse
	if code := doJSON(t, "POST", base+"/v1/indexes/dyn/snapshot",
		httpapi.SnapshotRequest{Path: snapPath}, &snap); code != 200 {
		t.Fatalf("snapshot: %d", code)
	}
	if st, err := os.Stat(snapPath); err != nil || st.Size() != snap.Bytes {
		t.Fatalf("snapshot file: %v", err)
	}

	var reloaded httpapi.IndexInfoResponse
	if code := doJSON(t, "POST", base+"/v1/indexes/dyn",
		httpapi.LoadRequest{IndexConfig: httpapi.IndexConfig{Path: snapPath}, Replace: true}, &reloaded); code != 200 {
		t.Fatalf("hot reload: %d", code)
	}
	if reloaded.N != 251 {
		t.Fatalf("reloaded: %+v", reloaded)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"p2hd_http_requests_total{endpoint=\"search\",code=\"200\"}",
		"p2hd_index_queries_total{index=\"trees\",kind=\"bctree\"}",
		"p2hd_index_points{index=\"dyn\",kind=\"dynamic\"} 251",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	shutdown()
	if !strings.Contains(stdout.String(), "p2hd: drained") {
		t.Errorf("no drain confirmation in output:\n%s", stdout)
	}
}

// TestDaemonSingleIndexFlags: the config-less startup path.
func TestDaemonSingleIndexFlags(t *testing.T) {
	dir := t.TempDir()
	configPath, _ := buildFixtures(t, dir)
	_ = configPath
	dataPath := filepath.Join(dir, "data.fvecs")
	base, _, shutdown := startDaemon(t, []string{
		"-listen", "127.0.0.1:0",
		"-name", "solo", "-index", "balltree", "-spec", `{"leaf_size":20}`, "-data", dataPath,
		"-workers", "2",
	})
	defer shutdown()
	var info httpapi.IndexInfoResponse
	if code := doJSON(t, "GET", base+"/v1/indexes/solo", nil, &info); code != 200 {
		t.Fatalf("info: %d", code)
	}
	if info.Kind != p2h.KindBallTree || info.N != 250 {
		t.Fatalf("solo info: %+v", info)
	}
}

func TestDaemonStartupErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	ctx := context.Background()
	if code := run(ctx, []string{"-config", "/does/not/exist.json"}, &out, &errOut); code != 1 {
		t.Fatalf("missing config: exit %d", code)
	}
	if code := run(ctx, []string{"-data", "x.fvecs"}, &out, &errOut); code != 1 {
		t.Fatalf("-data without -spec: exit %d", code)
	}
	if code := run(ctx, []string{"-load", "/does/not/exist.p2h"}, &out, &errOut); code != 1 {
		t.Fatalf("missing container: exit %d", code)
	}
	if code := run(ctx, []string{"-badflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

func TestFlagIndexConfig(t *testing.T) {
	if _, declared, err := flagIndexConfig("", "", "", "", false, ""); declared || err != nil {
		t.Fatalf("no flags: %v %v", declared, err)
	}
	ic, declared, err := flagIndexConfig("x.p2h", "", "", "", false, "")
	if !declared || err != nil || ic.Path != "x.p2h" || ic.Spec != nil {
		t.Fatalf("load only: %+v %v %v", ic, declared, err)
	}
	ic, declared, err = flagIndexConfig("", "sharded", `{"leaf_size":9}`, "d.fvecs", false, "")
	if !declared || err != nil || ic.Spec == nil || ic.Spec.Kind != "sharded" || ic.Spec.LeafSize != 9 || ic.Data != "d.fvecs" {
		t.Fatalf("kind+spec: %+v %v %v", ic, declared, err)
	}
	ic, declared, err = flagIndexConfig("", "", `{"leaf_size":9}`, "", false, "")
	if !declared || err != nil || ic.Spec.Kind != p2h.KindBCTree {
		t.Fatalf("default kind: %+v %v %v", ic, declared, err)
	}
	ic, declared, err = flagIndexConfig("x.p2h", "", "", "", true, "none")
	if !declared || err != nil || !ic.WAL || ic.WALSync != "none" {
		t.Fatalf("wal flags: %+v %v %v", ic, declared, err)
	}
	if _, _, err = flagIndexConfig("", "", `{bad json`, "", false, ""); err == nil {
		t.Fatal("bad spec JSON accepted")
	}
	if _, _, err = flagIndexConfig("", "", "", "d.fvecs", false, ""); err == nil {
		t.Fatal("-data alone accepted")
	}
	if _, _, err = flagIndexConfig("", "", "", "", true, ""); err == nil {
		t.Fatal("-wal without -load accepted")
	}
}
