package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	p2h "p2h"
	"p2h/internal/httpapi"
)

// daemon is one real p2hd subprocess — the only way to aim a SIGKILL at the
// serving stack without taking the test down with it.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemonProcess execs the prebuilt binary and waits for its listen
// line to learn the bound port.
func startDaemonProcess(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "p2hd: listening on http://"); ok {
				addr <- rest
			}
		}
	}()
	select {
	case a := <-addr:
		return &daemon{cmd: cmd, base: "http://" + a}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon subprocess never announced its address")
		return nil
	}
}

// kill SIGKILLs the daemon — no shutdown hooks, no drain, no final fsync
// beyond what each acknowledged mutation already forced.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
}

func (d *daemon) postJSON(t *testing.T, path string, body, out any) (int, error) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, nil
}

func (d *daemon) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
	return resp.StatusCode
}

// TestDaemonCrashRecovery is the daemon-level crash-injection test: a real
// p2hd journaling under WALSyncAlways is SIGKILLed mid-insert-stream,
// repeatedly, and after every restart each acknowledged insert must still
// be there — an acknowledged handle deletes as live, the healthz replay
// counters account for the log, and the live count brackets exactly the
// acked range (an unacknowledged in-flight insert may or may not have
// reached the log; anything acked must have).
func TestDaemonCrashRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "p2hd.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building p2hd: %v\n%s", err, out)
	}

	const dim = 6
	rng := rand.New(rand.NewSource(61))
	data := p2h.NewMatrix(80, dim)
	for i := range data.Data {
		data.Data[i] = float32(rng.NormFloat64())
	}
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 25, Seed: 5, CompactFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	container := filepath.Join(dir, "live.p2h")
	if err := p2h.SaveFile(container, ix); err != nil {
		t.Fatal(err)
	}
	args := []string{"-name", "live", "-load", container, "-wal", "-walsync", "always", "-compact", "-workers", "2"}

	acked := []int32{}         // handles whose inserts were acknowledged
	ackedLo, ackedHi := 80, 80 // bracket on the recovered live count
	for cycle := 0; cycle < 3; cycle++ {
		d := startDaemonProcess(t, bin, args...)

		var health httpapi.HealthResponse
		if code := d.getJSON(t, "/healthz", &health); code != 200 || health.Status != "ok" {
			t.Fatalf("cycle %d: healthz %d %+v", cycle, code, health)
		}
		if health.WALIndexes != 1 {
			t.Fatalf("cycle %d: healthz reports %d WAL indexes, want 1", cycle, health.WALIndexes)
		}
		var info httpapi.IndexInfoResponse
		if code := d.getJSON(t, "/v1/indexes/live", &info); code != 200 {
			t.Fatalf("cycle %d: info %d", cycle, code)
		}
		if info.N < ackedLo || info.N > ackedHi {
			t.Fatalf("cycle %d: recovered %d live points, want within [%d, %d]", cycle, info.N, ackedLo, ackedHi)
		}
		// Recovery accounts for everything ever acked: points now live plus
		// an in-flight insert per earlier kill at most.
		if cycle > 0 && (info.WAL == nil || health.WALReplayedRecords != info.WAL.Replayed) {
			t.Fatalf("cycle %d: healthz replay %d disagrees with index info %+v", cycle, health.WALReplayedRecords, info.WAL)
		}
		// The live count may exceed the acked floor only via in-flight
		// inserts that reached the log before the kill; fold them into the
		// bracket's floor for the next cycle.
		ackedLo, ackedHi = info.N, info.N

		// Stream inserts; kill mid-stream after a random number of acks.
		killAfter := 30 + rng.Intn(40)
		for i := 0; ; i++ {
			p := make([]float32, dim)
			for j := range p {
				p[j] = rng.Float32()
			}
			var ir httpapi.InsertResponse
			code, err := d.postJSON(t, "/v1/indexes/live/insert", httpapi.InsertRequest{Point: p}, &ir)
			if err != nil || code != 200 {
				// The kill below races the last request; a failed call is
				// simply not acked.
				break
			}
			acked = append(acked, ir.Handle)
			ackedLo++
			ackedHi++
			if i >= killAfter {
				break
			}
		}
		d.kill()
		ackedHi++ // one in-flight insert may have reached the log unacked
	}

	// Final restart: everything ever acknowledged must be live.
	d := startDaemonProcess(t, bin, args...)
	defer d.kill()
	var info httpapi.IndexInfoResponse
	if code := d.getJSON(t, "/v1/indexes/live", &info); code != 200 {
		t.Fatalf("final info: %d", code)
	}
	if info.N < ackedLo || info.N > ackedHi {
		t.Fatalf("final: %d live points, want within [%d, %d]", info.N, ackedLo, ackedHi)
	}
	if info.WAL == nil || info.WAL.Replayed == 0 {
		t.Fatalf("final restart replayed nothing: %+v", info.WAL)
	}
	// Deleting an acked handle succeeds iff the insert survived; every
	// acked insert must have.
	for _, i := range []int{0, len(acked) / 3, 2 * len(acked) / 3, len(acked) - 1} {
		req, err := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/v1/indexes/live/points/%d", d.base, acked[i]), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var dr httpapi.DeleteResponse
		derr := json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != 200 || !dr.Deleted {
			t.Fatalf("acked handle %d lost after recovery: code=%d deleted=%v err=%v",
				acked[i], resp.StatusCode, dr.Deleted, derr)
		}
	}

	// Snapshot absorbs the log: records drop to zero and a clean restart
	// replays nothing.
	snap := filepath.Join(dir, "snap.p2h")
	var sr httpapi.SnapshotResponse
	if code, err := d.postJSON(t, "/v1/indexes/live/snapshot", httpapi.SnapshotRequest{Path: container}, &sr); err != nil || code != 200 {
		t.Fatalf("snapshot: %d %v (%s)", code, err, snap)
	}
	if code := d.getJSON(t, "/v1/indexes/live", &info); code != 200 || info.WAL.Records != 0 {
		t.Fatalf("after snapshot: %+v", info.WAL)
	}
	d.kill()
	d2 := startDaemonProcess(t, bin, args...)
	defer d2.kill()
	if code := d2.getJSON(t, "/v1/indexes/live", &info); code != 200 || info.WAL.Replayed != 0 {
		t.Fatalf("post-snapshot restart: %+v", info.WAL)
	}
}
