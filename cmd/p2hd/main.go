// Command p2hd is the P2HNNS service daemon: it serves any number of named
// indexes over an HTTP API — search and batched search through the
// zero-allocation serving engine, insert/delete for dynamic indexes, atomic
// snapshots, hot load/swap/unload without a restart, Prometheus metrics and
// a health endpoint — and shuts down gracefully, draining in-flight queries.
//
// Usage:
//
//	p2hd -config p2hd.json
//	p2hd -listen 127.0.0.1:8080 -name trees -load index.p2h
//	p2hd -name fresh -index bctree -spec '{"leaf_size":50}' -data data.fvecs
//	p2hd -name live -load dyn.p2h -wal -compact   # durable dynamic serving
//	p2hd -listen :8080                      # empty: hot-load indexes via the API
//
// The config file declares the listen address, engine tuning and the indexes
// to stand up at startup:
//
//	{
//	  "listen": "127.0.0.1:8080",
//	  "drain_timeout": "10s",
//	  "server": {"workers": 8, "max_batch": 16, "cache_entries": 4096},
//	  "indexes": {
//	    "trees": {"path": "trees.p2h"},
//	    "live":  {"spec": {"kind": "dynamic", "dim": 128}, "data": ""}
//	  }
//	}
//
// Flags override the config file where both are given. The API surface is
// documented on p2h/internal/httpapi.NewHandler; see the repository README
// for curl examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	p2h "p2h"
	"p2h/internal/faultinject"
	"p2h/internal/httpapi"
)

// notifyReady is invoked with the bound address once the daemon accepts
// connections; tests override it to learn the port of a ":0" listen.
var notifyReady = func(addr string) {}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p2hd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode       = fs.String("mode", "serve", "\"serve\" (index daemon) or \"router\" (cluster scatter-gather front; -config names the partition map)")
		listen     = fs.String("listen", "", "address to bind (default: the config file's, else 127.0.0.1:8080)")
		configPath = fs.String("config", "", "JSON config file declaring indexes and tuning")
		name       = fs.String("name", "default", "name of the index declared by -load / -index / -spec / -data")
		loadPath   = fs.String("load", "", "serve a saved .p2h container under -name")
		indexKind  = fs.String("index", "", "index kind to build under -name ("+strings.Join(p2h.Kinds(), ", ")+")")
		specJSON   = fs.String("spec", "", "p2h.Spec as JSON for the -name index (-index overrides its kind)")
		dataPath   = fs.String("data", "", "fvecs data file the -spec index is built over")
		wal        = fs.Bool("wal", false, "journal the -load index's mutations to a write-ahead log at <path>.wal, replaying any pending records at startup")
		walSync    = fs.String("walsync", "", "write-ahead log fsync policy: always (default) or none")
		compact    = fs.Bool("compact", false, "absorb dynamic indexes' deltas via background compaction instead of inline rebuilds")
		workers    = fs.Int("workers", 0, "serving workers per index (0: the config file's, else GOMAXPROCS)")
		maxBatch   = fs.Int("maxbatch", 0, "largest micro-batch per worker (0: the config file's, else 16)")
		maxDelay   = fs.Duration("maxdelay", 0, "batch window for an under-filled round (0: the config file's, else 100µs)")
		cacheSize  = fs.Int("cache", 0, "result cache entries per index (0: the config file's, else 1024; negative: disabled)")
		drain      = fs.Duration("drain", 0, "shutdown/unload drain bound (0: the config file's, else 10s)")
		maxQueue   = fs.Int("maxqueue", 0, "admitted-but-unfinished request cap per index (0: the config file's, else 4*workers*maxbatch; negative: shedding disabled)")
		maxTimeout = fs.Duration("maxtimeout", 0, "cap on client timeout_ms, backstop for requests without one (0: the config file's, else 30s)")
		sloTarget  = fs.Duration("slo", 0, "p99 latency objective; breaching it degrades search budgets until load recedes (0: the config file's slo block, else off)")
		faults     = fs.String("faults", "", "arm fault-injection points, e.g. 'wal.fsync=delay:5ms;engine.search=delay:2ms' (also via P2HD_FAULTS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *mode {
	case "serve":
	case "router":
		return runRouter(ctx, *configPath, *listen, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "p2hd: unknown -mode %q (want \"serve\" or \"router\")\n", *mode)
		return 2
	}

	cfg := httpapi.Config{}
	if *configPath != "" {
		var err error
		if cfg, err = httpapi.LoadConfig(*configPath); err != nil {
			fmt.Fprintf(stderr, "p2hd: %v\n", err)
			return 1
		}
	}
	opts := cfg.Server.Options()
	if *workers != 0 {
		opts.Workers = *workers
	}
	if *maxBatch != 0 {
		opts.MaxBatch = *maxBatch
	}
	if *maxDelay != 0 {
		opts.MaxDelay = *maxDelay
	}
	if *cacheSize != 0 {
		opts.CacheEntries = *cacheSize
	}
	if *compact {
		opts.BackgroundCompaction = true
	}
	if *maxQueue != 0 {
		opts.MaxQueue = *maxQueue
	}
	if *maxTimeout > 0 {
		cfg.MaxTimeout = httpapi.Duration(*maxTimeout)
	}
	if *sloTarget > 0 {
		cfg.SLO = &httpapi.SLOConfig{TargetP99: httpapi.Duration(*sloTarget)}
	}
	// Chaos hooks: the -faults flag and the P2HD_FAULTS environment variable
	// arm fault-injection points before any index loads, so even startup
	// replay runs under the injected faults.
	for _, spec := range []string{os.Getenv("P2HD_FAULTS"), *faults} {
		if err := faultinject.Configure(spec); err != nil {
			fmt.Fprintf(stderr, "p2hd: %v\n", err)
			return 1
		}
	}
	if faultinject.Armed() {
		// Loud on purpose: a daemon accidentally started with faults armed
		// should be impossible to mistake for a healthy one.
		fmt.Fprintf(stderr, "p2hd: fault injection armed — serving degraded on purpose\n")
	}
	drainTimeout := *drain
	if drainTimeout <= 0 {
		drainTimeout = cfg.DrainTimeoutOrDefault()
	}
	addr := *listen
	if addr == "" {
		addr = cfg.Listen
	}
	if addr == "" {
		addr = "127.0.0.1:8080"
	}

	mgr := httpapi.NewManager(opts, drainTimeout)
	defer mgr.Close(context.Background())

	// Startup indexes: the config file's (in name order, so failures are
	// deterministic), then the single index the flags declare.
	names := make([]string, 0, len(cfg.Indexes))
	for n := range cfg.Indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := loadStartupIndex(mgr, n, cfg.Indexes[n], stdout); err != nil {
			fmt.Fprintf(stderr, "p2hd: index %q: %v\n", n, err)
			return 1
		}
	}
	if ic, declared, err := flagIndexConfig(*loadPath, *indexKind, *specJSON, *dataPath, *wal, *walSync); err != nil {
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	} else if declared {
		if err := loadStartupIndex(mgr, *name, ic, stdout); err != nil {
			fmt.Fprintf(stderr, "p2hd: index %q: %v\n", *name, err)
			return 1
		}
	}
	if mgr.Len() == 0 {
		fmt.Fprintln(stdout, "p2hd: no indexes loaded; POST /v1/indexes/{name} to hot-load one")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	}
	if cfg.SLO != nil {
		if err := mgr.StartSLO(*cfg.SLO); err != nil {
			fmt.Fprintf(stderr, "p2hd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "p2hd: SLO controller on, target p99 %v\n", time.Duration(cfg.SLO.TargetP99))
	}
	srv := &http.Server{Handler: httpapi.NewHandlerWithOptions(mgr, cfg.HandlerOptions())}
	fmt.Fprintf(stdout, "p2hd: listening on http://%s\n", ln.Addr())
	notifyReady(ln.Addr().String())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight HTTP requests finish,
	// then drain every serving engine — each step gets its own full drain
	// budget, so a slow-but-healthy HTTP drain cannot starve the engine
	// drain of time, and a stuck query still cannot hold the process
	// hostage for more than two timeouts.
	// Flip /healthz to 503 first: load balancers stop routing while the HTTP
	// drain still serves whatever is in flight (and any stragglers).
	mgr.BeginDrain()
	fmt.Fprintln(stdout, "p2hd: shutting down")
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		fmt.Fprintf(stderr, "p2hd: shutdown: %v\n", err)
	}
	mgrCtx, cancelMgr := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelMgr()
	if err := mgr.Close(mgrCtx); err != nil {
		fmt.Fprintf(stderr, "p2hd: drain: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "p2hd: drained")
	return 0
}

// flagIndexConfig assembles the single-index startup declaration from the
// -load / -index / -spec / -data / -wal flags; declared reports whether any
// were given.
func flagIndexConfig(loadPath, indexKind, specJSON, dataPath string, wal bool, walSync string) (httpapi.IndexConfig, bool, error) {
	if loadPath == "" && indexKind == "" && specJSON == "" && dataPath == "" {
		if wal || walSync != "" {
			return httpapi.IndexConfig{}, false, errors.New("-wal needs -load (durability needs a container to recover into)")
		}
		return httpapi.IndexConfig{}, false, nil
	}
	ic := httpapi.IndexConfig{Path: loadPath, Data: dataPath, WAL: wal, WALSync: walSync}
	if indexKind != "" || specJSON != "" {
		var spec p2h.Spec
		if specJSON != "" {
			if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
				return ic, false, fmt.Errorf("bad -spec JSON: %w", err)
			}
		}
		if indexKind != "" {
			spec.Kind = indexKind
		}
		if spec.Kind == "" {
			spec.Kind = p2h.KindBCTree
		}
		ic.Spec = &spec
	}
	if ic.Path == "" && ic.Spec == nil {
		return ic, false, errors.New("-data needs -index or -spec (or use -load for a saved container)")
	}
	return ic, true, nil
}

// loadStartupIndex loads one declared index and reports it.
func loadStartupIndex(mgr *httpapi.Manager, name string, ic httpapi.IndexConfig, stdout io.Writer) error {
	start := time.Now()
	info, _, err := mgr.Load(name, ic, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "p2hd: index %q: %s, %d points, d=%d, loaded in %v\n",
		name, info.Kind, info.N, info.Dim, time.Since(start).Round(time.Millisecond))
	return nil
}
