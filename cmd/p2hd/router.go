package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"p2h/internal/cluster"
)

// runRouter is p2hd -mode router: stand up the scatter-gather front over the
// partition map in configPath. The router holds no index data — it fans
// searches out to the member daemons, hedges against slow ones, merges exact
// top-k answers, probes member health, and drives snapshot replication.
func runRouter(ctx context.Context, configPath, listen string, stdout, stderr io.Writer) int {
	if configPath == "" {
		fmt.Fprintln(stderr, "p2hd: -mode router needs -config (the cluster partition map)")
		return 2
	}
	cfg, err := cluster.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	}
	addr := listen
	if addr == "" {
		addr = cfg.Listen
	}
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	}
	rt.Start()
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "p2hd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: cluster.NewHandler(rt)}
	fmt.Fprintf(stdout, "p2hd: router over %d member(s), %d index(es)\n",
		len(rt.MemberNames()), len(rt.IndexNames()))
	fmt.Fprintf(stdout, "p2hd: listening on http://%s\n", ln.Addr())
	notifyReady(ln.Addr().String())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "p2hd: %v\n", err)
			return 1
		}
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "p2hd: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(stderr, "p2hd: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "p2hd: drained")
	return 0
}
