package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	p2h "p2h"
)

// durableConfig parameterizes the durability benchmark (-durable).
type durableConfig struct {
	set      string
	n, nq, k int
	seed     int64
	windows  int // measurement windows in the sustained run
	perWin   int // inserts applied per window
	walRecs  int // WAL records for the crash-recovery measurement
	trials   int // crash-recovery repetitions (median reported)
}

// windowResult is one sustained-run measurement window.
type windowResult struct {
	Window    int     `json:"window"`
	Inserted  int     `json:"inserted"`      // points inserted since the run began
	Pending   int     `json:"pending_delta"` // un-folded delta after the window's searches
	SearchQPS float64 `json:"search_qps"`
}

// sustainedResult is one full sustained insert+search run.
type sustainedResult struct {
	Mode        string         `json:"mode"`
	InsertQPS   float64        `json:"insert_qps"`
	Compactions int64          `json:"compactions"`
	SettleMS    float64        `json:"compaction_settle_ms"` // total time spent waiting for in-flight folds
	Windows     []windowResult `json:"windows"`
}

// runDurable measures what the durability work costs and buys: a sustained
// insert+search run with the delta buffer growing unchecked versus the same
// run with background compaction absorbing it (per-window search qps shows
// the degradation and the recovery), plus the median time to reopen a
// container with a populated write-ahead log — the crash-recovery path.
// The JSON document goes to out; progress lines go to stderr.
func runDurable(out, stderr io.Writer, cfg durableConfig) error {
	data := p2h.Dedup(p2h.GenerateDataset(cfg.set, cfg.n, cfg.seed))
	queries := p2h.GenerateQueries(data, cfg.nq, cfg.seed+1)
	inserts := p2h.GenerateDataset(cfg.set, cfg.windows*cfg.perWin+cfg.walRecs, cfg.seed+2)
	fmt.Fprintf(stderr, "durable: %s, %d base points, d=%d, %d windows x %d inserts, %d queries/window\n",
		cfg.set, data.N, data.D, cfg.windows, cfg.perWin, queries.N)

	baseline, err := runSustained(stderr, data, queries, inserts, cfg, false)
	if err != nil {
		return err
	}
	compacted, err := runSustained(stderr, data, queries, inserts, cfg, true)
	if err != nil {
		return err
	}

	recovery, err := measureRecovery(stderr, data, inserts, cfg)
	if err != nil {
		return err
	}

	doc := map[string]any{
		"generated_by": "p2hbench -durable (scripts/bench_durable.sh)",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"go":           runtime.Version(),
		"workload": map[string]any{
			"set": cfg.set, "n": data.N, "dim": data.D, "nq": cfg.nq, "k": cfg.k,
			"windows": cfg.windows, "inserts_per_window": cfg.perWin,
			"wal_sync": "none",
		},
		"sustained": []sustainedResult{baseline, compacted},
		"recovery":  recovery,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runSustained builds a dynamic index over data, serves it with (or
// without) background compaction, and interleaves insert bursts with
// search windows. The inline-rebuild trigger is pushed out of reach in
// both runs so the baseline shows pure delta-growth degradation; the
// compacting run folds the same growth off-thread.
func runSustained(stderr io.Writer, data, queries, inserts *p2h.Matrix, cfg durableConfig, compact bool) (sustainedResult, error) {
	mode := "inline_delta_growth"
	spec := p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 100, Seed: cfg.seed, RebuildFraction: 1e9}
	if compact {
		mode = "background_compaction"
		spec.CompactFraction = 0.02
	}
	res := sustainedResult{Mode: mode}

	ix, err := p2h.New(data, spec)
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "p2hbench-durable")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	wal, err := p2h.AttachWAL(ix, filepath.Join(dir, mode+".wal"), p2h.WALSyncNone)
	if err != nil {
		return res, err
	}
	defer wal.Close()
	srv := p2h.NewServer(ix, p2h.ServerOptions{
		CacheEntries:         -1, // measure the index, not the cache
		WAL:                  wal,
		BackgroundCompaction: compact,
	})
	defer srv.Close()

	var insertTime, settleTime time.Duration
	next := 0
	for w := 0; w < cfg.windows; w++ {
		start := time.Now()
		for i := 0; i < cfg.perWin; i++ {
			if _, err := srv.Insert(inserts.Row(next)); err != nil {
				return res, err
			}
			next++
		}
		insertTime += time.Since(start)

		if compact {
			// Let the fold the burst triggered land before timing the
			// window: the point is search cost versus delta size, and on a
			// small runner an in-flight build would otherwise just measure
			// CPU contention. The wait is reported as compaction_settle_ms.
			start = time.Now()
			for deadline := time.Now().Add(30 * time.Second); srv.Stats().PendingDelta > 0 && time.Now().Before(deadline); {
				time.Sleep(2 * time.Millisecond)
			}
			settleTime += time.Since(start)
		}

		start = time.Now()
		for i := 0; i < queries.N; i++ {
			srv.Search(queries.Row(i), p2h.SearchOptions{K: cfg.k})
		}
		elapsed := time.Since(start)
		res.Windows = append(res.Windows, windowResult{
			Window:    w,
			Inserted:  next,
			Pending:   srv.Stats().PendingDelta,
			SearchQPS: round1(float64(queries.N) / elapsed.Seconds()),
		})
	}
	if err := srv.Drain(context.Background()); err != nil {
		return res, err
	}
	res.InsertQPS = round1(float64(next) / insertTime.Seconds())
	res.SettleMS = round1(settleTime.Seconds() * 1000)
	res.Compactions = srv.Stats().Compactions
	fmt.Fprintf(stderr, "durable: %s: insert %.0f qps, search %.0f -> %.0f qps over %d windows, %d compactions\n",
		mode, res.InsertQPS, res.Windows[0].SearchQPS, res.Windows[len(res.Windows)-1].SearchQPS,
		cfg.windows, res.Compactions)
	return res, nil
}

// measureRecovery saves a container, journals cfg.walRecs mutations into
// its sidecar log, and times p2h.Open — which replays the whole log — over
// cfg.trials repetitions. Open only reads the sidecar, so every trial
// replays the identical history.
func measureRecovery(stderr io.Writer, data, inserts *p2h.Matrix, cfg durableConfig) (map[string]any, error) {
	dir, err := os.MkdirTemp("", "p2hbench-recover")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 100, Seed: cfg.seed})
	if err != nil {
		return nil, err
	}
	container := filepath.Join(dir, "base.p2h")
	if err := p2h.SaveFile(container, ix); err != nil {
		return nil, err
	}
	reopened, err := p2h.Open(container)
	if err != nil {
		return nil, err
	}
	wal, err := p2h.AttachWAL(reopened, p2h.WALPath(container), p2h.WALSyncNone)
	if err != nil {
		return nil, err
	}
	d := reopened.(*p2h.Dynamic)
	rng := rand.New(rand.NewSource(cfg.seed + 3))
	off := inserts.N - cfg.walRecs
	for i := 0; i < cfg.walRecs; i++ {
		// Mostly inserts with a delete sprinkled in, like a live log.
		if i%8 == 7 {
			h := int32(rng.Intn(d.Handles()))
			d.Delete(h)
			if err := wal.AppendDelete(h); err != nil {
				return nil, err
			}
			continue
		}
		p := inserts.Row(off + i)
		if err := wal.AppendInsert(d.Insert(p), p); err != nil {
			return nil, err
		}
	}
	if err := wal.Close(); err != nil {
		return nil, err
	}

	times := make([]float64, cfg.trials)
	for t := range times {
		start := time.Now()
		if _, err := p2h.Open(container); err != nil {
			return nil, err
		}
		times[t] = float64(time.Since(start).Microseconds()) / 1000
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	fmt.Fprintf(stderr, "durable: recovery: %d WAL records replayed in median %.1fms over %d trials\n",
		cfg.walRecs, median, cfg.trials)
	return map[string]any{
		"wal_records":    cfg.walRecs,
		"trials":         cfg.trials,
		"median_open_ms": round1(median),
		"per_trial_ms":   rounded(times),
	}, nil
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

func rounded(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = round1(v)
	}
	return out
}
