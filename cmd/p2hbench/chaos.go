package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	p2h "p2h"
	"p2h/internal/httpapi"
)

// The chaos benchmark (-chaos) answers the overload questions with numbers:
// flood the real serving stack (HTTP handler, admission control, SLO
// feedback controller) at twice its measured exact-search capacity and
// report what the non-shed p99 settles to under degradation, what fraction
// of traffic was shed or expired, and what recall the degraded answers still
// deliver — then measure what WAL group commit buys: concurrent fsync-always
// insert throughput against the one-fsync-per-insert sequential baseline.
//
// The SLO is split the way a deadline-budgeted service splits it: clients
// attach a deadline at 80% of the SLO (a response slower than that is a
// deadline failure, not an SLO-compliant success), and the controller
// defends an internal objective at 60% so degradation engages before
// deadline cancellation clips the latency histogram it watches. Admission
// control bounds queueing delay to the client deadline — a request that
// would only expire in the queue is shed up front as a 429.

// chaosConfig parameterizes the chaos benchmark.
type chaosConfig struct {
	set      string
	n, nq, k int
	seed     int64
	workers  int
	slo      time.Duration // p99 objective the controller defends
	calib    time.Duration // closed-loop capacity calibration window
	flood    time.Duration // open-loop 2x flood duration
}

// outcome is one flood request as the client saw it.
type outcome struct {
	at     time.Duration // arrival, relative to flood start
	lat    time.Duration
	status int
	recall float64 // valid when status == 200
}

func runChaos(out, stderr io.Writer, cfg chaosConfig) error {
	data := p2h.Dedup(p2h.GenerateDataset(cfg.set, cfg.n, cfg.seed))
	queries := p2h.GenerateQueries(data, cfg.nq, cfg.seed+1)
	gt := p2h.GroundTruth(data, queries, cfg.k)
	fmt.Fprintf(stderr, "chaos: %s, %d points, d=%d, %d queries, k=%d, SLO p99 %v\n",
		cfg.set, data.N, data.D, queries.N, cfg.k, cfg.slo)

	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 100, Seed: cfg.seed})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "p2hbench-chaos")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.p2h")
	if err := p2h.SaveFile(path, ix); err != nil {
		return err
	}

	// The deadline budget: 80% of the SLO for the client deadline, 60% for
	// the controller's internal objective (see the file comment).
	deadline := cfg.slo * 4 / 5
	target := cfg.slo * 3 / 5

	// The real daemon stack: manager, SLO controller, HTTP handler on a
	// loopback listener. Cache off — the flood must hit the index. Admission
	// bounds queueing delay to the client deadline.
	mgr := httpapi.NewManager(p2h.ServerOptions{
		Workers: cfg.workers, CacheEntries: -1,
		MaxQueueDelay: deadline,
	}, 0)
	defer mgr.Close(context.Background())
	if _, _, err := mgr.Load("bench", httpapi.IndexConfig{Path: path}, false); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: httpapi.NewHandler(mgr)}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/v1/indexes/bench/search"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 4096, MaxIdleConnsPerHost: 4096,
	}}

	ceiling := func() int { return mgr.List()[0].Stats.BudgetCeiling }

	// Phase 1 — capacity: closed-loop exact search with one client per
	// worker, controller not yet running. This is the honest ceiling the
	// flood doubles.
	var calibLats []time.Duration
	var calibMu sync.Mutex
	var calibN atomic.Int64
	calibStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Since(calibStart) < cfg.calib; i++ {
				t0 := time.Now()
				status, _, err := postSearch(client, url, queries.Row(i%queries.N), cfg.k, 0)
				if err != nil || status != 200 {
					continue
				}
				lat := time.Since(t0)
				calibN.Add(1)
				calibMu.Lock()
				calibLats = append(calibLats, lat)
				calibMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	capacity := float64(calibN.Load()) / cfg.calib.Seconds()
	calibP99 := quantileDur(calibLats, 0.99)
	fmt.Fprintf(stderr, "chaos: capacity %.0f qps exact (p99 %v) with %d workers\n",
		capacity, calibP99.Round(10*time.Microsecond), cfg.workers)

	if err := mgr.StartSLO(httpapi.SLOConfig{
		TargetP99:     httpapi.Duration(target),
		Interval:      httpapi.Duration(100 * time.Millisecond),
		MinWindow:     20,
		BreachWindows: 1, RecoverWindows: 8,
	}); err != nil {
		return err
	}

	// Phase 2 — flood at 2x capacity, open loop: arrivals do not wait for
	// completions, exactly the regime that melts an unprotected server.
	rate := 2 * capacity
	interval := time.Duration(float64(time.Second) / rate)
	timeoutMS := int(max64(int64(deadline/time.Millisecond), 1))
	var mu sync.Mutex
	var outcomes []outcome
	var ceilingTimeline []int
	stopSample := make(chan struct{})
	go func() { // ceiling timeline, one sample per controller interval
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				mu.Lock()
				ceilingTimeline = append(ceilingTimeline, ceiling())
				mu.Unlock()
			}
		}
	}()
	floodStart := time.Now()
	tick := time.NewTicker(interval)
	for i := 0; time.Since(floodStart) < cfg.flood; i++ {
		<-tick.C
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			at := time.Since(floodStart)
			qi := i % queries.N
			t0 := time.Now()
			status, res, err := postSearch(client, url, queries.Row(qi), cfg.k, timeoutMS)
			if err != nil {
				return
			}
			o := outcome{at: at, lat: time.Since(t0), status: status}
			if status == 200 {
				o.recall = p2h.Recall(res, gt[qi])
			}
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	tick.Stop()
	wg.Wait()
	close(stopSample)

	stats := mgr.List()[0].Stats
	finalCeiling := stats.BudgetCeiling

	// Steady state = the last half of the flood, after the controller had
	// time to engage; the transient before it is reported separately.
	var served, shed, expired int
	var lateLats []time.Duration
	var lateRecall float64
	var lateServed int
	for _, o := range outcomes {
		switch o.status {
		case 200:
			served++
		case 429:
			shed++
		case 504:
			expired++
		}
		if o.at >= cfg.flood/2 && o.status == 200 {
			lateLats = append(lateLats, o.lat)
			lateRecall += o.recall
			lateServed++
		}
	}
	total := len(outcomes)
	lateP99 := quantileDur(lateLats, 0.99)
	if lateServed > 0 {
		lateRecall /= float64(lateServed)
	}
	sloMet := lateServed > 0 && lateP99 <= cfg.slo
	fmt.Fprintf(stderr, "chaos: flood 2x for %v: %d arrivals, %d served (%.1f%%), %d shed, %d expired; steady-state p99 %v (SLO met: %v), recall %.3f, ceiling %d\n",
		cfg.flood, total, served, 100*frac(served, total), shed, expired,
		lateP99.Round(10*time.Microsecond), sloMet, lateRecall, finalCeiling)

	// Phase 3 — recovery: load gone, the controller must walk back to exact.
	recovered := false
	recoverStart := time.Now()
	for time.Since(recoverStart) < 10*time.Second {
		if ceiling() == 0 {
			recovered = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	recoverMS := time.Since(recoverStart).Seconds() * 1000
	fmt.Fprintf(stderr, "chaos: recovered to exact serving: %v (%.0fms after load stopped)\n", recovered, recoverMS)

	gc, err := runGroupCommit(stderr, data.D, cfg.seed)
	if err != nil {
		return err
	}

	doc := map[string]any{
		"generated_by": "p2hbench -chaos (scripts/bench_overload.sh)",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"go":           runtime.Version(),
		"workload": map[string]any{
			"set": cfg.set, "n": data.N, "dim": data.D, "nq": cfg.nq, "k": cfg.k,
			"workers": cfg.workers, "index": "bctree",
			"slo_p99_ms":           float64(cfg.slo) / 1e6,
			"client_deadline_ms":   float64(deadline) / 1e6,
			"controller_target_ms": float64(target) / 1e6,
		},
		"capacity": map[string]any{
			"exact_qps": round1(capacity),
			"p99_ms":    round3(calibP99.Seconds() * 1000),
		},
		"flood": map[string]any{
			"rate_x":                 2,
			"duration_s":             cfg.flood.Seconds(),
			"arrivals":               total,
			"served":                 served,
			"shed":                   shed,
			"expired":                expired,
			"served_fraction":        round3(frac(served, total)),
			"shed_fraction":          round3(frac(shed, total)),
			"expired_fraction":       round3(frac(expired, total)),
			"steady_state_p99_ms":    round3(lateP99.Seconds() * 1000),
			"steady_state_recall":    round3(lateRecall),
			"slo_met":                sloMet,
			"final_budget_ceiling":   finalCeiling,
			"degraded_queries_total": stats.DegradedQueries,
			"ceiling_timeline":       ceilingTimeline,
		},
		"recovery": map[string]any{
			"recovered_to_exact": recovered,
			"recover_ms":         round1(recoverMS),
		},
		"group_commit": gc,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runGroupCommit measures insert throughput under WALSyncAlways two ways:
// one writer paying one fsync per insert (the pre-group-commit cost), and
// 64 writers whose waits share fsyncs through the engine's group-commit
// path. Byte-level crash-equivalence of the two logs is pinned by
// internal/crashtest; this measures only the throughput side.
func runGroupCommit(stderr io.Writer, dim int, seed int64) (map[string]any, error) {
	const (
		seqInserts = 1500
		grpWriters = 64
		grpPerW    = 150
	)
	rng := rand.New(rand.NewSource(seed + 7))
	base := p2h.GenerateDataset("Sift", 2000, seed+8)
	vec := func() []float32 {
		v := make([]float32, base.D)
		for i := range v {
			v[i] = rng.Float32()*2 - 1
		}
		return v
	}
	vecs := make([][]float32, seqInserts+grpWriters*grpPerW)
	for i := range vecs {
		vecs[i] = vec()
	}

	dir, err := os.MkdirTemp("", "p2hbench-gc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Sequential: every insert waits for its own fsync.
	ix1, err := p2h.New(base, p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 100, Seed: seed, RebuildFraction: 1e9})
	if err != nil {
		return nil, err
	}
	d1 := ix1.(*p2h.Dynamic)
	w1, err := p2h.AttachWAL(d1, filepath.Join(dir, "seq.wal"), p2h.WALSyncAlways)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i := 0; i < seqInserts; i++ {
		h := d1.Insert(vecs[i])
		if err := w1.AppendInsert(h, vecs[i]); err != nil {
			return nil, err
		}
		if err := w1.WaitDurable(); err != nil {
			return nil, err
		}
	}
	seqQPS := float64(seqInserts) / time.Since(t0).Seconds()
	seqSyncs := w1.Syncs()
	w1.Close()

	// Group commit: concurrent writers through the serving engine, which
	// appends under the mutation lock and waits for durability outside it.
	ix2, err := p2h.New(base, p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 100, Seed: seed, RebuildFraction: 1e9})
	if err != nil {
		return nil, err
	}
	w2, err := p2h.AttachWAL(ix2, filepath.Join(dir, "grp.wal"), p2h.WALSyncAlways)
	if err != nil {
		return nil, err
	}
	srv := p2h.NewServer(ix2, p2h.ServerOptions{WAL: w2, CacheEntries: -1})
	var wg sync.WaitGroup
	var insErr atomic.Value
	t0 = time.Now()
	for g := 0; g < grpWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < grpPerW; i++ {
				if _, err := srv.Insert(vecs[seqInserts+g*grpPerW+i]); err != nil {
					insErr.Store(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	grpElapsed := time.Since(t0)
	if err, _ := insErr.Load().(error); err != nil {
		return nil, err
	}
	grpInserts := grpWriters * grpPerW
	grpQPS := float64(grpInserts) / grpElapsed.Seconds()
	grpSyncs := w2.Syncs()
	srv.Close()
	w2.Close()

	speedup := grpQPS / seqQPS
	fmt.Fprintf(stderr, "chaos: group commit %.0f inserts/s vs %.0f sequential (%.1fx), %d records / %d fsyncs (%.1fx amortized)\n",
		grpQPS, seqQPS, speedup, grpInserts, grpSyncs, float64(grpInserts)/float64(grpSyncs))
	return map[string]any{
		"wal_sync":                "always",
		"sequential_insert_qps":   round1(seqQPS),
		"sequential_fsyncs":       seqSyncs,
		"group_writers":           grpWriters,
		"group_insert_qps":        round1(grpQPS),
		"group_fsyncs":            grpSyncs,
		"group_records":           grpInserts,
		"speedup":                 round2(speedup),
		"fsync_amortization":      round1(float64(grpInserts) / float64(grpSyncs)),
		"crash_equivalence_suite": "internal/crashtest TestWALGroupCommitCrashPoints",
	}, nil
}

// postSearch runs one HTTP search and returns the status plus decoded
// results (200 only).
func postSearch(client *http.Client, url string, q []float32, k, timeoutMS int) (int, []p2h.Result, error) {
	body, err := json.Marshal(httpapi.SearchRequest{
		Query:             q,
		SearchOptionsJSON: httpapi.SearchOptionsJSON{K: k, TimeoutMS: timeoutMS},
	})
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, nil
	}
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return resp.StatusCode, nil, err
	}
	res := make([]p2h.Result, len(sr.Results))
	for i, r := range sr.Results {
		res[i] = p2h.Result{ID: r.ID, Dist: r.Dist}
	}
	return resp.StatusCode, res, nil
}

// quantileDur returns the q-quantile of lats (0 when empty).
func quantileDur(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
