package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	p2h "p2h"
)

// filterConfig parameterizes the filtered-search benchmark (-filter).
type filterConfig struct {
	set      string
	n, nq, k int
	seed     int64
	leafSize int
	repeat   int // timed passes over the query set per measurement
}

// filterModeResult is one (selectivity, execution strategy) measurement.
type filterModeResult struct {
	QPS          float64 `json:"qps"`
	MSPerQuery   float64 `json:"ms_per_query"`
	CandPerQuery float64 `json:"candidates_per_query"`
	// Pushdown-only counters: whole subtrees the per-node attribute
	// summaries pruned, and the points under them (zero for post-filter,
	// which must visit and reject every non-matching candidate).
	SkippedNodesPerQuery  float64 `json:"skipped_nodes_per_query,omitempty"`
	SkippedPointsPerQuery float64 `json:"skipped_points_per_query,omitempty"`
}

// filterSelResult is one selectivity tier: the same predicate executed with
// subtree pushdown versus as a per-row post-filter.
type filterSelResult struct {
	Tag           string           `json:"tag"`
	MatchFraction float64          `json:"match_fraction"`
	Recall        float64          `json:"recall"` // vs brute-force filtered ground truth
	Pushdown      filterModeResult `json:"pushdown"`
	PostFilter    filterModeResult `json:"postfilter"`
	SpeedupX      float64          `json:"speedup_x"`
}

// runFilter measures what predicate pushdown buys over post-filtering: the
// same tag predicate at ~1%, ~10% and ~50% selectivity, executed (a) as a
// declarative Pred the tree prunes with per-node attribute summaries and (b)
// as an equivalent per-row Filter closure over the same payloads. Both
// strategies return byte-identical results (verified every run); the
// benchmark reports the throughput gap and the subtree-skip counters, and
// fails if pushdown does not beat post-filter at the selective tiers (<=10%)
// or if any filtered answer misses the brute-force filtered ground truth.
// The JSON document goes to out; progress lines go to stderr.
func runFilter(out, stderr io.Writer, cfg filterConfig) error {
	data := p2h.Dedup(p2h.GenerateDataset(cfg.set, cfg.n, cfg.seed))
	queries := p2h.GenerateQueries(data, cfg.nq, cfg.seed+1)
	fmt.Fprintf(stderr, "filter: %s, %d points, d=%d, %d queries, k=%d, leaf %d\n",
		cfg.set, data.N, data.D, queries.N, cfg.k, cfg.leafSize)

	// Payloads: three tags at ~1%, ~10% and ~50% uniform selectivity, keyed
	// by row id, plus a numeric field so the schema is representative.
	attrs := make([]p2h.PointAttrs, data.N)
	for i := range attrs {
		var tags []string
		if i%100 == 0 {
			tags = append(tags, "sel1")
		}
		if i%10 == 0 {
			tags = append(tags, "sel10")
		}
		if i%2 == 0 {
			tags = append(tags, "sel50")
		}
		attrs[i] = p2h.PointAttrs{
			Tags:   tags,
			Floats: map[string]float64{"score": float64(i%1000) / 1000},
		}
	}

	start := time.Now()
	tree, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: cfg.leafSize, Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := p2h.AttachAttributes(tree, attrs); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "filter: bctree built+attributed in %v\n", time.Since(start).Round(time.Millisecond))

	// The brute-force filtered oracle: a linear scan over the same payloads.
	oracle, err := p2h.New(data, p2h.Spec{Kind: p2h.KindLinearScan, Seed: cfg.seed})
	if err != nil {
		return err
	}

	var tiers []filterSelResult
	for _, tag := range []string{"sel1", "sel10", "sel50"} {
		pred := p2h.TagIs(tag)
		matches := 0
		for i := range attrs {
			if pred.Matches(attrs[i]) {
				matches++
			}
		}
		tier := filterSelResult{Tag: tag, MatchFraction: float64(matches) / float64(data.N)}

		// A post-filter evaluates the same membership per candidate row —
		// the work pushdown exists to skip wholesale.
		postOpts := p2h.SearchOptions{K: cfg.k, Filter: func(id int32) bool {
			return pred.Matches(attrs[id])
		}}
		pushOpts := p2h.SearchOptions{K: cfg.k, Pred: pred}

		// Correctness before speed: both strategies byte-identical, and
		// exact against the brute-force filtered oracle.
		var recall float64
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			push, _ := tree.Search(q, pushOpts)
			post, _ := tree.Search(q, postOpts)
			if len(push) != len(post) {
				return fmt.Errorf("tag %s query %d: pushdown %d results, post-filter %d",
					tag, qi, len(push), len(post))
			}
			for i := range push {
				if push[i] != post[i] {
					return fmt.Errorf("tag %s query %d rank %d: pushdown %+v, post-filter %+v",
						tag, qi, i, push[i], post[i])
				}
			}
			want, _ := oracle.Search(q, postOpts)
			recall += p2h.Recall(push, want)
		}
		tier.Recall = recall / float64(queries.N)

		tier.Pushdown = measureFilter(tree, queries, pushOpts, cfg.repeat)
		tier.PostFilter = measureFilter(tree, queries, postOpts, cfg.repeat)
		tier.SpeedupX = tier.Pushdown.QPS / tier.PostFilter.QPS
		fmt.Fprintf(stderr, "filter: %s (%.1f%%): pushdown %.0f qps (%.1f nodes skipped/query), post-filter %.0f qps, %.2fx\n",
			tag, 100*tier.MatchFraction, tier.Pushdown.QPS, tier.Pushdown.SkippedNodesPerQuery,
			tier.PostFilter.QPS, tier.SpeedupX)
		tiers = append(tiers, tier)
	}

	doc := map[string]any{
		"generated_by": "p2hbench -filter (scripts/bench_filter.sh)",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"go":           runtime.Version(),
		"workload": map[string]any{
			"set": cfg.set, "n": data.N, "dim": data.D, "nq": cfg.nq, "k": cfg.k,
			"kind": p2h.KindBCTree, "leaf_size": cfg.leafSize, "repeat": cfg.repeat,
		},
		"selectivities": tiers,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}

	// The gates: exact filtered recall everywhere, and pushdown must pay
	// for itself where it matters — the selective tiers.
	for _, tier := range tiers {
		if tier.Recall < 1.0 {
			return fmt.Errorf("gate: tag %s recall %.4f vs filtered ground truth, want 1.0", tier.Tag, tier.Recall)
		}
		if tier.MatchFraction <= 0.10+1e-9 && tier.SpeedupX <= 1.0 {
			return fmt.Errorf("gate: tag %s (%.1f%% selectivity): pushdown %.0f qps did not beat post-filter %.0f qps",
				tier.Tag, 100*tier.MatchFraction, tier.Pushdown.QPS, tier.PostFilter.QPS)
		}
	}
	return nil
}

// measureFilter times repeat passes of the query set under opts and returns
// per-query averages. One untimed pass warms caches first.
func measureFilter(ix p2h.Index, queries *p2h.Matrix, opts p2h.SearchOptions, repeat int) filterModeResult {
	for qi := 0; qi < queries.N; qi++ {
		ix.Search(queries.Row(qi), opts)
	}
	var agg p2h.Stats
	total := repeat * queries.N
	start := time.Now()
	for r := 0; r < repeat; r++ {
		for qi := 0; qi < queries.N; qi++ {
			_, st := ix.Search(queries.Row(qi), opts)
			agg.Add(st)
		}
	}
	elapsed := time.Since(start)
	return filterModeResult{
		QPS:                   float64(total) / elapsed.Seconds(),
		MSPerQuery:            elapsed.Seconds() * 1000 / float64(total),
		CandPerQuery:          float64(agg.Candidates) / float64(total),
		SkippedNodesPerQuery:  float64(agg.FilterSkippedNodes) / float64(total),
		SkippedPointsPerQuery: float64(agg.FilterSkippedPoints) / float64(total),
	}
}
