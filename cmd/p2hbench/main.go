// Command p2hbench regenerates the paper's evaluation: Table II, Table III,
// and Figures 5-11, plus the repository's extra ablations, on the synthetic
// surrogate data sets.
//
// Usage:
//
//	p2hbench -exp fig5 -sets Music,Sift -scale 0.5 -v
//	p2hbench -exp all -out results.txt
//
// Every experiment accepts -scale to shrink or grow the default point
// counts, so a laptop run and an overnight run use the same code path.
//
// Besides the named experiments, -index / -spec / -load select one index
// through the p2h registry and run a budget-sweep benchmark (build or load
// time, then recall and latency per candidate fraction) — the quick way to
// evaluate any registered kind, including a saved index container:
//
//	p2hbench -index sharded -spec '{"shards":8}' -sets Sift -n 50000
//	p2hbench -load index.p2h -sets Sift -n 50000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	p2h "p2h"

	"p2h/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p2hbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment to run: "+strings.Join(harness.Experiments(), ", ")+", or 'all' (comma-separated lists accepted)")
		sets     = fs.String("sets", "", "comma-separated data set names (default: the experiment's paper defaults)")
		scale    = fs.Float64("scale", 1, "multiplier on the default per-set point counts")
		nq       = fs.Int("nq", 50, "hyperplane queries per data set")
		k        = fs.Int("k", 10, "top-k for the time-recall experiments")
		seed     = fs.Int64("seed", 1, "seed for data generation and index construction")
		leafSize = fs.Int("leafsize", 100, "tree leaf size N0")
		hashM    = fs.Int("hashm", 32, "NH/FH projection count m")
		hashL    = fs.Int("hashl", 2, "NH/FH collision/separation threshold l")
		lambdaF  = fs.Int("lambda", 2, "NH/FH sampled dimension as a multiple of d (Table III uses 1 and 8 regardless)")
		maxL     = fs.Int("maxlambda", 16384, "cap on the sampled dimension for very high-d sets")
		verbose  = fs.Bool("v", false, "log per-step progress to stderr")
		durable  = fs.Bool("durable", false, "run the durability benchmark (sustained insert+search with and without background compaction, plus WAL crash-recovery time) and emit JSON")
		chaos    = fs.Bool("chaos", false, "run the overload benchmark (2x-capacity flood against the serving stack with SLO degradation, plus WAL group-commit insert throughput) and emit JSON")
		filter   = fs.Bool("filter", false, "run the filtered-search benchmark (predicate pushdown vs post-filter at ~1%/10%/50% selectivity, with byte-identity and recall gates) and emit JSON")
		repeat   = fs.Int("repeat", 3, "timed passes over the query set per measurement for the -filter benchmark")
		sloP99   = fs.Duration("slo", 25*time.Millisecond, "end-to-end p99 SLO for the -chaos benchmark (client deadline 80%, controller objective 60% of it)")
		workers  = fs.Int("workers", 4, "serving workers for the -chaos benchmark")
		indexK   = fs.String("index", "", "registry kind for the single-index benchmark ("+strings.Join(p2h.Kinds(), ", ")+")")
		specJSON = fs.String("spec", "", "p2h.Spec as JSON for the single-index benchmark (-index overrides its kind)")
		quantize = fs.Bool("quantize", false, "enable the 8-bit quantized leaf mirror on the single-index benchmark (shorthand for \"quantize\":true in -spec)")
		loadPath = fs.String("load", "", "benchmark a saved index container instead of building one")
		n        = fs.Int("n", 20000, "points for the single-index benchmark (before dedup)")
		outPath  = fs.String("out", "", "also write results to this file")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := harness.Config{
		Scale: *scale,
		NQ:    *nq,
		K:     *k,
		Seed:  *seed,
		Params: harness.Params{
			LeafSize:     *leafSize,
			Seed:         *seed,
			LambdaFactor: *lambdaF,
			MaxLambda:    *maxL,
			HashM:        *hashM,
			HashL:        *hashL,
		},
	}
	if *sets != "" {
		cfg.Sets = splitList(*sets)
	}
	if *verbose {
		cfg.Progress = stderr
	}

	custom := *indexK != "" || *specJSON != "" || *loadPath != "" || *quantize

	names := splitList(*exp)
	if len(names) == 1 && names[0] == "all" {
		names = harness.Experiments()
	}

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *filter {
		set := "Sift"
		if len(cfg.Sets) > 0 {
			set = cfg.Sets[0]
		}
		if err := runFilter(out, stderr, filterConfig{
			set: set, n: *n, nq: *nq, k: *k, seed: *seed,
			leafSize: *leafSize, repeat: *repeat,
		}); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	} else if *chaos {
		set := "Sift"
		if len(cfg.Sets) > 0 {
			set = cfg.Sets[0]
		}
		if err := runChaos(out, stderr, chaosConfig{
			set: set, n: *n, nq: *nq, k: *k, seed: *seed,
			workers: *workers, slo: *sloP99,
			calib: 2 * time.Second, flood: 12 * time.Second,
		}); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	} else if *durable {
		set := "Sift"
		if len(cfg.Sets) > 0 {
			set = cfg.Sets[0]
		}
		if err := runDurable(out, stderr, durableConfig{
			set: set, n: *n, nq: *nq, k: *k, seed: *seed,
			windows: 12, perWin: *n / 10, walRecs: *n / 4, trials: 5,
		}); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	} else if custom {
		set := "Sift"
		if len(cfg.Sets) > 0 {
			set = cfg.Sets[0]
		}
		if err := runCustom(out, customConfig{
			set: set, n: *n, nq: *nq, k: *k, seed: *seed,
			kind: *indexK, specJSON: *specJSON, loadPath: *loadPath,
			quantize: *quantize,
		}); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	} else {
		for _, name := range names {
			result, err := harness.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintf(stderr, "p2hbench: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "=== %s ===\n%s\n", name, result)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// customConfig parameterizes the single-index benchmark.
type customConfig struct {
	set      string
	n, nq, k int
	seed     int64
	kind     string
	specJSON string
	loadPath string
	quantize bool
}

// runCustom benchmarks one index selected through the registry (built from
// -index / -spec or loaded from -load) with the same protocol as the named
// experiments: generated surrogate data, random hyperplane queries, exact
// ground truth, and a candidate-budget sweep reporting recall and latency.
func runCustom(w io.Writer, cfg customConfig) error {
	data := p2h.Dedup(p2h.GenerateDataset(cfg.set, cfg.n, cfg.seed))
	fmt.Fprintf(w, "data: %s, %d points, %d dimensions\n", cfg.set, data.N, data.D)

	start := time.Now()
	var ix p2h.Index
	if cfg.loadPath != "" {
		var err error
		ix, err = p2h.Open(cfg.loadPath)
		if err != nil {
			return err
		}
		if ix.Dim() != data.D {
			return fmt.Errorf("loaded index has dimension %d, data has %d", ix.Dim(), data.D)
		}
		fmt.Fprintf(w, "index: %s loaded in %v (%d index bytes)\n",
			p2h.KindOf(ix), time.Since(start).Round(time.Millisecond), ix.IndexBytes())
	} else {
		var spec p2h.Spec
		if cfg.specJSON != "" {
			if err := json.Unmarshal([]byte(cfg.specJSON), &spec); err != nil {
				return fmt.Errorf("bad -spec JSON: %w", err)
			}
		}
		if cfg.kind != "" {
			spec.Kind = cfg.kind
		}
		if spec.Kind == "" {
			spec.Kind = p2h.KindBCTree
		}
		if spec.Seed == 0 {
			spec.Seed = cfg.seed
		}
		if cfg.quantize {
			spec.Quantize = true
		}
		var err error
		ix, err = p2h.New(data, spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "index: %s built in %v (%d index bytes)\n",
			p2h.KindOf(ix), time.Since(start).Round(time.Millisecond), ix.IndexBytes())
	}

	queries := p2h.GenerateQueries(data, cfg.nq, cfg.seed+1)
	gt := p2h.GroundTruth(data, queries, cfg.k)

	fmt.Fprintf(w, "%10s  %8s  %12s  %14s\n", "budget", "recall", "ms/query", "cands/query")
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0} {
		budget := int(frac * float64(ix.N()))
		if budget < 1 {
			budget = 1
		}
		var recall float64
		var candidates int64
		start := time.Now()
		for i := 0; i < queries.N; i++ {
			res, st := ix.Search(queries.Row(i), p2h.SearchOptions{K: cfg.k, Budget: budget})
			recall += p2h.Recall(res, gt[i])
			candidates += st.Candidates
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%9.1f%%  %7.1f%%  %12.4f  %14.1f\n",
			frac*100,
			100*recall/float64(queries.N),
			elapsed.Seconds()*1000/float64(queries.N),
			float64(candidates)/float64(queries.N))
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
