// Command p2hbench regenerates the paper's evaluation: Table II, Table III,
// and Figures 5-11, plus the repository's extra ablations, on the synthetic
// surrogate data sets.
//
// Usage:
//
//	p2hbench -exp fig5 -sets Music,Sift -scale 0.5 -v
//	p2hbench -exp all -out results.txt
//
// Every experiment accepts -scale to shrink or grow the default point
// counts, so a laptop run and an overnight run use the same code path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"p2h/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p2hbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment to run: "+strings.Join(harness.Experiments(), ", ")+", or 'all' (comma-separated lists accepted)")
		sets     = fs.String("sets", "", "comma-separated data set names (default: the experiment's paper defaults)")
		scale    = fs.Float64("scale", 1, "multiplier on the default per-set point counts")
		nq       = fs.Int("nq", 50, "hyperplane queries per data set")
		k        = fs.Int("k", 10, "top-k for the time-recall experiments")
		seed     = fs.Int64("seed", 1, "seed for data generation and index construction")
		leafSize = fs.Int("leafsize", 100, "tree leaf size N0")
		hashM    = fs.Int("hashm", 32, "NH/FH projection count m")
		hashL    = fs.Int("hashl", 2, "NH/FH collision/separation threshold l")
		lambdaF  = fs.Int("lambda", 2, "NH/FH sampled dimension as a multiple of d (Table III uses 1 and 8 regardless)")
		maxL     = fs.Int("maxlambda", 16384, "cap on the sampled dimension for very high-d sets")
		verbose  = fs.Bool("v", false, "log per-step progress to stderr")
		outPath  = fs.String("out", "", "also write results to this file")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := harness.Config{
		Scale: *scale,
		NQ:    *nq,
		K:     *k,
		Seed:  *seed,
		Params: harness.Params{
			LeafSize:     *leafSize,
			Seed:         *seed,
			LambdaFactor: *lambdaF,
			MaxLambda:    *maxL,
			HashM:        *hashM,
			HashL:        *hashL,
		},
	}
	if *sets != "" {
		cfg.Sets = splitList(*sets)
	}
	if *verbose {
		cfg.Progress = stderr
	}

	names := splitList(*exp)
	if len(names) == 1 && names[0] == "all" {
		names = harness.Experiments()
	}

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	for _, name := range names {
		result, err := harness.RunExperiment(name, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "=== %s ===\n%s\n", name, result)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "p2hbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
