package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	p2h "p2h"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-exp", "table2", "-sets", "Music", "-scale", "0.01", "-nq", "3",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "Table II") || !strings.Contains(out.String(), "Music") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errw.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errw.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestRunUnknownSet(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-exp", "table2", "-sets", "NotASet"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errw.String(), "unknown data set") {
		t.Fatalf("stderr: %s", errw.String())
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.txt")
	var out, errw bytes.Buffer
	code := run([]string{
		"-exp", "table2", "-sets", "Music", "-scale", "0.01", "-nq", "3", "-out", path,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out.String() {
		t.Fatal("file content differs from stdout")
	}
}

func TestRunCommaSeparatedExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-exp", "table2,fig5", "-sets", "Music", "-scale", "0.01", "-nq", "3",
		"-hashm", "4", "-leafsize", "25",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "=== table2 ===") || !strings.Contains(out.String(), "=== fig5 ===") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "0.02", "-nq", "2",
		"-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunCustomIndexBenchmark drives the registry-backed single-index mode:
// -index/-spec build any registered kind, -load benchmarks a saved container.
func TestRunCustomIndexBenchmark(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-index", "sharded", "-spec", `{"shards":3,"workers":2}`,
		"-sets", "Music", "-n", "600", "-nq", "4", "-k", "3",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "index: sharded built") || !strings.Contains(s, "recall") {
		t.Fatalf("output:\n%s", s)
	}

	// Full-budget recall must be exact for a tree kind.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if last := lines[len(lines)-1]; !strings.Contains(last, "100.0%") {
		t.Fatalf("full budget not exact: %s", last)
	}

	// -load path: build+save with p2htool's library calls, then benchmark.
	dir := t.TempDir()
	data := p2h.Dedup(p2h.GenerateDataset("Music", 600, 1))
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ixPath := filepath.Join(dir, "ix.p2h")
	if err := p2h.SaveFile(ixPath, ix); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	code = run([]string{"-load", ixPath, "-sets", "Music", "-n", "600", "-nq", "3"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "index: bctree loaded") {
		t.Fatalf("output:\n%s", out.String())
	}

	// Unknown kinds and bad spec JSON fail with a diagnostic.
	for _, args := range [][]string{
		{"-index", "nope", "-n", "200"},
		{"-spec", "{bad", "-n", "200"},
		{"-load", "/does/not/exist.p2h"},
	} {
		out.Reset()
		errw.Reset()
		if code := run(args, &out, &errw); code != 1 || errw.Len() == 0 {
			t.Fatalf("%v: exit %d, stderr: %s", args, code, errw.String())
		}
	}
}
