package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	p2h "p2h"
	"p2h/internal/httpapi"
)

func runCmd(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestServeGeneratedWorkload(t *testing.T) {
	out, errOut, code := runCmd(t, "",
		"-set", "Sift", "-n", "400", "-nq", "20",
		"-clients", "3", "-repeat", "2", "-k", "5", "-compare")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"data: ", "index: bctree built",
		"server: 120 queries", "qps", "latency mean",
		"cache hit rate", "sequential: 120 queries", "speedup:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServeCacheZeroDisablesCache(t *testing.T) {
	out, errOut, code := runCmd(t, "",
		"-set", "Sift", "-n", "300", "-nq", "10", "-clients", "2", "-repeat", "3", "-cache", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	// Repeated queries with the cache off must never hit.
	if !strings.Contains(out, "cache hit rate 0.0%") {
		t.Fatalf("-cache 0 left the cache on:\n%s", out)
	}
}

func TestServeEveryIndexKind(t *testing.T) {
	// Aliases resolve through the registry; the banner prints the
	// canonical kind name.
	for kind, canonical := range map[string]string{
		"bc": "bctree", "ball": "balltree", "kd": "kdtree", "scan": "linearscan",
		"quant": "quantizedscan", "sharded": "sharded", "dynamic": "dynamic",
	} {
		out, errOut, code := runCmd(t, "",
			"-set", "Sift", "-n", "200", "-nq", "5", "-clients", "2", "-index", kind)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", kind, code, errOut)
		}
		if !strings.Contains(out, "index: "+canonical+" built") {
			t.Fatalf("%s: output:\n%s", kind, out)
		}
	}
}

func TestServeStdinQueries(t *testing.T) {
	data := p2h.GenerateDataset("Sift", 100, 1)
	queries := p2h.GenerateQueries(data, 2, 2)
	var sb strings.Builder
	sb.WriteString("# two hyperplanes\n\n")
	for i := 0; i < queries.N; i++ {
		row := queries.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = strconv.FormatFloat(float64(v), 'g', -1, 32)
		}
		sb.WriteString(strings.Join(parts, " ") + "\n")
	}
	out, errOut, code := runCmd(t, sb.String(),
		"-set", "Sift", "-n", "100", "-stdin", "-clients", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "queries: 2 hyperplanes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestServeQueryFile(t *testing.T) {
	dir := t.TempDir()
	data := p2h.GenerateDataset("Sift", 150, 1)
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	queryPath := filepath.Join(dir, "queries.fvecs")
	if err := p2h.SaveFvecs(queryPath, p2h.GenerateQueries(data, 4, 2)); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runCmd(t, "",
		"-data", dataPath, "-queries", queryPath, "-clients", "2", "-index", "dynamic")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "queries: 4 hyperplanes") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestServeErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad-index":   {"-set", "Sift", "-n", "100", "-index", "nope"},
		"bad-data":    {"-data", "/definitely/not/here.fvecs"},
		"bad-queries": {"-set", "Sift", "-n", "100", "-queries", "/nope.fvecs"},
	} {
		_, errOut, code := runCmd(t, "", args...)
		if code == 0 {
			t.Fatalf("%s: expected failure", name)
		}
		if errOut == "" {
			t.Fatalf("%s: no diagnostic", name)
		}
	}
	// Bad flag exits 2.
	if _, _, code := runCmd(t, "", "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("bad flag exit %d", code)
	}
	// Malformed stdin query.
	_, errOut, code := runCmd(t, "not a number\n", "-set", "Sift", "-n", "100", "-stdin")
	if code == 0 || !strings.Contains(errOut, "stdin line 1") {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

// TestServeSpecFlag drives the registry path: a full Spec as JSON selects
// and tunes the index without any kind-specific flags.
func TestServeSpecFlag(t *testing.T) {
	out, errOut, code := runCmd(t, "",
		"-set", "Sift", "-n", "200", "-nq", "5", "-clients", "2",
		"-index", "sharded", "-spec", `{"shards":3,"workers":2,"leaf_size":40}`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "index: sharded built") {
		t.Fatalf("output:\n%s", out)
	}
	// A spec can also carry the kind by itself: with no -index flag the
	// spec's kind wins (it is not silently overridden by a default).
	out, errOut, code = runCmd(t, "",
		"-set", "Sift", "-n", "200", "-nq", "5", "-spec", `{"kind":"kd"}`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "index: kdtree built") {
		t.Fatalf("spec kind overridden:\n%s", out)
	}
	// Malformed spec JSON is rejected.
	if _, _, code := runCmd(t, "", "-set", "Sift", "-n", "100", "-spec", "{nope"); code == 0 {
		t.Fatal("bad -spec accepted")
	}
}

// TestServeLoadedIndex serves a saved container through -load: the
// deployment path where the index was built offline by p2htool.
func TestServeLoadedIndex(t *testing.T) {
	dir := t.TempDir()
	data := p2h.GenerateDataset("Sift", 200, 1)
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ixPath := filepath.Join(dir, "ix.p2h")
	if err := p2h.SaveFile(ixPath, ix); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runCmd(t, "",
		"-data", dataPath, "-load", ixPath, "-nq", "5", "-clients", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "index: bctree loaded") {
		t.Fatalf("output:\n%s", out)
	}
	// A dimension mismatch between -load and the data is rejected.
	other := p2h.GenerateDataset("Music", 100, 1) // d=100 != 128
	otherPath := filepath.Join(dir, "other.fvecs")
	if err := p2h.SaveFvecs(otherPath, other); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = runCmd(t, "", "-data", otherPath, "-load", ixPath, "-nq", "2")
	if code == 0 || !strings.Contains(errOut, "dimension") {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

// startTestDaemon stands up an httpapi handler over one bctree index, the
// in-process equivalent of a running p2hd.
func startTestDaemon(t *testing.T, data *p2h.Matrix, name string) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	m := httpapi.NewManager(p2h.ServerOptions{Workers: 2}, 0)
	if _, _, err := m.Load(name, httpapi.IndexConfig{
		Spec: &p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 40, Seed: 1}, Data: dataPath,
	}, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		_ = m.Close(context.Background())
	})
	return ts
}

func TestClientModeAgainstDaemon(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Music", 400, 1))
	ts := startTestDaemon(t, data, "trees")
	dir := t.TempDir()
	queries := p2h.GenerateQueries(data, 8, 2)
	queriesPath := filepath.Join(dir, "queries.fvecs")
	if err := p2h.SaveFvecs(queriesPath, queries); err != nil {
		t.Fatal(err)
	}

	out, errOut, code := runCmd(t, "",
		"-url", ts.URL, "-name", "trees", "-queries", queriesPath,
		"-clients", "2", "-repeat", "2", "-k", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		`daemon index "trees": bctree, 400 points`,
		"http: 32 queries", "qps", "latency mean",
		"daemon: 32 queries served", "cache hit rate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestClientModeHTTPBatch(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Music", 400, 1))
	ts := startTestDaemon(t, data, "trees")
	// Generated queries from the same surrogate set (no -queries file).
	out, errOut, code := runCmd(t, "",
		"-url", ts.URL, "-name", "trees", "-set", "Music", "-n", "400", "-nq", "20",
		"-clients", "2", "-repeat", "1", "-k", "3", "-httpbatch", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "http_batch: 40 queries in 6 requests (batch=8)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestClientModeErrors(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Music", 300, 1))
	ts := startTestDaemon(t, data, "trees")
	// Unknown index name fails fast on the info call.
	_, errOut, code := runCmd(t, "", "-url", ts.URL, "-name", "ghost", "-set", "Music", "-n", "300", "-nq", "5")
	if code != 1 || !strings.Contains(errOut, "index_not_found") {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	// Dimension mismatch between the query stream and the daemon index.
	_, errOut, code = runCmd(t, "", "-url", ts.URL, "-name", "trees", "-set", "Sift", "-n", "300", "-nq", "5")
	if code != 1 || !strings.Contains(errOut, "dimension") {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	// Unreachable daemon.
	_, errOut, code = runCmd(t, "", "-url", "http://127.0.0.1:1", "-name", "x", "-set", "Music", "-n", "300", "-nq", "2")
	if code != 1 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}
