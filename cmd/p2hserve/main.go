// Command p2hserve drives the concurrent query-serving layer: it loads or
// generates a data set, builds an index of any registered kind through the
// p2h registry (or loads a saved index container), wraps it in a p2h.Server,
// replays a query stream from a file, stdin, or a generator against it from
// many concurrent clients, and reports throughput and latency percentiles.
//
// Usage:
//
//	p2hserve -set Sift -n 20000 -nq 500 -clients 8 -repeat 4
//	p2hserve -data data.fvecs -queries queries.fvecs -index dynamic -k 10
//	p2hserve -index sharded -spec '{"shards":8,"leaf_size":50}'
//	p2hserve -data data.fvecs -load index.p2h -queries queries.fvecs
//	awk-or-your-tool-emitting-text-queries | p2hserve -data data.fvecs -stdin
//
// Client mode load-tests a running p2hd daemon over HTTP instead of an
// in-process server, replaying the same query streams against its
// /v1/indexes/{name}/search endpoint (or /search_batch with -httpbatch).
// -url accepts a comma-separated list of daemons (or cluster routers) and
// round-robins requests across them:
//
//	p2hserve -url http://127.0.0.1:8080 -name trees -queries queries.fvecs -clients 8
//	p2hserve -url http://127.0.0.1:8080 -name trees -httpbatch 64 -nq 1000
//	p2hserve -url http://10.0.0.1:8080,http://10.0.0.2:8080 -name trees -nq 1000
//
// Queries arrive as fvecs rows (-queries) or as text lines of d+1
// space-separated floats, normal then offset (-stdin). Every query is
// answered through the server's micro-batching worker pool and result
// cache; -compare additionally replays the identical workload as a
// sequential single-query loop on the bare index and reports the speedup.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	p2h "p2h"
	"p2h/internal/httpapi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p2hserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath  = fs.String("data", "", "fvecs file with the data points (default: generate -set)")
		set       = fs.String("set", "Sift", "surrogate data set to generate when -data is empty")
		n         = fs.Int("n", 10000, "points to generate when -data is empty")
		seed      = fs.Int64("seed", 1, "seed for data/query generation and index construction")
		indexKind = fs.String("index", "", "index kind to serve ("+strings.Join(p2h.Kinds(), ", ")+"; default: the -spec kind, else bctree)")
		specJSON  = fs.String("spec", "", "p2h.Spec as JSON, e.g. '{\"shards\":8,\"leaf_size\":50}' (-index overrides its kind)")
		loadPath  = fs.String("load", "", "serve a saved index container instead of building one")
		queryPath = fs.String("queries", "", "fvecs file with (normal; offset) query rows")
		useStdin  = fs.Bool("stdin", false, "read text queries from stdin: d+1 floats per line")
		nq        = fs.Int("nq", 200, "queries to generate when neither -queries nor -stdin is given")
		k         = fs.Int("k", 10, "neighbors per query")
		budget    = fs.Int("budget", 0, "candidate budget per query (0: exact)")
		clients   = fs.Int("clients", 8, "concurrent client goroutines replaying the stream")
		repeat    = fs.Int("repeat", 1, "times each client replays the full query stream")
		workers   = fs.Int("workers", 0, "server worker goroutines (0: GOMAXPROCS)")
		maxBatch  = fs.Int("maxbatch", 16, "largest micro-batch handed to one worker")
		maxDelay  = fs.Duration("maxdelay", 100*time.Microsecond, "batch window for an under-filled round")
		cacheSize = fs.Int("cache", 1024, "result cache entries (0 or negative: disabled)")
		compare   = fs.Bool("compare", false, "also run the workload sequentially on the bare index")
		url       = fs.String("url", "", "client mode: load-test running p2hd daemon(s) at these comma-separated base URLs (round-robin) instead of serving in-process")
		name      = fs.String("name", "default", "client mode: the daemon index to query")
		httpBatch = fs.Int("httpbatch", 0, "client mode: group queries into search_batch requests of this size (0: per-query search)")
		timeoutMS = fs.Int("timeoutms", 0, "client mode: per-request timeout_ms sent to the daemon (0: the daemon's default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *url != "" {
		queries, err := clientQueries(*queryPath, *useStdin, stdin, *dataPath, *set, *n, *nq, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "p2hserve: %v\n", err)
			return 1
		}
		return runClient(*url, *name, queries, p2h.SearchOptions{K: *k, Budget: *budget},
			*clients, *repeat, *httpBatch, *timeoutMS, stdout, stderr)
	}

	data, err := loadData(*dataPath, *set, *n, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "p2hserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "data: %d points, %d dimensions\n", data.N, data.D)

	buildStart := time.Now()
	var ix p2h.Index
	if *loadPath != "" {
		ix, err = p2h.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(stderr, "p2hserve: %v\n", err)
			return 1
		}
		if ix.Dim() != data.D {
			fmt.Fprintf(stderr, "p2hserve: loaded index has dimension %d, data has %d\n", ix.Dim(), data.D)
			return 1
		}
		fmt.Fprintf(stdout, "index: %s loaded in %v (%d index bytes)\n",
			p2h.KindOf(ix), time.Since(buildStart).Round(time.Millisecond), ix.IndexBytes())
	} else {
		spec, err := makeSpec(*indexKind, *specJSON, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "p2hserve: %v\n", err)
			return 1
		}
		ix, err = p2h.New(data, spec)
		if err != nil {
			fmt.Fprintf(stderr, "p2hserve: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "index: %s built in %v (%d index bytes)\n",
			p2h.KindOf(ix), time.Since(buildStart).Round(time.Millisecond), ix.IndexBytes())
	}

	queries, err := loadQueries(*queryPath, *useStdin, stdin, data, *nq, *seed+1)
	if err != nil {
		fmt.Fprintf(stderr, "p2hserve: %v\n", err)
		return 1
	}
	if queries.N == 0 {
		fmt.Fprintln(stderr, "p2hserve: no queries")
		return 1
	}
	if queries.D != data.D+1 {
		fmt.Fprintf(stderr, "p2hserve: queries have dimension %d, want %d (normal) + 1 (offset)\n", queries.D, data.D+1)
		return 1
	}
	fmt.Fprintf(stdout, "queries: %d hyperplanes x %d clients x %d repeats, k=%d budget=%d\n",
		queries.N, *clients, *repeat, *k, *budget)

	opts := p2h.SearchOptions{K: *k, Budget: *budget}
	cache := *cacheSize
	if cache <= 0 {
		cache = -1 // at the CLI, -cache 0 means off, not "use the default"
	}
	srv := p2h.NewServer(ix, p2h.ServerOptions{
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		MaxDelay:     *maxDelay,
		CacheEntries: cache,
	})
	defer srv.Close()

	lat, wall := replay(srv.Search, queries, opts, *clients, *repeat)
	report(stdout, "server", lat, wall)
	st := srv.Stats()
	hitRate := 0.0
	if st.CacheHits+st.CacheMisses > 0 {
		hitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	meanBatch := 0.0
	if st.Batches > 0 {
		meanBatch = float64(st.Queries) / float64(st.Batches)
	}
	fmt.Fprintf(stdout, "server: %d batches (mean %.1f queries/batch), cache hit rate %.1f%%\n",
		st.Batches, meanBatch, 100*hitRate)

	if *compare {
		seqLat, seqWall := replay(ix.Search, queries, opts, 1, *clients**repeat)
		report(stdout, "sequential", seqLat, seqWall)
		fmt.Fprintf(stdout, "speedup: %.2fx (server %.0f qps vs sequential %.0f qps)\n",
			qps(len(lat), wall)/qps(len(seqLat), seqWall), qps(len(lat), wall), qps(len(seqLat), seqWall))
	}
	return 0
}

func loadData(path, set string, n int, seed int64) (*p2h.Matrix, error) {
	if path != "" {
		return p2h.LoadFvecs(path)
	}
	return p2h.Dedup(p2h.GenerateDataset(set, n, seed)), nil
}

// clientQueries resolves the query stream for client mode: a queries file or
// stdin stream is used as-is; otherwise queries are generated from the same
// data the daemon was pointed at (-data, or the -set/-n surrogate), so both
// sides agree on the distribution.
func clientQueries(queryPath string, useStdin bool, stdin io.Reader, dataPath, set string, n, nq int, seed int64) (*p2h.Matrix, error) {
	switch {
	case queryPath != "":
		return p2h.LoadFvecs(queryPath)
	case useStdin:
		return readTextQueries(stdin)
	}
	data, err := loadData(dataPath, set, n, seed)
	if err != nil {
		return nil, err
	}
	return p2h.GenerateQueries(data, nq, seed+1), nil
}

// urlRing round-robins requests across a comma-separated member list, so one
// p2hserve run spreads load over every daemon (or router) it was pointed at.
type urlRing struct {
	urls []string
	next atomic.Int64
}

func newURLRing(list string) (*urlRing, error) {
	r := &urlRing{}
	for _, u := range strings.Split(list, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			r.urls = append(r.urls, u)
		}
	}
	if len(r.urls) == 0 {
		return nil, errors.New("-url: no base URLs")
	}
	return r, nil
}

func (r *urlRing) pick() string {
	return r.urls[int(r.next.Add(1)-1)%len(r.urls)]
}

// runClient replays the query stream against running p2hd daemons over
// HTTP — round-robin across every -url member — reusing the same
// concurrent-replay harness as the in-process mode, and reports
// client-observed throughput and latency.
func runClient(baseURL, name string, queries *p2h.Matrix, opts p2h.SearchOptions, clients, repeat, httpBatch, timeoutMS int, stdout, stderr io.Writer) int {
	ring, err := newURLRing(baseURL)
	if err != nil {
		fmt.Fprintf(stderr, "p2hserve: %v\n", err)
		return 1
	}
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * clients * len(ring.urls),
			MaxIdleConnsPerHost: 2 * clients,
		},
	}

	// The daemon knows the index's dimensionality; fail fast on a mismatch
	// instead of spraying 400s. Any member that answers will do.
	var info httpapi.IndexInfoResponse
	infoErr := errors.New("no members")
	for _, u := range ring.urls {
		if infoErr = getJSON(client, u+"/v1/indexes/"+name, &info); infoErr == nil {
			break
		}
	}
	if infoErr != nil {
		fmt.Fprintf(stderr, "p2hserve: %v\n", infoErr)
		return 1
	}
	if len(ring.urls) > 1 {
		fmt.Fprintf(stdout, "members: %d, round-robin\n", len(ring.urls))
	}
	fmt.Fprintf(stdout, "daemon index %q: %s, %d points, d=%d\n", name, info.Kind, info.N, info.Dim)
	if queries.N == 0 {
		fmt.Fprintln(stderr, "p2hserve: no queries")
		return 1
	}
	if queries.D != info.Dim+1 {
		fmt.Fprintf(stderr, "p2hserve: queries have dimension %d, daemon index needs %d\n", queries.D, info.Dim+1)
		return 1
	}
	fmt.Fprintf(stdout, "queries: %d hyperplanes x %d clients x %d repeats, k=%d budget=%d\n",
		queries.N, clients, repeat, opts.K, opts.Budget)

	wireOpts := httpapi.SearchOptionsJSON{K: opts.K, Budget: opts.Budget, TimeoutMS: timeoutMS}
	var errCount atomic.Int64
	var firstErr atomic.Value
	var rs retryStats

	if httpBatch > 1 {
		lat, wall, total := replayHTTPBatch(client, ring, name, queries, wireOpts,
			clients, repeat, httpBatch, &rs, &errCount, &firstErr)
		fmt.Fprintf(stdout, "http_batch: %d queries in %d requests (batch=%d) in %v -> %.0f qps\n",
			total, len(lat), httpBatch, wall.Round(time.Millisecond), qps(total, wall))
		report(stdout, "http_batch request", lat, wall)
	} else {
		searchFn := func(q []float32, o p2h.SearchOptions) ([]p2h.Result, p2h.Stats) {
			var resp httpapi.SearchResponse
			err := postJSONRetry(client, ring.pick()+"/v1/indexes/"+name+"/search",
				httpapi.SearchRequest{Query: q, SearchOptionsJSON: wireOpts}, &resp, &rs)
			if err != nil {
				if errCount.Add(1) == 1 {
					firstErr.Store(err)
				}
				return nil, p2h.Stats{}
			}
			res := make([]p2h.Result, len(resp.Results))
			for i, r := range resp.Results {
				res[i] = p2h.Result{ID: r.ID, Dist: r.Dist}
			}
			return res, p2h.Stats{Candidates: resp.Stats.Candidates, IPCount: resp.Stats.IPCount}
		}
		lat, wall := replay(searchFn, queries, opts, clients, repeat)
		report(stdout, "http", lat, wall)
	}

	// The overload story of the run: how often the daemon shed (429) or was
	// transiently unreachable, and how many of those the backoff recovered.
	if shed, retries := rs.shed.Load(), rs.retries.Load(); shed > 0 || retries > 0 {
		fmt.Fprintf(stdout, "client: %d responses shed (429), %d retry attempts, %d requests exhausted retries\n",
			shed, retries, errCount.Load())
	}
	if n := errCount.Load(); n > 0 {
		fmt.Fprintf(stderr, "p2hserve: %d requests failed (first: %v)\n", n, firstErr.Load())
		return 1
	}
	// Server-side view of the same run (the first member's, under
	// round-robin).
	if err := getJSON(client, ring.urls[0]+"/v1/indexes/"+name, &info); err == nil {
		hitRate := 0.0
		if info.Stats.CacheHits+info.Stats.CacheMisses > 0 {
			hitRate = float64(info.Stats.CacheHits) / float64(info.Stats.CacheHits+info.Stats.CacheMisses)
		}
		meanBatch := 0.0
		if info.Stats.Batches > 0 {
			meanBatch = float64(info.Stats.Queries) / float64(info.Stats.Batches)
		}
		fmt.Fprintf(stdout, "daemon: %d queries served, %d micro-batches (mean %.1f queries/batch), cache hit rate %.1f%%\n",
			info.Stats.Queries, info.Stats.Batches, meanBatch, 100*hitRate)
	}
	return 0
}

// replayHTTPBatch posts search_batch requests of up to batch queries from
// each client and returns the per-request latencies, the wall time, and the
// total query count.
func replayHTTPBatch(client *http.Client, ring *urlRing, name string, queries *p2h.Matrix, opts httpapi.SearchOptionsJSON, clients, repeat, batch int, rs *retryStats, errCount *atomic.Int64, firstErr *atomic.Value) ([]time.Duration, time.Duration, int) {
	perClient := make([][]time.Duration, clients)
	var total atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lat []time.Duration
			for rep := 0; rep < repeat; rep++ {
				for lo := 0; lo < queries.N; lo += batch {
					hi := lo + batch
					if hi > queries.N {
						hi = queries.N
					}
					qs := make([][]float32, 0, hi-lo)
					for i := lo; i < hi; i++ {
						qs = append(qs, queries.Row((i+c)%queries.N)) // stagger clients
					}
					var resp httpapi.BatchSearchResponse
					t0 := time.Now()
					err := postJSONRetry(client, ring.pick()+"/v1/indexes/"+name+"/search_batch",
						httpapi.BatchSearchRequest{Queries: qs, SearchOptionsJSON: opts}, &resp, rs)
					lat = append(lat, time.Since(t0))
					if err != nil {
						if errCount.Add(1) == 1 {
							firstErr.Store(err)
						}
						continue
					}
					total.Add(int64(len(qs)))
				}
			}
			perClient[c] = lat
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for _, lat := range perClient {
		all = append(all, lat...)
	}
	return all, wall, int(total.Load())
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeJSONResponse(resp, url, out)
}

func postJSON(client *http.Client, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	return decodeJSONResponse(resp, url, out)
}

// apiError is a non-200 daemon answer, carrying what the retry policy keys
// on: the status code and any Retry-After suggestion.
type apiError struct {
	url        string
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("%s: %s (%s)", e.url, e.msg, e.code)
	}
	return fmt.Sprintf("%s: HTTP %d", e.url, e.status)
}

func decodeJSONResponse(resp *http.Response, url string, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		ae := &apiError{url: url, status: resp.StatusCode}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.retryAfter = time.Duration(secs) * time.Second
		}
		var e httpapi.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			ae.msg, ae.code = e.Error, e.Code
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// retryStats counts the overload-handling work the client did.
type retryStats struct {
	shed    atomic.Int64 // 429 responses received
	retries atomic.Int64 // retry attempts issued (any retryable cause)
}

// The retry schedule: exponential from retryBase, capped at retryCap, with
// full jitter (a uniform draw up to the current step) so a fleet of shed
// clients does not reconverge on the daemon in lockstep.
const (
	retryAttempts = 8
	retryBase     = 10 * time.Millisecond
	retryCap      = 2 * time.Second
)

// postJSONRetry is postJSON plus the overload policy: 429 responses (the
// daemon shedding; wait at least its Retry-After), 503s (draining or
// mid-swap), and transport-level errors (connection refused/reset mid-flood)
// are retried with jittered exponential backoff; anything else — including
// 504, where the deadline already spent the time budget a retry would need —
// fails fast.
func postJSONRetry(client *http.Client, url string, body, out any, rs *retryStats) error {
	backoff := retryBase
	for attempt := 0; ; attempt++ {
		err := postJSON(client, url, body, out)
		if err == nil {
			return nil
		}
		var ae *apiError
		transient := !errors.As(err, &ae) // transport error: no HTTP answer at all
		wait := backoff
		if !transient {
			switch ae.status {
			case http.StatusTooManyRequests:
				rs.shed.Add(1)
				if ae.retryAfter > wait {
					wait = ae.retryAfter
				}
			case http.StatusServiceUnavailable:
			default:
				return err
			}
		}
		if attempt >= retryAttempts {
			return err
		}
		rs.retries.Add(1)
		time.Sleep(wait/2 + time.Duration(rand.Int63n(int64(wait))))
		if backoff *= 2; backoff > retryCap {
			backoff = retryCap
		}
	}
}

// makeSpec combines the -index and -spec flags into one p2h.Spec (the JSON
// is the base, an explicit kind flag overrides it) and defaults the
// construction seed to the workload seed so runs stay reproducible.
func makeSpec(kind, specJSON string, seed int64) (p2h.Spec, error) {
	var spec p2h.Spec
	if specJSON != "" {
		if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
			return spec, fmt.Errorf("bad -spec JSON: %w", err)
		}
	}
	if kind != "" {
		spec.Kind = kind
	}
	if spec.Kind == "" {
		spec.Kind = p2h.KindBCTree
	}
	if spec.Seed == 0 {
		spec.Seed = seed
	}
	return spec, nil
}

func loadQueries(path string, useStdin bool, stdin io.Reader, data *p2h.Matrix, nq int, seed int64) (*p2h.Matrix, error) {
	switch {
	case path != "":
		return p2h.LoadFvecs(path)
	case useStdin:
		return readTextQueries(stdin)
	default:
		return p2h.GenerateQueries(data, nq, seed), nil
	}
}

// readTextQueries parses one query per line: d+1 space-separated floats,
// normal first, offset last. Blank lines and #-comments are skipped.
func readTextQueries(r io.Reader) (*p2h.Matrix, error) {
	var rows [][]float32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		row := make([]float32, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("stdin line %d: %v", line, err)
			}
			row[i] = float32(v)
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("stdin line %d: %d values, want %d", line, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("stdin: no queries")
	}
	return p2h.FromRows(rows), nil
}

// replay fans the query stream out over clients goroutines, each running the
// full stream repeat times, and returns every per-query latency plus the
// wall-clock time of the whole replay.
func replay(search func([]float32, p2h.SearchOptions) ([]p2h.Result, p2h.Stats), queries *p2h.Matrix, opts p2h.SearchOptions, clients, repeat int) ([]time.Duration, time.Duration) {
	perClient := make([][]time.Duration, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, repeat*queries.N)
			for rep := 0; rep < repeat; rep++ {
				for i := 0; i < queries.N; i++ {
					q := queries.Row((i + c) % queries.N) // stagger clients
					t0 := time.Now()
					search(q, opts)
					lat = append(lat, time.Since(t0))
				}
			}
			perClient[c] = lat
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for _, lat := range perClient {
		all = append(all, lat...)
	}
	return all, wall
}

func qps(queries int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(queries) / wall.Seconds()
}

func report(w io.Writer, label string, lat []time.Duration, wall time.Duration) {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	fmt.Fprintf(w, "%s: %d queries in %v -> %.0f qps\n", label, len(lat), wall.Round(time.Millisecond), qps(len(lat), wall))
	fmt.Fprintf(w, "%s: latency mean %v p50 %v p95 %v p99 %v max %v\n",
		label,
		(sum / time.Duration(max(1, len(sorted)))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond),
		pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond),
		pct(1.0).Round(time.Microsecond))
}
