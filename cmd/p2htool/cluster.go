package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	p2h "p2h"
	"p2h/internal/cluster"
	"p2h/internal/httpapi"
)

const clusterUsage = `usage: p2htool cluster <status|split> [flags]
  status  probe a cluster's members: health, shard ownership, versions, lag
  split   partition a data set into per-shard containers plus the cluster's
          partition map and per-member daemon configs
Run 'p2htool cluster <subcommand> -h' for the flags of each subcommand.`

func runCluster(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		fmt.Fprintln(stderr, clusterUsage)
		return fmt.Errorf("cluster: missing subcommand")
	}
	switch args[0] {
	case "status":
		return runClusterStatus(args[1:], stdout, stderr)
	case "split":
		return runClusterSplit(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, clusterUsage)
		return nil
	default:
		fmt.Fprintln(stderr, clusterUsage)
		return fmt.Errorf("cluster: unknown subcommand %q", args[0])
	}
}

// runClusterStatus probes every member of a cluster config and prints one
// table: member health, then per-shard placement with served point counts,
// mutation epochs and replication lag.
func runClusterStatus(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "cluster partition map JSON (required)")
	timeout := fs.Duration("timeout", 5*time.Second, "overall probe deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("cluster status: -config is required")
	}
	cfg, err := cluster.LoadConfig(*configPath)
	if err != nil {
		return fmt.Errorf("cluster status: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rows, members, err := cluster.Status(ctx, cfg)
	if err != nil {
		return fmt.Errorf("cluster status: %w", err)
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MEMBER\tSTATE\tURL\tREQUESTS\tLAST ERROR")
	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := members[name]
		lastErr := ms.LastError
		if lastErr == "" {
			lastErr = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n", name, ms.State, ms.URL, ms.Requests, lastErr)
	}
	fmt.Fprintln(tw, "\t\t\t\t")
	fmt.Fprintln(tw, "INDEX\tSHARD\tROLE\tMEMBER\tPOINTS\tEPOCH\tLAG")
	for _, row := range rows {
		points, epoch, lag := "-", "-", "-"
		if row.Points >= 0 {
			points = strconv.Itoa(row.Points)
		}
		if row.Epoch >= 0 {
			epoch = strconv.FormatInt(row.Epoch, 10)
		}
		if row.Lag >= 0 {
			lag = strconv.FormatInt(row.Lag, 10)
		}
		member := row.Member
		if row.Err != "" {
			member += " (!)"
		}
		fmt.Fprintf(tw, "%s\t%d (%s)\t%s\t%s\t%s\t%s\t%s\n",
			row.Index, row.Shard, row.MemberIndex, row.Role, member, points, epoch, lag)
	}
	return tw.Flush()
}

// runClusterSplit partitions a data set with the exact plan the in-process
// sharded index would use (p2h.ShardPlan), builds one container per shard,
// and emits everything a cluster boots from: the per-shard containers, the
// router's partition map (cluster.json, with the plan's id maps, so routed
// answers are byte-identical to a single-process sharded index), and one
// p2hd config per member declaring the shards it serves.
//
// Member URLs can be given as name=url pairs, or as a bare count N, which
// names members m0..m{N-1} with placeholder URLs "@m0@".. — substitute the
// real addresses (e.g. with sed) once the daemons are up; handy when members
// bind dynamic ports.
func runClusterSplit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cluster split", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataPath := fs.String("data", "", "data fvecs path (required)")
	attrsPath := fs.String("attrs", "", "optional JSON array of per-point attribute payloads (one per data row, in row order)")
	name := fs.String("name", "default", "logical index name the router serves")
	membersFlag := fs.String("members", "", "member count, or comma-separated name=url pairs (required)")
	shards := fs.Int("shards", 0, "number of shards (0: one per member)")
	replicas := fs.Int("replicas", 1, "replicas per shard beyond the primary")
	specJSON := fs.String("spec", "", "p2h.Spec as JSON for tuning (leaf_size, seed, quantize)")
	leafSize := fs.Int("leafsize", 0, "override the spec's tree leaf size N0")
	seed := fs.Int64("seed", 0, "override the spec's construction seed")
	outDir := fs.String("out", "", "output directory (required; created if missing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *outDir == "" || *membersFlag == "" {
		return fmt.Errorf("cluster split: -data, -members and -out are required")
	}

	memberNames, memberURLs, err := parseMembers(*membersFlag)
	if err != nil {
		return fmt.Errorf("cluster split: %w", err)
	}
	nShards := *shards
	if nShards <= 0 {
		nShards = len(memberNames)
	}
	if *replicas < 0 || *replicas >= len(memberNames) {
		return fmt.Errorf("cluster split: -replicas %d needs 0..%d with %d members",
			*replicas, len(memberNames)-1, len(memberNames))
	}
	spec, err := makeSpec("", *specJSON)
	if err != nil {
		return fmt.Errorf("cluster split: %w", err)
	}
	if *leafSize > 0 {
		spec.LeafSize = *leafSize
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	spec.Shards = nShards

	data, err := p2h.LoadFvecs(*dataPath)
	if err != nil {
		return fmt.Errorf("cluster split: %w", err)
	}
	var points []p2h.PointAttrs
	if *attrsPath != "" {
		raw, err := os.ReadFile(*attrsPath)
		if err != nil {
			return fmt.Errorf("cluster split: %w", err)
		}
		if err := json.Unmarshal(raw, &points); err != nil {
			return fmt.Errorf("cluster split: decoding %s: %w", *attrsPath, err)
		}
		if len(points) != data.N {
			return fmt.Errorf("cluster split: %s holds %d payloads, data holds %d rows",
				*attrsPath, len(points), data.N)
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("cluster split: %w", err)
	}

	plan := p2h.ShardPlan(data, spec)
	ccfg := cluster.Config{
		Members: make(map[string]cluster.MemberConfig, len(memberNames)),
		Indexes: map[string]cluster.IndexMap{*name: {}},
	}
	for i, mn := range memberNames {
		ccfg.Members[mn] = cluster.MemberConfig{URL: memberURLs[i]}
	}
	memberIndexes := make(map[string]map[string]httpapi.IndexConfig, len(memberNames))
	for _, mn := range memberNames {
		memberIndexes[mn] = make(map[string]httpapi.IndexConfig)
	}

	im := ccfg.Indexes[*name]
	for si, part := range plan {
		shardIndex := fmt.Sprintf("%s-s%d", *name, si)
		file := shardIndex + ".p2h"
		// The shard tree is built exactly as the in-process sharded index
		// builds shard si: the plan's subset with the derived seed.
		ix, err := p2h.New(data.SubsetRows(part), p2h.Spec{
			Kind:     p2h.KindBCTree,
			LeafSize: spec.LeafSize,
			Seed:     spec.Seed + int64(si) + 1,
			Quantize: spec.Quantize,
		})
		if err != nil {
			return fmt.Errorf("cluster split: shard %d: %w", si, err)
		}
		if points != nil {
			// Attach the shard's own rows in shard-local order: filtered
			// queries routed to this member see the same payloads the
			// in-process sharded index would, so merges stay byte-identical.
			sub := make([]p2h.PointAttrs, len(part))
			for i, row := range part {
				sub[i] = points[row]
			}
			if err := p2h.AttachAttributes(ix, sub); err != nil {
				return fmt.Errorf("cluster split: shard %d: %w", si, err)
			}
		}
		if err := p2h.SaveFile(filepath.Join(*outDir, file), ix); err != nil {
			return fmt.Errorf("cluster split: shard %d: %w", si, err)
		}
		sc := cluster.ShardConfig{
			Index:   shardIndex,
			Primary: memberNames[si%len(memberNames)],
			IDs:     part,
		}
		for r := 1; r <= *replicas; r++ {
			sc.Replicas = append(sc.Replicas, memberNames[(si+r)%len(memberNames)])
		}
		im.Shards = append(im.Shards, sc)
		for _, holder := range append([]string{sc.Primary}, sc.Replicas...) {
			memberIndexes[holder][shardIndex] = httpapi.IndexConfig{Path: file}
		}
		fmt.Fprintf(stdout, "shard %d: %d points -> %s (primary %s, replicas %s)\n",
			si, len(part), file, sc.Primary, strings.Join(sc.Replicas, ","))
	}
	ccfg.Indexes[*name] = im

	if err := writeJSONFile(filepath.Join(*outDir, "cluster.json"), ccfg); err != nil {
		return fmt.Errorf("cluster split: %w", err)
	}
	for _, mn := range memberNames {
		mcfg := httpapi.Config{Indexes: memberIndexes[mn]}
		if err := writeJSONFile(filepath.Join(*outDir, "member-"+mn+".json"), mcfg); err != nil {
			return fmt.Errorf("cluster split: %w", err)
		}
	}
	fmt.Fprintf(stdout, "wrote %s and %d member config(s); member container paths are relative to %s\n",
		filepath.Join(*outDir, "cluster.json"), len(memberNames), *outDir)
	return nil
}

// parseMembers accepts "3" (placeholder URLs) or "m0=http://a,m1=http://b".
func parseMembers(s string) (names, urls []string, err error) {
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, nil, fmt.Errorf("need at least one member, got %d", n)
		}
		for i := 0; i < n; i++ {
			name := "m" + strconv.Itoa(i)
			names = append(names, name)
			urls = append(urls, "@"+name+"@")
		}
		return names, urls, nil
	}
	for _, tok := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok || name == "" || url == "" {
			return nil, nil, fmt.Errorf("bad -members entry %q (want name=url or a count)", tok)
		}
		names = append(names, name)
		urls = append(urls, url)
	}
	return names, urls, nil
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
