package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	p2h "p2h"
)

// runOK runs the tool and fails the test on a non-zero exit.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errw bytes.Buffer
	if code := run(args, &out, &errw); code != 0 {
		t.Fatalf("p2htool %v: exit %d\nstderr: %s", args, code, errw.String())
	}
	return out.String()
}

func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	queries := filepath.Join(dir, "q.fvecs")
	index := filepath.Join(dir, "ix.p2h")

	out := runOK(t, "gen", "-set", "Sift", "-n", "500", "-seed", "1", "-out", data)
	if !strings.Contains(out, "wrote 500 points") {
		t.Fatalf("gen output: %s", out)
	}
	out = runOK(t, "queries", "-data", data, "-nq", "5", "-out", queries)
	if !strings.Contains(out, "wrote 5 hyperplane queries") {
		t.Fatalf("queries output: %s", out)
	}
	out = runOK(t, "build", "-index", "bctree", "-data", data, "-leafsize", "50", "-out", index)
	if !strings.Contains(out, "built bctree over 500 points") {
		t.Fatalf("build output: %s", out)
	}
	// The container is self-describing: no kind flag on the read side.
	out = runOK(t, "info", "-load", index)
	if !strings.Contains(out, "type=bctree") || !strings.Contains(out, "points=500") {
		t.Fatalf("info output: %s", out)
	}
	out = runOK(t, "search", "-load", index, "-queries", queries, "-k", "3")
	if !strings.Contains(out, "query 0:") || !strings.Contains(out, "5 queries in") {
		t.Fatalf("search output: %s", out)
	}
	// Each query line carries exactly k results.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "query ") {
			if got := strings.Count(line, "("); got != 3 {
				t.Fatalf("query line has %d results, want 3: %s", got, line)
			}
		}
	}
}

// TestBuildEveryPersistableKind drives the build->info round trip through
// the registry for every kind that persists, including spec-only parameters.
func TestBuildEveryPersistableKind(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	runOK(t, "gen", "-set", "Music", "-n", "300", "-out", data)

	cases := []struct {
		kind string
		spec string
	}{
		{"balltree", ""},
		{"bctree", ""},
		{"kdtree", `{"leaf_size":40}`},
		{"sharded", `{"shards":3,"workers":2}`},
		{"dynamic", `{"rebuild_fraction":0.5}`},
	}
	for _, c := range cases {
		index := filepath.Join(dir, "ix-"+c.kind+".p2h")
		args := []string{"build", "-index", c.kind, "-data", data, "-out", index}
		if c.spec != "" {
			args = append(args, "-spec", c.spec)
		}
		out := runOK(t, args...)
		if !strings.Contains(out, "built "+c.kind+" over 300 points") {
			t.Fatalf("%s build output: %s", c.kind, out)
		}
		out = runOK(t, "info", "-load", index)
		if !strings.Contains(out, "type="+c.kind) || !strings.Contains(out, "points=300") {
			t.Fatalf("%s info output: %s", c.kind, out)
		}
	}
}

// TestSpecCarriesKind checks that -spec alone selects the kind and that an
// explicit -index flag wins over the spec's kind.
func TestSpecCarriesKind(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	index := filepath.Join(dir, "ix.p2h")
	runOK(t, "gen", "-set", "Music", "-n", "200", "-out", data)

	out := runOK(t, "build", "-spec", `{"kind":"balltree","leaf_size":25}`, "-data", data, "-out", index)
	if !strings.Contains(out, "built balltree") {
		t.Fatalf("spec kind not honored: %s", out)
	}
	out = runOK(t, "build", "-index", "kd", "-spec", `{"kind":"balltree"}`, "-data", data, "-out", index)
	if !strings.Contains(out, "built kdtree") {
		t.Fatalf("-index did not override spec kind: %s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},             // no subcommand
		{"frobnicate"}, // unknown subcommand
		{"gen"},        // missing -out
		{"gen", "-set", "Nope", "-out", "/tmp/x"}, // unknown set
		{"build", "-data", "/does/not/exist", "-out", "/tmp/x"},
		{"info", "-load", "/does/not/exist"},
		{"search", "-load", "/does/not/exist", "-queries", "/nope"},
		{"build", "-index", "wat", "-data", "/tmp/x", "-out", "/tmp/y"},
		{"build", "-spec", "{not json", "-data", "/tmp/x", "-out", "/tmp/y"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code == 0 {
			t.Fatalf("p2htool %v: expected failure", args)
		}
	}
}

// TestBuildOnlyKindRefusesSave: hashing kinds build through the registry but
// document themselves as build-only, so `build` (whose point is the saved
// file) reports a clear error instead of writing garbage.
func TestBuildOnlyKindRefusesSave(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	runOK(t, "gen", "-set", "Music", "-n", "100", "-out", data)
	var out, errw bytes.Buffer
	if code := run([]string{"build", "-index", "nh", "-data", data,
		"-out", filepath.Join(dir, "ix.p2h")}, &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errw.String(), "build-only") {
		t.Fatalf("stderr: %s", errw.String())
	}
}

func TestQueryDimensionMismatch(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	other := filepath.Join(dir, "other.fvecs")
	index := filepath.Join(dir, "ix.p2h")
	runOK(t, "gen", "-set", "Sift", "-n", "200", "-out", data)   // d=128
	runOK(t, "gen", "-set", "Music", "-n", "200", "-out", other) // d=100
	runOK(t, "build", "-index", "bctree", "-data", data, "-out", index)
	var out, errw bytes.Buffer
	if code := run([]string{"search", "-load", index, "-queries", other}, &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errw.String(), "dimension") {
		t.Fatalf("stderr: %s", errw.String())
	}
}

func TestHelp(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"help"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "usage:") {
		t.Fatalf("help output: %s", out.String())
	}
}

func TestEvalSubcommand(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	queries := filepath.Join(dir, "q.fvecs")
	index := filepath.Join(dir, "ix.p2h")
	runOK(t, "gen", "-set", "Sift", "-n", "800", "-out", data)
	runOK(t, "queries", "-data", data, "-nq", "5", "-out", queries)
	runOK(t, "build", "-index", "bctree", "-data", data, "-out", index)

	out := runOK(t, "eval", "-load", index,
		"-data", data, "-queries", queries, "-k", "5", "-budgets", "0.05,1.0")
	if !strings.Contains(out, "recall") || !strings.Contains(out, "100.0%") {
		t.Fatalf("eval output:\n%s", out)
	}
	// Full budget line must report exact recall.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "100.0%") {
		t.Fatalf("full budget not exact: %s", last)
	}

	// Bad budget fractions are rejected.
	var outw, errw bytes.Buffer
	if code := run([]string{"eval", "-load", index,
		"-data", data, "-queries", queries, "-budgets", "nope"}, &outw, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
	// Mismatched data dimensions are rejected.
	other := filepath.Join(dir, "other.fvecs")
	runOK(t, "gen", "-set", "Music", "-n", "100", "-out", other)
	if code := run([]string{"eval", "-load", index,
		"-data", other, "-queries", queries}, &outw, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
}

func TestInspectSubcommand(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.fvecs")
	index := filepath.Join(dir, "ix.p2h")
	runOK(t, "gen", "-set", "Sift", "-n", "400", "-seed", "1", "-out", data)
	runOK(t, "build", "-index", "sharded", "-spec", `{"shards":3,"leaf_size":40}`, "-data", data, "-out", index)

	// Positional form.
	out := runOK(t, "inspect", index)
	for _, want := range []string{
		"kind=sharded", "dim=128", "points=400", "legacy=false",
		`"kind":"sharded"`, `"shards":3`, `"leaf_size":40`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	// -load form agrees.
	if out2 := runOK(t, "inspect", "-load", index); out2 != out {
		t.Fatalf("-load form differs:\n%s\nvs\n%s", out2, out)
	}
	// No sidecar WAL, no wal line.
	if strings.Contains(out, "wal=") {
		t.Fatalf("inspect reports a WAL for a container without one:\n%s", out)
	}

	// A container whose sidecar WAL holds pending mutations reports them.
	dyn := filepath.Join(dir, "dyn.p2h")
	runOK(t, "build", "-index", "dynamic", "-spec", `{"leaf_size":40}`, "-data", data, "-out", dyn)
	ix, err := p2h.Open(dyn)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := p2h.AttachWAL(ix, p2h.WALPath(dyn), p2h.WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	d := ix.(*p2h.Dynamic)
	p := make([]float32, 128)
	if err := wal.AppendInsert(d.Insert(p), p); err != nil {
		t.Fatal(err)
	}
	d.Delete(0)
	if err := wal.AppendDelete(0); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	out = runOK(t, "inspect", dyn)
	for _, want := range []string{"wal=" + p2h.WALPath(dyn), "pending=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	// Errors: no path, extra args, not a container.
	var o, e bytes.Buffer
	if code := run([]string{"inspect"}, &o, &e); code != 1 {
		t.Fatalf("inspect without a path: exit %d", code)
	}
	if code := run([]string{"inspect", index, "extra"}, &o, &e); code != 1 {
		t.Fatalf("inspect with extra args: exit %d", code)
	}
	if code := run([]string{"inspect", data}, &o, &e); code != 1 {
		t.Fatalf("inspect of a non-container: exit %d", code)
	}
}
