// Command p2htool is the operational CLI of the library: generate surrogate
// data sets and hyperplane queries, build and persist indexes of any
// registered kind, inspect them, and answer queries from files.
//
// Subcommands:
//
//	p2htool gen     -set Sift -n 10000 -seed 1 -out data.fvecs
//	p2htool queries -data data.fvecs -nq 100 -seed 2 -out queries.fvecs
//	p2htool build   -index bctree -spec '{"leaf_size":100}' -data data.fvecs -out index.p2h
//	p2htool info    -load index.p2h
//	p2htool inspect index.p2h
//	p2htool search  -load index.p2h -queries queries.fvecs -k 10
//	p2htool eval    -load index.p2h -data data.fvecs -queries queries.fvecs -k 10
//	p2htool cluster split  -data data.fvecs -members 3 -replicas 1 -out cluster/
//	p2htool cluster status -config cluster/cluster.json
//
// Index selection goes through the p2h registry: -index names any registered
// kind (p2h.Kinds) and -spec carries the full declarative p2h.Spec as JSON.
// Saved files are self-describing containers, so info/search/eval need only
// -load — no kind flag; files written by older releases' bare tree formats
// load the same way.
//
// Data files use the fvecs layout (per vector: int32 dimension then float32
// components). Query files hold one (normal; offset) row per hyperplane.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	p2h "p2h"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: p2htool <gen|queries|build|info|inspect|search|eval|cluster> [flags]
Run 'p2htool <subcommand> -h' for the flags of each subcommand.`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	var err error
	switch args[0] {
	case "gen":
		err = runGen(args[1:], stdout, stderr)
	case "queries":
		err = runQueries(args[1:], stdout, stderr)
	case "build":
		err = runBuild(args[1:], stdout, stderr)
	case "info":
		err = runInfo(args[1:], stdout, stderr)
	case "inspect":
		err = runInspect(args[1:], stdout, stderr)
	case "search":
		err = runSearch(args[1:], stdout, stderr)
	case "eval":
		err = runEval(args[1:], stdout, stderr)
	case "cluster":
		err = runCluster(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "p2htool: unknown subcommand %q\n%s\n", args[0], usage)
		return 2
	}
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintf(stderr, "p2htool: %v\n", err)
		return 1
	}
	return 0
}

// makeSpec combines the -index and -spec flags into one p2h.Spec: the JSON
// document is the base and an explicit -index overrides its kind.
func makeSpec(kind, specJSON string) (p2h.Spec, error) {
	var spec p2h.Spec
	if specJSON != "" {
		if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
			return spec, fmt.Errorf("bad -spec JSON: %w", err)
		}
	}
	if kind != "" {
		spec.Kind = kind
	}
	if spec.Kind == "" {
		spec.Kind = p2h.KindBCTree
	}
	return spec, nil
}

func runGen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	set := fs.String("set", "Sift", "surrogate data set name ("+strings.Join(p2h.Datasets(), ", ")+")")
	n := fs.Int("n", 0, "number of points (0: the set's default)")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output fvecs path (required)")
	dedup := fs.Bool("dedup", true, "remove duplicate points (the paper's preprocessing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	known := false
	for _, name := range p2h.Datasets() {
		if name == *set {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("gen: unknown set %q (known: %s)", *set, strings.Join(p2h.Datasets(), ", "))
	}
	data := p2h.GenerateDataset(*set, *n, *seed)
	if *dedup {
		data = p2h.Dedup(data)
	}
	if err := p2h.SaveFvecs(*out, data); err != nil {
		return fmt.Errorf("gen: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %d points of dimension %d to %s\n", data.N, data.D, *out)
	return nil
}

func runQueries(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("queries", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataPath := fs.String("data", "", "data fvecs path (required)")
	nq := fs.Int("nq", 100, "number of hyperplane queries")
	seed := fs.Int64("seed", 2, "generation seed")
	out := fs.String("out", "", "output fvecs path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *out == "" {
		return fmt.Errorf("queries: -data and -out are required")
	}
	data, err := p2h.LoadFvecs(*dataPath)
	if err != nil {
		return fmt.Errorf("queries: %w", err)
	}
	queries := p2h.GenerateQueries(data, *nq, *seed)
	if err := p2h.SaveFvecs(*out, queries); err != nil {
		return fmt.Errorf("queries: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %d hyperplane queries of dimension %d to %s\n", queries.N, queries.D, *out)
	return nil
}

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("index", "", "index kind ("+strings.Join(p2h.Kinds(), ", ")+"; default from -spec, else bctree)")
	specJSON := fs.String("spec", "", "p2h.Spec as JSON, e.g. '{\"kind\":\"sharded\",\"shards\":8}'")
	dataPath := fs.String("data", "", "data fvecs path (required)")
	attrsPath := fs.String("attrs", "", "optional JSON array of per-point attribute payloads (one per data row, in row order)")
	leafSize := fs.Int("leafsize", 0, "override the spec's tree leaf size N0")
	seed := fs.Int64("seed", 0, "override the spec's construction seed")
	out := fs.String("out", "", "output index path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *out == "" {
		return fmt.Errorf("build: -data and -out are required")
	}
	spec, err := makeSpec(*kind, *specJSON)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if *leafSize > 0 {
		spec.LeafSize = *leafSize
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	data, err := p2h.LoadFvecs(*dataPath)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	var points []p2h.PointAttrs
	if *attrsPath != "" {
		raw, err := os.ReadFile(*attrsPath)
		if err != nil {
			return fmt.Errorf("build: %w", err)
		}
		if err := json.Unmarshal(raw, &points); err != nil {
			return fmt.Errorf("build: decoding %s: %w", *attrsPath, err)
		}
		if len(points) != data.N {
			return fmt.Errorf("build: %s holds %d payloads, data holds %d rows",
				*attrsPath, len(points), data.N)
		}
	}
	start := time.Now()
	ix, err := p2h.New(data, spec)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if points != nil {
		if err := p2h.AttachAttributes(ix, points); err != nil {
			return fmt.Errorf("build: %w", err)
		}
	}
	if err := p2h.SaveFile(*out, ix); err != nil {
		return fmt.Errorf("build: %w", err)
	}
	fmt.Fprintf(stdout, "built %s over %d points (d=%d) in %v, %d index bytes -> %s\n",
		p2h.KindOf(ix), ix.N(), ix.Dim(), time.Since(start).Round(time.Millisecond), ix.IndexBytes(), *out)
	return nil
}

func runInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("load", "", "index path (required; the container records its own kind)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("info: -load is required")
	}
	ix, err := p2h.Open(*path)
	if err != nil {
		return fmt.Errorf("info: %w", err)
	}
	fmt.Fprintf(stdout, "type=%s points=%d dim=%d index_bytes=%d\n", p2h.KindOf(ix), ix.N(), ix.Dim(), ix.IndexBytes())
	return nil
}

// runInspect prints a container's header description — kind, recorded spec,
// raw dimensionality and point count — without loading the index payload,
// so it stays fast on multi-gigabyte files. Unlike info it never builds the
// index (and reports the header of containers whose kind this build cannot
// even load).
func runInspect(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("load", "", "index path (or pass it as the positional argument)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" || fs.NArg() > 1 {
		return fmt.Errorf("inspect: usage: p2htool inspect <file.p2h> (or -load <file.p2h>)")
	}
	info, err := p2h.InspectFile(*path)
	if err != nil {
		return fmt.Errorf("inspect: %w", err)
	}
	specJSON, err := json.Marshal(info.Spec)
	if err != nil {
		return fmt.Errorf("inspect: %w", err)
	}
	dim, points := "unknown", "unknown"
	if info.Dim >= 0 {
		dim = strconv.Itoa(info.Dim)
	}
	if info.N >= 0 {
		points = strconv.Itoa(info.N)
	}
	fmt.Fprintf(stdout, "kind=%s dim=%s points=%s legacy=%v\nspec=%s\n",
		info.Kind, dim, points, info.Legacy, specJSON)
	if info.HasAttrs {
		fmt.Fprintf(stdout, "attrs=present tags=[%s] fields=[%s]\n",
			strings.Join(info.AttrTags, ","), strings.Join(info.AttrFields, ","))
	}
	if info.WALPath != "" {
		fmt.Fprintf(stdout, "wal=%s pending=%d\n", info.WALPath, info.WALRecords)
	}
	return nil
}

func runEval(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("load", "", "index path (required)")
	dataPath := fs.String("data", "", "data fvecs path for ground truth (required)")
	queriesPath := fs.String("queries", "", "queries fvecs path (required)")
	k := fs.Int("k", 10, "results per query")
	budgets := fs.String("budgets", "0.01,0.05,0.2,1.0", "comma-separated candidate fractions to evaluate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *dataPath == "" || *queriesPath == "" {
		return fmt.Errorf("eval: -load, -data and -queries are required")
	}
	ix, err := p2h.Open(*path)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	data, err := p2h.LoadFvecs(*dataPath)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	queries, err := p2h.LoadFvecs(*queriesPath)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	if data.D != ix.Dim() || queries.D != ix.Dim()+1 {
		return fmt.Errorf("eval: dimensions do not line up: data %d, queries %d, index %d",
			data.D, queries.D, ix.Dim())
	}
	gt := p2h.GroundTruth(data, queries, *k)

	fmt.Fprintf(stdout, "%10s  %8s  %12s  %14s\n", "budget", "recall", "ms/query", "cands/query")
	for _, tok := range strings.Split(*budgets, ",") {
		frac, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || frac <= 0 || frac > 1 {
			return fmt.Errorf("eval: bad budget fraction %q", tok)
		}
		budget := int(frac * float64(ix.N()))
		if budget < 1 {
			budget = 1
		}
		var recall float64
		var candidates int64
		start := time.Now()
		for i := 0; i < queries.N; i++ {
			res, st := ix.Search(queries.Row(i), p2h.SearchOptions{K: *k, Budget: budget})
			recall += p2h.Recall(res, gt[i])
			candidates += st.Candidates
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "%9.1f%%  %7.1f%%  %12.4f  %14.1f\n",
			frac*100,
			100*recall/float64(queries.N),
			elapsed.Seconds()*1000/float64(queries.N),
			float64(candidates)/float64(queries.N))
	}
	return nil
}

func runSearch(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("load", "", "index path (required)")
	queriesPath := fs.String("queries", "", "queries fvecs path (required)")
	k := fs.Int("k", 10, "results per query")
	budget := fs.Int("budget", 0, "candidate verification budget (0: exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *queriesPath == "" {
		return fmt.Errorf("search: -load and -queries are required")
	}
	ix, err := p2h.Open(*path)
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	queries, err := p2h.LoadFvecs(*queriesPath)
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	if queries.D != ix.Dim()+1 {
		return fmt.Errorf("search: queries have dimension %d, index needs %d", queries.D, ix.Dim()+1)
	}
	start := time.Now()
	var candidates int64
	for i := 0; i < queries.N; i++ {
		res, st := ix.Search(queries.Row(i), p2h.SearchOptions{K: *k, Budget: *budget})
		candidates += st.Candidates
		fmt.Fprintf(stdout, "query %d:", i)
		for _, r := range res {
			fmt.Fprintf(stdout, " (%d, %.6f)", r.ID, r.Dist)
		}
		fmt.Fprintln(stdout)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "%d queries in %v (%.3f ms/query, %.0f candidates/query)\n",
		queries.N, elapsed.Round(time.Microsecond),
		elapsed.Seconds()*1000/float64(queries.N),
		float64(candidates)/float64(queries.N))
	return nil
}
