package p2h

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// dynSaveBytes canonicalizes (Rebuild folds the delta deterministically)
// and serializes, so two equivalent indexes compare byte-identical
// regardless of when their rebuilds happened to trigger.
func dynSaveBytes(t *testing.T, d *Dynamic) []byte {
	t.Helper()
	d.index.Rebuild()
	var buf bytes.Buffer
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerWALRecoversAcknowledgedMutations(t *testing.T) {
	dir := t.TempDir()
	ixPath := filepath.Join(dir, "ix.p2h")
	const dim = 6

	// Reference index mutated in lockstep, never persisted: the state every
	// acknowledged mutation should reproduce.
	ref := NewDynamic(nil, DynamicOptions{Dim: dim, Seed: 5})

	build := func() (*Server, *WAL) {
		var ix Index
		if _, err := os.Stat(ixPath); err == nil {
			var oerr error
			ix, oerr = Open(ixPath)
			if oerr != nil {
				t.Fatal(oerr)
			}
		} else {
			ix = NewDynamic(nil, DynamicOptions{Dim: dim, Seed: 5})
		}
		w, err := AttachWAL(ix, WALPath(ixPath), WALSyncNone)
		if err != nil {
			t.Fatal(err)
		}
		return NewServer(ix, ServerOptions{Workers: 2, WAL: w}), w
	}

	rng := rand.New(rand.NewSource(21))
	var handles []int32
	point := func() []float32 {
		p := make([]float32, dim)
		for i := range p {
			p[i] = rng.Float32()*2 - 1
		}
		return p
	}

	srv, w := build()
	for round := 0; round < 4; round++ {
		for i := 0; i < 150; i++ {
			if len(handles) == 0 || rng.Intn(4) > 0 {
				p := point()
				h, err := srv.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				if rh := ref.Insert(p); rh != h {
					t.Fatalf("round %d: handle %d, reference %d", round, h, rh)
				}
				handles = append(handles, h)
			} else {
				j := rng.Intn(len(handles))
				ok, err := srv.Delete(handles[j])
				if err != nil {
					t.Fatal(err)
				}
				if rok := ref.Delete(handles[j]); rok != ok {
					t.Fatalf("round %d: delete diverged", round)
				}
				handles = append(handles[:j], handles[j+1:]...)
			}
		}
		switch round {
		case 0:
			// Snapshot absorbs the log.
			if _, err := srv.Snapshot(ixPath); err != nil {
				t.Fatal(err)
			}
			if w.Records() != 0 {
				t.Fatalf("round %d: %d records after snapshot", round, w.Records())
			}
		case 1, 2:
			// "Crash": drop the server without snapshotting; the log alone
			// carries rounds of mutations. Drain flushes nothing extra —
			// every acknowledged mutation is already on disk.
			srv.Close()
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			srv, w = build()
			d := srv.Index().(*Dynamic)
			if d.Handles() != ref.Handles() || d.N() != ref.N() {
				t.Fatalf("round %d: recovered handles/N %d/%d, want %d/%d",
					round, d.Handles(), d.N(), ref.Handles(), ref.N())
			}
		}
	}
	srv.Close()
	w.Close()

	// Final recovery must be byte-identical to the always-in-memory
	// reference after canonicalization.
	ix, err := Open(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	got := dynSaveBytes(t, ix.(*Dynamic))
	want := dynSaveBytes(t, ref)
	if !bytes.Equal(got, want) {
		t.Fatal("recovered Save bytes differ from the in-memory reference")
	}
}

func TestOpenSkipsRecordsAlreadyInSnapshot(t *testing.T) {
	// A crash between the snapshot rename and the log truncation leaves a
	// log whose records are already inside the container; Open must skip
	// them, not double-apply.
	dir := t.TempDir()
	ixPath := filepath.Join(dir, "ix.p2h")
	const dim = 4

	ix := NewDynamic(nil, DynamicOptions{Dim: dim, Seed: 9})
	w, err := AttachWAL(ix, WALPath(ixPath), WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ix, ServerOptions{Workers: 1, WAL: w})
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 80; i++ {
		p := make([]float32, dim)
		for j := range p {
			p[j] = rng.Float32()
		}
		if _, err := srv.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Delete(3); err != nil {
		t.Fatal(err)
	}

	// Preserve the pre-truncation log, snapshot, then put the stale log
	// back — exactly the on-disk state of a crash after rename.
	walBytes, err := os.ReadFile(WALPath(ixPath))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Snapshot(ixPath); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	w.Close()
	if err := os.WriteFile(WALPath(ixPath), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	d := re.(*Dynamic)
	if d.Handles() != 80 || d.N() != 79 {
		t.Fatalf("recovered handles=%d N=%d, want 80/79", d.Handles(), d.N())
	}
	if _, live := d.index.Vector(3); live {
		t.Fatal("handle 3 resurrected by replaying a snapshot-covered delete")
	}
}

func TestOpenRejectsStaleSnapshotUnderNewerWAL(t *testing.T) {
	// The converse mismatch: a log truncated against a newer snapshot that
	// has since been replaced by an older container. The history between
	// the two is in neither file — Open must refuse.
	dir := t.TempDir()
	ixPath := filepath.Join(dir, "ix.p2h")
	const dim = 3

	ix := NewDynamic(nil, DynamicOptions{Dim: dim, Seed: 1})
	for i := 0; i < 10; i++ {
		ix.Insert([]float32{float32(i), 1, 2})
	}
	if err := SaveFile(ixPath, ix); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(ixPath)
	if err != nil {
		t.Fatal(err)
	}

	w, err := AttachWAL(ix, WALPath(ixPath), WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ix, ServerOptions{Workers: 1, WAL: w})
	for i := 0; i < 5; i++ {
		if _, err := srv.Insert([]float32{9, 9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Snapshot(ixPath); err != nil { // truncates at handle 15
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Insert([]float32{8, 8, 8}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	w.Close()

	// Roll the container back to the 10-handle state.
	if err := os.WriteFile(ixPath, old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ixPath); !errors.Is(err, ErrFormat) {
		t.Fatalf("Open with stale snapshot: err = %v, want ErrFormat", err)
	}
}

func TestInspectFileReportsPendingWAL(t *testing.T) {
	dir := t.TempDir()
	ixPath := filepath.Join(dir, "ix.p2h")
	const dim = 5

	ix := NewDynamic(nil, DynamicOptions{Dim: dim, Seed: 2})
	for i := 0; i < 30; i++ {
		ix.Insert(make([]float32, dim))
	}
	if err := SaveFile(ixPath, ix); err != nil {
		t.Fatal(err)
	}

	// No sidecar yet.
	info, err := InspectFile(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALPath != "" || info.WALRecords != 0 {
		t.Fatalf("no sidecar: WALPath=%q WALRecords=%d", info.WALPath, info.WALRecords)
	}
	if info.Kind != KindDynamic || info.N != 30 || info.Dim != dim {
		t.Fatalf("info = %+v", info)
	}

	// Mutations through a durable server leave pending records.
	w, err := AttachWAL(ix, WALPath(ixPath), WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ix, ServerOptions{Workers: 1, WAL: w})
	for i := 0; i < 7; i++ {
		if _, err := srv.Insert(make([]float32, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Delete(0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	w.Close()

	info, err = InspectFile(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALPath != WALPath(ixPath) || info.WALRecords != 8 {
		t.Fatalf("pending sidecar: WALPath=%q WALRecords=%d, want %q/8",
			info.WALPath, info.WALRecords, WALPath(ixPath))
	}
	// The container itself is untouched by logged-but-unsnapshotted
	// mutations.
	if info.N != 30 {
		t.Fatalf("container N=%d, want the snapshotted 30", info.N)
	}

	// A corrupt sidecar fails the inspection.
	raw, err := os.ReadFile(WALPath(ixPath))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(WALPath(ixPath), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := InspectFile(ixPath); !errors.Is(err, ErrFormat) {
		t.Fatalf("corrupt sidecar: err = %v, want ErrFormat", err)
	}
}

func TestAttachWALRejectsImmutableIndex(t *testing.T) {
	data := specTestData(50, 4, 7)
	ix, err := New(data, Spec{Kind: KindBCTree})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachWAL(ix, filepath.Join(t.TempDir(), "x.wal"), WALSyncAlways); err == nil {
		t.Fatal("AttachWAL accepted an immutable index")
	}
}

func TestParseWALSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want WALSyncMode
		ok   bool
	}{
		{"", WALSyncAlways, true},
		{"always", WALSyncAlways, true},
		{"none", WALSyncNone, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseWALSyncMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseWALSyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

var genContainerCorpus = flag.Bool("gen-container-corpus", false,
	"regenerate testdata/fuzz/FuzzOpenContainer seed corpus")

// containerFuzzSeeds builds small but structurally complete containers for
// the container-decoder fuzz target.
func containerFuzzSeeds(t testing.TB) map[string][]byte {
	save := func(ix Index, err error) []byte {
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, ix); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	data := specTestData(40, 4, 7)
	dyn := NewDynamic(data, DynamicOptions{Seed: 3})
	dyn.Delete(5)
	dyn.Insert([]float32{1, 2, 3, 4})
	var dynBuf bytes.Buffer
	if err := Save(&dynBuf, dyn); err != nil {
		t.Fatal(err)
	}
	bc := save(New(data, Spec{Kind: KindBCTree, LeafSize: 16, Seed: 2}))
	truncated := bc[:len(bc)*2/3]
	flipped := append([]byte(nil), dynBuf.Bytes()...)
	flipped[len(flipped)/2] ^= 0x20
	attributed, err := New(data, Spec{Kind: KindBCTree, LeafSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]PointAttrs, data.N)
	for i := range pts {
		pts[i] = PointAttrs{Tags: []string{"t"}, Ints: map[string]int64{"c": int64(i)}}
	}
	if err := AttachAttributes(attributed, pts); err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"seed-bctree":    bc,
		"seed-dynamic":   dynBuf.Bytes(),
		"seed-sharded":   save(New(data, Spec{Kind: KindSharded, Shards: 2, LeafSize: 16, Seed: 2})),
		"seed-attrs":     save(attributed, nil),
		"seed-truncated": truncated,
		"seed-flipped":   flipped,
		"seed-badmagic":  []byte("NOTANIDX container bytes"),
		"seed-empty":     {},
	}
}

// TestGenerateContainerFuzzCorpus rewrites the checked-in seed corpus when
// run with -gen-container-corpus.
func TestGenerateContainerFuzzCorpus(t *testing.T) {
	if !*genContainerCorpus {
		t.Skip("run with -gen-container-corpus to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzOpenContainer")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range containerFuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzOpenContainer asserts the container decoder's contract over arbitrary
// bytes: Load never panics, corruption surfaces as ErrFormat (or
// ErrUnknownKind for an intact header naming no backend) — and a stream
// that does load supports Save and answers basic queries, so a bit-flip can
// never smuggle a half-broken index past the loader.
func FuzzOpenContainer(f *testing.F) {
	for _, data := range containerFuzzSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrUnknownKind) {
				t.Fatalf("Load error %v wraps neither ErrFormat nor ErrUnknownKind", err)
			}
			return
		}
		// A loaded index must be internally consistent enough to serve.
		if ix.Dim() <= 0 {
			t.Fatalf("loaded index reports dim %d", ix.Dim())
		}
		if n := ix.N(); n > 0 {
			q := make([]float32, ix.Dim()+1)
			q[0] = 1
			res, _ := ix.Search(q, SearchOptions{K: 3})
			if len(res) == 0 {
				t.Fatalf("loaded index with %d points returned no results", n)
			}
		}
		var buf bytes.Buffer
		if err := Save(&buf, ix); err != nil {
			t.Fatalf("re-saving a loaded index: %v", err)
		}
	})
}
