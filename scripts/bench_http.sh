#!/usr/bin/env bash
# bench_http.sh — measure the HTTP service end to end and emit a
# machine-readable snapshot: build p2hd, stand it up over a generated data
# set, load-test it with p2hserve's client mode (per-query /search and
# grouped /search_batch), and record client-observed qps plus latency
# percentiles.
#
#   scripts/bench_http.sh [out.json]     default out: BENCH_5.json
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_5.json}"

N="${BENCH_HTTP_N:-20000}"
NQ="${BENCH_HTTP_NQ:-200}"
CLIENTS="${BENCH_HTTP_CLIENTS:-8}"
REPEAT="${BENCH_HTTP_REPEAT:-2}"
K="${BENCH_HTTP_K:-10}"
BATCH="${BENCH_HTTP_BATCH:-64}"

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

bin="$tmp/bin"
go build -o "$bin/" ./cmd/...

"$bin/p2htool" gen -set Sift -n "$N" -seed 1 -out "$tmp/data.fvecs" >/dev/null
"$bin/p2htool" queries -data "$tmp/data.fvecs" -nq "$NQ" -seed 2 -out "$tmp/q.fvecs" >/dev/null
"$bin/p2htool" build -index bctree -data "$tmp/data.fvecs" -seed 1 -out "$tmp/ix.p2h" >/dev/null

"$bin/p2hd" -listen 127.0.0.1:0 -name bench -load "$tmp/ix.p2h" >"$tmp/p2hd.log" 2>&1 &
pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "p2hd never came up:"; cat "$tmp/p2hd.log"; exit 1; }

echo "== per-query /search ($CLIENTS clients x $REPEAT repeats x $NQ queries, k=$K)"
single="$("$bin/p2hserve" -url "$url" -name bench -queries "$tmp/q.fvecs" \
  -clients "$CLIENTS" -repeat "$REPEAT" -k "$K")"
echo "$single"

echo "== grouped /search_batch (batch=$BATCH)"
batch="$("$bin/p2hserve" -url "$url" -name bench -queries "$tmp/q.fvecs" \
  -clients "$CLIENTS" -repeat "$REPEAT" -k "$K" -httpbatch "$BATCH")"
echo "$batch"

kill -TERM "$pid"; wait "$pid" 2>/dev/null || true
pid=""
grep -q "p2hd: drained" "$tmp/p2hd.log" || { echo "p2hd did not drain cleanly"; exit 1; }

# "http: 3200 queries in 1.9s -> 1684 qps" / "http: latency mean 4.7ms p50 ..."
qps_single="$(sed -n 's/^http: .* -> \([0-9.]*\) qps$/\1/p' <<<"$single")"
lat_single="$(sed -n 's/^http: latency \(.*\)$/\1/p' <<<"$single")"
qps_batch="$(sed -n 's/^http_batch: .* -> \([0-9.]*\) qps$/\1/p' <<<"$batch")"
lat_batch="$(sed -n 's/^http_batch request: latency \(.*\)$/\1/p' <<<"$batch")"
hits="$(sed -n 's/^daemon: .*cache hit rate \([0-9.]*\)%$/\1/p' <<<"$single")"

cat >"$OUT" <<JSON
{
  "generated_by": "scripts/bench_http.sh",
  "generated_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go version | awk '{print $3}')",
  "workload": {"set": "Sift", "n": $N, "nq": $NQ, "clients": $CLIENTS, "repeat": $REPEAT, "k": $K},
  "http_search": {"qps": ${qps_single:-0}, "latency": "${lat_single}", "cache_hit_rate_pct": ${hits:-0}},
  "http_search_batch": {"batch": $BATCH, "qps": ${qps_batch:-0}, "request_latency": "${lat_batch}"}
}
JSON
echo "wrote $OUT"
