#!/usr/bin/env bash
# bench_regression.sh — run the key microbenchmarks and gate on regressions.
#
#   bench_regression.sh run <out.txt>             run the benchmark suite
#   bench_regression.sh compare <base.txt> <head.txt>
#                                                 benchstat the two runs and
#                                                 fail on a statistically
#                                                 significant >15% slowdown
#
# The suite covers the three layers the flat tree layout optimizes: the vec
# kernels, the balltree/bctree searches, and the serving path. -count=6 gives
# benchstat enough samples for a significance test.
set -euo pipefail

COUNT="${BENCH_COUNT:-6}"
BENCHTIME="${BENCH_TIME:-0.3s}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-15}"

run() {
  local out="$1"
  : > "$out"
  go test -run '^$' -bench 'BenchmarkDot|BenchmarkSqDistBlock|BenchmarkConeSelect' \
    -benchtime="$BENCHTIME" -count="$COUNT" ./internal/vec | tee -a "$out"
  go test -run '^$' -bench 'BenchmarkQueryExactBallTree$|BenchmarkQueryExactBCTree$|BenchmarkQueryBudgetBCTree$|BenchmarkServer' \
    -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$out"
}

compare() {
  local base="$1" head="$2"
  local report
  report=$(benchstat "$base" "$head")
  echo "$report"
  # benchstat marks a significant delta as "+NN.NN% (p=0.0xx n=6)" and an
  # insignificant one as "~". Only the sec/op table is a regression signal:
  # in the B/s table (benchmarks with b.SetBytes) a positive delta is an
  # improvement, so the scan tracks which metric section it is inside.
  local bad
  bad=$(echo "$report" | awk -v max="$MAX_REGRESSION_PCT" '
    /sec\/op/ { insec = 1; next }
    /B\/s|B\/op|allocs\/op/ { insec = 0; next }
    insec {
      for (i = 1; i < NF; i++) {
        if ($i ~ /^\+[0-9]+(\.[0-9]+)?%$/ && $(i + 1) ~ /^\(p=[0-9.]+$/) {
          pct = substr($i, 2, length($i) - 2) + 0
          p = substr($(i + 1), 4) + 0
          if (pct > max && p <= 0.05) print
        }
      }
    }') || true
  if [ -n "$bad" ]; then
    echo ""
    echo "FAIL: statistically significant slowdown(s) above ${MAX_REGRESSION_PCT}%:"
    echo "$bad"
    exit 1
  fi
  echo "OK: no significant slowdown above ${MAX_REGRESSION_PCT}%."
}

case "${1:-}" in
  run)     run "${2:?usage: bench_regression.sh run <out.txt>}" ;;
  compare) compare "${2:?base file}" "${3:?head file}" ;;
  *) echo "usage: $0 run <out.txt> | compare <base.txt> <head.txt>" >&2; exit 2 ;;
esac
