#!/usr/bin/env bash
# bench_regression.sh — run the key microbenchmarks and gate on regressions.
#
#   bench_regression.sh run <out.txt>             run the benchmark suite
#   bench_regression.sh compare <base.txt> <head.txt>
#                                                 benchstat the two runs and
#                                                 fail on a statistically
#                                                 significant >15% slowdown
#                                                 or allocs/op increase
#
# The suite covers the layers the execution engine optimizes: the vec
# kernels, the balltree/bctree searches (per-query and batched), and the
# serving path. -count=6 gives benchstat enough samples for a significance
# test; -benchmem records allocs/op so the zero-allocation steady state is
# gated alongside time.
set -euo pipefail

COUNT="${BENCH_COUNT:-6}"
BENCHTIME="${BENCH_TIME:-0.3s}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-15}"
MAX_ALLOC_REGRESSION_PCT="${MAX_ALLOC_REGRESSION_PCT:-10}"

run() {
  local out="$1"
  : > "$out"
  go test -run '^$' -bench 'BenchmarkDot|BenchmarkSqDistBlock|BenchmarkConeSelect|BenchmarkCodeDot|BenchmarkCodeSelect' \
    -benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/vec | tee -a "$out"
  go test -run '^$' -bench 'BenchmarkQueryExactBallTree|BenchmarkQueryExactBCTree|BenchmarkQueryBudgetBCTree$|BenchmarkSearchBatchExact|BenchmarkServer' \
    -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$out"
}

compare() {
  local base="$1" head="$2"

  # Zero-alloc gate, straight from the raw outputs (benchstat's rendering
  # of a zero-to-nonzero delta is not parseable reliably): any benchmark
  # whose best base run allocated nothing must still allocate nothing at
  # head. Benchmarks new at head have no base line and are skipped.
  local leaks
  leaks=$(awk '
    FNR == 1 { file++ }
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      for (i = 3; i < NF; i++) if ($(i + 1) == "allocs/op") {
        if (file == 1) { if (!(name in base) || $i + 0 < base[name]) base[name] = $i + 0 }
        else           { if (!(name in head) || $i + 0 < head[name]) head[name] = $i + 0 }
      }
    }
    END { for (n in head) if (n in base && base[n] == 0 && head[n] > 0)
            printf "%s: 0 allocs/op at base, %d at head\n", n, head[n] }
  ' "$base" "$head") || true
  if [ -n "$leaks" ]; then
    echo "FAIL: zero-allocation benchmark(s) now allocate:"
    echo "$leaks"
    exit 1
  fi

  local report
  report=$(benchstat "$base" "$head")
  echo "$report"
  # benchstat marks a significant delta as "+NN.NN% (p=0.0xx n=6)" and an
  # insignificant one as "~". Two metric sections are regression signals:
  # sec/op (a positive delta is a slowdown) and allocs/op (a positive delta
  # means the zero-allocation steady state is eroding). In the B/s table a
  # positive delta is an improvement, so the scan tracks which metric
  # section it is inside.
  local bad
  bad=$(echo "$report" | awk -v maxsec="$MAX_REGRESSION_PCT" -v maxalloc="$MAX_ALLOC_REGRESSION_PCT" '
    /sec\/op/  { sect = "sec";   next }
    /allocs\/op/ { sect = "alloc"; next }
    /B\/s|B\/op/ { sect = "";      next }
    sect != "" {
      for (i = 1; i < NF; i++) {
        if ($i ~ /^\+[0-9]+(\.[0-9]+)?%$/ && $(i + 1) ~ /^\(p=[0-9.]+$/) {
          pct = substr($i, 2, length($i) - 2) + 0
          p = substr($(i + 1), 4) + 0
          max = (sect == "sec") ? maxsec : maxalloc
          if (pct > max && p <= 0.05) print sect ": " $0
        }
      }
    }') || true
  if [ -n "$bad" ]; then
    echo ""
    echo "FAIL: statistically significant regression(s) above the gates" \
         "(sec/op > ${MAX_REGRESSION_PCT}%, allocs/op > ${MAX_ALLOC_REGRESSION_PCT}%):"
    echo "$bad"
    exit 1
  fi
  echo "OK: no significant slowdown above ${MAX_REGRESSION_PCT}% and no allocs/op regression above ${MAX_ALLOC_REGRESSION_PCT}%."
}

case "${1:-}" in
  run)     run "${2:?usage: bench_regression.sh run <out.txt>}" ;;
  compare) compare "${2:?base file}" "${3:?head file}" ;;
  *) echo "usage: $0 run <out.txt> | compare <base.txt> <head.txt>" >&2; exit 2 ;;
esac
