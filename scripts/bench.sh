#!/usr/bin/env bash
# bench.sh — run the key microbenchmarks and emit a machine-readable perf
# snapshot (ns/op, derived qps, and allocs/op per benchmark) so the
# repository tracks its performance trajectory PR over PR.
#
#   scripts/bench.sh [out.json]     default out: BENCH_3.json
#
# The benchmark suite is shared with the CI bench-regression gate
# (scripts/bench_regression.sh); this script adds the JSON snapshot. Each
# benchmark's value is the median over BENCH_COUNT runs.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

./scripts/bench_regression.sh run "$RAW"

# "BenchmarkName-8  1234  5678 ns/op  90 B/op  1 allocs/op" ->
# "BenchmarkName 5678 1", median per name, then JSON.
# qps = 1e9 / ns_per_op, meaningful for per-query benchmarks.
grep -E '^Benchmark[^ ]+(-[0-9]+)?\s' "$RAW" |
  awk '{
    name = $1; sub(/-[0-9]+$/, "", name)
    allocs = "-1"
    for (i = 3; i < NF; i++) if ($(i + 1) == "allocs/op") allocs = $i
    print name, $3, allocs
  }' |
  sort |
  awk -v go_version="$(go version | awk '{print $3}')" \
      -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    {
      if ($1 != name && name != "") emit()
      name = $1
      ns[++n] = $2
      al[n] = $3
    }
    function median(arr, n,    i, j, t, mid) {
      for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
          if (arr[j] + 0 < arr[i] + 0) { t = arr[i]; arr[i] = arr[j]; arr[j] = t }
      mid = int((n + 1) / 2)
      return (n % 2 == 1) ? arr[mid] + 0 : (arr[mid] + arr[mid + 1]) / 2
    }
    function emit(    med, meda, extra) {
      med = median(ns, n)
      extra = ""
      if (al[1] + 0 >= 0) {
        meda = median(al, n)
        extra = sprintf(", \"allocs_per_op\": %.1f", meda)
      }
      lines[++m] = sprintf("    \"%s\": {\"ns_per_op\": %.1f, \"qps\": %.1f%s}", name, med, 1e9 / med, extra)
      n = 0
    }
    END {
      emit()
      printf "{\n"
      printf "  \"generated_by\": \"scripts/bench.sh\",\n"
      printf "  \"generated_at\": \"%s\",\n", date
      printf "  \"go\": \"%s\",\n", go_version
      printf "  \"benchmarks\": {\n"
      for (i = 1; i <= m; i++) printf "%s%s\n", lines[i], (i < m ? "," : "")
      printf "  }\n}\n"
    }' > "$OUT"

echo "wrote $OUT"
