#!/usr/bin/env bash
# bench.sh — run the key microbenchmarks and emit a machine-readable perf
# snapshot (ns/op and derived qps per benchmark) so the repository tracks its
# performance trajectory PR over PR.
#
#   scripts/bench.sh [out.json]     default out: BENCH_2.json
#
# The benchmark suite is shared with the CI bench-regression gate
# (scripts/bench_regression.sh); this script adds the JSON snapshot. Each
# benchmark's value is the median ns/op over BENCH_COUNT runs.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_2.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

./scripts/bench_regression.sh run "$RAW"

# "BenchmarkName-8  1234  5678 ns/op ..." -> "BenchmarkName 5678", median per
# name, then JSON. qps = 1e9 / ns_per_op, meaningful for per-query benchmarks.
grep -E '^Benchmark[^ ]+(-[0-9]+)?\s' "$RAW" |
  awk '{ name = $1; sub(/-[0-9]+$/, "", name); print name, $3 }' |
  sort |
  awk -v go_version="$(go version | awk '{print $3}')" \
      -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    {
      if ($1 != name && name != "") emit()
      name = $1
      vals[++n] = $2
    }
    function emit(    mid, med) {
      # vals arrived sorted lexically per name but medians need numeric order.
      for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
          if (vals[j] + 0 < vals[i] + 0) { t = vals[i]; vals[i] = vals[j]; vals[j] = t }
      mid = int((n + 1) / 2)
      med = (n % 2 == 1) ? vals[mid] + 0 : (vals[mid] + vals[mid + 1]) / 2
      lines[++m] = sprintf("    \"%s\": {\"ns_per_op\": %.1f, \"qps\": %.1f}", name, med, 1e9 / med)
      n = 0
    }
    END {
      emit()
      printf "{\n"
      printf "  \"generated_by\": \"scripts/bench.sh\",\n"
      printf "  \"generated_at\": \"%s\",\n", date
      printf "  \"go\": \"%s\",\n", go_version
      printf "  \"benchmarks\": {\n"
      for (i = 1; i <= m; i++) printf "%s%s\n", lines[i], (i < m ? "," : "")
      printf "  }\n}\n"
    }' > "$OUT"

echo "wrote $OUT"
