#!/usr/bin/env bash
# bench_overload.sh — measure how the serving stack behaves past its
# capacity, and emit a machine-readable snapshot: a closed-loop calibration
# of exact-search capacity, an open-loop flood at twice that rate against
# the real daemon stack (admission control, deadlines, SLO feedback
# controller), the steady-state non-shed p99 and recall the degraded mode
# settles to, recovery time back to exact once the flood stops, and the
# WAL group-commit insert throughput against the fsync-per-insert baseline.
#
#   scripts/bench_overload.sh [out.json]     default out: BENCH_8.json
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_8.json}"

N="${BENCH_OVERLOAD_N:-60000}"
NQ="${BENCH_OVERLOAD_NQ:-64}"
K="${BENCH_OVERLOAD_K:-10}"
SLO="${BENCH_OVERLOAD_SLO:-25ms}"
WORKERS="${BENCH_OVERLOAD_WORKERS:-4}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/p2hbench" ./cmd/p2hbench
"$tmp/p2hbench" -chaos -n "$N" -nq "$NQ" -k "$K" -seed 1 \
  -slo "$SLO" -workers "$WORKERS" -out "$OUT" >/dev/null
echo "wrote $OUT"
