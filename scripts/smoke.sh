#!/usr/bin/env bash
# Smoke test of the cmd/ binaries against the registry-driven CLI surface:
# builds p2htool, p2hserve, p2hbench and the p2hd daemon, generates a tiny
# data set, drives -index / -spec and save-then--load flows end to end for
# every persistable kind plus a build-only kind, and exercises the daemon's
# HTTP API (search, batch, insert/delete, snapshot, hot reload, metrics,
# health, graceful drain) with curl. CI runs this so the CLI flags, the
# container format and the service surface cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
daemon_pid=""
cluster_pids=()
cleanup() {
  [ -n "$daemon_pid" ] && kill -TERM "$daemon_pid" 2>/dev/null && wait "$daemon_pid" 2>/dev/null || true
  for p in "${cluster_pids[@]}"; do
    kill -TERM "$p" 2>/dev/null && wait "$p" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT
bin="$tmp/bin"

echo "== build binaries"
go build -o "$bin/" ./cmd/...
for b in p2htool p2hserve p2hbench p2hd; do
  [ -x "$bin/$b" ] || { echo "missing binary $b"; exit 1; }
done

data="$tmp/data.fvecs"
queries="$tmp/queries.fvecs"

echo "== generate data + queries + attribute payloads"
"$bin/p2htool" gen -set Music -n 2000 -seed 1 -out "$data"
"$bin/p2htool" queries -data "$data" -nq 10 -seed 2 -out "$queries"

# Per-row attribute payloads (gen dedups, so derive the row count from the
# fvecs file itself: each row is one int32 dim plus dim float32s).
attrs="$tmp/attrs.json"
fdim=$(od -An -td4 -N4 "$data" | tr -d ' ')
nrows=$(( $(stat -c %s "$data") / (4 * (fdim + 1)) ))
awk -v n="$nrows" 'BEGIN{
  printf "["
  for (i = 0; i < n; i++) {
    t = ""
    if (i % 100 == 0) t = "\"hot\""
    if (i % 10 == 0)  t = (t == "" ? "" : t ",") "\"warm\""
    if (i % 2 == 0)   t = (t == "" ? "" : t ",") "\"even\""
    printf "%s{\"tags\":[%s],\"floats\":{\"score\":%.3f}}", (i ? "," : ""), t, (i % 1000) / 1000
  }
  print "]"
}' > "$attrs"

echo "== build/save/info/search/eval each persistable kind via -index/-spec/-load"
for kind in balltree bctree kdtree sharded dynamic; do
  spec='{"leaf_size":50}'
  extra=()
  if [ "$kind" = sharded ]; then
    # The sharded container doubles as the cluster stage's attributed
    # single-node oracle, so it carries the payloads.
    spec='{"leaf_size":50,"shards":3,"workers":2}'
    extra=(-attrs "$attrs")
  fi
  ix="$tmp/ix-$kind.p2h"
  "$bin/p2htool" build -index "$kind" -spec "$spec" -seed 1 -data "$data" -out "$ix" "${extra[@]}"
  "$bin/p2htool" info -load "$ix" | grep "type=$kind" >/dev/null || { echo "info: wrong kind for $kind"; exit 1; }
  out="$("$bin/p2htool" search -load "$ix" -queries "$queries" -k 3)"
  grep "^query 0:" >/dev/null <<<"$out" || { echo "search: no results for $kind"; exit 1; }
done

echo "== eval (ground-truth recall) on the saved bctree"
out="$("$bin/p2htool" eval -load "$tmp/ix-bctree.p2h" -data "$data" -queries "$queries" -k 5 -budgets "0.1,1.0")"
grep "100.0%" >/dev/null <<<"$out" || { echo "eval: full budget not exact"; exit 1; }

echo "== spec JSON can carry the kind by itself"
out="$("$bin/p2htool" build -spec '{"kind":"balltree","leaf_size":25}' -data "$data" -out "$tmp/ix-speconly.p2h")"
grep "built balltree" >/dev/null <<<"$out" || { echo "spec-only kind failed"; exit 1; }

echo "== build-only kinds refuse to save with a clear diagnostic"
if "$bin/p2htool" build -index nh -data "$data" -out "$tmp/ix-nh.p2h" 2>"$tmp/nh.err"; then
  echo "build-only kind saved unexpectedly"; exit 1
fi
grep -q "build-only" "$tmp/nh.err" || { echo "build-only diagnostic missing"; exit 1; }

echo "== p2hserve: build via -index/-spec and serve a saved container via -load"
out="$("$bin/p2hserve" -data "$data" -queries "$queries" -index sharded -spec '{"shards":3,"workers":2}' -clients 2 -repeat 1)"
grep "index: sharded built" >/dev/null <<<"$out" || { echo "p2hserve -spec failed"; exit 1; }
out="$("$bin/p2hserve" -data "$data" -queries "$queries" -load "$tmp/ix-bctree.p2h" -clients 2 -repeat 1)"
grep "index: bctree loaded" >/dev/null <<<"$out" || { echo "p2hserve -load failed"; exit 1; }

echo "== p2hbench: registry-driven single-index benchmark (-index/-spec and -load)"
out="$("$bin/p2hbench" -index kdtree -spec '{"leaf_size":50}' -sets Music -n 1500 -nq 5 -k 3)"
grep "index: kdtree built" >/dev/null <<<"$out" || { echo "p2hbench -index failed"; exit 1; }
out="$("$bin/p2hbench" -load "$tmp/ix-bctree.p2h" -sets Music -n 2000 -nq 5 -k 3)"
grep "index: bctree loaded" >/dev/null <<<"$out" || { echo "p2hbench -load failed"; exit 1; }

echo "== p2htool inspect: header-only container description"
out="$("$bin/p2htool" inspect "$tmp/ix-sharded.p2h")"
grep "kind=sharded" >/dev/null <<<"$out" || { echo "inspect: wrong kind: $out"; exit 1; }
grep "points=" >/dev/null <<<"$out" || { echo "inspect: no point count: $out"; exit 1; }
grep '"shards":3' >/dev/null <<<"$out" || { echo "inspect: spec not recorded: $out"; exit 1; }
grep "attrs=present tags=\[even,hot,warm\]" >/dev/null <<<"$out" \
  || { echo "inspect: attribute section not reported: $out"; exit 1; }
grep "fields=\[score:float\]" >/dev/null <<<"$out" \
  || { echo "inspect: attribute schema wrong: $out"; exit 1; }
out="$("$bin/p2htool" inspect "$tmp/ix-bctree.p2h")"
grep "attrs=present" >/dev/null <<<"$out" \
  && { echo "inspect: unattributed container reports attrs: $out"; exit 1; }

echo "== p2hd: start the daemon on two indexes (container + inline spec)"
cat >"$tmp/p2hd.json" <<CFG
{
  "drain_timeout": "5s",
  "server": {"workers": 2},
  "indexes": {
    "trees": {"path": "$tmp/ix-bctree.p2h"},
    "dyn":   {"spec": {"kind": "dynamic", "leaf_size": 50}, "data": "$data"}
  }
}
CFG
"$bin/p2hd" -listen 127.0.0.1:0 -config "$tmp/p2hd.json" >"$tmp/p2hd.log" 2>&1 &
daemon_pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "p2hd never came up"; cat "$tmp/p2hd.log"; exit 1; }

echo "== p2hd: healthz + search + search_batch + insert/delete + snapshot + metrics"
curl -fsS "$url/healthz" | grep '"indexes":2' >/dev/null || { echo "healthz failed"; exit 1; }

dim=$(curl -fsS "$url/v1/indexes/trees" | sed -n 's/.*"dim":\([0-9]*\).*/\1/p')
q="[1$(for _ in $(seq 2 $((dim + 1))); do printf ',0'; done)]"
curl -fsS -X POST "$url/v1/indexes/trees/search" -d "{\"query\":$q,\"k\":3}" \
  | grep '"results":\[{' >/dev/null || { echo "search failed"; exit 1; }
curl -fsS -X POST "$url/v1/indexes/trees/search_batch" -d "{\"queries\":[$q,$q],\"k\":2}" \
  | grep '"results":\[\[' >/dev/null || { echo "search_batch failed"; exit 1; }

point="[9$(for _ in $(seq 2 "$dim"); do printf ',0'; done)]"
handle=$(curl -fsS -X POST "$url/v1/indexes/dyn/insert" -d "{\"point\":$point}" \
  | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')
[ -n "$handle" ] || { echo "insert failed"; exit 1; }
curl -fsS -X DELETE "$url/v1/indexes/dyn/points/$handle" \
  | grep '"deleted":true' >/dev/null || { echo "delete point failed"; exit 1; }
# Mutating the immutable index maps onto 405/immutable.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$url/v1/indexes/trees/insert" -d "{\"point\":$point}")
[ "$code" = 405 ] || { echo "immutable insert returned $code, want 405"; exit 1; }

curl -fsS -X POST "$url/v1/indexes/dyn/snapshot" -d "{\"path\":\"$tmp/dyn-snap.p2h\"}" \
  | grep '"bytes":' >/dev/null || { echo "snapshot failed"; exit 1; }
[ -s "$tmp/dyn-snap.p2h" ] || { echo "snapshot file missing"; exit 1; }

echo "== p2hd: hot reload the snapshot and keep serving"
curl -fsS -X POST "$url/v1/indexes/dyn" -d "{\"path\":\"$tmp/dyn-snap.p2h\",\"replace\":true}" \
  | grep '"kind":"dynamic"' >/dev/null || { echo "hot reload failed"; exit 1; }
curl -fsS -X POST "$url/v1/indexes/dyn/search" -d "{\"query\":$q,\"k\":1}" \
  | grep '"results":\[{' >/dev/null || { echo "post-reload search failed"; exit 1; }

curl -fsS "$url/metrics" | grep 'p2hd_index_queries_total{index="trees"' >/dev/null \
  || { echo "metrics missing index counters"; exit 1; }
curl -fsS "$url/metrics" | grep 'p2hd_http_request_duration_seconds_bucket' >/dev/null \
  || { echo "metrics missing latency histogram"; exit 1; }

echo "== p2hserve client mode against the daemon"
out="$("$bin/p2hserve" -url "$url" -name trees -queries "$queries" -clients 2 -repeat 1 -k 3)"
grep "daemon index \"trees\"" >/dev/null <<<"$out" || { echo "client mode failed"; exit 1; }
grep "qps" >/dev/null <<<"$out" || { echo "client mode reported no qps"; exit 1; }

echo "== p2hd: graceful drain on SIGTERM"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "p2hd exited non-zero"; cat "$tmp/p2hd.log"; exit 1; }
daemon_pid=""
grep "p2hd: drained" "$tmp/p2hd.log" >/dev/null || { echo "p2hd did not drain"; cat "$tmp/p2hd.log"; exit 1; }

echo "== p2hd: durable dynamic — mutate, kill -9, restart, recover"
"$bin/p2htool" build -index dynamic -spec '{"leaf_size":50}' -seed 1 -data "$data" -out "$tmp/durable.p2h"
"$bin/p2hd" -listen 127.0.0.1:0 -name live -load "$tmp/durable.p2h" -wal -walsync always -compact \
  >"$tmp/p2hd-wal.log" 2>&1 &
daemon_pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd-wal.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "durable p2hd never came up"; cat "$tmp/p2hd-wal.log"; exit 1; }

n0=$(curl -fsS "$url/v1/indexes/live" | sed -n 's/.*"n":\([0-9]*\).*/\1/p')
h1=$(curl -fsS -X POST "$url/v1/indexes/live/insert" -d "{\"point\":$point}" \
  | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')
h2=$(curl -fsS -X POST "$url/v1/indexes/live/insert" -d "{\"point\":$point}" \
  | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')
h3=$(curl -fsS -X POST "$url/v1/indexes/live/insert" -d "{\"point\":$point}" \
  | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')
[ -n "$h1" ] && [ -n "$h2" ] && [ -n "$h3" ] || { echo "durable insert failed"; exit 1; }

kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

"$bin/p2hd" -listen 127.0.0.1:0 -name live -load "$tmp/durable.p2h" -wal -walsync always -compact \
  >"$tmp/p2hd-wal2.log" 2>&1 &
daemon_pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd-wal2.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "durable p2hd never came back"; cat "$tmp/p2hd-wal2.log"; exit 1; }

info="$(curl -fsS "$url/v1/indexes/live")"
grep "\"n\":$((n0 + 3))" >/dev/null <<<"$info" || { echo "acked inserts lost across kill -9: $info"; exit 1; }
grep '"replayed":3' >/dev/null <<<"$info" || { echo "WAL replay count wrong: $info"; exit 1; }
curl -fsS "$url/healthz" | grep '"wal_replayed_records":3' >/dev/null \
  || { echo "healthz does not report replay completion"; exit 1; }
curl -fsS -X POST "$url/v1/indexes/live/search" -d "{\"query\":$q,\"k\":1}" \
  | grep '"results":\[{' >/dev/null || { echo "post-recovery search failed"; exit 1; }
curl -fsS -X DELETE "$url/v1/indexes/live/points/$h2" \
  | grep '"deleted":true' >/dev/null || { echo "recovered handle not live"; exit 1; }

echo "== p2hd: snapshot absorbs the write-ahead log"
curl -fsS -X POST "$url/v1/indexes/live/snapshot" -d "{\"path\":\"$tmp/durable.p2h\"}" \
  | grep '"bytes":' >/dev/null || { echo "durable snapshot failed"; exit 1; }
curl -fsS "$url/v1/indexes/live" | grep '"records":0' >/dev/null \
  || { echo "snapshot did not truncate the WAL"; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "durable p2hd exited non-zero"; cat "$tmp/p2hd-wal2.log"; exit 1; }
daemon_pid=""

echo "== p2hd: chaos — injected faults, flood, shed, recover, no acked loss"
# A deliberately tiny daemon (one worker, two queue slots) under injected
# slow fsyncs and slow searches: a flood must split into clean 200s and
# 429s, the shed counter must surface in /metrics, and inserts acked during
# the chaos must survive a kill -9 with the faults gone.
"$bin/p2htool" build -index dynamic -spec '{"leaf_size":50}' -seed 1 -data "$data" -out "$tmp/chaos.p2h"
P2HD_FAULTS="wal.fsync=delay:2ms;engine.search=delay:10ms" \
  "$bin/p2hd" -listen 127.0.0.1:0 -name chaos -load "$tmp/chaos.p2h" -wal -walsync always \
  -workers 1 -maxbatch 1 -cache=-1 -maxqueue 2 -maxtimeout 5s \
  >"$tmp/p2hd-chaos.log" 2>&1 &
daemon_pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd-chaos.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "chaos p2hd never came up"; cat "$tmp/p2hd-chaos.log"; exit 1; }
grep "fault injection armed" "$tmp/p2hd-chaos.log" >/dev/null \
  || { echo "faults not armed"; cat "$tmp/p2hd-chaos.log"; exit 1; }

: >"$tmp/chaos-codes"
flood_pids=()
for i in $(seq 1 24); do
  curl -sS -o /dev/null -w '%{http_code}\n' -X POST "$url/v1/indexes/chaos/search" \
    -d "{\"query\":$q,\"k\":1}" >>"$tmp/chaos-codes" &
  flood_pids+=($!)
done
wait "${flood_pids[@]}"
grep -q '^200$' "$tmp/chaos-codes" || { echo "flood: nothing served"; sort "$tmp/chaos-codes" | uniq -c; exit 1; }
grep -q '^429$' "$tmp/chaos-codes" || { echo "flood: nothing shed"; sort "$tmp/chaos-codes" | uniq -c; exit 1; }
if grep -Eqv '^(200|429)$' "$tmp/chaos-codes"; then
  echo "flood: unexpected status"; sort "$tmp/chaos-codes" | uniq -c; exit 1
fi
curl -fsS "$url/metrics" | grep -E 'p2hd_index_shed_total\{index="chaos"[^}]*\} [1-9]' >/dev/null \
  || { echo "metrics missing shed count"; exit 1; }
# Flood over: the very next request is served.
curl -fsS -X POST "$url/v1/indexes/chaos/search" -d "{\"query\":$q,\"k\":1}" \
  | grep '"results":\[{' >/dev/null || { echo "post-flood search failed"; exit 1; }

cn0=$(curl -fsS "$url/v1/indexes/chaos" | sed -n 's/.*"n":\([0-9]*\).*/\1/p')
for i in 1 2 3; do
  h=$(curl -fsS -X POST "$url/v1/indexes/chaos/insert" -d "{\"point\":$point}" \
    | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')
  [ -n "$h" ] || { echo "chaos insert $i failed"; exit 1; }
done
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

"$bin/p2hd" -listen 127.0.0.1:0 -name chaos -load "$tmp/chaos.p2h" -wal -walsync always \
  >"$tmp/p2hd-chaos2.log" 2>&1 &
daemon_pid=$!
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/p2hd-chaos2.log" | head -1)"
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || { echo "chaos p2hd never came back"; cat "$tmp/p2hd-chaos2.log"; exit 1; }
info="$(curl -fsS "$url/v1/indexes/chaos")"
grep "\"n\":$((cn0 + 3))" >/dev/null <<<"$info" \
  || { echo "acked inserts lost across chaos kill -9: $info"; exit 1; }
grep '"replayed":3' >/dev/null <<<"$info" || { echo "chaos WAL replay count wrong: $info"; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "chaos p2hd exited non-zero"; cat "$tmp/p2hd-chaos2.log"; exit 1; }
daemon_pid=""

echo "== cluster: split, boot 3 members + router, verify byte-identity with single node"
# The same spec the single-node sharded container above was built with, so
# the routed cluster and the single daemon serve the same logical index and
# must answer byte-identically.
cdir="$tmp/cluster"
"$bin/p2htool" cluster split -data "$data" -name trees \
  -spec '{"leaf_size":50,"shards":3,"workers":2,"seed":1}' \
  -attrs "$attrs" -members 3 -replicas 1 -out "$cdir" >/dev/null

member_urls=()
for i in 0 1 2; do
  ( cd "$cdir" && exec "$bin/p2hd" -listen 127.0.0.1:0 -config "member-m$i.json" ) \
    >"$tmp/member-m$i.log" 2>&1 &
  cluster_pids+=($!)
done
for i in 0 1 2; do
  murl=""
  for _ in $(seq 1 100); do
    murl="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/member-m$i.log" | head -1)"
    [ -n "$murl" ] && break
    sleep 0.1
  done
  [ -n "$murl" ] || { echo "member m$i never came up"; cat "$tmp/member-m$i.log"; exit 1; }
  member_urls+=("$murl")
  sed -i "s|@m$i@|$murl|" "$cdir/cluster.json"
done

"$bin/p2hd" -mode router -listen 127.0.0.1:0 -config "$cdir/cluster.json" \
  >"$tmp/router.log" 2>&1 &
cluster_pids+=($!)
rurl=""
for _ in $(seq 1 100); do
  rurl="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/router.log" | head -1)"
  [ -n "$rurl" ] && break
  sleep 0.1
done
[ -n "$rurl" ] || { echo "router never came up"; cat "$tmp/router.log"; exit 1; }

# Single-node oracle: the ix-sharded.p2h container built earlier with the
# same spec, served by one daemon.
"$bin/p2hd" -listen 127.0.0.1:0 -name trees -load "$tmp/ix-sharded.p2h" \
  >"$tmp/oracle.log" 2>&1 &
cluster_pids+=($!)
ourl=""
for _ in $(seq 1 100); do
  ourl="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/oracle.log" | head -1)"
  [ -n "$ourl" ] && break
  sleep 0.1
done
[ -n "$ourl" ] || { echo "oracle daemon never came up"; cat "$tmp/oracle.log"; exit 1; }

curl -fsS "$rurl/healthz" | grep '"status":"ok"' >/dev/null \
  || { echo "router unhealthy"; curl -sS "$rurl/healthz"; exit 1; }
curl -fsS "$rurl/v1/indexes/trees" | grep '"kind":"cluster"' >/dev/null \
  || { echo "router index info wrong"; exit 1; }

for body in "{\"query\":$q,\"k\":5}" "{\"query\":$q,\"k\":5,\"budget\":200}" "{\"query\":$q,\"k\":9999}" \
            "{\"query\":$q,\"k\":5,\"filter\":{\"tag\":\"hot\"}}" \
            "{\"query\":$q,\"k\":5,\"filter\":{\"and\":[{\"tag\":\"even\"},{\"field\":\"score\",\"min\":0.5}]}}"; do
  curl -fsS -X POST "$ourl/v1/indexes/trees/search" -d "$body" >"$tmp/ans-oracle"
  curl -fsS -X POST "$rurl/v1/indexes/trees/search" -d "$body" >"$tmp/ans-router"
  cmp -s "$tmp/ans-oracle" "$tmp/ans-router" \
    || { echo "router answer differs from single node for $body"; cat "$tmp/ans-oracle" "$tmp/ans-router"; exit 1; }
done
# The selective predicate must actually prune subtrees, not just post-filter.
grep '"filter_skipped_nodes":[1-9]' "$tmp/ans-router" >/dev/null \
  || { echo "routed filtered search skipped no subtrees"; cat "$tmp/ans-router"; exit 1; }
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$rurl/v1/indexes/trees/search" \
  -d "{\"query\":$q,\"k\":5,\"filter\":{\"bogus\":1}}")
[ "$code" = 400 ] || { echo "malformed filter answered $code, want 400"; exit 1; }
curl -fsS -X POST "$ourl/v1/indexes/trees/search_batch" -d "{\"queries\":[$q,$q],\"k\":4}" >"$tmp/ans-oracle"
curl -fsS -X POST "$rurl/v1/indexes/trees/search_batch" -d "{\"queries\":[$q,$q],\"k\":4}" >"$tmp/ans-router"
cmp -s "$tmp/ans-oracle" "$tmp/ans-router" || { echo "router batch answer differs"; exit 1; }
curl -fsS -X POST "$ourl/v1/indexes/trees/search_batch" -d "{\"queries\":[$q,$q],\"k\":4,\"filter\":{\"tag\":\"warm\"}}" >"$tmp/ans-oracle"
curl -fsS -X POST "$rurl/v1/indexes/trees/search_batch" -d "{\"queries\":[$q,$q],\"k\":4,\"filter\":{\"tag\":\"warm\"}}" >"$tmp/ans-router"
cmp -s "$tmp/ans-oracle" "$tmp/ans-router" || { echo "router filtered batch answer differs"; exit 1; }

echo "== cluster: status, ship, p2hserve round-robin"
out="$("$bin/p2htool" cluster status -config "$cdir/cluster.json")"
grep "healthy" >/dev/null <<<"$out" || { echo "cluster status shows no healthy member"; echo "$out"; exit 1; }
grep "primary" >/dev/null <<<"$out" || { echo "cluster status shows no placement"; echo "$out"; exit 1; }
curl -fsS -X POST "$rurl/v1/cluster/ship" -d '{"index":"trees"}' \
  | grep '"ok":true' >/dev/null || { echo "ship failed"; exit 1; }
out="$("$bin/p2hserve" -url "${member_urls[0]},${member_urls[1]}" -name trees-s0 -queries "$queries" -clients 2 -repeat 1 -k 3 2>/dev/null || true)"
grep "round-robin" >/dev/null <<<"$out" || { echo "p2hserve round-robin not engaged"; echo "$out"; exit 1; }

echo "== cluster: kill a member, searches keep answering off the replica"
kill -9 "${cluster_pids[0]}"
wait "${cluster_pids[0]}" 2>/dev/null || true
for i in $(seq 1 8); do
  code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$rurl/v1/indexes/trees/search" -d "{\"query\":$q,\"k\":5}")
  [ "$code" = 200 ] || { echo "search $i after member kill returned $code"; cat "$tmp/router.log"; exit 1; }
done
curl -fsS -X POST "$rurl/v1/indexes/trees/search" -d "{\"query\":$q,\"k\":5}" >"$tmp/ans-router"
curl -fsS -X POST "$ourl/v1/indexes/trees/search" -d "{\"query\":$q,\"k\":5}" >"$tmp/ans-oracle"
cmp -s "$tmp/ans-oracle" "$tmp/ans-router" || { echo "replica answer differs from single node"; exit 1; }
sleep 1.2   # a probe round marks the member down
curl -fsS "$rurl/healthz" | grep '"status":"degraded"' >/dev/null \
  || { echo "router healthz not degraded after member kill"; curl -sS "$rurl/healthz"; exit 1; }
curl -fsS "$rurl/metrics" | grep 'p2hd_router_member_state{member="m0"} 4' >/dev/null \
  || { echo "metrics do not mark m0 down"; exit 1; }

echo "smoke OK"
