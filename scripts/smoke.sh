#!/usr/bin/env bash
# Smoke test of the cmd/ binaries against the registry-driven CLI surface:
# builds p2htool, p2hserve and p2hbench, generates a tiny data set, and
# drives -index / -spec and save-then--load flows end to end for every
# persistable kind plus a build-only kind. CI runs this so the CLI flags and
# the container format cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/bin"

echo "== build binaries"
go build -o "$bin/" ./cmd/...
for b in p2htool p2hserve p2hbench; do
  [ -x "$bin/$b" ] || { echo "missing binary $b"; exit 1; }
done

data="$tmp/data.fvecs"
queries="$tmp/queries.fvecs"

echo "== generate data + queries"
"$bin/p2htool" gen -set Music -n 2000 -seed 1 -out "$data"
"$bin/p2htool" queries -data "$data" -nq 10 -seed 2 -out "$queries"

echo "== build/save/info/search/eval each persistable kind via -index/-spec/-load"
for kind in balltree bctree kdtree sharded dynamic; do
  spec='{"leaf_size":50}'
  if [ "$kind" = sharded ]; then spec='{"leaf_size":50,"shards":3,"workers":2}'; fi
  ix="$tmp/ix-$kind.p2h"
  "$bin/p2htool" build -index "$kind" -spec "$spec" -seed 1 -data "$data" -out "$ix"
  "$bin/p2htool" info -load "$ix" | grep "type=$kind" >/dev/null || { echo "info: wrong kind for $kind"; exit 1; }
  out="$("$bin/p2htool" search -load "$ix" -queries "$queries" -k 3)"
  grep "^query 0:" >/dev/null <<<"$out" || { echo "search: no results for $kind"; exit 1; }
done

echo "== eval (ground-truth recall) on the saved bctree"
out="$("$bin/p2htool" eval -load "$tmp/ix-bctree.p2h" -data "$data" -queries "$queries" -k 5 -budgets "0.1,1.0")"
grep "100.0%" >/dev/null <<<"$out" || { echo "eval: full budget not exact"; exit 1; }

echo "== spec JSON can carry the kind by itself"
out="$("$bin/p2htool" build -spec '{"kind":"balltree","leaf_size":25}' -data "$data" -out "$tmp/ix-speconly.p2h")"
grep "built balltree" >/dev/null <<<"$out" || { echo "spec-only kind failed"; exit 1; }

echo "== build-only kinds refuse to save with a clear diagnostic"
if "$bin/p2htool" build -index nh -data "$data" -out "$tmp/ix-nh.p2h" 2>"$tmp/nh.err"; then
  echo "build-only kind saved unexpectedly"; exit 1
fi
grep -q "build-only" "$tmp/nh.err" || { echo "build-only diagnostic missing"; exit 1; }

echo "== p2hserve: build via -index/-spec and serve a saved container via -load"
out="$("$bin/p2hserve" -data "$data" -queries "$queries" -index sharded -spec '{"shards":3,"workers":2}' -clients 2 -repeat 1)"
grep "index: sharded built" >/dev/null <<<"$out" || { echo "p2hserve -spec failed"; exit 1; }
out="$("$bin/p2hserve" -data "$data" -queries "$queries" -load "$tmp/ix-bctree.p2h" -clients 2 -repeat 1)"
grep "index: bctree loaded" >/dev/null <<<"$out" || { echo "p2hserve -load failed"; exit 1; }

echo "== p2hbench: registry-driven single-index benchmark (-index/-spec and -load)"
out="$("$bin/p2hbench" -index kdtree -spec '{"leaf_size":50}' -sets Music -n 1500 -nq 5 -k 3)"
grep "index: kdtree built" >/dev/null <<<"$out" || { echo "p2hbench -index failed"; exit 1; }
out="$("$bin/p2hbench" -load "$tmp/ix-bctree.p2h" -sets Music -n 2000 -nq 5 -k 3)"
grep "index: bctree loaded" >/dev/null <<<"$out" || { echo "p2hbench -load failed"; exit 1; }

echo "smoke OK"
