#!/usr/bin/env bash
# bench_durable.sh — measure what the durability layer costs and buys, and
# emit a machine-readable snapshot: a sustained insert+search run with the
# delta buffer growing unchecked versus the same run under background
# compaction (per-window search qps shows the degradation and the
# recovery), plus the median time to reopen a container whose write-ahead
# log holds a quarter of the corpus — the crash-recovery path.
#
#   scripts/bench_durable.sh [out.json]     default out: BENCH_6.json
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_6.json}"

N="${BENCH_DURABLE_N:-20000}"
NQ="${BENCH_DURABLE_NQ:-200}"
K="${BENCH_DURABLE_K:-10}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/p2hbench" ./cmd/p2hbench
"$tmp/p2hbench" -durable -n "$N" -nq "$NQ" -k "$K" -seed 1 -out "$OUT" >/dev/null
echo "wrote $OUT"
