#!/usr/bin/env bash
# bench_cluster.sh — measure the cluster router's scatter-gather scaling and
# kill-survival, and emit a machine-readable snapshot.
#
#   scripts/bench_cluster.sh [out.json]     default out: BENCH_9.json
#
# Methodology (single-core CI host): real 3-member CPU scaling cannot be
# shown on one core, so per-member capacity is modeled with the fault
# injection registry: each member's engine is pinned to a service-time floor
# *calibrated from the measured single-client search latency of its own
# shard on this host* (full index for the 1-member baseline, third-size
# shard for the 3-member cluster), scaled by FLOOR_SCALE so the host's one
# real core never saturates and per-member capacity — not host CPU — stays
# the binding constraint, as it is across real machines. The floors preserve
# the measured full-vs-shard latency ratio, so the reported scaling is what
# the router's parallel fan-out extracts from it, net of routing, merge and
# hedging overhead. Members run GOMAXPROCS=1, one worker, no result cache.
#
# The kill stage drives sequential searches through the 3-member router and
# kill -9s a member mid-stream: every request must answer 200 (the router
# falls back to the surviving replica), and the snapshot records the
# success fraction.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_9.json}"

N="${BENCH_CLUSTER_N:-20000}"
NQ="${BENCH_CLUSTER_NQ:-200}"
CLIENTS="${BENCH_CLUSTER_CLIENTS:-12}"
REPEAT="${BENCH_CLUSTER_REPEAT:-2}"
K="${BENCH_CLUSTER_K:-10}"
FLOOR_SCALE="${BENCH_CLUSTER_FLOOR_SCALE:-8}"
KILL_REQUESTS="${BENCH_CLUSTER_KILL_REQUESTS:-400}"

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null && wait "$p" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

bin="$tmp/bin"
go build -o "$bin/" ./cmd/p2hd ./cmd/p2htool ./cmd/p2hserve

wait_url() { # logfile -> prints the daemon's URL
  local u=""
  for _ in $(seq 1 100); do
    u="$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$1" | head -1)"
    [ -n "$u" ] && break
    sleep 0.1
  done
  [ -n "$u" ] || { echo "daemon never came up:" >&2; cat "$1" >&2; exit 1; }
  echo "$u"
}

qps_of() { sed -n 's/.*-> \([0-9]*\) qps.*/\1/p' <<<"$1" | head -1; }

echo "== data: Sift n=$N, $NQ queries; split into 1-member and 3-member maps"
"$bin/p2htool" gen -set Sift -n "$N" -seed 1 -out "$tmp/data.fvecs" >/dev/null
"$bin/p2htool" queries -data "$tmp/data.fvecs" -nq "$NQ" -seed 2 -out "$tmp/q.fvecs" >/dev/null
"$bin/p2htool" cluster split -data "$tmp/data.fvecs" -name trees \
  -spec '{"leaf_size":50,"seed":1}' -members 1 -replicas 0 -out "$tmp/c1" >/dev/null
"$bin/p2htool" cluster split -data "$tmp/data.fvecs" -name trees \
  -spec '{"leaf_size":50,"seed":1}' -members 3 -replicas 1 -out "$tmp/c3" >/dev/null

echo "== calibrate per-shard service-time floors (single client, no cache)"
declare -A cal_qps
for c in c1 c3; do
  GOMAXPROCS=1 "$bin/p2hd" -listen 127.0.0.1:0 -name cal -load "$tmp/$c/trees-s0.p2h" \
    -cache=-1 -workers 1 -maxbatch 1 >"$tmp/cal-$c.log" 2>&1 &
  cal_pid=$!
  url="$(wait_url "$tmp/cal-$c.log")"
  out="$("$bin/p2hserve" -url "$url" -name cal -queries "$tmp/q.fvecs" -clients 1 -repeat 2 -k "$K")"
  cal_qps[$c]="$(qps_of "$out")"
  kill -TERM "$cal_pid"; wait "$cal_pid" 2>/dev/null || true
done
delay_full_us=$(awk -v q="${cal_qps[c1]}" -v s="$FLOOR_SCALE" 'BEGIN{printf "%d", s*1000000/q}')
delay_shard_us=$(awk -v q="${cal_qps[c3]}" -v s="$FLOOR_SCALE" 'BEGIN{printf "%d", s*1000000/q}')
echo "full-index floor ${delay_full_us}us (measured ${cal_qps[c1]} qps), shard floor ${delay_shard_us}us (measured ${cal_qps[c3]} qps)"

# boot_cluster dir n_members delay_us — boots the members and router,
# appends their pids, and leaves the router's URL in ROUTER_URL. Must NOT
# run in a subshell, or the pids (and the cleanup trap) are lost.
boot_cluster() {
  local dir="$1" n="$2" delay="$3" i murl
  for i in $(seq 0 $((n - 1))); do
    ( cd "$dir" && exec env GOMAXPROCS=1 P2HD_FAULTS="engine.search=delay:${delay}us" \
        "$bin/p2hd" -listen 127.0.0.1:0 -config "member-m$i.json" \
        -cache=-1 -workers 1 -maxbatch 1 -maxqueue=-1 ) >"$tmp/member-$n-$i.log" 2>&1 &
    pids+=($!)
    murl="$(wait_url "$tmp/member-$n-$i.log")"
    sed -i "s|@m$i@|$murl|" "$dir/cluster.json"
  done
  "$bin/p2hd" -mode router -listen 127.0.0.1:0 -config "$dir/cluster.json" \
    >"$tmp/router-$n.log" 2>&1 &
  pids+=($!)
  ROUTER_URL="$(wait_url "$tmp/router-$n.log")"
}

echo "== 1-member baseline through the router"
boot_cluster "$tmp/c1" 1 "$delay_full_us"
rurl1="$ROUTER_URL"
out1="$("$bin/p2hserve" -url "$rurl1" -name trees -queries "$tmp/q.fvecs" \
  -clients "$CLIENTS" -repeat "$REPEAT" -k "$K")"
echo "$out1"
qps1="$(qps_of "$out1")"
for p in "${pids[@]}"; do kill -TERM "$p" 2>/dev/null && wait "$p" 2>/dev/null || true; done
pids=()

echo "== 3-member cluster through the router"
boot_cluster "$tmp/c3" 3 "$delay_shard_us"
rurl3="$ROUTER_URL"
out3="$("$bin/p2hserve" -url "$rurl3" -name trees -queries "$tmp/q.fvecs" \
  -clients "$CLIENTS" -repeat "$REPEAT" -k "$K")"
echo "$out3"
qps3="$(qps_of "$out3")"
scaling=$(awk -v a="$qps3" -v b="$qps1" 'BEGIN{printf "%.2f", a/b}')
echo "aggregate scaling: ${qps3} qps / ${qps1} qps = ${scaling}x"

echo "== kill a member mid-stream: every request must keep answering 200"
dim=$(curl -fsS "$rurl3/v1/indexes/trees" | sed -n 's/.*"dim":\([0-9]*\).*/\1/p')
q="[1$(for _ in $(seq 2 $((dim + 1))); do printf ',0'; done)]"
victim="${pids[2]}"   # member m2: primary of shard 2, replicated on m0
( sleep 1; kill -9 "$victim" ) &
killer=$!
ok=0
for _ in $(seq 1 "$KILL_REQUESTS"); do
  code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$rurl3/v1/indexes/trees/search" \
    -d "{\"query\":$q,\"k\":$K}" || echo 000)
  [ "$code" = 200 ] && ok=$((ok + 1))
done
wait "$killer" 2>/dev/null || true
success=$(awk -v o="$ok" -v t="$KILL_REQUESTS" 'BEGIN{printf "%.1f", 100.0*o/t}')
echo "kill survival: $ok/$KILL_REQUESTS answered 200 (${success}%)"
hedges=$(curl -fsS "$rurl3/metrics" | sed -n 's/^p2hd_router_hedges_total \([0-9]*\)$/\1/p')
fallbacks=$(curl -fsS "$rurl3/metrics" | sed -n 's/^p2hd_router_fallbacks_total \([0-9]*\)$/\1/p')

cat >"$OUT" <<JSON
{
  "generated_by": "scripts/bench_cluster.sh",
  "generated_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "host_cores": $(nproc),
  "workload": {"set": "Sift", "n": $N, "nq": $NQ, "clients": $CLIENTS, "repeat": $REPEAT, "k": $K},
  "methodology": "per-member capacity modeled with injected engine service-time floors calibrated from the measured single-client latency of each tier's own shard on this host, scaled x$FLOOR_SCALE so the single core never saturates; members GOMAXPROCS=1, 1 worker, no cache; both tiers measured through the router",
  "calibration": {"full_index_qps": ${cal_qps[c1]}, "third_shard_qps": ${cal_qps[c3]}, "floor_full_us": $delay_full_us, "floor_shard_us": $delay_shard_us, "floor_scale": $FLOOR_SCALE},
  "router_1_member": {"qps": $qps1},
  "router_3_members": {"qps": $qps3, "replicas_per_shard": 1},
  "scaling_x": $scaling,
  "kill_mid_bench": {"requests": $KILL_REQUESTS, "ok": $ok, "success_pct": $success, "router_hedges_total": ${hedges:-0}, "router_fallbacks_total": ${fallbacks:-0}}
}
JSON
echo "wrote $OUT"

awk -v s="$scaling" 'BEGIN{exit !(s >= 2.5)}' \
  || { echo "FAIL: scaling ${scaling}x below 2.5x"; exit 1; }
[ "$ok" -eq "$KILL_REQUESTS" ] \
  || { echo "FAIL: $((KILL_REQUESTS - ok)) request(s) failed during member kill"; exit 1; }
echo "bench_cluster OK"
