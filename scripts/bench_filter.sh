#!/usr/bin/env bash
# bench_filter.sh — measure filtered search: predicate pushdown versus an
# equivalent per-row post-filter at ~1%, ~10% and ~50% selectivity, and emit
# a machine-readable snapshot.
#
#   scripts/bench_filter.sh [out.json]     default out: BENCH_10.json
#
# The measurement (cmd/p2hbench/filter.go) runs the same tag predicate both
# ways over one attributed BC-Tree and verifies, every run, that the two
# strategies return byte-identical results and exact recall against a
# brute-force filtered linear scan. The benchmark itself is the gate: it
# exits non-zero if pushdown fails to beat post-filter at the selective
# tiers (<=10% match fraction) or any filtered answer drops below recall
# 1.0 — so this script failing is the CI signal.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_10.json}"

N="${BENCH_FILTER_N:-20000}"
NQ="${BENCH_FILTER_NQ:-50}"
K="${BENCH_FILTER_K:-10}"
LEAF="${BENCH_FILTER_LEAF:-20}"
REPEAT="${BENCH_FILTER_REPEAT:-3}"

go run ./cmd/p2hbench -filter -sets Sift -n "$N" -nq "$NQ" -k "$K" \
  -leafsize "$LEAF" -repeat "$REPEAT" -out "$OUT" >/dev/null

echo "wrote $OUT"
echo "bench_filter OK"
