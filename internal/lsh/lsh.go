// Package lsh provides the query-aware locality-sensitive hashing substrate
// NH and FH run on: m random Gaussian projections of the transformed vectors,
// each kept as an order (projection-sorted id list), probed at query time by
// collision counting.
//
// This follows the QALSH family of designs (the paper's references [28],
// [29]): the query's own projection value defines the bucket center, cursors
// sweep outward (nearest-first, for NNS) or inward from the extremes
// (furthest-first, for FNS), and a data point becomes a candidate once it has
// collided with the query in l distinct projections. Probing in this order
// emits candidates roughly by transformed-space distance, which is exactly
// the ordering NH (nearest) and FH (furthest) need.
package lsh

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"p2h/internal/vec"
)

// Config parameterizes the projection substrate.
type Config struct {
	// M is the number of projections (the paper's hash table count m).
	M int
	// Seed makes the Gaussian projections reproducible.
	Seed int64
}

// Index holds m sorted projections of a fixed data matrix.
type Index struct {
	m     int
	dim   int
	projs *vec.Matrix // m x dim Gaussian directions
	vals  [][]float64 // per projection: sorted projection values
	order [][]int32   // per projection: ids sorted by projection value
}

// Build projects every row of data onto m Gaussian directions and sorts each
// projection. Data is the transformed matrix (NH/FH call it on f(x) rows).
func Build(data *vec.Matrix, cfg Config) *Index {
	if data == nil || data.N == 0 {
		panic("lsh: empty data")
	}
	if cfg.M <= 0 {
		panic(fmt.Sprintf("lsh: invalid projection count %d", cfg.M))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ix := &Index{
		m:     cfg.M,
		dim:   data.D,
		projs: vec.NewMatrix(cfg.M, data.D),
		vals:  make([][]float64, cfg.M),
		order: make([][]int32, cfg.M),
	}
	for i := range ix.projs.Data {
		ix.projs.Data[i] = float32(rng.NormFloat64())
	}
	for t := 0; t < cfg.M; t++ {
		dir := ix.projs.Row(t)
		vals := make([]float64, data.N)
		ids := make([]int32, data.N)
		for i := 0; i < data.N; i++ {
			vals[i] = vec.Dot(dir, data.Row(i))
			ids[i] = int32(i)
		}
		sort.Sort(&byVal{vals: vals, ids: ids})
		ix.vals[t] = vals
		ix.order[t] = ids
	}
	return ix
}

type byVal struct {
	vals []float64
	ids  []int32
}

func (b *byVal) Len() int           { return len(b.vals) }
func (b *byVal) Less(i, j int) bool { return b.vals[i] < b.vals[j] }
func (b *byVal) Swap(i, j int) {
	b.vals[i], b.vals[j] = b.vals[j], b.vals[i]
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
}

// M returns the number of projections.
func (ix *Index) M() int { return ix.m }

// N returns the number of indexed vectors.
func (ix *Index) N() int { return len(ix.vals[0]) }

// Dim returns the projected (transformed) dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Bytes reports the memory footprint of the hash tables: per projection one
// float64 value and one int32 id per point, plus the projection directions.
func (ix *Index) Bytes() int64 {
	return int64(ix.m)*int64(ix.N())*(8+4) + ix.projs.Bytes()
}

// Project computes the query's m projection values. q must have the
// transformed dimensionality.
func (ix *Index) Project(q []float32) []float64 {
	if len(q) != ix.dim {
		panic(fmt.Sprintf("lsh: query dimension %d != %d", len(q), ix.dim))
	}
	out := make([]float64, ix.m)
	for t := 0; t < ix.m; t++ {
		out[t] = vec.Dot(ix.projs.Row(t), q)
	}
	return out
}

// cursor is one sweep head: projection t at position pos, moving by step.
type cursor struct {
	key  float64 // priority: |val - qv| (near) or -|val - qv| (far)
	t    int32
	pos  int32
	step int32 // +1 or -1
}

type cursorHeap []cursor

func (h cursorHeap) Len() int            { return len(h) }
func (h cursorHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(cursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ProbeNear sweeps all projections outward from the query's projection
// values, nearest projection distance first, and calls emit for every id
// whose collision count reaches l. It stops when emit returns false or all
// m*n (projection, position) pairs are exhausted; the return value is the
// number of cursor steps taken (the table-lookup work).
func (ix *Index) ProbeNear(qp []float64, l int, emit func(id int32) bool) int64 {
	l = ix.clampL(l)
	h := make(cursorHeap, 0, 2*ix.m)
	for t := 0; t < ix.m; t++ {
		vals := ix.vals[t]
		// First position at or above the query value; sweep right from it
		// and left from its predecessor.
		pos := sort.SearchFloat64s(vals, qp[t])
		if pos < len(vals) {
			h = append(h, cursor{key: vals[pos] - qp[t], t: int32(t), pos: int32(pos), step: 1})
		}
		if pos > 0 {
			h = append(h, cursor{key: qp[t] - vals[pos-1], t: int32(t), pos: int32(pos - 1), step: -1})
		}
	}
	heap.Init(&h)
	return ix.drain(&h, qp, l, false, emit)
}

// ProbeFar sweeps all projections inward from the extremes, furthest
// projection distance first — the furthest-neighbor analogue of ProbeNear
// used by FH's RQALSH-style search.
func (ix *Index) ProbeFar(qp []float64, l int, emit func(id int32) bool) int64 {
	l = ix.clampL(l)
	h := make(cursorHeap, 0, 2*ix.m)
	for t := 0; t < ix.m; t++ {
		vals := ix.vals[t]
		last := len(vals) - 1
		h = append(h, cursor{key: -(qp[t] - vals[0]), t: int32(t), pos: 0, step: 1})
		if last > 0 {
			h = append(h, cursor{key: -(vals[last] - qp[t]), t: int32(t), pos: int32(last), step: -1})
		}
	}
	heap.Init(&h)
	return ix.drain(&h, qp, l, true, emit)
}

// drain pops cursors in priority order, counting collisions and emitting
// candidates at the l-th collision.
func (ix *Index) drain(h *cursorHeap, qp []float64, l int, far bool, emit func(id int32) bool) int64 {
	counts := make([]uint16, ix.N())
	var steps int64
	for h.Len() > 0 {
		c := heap.Pop(h).(cursor)
		steps++
		t := int(c.t)
		id := ix.order[t][c.pos]
		counts[id]++
		if int(counts[id]) == l {
			if !emit(id) {
				return steps
			}
		}
		next := c.pos + c.step
		if next >= 0 && int(next) < len(ix.vals[t]) {
			key := ix.vals[t][next] - qp[t]
			if key < 0 {
				key = -key
			}
			if far {
				key = -key
			}
			heap.Push(h, cursor{key: key, t: c.t, pos: next, step: c.step})
		}
	}
	return steps
}

func (ix *Index) clampL(l int) int {
	if l <= 0 {
		l = 1
	}
	if l > ix.m {
		l = ix.m
	}
	return l
}
