package lsh

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"p2h/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestBuildValidations(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { Build(vec.NewMatrix(0, 3), Config{M: 4}) })
	mustPanic("m=0", func() { Build(randMatrix(rand.New(rand.NewSource(1)), 5, 3), Config{}) })
}

func TestProjectionsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randMatrix(rng, 200, 8)
	ix := Build(data, Config{M: 16, Seed: 3})
	for tt := 0; tt < ix.M(); tt++ {
		if !sort.Float64sAreSorted(ix.vals[tt]) {
			t.Fatalf("projection %d not sorted", tt)
		}
		// Sorted values must match recomputed projections of the ids.
		for i, id := range ix.order[tt] {
			want := vec.Dot(ix.projs.Row(tt), data.Row(int(id)))
			if math.Abs(want-ix.vals[tt][i]) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("projection %d entry %d mismatch", tt, i)
			}
		}
	}
}

// TestProbeNearEmitsEveryIDOnce: exhausting the probe yields each id exactly
// once, for any collision threshold l <= m.
func TestProbeNearEmitsEveryIDOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randMatrix(rng, 150, 6)
	ix := Build(data, Config{M: 8, Seed: 5})
	q := make([]float32, 6)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	qp := ix.Project(q)
	for _, l := range []int{1, 2, 4, 8} {
		seen := make(map[int32]int)
		steps := ix.ProbeNear(qp, l, func(id int32) bool {
			seen[id]++
			return true
		})
		if len(seen) != data.N {
			t.Fatalf("l=%d: emitted %d of %d ids", l, len(seen), data.N)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("l=%d: id %d emitted %d times", l, id, c)
			}
		}
		if steps != int64(ix.M())*int64(data.N) {
			t.Fatalf("l=%d: full drain takes m*n steps, got %d", l, steps)
		}
	}
}

func TestProbeFarEmitsEveryIDOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randMatrix(rng, 120, 5)
	ix := Build(data, Config{M: 6, Seed: 7})
	qp := ix.Project(make([]float32, 5))
	seen := make(map[int32]bool)
	ix.ProbeFar(qp, 3, func(id int32) bool {
		if seen[id] {
			t.Fatalf("id %d emitted twice", id)
		}
		seen[id] = true
		return true
	})
	if len(seen) != data.N {
		t.Fatalf("emitted %d of %d ids", len(seen), data.N)
	}
}

func TestProbeStopsWhenEmitReturnsFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randMatrix(rng, 100, 4)
	ix := Build(data, Config{M: 4, Seed: 9})
	qp := ix.Project(make([]float32, 4))
	count := 0
	ix.ProbeNear(qp, 1, func(id int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("probe did not stop at emit=false: %d", count)
	}
}

// TestProbeNearOrdersByProximity: with one projection and l=1, candidates
// come out in order of |projection - query projection|.
func TestProbeNearOrdersByProximity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := randMatrix(rng, 64, 3)
	ix := Build(data, Config{M: 1, Seed: 11})
	q := []float32{0.3, -0.2, 0.9}
	qp := ix.Project(q)
	var got []int32
	ix.ProbeNear(qp, 1, func(id int32) bool {
		got = append(got, id)
		return true
	})
	dist := func(id int32) float64 {
		return math.Abs(vec.Dot(ix.projs.Row(0), data.Row(int(id))) - qp[0])
	}
	for i := 1; i < len(got); i++ {
		if dist(got[i]) < dist(got[i-1])-1e-12 {
			t.Fatalf("near order violated at %d: %v < %v", i, dist(got[i]), dist(got[i-1]))
		}
	}
}

func TestProbeFarOrdersByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randMatrix(rng, 64, 3)
	ix := Build(data, Config{M: 1, Seed: 13})
	qp := ix.Project([]float32{0.1, 0.1, 0.1})
	var got []int32
	ix.ProbeFar(qp, 1, func(id int32) bool {
		got = append(got, id)
		return true
	})
	dist := func(id int32) float64 {
		return math.Abs(vec.Dot(ix.projs.Row(0), data.Row(int(id))) - qp[0])
	}
	for i := 1; i < len(got); i++ {
		if dist(got[i]) > dist(got[i-1])+1e-12 {
			t.Fatalf("far order violated at %d", i)
		}
	}
}

// TestQuickNearProbeFindsClosePointsEarly: the true nearest point in the
// projected space should be emitted well before a full scan when l is small.
func TestQuickNearProbeFindsClosePointsEarly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 50
		d := rng.Intn(6) + 2
		data := randMatrix(rng, n, d)
		ix := Build(data, Config{M: 8, Seed: seed})
		q := make([]float32, d)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		qp := ix.Project(q)
		// True nearest in Euclidean space.
		best, bestID := math.Inf(1), int32(-1)
		for i := 0; i < n; i++ {
			if dd := vec.SqDist(q, data.Row(i)); dd < best {
				best, bestID = dd, int32(i)
			}
		}
		emitted := 0
		found := false
		ix.ProbeNear(qp, 4, func(id int32) bool {
			emitted++
			if id == bestID {
				found = true
				return false
			}
			return emitted < n // allow up to a full candidate sweep
		})
		// A randomized filter may rarely miss within the allowance; accept
		// finding it within the full candidate budget.
		return found || emitted >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := randMatrix(rng, 100, 4)
	ix := Build(data, Config{M: 8, Seed: 15})
	want := int64(8)*int64(100)*(8+4) + int64(8*4*4)
	if ix.Bytes() != want {
		t.Fatalf("bytes %d want %d", ix.Bytes(), want)
	}
}
