package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("fresh registry reports armed")
	}
	if err := Inject("wal.fsync"); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	if d := Delay("clock.skew"); d != 0 {
		t.Fatalf("disarmed Delay = %v", d)
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("wal.fsync", Fault{Fail: true})
	if !Armed() {
		t.Fatal("not armed after Enable")
	}
	if err := Inject("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	if Hits("wal.fsync") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("wal.fsync"))
	}
	Disable("wal.fsync")
	if Armed() {
		t.Fatal("still armed after Disable of last point")
	}
	if err := Inject("wal.fsync"); err != nil {
		t.Fatalf("disabled Inject = %v", err)
	}
}

func TestDelayInjection(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("engine.search", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject("engine.search"); err != nil {
		t.Fatalf("Inject = %v", err)
	}
	if took := time.Since(start); took < 15*time.Millisecond {
		t.Fatalf("delay fault slept only %v", took)
	}
}

func TestCountLimit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("wal.fsync", Fault{Fail: true, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Inject("wal.fsync"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v, want ErrInjected", i, err)
		}
	}
	if err := Inject("wal.fsync"); err != nil {
		t.Fatalf("spent point still fires: %v", err)
	}
}

func TestNegativeDelayReadable(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("clock.skew", Fault{Delay: -time.Second})
	if d := Delay("clock.skew"); d != -time.Second {
		t.Fatalf("Delay = %v, want -1s", d)
	}
}

func TestConfigure(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	err := Configure("wal.fsync=delay:5ms,error; engine.search=delay:1ms,count:3; clock.skew=delay:-1s")
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if err := Inject("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("wal.fsync = %v, want ErrInjected", err)
	}
	if d := Delay("clock.skew"); d != -time.Second {
		t.Fatalf("clock.skew delay = %v", d)
	}
	for _, bad := range []string{"nameonly", "p=delay:xyz", "p=count:-1", "p=frobnicate"} {
		if err := Configure(bad); err == nil {
			t.Fatalf("Configure(%q) accepted", bad)
		}
	}
	if err := Configure(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
