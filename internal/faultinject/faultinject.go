// Package faultinject is the chaos-testing switchboard of the serving stack:
// named failpoints compiled into production code paths (an fsync about to
// run, a worker about to serve a search, a deadline about to be computed)
// that are inert until a test or an operator arms them. An armed point can
// inject latency (a slow disk, a stuck worker), an error (a failing fsync),
// or both, with an optional activation count.
//
// The disarmed fast path is one atomic load — callers guard every injection
// site with Armed(), so an unarmed binary pays nothing measurable even on
// per-leaf-block call sites. Points are plain dotted names owned by their
// call sites; the ones wired up in this repository:
//
//	wal.fsync     before each write-ahead-log fsync (group-commit leader)
//	engine.search before a serving worker executes a search
//	clock.skew    added to the daemon's deadline computation (Delay only)
//
// Faults are configured programmatically (Enable/Disable) or from a spec
// string (Configure), which the p2hd -faults flag and the P2HD_FAULTS
// environment variable feed:
//
//	wal.fsync=delay:5ms            every fsync stalls 5ms
//	wal.fsync=error                every fsync fails with ErrInjected
//	engine.search=delay:2ms,count:100   first 100 searches stall 2ms
//	clock.skew=delay:-1s           deadlines computed 1s in the past
//
// Multiple faults are separated by ';'.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error an armed failpoint returns when configured to
// fail. Call sites propagate it like the real failure they stand in for
// (an fsync error, a dead disk), so chaos tests can trace a failure back to
// the injection that caused it.
var ErrInjected = errors.New("faultinject: injected failure")

// Fault describes what one armed point does on each hit.
type Fault struct {
	// Delay is slept before returning (negative delays are meaningful only
	// for clock.skew-style points that read the value instead of sleeping).
	Delay time.Duration
	// Fail makes Inject return ErrInjected after the delay.
	Fail bool
	// Count limits how many hits fire (0: unlimited). Once spent, the point
	// behaves as disarmed.
	Count int64
}

type point struct {
	fault Fault
	hits  atomic.Int64
	spent atomic.Bool
}

var (
	mu     sync.RWMutex
	points = map[string]*point{}
	armed  atomic.Bool
)

// Armed reports whether any failpoint is active. It is the one-atomic-load
// guard call sites use before paying for Inject's map lookup.
func Armed() bool { return armed.Load() }

// Enable arms the named point with f, replacing any existing fault.
func Enable(name string, f Fault) {
	mu.Lock()
	points[name] = &point{fault: f}
	armed.Store(true)
	mu.Unlock()
}

// Disable disarms the named point.
func Disable(name string) {
	mu.Lock()
	delete(points, name)
	armed.Store(len(points) > 0)
	mu.Unlock()
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(false)
	mu.Unlock()
}

// lookup returns the active point, or nil when the name is disarmed or its
// activation count is spent.
func lookup(name string) *point {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil || p.spent.Load() {
		return nil
	}
	if p.fault.Count > 0 && p.hits.Add(1) > p.fault.Count {
		p.spent.Store(true)
		return nil
	}
	if p.fault.Count <= 0 {
		p.hits.Add(1)
	}
	return p
}

// Inject fires the named point: it sleeps the configured delay and returns
// ErrInjected when the fault is set to fail, or nil when the point is
// disarmed. Callers must treat the error exactly like the real failure the
// point shadows.
func Inject(name string) error {
	p := lookup(name)
	if p == nil {
		return nil
	}
	if p.fault.Delay > 0 {
		time.Sleep(p.fault.Delay)
	}
	if p.fault.Fail {
		return ErrInjected
	}
	return nil
}

// Delay returns the named point's configured delay without sleeping — the
// read-only form clock-skew injection uses — or zero when disarmed.
func Delay(name string) time.Duration {
	p := lookup(name)
	if p == nil {
		return 0
	}
	return p.fault.Delay
}

// Hits reports how many times the named point has fired (armed lookups,
// whether or not they failed). Zero for unknown points.
func Hits(name string) int64 {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Configure arms failpoints from a spec string: ';'-separated
// "point=action[,action...]" clauses where an action is "delay:<duration>",
// "error", or "count:<n>". An empty spec is a no-op; a malformed one returns
// an error naming the offending clause.
func Configure(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, actions, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faultinject: bad clause %q (want point=action[,action...])", clause)
		}
		var f Fault
		for _, act := range strings.Split(actions, ",") {
			act = strings.TrimSpace(act)
			switch {
			case act == "error":
				f.Fail = true
			case strings.HasPrefix(act, "delay:"):
				d, err := time.ParseDuration(strings.TrimPrefix(act, "delay:"))
				if err != nil {
					return fmt.Errorf("faultinject: %s: bad delay %q: %v", name, act, err)
				}
				f.Delay = d
			case strings.HasPrefix(act, "count:"):
				n, err := strconv.ParseInt(strings.TrimPrefix(act, "count:"), 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: %s: bad count %q", name, act)
				}
				f.Count = n
			default:
				return fmt.Errorf("faultinject: %s: unknown action %q (want delay:<dur>, error, or count:<n>)", name, act)
			}
		}
		Enable(name, f)
	}
	return nil
}
