package attr

import "math"

// NodeInfo describes one node of a flat-arena metric tree in the only terms
// the summary builder needs: the contiguous position range [Start, End) the
// node covers and its children's arena indices (negative for a leaf). The
// owning tree supplies positions; ids maps a position to the store row it
// holds, so the summaries speak the tree's physical layout while the store
// speaks result-id space.
type NodeInfo struct {
	Start, End  int32
	Left, Right int32
}

// summaryTagBitsMax caps the per-node tag bitmap width. With a vocabulary
// larger than the cap, tag ids hash onto the bitmap modulo its width — a
// one-function Bloom filter whose false positives only cost a descent, never
// a wrong skip.
const summaryTagBitsMax = 1024

// Tri is the three-valued verdict of a node-level predicate check.
type Tri int8

const (
	// TriNo: no point under the node can satisfy the predicate; the whole
	// subtree is skippable.
	TriNo Tri = iota
	// TriMaybe: the summaries cannot decide; descend.
	TriMaybe
	// TriYes: every point under the node satisfies the predicate. Needed so
	// Not inverts soundly; the trees do not currently exploit it for
	// scan-without-checking.
	TriYes
)

func triAnd(a, b Tri) Tri {
	if a < b {
		return a
	}
	return b
}

func triOr(a, b Tri) Tri {
	if a > b {
		return a
	}
	return b
}

func triNot(a Tri) Tri {
	switch a {
	case TriNo:
		return TriYes
	case TriYes:
		return TriNo
	}
	return TriMaybe
}

// fieldSummary aggregates one field column per node: min/max over the
// present values and the present count, enough to answer a range clause with
// No (disjoint), Yes (all present and fully inside), or Maybe.
type fieldSummary struct {
	min, max []float64
	count    []int32
}

// Summaries holds the per-node predicate summaries of one tree: a tag
// bitmap (the union of the subtree's tag ids, hashed modulo the bitmap
// width) and per-field min/max/count, all in flat arrays parallel to the
// node arena. Summaries are derived state — rebuilt on attach, never
// serialized — so the container format carries only the store.
type Summaries struct {
	store *Store
	words int // tag bitmap words per node
	bits  []uint64
	flds  []fieldSummary
	size  []int32 // points per node
}

// BuildSummaries computes the per-node summaries for a flat-arena tree whose
// node positions map to store rows via ids. Children must sit at strictly
// larger arena indices than their parent (the repo's preorder invariant), so
// one backward pass folds leaves first and merges children into parents.
func BuildSummaries(st *Store, ids []int32, nodes []NodeInfo) *Summaries {
	nn := len(nodes)
	words := 0
	if len(st.tags) > 0 {
		bits := len(st.tags)
		if bits > summaryTagBitsMax {
			bits = summaryTagBitsMax
		}
		words = (bits + 63) / 64
	}
	sm := &Summaries{
		store: st,
		words: words,
		bits:  make([]uint64, nn*words),
		flds:  make([]fieldSummary, len(st.fields)),
		size:  make([]int32, nn),
	}
	for fi := range sm.flds {
		sm.flds[fi] = fieldSummary{
			min:   make([]float64, nn),
			max:   make([]float64, nn),
			count: make([]int32, nn),
		}
		for i := 0; i < nn; i++ {
			sm.flds[fi].min[i] = math.Inf(1)
			sm.flds[fi].max[i] = math.Inf(-1)
		}
	}

	for ni := nn - 1; ni >= 0; ni-- {
		n := &nodes[ni]
		sm.size[ni] = n.End - n.Start
		if n.Left < 0 { // leaf: fold rows
			for pos := n.Start; pos < n.End; pos++ {
				row := ids[pos]
				for _, tid := range st.tagIDs[st.tagStart[row]:st.tagStart[row+1]] {
					sm.setTag(ni, tid)
				}
				for fi := range st.fields {
					c := &st.fields[fi]
					if !c.has(row) {
						continue
					}
					fs := &sm.flds[fi]
					v := c.vals[row]
					if v < fs.min[ni] {
						fs.min[ni] = v
					}
					if v > fs.max[ni] {
						fs.max[ni] = v
					}
					fs.count[ni]++
				}
			}
			continue
		}
		// Internal: merge the children (already folded — larger indices).
		for _, ci := range []int32{n.Left, n.Right} {
			if sm.words > 0 {
				dst := sm.bits[ni*sm.words : (ni+1)*sm.words]
				src := sm.bits[int(ci)*sm.words : (int(ci)+1)*sm.words]
				for w := range dst {
					dst[w] |= src[w]
				}
			}
			for fi := range sm.flds {
				fs := &sm.flds[fi]
				if fs.min[ci] < fs.min[ni] {
					fs.min[ni] = fs.min[ci]
				}
				if fs.max[ci] > fs.max[ni] {
					fs.max[ni] = fs.max[ci]
				}
				fs.count[ni] += fs.count[ci]
			}
		}
	}
	return sm
}

func (sm *Summaries) setTag(ni int, tagID int32) {
	bit := uint32(tagID) % uint32(sm.words*64)
	sm.bits[ni*sm.words+int(bit>>6)] |= 1 << (bit & 63)
}

func (sm *Summaries) hasTagBit(ni int32, tagID int32) bool {
	if sm.words == 0 {
		return false
	}
	bit := uint32(tagID) % uint32(sm.words*64)
	return sm.bits[int(ni)*sm.words+int(bit>>6)]&(1<<(bit&63)) != 0
}

// MemBytes estimates the summaries' heap footprint.
func (sm *Summaries) MemBytes() int64 {
	total := int64(len(sm.bits))*8 + int64(len(sm.size))*4
	for i := range sm.flds {
		total += int64(len(sm.flds[i].min))*8 + int64(len(sm.flds[i].max))*8 + int64(len(sm.flds[i].count))*4
	}
	return total
}

// Node evaluates the compiled predicate against node ni's summaries. TriNo
// is a proof that no point in the subtree matches — the pushdown skip; the
// evaluation is conservative everywhere else, so skipping on TriNo keeps
// filtered results exactly equal to a full post-filter scan.
func (sm *Summaries) Node(ni int32, pr *Prog) Tri {
	return sm.node(ni, &pr.root)
}

func (sm *Summaries) node(ni int32, p *prog) Tri {
	switch p.op {
	case opFalse:
		return TriNo
	case opTag:
		// The bitmap is a superset of the subtree's tags (hash collisions
		// only add bits), so a clear bit proves absence; a set bit proves
		// nothing about every point, hence never TriYes.
		if !sm.hasTagBit(ni, p.tagID) {
			return TriNo
		}
		return TriMaybe
	case opAnyTag:
		for _, id := range p.tagIDs {
			if sm.hasTagBit(ni, id) {
				return TriMaybe
			}
		}
		return TriNo
	case opRange:
		fs := &sm.flds[p.field]
		cnt := fs.count[ni]
		if cnt == 0 {
			return TriNo // field absent everywhere: a range clause needs it
		}
		lo, hi := fs.min[ni], fs.max[ni]
		if (p.min != nil && hi < *p.min) || (p.max != nil && lo > *p.max) {
			return TriNo // summary interval disjoint from the range
		}
		if cnt == sm.size[ni] &&
			(p.min == nil || lo >= *p.min) &&
			(p.max == nil || hi <= *p.max) {
			return TriYes // present everywhere and fully inside
		}
		return TriMaybe
	case opAnd:
		out := TriYes
		for i := range p.kids {
			out = triAnd(out, sm.node(ni, &p.kids[i]))
			if out == TriNo {
				return TriNo
			}
		}
		return out
	case opOr:
		out := TriNo
		for i := range p.kids {
			out = triOr(out, sm.node(ni, &p.kids[i]))
			if out == TriYes {
				return TriYes
			}
		}
		return out
	case opNot:
		return triNot(sm.node(ni, &p.kids[0]))
	}
	return TriMaybe
}
