package attr

import (
	"bytes"
	"encoding/json"
	"testing"

	"p2h/internal/binio"
)

// FuzzPredJSON hardens the predicate wire decoder: arbitrary JSON must
// either fail to decode, fail Validate, or yield a predicate whose Canon,
// Matches, and store compilation all run without panicking.
func FuzzPredJSON(f *testing.F) {
	seedPts := testPoints(64, 11)
	st, err := Build(seedPts)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range testPreds() {
		enc, _ := json.Marshal(p)
		f.Add(enc)
	}
	f.Add([]byte(`{"and":[{"tag":"a"},{"not":{"field":"x","min":1}}]}`))
	f.Add([]byte(`{"or":[]}`))
	f.Add([]byte(`{"field":"x","min":1e308,"max":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Pred
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			return
		}
		_ = p.Canon()
		_ = p.Matches(Point{})
		_ = p.Matches(seedPts[0])
		prog := st.Compile(&p)
		for i := 0; i < st.N(); i += 7 {
			_ = prog.Match(int32(i))
		}
	})
}

// FuzzSection hardens the attribute-section decoder: arbitrary bytes must
// never panic, and anything the decoder accepts must round-trip to identical
// bytes and evaluate predicates without crashing.
func FuzzSection(f *testing.F) {
	for _, seed := range []int64{21, 22} {
		st, err := Build(testPoints(32, seed))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		bw := binio.NewWriter(&buf)
		WriteSection(bw, st)
		if err := bw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := binio.NewReader(bytes.NewReader(data))
		st := ReadSection(br)
		if br.Err() != nil || st == nil {
			return
		}
		var out bytes.Buffer
		bw := binio.NewWriter(&out)
		WriteSection(bw, st)
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, out.Bytes()) {
			t.Fatal("accepted section does not re-encode to its own prefix")
		}
		for _, p := range testPreds() {
			prog := st.Compile(p)
			for i := 0; i < st.N(); i++ {
				_ = prog.Match(int32(i))
			}
		}
	})
}

// FuzzPointPayload hardens the WAL point-payload decoder.
func FuzzPointPayload(f *testing.F) {
	for _, p := range testPoints(16, 31) {
		f.Add(AppendPoint(nil, &p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePoint(data)
		if err != nil {
			return
		}
		// Accepted payloads re-encode deterministically, though not
		// necessarily to the input bytes (tag order is caller-chosen but map
		// iteration is not; the decoder's maps re-sort on encode).
		a := AppendPoint(nil, p)
		b := AppendPoint(nil, p)
		if !bytes.Equal(a, b) {
			t.Fatal("re-encoding not deterministic")
		}
	})
}
