package attr

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrPred reports a structurally invalid predicate.
var ErrPred = errors.New("attr: invalid predicate")

// Pred is one node of the declarative predicate AST. Exactly one clause must
// be set per node:
//
//   - Tag: the point carries this tag;
//   - AnyTag: the point carries at least one of these tags;
//   - Field with Min and/or Max: the named numeric field is present and its
//     value lies in the inclusive range [Min, Max] (a nil bound is open);
//     int64 fields compare in the float64 domain;
//   - And / Or: all / at least one of the children match;
//   - Not: the child does not match.
//
// A tag or field name the index has never seen simply never matches (it is
// not an error), so predicates are portable across indexes with different
// schemas — including the empty schema of an index with no attributes, where
// only clauses that match the empty payload (e.g. Not(Tag)) accept points.
//
// The struct doubles as the JSON wire form ("filter" on search requests).
// Pred values are treated as immutable once built; the serving layer caches
// results keyed by Canon, which would go stale if a predicate were mutated
// in place between requests.
type Pred struct {
	Tag    string   `json:"tag,omitempty"`
	AnyTag []string `json:"any_tag,omitempty"`
	Field  string   `json:"field,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
	And    []*Pred  `json:"and,omitempty"`
	Or     []*Pred  `json:"or,omitempty"`
	Not    *Pred    `json:"not,omitempty"`
}

// Structural bounds on decoded predicates: adversarial JSON must not drive
// unbounded recursion or memory.
const (
	maxPredNodes = 4096
	maxPredDepth = 64
)

// Validate checks the structural invariants: exactly one clause per node, a
// range clause carrying at least one bound and a coherent one (Min <= Max),
// non-empty And/Or/AnyTag lists, and the size/depth caps. Any violation
// returns an error wrapping ErrPred.
func (p *Pred) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil node", ErrPred)
	}
	nodes := 0
	return p.validate(0, &nodes)
}

func (p *Pred) validate(depth int, nodes *int) error {
	if p == nil {
		return fmt.Errorf("%w: nil node", ErrPred)
	}
	if depth > maxPredDepth {
		return fmt.Errorf("%w: deeper than %d", ErrPred, maxPredDepth)
	}
	if *nodes++; *nodes > maxPredNodes {
		return fmt.Errorf("%w: more than %d nodes", ErrPred, maxPredNodes)
	}
	clauses := 0
	if p.Tag != "" {
		clauses++
	}
	if len(p.AnyTag) > 0 {
		clauses++
		for _, t := range p.AnyTag {
			if t == "" {
				return fmt.Errorf("%w: empty tag in any_tag", ErrPred)
			}
		}
	}
	if p.Field != "" {
		clauses++
		if p.Min == nil && p.Max == nil {
			return fmt.Errorf("%w: field %q without min or max", ErrPred, p.Field)
		}
		if p.Min != nil && p.Max != nil && *p.Min > *p.Max {
			return fmt.Errorf("%w: field %q min %v > max %v", ErrPred, p.Field, *p.Min, *p.Max)
		}
	} else if p.Min != nil || p.Max != nil {
		return fmt.Errorf("%w: min/max without a field", ErrPred)
	}
	if len(p.And) > 0 {
		clauses++
		for _, c := range p.And {
			if err := c.validate(depth+1, nodes); err != nil {
				return err
			}
		}
	}
	if len(p.Or) > 0 {
		clauses++
		for _, c := range p.Or {
			if err := c.validate(depth+1, nodes); err != nil {
				return err
			}
		}
	}
	if p.Not != nil {
		clauses++
		if err := p.Not.validate(depth+1, nodes); err != nil {
			return err
		}
	}
	if clauses != 1 {
		return fmt.Errorf("%w: node must set exactly one clause, has %d", ErrPred, clauses)
	}
	return nil
}

// Canon returns the predicate's canonical encoding: a deterministic compact
// string equal for equal predicates, used as the serving cache key component
// and for cross-process equality checks. Child order is preserved (And(a,b)
// and And(b,a) are different keys — both are correct, they just cache
// separately).
func (p *Pred) Canon() string {
	var b strings.Builder
	p.canon(&b)
	return b.String()
}

func (p *Pred) canon(b *strings.Builder) {
	switch {
	case p == nil:
		b.WriteString("nil")
	case p.Tag != "":
		fmt.Fprintf(b, "tag(%q)", p.Tag)
	case len(p.AnyTag) > 0:
		b.WriteString("any(")
		for i, t := range p.AnyTag {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%q", t)
		}
		b.WriteByte(')')
	case p.Field != "":
		fmt.Fprintf(b, "range(%q,", p.Field)
		writeBound(b, p.Min)
		b.WriteByte(',')
		writeBound(b, p.Max)
		b.WriteByte(')')
	case len(p.And) > 0:
		p.canonList(b, "and", p.And)
	case len(p.Or) > 0:
		p.canonList(b, "or", p.Or)
	case p.Not != nil:
		b.WriteString("not(")
		p.Not.canon(b)
		b.WriteByte(')')
	default:
		b.WriteString("invalid")
	}
}

func (p *Pred) canonList(b *strings.Builder, op string, list []*Pred) {
	b.WriteString(op)
	b.WriteByte('(')
	for i, c := range list {
		if i > 0 {
			b.WriteByte(',')
		}
		c.canon(b)
	}
	b.WriteByte(')')
}

func writeBound(b *strings.Builder, v *float64) {
	if v == nil {
		b.WriteByte('_')
		return
	}
	b.WriteString(strconv.FormatFloat(*v, 'g', -1, 64))
}

// Equal reports whether two predicates have the same canonical encoding.
// Both nil counts as equal.
func (p *Pred) Equal(o *Pred) bool {
	if p == nil || o == nil {
		return p == nil && o == nil
	}
	return p.Canon() == o.Canon()
}

// Matches evaluates the predicate directly against one payload — the
// row-at-a-time path mutable indexes use, and the constant-folding oracle
// for indexes with no attributes at all (Matches on the zero Point).
func (p *Pred) Matches(pt Point) bool {
	switch {
	case p.Tag != "":
		return hasTag(pt.Tags, p.Tag)
	case len(p.AnyTag) > 0:
		for _, t := range p.AnyTag {
			if hasTag(pt.Tags, t) {
				return true
			}
		}
		return false
	case p.Field != "":
		v, ok := pt.Ints[p.Field]
		if ok {
			return p.inRange(float64(v))
		}
		f, ok := pt.Floats[p.Field]
		if ok {
			return p.inRange(f)
		}
		return false
	case len(p.And) > 0:
		for _, c := range p.And {
			if !c.Matches(pt) {
				return false
			}
		}
		return true
	case len(p.Or) > 0:
		for _, c := range p.Or {
			if c.Matches(pt) {
				return true
			}
		}
		return false
	case p.Not != nil:
		return !p.Not.Matches(pt)
	}
	return false
}

// MatchesEmpty reports whether a point with no attributes at all satisfies
// the predicate. An index that carries no attribute store constant-folds a
// predicate to "keep everything" or "empty result" with this.
func (p *Pred) MatchesEmpty() bool { return p.Matches(Point{}) }

func (p *Pred) inRange(v float64) bool {
	if p.Min != nil && v < *p.Min {
		return false
	}
	if p.Max != nil && v > *p.Max {
		return false
	}
	return true
}

func hasTag(tags []string, want string) bool {
	for _, t := range tags {
		if t == want {
			return true
		}
	}
	return false
}

// Constructors. They build well-formed nodes; Validate still applies to
// anything assembled by hand or decoded from JSON.

// TagIs matches points carrying the tag.
func TagIs(tag string) *Pred { return &Pred{Tag: tag} }

// TagAny matches points carrying at least one of the tags.
func TagAny(tags ...string) *Pred { return &Pred{AnyTag: tags} }

// FieldBetween matches points whose field lies in [min, max] (inclusive).
func FieldBetween(field string, min, max float64) *Pred {
	return &Pred{Field: field, Min: &min, Max: &max}
}

// FieldAtLeast matches points whose field is >= min.
func FieldAtLeast(field string, min float64) *Pred {
	return &Pred{Field: field, Min: &min}
}

// FieldAtMost matches points whose field is <= max.
func FieldAtMost(field string, max float64) *Pred {
	return &Pred{Field: field, Max: &max}
}

// AllOf matches points satisfying every child predicate.
func AllOf(ps ...*Pred) *Pred { return &Pred{And: ps} }

// OneOf matches points satisfying at least one child predicate.
func OneOf(ps ...*Pred) *Pred { return &Pred{Or: ps} }

// NotOf matches points that do not satisfy the child predicate.
func NotOf(p *Pred) *Pred { return &Pred{Not: p} }

// Prog is a predicate compiled against one store: tag names resolved to
// vocabulary ids and field names to column indices, so per-row evaluation
// performs no map lookups. A name the store does not know compiles to a
// clause that never matches. Progs are immutable and safe for concurrent use.
type Prog struct {
	store *Store
	root  prog
}

type progOp int

const (
	opFalse progOp = iota // unknown name: never matches
	opTag
	opAnyTag
	opRange
	opAnd
	opOr
	opNot
)

type prog struct {
	op       progOp
	tagID    int32
	tagIDs   []int32
	field    int // column index
	min, max *float64
	kids     []prog
}

// Compile resolves the predicate against the store. The caller must have
// validated p.
func (st *Store) Compile(p *Pred) *Prog {
	return &Prog{store: st, root: st.compile(p)}
}

func (st *Store) compile(p *Pred) prog {
	switch {
	case p.Tag != "":
		id, ok := st.tagIndex[p.Tag]
		if !ok {
			return prog{op: opFalse}
		}
		return prog{op: opTag, tagID: id}
	case len(p.AnyTag) > 0:
		var ids []int32
		for _, t := range p.AnyTag {
			if id, ok := st.tagIndex[t]; ok {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return prog{op: opFalse}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return prog{op: opAnyTag, tagIDs: ids}
	case p.Field != "":
		ci, ok := st.fieldIdx[p.Field]
		if !ok {
			return prog{op: opFalse}
		}
		return prog{op: opRange, field: ci, min: p.Min, max: p.Max}
	case len(p.And) > 0:
		return prog{op: opAnd, kids: st.compileList(p.And)}
	case len(p.Or) > 0:
		return prog{op: opOr, kids: st.compileList(p.Or)}
	case p.Not != nil:
		return prog{op: opNot, kids: []prog{st.compile(p.Not)}}
	}
	return prog{op: opFalse}
}

func (st *Store) compileList(list []*Pred) []prog {
	kids := make([]prog, len(list))
	for i, c := range list {
		kids[i] = st.compile(c)
	}
	return kids
}

// Match evaluates the compiled predicate against one store row.
func (pr *Prog) Match(row int32) bool { return pr.store.match(&pr.root, row) }

// Store returns the store the program was compiled against.
func (pr *Prog) Store() *Store { return pr.store }

func (st *Store) match(p *prog, row int32) bool {
	switch p.op {
	case opTag:
		return st.rowHasTag(row, p.tagID)
	case opAnyTag:
		for _, id := range p.tagIDs {
			if st.rowHasTag(row, id) {
				return true
			}
		}
		return false
	case opRange:
		c := &st.fields[p.field]
		if !c.has(row) {
			return false
		}
		v := c.vals[row]
		if p.min != nil && v < *p.min {
			return false
		}
		if p.max != nil && v > *p.max {
			return false
		}
		return true
	case opAnd:
		for i := range p.kids {
			if !st.match(&p.kids[i], row) {
				return false
			}
		}
		return true
	case opOr:
		for i := range p.kids {
			if st.match(&p.kids[i], row) {
				return true
			}
		}
		return false
	case opNot:
		return !st.match(&p.kids[0], row)
	}
	return false
}
