// Package attr implements the attribute/predicate subsystem behind filtered
// point-to-hyperplane search: per-point payloads (string tags plus int64 and
// float64 fields), a columnar store over them, a declarative predicate AST
// (Pred) with a canonical encoding and a JSON wire form, and per-node
// summaries (tag bitmaps, field min/max) that let a metric tree skip whole
// subtrees a predicate provably cannot match.
//
// The package is a leaf: it imports only the standard library and
// internal/binio, so every layer — core options, the trees, the shard fanout,
// the serving engine, and the HTTP wire types — can depend on it without
// cycles.
package attr

import (
	"fmt"
	"sort"
)

// Point is one point's attribute payload: a set of string tags plus named
// int64 and float64 fields. The zero value is "no attributes"; a predicate
// evaluated against it sees no tags and no fields. The JSON form is the wire
// shape insert requests carry.
type Point struct {
	Tags   []string           `json:"tags,omitempty"`
	Ints   map[string]int64   `json:"ints,omitempty"`
	Floats map[string]float64 `json:"floats,omitempty"`
}

// Empty reports whether the point carries no attributes at all.
func (p *Point) Empty() bool {
	return p == nil || (len(p.Tags) == 0 && len(p.Ints) == 0 && len(p.Floats) == 0)
}

// Field kinds recorded per column. A field name is typed consistently across
// the whole store: mixing int64 and float64 under one name is a build error.
const (
	FieldInt   = byte(0)
	FieldFloat = byte(1)
)

// fieldCol is one typed field column: a presence bitmap plus a dense value
// array (absent rows hold zero and are never read through the bitmap).
// Values are kept as float64 regardless of the declared kind, so row
// evaluation and node summaries compare in exactly one numeric domain —
// the pushdown soundness argument needs row eval and summary eval to agree
// bit for bit.
type fieldCol struct {
	name    string
	kind    byte
	present []uint64  // presence bitmap, (n+63)/64 words
	vals    []float64 // dense, one per row; int64 fields widened
}

func (c *fieldCol) has(row int32) bool {
	return c.present[uint32(row)>>6]&(1<<(uint32(row)&63)) != 0
}

// Store holds the attributes of n points in columnar form: a sorted tag
// vocabulary with per-row tag-id lists in CSR layout, plus typed field
// columns sorted by name. Row i carries the attributes of the id the owning
// index reports as i in search results (the data row for static kinds, the
// handle for a dynamic index, the shard-local row for a shard tree).
// A Store is immutable after Build; concurrent readers need no locking.
type Store struct {
	n        int
	tags     []string // sorted vocabulary
	tagIndex map[string]int32
	tagStart []int32 // CSR offsets, n+1 entries
	tagIDs   []int32 // sorted within each row's range
	fields   []fieldCol
	fieldIdx map[string]int
}

// Build assembles a columnar store from one payload per point. Points with a
// zero-value payload are fine; the store still covers them (empty tag list,
// all fields absent). A field name used with both integer and float values
// is rejected.
func Build(points []Point) (*Store, error) {
	n := len(points)
	st := &Store{
		n:        n,
		tagIndex: make(map[string]int32),
		fieldIdx: make(map[string]int),
		tagStart: make([]int32, n+1),
	}

	// Pass 1: vocabulary and field schema.
	kinds := make(map[string]byte)
	for i := range points {
		for _, t := range points[i].Tags {
			if _, ok := st.tagIndex[t]; !ok {
				st.tagIndex[t] = 0 // id assigned after sorting
				st.tags = append(st.tags, t)
			}
		}
		for name := range points[i].Ints {
			if k, ok := kinds[name]; ok && k != FieldInt {
				return nil, fmt.Errorf("attr: field %q used as both int and float", name)
			}
			kinds[name] = FieldInt
		}
		for name := range points[i].Floats {
			if k, ok := kinds[name]; ok && k != FieldFloat {
				return nil, fmt.Errorf("attr: field %q used as both int and float", name)
			}
			kinds[name] = FieldFloat
		}
	}
	sort.Strings(st.tags)
	for id, t := range st.tags {
		st.tagIndex[t] = int32(id)
	}
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	words := (n + 63) / 64
	for _, name := range names {
		st.fieldIdx[name] = len(st.fields)
		st.fields = append(st.fields, fieldCol{
			name:    name,
			kind:    kinds[name],
			present: make([]uint64, words),
			vals:    make([]float64, n),
		})
	}

	// Pass 2: fill the CSR tag lists and the field columns.
	var row []int32
	for i := range points {
		row = row[:0]
		for _, t := range points[i].Tags {
			row = append(row, st.tagIndex[t])
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		// Deduplicate: a tag listed twice is one membership.
		for j, id := range row {
			if j == 0 || row[j-1] != id {
				st.tagIDs = append(st.tagIDs, id)
			}
		}
		st.tagStart[i+1] = int32(len(st.tagIDs))
		for name, v := range points[i].Ints {
			c := &st.fields[st.fieldIdx[name]]
			c.present[i>>6] |= 1 << (uint(i) & 63)
			c.vals[i] = float64(v)
		}
		for name, v := range points[i].Floats {
			c := &st.fields[st.fieldIdx[name]]
			c.present[i>>6] |= 1 << (uint(i) & 63)
			c.vals[i] = v
		}
	}
	return st, nil
}

// N returns the number of rows the store covers.
func (st *Store) N() int { return st.n }

// Tags returns the sorted tag vocabulary. Callers must not modify it.
func (st *Store) Tags() []string { return st.tags }

// Fields returns the field schema as (name, kind) pairs in name order.
func (st *Store) Fields() (names []string, kinds []byte) {
	for i := range st.fields {
		names = append(names, st.fields[i].name)
		kinds = append(kinds, st.fields[i].kind)
	}
	return names, kinds
}

// MemBytes estimates the store's heap footprint.
func (st *Store) MemBytes() int64 {
	total := int64(len(st.tagStart)+len(st.tagIDs)) * 4
	for _, t := range st.tags {
		total += int64(len(t)) + 16
	}
	for i := range st.fields {
		total += int64(len(st.fields[i].present))*8 + int64(len(st.fields[i].vals))*8
	}
	return total
}

// rowHasTag reports tag membership by binary search in the row's sorted list.
func (st *Store) rowHasTag(row, tagID int32) bool {
	lo, hi := st.tagStart[row], st.tagStart[row+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch v := st.tagIDs[mid]; {
		case v == tagID:
			return true
		case v < tagID:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// Point reconstructs row i's payload — the inverse of Build, used when a
// loaded container re-attaches attributes to a mutable index that keeps
// per-handle payloads rather than a columnar store.
func (st *Store) Point(i int32) Point {
	var p Point
	for _, id := range st.tagIDs[st.tagStart[i]:st.tagStart[i+1]] {
		p.Tags = append(p.Tags, st.tags[id])
	}
	for ci := range st.fields {
		c := &st.fields[ci]
		if !c.has(i) {
			continue
		}
		if c.kind == FieldInt {
			if p.Ints == nil {
				p.Ints = make(map[string]int64)
			}
			p.Ints[c.name] = int64(c.vals[i])
		} else {
			if p.Floats == nil {
				p.Floats = make(map[string]float64)
			}
			p.Floats[c.name] = c.vals[i]
		}
	}
	return p
}

// Points reconstructs every row's payload in row order.
func (st *Store) Points() []Point {
	out := make([]Point, st.n)
	for i := range out {
		out[i] = st.Point(int32(i))
	}
	return out
}

// Subset builds the store covering exactly rows[i] of st as new row i — the
// per-shard view a sharded index hands each shard tree, so shard-local
// predicate evaluation (and pushdown) agrees with the global store row for
// row. The full vocabulary and field schema are shared with the parent, so
// tag and field ids mean the same thing in every shard's view.
func (st *Store) Subset(rows []int32) *Store {
	sub := &Store{
		n:        len(rows),
		tags:     st.tags,
		tagIndex: st.tagIndex,
		tagStart: make([]int32, len(rows)+1),
		fieldIdx: st.fieldIdx,
	}
	for i, r := range rows {
		sub.tagIDs = append(sub.tagIDs, st.tagIDs[st.tagStart[r]:st.tagStart[r+1]]...)
		sub.tagStart[i+1] = int32(len(sub.tagIDs))
	}
	words := (len(rows) + 63) / 64
	sub.fields = make([]fieldCol, len(st.fields))
	for ci := range st.fields {
		c := &st.fields[ci]
		sc := &sub.fields[ci]
		sc.name, sc.kind = c.name, c.kind
		sc.present = make([]uint64, words)
		sc.vals = make([]float64, len(rows))
		for i, r := range rows {
			if c.has(r) {
				sc.present[i>>6] |= 1 << (uint(i) & 63)
				sc.vals[i] = c.vals[r]
			}
		}
	}
	return sub
}
