package attr

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"p2h/internal/binio"
)

// testPoints builds a deterministic payload set exercising tags, both field
// kinds, missing fields, and empty payloads.
func testPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"red", "green", "blue", "tenant:a", "tenant:b"}
	pts := make([]Point, n)
	for i := range pts {
		if rng.Intn(10) == 0 {
			continue // one in ten points carries nothing
		}
		for _, t := range tags {
			if rng.Intn(3) == 0 {
				pts[i].Tags = append(pts[i].Tags, t)
			}
		}
		if rng.Intn(4) != 0 {
			pts[i].Ints = map[string]int64{"size": int64(rng.Intn(1000))}
		}
		if rng.Intn(4) != 0 {
			pts[i].Floats = map[string]float64{"score": rng.Float64() * 100}
		}
	}
	return pts
}

func testPreds() []*Pred {
	return []*Pred{
		TagIs("red"),
		TagIs("no-such-tag"),
		TagAny("green", "tenant:a"),
		FieldBetween("size", 100, 500),
		FieldAtLeast("score", 50),
		FieldAtMost("size", 10),
		FieldBetween("missing", 0, 1),
		AllOf(TagIs("red"), FieldAtLeast("score", 25)),
		OneOf(TagIs("tenant:a"), TagIs("tenant:b")),
		NotOf(TagIs("red")),
		NotOf(FieldBetween("size", 0, 1000)),
		AllOf(NotOf(TagIs("blue")), OneOf(FieldAtMost("score", 70), TagIs("green"))),
	}
}

// TestCompiledMatchesPoint pins the core equivalence: the compiled
// store-row evaluation and the direct Point evaluation agree on every row
// for every predicate shape.
func TestCompiledMatchesPoint(t *testing.T) {
	pts := testPoints(500, 1)
	st, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testPreds() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Canon(), err)
		}
		prog := st.Compile(p)
		for i := range pts {
			got := prog.Match(int32(i))
			want := p.Matches(pts[i])
			if got != want {
				t.Fatalf("%s row %d: compiled=%v direct=%v (%+v)", p.Canon(), i, got, want, pts[i])
			}
		}
	}
}

// TestSummariesSound checks the tri-state node evaluation against brute
// force on a synthetic arena: TriNo must imply zero matching rows and TriYes
// all rows matching.
func TestSummariesSound(t *testing.T) {
	pts := testPoints(512, 2)
	st, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic balanced arena over a shuffled id permutation, preorder
	// with children at larger indices, leaves of ~16.
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var nodes []NodeInfo
	var split func(start, end int32) int32
	split = func(start, end int32) int32 {
		ni := int32(len(nodes))
		nodes = append(nodes, NodeInfo{Start: start, End: end, Left: -1, Right: -1})
		if end-start > 16 {
			mid := (start + end) / 2
			l := split(start, mid)
			r := split(mid, end)
			nodes[ni].Left, nodes[ni].Right = l, r
		}
		return ni
	}
	split(0, int32(len(ids)))

	sm := BuildSummaries(st, ids, nodes)
	for _, p := range testPreds() {
		prog := st.Compile(p)
		for ni := range nodes {
			verdict := sm.Node(int32(ni), prog)
			matches := 0
			for pos := nodes[ni].Start; pos < nodes[ni].End; pos++ {
				if prog.Match(ids[pos]) {
					matches++
				}
			}
			total := int(nodes[ni].End - nodes[ni].Start)
			switch verdict {
			case TriNo:
				if matches != 0 {
					t.Fatalf("%s node %d: TriNo but %d/%d rows match", p.Canon(), ni, matches, total)
				}
			case TriYes:
				if matches != total {
					t.Fatalf("%s node %d: TriYes but %d/%d rows match", p.Canon(), ni, matches, total)
				}
			}
		}
	}
}

func TestSubsetAgrees(t *testing.T) {
	pts := testPoints(300, 4)
	st, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int32{5, 17, 0, 299, 123, 64, 64}
	sub := st.Subset(rows)
	if sub.N() != len(rows) {
		t.Fatalf("subset n=%d want %d", sub.N(), len(rows))
	}
	for _, p := range testPreds() {
		gp := st.Compile(p)
		sp := sub.Compile(p)
		for i, r := range rows {
			if gp.Match(r) != sp.Match(int32(i)) {
				t.Fatalf("%s: subset row %d disagrees with global row %d", p.Canon(), i, r)
			}
		}
	}
}

func TestSectionRoundTrip(t *testing.T) {
	pts := testPoints(200, 5)
	st, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	WriteSection(bw, st)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	br := binio.NewReader(bytes.NewReader(first))
	got := ReadSection(br)
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	bw2 := binio.NewWriter(&buf2)
	WriteSection(bw2, got)
	if err := bw2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("section round trip is not byte-identical")
	}
	// The restored store evaluates predicates identically.
	for _, p := range testPreds() {
		a, b := st.Compile(p), got.Compile(p)
		for i := 0; i < st.N(); i++ {
			if a.Match(int32(i)) != b.Match(int32(i)) {
				t.Fatalf("%s: restored store disagrees at row %d", p.Canon(), i)
			}
		}
	}
}

func TestSectionRejectsCorrupt(t *testing.T) {
	pts := testPoints(64, 6)
	st, _ := Build(pts)
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	WriteSection(bw, st)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations at every eighth byte and a few flipped bytes must all be
	// rejected or at worst decode to a structurally valid store — never
	// panic.
	for cut := 0; cut < len(raw); cut += 8 {
		br := binio.NewReader(bytes.NewReader(raw[:cut]))
		if ReadSection(br); br.Err() == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 8; i < len(raw); i += 13 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5a
		br := binio.NewReader(bytes.NewReader(mut))
		ReadSection(br) // must not panic; error or clean decode both fine
	}
}

func TestPointRoundTrip(t *testing.T) {
	for _, p := range testPoints(100, 7) {
		enc := AppendPoint(nil, &p)
		enc2 := AppendPoint(nil, &p)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("point encoding is not deterministic")
		}
		dec, err := DecodePoint(enc)
		if err != nil {
			t.Fatal(err)
		}
		for _, pred := range testPreds() {
			if pred.Matches(p) != pred.Matches(*dec) {
				t.Fatalf("%s: decoded point disagrees", pred.Canon())
			}
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodePoint(enc[:cut]); err == nil && cut != len(enc) {
				// Prefixes may parse only when they happen to form a full
				// valid encoding; for this encoder a strict prefix never
				// does because DecodePoint demands exact consumption.
				t.Fatalf("prefix of length %d accepted", cut)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	min, max := 1.0, 0.0
	bad := []*Pred{
		nil,
		{},                                 // no clause
		{Tag: "a", Field: "f", Min: &min},  // two clauses
		{Field: "f"},                       // range without bounds
		{Min: &min},                        // bound without field
		{Field: "f", Min: &min, Max: &max}, // min > max
		{And: []*Pred{nil}},                // nil child
		{AnyTag: []string{""}},             // empty tag
		{Not: &Pred{}},                     // invalid child
		{And: []*Pred{{Tag: "a"}, {Or: nil, And: nil}}}, // empty child node
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad predicate %d accepted", i)
		}
	}
	for _, p := range testPreds() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s rejected: %v", p.Canon(), err)
		}
	}
}

func TestValidateDepthCap(t *testing.T) {
	p := TagIs("x")
	for i := 0; i < maxPredDepth+2; i++ {
		p = NotOf(p)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("over-deep predicate accepted")
	}
}

func TestCanonAndJSON(t *testing.T) {
	for _, p := range testPreds() {
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Pred
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: decoded form invalid: %v", p.Canon(), err)
		}
		if !p.Equal(&back) {
			t.Fatalf("canon changed across JSON: %s vs %s", p.Canon(), back.Canon())
		}
	}
	if TagIs("a").Equal(TagIs("b")) {
		t.Fatal("distinct predicates compare equal")
	}
	var nilPred *Pred
	if !nilPred.Equal(nil) || nilPred.Equal(TagIs("a")) {
		t.Fatal("nil equality broken")
	}
}

func TestBuildRejectsMixedKinds(t *testing.T) {
	_, err := Build([]Point{
		{Ints: map[string]int64{"x": 1}},
		{Floats: map[string]float64{"x": 2}},
	})
	if err == nil {
		t.Fatal("mixed-kind field accepted")
	}
}

func TestStorePointsInverse(t *testing.T) {
	pts := testPoints(150, 8)
	st, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	back := st.Points()
	st2, err := Build(back)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testPreds() {
		a, b := st.Compile(p), st2.Compile(p)
		for i := 0; i < st.N(); i++ {
			if a.Match(int32(i)) != b.Match(int32(i)) {
				t.Fatalf("%s: Points() inverse disagrees at %d", p.Canon(), i)
			}
		}
	}
	// Empty rows survive the inverse as empty.
	for i := range pts {
		if pts[i].Empty() != back[i].Empty() {
			t.Fatalf("row %d emptiness changed", i)
		}
	}
}
