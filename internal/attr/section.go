package attr

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"p2h/internal/binio"
)

// SectionMagic opens the serialized attribute store — the block a v2 index
// container carries between its spec and the kind payload.
var SectionMagic = []byte("P2HAT001")

// Serialization bounds: a corrupt header must fail fast, not allocate.
const (
	maxSectionRows   = 1 << 22
	maxSectionTags   = 1 << 20
	maxSectionFields = 1 << 12
	maxNameLen       = 1 << 12
)

// WriteSection serializes the store with a binio writer: the magic, the row
// count, the sorted tag vocabulary, the CSR tag lists, and each field column
// (name, kind, presence bitmap, dense values).
func WriteSection(bw *binio.Writer, st *Store) {
	bw.Bytes(SectionMagic)
	bw.I32(int32(st.n))
	bw.I32(int32(len(st.tags)))
	for _, t := range st.tags {
		writeString(bw, t)
	}
	bw.I32s(st.tagStart)
	bw.I32s(st.tagIDs)
	bw.I32(int32(len(st.fields)))
	for i := range st.fields {
		c := &st.fields[i]
		writeString(bw, c.name)
		bw.U8(c.kind)
		for _, w := range c.present {
			bw.I64(int64(w))
		}
		bw.F64s(c.vals)
	}
}

// ReadSection restores a store written by WriteSection, validating every
// structural invariant (sorted vocabulary, in-range CSR offsets and tag ids,
// name-sorted typed columns) so corrupt input fails with binio.ErrCorrupt
// instead of producing a store that evaluates predicates wrongly.
func ReadSection(br *binio.Reader) *Store {
	br.Expect(SectionMagic)
	n := int(br.I32())
	ntags := int(br.I32())
	if br.Err() != nil {
		return nil
	}
	if n < 0 || n > maxSectionRows || ntags < 0 || ntags > maxSectionTags {
		br.Fail("attr section header: n=%d tags=%d", n, ntags)
		return nil
	}
	st := &Store{
		n:        n,
		tagIndex: make(map[string]int32, ntags),
		fieldIdx: make(map[string]int),
	}
	for i := 0; i < ntags; i++ {
		t := readString(br)
		if br.Err() != nil {
			return nil
		}
		if i > 0 && t <= st.tags[i-1] {
			br.Fail("attr tag vocabulary not strictly sorted at %d", i)
			return nil
		}
		st.tags = append(st.tags, t)
		st.tagIndex[t] = int32(i)
	}
	st.tagStart = br.I32s(n + 1)
	if br.Err() != nil {
		return nil
	}
	if st.tagStart[0] != 0 {
		br.Fail("attr CSR does not start at 0")
		return nil
	}
	for i := 0; i < n; i++ {
		if st.tagStart[i+1] < st.tagStart[i] {
			br.Fail("attr CSR offsets decrease at row %d", i)
			return nil
		}
	}
	total := int(st.tagStart[n])
	if total > maxSectionRows {
		br.Fail("attr tag list too large: %d", total)
		return nil
	}
	st.tagIDs = br.I32s(total)
	if br.Err() != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		row := st.tagIDs[st.tagStart[i]:st.tagStart[i+1]]
		for j, id := range row {
			if id < 0 || int(id) >= ntags {
				br.Fail("attr tag id %d out of range", id)
				return nil
			}
			if j > 0 && row[j-1] >= id {
				br.Fail("attr row %d tag list not strictly sorted", i)
				return nil
			}
		}
	}
	nf := int(br.I32())
	if br.Err() != nil {
		return nil
	}
	if nf < 0 || nf > maxSectionFields {
		br.Fail("attr field count %d", nf)
		return nil
	}
	words := (n + 63) / 64
	for fi := 0; fi < nf; fi++ {
		name := readString(br)
		kind := br.U8()
		if br.Err() != nil {
			return nil
		}
		if kind != FieldInt && kind != FieldFloat {
			br.Fail("attr field %q kind %d", name, kind)
			return nil
		}
		if fi > 0 && name <= st.fields[fi-1].name {
			br.Fail("attr field names not strictly sorted at %q", name)
			return nil
		}
		present := make([]uint64, words)
		for w := 0; w < words; w++ {
			present[w] = uint64(br.I64())
		}
		vals := br.F64s(n)
		if br.Err() != nil {
			return nil
		}
		if kind == FieldInt {
			for i, v := range vals {
				if present[i>>6]&(1<<(uint(i)&63)) != 0 && v != math.Trunc(v) {
					br.Fail("attr int field %q row %d holds non-integer %v", name, i, v)
					return nil
				}
			}
		}
		st.fieldIdx[name] = len(st.fields)
		st.fields = append(st.fields, fieldCol{name: name, kind: kind, present: present, vals: vals})
	}
	if br.Err() != nil {
		return nil
	}
	return st
}

func writeString(bw *binio.Writer, s string) {
	bw.I32(int32(len(s)))
	bw.Bytes([]byte(s))
}

func readString(br *binio.Reader) string {
	ln := int(br.I32())
	if br.Err() != nil {
		return ""
	}
	if ln < 0 || ln > maxNameLen {
		br.Fail("attr string length %d", ln)
		return ""
	}
	return string(br.Raw(ln))
}

// Point wire encoding — the payload a WAL insert record (and any other
// byte-oriented channel) carries. The encoding is deterministic: tags are
// written in the caller's order but map fields sort by name, so encoding the
// same payload twice yields identical bytes (the crash-equality harness
// compares WAL cuts byte for byte).

// maxPointEncoded bounds a decoded payload length; a torn or corrupt length
// prefix must not drive a huge allocation.
const maxPointEncoded = 1 << 20

// AppendPoint appends p's wire encoding to dst and returns the extended
// slice.
func AppendPoint(dst []byte, p *Point) []byte {
	appendStr := func(s string) {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Tags)))
	for _, t := range p.Tags {
		appendStr(t)
	}
	ints := sortedKeys(p.Ints)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ints)))
	for _, name := range ints {
		appendStr(name)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Ints[name]))
	}
	floats := sortedKeys(p.Floats)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(floats)))
	for _, name := range floats {
		appendStr(name)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Floats[name]))
	}
	return dst
}

// DecodePoint parses a payload written by AppendPoint, consuming exactly the
// whole buffer.
func DecodePoint(b []byte) (*Point, error) {
	p := &Point{}
	u16 := func() (int, error) {
		if len(b) < 2 {
			return 0, fmt.Errorf("attr: truncated point payload")
		}
		v := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		return v, nil
	}
	str := func() (string, error) {
		ln, err := u16()
		if err != nil {
			return "", err
		}
		if len(b) < ln {
			return "", fmt.Errorf("attr: truncated point payload")
		}
		s := string(b[:ln])
		b = b[ln:]
		return s, nil
	}
	u64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("attr: truncated point payload")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	ntags, err := u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < ntags; i++ {
		t, err := str()
		if err != nil {
			return nil, err
		}
		p.Tags = append(p.Tags, t)
	}
	nints, err := u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nints; i++ {
		name, err := str()
		if err != nil {
			return nil, err
		}
		v, err := u64()
		if err != nil {
			return nil, err
		}
		if p.Ints == nil {
			p.Ints = make(map[string]int64)
		}
		p.Ints[name] = int64(v)
	}
	nfloats, err := u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nfloats; i++ {
		name, err := str()
		if err != nil {
			return nil, err
		}
		v, err := u64()
		if err != nil {
			return nil, err
		}
		if p.Floats == nil {
			p.Floats = make(map[string]float64)
		}
		p.Floats[name] = math.Float64frombits(v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("attr: %d trailing bytes after point payload", len(b))
	}
	return p, nil
}

// MaxPointEncoded is the decode-side cap on an encoded point's length.
func MaxPointEncoded() int { return maxPointEncoded }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
