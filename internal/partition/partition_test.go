package partition

import (
	"math/rand"
	"testing"

	"p2h/internal/vec"
)

func TestSeedGrowPartitionsAroundPivots(t *testing.T) {
	// Two well-separated blobs: the split must separate them exactly.
	rng := rand.New(rand.NewSource(1))
	m := vec.NewMatrix(40, 3)
	for i := 0; i < 20; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64() * 0.1)
		}
	}
	for i := 20; i < 40; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 100 + float32(rng.NormFloat64()*0.1)
		}
	}
	ids := make([]int32, m.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	nl := SeedGrow(m, ids, rng)
	if nl != 20 {
		t.Fatalf("expected a 20/20 split of two far blobs, got left size %d", nl)
	}
	// All ids on each side must come from one blob.
	leftBlob := ids[0] < 20
	for _, id := range ids[:nl] {
		if (id < 20) != leftBlob {
			t.Fatalf("left side mixes blobs: %v", ids[:nl])
		}
	}
	for _, id := range ids[nl:] {
		if (id < 20) == leftBlob {
			t.Fatalf("right side mixes blobs: %v", ids[nl:])
		}
	}
}

func TestSeedGrowPreservesIDMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := vec.NewMatrix(101, 5)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	ids := make([]int32, m.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	nl := SeedGrow(m, ids, rng)
	if nl <= 0 || nl >= len(ids) {
		t.Fatalf("split must be proper for generic data, got %d of %d", nl, len(ids))
	}
	seen := make(map[int32]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d after partition", id)
		}
		seen[id] = true
	}
	if len(seen) != m.N {
		t.Fatalf("lost ids: %d != %d", len(seen), m.N)
	}
}

func TestSeedGrowDegenerateAllIdentical(t *testing.T) {
	m := vec.NewMatrix(10, 4)
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 3.25
		}
	}
	ids := make([]int32, m.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	nl := SeedGrow(m, ids, rand.New(rand.NewSource(3)))
	if nl != m.N/2 {
		t.Fatalf("degenerate split should halve: got %d, want %d", nl, m.N/2)
	}
}

func TestSeedGrowTinyInputs(t *testing.T) {
	m := vec.NewMatrix(2, 2)
	m.Row(0)[0] = 1
	m.Row(1)[0] = 2
	ids := []int32{0, 1}
	nl := SeedGrow(m, ids, rand.New(rand.NewSource(5)))
	if nl != 1 {
		t.Fatalf("two distinct points must split 1/1, got %d", nl)
	}
	one := []int32{0}
	if got := SeedGrow(m, one, rand.New(rand.NewSource(5))); got != 1 {
		t.Fatalf("single id returns len(ids): got %d", got)
	}
}
