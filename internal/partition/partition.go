// Package partition implements the seed-grow splitting rule shared by the
// Ball-Tree and BC-Tree constructions (paper Algorithm 2 plus the partition
// step of Algorithm 1 line 8 / Algorithm 4 line 13).
package partition

import (
	"math/rand"

	"p2h/internal/vec"
)

// SeedGrow partitions ids in place around a far pair of pivots: pick a random
// point v, let xl be the point farthest from v and xr the point farthest from
// xl, then send every point to its closer pivot (ties to the left). The left
// part ends up in the prefix of ids; SeedGrow returns its size.
//
// Degenerate inputs (all points identical, so the split would put everything
// on one side) fall back to a balanced halving, which keeps recursive tree
// construction terminating. The paper's algorithm implicitly assumes distinct
// points after dedup; real corpora can still contain near-duplicates.
func SeedGrow(data *vec.Matrix, ids []int32, rng *rand.Rand) int {
	if len(ids) < 2 {
		return len(ids)
	}
	v := data.Row(int(ids[rng.Intn(len(ids))]))
	posL, _ := data.MaxDistFrom(ids, v)
	xl := data.Row(int(ids[posL]))
	posR, _ := data.MaxDistFrom(ids, xl)
	xr := data.Row(int(ids[posR]))

	lo, hi := 0, len(ids)-1
	for lo <= hi {
		id := ids[lo]
		x := data.Row(int(id))
		if vec.SqDist(x, xl) <= vec.SqDist(x, xr) {
			lo++
		} else {
			ids[lo], ids[hi] = ids[hi], ids[lo]
			hi--
		}
	}
	if lo == 0 || lo == len(ids) {
		return len(ids) / 2
	}
	return lo
}
