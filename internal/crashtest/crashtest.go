// Package crashtest is the durability proving ground for the dynamic
// index's write-ahead log. Its tests simulate crashes by truncating a real
// WAL file at randomized byte offsets — the on-disk prefix a process kill
// can leave behind — and assert that recovery restores exactly the
// acknowledged prefix: byte-identical index state, no acknowledged write
// lost, no torn tail mistaken for history.
//
// The package exports the small pieces the tests share (a scripted
// mutation type, a deterministic script generator, and the byte-offset
// ledger that maps kill points to durable-op prefixes) so the daemon-level
// crash test under cmd/p2hd can reuse the same vocabulary.
package crashtest

import (
	"fmt"
	"math/rand"

	"p2h"
)

// Op is one scripted mutation against a dynamic index.
type Op struct {
	// Delete selects the operation; false means insert.
	Delete bool
	// Vec is the insert payload (raw, unlifted width).
	Vec []float32
	// Handle is the delete target, valid and live at the op's position in
	// the script.
	Handle int32
}

// Script generates n mutations for an index currently holding handles
// [0, base) all live, with the given raw dimensionality. Deletes always
// target a handle that is live at that point of the script and inserts are
// assigned sequential handles, so the script replays identically against
// any index in that starting state. delFrac is the probability of a delete
// while at least two live handles remain.
func Script(rng *rand.Rand, dim, base, n int, delFrac float64) []Op {
	live := make([]int32, base)
	for i := range live {
		live[i] = int32(i)
	}
	next := int32(base)
	ops := make([]Op, 0, n)
	for len(ops) < n {
		if len(live) >= 2 && rng.Float64() < delFrac {
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ops = append(ops, Op{Delete: true, Handle: h})
			continue
		}
		v := make([]float32, dim)
		for i := range v {
			v[i] = rng.Float32()*2 - 1
		}
		ops = append(ops, Op{Vec: v, Handle: next})
		live = append(live, next)
		next++
	}
	return ops
}

// Apply runs one op against the index and journals it in the same order
// the serving engine uses: mutate in memory first, then append to the log,
// then wait for the commit group's fsync — so the log never holds a record
// for a mutation that did not happen, and no op is acknowledged before it is
// durable.
func Apply(d *p2h.Dynamic, w *p2h.WAL, op Op) error {
	if op.Delete {
		if !d.Delete(op.Handle) {
			return fmt.Errorf("crashtest: scripted delete of handle %d found it dead", op.Handle)
		}
		if err := w.AppendDelete(op.Handle); err != nil {
			return err
		}
		return w.WaitDurable()
	}
	h := d.Insert(op.Vec)
	if h != op.Handle {
		return fmt.Errorf("crashtest: insert got handle %d, script expected %d", h, op.Handle)
	}
	if err := w.AppendInsert(h, op.Vec); err != nil {
		return err
	}
	return w.WaitDurable()
}

// Ledger maps WAL byte offsets to durable-op prefixes. Offsets[i] is the
// log's size after op i was appended; a crash that preserves `off` bytes of
// the log makes exactly Durable(off) ops recoverable — later records are
// missing or torn, and a torn record was never acknowledged.
type Ledger struct {
	Offsets []int64
}

// Durable reports how many scripted ops are fully contained in the first
// off bytes of the log.
func (l Ledger) Durable(off int64) int {
	k := 0
	for k < len(l.Offsets) && l.Offsets[k] <= off {
		k++
	}
	return k
}
