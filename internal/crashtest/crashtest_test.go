package crashtest

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"p2h"
	"p2h/internal/faultinject"
)

const (
	rawDim   = 5
	baseRows = 40
)

func testData(n, d int, seed int64) *p2h.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := p2h.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func saveBytes(t *testing.T, ix p2h.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p2h.Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildBase writes a populated dynamic container to dir/base.idx and
// returns its path.
func buildBase(t *testing.T, dir string, seed int64) string {
	t.Helper()
	ix, err := p2h.New(testData(baseRows, rawDim, seed), p2h.Spec{
		Kind: p2h.KindDynamic, LeafSize: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "base.idx")
	if err := p2h.SaveFile(path, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

func copyFile(t *testing.T, dst, src string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runScript opens the base container, attaches a WAL next to it, applies
// every op, and returns the per-op reference Save bytes (refBytes[k] is the
// state after ops[:k]), the per-op handle counts, and the byte-offset
// ledger. The WAL is closed before returning so its bytes are final.
func runScript(t *testing.T, base string, ops []Op, mode p2h.WALSyncMode) (refBytes [][]byte, refHandles []int, ledger Ledger) {
	t.Helper()
	ix, err := p2h.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	d := ix.(*p2h.Dynamic)
	w, err := p2h.AttachWAL(d, p2h.WALPath(base), mode)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	refBytes = append(refBytes, saveBytes(t, d))
	refHandles = append(refHandles, d.Handles())
	for _, op := range ops {
		if err := Apply(d, w, op); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(w.Path())
		if err != nil {
			t.Fatal(err)
		}
		ledger.Offsets = append(ledger.Offsets, st.Size())
		refBytes = append(refBytes, saveBytes(t, d))
		refHandles = append(refHandles, d.Handles())
	}
	return refBytes, refHandles, ledger
}

// TestWALCrashPoints is the crash-injection harness: a scripted mutation
// run produces a real WAL, then 50 randomized kill points each truncate a
// copy of that log — the prefix a SIGKILL mid-write can leave — and
// recovery via Open must restore the exact acknowledged prefix: Save bytes
// identical to the reference state after the durable ops, handle counter
// included, with a torn trailing record (never acknowledged) dropped and
// nothing else.
func TestWALCrashPoints(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(41))
	base := buildBase(t, dir, 7)
	ops := Script(rng, rawDim, baseRows, 120, 0.3)
	refBytes, refHandles, ledger := runScript(t, base, ops, p2h.WALSyncNone)

	walBytes, err := os.ReadFile(p2h.WALPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if n := ledger.Durable(int64(len(walBytes))); n != len(ops) {
		t.Fatalf("full log holds %d durable ops, want %d", n, len(ops))
	}

	killDir := filepath.Join(dir, "kill")
	if err := os.MkdirAll(killDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		// Random cut anywhere in the file, including inside the header
		// (a truncation remnant) and mid-record (a torn tail).
		cut := int64(rng.Intn(len(walBytes) + 1))
		k := ledger.Durable(cut)

		path := filepath.Join(killDir, "c.idx")
		copyFile(t, path, base)
		if err := os.WriteFile(p2h.WALPath(path), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := p2h.Open(path)
		if err != nil {
			t.Fatalf("kill point %d (cut %d): recovery failed: %v", i, cut, err)
		}
		d := rec.(*p2h.Dynamic)
		if d.Handles() != refHandles[k] {
			t.Fatalf("kill point %d (cut %d, %d durable ops): recovered handle counter %d, want %d",
				i, cut, k, d.Handles(), refHandles[k])
		}
		if got := saveBytes(t, d); !bytes.Equal(got, refBytes[k]) {
			t.Fatalf("kill point %d (cut %d, %d durable ops): recovered state differs from reference (%d vs %d bytes)",
				i, cut, k, len(got), len(refBytes[k]))
		}

		// Every fifth kill point also proves the log is usable after
		// recovery: attach to a fresh copy (standalone log name, so Open
		// does not replay first), confirm the replay count, and append.
		if i%5 != 0 {
			continue
		}
		path2 := filepath.Join(killDir, "c2.idx")
		wpath2 := filepath.Join(killDir, "standalone.wal")
		copyFile(t, path2, base)
		if err := os.WriteFile(wpath2, walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ix2, err := p2h.Open(path2)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := p2h.AttachWAL(ix2, wpath2, p2h.WALSyncNone)
		if err != nil {
			t.Fatalf("kill point %d (cut %d): attach after crash: %v", i, cut, err)
		}
		if w2.Replayed() != k {
			t.Fatalf("kill point %d (cut %d): attach replayed %d records, want %d", i, cut, w2.Replayed(), k)
		}
		d2 := ix2.(*p2h.Dynamic)
		h := d2.Handles()
		if err := w2.AppendInsert(d2.Insert(make([]float32, rawDim)), make([]float32, rawDim)); err != nil {
			t.Fatalf("kill point %d: append after recovery: %v", i, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if n, err := p2h.CountWALRecords(wpath2); err != nil || n != k+1 {
			t.Fatalf("kill point %d: repaired log holds %d records (err %v), want %d", i, n, err, k+1)
		}
		if d2.Handles() != h+1 {
			t.Fatalf("kill point %d: insert after recovery did not advance handles", i)
		}
	}
}

// TestWALBitFlipsSurfaceAsFormatErrors: corruption inside complete records
// is not a torn tail — recovery must refuse the log with ErrFormat rather
// than replay around damage, because every record in it was acknowledged.
func TestWALBitFlipsSurfaceAsFormatErrors(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(43))
	base := buildBase(t, dir, 9)
	ops := Script(rng, rawDim, baseRows, 60, 0.3)
	runScript(t, base, ops, p2h.WALSyncNone)
	walBytes, err := os.ReadFile(p2h.WALPath(base))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		bit := rng.Intn(len(walBytes) * 8)
		flipped := append([]byte(nil), walBytes...)
		flipped[bit/8] ^= 1 << (bit % 8)

		path := filepath.Join(dir, "flip.idx")
		copyFile(t, path, base)
		if err := os.WriteFile(p2h.WALPath(path), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := p2h.Open(path); !errors.Is(err, p2h.ErrFormat) {
			t.Fatalf("flip %d (bit %d): Open returned %v, want ErrFormat", i, bit, err)
		}
	}
}

// TestWALSyncModesProduceIdenticalBytes: the fsync policy changes when
// bytes reach the disk, never which bytes — the same script journals to
// byte-identical logs under WALSyncAlways and WALSyncNone.
func TestWALSyncModesProduceIdenticalBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ops := Script(rng, rawDim, baseRows, 80, 0.3)
	var logs [][]byte
	for _, mode := range []p2h.WALSyncMode{p2h.WALSyncAlways, p2h.WALSyncNone} {
		dir := t.TempDir()
		base := buildBase(t, dir, 11)
		runScript(t, base, ops, mode)
		b, err := os.ReadFile(p2h.WALPath(base))
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, b)
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatalf("sync modes wrote different logs: %d vs %d bytes", len(logs[0]), len(logs[1]))
	}
}

// resultHandles returns the sorted handle set of a search — the exact
// top-K is tree-shape independent, so two indexes holding the same live
// points must agree on it however differently they were compacted.
func resultHandles(ix interface {
	Search(q []float32, opts p2h.SearchOptions) ([]p2h.Result, p2h.Stats)
}, q []float32, k int) []int {
	res, _ := ix.Search(q, p2h.SearchOptions{K: k})
	hs := make([]int, len(res))
	for i, r := range res {
		hs[i] = int(r.ID)
	}
	sort.Ints(hs)
	return hs
}

// TestServerSearchDuringCompactionRecovers drives a journaling server with
// background compaction under concurrent searches (the -race proof that
// hot swaps are safe), then crash-recovers from its WAL and checks the
// recovered index answers exactly like an always-inline reference that
// applied the same script.
func TestServerSearchDuringCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(53))
	data := testData(300, rawDim, 13)

	ix, err := p2h.New(data, p2h.Spec{
		Kind: p2h.KindDynamic, LeafSize: 16, Seed: 3,
		// Inline rebuilds deferred far out; compaction carries the delta.
		RebuildFraction: 1e6, CompactFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "srv.idx")
	if err := p2h.SaveFile(base, ix); err != nil {
		t.Fatal(err)
	}
	opened, err := p2h.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := p2h.AttachWAL(opened, p2h.WALPath(base), p2h.WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	srv := p2h.NewServer(opened, p2h.ServerOptions{WAL: wal, BackgroundCompaction: true})

	// Reference: same script applied inline (default rebuild policy).
	ref := p2h.NewDynamic(data, p2h.DynamicOptions{LeafSize: 16, Seed: 3})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := make([]float32, rawDim+1)
				for i := range q {
					q[i] = float32(qrng.NormFloat64())
				}
				if res, _ := srv.Search(q, p2h.SearchOptions{K: 5}); len(res) == 0 {
					panic("search returned no results on a populated index")
				}
			}
		}(int64(100 + g))
	}

	ops := Script(rng, rawDim, 300, 800, 0.35)
	for _, op := range ops {
		if op.Delete {
			ok, err := srv.Delete(op.Handle)
			if err != nil || !ok {
				t.Fatalf("server delete %d: ok=%v err=%v", op.Handle, ok, err)
			}
			if !ref.Delete(op.Handle) {
				t.Fatalf("reference delete %d failed", op.Handle)
			}
		} else {
			h, err := srv.Insert(op.Vec)
			if err != nil || h != op.Handle {
				t.Fatalf("server insert got handle %d err %v, want %d", h, err, op.Handle)
			}
			if got := ref.Insert(op.Vec); got != op.Handle {
				t.Fatalf("reference insert got handle %d, want %d", got, op.Handle)
			}
		}
	}
	close(done)
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Compactions; got == 0 {
		t.Fatal("background compactor never ran; the test exercised nothing")
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-recover: the container on disk is still the pre-script state,
	// every scripted op lives only in the WAL.
	rec, err := p2h.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	d := rec.(*p2h.Dynamic)
	if d.N() != ref.N() || d.Handles() != ref.Handles() {
		t.Fatalf("recovered n=%d handles=%d, reference n=%d handles=%d",
			d.N(), d.Handles(), ref.N(), ref.Handles())
	}
	qrng := rand.New(rand.NewSource(99))
	for qi := 0; qi < 25; qi++ {
		q := make([]float32, rawDim+1)
		for i := range q {
			q[i] = float32(qrng.NormFloat64())
		}
		got := resultHandles(d, q, 10)
		want := resultHandles(ref, q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: recovered returned %d results, reference %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: recovered handles %v, reference %v", qi, got, want)
			}
		}
	}
}

// TestWALGroupCommitCrashPoints is the crash harness for the group-commit
// path: concurrent writers share fsyncs under WALSyncAlways (a slow-fsync
// fault guarantees real commit groups form), and the log they produce must
// recover byte-identically at any truncation point — exactly like the
// sequential log, because group commit changes when records become durable,
// never what is written. Mutation+append runs under one lock in script
// order (the serving engine's discipline), so per-op reference states and
// byte offsets stay well-defined even with eight writers in flight.
func TestWALGroupCommitCrashPoints(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(61))
	base := buildBase(t, dir, 17)
	ops := Script(rng, rawDim, baseRows, 120, 0.3)

	t.Cleanup(faultinject.Reset)
	if err := faultinject.Configure("wal.fsync=delay:2ms"); err != nil {
		t.Fatal(err)
	}

	ix, err := p2h.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	d := ix.(*p2h.Dynamic)
	w, err := p2h.AttachWAL(d, p2h.WALPath(base), p2h.WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}

	refBytes := make([][]byte, len(ops)+1)
	refHandles := make([]int, len(ops)+1)
	refBytes[0] = saveBytes(t, d)
	refHandles[0] = d.Handles()
	ledger := Ledger{Offsets: make([]int64, len(ops))}

	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(ops) {
					mu.Unlock()
					return
				}
				i := next
				next++
				op := ops[i]
				if op.Delete {
					if !d.Delete(op.Handle) {
						t.Errorf("op %d: scripted delete of %d found it dead", i, op.Handle)
						mu.Unlock()
						return
					}
					err = w.AppendDelete(op.Handle)
				} else {
					if h := d.Insert(op.Vec); h != op.Handle {
						t.Errorf("op %d: insert got handle %d, want %d", i, h, op.Handle)
						mu.Unlock()
						return
					}
					err = w.AppendInsert(op.Handle, op.Vec)
				}
				if err != nil {
					t.Errorf("op %d: append: %v", i, err)
					mu.Unlock()
					return
				}
				st, serr := os.Stat(w.Path())
				if serr != nil {
					t.Error(serr)
					mu.Unlock()
					return
				}
				ledger.Offsets[i] = st.Size()
				refBytes[i+1] = saveBytes(t, d)
				refHandles[i+1] = d.Handles()
				mu.Unlock()
				// The durability wait runs outside the lock — this is where
				// concurrent waiters pile onto one fsync.
				if err := w.WaitDurable(); err != nil {
					t.Errorf("op %d: WaitDurable: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	syncs := w.Syncs()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	if syncs >= int64(len(ops)) {
		t.Fatalf("no fsync was ever shared: %d syncs for %d always-sync ops", syncs, len(ops))
	}
	t.Logf("group commit: %d ops, %d fsyncs (%.1fx amortization)",
		len(ops), syncs, float64(len(ops))/float64(syncs))

	walBytes, err := os.ReadFile(p2h.WALPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if n := ledger.Durable(int64(len(walBytes))); n != len(ops) {
		t.Fatalf("full log holds %d durable ops, want %d", n, len(ops))
	}
	killDir := filepath.Join(dir, "kill")
	if err := os.MkdirAll(killDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		cut := int64(rng.Intn(len(walBytes) + 1))
		k := ledger.Durable(cut)
		path := filepath.Join(killDir, "g.idx")
		copyFile(t, path, base)
		if err := os.WriteFile(p2h.WALPath(path), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := p2h.Open(path)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		dd := rec.(*p2h.Dynamic)
		if dd.Handles() != refHandles[k] {
			t.Fatalf("cut %d (%d durable ops): handle counter %d, want %d",
				cut, k, dd.Handles(), refHandles[k])
		}
		if got := saveBytes(t, dd); !bytes.Equal(got, refBytes[k]) {
			t.Fatalf("cut %d (%d durable ops): recovered state differs from reference (%d vs %d bytes)",
				cut, k, len(got), len(refBytes[k]))
		}
	}
}
