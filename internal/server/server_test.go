package server

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2h/internal/core"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

// scanIndex adapts linearscan to the engine's Searcher surface: the scanner
// stores lifted vectors, so its raw dimensionality is one less.
type scanIndex struct {
	scan *linearscan.Scanner
}

func (s scanIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	return s.scan.Search(q, opts)
}

func (s scanIndex) Dim() int { return s.scan.Dim() - 1 }

// mutScan is a Mutator over a guarded point set with a rebuilt scanner; it
// exists to exercise the engine's locking, not to be fast.
type mutScan struct {
	rows  *vec.Matrix
	alive []bool
	scan  atomic.Pointer[linearscan.Scanner]
	ids   atomic.Pointer[[]int32]
	dim   int
}

func newMutScan(dim int) *mutScan {
	m := &mutScan{rows: vec.NewMatrix(0, dim+1), dim: dim}
	m.rebuild()
	return m
}

func (m *mutScan) rebuild() {
	ids := make([]int32, 0, m.rows.N)
	for i, ok := range m.alive {
		if ok {
			ids = append(ids, int32(i))
		}
	}
	if len(ids) == 0 {
		m.scan.Store(nil)
		m.ids.Store(&ids)
		return
	}
	m.scan.Store(linearscan.New(m.rows.SubsetRows(ids)))
	m.ids.Store(&ids)
}

func (m *mutScan) Insert(p []float32) int32 {
	lifted := append(append(make([]float32, 0, m.dim+1), p...), 1)
	h := int32(m.rows.N)
	m.rows.Data = append(m.rows.Data, lifted...)
	m.rows.N++
	m.alive = append(m.alive, true)
	m.rebuild()
	return h
}

func (m *mutScan) Delete(handle int32) bool {
	if handle < 0 || int(handle) >= len(m.alive) || !m.alive[handle] {
		return false
	}
	m.alive[handle] = false
	m.rebuild()
	return true
}

func (m *mutScan) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	scan := m.scan.Load()
	if scan == nil {
		return nil, core.Stats{}
	}
	res, st := scan.Search(q, opts)
	ids := *m.ids.Load()
	for i := range res {
		res[i].ID = ids[res[i].ID]
	}
	return res, st
}

func (m *mutScan) Dim() int { return m.dim }

// testData builds n random d-dimensional points and nq unit-normal queries.
func testData(n, d, nq int, seed int64) (*vec.Matrix, *vec.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	data := vec.NewMatrix(n, d+1)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float32(rng.NormFloat64())
		}
		row[d] = 1
	}
	queries := vec.NewMatrix(nq, d+1)
	for i := 0; i < nq; i++ {
		row := queries.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(row[:d])
		row[d] = float32(rng.NormFloat64())
	}
	return data, queries
}

func TestEngineMatchesDirectSearch(t *testing.T) {
	data, queries := testData(500, 8, 20, 1)
	ix := scanIndex{linearscan.New(data)}
	e := New(ix, nil, Config{Workers: 3, MaxBatch: 4, MaxDelay: 50 * time.Microsecond})
	defer e.Close()
	for pass := 0; pass < 2; pass++ { // second pass hits the cache
		for i := 0; i < queries.N; i++ {
			got, _ := e.Search(queries.Row(i), core.SearchOptions{K: 5})
			want, _ := ix.Search(queries.Row(i), core.SearchOptions{K: 5})
			if len(got) != len(want) {
				t.Fatalf("pass %d query %d: %d results, want %d", pass, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("pass %d query %d rank %d: %v != %v", pass, i, j, got[j], want[j])
				}
			}
		}
	}
	st := e.Stats()
	if st.Queries != int64(2*queries.N) {
		t.Fatalf("queries %d, want %d", st.Queries, 2*queries.N)
	}
	if st.CacheHits < int64(queries.N) {
		t.Fatalf("cache hits %d, want >= %d", st.CacheHits, queries.N)
	}
}

func TestEngineCanonicalizesScaledQueries(t *testing.T) {
	data, _ := testData(200, 6, 1, 2)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	// Exactly representable unit normal and power-of-two scale, so both
	// canonical forms are bit-identical and must share one cache slot.
	q := []float32{1, 0, 0, 0, 0, 0, 0.25}
	scaled := make([]float32, len(q))
	for i := range q {
		scaled[i] = 4 * q[i]
	}
	a, _ := e.Search(q, core.SearchOptions{K: 3})
	b, _ := e.Search(scaled, core.SearchOptions{K: 3})
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d: %v vs scaled %v", i, a[i], b[i])
		}
	}
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("scaled duplicate should share a cache slot: hits %d", hits)
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	data, queries := testData(100, 4, 1, 3)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1, CacheEntries: -1})
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Search(queries.Row(0), core.SearchOptions{K: 2})
	}
	st := e.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache counted: %+v", st)
	}
}

func TestEngineFilterBypassesCache(t *testing.T) {
	data, queries := testData(100, 4, 1, 4)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	opts := core.SearchOptions{K: 2, Filter: func(id int32) bool { return id%2 == 0 }}
	for i := 0; i < 2; i++ {
		res, _ := e.Search(queries.Row(0), opts)
		for _, r := range res {
			if r.ID%2 != 0 {
				t.Fatalf("filter ignored: %v", r)
			}
		}
	}
	if st := e.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("filtered query touched the cache: %+v", st)
	}
}

func TestEngineImmutableRejectsMutation(t *testing.T) {
	data, _ := testData(10, 3, 1, 5)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	if _, err := e.Insert([]float32{1, 2, 3}); err != ErrImmutable {
		t.Fatalf("Insert err %v", err)
	}
	if _, err := e.Delete(0); err != ErrImmutable {
		t.Fatalf("Delete err %v", err)
	}
}

func TestEngineMutationInvalidatesCache(t *testing.T) {
	d := 3
	m := newMutScan(d)
	e := New(m, m, Config{Workers: 2, MaxBatch: 2})
	defer e.Close()
	if _, err := e.Insert([]float32{10, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Hyperplane x0 = 0; the only point is 10 away.
	q := []float32{1, 0, 0, 0}
	res, _ := e.Search(q, core.SearchOptions{K: 1})
	if len(res) != 1 || res[0].Dist < 9.9 {
		t.Fatalf("first search %v", res)
	}
	// A closer point must surface immediately, despite the cached answer.
	h, err := e.Insert([]float32{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, _ = e.Search(q, core.SearchOptions{K: 1})
	if len(res) != 1 || res[0].ID != h || res[0].Dist > 1.1 {
		t.Fatalf("after insert %v, want handle %d at distance 1", res, h)
	}
	// Deleting it restores the old answer.
	if ok, err := e.Delete(h); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	res, _ = e.Search(q, core.SearchOptions{K: 1})
	if len(res) != 1 || res[0].Dist < 9.9 {
		t.Fatalf("after delete %v", res)
	}
	st := e.Stats()
	if st.Inserts != 2 || st.Deletes != 1 || st.Epoch != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineConcurrentSearchersAndMutators(t *testing.T) {
	d := 4
	m := newMutScan(d)
	e := New(m, m, Config{Workers: 4, MaxBatch: 4, MaxDelay: 20 * time.Microsecond, CacheEntries: 64})
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		p := make([]float32, d)
		for j := range p {
			p[j] = float32(rng.NormFloat64())
		}
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	_, queries := testData(1, d, 8, 8)

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 40; i++ {
				p := make([]float32, d)
				for j := range p {
					p[j] = float32(rng.NormFloat64())
				}
				h, err := e.Insert(p)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if _, err := e.Delete(h); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				res, _ := e.Search(queries.Row((g+i)%queries.N), core.SearchOptions{K: 3})
				if len(res) == 0 {
					t.Errorf("empty result mid-stream")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// The 32 seed points were never deleted; an exact search still finds 3.
	res, _ := e.Search(queries.Row(0), core.SearchOptions{K: 3})
	if len(res) != 3 {
		t.Fatalf("final search returned %d results", len(res))
	}
}

func TestEngineCloseDrainsInFlight(t *testing.T) {
	data, queries := testData(300, 6, 16, 9)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2, MaxBatch: 8, MaxDelay: time.Millisecond})
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < queries.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _ := e.Search(queries.Row(i), core.SearchOptions{K: 1})
			if len(res) == 1 {
				served.Add(1)
			}
		}(i)
	}
	wg.Wait()
	e.Close()
	e.Close() // idempotent
	if served.Load() != int64(queries.N) {
		t.Fatalf("served %d of %d", served.Load(), queries.N)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Search after Close must panic")
		}
	}()
	e.Search(queries.Row(0), core.SearchOptions{K: 1})
}

func TestEngineSearchPanicReachesCallerNotWorker(t *testing.T) {
	data, queries := testData(100, 4, 2, 12)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2})
	defer e.Close()
	boom := core.SearchOptions{K: 1, Filter: func(id int32) bool { panic("filter boom") }}
	func() {
		defer func() {
			if p := recover(); p != "filter boom" {
				t.Fatalf("recovered %v, want the filter's panic", p)
			}
		}()
		e.Search(queries.Row(0), boom)
	}()
	// The worker pool must have survived: ordinary queries still serve.
	if res, _ := e.Search(queries.Row(1), core.SearchOptions{K: 1}); len(res) != 1 {
		t.Fatalf("engine dead after search panic: %v", res)
	}
}

// panicMut always panics, standing in for a mutator fed garbage (e.g. a
// wrong-dimension point into Dynamic.Insert).
type panicMut struct{}

func (panicMut) Insert(p []float32) int32 { panic("bad point") }
func (panicMut) Delete(h int32) bool      { panic("bad handle") }

func TestEngineMutatorPanicDoesNotWedgeLock(t *testing.T) {
	data, queries := testData(50, 3, 2, 11)
	e := New(scanIndex{linearscan.New(data)}, panicMut{}, Config{Workers: 1})
	defer e.Close()
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("mutator panic swallowed")
			}
		}()
		f()
	}
	mustPanic(func() { e.Insert([]float32{1, 2, 3}) })
	mustPanic(func() { e.Delete(0) })
	// The write lock must have been released: a search can still complete.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if res, _ := e.Search(queries.Row(0), core.SearchOptions{K: 1}); len(res) != 1 {
			t.Errorf("search after mutator panic: %v", res)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("search deadlocked on a wedged mutation lock")
	}
}

func TestEngineDrainBoundedOnStuckWorker(t *testing.T) {
	data, queries := testData(100, 4, 2, 13)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})

	// Wedge the only worker inside a user Filter that blocks until released.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	stuck := core.SearchOptions{K: 1, Filter: func(id int32) bool {
		once.Do(func() { close(entered); <-release })
		return true
	}}
	searchDone := make(chan struct{})
	go func() {
		defer close(searchDone)
		e.Search(queries.Row(0), stuck)
	}()
	<-entered

	// A bounded Drain must come back with the context's error instead of
	// hanging on the stuck worker — the p2hd shutdown guarantee.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain on stuck worker: %v, want DeadlineExceeded", err)
	}

	// Once the worker unblocks, the already-submitted query completes and a
	// second Drain observes the fully stopped engine.
	close(release)
	<-searchDone
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := e.Drain(ctx2); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
}

func TestEngineDrainConcurrentAndIdempotent(t *testing.T) {
	data, queries := testData(100, 4, 4, 14)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2})
	for i := 0; i < queries.N; i++ {
		e.Search(queries.Row(i), core.SearchOptions{K: 1})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Drain(context.Background()); err != nil {
				t.Errorf("concurrent Drain: %v", err)
			}
		}()
	}
	wg.Wait()
	e.Close() // Close after Drain stays a no-op
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after Close: %v", err)
	}
}

func TestEngineExclusiveSerializesMutation(t *testing.T) {
	d := 3
	m := newMutScan(d)
	e := New(m, m, Config{Workers: 1})
	defer e.Close()
	if _, err := e.Insert([]float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	inserted := make(chan struct{})
	e.Exclusive(func() {
		go func() {
			defer close(inserted)
			if _, err := e.Insert([]float32{4, 5, 6}); err != nil {
				t.Error(err)
			}
		}()
		select {
		case <-inserted:
			t.Fatal("Insert completed inside Exclusive")
		case <-time.After(20 * time.Millisecond):
		}
	})
	select {
	case <-inserted:
	case <-time.After(5 * time.Second):
		t.Fatal("Insert never completed after Exclusive returned")
	}

	// On an immutable engine, Exclusive still runs fn (no lock to take).
	data, _ := testData(10, 3, 1, 15)
	imm := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer imm.Close()
	ran := false
	imm.Exclusive(func() { ran = true })
	if !ran {
		t.Fatal("Exclusive skipped fn on an immutable engine")
	}
}

func TestEngineValidatesQueries(t *testing.T) {
	data, _ := testData(10, 3, 1, 10)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	for name, q := range map[string][]float32{
		"short":       {1, 0, 0},
		"long":        {1, 0, 0, 0, 0},
		"zero-normal": {0, 0, 0, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s query must panic", name)
				}
			}()
			e.Search(q, core.SearchOptions{K: 1})
		}()
	}
}
