package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2h/internal/core"
	"p2h/internal/linearscan"
)

// slowIndex wraps an index with a fixed per-search delay that polls the
// cancellation hook, standing in for a long leaf-block traversal.
type slowIndex struct {
	scanIndex
	delay time.Duration
	step  time.Duration
}

func (s slowIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	deadline := time.Now().Add(s.delay)
	for time.Now().Before(deadline) {
		if opts.Canceled() {
			return nil, core.Stats{} // partial: nothing verified yet
		}
		time.Sleep(s.step)
	}
	return s.scanIndex.Search(q, opts)
}

func TestSearchCtxMatchesSearch(t *testing.T) {
	data, queries := testData(300, 8, 10, 1)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2})
	defer e.Close()
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := e.Search(q, core.SearchOptions{K: 3})
		got, _, err := e.SearchCtx(context.Background(), q, core.SearchOptions{K: 3})
		if err != nil {
			t.Fatalf("query %d: SearchCtx error %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d result %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestSearchCtxNilContext(t *testing.T) {
	data, queries := testData(100, 8, 1, 2)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	res, _, err := e.SearchCtx(nil, queries.Row(0), core.SearchOptions{K: 2})
	if err != nil || len(res) != 2 {
		t.Fatalf("nil ctx: res=%d err=%v", len(res), err)
	}
}

func TestSearchCtxShedsUnderOverload(t *testing.T) {
	data, queries := testData(200, 8, 4, 3)
	slow := slowIndex{scanIndex{linearscan.New(data)}, 5 * time.Millisecond, time.Millisecond}
	e := New(slow, nil, Config{
		Workers: 1, MaxBatch: 1, CacheEntries: -1,
		MaxQueue: 2, MaxQueueDelay: time.Hour, // only the static limit binds
	})
	defer e.Close()

	const flood = 32
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := e.SearchCtx(context.Background(), queries.Row(i%queries.N), core.SearchOptions{K: 1})
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, ErrOverloaded):
				var oe *OverloadError
				if !errors.As(err, &oe) {
					t.Errorf("overload error is %T, not *OverloadError", err)
					return
				}
				if oe.RetryAfter <= 0 {
					t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected error %v", err)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("flood of %d against MaxQueue=2 shed nothing (served %d)", flood, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("everything was shed; admitted requests must still be served")
	}
	st := e.Stats()
	if st.Shed != shed.Load() {
		t.Fatalf("Stats.Shed = %d, callers saw %d", st.Shed, shed.Load())
	}
	if st.Backlog != 0 {
		t.Fatalf("Backlog = %d after quiescence, want 0", st.Backlog)
	}
}

func TestSearchCtxQueuedExpiryDropsBeforeDispatch(t *testing.T) {
	data, queries := testData(100, 8, 2, 4)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before submission
	_, _, err := e.SearchCtx(ctx, queries.Row(0), core.SearchOptions{K: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Stats().Expired == 0 {
		t.Fatal("Stats.Expired did not count the dropped request")
	}
	// The engine keeps serving.
	if _, _, err := e.SearchCtx(context.Background(), queries.Row(1), core.SearchOptions{K: 1}); err != nil {
		t.Fatalf("engine wedged after expired request: %v", err)
	}
}

func TestSearchCtxMidSearchDeadline(t *testing.T) {
	data, queries := testData(100, 8, 1, 5)
	slow := slowIndex{scanIndex{linearscan.New(data)}, time.Second, 100 * time.Microsecond}
	e := New(slow, nil, Config{Workers: 1, CacheEntries: 8})
	defer e.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	q := queries.Row(0)
	start := time.Now()
	res, _, err := e.SearchCtx(ctx, q, core.SearchOptions{K: 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("deadline at 10ms but the search ran %v — cancellation not honored", took)
	}
	if len(res) != 0 {
		t.Fatalf("canceled slowIndex returned %d results, want its partial (empty) set", len(res))
	}
	// The truncated answer must not have been cached: a fresh uncancelled
	// search of the same query gets the real results.
	full, _, err := e.SearchCtx(context.Background(), q, core.SearchOptions{K: 3})
	if err != nil || len(full) != 3 {
		t.Fatalf("after cancel: res=%d err=%v, want 3 exact results", len(full), err)
	}
	if e.Stats().CacheHits != 0 {
		t.Fatal("full search hit the cache — the canceled partial was cached")
	}
}

func TestSearchCtxOnDrainedEngine(t *testing.T) {
	data, queries := testData(50, 8, 1, 6)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 1})
	e.Close()
	_, _, err := e.SearchCtx(context.Background(), queries.Row(0), core.SearchOptions{K: 1})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestBudgetCeilingDegradesAndRestores(t *testing.T) {
	data, queries := testData(500, 8, 4, 7)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2, CacheEntries: -1})
	defer e.Close()
	q := queries.Row(0)

	_, st := e.Search(q, core.SearchOptions{K: 3})
	if st.Candidates != 500 {
		t.Fatalf("exact scan verified %d candidates, want 500", st.Candidates)
	}
	e.SetBudgetCeiling(100)
	if e.BudgetCeiling() != 100 {
		t.Fatalf("BudgetCeiling = %d", e.BudgetCeiling())
	}
	_, st, err := e.SearchCtx(context.Background(), q, core.SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates > 100 {
		t.Fatalf("degraded search verified %d candidates, ceiling 100", st.Candidates)
	}
	// A budget under the ceiling passes through untouched.
	_, st, _ = e.SearchCtx(context.Background(), q, core.SearchOptions{K: 3, Budget: 50})
	if st.Candidates > 50 {
		t.Fatalf("explicit budget 50 verified %d candidates", st.Candidates)
	}
	if e.Stats().DegradedQueries == 0 {
		t.Fatal("DegradedQueries did not count the clamped search")
	}
	e.SetBudgetCeiling(0)
	_, st, _ = e.SearchCtx(context.Background(), q, core.SearchOptions{K: 3})
	if st.Candidates != 500 {
		t.Fatalf("after restore: %d candidates, want exact 500", st.Candidates)
	}
	if c := e.Stats().BudgetCeiling; c != 0 {
		t.Fatalf("Stats.BudgetCeiling = %d after restore", c)
	}
}

func TestLatencyQuantileWindows(t *testing.T) {
	var a, b LatencySnapshot
	// 99 fast observations in bucket 0, one slow in the 1s bucket.
	a.Counts[0], a.Total = 10, 10
	b = a
	b.Counts[0] += 89
	b.Counts[12] += 1 // bucket upper bound 1s
	b.Total += 90
	w := b.Sub(a)
	if w.Total != 90 {
		t.Fatalf("window total = %d", w.Total)
	}
	if p50 := w.Quantile(0.5); p50 > latBounds[0] {
		t.Fatalf("p50 = %v, want within first bucket", p50)
	}
	if p999 := w.Quantile(0.999); p999 <= latBounds[11] {
		t.Fatalf("p99.9 = %v, want inside the 1s bucket", p999)
	}
	if (LatencySnapshot{}).Quantile(0.99) != 0 {
		t.Fatal("empty window quantile must be 0")
	}
}

// TestWorkerPanicIsolated pins the bulkhead: a panic escaping the
// per-request recovery (simulated via a panicking canonical path is not
// reachable, so we use the per-request Filter panic plus a full-pool flood)
// must neither lose the panic nor shrink the pool.
func TestWorkerPanicIsolated(t *testing.T) {
	data, queries := testData(100, 8, 4, 8)
	e := New(scanIndex{linearscan.New(data)}, nil, Config{Workers: 2})
	defer e.Close()
	for round := 0; round < 4; round++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("filter panic did not reach the caller")
				}
			}()
			e.Search(queries.Row(0), core.SearchOptions{
				K:      1,
				Filter: func(id int32) bool { panic("boom") },
			})
		}()
	}
	// The pool still serves after repeated panics.
	for i := 0; i < queries.N; i++ {
		if res, _ := e.Search(queries.Row(i), core.SearchOptions{K: 1}); len(res) != 1 {
			t.Fatalf("query %d starved after panics", i)
		}
	}
}
