package server

// Overload resilience: the admission-controlled, deadline-aware submission
// path (SearchCtx) and the two feedback signals it runs on — an EWMA of
// per-query service time for the latency-derived admission limit, and a
// fixed-bucket latency histogram an external SLO controller samples to step
// the degradation ceiling (SetBudgetCeiling).
//
// The blocking Search path is untouched by all of this: in-process callers
// (benchmarks, tests, batch tooling) queue without shedding and without
// deadlines, exactly as before. Only SearchCtx submissions can be rejected.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"p2h/internal/core"
)

// ErrOverloaded is the errors.Is target for admission rejections; the
// concrete error is an *OverloadError carrying the suggested retry delay.
var ErrOverloaded = errors.New("server: overloaded")

// ErrDraining is returned by SearchCtx once Drain or Close has stopped
// intake (where the blocking Search would panic).
var ErrDraining = errors.New("server: engine draining")

// OverloadError reports a shed request: the engine's backlog exceeded what
// it can drain within the configured queueing-delay bound, so the request
// was rejected instead of admitted to a queue it would only time out in.
type OverloadError struct {
	// Backlog is the number of admitted-but-unfinished requests at
	// rejection time.
	Backlog int64
	// Limit is the admission limit the backlog exceeded.
	Limit int64
	// RetryAfter estimates how long until the backlog drains to the limit —
	// the value an HTTP layer forwards as a Retry-After header.
	RetryAfter time.Duration
}

// Error describes the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded: backlog %d over limit %d, retry after %v",
		e.Backlog, e.Limit, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ewmaAlpha weights the service-time moving average; small enough to ride
// out one odd chunk, large enough to track a load shift within tens of
// chunks.
const ewmaAlpha = 0.2

// observeService folds one per-query service-time sample (a worker's chunk
// wall time divided by the chunk size) into the EWMA.
func (e *Engine) observeService(perQuery time.Duration) {
	for {
		old := e.ewmaSvc.Load()
		cur := math.Float64frombits(old)
		next := float64(perQuery)
		if cur != 0 {
			next = ewmaAlpha*next + (1-ewmaAlpha)*cur
		}
		if e.ewmaSvc.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// serviceTime returns the smoothed per-query service time, or zero before
// the first sample.
func (e *Engine) serviceTime() time.Duration {
	return time.Duration(math.Float64frombits(e.ewmaSvc.Load()))
}

// admissionLimit is the backlog bound SearchCtx sheds against: the static
// MaxQueue ceiling, tightened by the latency-derived limit — the number of
// requests the worker pool can drain within MaxQueueDelay at the current
// smoothed service time. Zero means unlimited (shedding disabled).
func (e *Engine) admissionLimit() int64 {
	if e.cfg.MaxQueue < 0 {
		return 0
	}
	limit := int64(e.cfg.MaxQueue)
	if svc := e.serviceTime(); svc > 0 {
		derived := int64(e.cfg.MaxQueueDelay) * int64(e.cfg.Workers) / int64(svc)
		if derived < int64(e.cfg.Workers) {
			// Never shed below one request per worker: the pool must stay
			// busy even when a misbehaving index makes single queries slow.
			derived = int64(e.cfg.Workers)
		}
		if derived < limit {
			limit = derived
		}
	}
	return limit
}

// admit decides whether one more request may enter. It returns nil and
// leaves the backlog incremented on admission; on rejection the backlog is
// untouched and the error carries the retry estimate.
func (e *Engine) admit() error {
	limit := e.admissionLimit()
	for {
		b := e.backlog.Load()
		if limit > 0 && b >= limit {
			e.shed.Add(1)
			svc := e.serviceTime()
			if svc <= 0 {
				svc = time.Millisecond
			}
			retry := time.Duration(b-limit+int64(e.cfg.Workers)) * svc / time.Duration(e.cfg.Workers)
			if retry < time.Millisecond {
				retry = time.Millisecond
			}
			return &OverloadError{Backlog: b, Limit: limit, RetryAfter: retry}
		}
		if e.backlog.CompareAndSwap(b, b+1) {
			return nil
		}
	}
}

// SearchCtx is the deadline-aware, admission-controlled form of Search — the
// submission path a network serving layer uses. It differs from Search in
// three ways:
//
//   - Admission control: when the backlog of admitted-but-unfinished
//     requests exceeds what the pool can drain within MaxQueueDelay, the
//     request is rejected immediately with an *OverloadError
//     (errors.Is(err, ErrOverloaded)) instead of joining a queue it would
//     only expire in. Rejecting the newest arrival keeps the work already
//     queued meaningful.
//
//   - Deadline propagation: a request whose ctx expires while still queued
//     is dropped before dispatch (ctx.Err() is returned, no index work is
//     done); one that expires mid-search abandons the remaining traversal
//     at the next leaf-block boundary (core.SearchOptions.Cancel) and
//     returns ctx.Err() alongside the partial results found so far.
//
//   - Closed engines return ErrDraining instead of panicking.
//
// Malformed queries still panic, exactly like Search — that contract belongs
// to the query, not the transport. A nil or never-canceled ctx makes
// SearchCtx behave like Search plus admission control.
func (e *Engine) SearchCtx(ctx context.Context, q []float32, opts core.SearchOptions) ([]core.Result, core.Stats, error) {
	if e.closed.Load() {
		return nil, core.Stats{}, ErrDraining
	}
	norm, err := core.CheckQuery(q, e.dim-1)
	if err != nil {
		panic("server: " + err.Error())
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			e.expired.Add(1)
			return nil, core.Stats{}, cerr
		}
	}
	if err := e.admit(); err != nil {
		return nil, core.Stats{}, err
	}
	r := &request{
		q: q, norm: norm, opts: e.applyCeiling(opts.Normalized()),
		ctx: ctx, done: make(chan struct{}),
	}
	start := time.Now()
	if !e.submit(r) {
		e.backlog.Add(-1)
		return nil, core.Stats{}, ErrDraining
	}
	<-r.done
	e.backlog.Add(-1)
	e.latency.observe(time.Since(start))
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.res, r.stats, r.err
}

// SetBudgetCeiling caps the candidate budget of every subsequently submitted
// search: queries asking for exact answers (Budget <= 0) or for more than
// the ceiling run with Budget = ceiling instead. Zero (or negative) removes
// the cap. This is the engine's degradation knob — an SLO controller steps
// it down when the latency objective is breached and back up as load
// recedes. Cached results are unaffected in correctness terms: the budget is
// part of the cache key, so degraded and exact answers never alias.
func (e *Engine) SetBudgetCeiling(ceiling int) {
	if ceiling < 0 {
		ceiling = 0
	}
	e.budgetCeiling.Store(int64(ceiling))
}

// BudgetCeiling returns the current degradation cap (zero when serving
// exact).
func (e *Engine) BudgetCeiling() int {
	return int(e.budgetCeiling.Load())
}

// applyCeiling clamps one request's budget to the degradation ceiling. Must
// run at submission time, before the options reach cache-key computation or
// batch grouping, so every downstream consumer sees one consistent budget.
func (e *Engine) applyCeiling(opts core.SearchOptions) core.SearchOptions {
	if c := e.budgetCeiling.Load(); c > 0 && (opts.Budget <= 0 || opts.Budget > int(c)) {
		opts.Budget = int(c)
		e.degradedQueries.Add(1)
	}
	return opts
}

// cancelFor builds the cooperative cancellation hook the tree traversals
// poll between leaf blocks. Nil when the request carries no context — the
// nil check inside core.SearchOptions.Canceled keeps the unexpired path at
// one branch per node visit.
func cancelFor(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// numLatBuckets fixed upper bounds span cache-hit microseconds to
// stuck-second outliers; they mirror the HTTP layer's histogram so the two
// agree about where a percentile falls.
const numLatBuckets = 16

var latBounds = [numLatBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latHist is a fixed-bucket latency histogram safe for concurrent use.
type latHist struct {
	counts [numLatBuckets]atomic.Int64
	total  atomic.Int64
}

func (h *latHist) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latBounds {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1) // observations above the last bound live only in total
}

// LatencySnapshot is a point-in-time copy of the engine's completion-latency
// histogram (queue wait plus service, per submitted request). Subtract two
// snapshots to get a window, then ask the window for a quantile — the loop
// an SLO controller runs.
type LatencySnapshot struct {
	// Counts[i] holds observations at or below bucket i's upper bound (see
	// Bounds); observations beyond the last bound count only toward Total.
	Counts [numLatBuckets]int64
	// Total is every observation, including the implicit +Inf bucket.
	Total int64
}

// LatencyBounds returns the histogram's upper bounds in seconds.
func LatencyBounds() []float64 { return latBounds[:] }

// Latency snapshots the engine's completion-latency histogram.
func (e *Engine) Latency() LatencySnapshot {
	var s LatencySnapshot
	for i := range s.Counts {
		s.Counts[i] = e.latency.counts[i].Load()
	}
	s.Total = e.latency.total.Load()
	return s
}

// Sub returns the windowed histogram of observations between prev and s.
func (s LatencySnapshot) Sub(prev LatencySnapshot) LatencySnapshot {
	var d LatencySnapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	d.Total = s.Total - prev.Total
	return d
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds by linear
// interpolation inside the containing bucket. Observations beyond the last
// bound report the last bound — a floor, which is the conservative direction
// for a breach detector. Zero when the window is empty.
func (s LatencySnapshot) Quantile(q float64) float64 {
	if s.Total <= 0 {
		return 0
	}
	rank := q * float64(s.Total)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latBounds[i-1]
		}
		if float64(cum+c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(latBounds[i]-lo)
		}
		cum += c
	}
	return latBounds[numLatBuckets-1]
}
