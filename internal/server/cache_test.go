package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"testing"

	"p2h/internal/attr"
	"p2h/internal/core"
)

func key(v float32) ([]float32, optsKey, uint64) {
	q := []float32{v, 0, 0.5}
	ok := makeOptsKey(core.SearchOptions{K: 3})
	return q, ok, hashKey(q, ok)
}

func TestLRUGetPutRoundTrip(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(1)
	res := []core.Result{{ID: 7, Dist: 0.25}}
	st := core.Stats{Candidates: 9}
	c.put(h, q, ok, 0, res, st)
	got, gotSt, hit := c.get(h, q, ok, 0)
	if !hit || len(got) != 1 || got[0] != res[0] || gotSt != st {
		t.Fatalf("round trip: hit=%v res=%v stats=%+v", hit, got, gotSt)
	}
	// The copy returned must be private: corrupting it leaves the cache intact.
	got[0].ID = 99
	again, _, _ := c.get(h, q, ok, 0)
	if again[0].ID != 7 {
		t.Fatalf("cache entry aliased by caller: %v", again)
	}
}

func TestLRUEpochInvalidation(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(2)
	c.put(h, q, ok, 5, []core.Result{{ID: 1}}, core.Stats{})
	if _, _, hit := c.get(h, q, ok, 6); hit {
		t.Fatal("stale epoch served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry kept: len %d", c.len())
	}
}

func TestLRUOptionsDistinguished(t *testing.T) {
	c := newLRU(4)
	q := []float32{1, 0, 0.5}
	k3 := makeOptsKey(core.SearchOptions{K: 3})
	k5 := makeOptsKey(core.SearchOptions{K: 5})
	c.put(hashKey(q, k3), q, k3, 0, []core.Result{{ID: 1}}, core.Stats{})
	if _, _, hit := c.get(hashKey(q, k5), q, k5, 0); hit {
		t.Fatal("different K served the same entry")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := newLRU(2)
	qa, oa, ha := key(10)
	qb, ob, hb := key(11)
	qc, oc, hc := key(12)
	c.put(ha, qa, oa, 0, []core.Result{{ID: 1}}, core.Stats{})
	c.put(hb, qb, ob, 0, []core.Result{{ID: 2}}, core.Stats{})
	c.get(ha, qa, oa, 0) // touch a, making b the eviction victim
	c.put(hc, qc, oc, 0, []core.Result{{ID: 3}}, core.Stats{})
	if _, _, hit := c.get(ha, qa, oa, 0); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, _, hit := c.get(hb, qb, ob, 0); hit {
		t.Fatal("least recent entry kept")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
}

func TestLRUReplaceSameHash(t *testing.T) {
	c := newLRU(2)
	q, ok, h := key(3)
	c.put(h, q, ok, 0, []core.Result{{ID: 1}}, core.Stats{})
	c.put(h, q, ok, 0, []core.Result{{ID: 2}}, core.Stats{})
	res, _, hit := c.get(h, q, ok, 0)
	if !hit || res[0].ID != 2 || c.len() != 1 {
		t.Fatalf("replace: hit=%v res=%v len=%d", hit, res, c.len())
	}
}

func TestLRUPutKeepsNewerEpoch(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(4)
	c.put(h, q, ok, 2, []core.Result{{ID: 2}}, core.Stats{})
	c.put(h, q, ok, 1, []core.Result{{ID: 1}}, core.Stats{}) // slow straggler
	res, _, hit := c.get(h, q, ok, 2)
	if !hit || res[0].ID != 2 {
		t.Fatalf("stale put clobbered fresh entry: hit=%v res=%v", hit, res)
	}
}

func TestOptsKeyCanonicalizesUnlimitedBudget(t *testing.T) {
	zero := makeOptsKey(core.SearchOptions{K: 3})
	neg := makeOptsKey(core.SearchOptions{K: 3, Budget: -7})
	if zero != neg {
		t.Fatalf("Budget 0 and -7 both mean unlimited but key differently: %+v vs %+v", zero, neg)
	}
	if lim := makeOptsKey(core.SearchOptions{K: 3, Budget: 10}); lim == zero {
		t.Fatal("limited budget keyed as unlimited")
	}
}

func TestHashKeySensitivity(t *testing.T) {
	q, ok, h := key(1)
	q2 := []float32{1, 0, 0.5000001}
	if hashKey(q2, ok) == h {
		t.Fatal("query perturbation not reflected in hash")
	}
	ok2 := ok
	ok2.budget = 100
	if hashKey(q, ok2) == h {
		t.Fatal("budget not reflected in hash")
	}
	ok3 := ok
	ok3.noCone = true
	if hashKey(q, ok3) == h {
		t.Fatal("ablation flag not reflected in hash")
	}
}

func TestOptsKeyPredCanonical(t *testing.T) {
	a := makeOptsKey(core.SearchOptions{K: 3, Pred: &attr.Pred{Tag: "hot"}})
	b := makeOptsKey(core.SearchOptions{K: 3, Pred: &attr.Pred{Tag: "hot"}})
	if a != b {
		t.Fatalf("equal predicates behind distinct pointers keyed differently: %+v vs %+v", a, b)
	}
	if c := makeOptsKey(core.SearchOptions{K: 3, Pred: &attr.Pred{Tag: "cold"}}); a == c {
		t.Fatal("different predicates share a key")
	}
	plain := makeOptsKey(core.SearchOptions{K: 3})
	if a == plain {
		t.Fatal("filtered and unfiltered searches share a key")
	}
	q := []float32{1, 0, 0.5}
	if hashKey(q, a) == hashKey(q, plain) {
		t.Fatal("predicate not reflected in hash")
	}
}

// TestCachePredicateHit is the regression for predicate cacheability: a
// repeated filtered query must be served from the cache (keyed by the
// predicate's canonical encoding, not its pointer), while queries with a
// different predicate — or none — must not.
func TestCachePredicateHit(t *testing.T) {
	v := &versionIndex{val: 1}
	e := New(v, nil, Config{Workers: 1, CacheEntries: 16})
	defer e.Close()

	q := []float32{1, 0, 0}
	hot := func() core.SearchOptions {
		// A fresh Pred value every call: a hit proves canonical keying.
		return core.SearchOptions{K: 1, Pred: &attr.Pred{Tag: "hot"}}
	}
	first, _ := e.Search(q, hot())
	again, _ := e.Search(q, hot())
	if st := e.Stats(); st.CacheHits != 1 {
		t.Fatalf("repeated predicate query missed the cache: hits=%d", st.CacheHits)
	}
	if len(first) != 1 || len(again) != 1 || first[0] != again[0] {
		t.Fatalf("cached filtered answer differs: %v vs %v", first, again)
	}
	e.Search(q, core.SearchOptions{K: 1, Pred: &attr.Pred{Tag: "cold"}})
	if st := e.Stats(); st.CacheHits != 1 {
		t.Fatalf("different predicate served a cached entry: hits=%d", st.CacheHits)
	}
	e.Search(q, core.SearchOptions{K: 1})
	if st := e.Stats(); st.CacheHits != 1 {
		t.Fatalf("unfiltered query served a filtered entry: hits=%d", st.CacheHits)
	}
}

// versionIndex is a one-point index whose answer encodes the state of the
// last applied mutation: Insert(p) sets the value to p[0], a live Delete
// bumps it by 0.5. The engine's RWMutex is the only synchronization — that
// is exactly the contract under test.
type versionIndex struct {
	val     float64
	handles int32
}

func (v *versionIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	return []core.Result{{ID: 0, Dist: v.val}}, core.Stats{Candidates: 1}
}

func (v *versionIndex) Dim() int { return 2 }

func (v *versionIndex) Insert(p []float32) int32 {
	v.val = float64(p[0])
	v.handles++
	return v.handles
}

func (v *versionIndex) Delete(h int32) bool {
	v.val += 0.5
	return true
}

// TestCacheEpochNoStaleHitsUnderConcurrentMutation races searchers against a
// mutator through one engine (run it with -race): every answer the cache
// serves must reflect at least every mutation that completed before the
// search was submitted. The mutated state is strictly monotonic, so a stale
// post-mutation cache hit shows up as an answer below the high-water mark
// the searcher read before submitting.
func TestCacheEpochNoStaleHitsUnderConcurrentMutation(t *testing.T) {
	v := &versionIndex{}
	e := New(v, v, Config{Workers: 4, MaxBatch: 4, MaxDelay: 20 * time.Microsecond, CacheEntries: 128})
	defer e.Close()

	q := []float32{1, 0, 0}     // one fixed query, so the cache is hammered
	var highWater atomic.Uint64 // float64 bits of the last applied state

	seed := func(val float64) {
		if _, err := e.Insert([]float32{float32(val), 0}); err != nil {
			t.Fatal(err)
		}
		highWater.Store(math.Float64bits(val))
	}
	seed(1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the mutator: inserts raise the value, deletes nudge it up
		defer wg.Done()
		for i := 2; i <= 200; i++ {
			val := float64(i)
			if _, err := e.Insert([]float32{float32(i), 0}); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if _, err := e.Delete(0); err != nil {
					t.Error(err)
					return
				}
				val += 0.5
			}
			// Publish only after the mutation call returned: from here on,
			// every newly submitted search must observe at least this state.
			highWater.Store(math.Float64bits(val))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				floor := math.Float64frombits(highWater.Load())
				res, _ := e.Search(q, core.SearchOptions{K: 1})
				if len(res) != 1 {
					t.Errorf("no result")
					return
				}
				if res[0].Dist < floor {
					t.Errorf("stale post-mutation answer: got state %v, mutation %v had completed",
						res[0].Dist, floor)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	if st.CacheHits == 0 {
		t.Fatal("the cache was never hit; the test exercised nothing")
	}
	if st.Epoch == 0 || st.Inserts != 200 || st.Deletes != 66 {
		t.Fatalf("unexpected mutation counts: %+v", st)
	}
}
