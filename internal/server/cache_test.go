package server

import (
	"testing"

	"p2h/internal/core"
)

func key(v float32) ([]float32, optsKey, uint64) {
	q := []float32{v, 0, 0.5}
	ok := makeOptsKey(core.SearchOptions{K: 3})
	return q, ok, hashKey(q, ok)
}

func TestLRUGetPutRoundTrip(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(1)
	res := []core.Result{{ID: 7, Dist: 0.25}}
	st := core.Stats{Candidates: 9}
	c.put(h, q, ok, 0, res, st)
	got, gotSt, hit := c.get(h, q, ok, 0)
	if !hit || len(got) != 1 || got[0] != res[0] || gotSt != st {
		t.Fatalf("round trip: hit=%v res=%v stats=%+v", hit, got, gotSt)
	}
	// The copy returned must be private: corrupting it leaves the cache intact.
	got[0].ID = 99
	again, _, _ := c.get(h, q, ok, 0)
	if again[0].ID != 7 {
		t.Fatalf("cache entry aliased by caller: %v", again)
	}
}

func TestLRUEpochInvalidation(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(2)
	c.put(h, q, ok, 5, []core.Result{{ID: 1}}, core.Stats{})
	if _, _, hit := c.get(h, q, ok, 6); hit {
		t.Fatal("stale epoch served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry kept: len %d", c.len())
	}
}

func TestLRUOptionsDistinguished(t *testing.T) {
	c := newLRU(4)
	q := []float32{1, 0, 0.5}
	k3 := makeOptsKey(core.SearchOptions{K: 3})
	k5 := makeOptsKey(core.SearchOptions{K: 5})
	c.put(hashKey(q, k3), q, k3, 0, []core.Result{{ID: 1}}, core.Stats{})
	if _, _, hit := c.get(hashKey(q, k5), q, k5, 0); hit {
		t.Fatal("different K served the same entry")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := newLRU(2)
	qa, oa, ha := key(10)
	qb, ob, hb := key(11)
	qc, oc, hc := key(12)
	c.put(ha, qa, oa, 0, []core.Result{{ID: 1}}, core.Stats{})
	c.put(hb, qb, ob, 0, []core.Result{{ID: 2}}, core.Stats{})
	c.get(ha, qa, oa, 0) // touch a, making b the eviction victim
	c.put(hc, qc, oc, 0, []core.Result{{ID: 3}}, core.Stats{})
	if _, _, hit := c.get(ha, qa, oa, 0); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, _, hit := c.get(hb, qb, ob, 0); hit {
		t.Fatal("least recent entry kept")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
}

func TestLRUReplaceSameHash(t *testing.T) {
	c := newLRU(2)
	q, ok, h := key(3)
	c.put(h, q, ok, 0, []core.Result{{ID: 1}}, core.Stats{})
	c.put(h, q, ok, 0, []core.Result{{ID: 2}}, core.Stats{})
	res, _, hit := c.get(h, q, ok, 0)
	if !hit || res[0].ID != 2 || c.len() != 1 {
		t.Fatalf("replace: hit=%v res=%v len=%d", hit, res, c.len())
	}
}

func TestLRUPutKeepsNewerEpoch(t *testing.T) {
	c := newLRU(4)
	q, ok, h := key(4)
	c.put(h, q, ok, 2, []core.Result{{ID: 2}}, core.Stats{})
	c.put(h, q, ok, 1, []core.Result{{ID: 1}}, core.Stats{}) // slow straggler
	res, _, hit := c.get(h, q, ok, 2)
	if !hit || res[0].ID != 2 {
		t.Fatalf("stale put clobbered fresh entry: hit=%v res=%v", hit, res)
	}
}

func TestOptsKeyCanonicalizesUnlimitedBudget(t *testing.T) {
	zero := makeOptsKey(core.SearchOptions{K: 3})
	neg := makeOptsKey(core.SearchOptions{K: 3, Budget: -7})
	if zero != neg {
		t.Fatalf("Budget 0 and -7 both mean unlimited but key differently: %+v vs %+v", zero, neg)
	}
	if lim := makeOptsKey(core.SearchOptions{K: 3, Budget: 10}); lim == zero {
		t.Fatal("limited budget keyed as unlimited")
	}
}

func TestHashKeySensitivity(t *testing.T) {
	q, ok, h := key(1)
	q2 := []float32{1, 0, 0.5000001}
	if hashKey(q2, ok) == h {
		t.Fatal("query perturbation not reflected in hash")
	}
	ok2 := ok
	ok2.budget = 100
	if hashKey(q, ok2) == h {
		t.Fatal("budget not reflected in hash")
	}
	ok3 := ok
	ok3.noCone = true
	if hashKey(q, ok3) == h {
		t.Fatal("ablation flag not reflected in hash")
	}
}
