// Package server turns a single-query P2HNNS index into a concurrent
// query-serving engine: callers from any number of goroutines submit queries
// that are grouped into micro-batches, dispatched over a bounded worker
// pool, answered through a bounded result cache, and — when the underlying
// index is mutable — kept snapshot-consistent against concurrent inserts and
// deletes.
//
// The engine adds three mechanisms on top of a plain Searcher:
//
//   - Micro-batching. A single dispatcher goroutine drains the request
//     channel into rounds, splits each round into per-worker chunks of at
//     most MaxBatch queries, and hands whole chunks to workers. Under load
//     this amortizes channel handoffs and scheduler wakeups over the chunk,
//     keeps duplicate queries flowing through the shared cache, and lets
//     each worker reuse one normalization scratch buffer across every query
//     it ever serves instead of allocating per query. The dispatcher only
//     holds a round open (for at most MaxDelay) while every worker is
//     already busy; a query that an idle worker could serve is dispatched
//     immediately with no added latency.
//
//   - Result caching. A query is canonicalized to its unit-normal form, so
//     scaled duplicates of the same hyperplane share one cache slot. The
//     cache key is the canonical query plus the semantically relevant
//     SearchOptions fields; entries live in a bounded LRU and are stamped
//     with the mutation epoch at which they were computed, so any insert or
//     delete invalidates every older entry without an eager sweep. Queries
//     with a Filter or Profile attached bypass the cache (a filter is an
//     arbitrary function; a profile wants fresh timings).
//
//   - Snapshot-consistent mutation. When the index exposes Insert/Delete,
//     searches run under a read lock and mutations under the write lock of
//     one RWMutex, and every mutation bumps an epoch counter. A search
//     therefore always observes a fully applied state — never a
//     half-rebuilt tree — and cached results can never leak across a
//     mutation. Immutable indexes skip the lock entirely: every index in
//     this repository is safe for concurrent readers.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p2h/internal/attr"
	"p2h/internal/core"
	"p2h/internal/faultinject"
	"p2h/internal/vec"
)

// Searcher is the minimal read surface the engine serves. p2h.Index
// satisfies it.
type Searcher interface {
	// Search answers one top-k hyperplane query; q has length Dim()+1 and
	// the engine guarantees a unit normal.
	Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats)
	// Dim is the raw point dimensionality; queries carry one extra offset
	// coordinate.
	Dim() int
}

// BatchSearcher is the optional native batch surface of an index
// (p2h.BatchIndex). When the served index exposes it, a worker hands each
// micro-batch chunk to one SearchBatch call instead of looping per query, so
// the index's shared batched traversal — one arena walk and one leaf-block
// pass for the whole chunk — replaces per-query work.
type BatchSearcher interface {
	SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats)
}

// Mutator is the optional write surface of a mutable index (p2h.Dynamic).
type Mutator interface {
	Insert(p []float32) int32
	Delete(handle int32) bool
}

// AttrMutator is the optional attributed write surface of a mutable index:
// an insert that also binds a per-point attribute payload (p2h.Dynamic
// exposes it). Engines probe for it with a type assertion on the Mutator.
type AttrMutator interface {
	InsertWithAttrs(p []float32, at attr.Point) int32
}

// Journal is a durability sink for applied mutations. The engine appends
// every applied Insert/Delete — under the same lock that serialized the
// mutation, so the log order is the apply order — and reports the append
// error to the mutating caller instead of acknowledging: an acknowledged
// mutation is always in the journal. p2h's write-ahead log implements it.
type Journal interface {
	// AppendInsert logs an applied insert: the handle the index assigned
	// and the raw point as submitted.
	AppendInsert(handle int32, p []float32) error
	// AppendDelete logs an applied delete of a previously live handle.
	AppendDelete(handle int32) error
}

// AttrJournal is the optional attributed append surface of a Journal: an
// insert record that carries the point's attribute payload, so a replay
// restores both. A Journal without it rejects attributed inserts rather
// than silently logging them payload-less.
type AttrJournal interface {
	AppendInsertAttrs(handle int32, p []float32, at attr.Point) error
}

// Compactor is the optional background-compaction surface of a mutable
// index (p2h.Dynamic). When Config.BackgroundCompaction is set and the
// Mutator exposes it, mutations stop folding the index's delta inline;
// instead the engine watches CompactionNeeded after every mutation and runs
// capture/build/install cycles on its own goroutine, holding the mutation
// lock only for the capture and install steps — searches proceed against
// the old tree for the whole build.
type Compactor interface {
	// SetBackgroundCompaction hands delta folding to the engine (true) or
	// back to inline rebuilds (false).
	SetBackgroundCompaction(on bool)
	// CompactionNeeded reports whether the delta has outgrown the index's
	// compaction threshold. Called under the mutation lock.
	CompactionNeeded() bool
	// BeginCompaction captures the rebuild under the mutation lock and
	// returns a build closure to run unlocked plus an install closure to
	// run under the lock again; both nil when there is nothing to fold.
	BeginCompaction() (build, install func())
}

// ErrImmutable is returned by Insert/Delete when the wrapped index has no
// mutation surface.
var ErrImmutable = errors.New("server: underlying index does not support mutation")

// Config parameterizes an Engine; zero values select the documented
// defaults.
type Config struct {
	// Workers bounds the goroutines executing searches (zero: GOMAXPROCS).
	Workers int
	// MaxBatch is the largest micro-batch handed to one worker (zero: 16).
	MaxBatch int
	// MaxDelay is how long the dispatcher holds an under-filled round open
	// waiting for more queries (zero: 100µs). The window only engages
	// while every worker is busy — waiting then costs nothing and buys
	// fuller batches; a query that an idle worker could serve is always
	// dispatched immediately.
	MaxDelay time.Duration
	// CacheEntries bounds the result cache (zero: 1024; negative: cache
	// disabled).
	CacheEntries int
	// MaxQueue is the static ceiling on requests admitted through SearchCtx
	// but not yet finished — queued plus executing (zero: 4*Workers*MaxBatch;
	// negative: admission control disabled). The blocking Search path ignores
	// it.
	MaxQueue int
	// MaxQueueDelay bounds the queueing delay admission control will accept
	// (zero: 50ms): when the backlog's expected drain time at the smoothed
	// service rate exceeds it, SearchCtx sheds new arrivals with an
	// *OverloadError rather than admit requests that would only expire in
	// the queue.
	MaxQueueDelay time.Duration
	// Journal, when non-nil, receives every applied mutation before it is
	// acknowledged; see Journal.
	Journal Journal
	// BackgroundCompaction moves delta folding off the mutation path when
	// the index exposes the Compactor surface; ignored otherwise.
	BackgroundCompaction bool
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Microsecond
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Workers * c.MaxBatch
	}
	if c.MaxQueueDelay <= 0 {
		c.MaxQueueDelay = 50 * time.Millisecond
	}
	return c
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Queries     int64  // searches served
	Batches     int64  // micro-batches dispatched
	CacheHits   int64  // searches answered from the cache
	CacheMisses int64  // cacheable searches that ran the index
	Inserts     int64  // successful Insert calls
	Deletes     int64  // Delete calls that removed a live handle
	Epoch       uint64 // mutation epoch (0 until the first mutation)
	Compactions int64  // background compaction cycles installed
	// PendingDelta is the mutable index's un-folded delta (insert buffer +
	// tombstones) at snapshot time — what searches pay for linearly until
	// the next rebuild or compaction. Zero for immutable indexes.
	PendingDelta int

	// Overload counters (see SearchCtx and SetBudgetCeiling).

	Shed            int64 // SearchCtx submissions rejected by admission control
	Expired         int64 // requests whose deadline fired before index work ran
	Panics          int64 // worker-pool panics isolated (chunk failed, pool alive)
	DegradedQueries int64 // searches whose budget the degradation ceiling clamped
	Backlog         int64 // admitted-but-unfinished requests right now
	BudgetCeiling   int   // current degradation cap (zero: serving exact)

	// Predicate-pushdown totals, accumulated over every search the index
	// actually ran (cache hits replay an answer without re-pruning): whole
	// subtrees the per-node attribute summaries proved could not match, and
	// the points under them.
	FilterSkippedNodes  int64
	FilterSkippedPoints int64
}

// request is one in-flight search; done is closed exactly once (guarded by
// state) after res/stats, err, or panicVal are set.
type request struct {
	q        []float32 // caller's query, read-only
	norm     float64   // ||normal||, computed once at submission
	opts     core.SearchOptions
	ctx      context.Context // nil for uncancellable (Search) submissions
	canon    []float32       // canonical unit-normal form, set by the serving worker
	hash     uint64          // cache hash of (canon, opts), set with canon
	dupOf    *request        // earlier identical request in the same chunk, if any
	res      []core.Result
	stats    core.Stats
	err      error         // terminal error (expired deadline), set before finish
	panicVal any           // panic raised while serving, re-raised in the caller
	state    atomic.Uint32 // 0 pending, 1 finished
	done     chan struct{}
}

// finish publishes the request: the first caller closes done, later calls
// are no-ops. Result fields must be set before calling.
func (r *request) finish() {
	if r.state.CompareAndSwap(0, 1) {
		close(r.done)
	}
}

// tryFail finishes the request with a panic value and/or error, unless a
// racing path already finished it. Used by the worker-pool panic isolation
// to fail the stragglers of a chunk whose serving code blew up.
func (r *request) tryFail(p any, err error) {
	if r.state.CompareAndSwap(0, 1) {
		r.panicVal, r.err = p, err
		close(r.done)
	}
}

// Engine is the concurrent serving layer. All methods are safe for
// concurrent use; Close must only be called once no Search/Insert/Delete is
// in flight or forthcoming.
type Engine struct {
	ix      Searcher
	batchIx BatchSearcher // non-nil when ix has a native batched path
	mut     Mutator       // nil for immutable indexes
	cfg     Config
	dim     int // query length, ix.Dim()+1

	mu    sync.RWMutex  // searches read-lock, mutations write-lock (mut != nil only)
	epoch atomic.Uint64 // bumped by every applied mutation
	cache *lru          // nil when disabled

	journal Journal        // nil when mutations need no durability log
	durable durableJournal // journal's group-commit surface, when offered
	comp    Compactor      // nil unless background compaction is on

	reqs      chan *request
	batches   chan []*request
	inflight  atomic.Int64 // chunks dispatched but not yet completed
	closed    atomic.Bool
	subMu     sync.RWMutex   // submitters read-lock around the reqs send; Drain write-locks to close it
	drained   chan struct{}  // closed once the dispatcher and every worker exited
	wg        sync.WaitGroup // dispatcher + workers + compaction loop
	compactCh chan struct{}  // wake signal for the compaction loop (cap 1)
	stopComp  chan struct{}  // closed by the first Drain

	queries, batchCount, hits, misses, inserts, deletes, compactions atomic.Int64
	fltSkipNodes, fltSkipPoints                                      atomic.Int64

	// Overload state (see overload.go): the admitted-but-unfinished request
	// count, shed/expired/panic counters, the smoothed per-query service
	// time (float64 bits), the degradation ceiling, and the completion
	// latency histogram the SLO controller samples.
	backlog         atomic.Int64
	shed            atomic.Int64
	expired         atomic.Int64
	panics          atomic.Int64
	degradedQueries atomic.Int64
	ewmaSvc         atomic.Uint64
	budgetCeiling   atomic.Int64
	latency         latHist
}

// durableJournal is the optional group-commit surface of a Journal: after a
// mutation's append succeeded under the lock, the engine waits for
// durability outside it, so concurrent mutations share one fsync.
type durableJournal interface {
	WaitDurable() error
}

// New builds and starts an engine over ix. Pass the index's mutation surface
// as mut (or nil for read-only serving); when non-nil, the engine serializes
// Insert/Delete against searches and invalidates the cache on every applied
// mutation.
func New(ix Searcher, mut Mutator, cfg Config) *Engine {
	cfg = cfg.normalized()
	e := &Engine{
		ix:      ix,
		mut:     mut,
		cfg:     cfg,
		dim:     ix.Dim() + 1,
		reqs:    make(chan *request, cfg.Workers*cfg.MaxBatch),
		batches: make(chan []*request, cfg.Workers),
		drained: make(chan struct{}),
	}
	if bi, ok := ix.(BatchSearcher); ok {
		e.batchIx = bi
	}
	if cfg.CacheEntries > 0 {
		e.cache = newLRU(cfg.CacheEntries)
	}
	if mut != nil {
		e.journal = cfg.Journal
		if d, ok := cfg.Journal.(durableJournal); ok {
			e.durable = d
		}
		if c, ok := mut.(Compactor); ok && cfg.BackgroundCompaction {
			e.comp = c
			c.SetBackgroundCompaction(true)
			e.compactCh = make(chan struct{}, 1)
			e.stopComp = make(chan struct{})
			e.wg.Add(1)
			go e.compactLoop()
		}
	}
	e.wg.Add(1 + cfg.Workers)
	go e.dispatcher()
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Search answers one top-k hyperplane query; it blocks until a worker has
// served it. Like Index.Search it panics on a malformed query, but in the
// calling goroutine, before the query is enqueued.
func (e *Engine) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	if e.closed.Load() {
		panic("server: Search on closed engine")
	}
	// The one shared checked path (core.CheckQuery) validates here, in the
	// calling goroutine, before the query is enqueued — the engine's
	// documented panic semantics, implemented once for every index kind.
	norm, err := core.CheckQuery(q, e.dim-1)
	if err != nil {
		panic("server: " + err.Error())
	}
	r := &request{q: q, norm: norm, opts: e.applyCeiling(opts.Normalized()), done: make(chan struct{})}
	// The blocking path is never shed, but it still counts toward the
	// backlog (and the latency histogram) so admission control and the SLO
	// controller see the whole load, whichever door it came through.
	e.backlog.Add(1)
	start := time.Now()
	if !e.submit(r) {
		e.backlog.Add(-1)
		panic("server: Search on closed engine")
	}
	<-r.done
	e.backlog.Add(-1)
	e.latency.observe(time.Since(start))
	if r.panicVal != nil {
		// A panic raised while serving (e.g. by a user Filter) belongs to
		// the caller that submitted the query, not to the worker pool.
		panic(r.panicVal)
	}
	return r.res, r.stats
}

// submit enqueues r on the request channel, serialized against Drain's
// close: submitters hold the read half while they send, Drain holds the
// write half while it closes, so a send can never race the close (each
// blind path alone would be a close/send data race under concurrent Drain).
// It reports false when the engine closed first — the send did not happen
// and the caller owns the backlog rollback and its own closed-engine
// contract (panic for Search, ErrDraining for SearchCtx). A submitter that
// wins the race sends on a channel the dispatcher is still draining — close
// only makes the channel reject new sends, already-queued requests are
// served through the drain.
func (e *Engine) submit(r *request) bool {
	e.subMu.RLock()
	defer e.subMu.RUnlock()
	if e.closed.Load() {
		return false
	}
	e.reqs <- r
	return true
}

// Insert adds a point through the mutation surface, serialized against
// searches. It returns the stable handle assigned by the index. With a
// Journal configured, a non-nil error means the point is in memory but its
// log append failed — the caller must not acknowledge it as durable (and
// the journal refuses further appends until reset, so no later mutation can
// be logged over the gap).
func (e *Engine) Insert(p []float32) (int32, error) {
	if e.mut == nil {
		return 0, ErrImmutable
	}
	h, err := func() (int32, error) {
		e.mu.Lock()
		defer e.mu.Unlock() // deferred so a panicking mutator cannot wedge the lock
		h := e.mut.Insert(p)
		e.epoch.Add(1)
		if e.journal != nil {
			if err := e.journal.AppendInsert(h, p); err != nil {
				return h, err
			}
		}
		e.inserts.Add(1)
		e.wakeCompactor()
		return h, nil
	}()
	if err == nil && e.durable != nil {
		// Wait for the journal's group commit outside the mutation lock:
		// concurrent mutations (and searches) proceed while this record's
		// fsync is in flight, and every mutation that appended before the
		// flush lands rides the same one.
		err = e.durable.WaitDurable()
	}
	return h, err
}

// InsertWithAttrs adds a point with an attribute payload through the
// mutation surface, serialized against searches. It requires the index's
// mutator to expose AttrMutator and, when a Journal is configured, the
// journal to expose AttrJournal — otherwise ErrImmutable respectively an
// error, never a silently dropped payload. Durability semantics match
// Insert.
func (e *Engine) InsertWithAttrs(p []float32, at attr.Point) (int32, error) {
	if e.mut == nil {
		return 0, ErrImmutable
	}
	am, ok := e.mut.(AttrMutator)
	if !ok {
		return 0, ErrImmutable
	}
	var aj AttrJournal
	if e.journal != nil {
		if aj, ok = e.journal.(AttrJournal); !ok {
			return 0, fmt.Errorf("server: journal %T cannot log attributed inserts", e.journal)
		}
	}
	h, err := func() (int32, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		h := am.InsertWithAttrs(p, at)
		e.epoch.Add(1)
		if aj != nil {
			if err := aj.AppendInsertAttrs(h, p, at); err != nil {
				return h, err
			}
		}
		e.inserts.Add(1)
		e.wakeCompactor()
		return h, nil
	}()
	if err == nil && e.durable != nil {
		err = e.durable.WaitDurable()
	}
	return h, err
}

// Delete removes a handle through the mutation surface, serialized against
// searches. It reports whether the handle was live. Journal errors behave
// as in Insert.
func (e *Engine) Delete(handle int32) (bool, error) {
	if e.mut == nil {
		return false, ErrImmutable
	}
	ok, err := func() (bool, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		ok := e.mut.Delete(handle)
		if ok {
			e.epoch.Add(1)
			if e.journal != nil {
				if err := e.journal.AppendDelete(handle); err != nil {
					return true, err
				}
			}
			e.deletes.Add(1)
			e.wakeCompactor()
		}
		return ok, nil
	}()
	if err == nil && ok && e.durable != nil {
		err = e.durable.WaitDurable()
	}
	return ok, err
}

// wakeCompactor nudges the compaction loop when a mutation pushed the delta
// over the threshold. Called with the write lock held; the send never
// blocks (the channel holds one pending wake).
func (e *Engine) wakeCompactor() {
	if e.comp == nil || !e.comp.CompactionNeeded() {
		return
	}
	select {
	case e.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop folds the index's delta off the mutation path: on every wake
// it runs capture/build/install cycles until the delta is back under the
// threshold, holding the mutation lock only for capture and install.
// Mutations landing during a build are reconciled at install by the index
// (see Compactor); a cycle therefore never blocks the very mutations that
// outgrow the threshold again, which is why the loop re-checks and chains.
func (e *Engine) compactLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stopComp:
			return
		case <-e.compactCh:
		}
		for {
			select {
			case <-e.stopComp:
				return
			default:
			}
			var build, install func()
			e.mu.Lock()
			if e.comp.CompactionNeeded() {
				build, install = e.comp.BeginCompaction()
			}
			e.mu.Unlock()
			if build == nil {
				break
			}
			build()
			e.mu.Lock()
			install()
			e.mu.Unlock()
			// No epoch bump: a compaction changes the tree, not the answer
			// set, so cached results stay exact.
			e.compactions.Add(1)
		}
	}
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	pending := 0
	if p, ok := e.mut.(interface{ Pending() int }); ok {
		// The delta shrinks under the mutation lock (compaction install,
		// inline rebuild); read it like a search would.
		e.mu.RLock()
		pending = p.Pending()
		e.mu.RUnlock()
	}
	return Stats{
		Queries:         e.queries.Load(),
		Batches:         e.batchCount.Load(),
		CacheHits:       e.hits.Load(),
		CacheMisses:     e.misses.Load(),
		Inserts:         e.inserts.Load(),
		Deletes:         e.deletes.Load(),
		Epoch:           e.epoch.Load(),
		Compactions:     e.compactions.Load(),
		PendingDelta:    pending,
		Shed:            e.shed.Load(),
		Expired:         e.expired.Load(),
		Panics:          e.panics.Load(),
		DegradedQueries: e.degradedQueries.Load(),
		Backlog:         e.backlog.Load(),
		BudgetCeiling:   int(e.budgetCeiling.Load()),

		FilterSkippedNodes:  e.fltSkipNodes.Load(),
		FilterSkippedPoints: e.fltSkipPoints.Load(),
	}
}

// noteFilterStats folds one fresh search's predicate-pushdown pruning into
// the engine totals; answers replayed from the cache pass nothing here.
func (e *Engine) noteFilterStats(st core.Stats) {
	if st.FilterSkippedNodes != 0 {
		e.fltSkipNodes.Add(st.FilterSkippedNodes)
	}
	if st.FilterSkippedPoints != 0 {
		e.fltSkipPoints.Add(st.FilterSkippedPoints)
	}
}

// Drain stops intake and waits — bounded by ctx — for every
// already-submitted query to finish and the dispatcher and workers to exit.
// It returns nil once the engine is fully stopped, or ctx.Err() if the
// deadline expires first (a worker stuck inside the index or a user Filter
// cannot hold shutdown hostage: the engine is abandoned, not waited on).
// Drain is idempotent and safe to call concurrently; every call observes the
// same terminal state, and submitting after any Drain or Close panics.
func (e *Engine) Drain(ctx context.Context) error {
	e.subMu.Lock()
	first := !e.closed.Swap(true)
	if first {
		close(e.reqs)
	}
	e.subMu.Unlock()
	if first {
		if e.stopComp != nil {
			close(e.stopComp) // the loop finishes any in-flight cycle first
		}
		go func() {
			e.wg.Wait()
			close(e.drained)
		}()
	}
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains every already-submitted query and stops the batcher and
// workers, waiting without bound (Drain with a background context). It is
// idempotent; submitting after Close panics.
func (e *Engine) Close() { _ = e.Drain(context.Background()) }

// Exclusive runs fn while the engine guarantees no search or mutation is
// executing against the index: on a mutable index it holds the write lock
// that searches read-lock, so fn observes (and is observed by) a fully
// settled state — the hook the snapshot path uses to serialize a Save
// against concurrent Insert/Delete. On an immutable index fn runs directly;
// a read-only fn is safe against concurrent readers, and that is the only
// kind an immutable index admits.
func (e *Engine) Exclusive(fn func()) {
	if e.mut == nil {
		fn()
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

// Shared runs fn under the read half of the mutation lock, so a read-only
// fn (an N()/IndexBytes() stats probe, say) observes a fully applied index
// state even while Insert/Delete traffic flows. On an immutable index fn
// runs directly.
func (e *Engine) Shared(fn func()) {
	if e.mut == nil {
		fn()
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	fn()
}

// dispatcher assembles incoming requests into rounds and splits every round
// into per-worker chunks. Dispatch is work-conserving: whenever a worker is
// idle, the drained round goes out immediately; only while every worker is
// busy does the dispatcher hold an under-filled round open, for at most
// MaxDelay, to coalesce stragglers into fuller batches.
func (e *Engine) dispatcher() {
	defer e.wg.Done()
	defer close(e.batches)
	maxRound := e.cfg.Workers * e.cfg.MaxBatch
	round := make([]*request, 0, maxRound)
	for {
		r, ok := <-e.reqs
		if !ok {
			return
		}
		round = append(round[:0], r)
		// Opportunistically drain everything already queued.
		open := true
	drain:
		for len(round) < maxRound {
			select {
			case r, more := <-e.reqs:
				if !more {
					open = false
					break drain
				}
				round = append(round, r)
			default:
				break drain
			}
		}
		// Dispatch is work-conserving: while any worker could start this
		// round right now, it goes out immediately. Only when every worker
		// is already busy — so waiting costs nothing — is the round held
		// open briefly to coalesce late arrivals into fuller batches.
		if open && len(round) < maxRound &&
			e.inflight.Load() >= int64(e.cfg.Workers) {
			timer := time.NewTimer(e.cfg.MaxDelay)
		fill:
			for len(round) < maxRound {
				select {
				case r, more := <-e.reqs:
					if !more {
						open = false
						break fill
					}
					round = append(round, r)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		}
		e.dispatch(round)
		if !open {
			return
		}
	}
}

// dispatch splits a round into chunks sized to occupy every worker (capped
// at MaxBatch) and hands them to the pool. Chunks own their backing arrays;
// the round slice is reused by the dispatcher.
func (e *Engine) dispatch(round []*request) {
	n := len(round)
	chunk := (n + e.cfg.Workers - 1) / e.cfg.Workers
	if chunk > e.cfg.MaxBatch {
		chunk = e.cfg.MaxBatch
	}
	for i := 0; i < n; i += chunk {
		j := i + chunk
		if j > n {
			j = n
		}
		b := make([]*request, j-i)
		copy(b, round[i:j])
		e.batchCount.Add(1)
		e.inflight.Add(1)
		e.batches <- b
	}
}

// workerScratch is the per-worker reusable storage: canonicalization
// buffers, the packed canonical queries of the current chunk, and the
// grouping slices of the batched path. One workerScratch lives as long as
// its worker, so steady-state serving allocates only what each answer
// returns to its caller.
type workerScratch struct {
	one   []float32  // canonicalization buffer for the per-request path
	canon []float32  // packed canonical queries of the current chunk
	pend  []*request // cache misses awaiting the batched path
	dups  []*request // chunk-internal duplicates of a pending request
	group []*request // one options-group of pend
	gq    []float32  // packed queries of the current group
}

// worker serves whole chunks: when the index exposes a native batched path,
// each chunk runs through serveBatch (cache first, then one SearchBatch per
// options-group); otherwise requests are served one at a time.
func (e *Engine) worker() {
	defer e.wg.Done()
	ws := &workerScratch{one: make([]float32, e.dim)}
	for batch := range e.batches {
		e.serveChunk(batch, ws)
		e.inflight.Add(-1)
	}
}

// serveChunk is the worker pool's panic bulkhead around one chunk. The
// per-request paths already route index and user-code panics back to their
// callers; what this catches is a panic in the engine's own serving code,
// which would otherwise kill the worker and silently shrink the pool. The
// chunk's unfinished requests fail with the panic value (no caller hangs, no
// panic is lost), the scratch is replaced (the old one may be mid-mutation),
// and the worker lives on. It also times the chunk to feed the smoothed
// service time admission control divides by, and drops requests whose
// deadline expired while queued before any index work runs on them.
func (e *Engine) serveChunk(batch []*request, ws *workerScratch) {
	defer func() {
		if p := recover(); p != nil {
			e.panics.Add(1)
			for _, r := range batch {
				r.tryFail(p, nil)
			}
			*ws = workerScratch{one: make([]float32, e.dim)}
		}
	}()
	// Expired work is dropped at the door: a request whose deadline fired
	// while it sat in the queue gets ctx.Err() back without costing a
	// canonicalization, a cache probe, or a leaf block.
	alive := batch[:0]
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			e.expired.Add(1)
			r.tryFail(nil, r.ctx.Err())
			continue
		}
		alive = append(alive, r)
	}
	if len(alive) == 0 {
		return
	}
	start := time.Now()
	// The engine.search failpoint stands in for a slow or failing index
	// (a stuck traversal, a poisoned mmap). Its delay runs inside the timed
	// section on purpose: injected latency must feed the smoothed service
	// time, so admission control reacts to a chaos-slowed engine exactly as
	// it would to a genuinely slow one.
	if faultinject.Armed() {
		if err := faultinject.Inject("engine.search"); err != nil {
			for _, r := range alive {
				r.tryFail(nil, err)
			}
			e.observeService(time.Since(start) / time.Duration(len(alive)))
			return
		}
	}
	e.serveBatch(alive, ws)
	e.observeService(time.Since(start) / time.Duration(len(alive)))
}

// serveBatch answers one dispatched chunk. Requests with a Filter or
// Profile (per-query state the shared traversal cannot split) and chunks on
// indexes without a batch surface take the per-request path; everything
// else is canonicalized once, answered from the cache where possible, and
// the remaining cache misses run through the index's SearchBatch grouped by
// identical options — under load this is the common case, so the index
// walks its arena once per chunk instead of once per query.
func (e *Engine) serveBatch(batch []*request, ws *workerScratch) {
	if e.batchIx == nil || len(batch) == 1 {
		for _, r := range batch {
			e.serve(r, ws.one)
		}
		return
	}

	dim := e.dim
	if cap(ws.canon) < len(batch)*dim {
		ws.canon = make([]float32, len(batch)*dim)
	}
	pend := ws.pend[:0]
	dups := ws.dups[:0]
	for _, r := range batch {
		if r.opts.Filter != nil || r.opts.Profile != nil {
			e.serve(r, ws.one)
			continue
		}
		e.queries.Add(1)
		dst := ws.canon[len(pend)*dim : (len(pend)+1)*dim]
		r.canon = canonicalize(dst, r.q, r.norm)
		r.hash = hashKey(r.canon, makeOptsKey(r.opts))
		if e.cache != nil {
			if res, st, hit := e.cache.get(r.hash, r.canon, makeOptsKey(r.opts), e.epoch.Load()); hit {
				e.hits.Add(1)
				r.res, r.stats = res, st
				r.finish()
				continue
			}
		}
		// Coalesce duplicates within the chunk: the sequential path served
		// later occurrences from the cache entry the first one installed,
		// and the batched path must not recompute them either.
		r.dupOf = nil
		for _, p := range pend {
			if p.hash == r.hash && sameBatchOpts(p.opts, r.opts) && equalQuery(p.canon, r.canon) {
				r.dupOf = p
				break
			}
		}
		if r.dupOf != nil {
			if e.cache != nil {
				e.hits.Add(1) // would have hit the leader's entry sequentially
			}
			dups = append(dups, r)
			continue
		}
		if e.cache != nil {
			e.misses.Add(1)
		}
		pend = append(pend, r)
	}
	ws.pend, ws.dups = pend, dups

	// Partition the misses into groups of identical options; each group is
	// one native batch call.
	for len(pend) > 0 {
		lead := pend[0]
		group := append(ws.group[:0], lead)
		keep := 0
		for _, r := range pend[1:] {
			if sameBatchOpts(r.opts, lead.opts) {
				group = append(group, r)
			} else {
				pend[keep] = r
				keep++
			}
		}
		pend = pend[:keep]
		ws.group = group[:0]
		e.runGroup(group, lead.opts, ws)
	}
	ws.pend = ws.pend[:0]

	// Serve the coalesced duplicates from their leaders' answers (each
	// caller gets a private copy, like a cache hit). A leader that panicked
	// propagates the same panic to its duplicates.
	for _, r := range dups {
		lead := r.dupOf
		if lead.panicVal != nil {
			r.panicVal = lead.panicVal
		} else {
			r.res = append([]core.Result(nil), lead.res...)
			r.stats = lead.stats
			r.err = lead.err
		}
		r.finish()
	}
	ws.dups = ws.dups[:0]
}

// sameBatchOpts reports whether two (already filter- and profile-free)
// option sets ask the index the same question, so their requests can share
// one batch call.
func sameBatchOpts(a, b core.SearchOptions) bool {
	return a.K == b.K && a.Budget == b.Budget && a.Preference == b.Preference &&
		a.DisablePointBall == b.DisablePointBall &&
		a.DisablePointCone == b.DisablePointCone &&
		a.DisableCollabIP == b.DisableCollabIP &&
		a.Pred.Equal(b.Pred)
}

// runGroup answers one options-group of cache misses through the native
// batch surface, under the read lock when the index is mutable. A panic
// raised by the index travels back to every caller whose answer it
// swallowed, exactly like the per-request path.
func (e *Engine) runGroup(group []*request, opts core.SearchOptions, ws *workerScratch) {
	if len(group) == 1 {
		e.finishMiss(group[0])
		return
	}
	dim := e.dim
	if cap(ws.gq) < len(group)*dim {
		ws.gq = make([]float32, len(group)*dim)
	}
	gq := ws.gq[:len(group)*dim]
	for i, r := range group {
		copy(gq[i*dim:(i+1)*dim], r.canon)
	}
	queries := &vec.Matrix{Data: gq, N: len(group), D: dim}

	served := 0
	defer func() {
		if p := recover(); p != nil {
			for _, r := range group[served:] {
				r.panicVal = p
				r.finish()
			}
		}
	}()
	var epoch uint64
	res, sts := func() ([][]core.Result, []core.Stats) {
		if e.mut != nil {
			e.mu.RLock()
			defer e.mu.RUnlock()
		}
		epoch = e.epoch.Load()
		return e.batchIx.SearchBatch(queries, opts)
	}()
	ok := makeOptsKey(opts)
	for i, r := range group {
		e.noteFilterStats(sts[i])
		if e.cache != nil {
			e.cache.put(r.hash, r.canon, ok, epoch, res[i], sts[i])
		}
		r.res, r.stats = res[i], sts[i]
		if r.ctx != nil {
			// The shared traversal ran to completion (it cannot split one
			// caller's deadline out of the arena walk), so the answer is
			// exact and cacheable — but a caller whose deadline has since
			// passed still gets the deadline error its contract promises.
			r.err = r.ctx.Err()
		}
		r.finish()
		served = i + 1
	}
}

// finishMiss completes a canonicalized cache miss through the single-query
// path (a group of one gains nothing from the batch surface).
func (e *Engine) finishMiss(r *request) {
	defer r.finish()
	defer func() {
		if p := recover(); p != nil {
			r.panicVal = p
		}
	}()
	opts := r.opts
	opts.Cancel = cancelFor(r.ctx)
	var epoch uint64
	res, st := func() ([]core.Result, core.Stats) {
		if e.mut != nil {
			e.mu.RLock()
			defer e.mu.RUnlock()
		}
		epoch = e.epoch.Load()
		return e.ix.Search(r.canon, opts)
	}()
	if r.ctx != nil {
		r.err = r.ctx.Err()
	}
	e.noteFilterStats(st)
	if e.cache != nil && r.err == nil {
		// A canceled search's results are truncated, not exact — they must
		// never be served to a future caller as the real answer.
		e.cache.put(r.hash, r.canon, makeOptsKey(r.opts), epoch, res, st)
	}
	r.res, r.stats = res, st
}

// serve answers one request on the per-query path: canonicalize, consult
// the cache, search under the read lock, publish. Duplicate queries inside
// one batch hit the cache entry their first occurrence installed.
func (e *Engine) serve(r *request, scratch []float32) {
	defer r.finish()
	defer func() {
		// A panicking Search (a user Filter, a buggy index) must neither
		// kill the worker pool nor strand the rest of the chunk; the panic
		// value travels back to the submitting caller instead.
		if p := recover(); p != nil {
			r.panicVal = p
		}
	}()
	e.queries.Add(1)

	q := canonicalize(scratch, r.q, r.norm)
	cacheable := e.cache != nil && r.opts.Filter == nil && r.opts.Profile == nil
	var h uint64
	var ok optsKey
	if cacheable {
		ok = makeOptsKey(r.opts)
		h = hashKey(q, ok)
		if res, st, hit := e.cache.get(h, q, ok, e.epoch.Load()); hit {
			e.hits.Add(1)
			r.res, r.stats = res, st
			return
		}
		e.misses.Add(1)
	}

	// The cancellation hook lives only in this call-time copy of the
	// options, never in r.opts: cache keys and batch grouping must not see
	// per-request transport state.
	opts := r.opts
	opts.Cancel = cancelFor(r.ctx)
	var epoch uint64
	res, st := func() ([]core.Result, core.Stats) {
		if e.mut != nil {
			e.mu.RLock()
			defer e.mu.RUnlock()
		}
		// Under the read lock (or with no mutator at all) the epoch cannot
		// move while the search runs, so stamping entries with it is
		// race-free.
		epoch = e.epoch.Load()
		return e.ix.Search(q, opts)
	}()

	if r.ctx != nil {
		r.err = r.ctx.Err()
	}
	e.noteFilterStats(st)
	if cacheable && r.err == nil {
		e.cache.put(h, q, ok, epoch, res, st)
	}
	r.res, r.stats = res, st
}

// canonicalize copies q into dst rescaled to a unit normal (n is ||normal||,
// already computed at submission), so that scaled duplicates of one
// hyperplane map to identical bytes and share one cache slot. The tolerance
// band is core.UnitNormBand, shared with p2h's checkQuery, which stays
// responsible for validation at the index boundary; this copy exists purely
// for cache-key identity.
func canonicalize(dst, q []float32, n float64) []float32 {
	dst = dst[:len(q)]
	copy(dst, q)
	if core.UnitNormBand(n) {
		return dst
	}
	vec.Scale(dst, 1/n)
	return dst
}
