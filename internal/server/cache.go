package server

import (
	"container/list"
	"math"
	"sync"

	"p2h/internal/core"
)

// optsKey is the cache-relevant projection of SearchOptions: every field
// that changes what Search returns, none that doesn't (Filter and Profile
// make a query uncacheable and never reach the cache). A declarative Pred
// stays cacheable — its canonical encoding keys the entry, so two
// structurally equal predicates share one slot while an opaque Filter
// closure never could.
type optsKey struct {
	k, budget                int
	preference               core.Preference
	noBall, noCone, noCollab bool
	pred                     string // Pred.Canon(); "" when unfiltered
}

func makeOptsKey(o core.SearchOptions) optsKey {
	budget := o.Budget
	if budget < 0 {
		budget = 0 // any non-positive budget means unlimited; one key for all
	}
	pred := ""
	if o.Pred != nil {
		pred = o.Pred.Canon()
	}
	return optsKey{
		k:          o.K,
		budget:     budget,
		preference: o.Preference,
		noBall:     o.DisablePointBall,
		noCone:     o.DisablePointCone,
		noCollab:   o.DisableCollabIP,
		pred:       pred,
	}
}

// hashKey is FNV-1a over the canonical query bytes and the option fields.
func hashKey(q []float32, ok optsKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, f := range q {
		mix(uint64(math.Float32bits(f)), 4)
	}
	mix(uint64(ok.k), 8)
	mix(uint64(ok.budget), 8)
	mix(uint64(ok.preference), 1)
	var flags uint64
	if ok.noBall {
		flags |= 1
	}
	if ok.noCone {
		flags |= 2
	}
	if ok.noCollab {
		flags |= 4
	}
	mix(flags, 1)
	mix(uint64(len(ok.pred)), 4)
	for i := 0; i < len(ok.pred); i++ {
		h ^= uint64(ok.pred[i])
		h *= prime64
	}
	return h
}

// entry is one cached answer. It owns private copies of the query and the
// results, so neither callers nor workers can mutate it afterwards.
type entry struct {
	hash  uint64
	epoch uint64 // mutation epoch the answer was computed at
	q     []float32
	opts  optsKey
	res   []core.Result
	stats core.Stats
}

// lru is a mutex-guarded bounded LRU keyed by query hash. Epoch staleness is
// checked lazily on lookup: a mutation does not sweep the map, it just makes
// every older entry unreturnable (and evicted on touch).
type lru struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recent
	m   map[uint64]*list.Element // one entry per hash; colliding keys overwrite
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[uint64]*list.Element, capacity)}
}

// get returns a copy of the cached results for (q, opts) if an entry exists,
// matches exactly, and was computed at the current epoch. Entries are
// immutable once installed, so only the lookup and recency bump run under
// the mutex; the defensive copy happens outside it.
func (c *lru) get(hash uint64, q []float32, opts optsKey, epoch uint64) ([]core.Result, core.Stats, bool) {
	c.mu.Lock()
	el, found := c.m[hash]
	if !found {
		c.mu.Unlock()
		return nil, core.Stats{}, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		c.ll.Remove(el)
		delete(c.m, hash)
		c.mu.Unlock()
		return nil, core.Stats{}, false
	}
	if e.opts != opts || !equalQuery(e.q, q) {
		c.mu.Unlock()
		return nil, core.Stats{}, false // 64-bit hash collision: serve it live
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()
	res := make([]core.Result, len(e.res))
	copy(res, e.res)
	return res, e.stats, true
}

// put installs an answer computed at epoch, copying q and res.
func (c *lru) put(hash uint64, q []float32, opts optsKey, epoch uint64, res []core.Result, stats core.Stats) {
	e := &entry{
		hash:  hash,
		epoch: epoch,
		q:     append([]float32(nil), q...),
		opts:  opts,
		res:   append([]core.Result(nil), res...),
		stats: stats,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.m[hash]; found {
		if el.Value.(*entry).epoch > epoch {
			return // a slow worker must not clobber a post-mutation answer
		}
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.m[hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*entry).hash)
	}
}

// len reports the number of live entries (stale ones included until
// touched).
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func equalQuery(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
