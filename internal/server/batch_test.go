package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2h/internal/bctree"
	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/vec"
)

// treeIndex adapts a BC-Tree (which stores lifted vectors) to the engine's
// Searcher + BatchSearcher surfaces.
type treeIndex struct {
	tree *bctree.Tree
}

func (t treeIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	return t.tree.Search(q, opts)
}

func (t treeIndex) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	return t.tree.SearchBatch(queries, opts)
}

func (t treeIndex) Dim() int { return t.tree.Dim() - 1 }

func treeSetup(t *testing.T, n, nq int, seed int64) (treeIndex, *vec.Matrix) {
	t.Helper()
	raw := dataset.Dedup(dataset.Generate(dataset.Spec{
		Name: "t", Family: dataset.FamilyClustered, RawDim: 20, Clusters: 6,
	}, n, seed))
	queries := dataset.GenerateQueries(raw, nq, seed+1)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		vec.Normalize(q[:len(q)-1])
	}
	return treeIndex{tree: bctree.Build(raw.AppendOnes(), bctree.Config{LeafSize: 25, Seed: seed})}, queries
}

// TestBatchedServingMatchesIndex floods the engine from many goroutines so
// the dispatcher forms real micro-batches, and checks every answer equals a
// direct index search — the batched worker path must be invisible to
// callers.
func TestBatchedServingMatchesIndex(t *testing.T) {
	ix, queries := treeSetup(t, 1200, 32, 1)
	e := New(ix, nil, Config{Workers: 2, MaxBatch: 8, CacheEntries: -1})
	defer e.Close()

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*queries.N)
	for round := 0; round < rounds; round++ {
		for qi := 0; qi < queries.N; qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				q := queries.Row(qi)
				opts := core.SearchOptions{K: 1 + qi%3} // mixed option groups
				got, _ := e.Search(q, opts)
				want, _ := ix.Search(q, opts)
				if len(got) != len(want) {
					errs <- fmt.Errorf("query %d: %d results, want %d", qi, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs <- fmt.Errorf("query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
						return
					}
				}
			}(qi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Queries != rounds*int64(queries.N) {
		t.Fatalf("queries counter %d, want %d", st.Queries, rounds*queries.N)
	}
}

// TestBatchedServingMixedFilter checks that filtered requests (which must
// bypass the batched path) and plain requests can share one engine and both
// come back correct.
func TestBatchedServingMixedFilter(t *testing.T) {
	ix, queries := treeSetup(t, 800, 16, 2)
	e := New(ix, nil, Config{Workers: 2, MaxBatch: 8, CacheEntries: -1})
	defer e.Close()

	filter := func(id int32) bool { return id%2 == 0 }
	var wg sync.WaitGroup
	errs := make(chan error, 2*queries.N)
	for qi := 0; qi < queries.N; qi++ {
		wg.Add(2)
		go func(qi int) {
			defer wg.Done()
			q := queries.Row(qi)
			got, _ := e.Search(q, core.SearchOptions{K: 5})
			want, _ := ix.Search(q, core.SearchOptions{K: 5})
			for i := range want {
				if got[i] != want[i] {
					errs <- fmt.Errorf("plain query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
					return
				}
			}
		}(qi)
		go func(qi int) {
			defer wg.Done()
			q := queries.Row(qi)
			got, _ := e.Search(q, core.SearchOptions{K: 5, Filter: filter})
			want, _ := ix.Search(q, core.SearchOptions{K: 5, Filter: filter})
			for i := range want {
				if got[i] != want[i] {
					errs <- fmt.Errorf("filtered query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
					return
				}
			}
		}(qi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatchedServingCache checks the batched path installs and serves cache
// entries: a repeated workload converges to cache hits.
func TestBatchedServingCache(t *testing.T) {
	ix, queries := treeSetup(t, 600, 8, 3)
	e := New(ix, nil, Config{Workers: 2, MaxBatch: 4, CacheEntries: 128})
	defer e.Close()

	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for qi := 0; qi < queries.N; qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				e.Search(queries.Row(qi), core.SearchOptions{K: 3})
			}(qi)
		}
		wg.Wait()
	}
	st := e.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits after repeated rounds: %+v", st)
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
}

// countingIndex counts Search/SearchBatch queries actually computed.
type countingIndex struct {
	treeIndex
	computed atomic.Int64
}

func (c *countingIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	c.computed.Add(1)
	time.Sleep(100 * time.Microsecond) // yield so chunks can form on one CPU
	return c.treeIndex.Search(q, opts)
}

func (c *countingIndex) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	c.computed.Add(int64(queries.N))
	time.Sleep(100 * time.Microsecond)
	return c.treeIndex.SearchBatch(queries, opts)
}

// TestBatchedServingCoalescesDuplicates floods the engine with one hot
// query from many goroutines, cache disabled: duplicates inside one chunk
// must be computed once and fanned out, so the index computes far fewer
// answers than it serves.
func TestBatchedServingCoalescesDuplicates(t *testing.T) {
	ix, queries := treeSetup(t, 400, 4, 6)
	ci := &countingIndex{treeIndex: ix}
	e := New(ci, nil, Config{Workers: 1, MaxBatch: 32, CacheEntries: -1})
	defer e.Close()

	q := queries.Row(0)
	want, _ := ix.Search(q, core.SearchOptions{K: 3})
	const callers, rounds = 16, 10
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, _ := e.Search(q, core.SearchOptions{K: 3})
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("rank %d: %+v != %+v", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	served := e.Stats().Queries
	if computed := ci.computed.Load(); computed >= served {
		t.Fatalf("no coalescing: computed %d answers for %d identical served queries", computed, served)
	}
}

// panicBatchIndex panics on the batched path only; the engine must route
// the panic to the submitting callers, not the worker pool. Its per-query
// Search yields the processor, so on a single-CPU test machine the blocked
// callers get to pile their requests up and the dispatcher reliably forms
// multi-request chunks (a compute-bound Search would monopolize the sole P
// and keep every chunk at size one).
type panicBatchIndex struct{ treeIndex }

func (p panicBatchIndex) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	time.Sleep(200 * time.Microsecond)
	return p.treeIndex.Search(q, opts)
}

func (p panicBatchIndex) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	panic("batch boom")
}

func TestBatchedServingPanicReachesCallers(t *testing.T) {
	ix, queries := treeSetup(t, 400, 8, 4)
	e := New(panicBatchIndex{ix}, nil, Config{Workers: 1, MaxBatch: 8, CacheEntries: -1})
	defer e.Close()

	var wg sync.WaitGroup
	panics := make(chan any, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			e.Search(queries.Row(qi), core.SearchOptions{K: 2})
		}(qi)
	}
	wg.Wait()
	close(panics)
	got := 0
	for p := range panics {
		if fmt.Sprint(p) != "batch boom" {
			t.Fatalf("unexpected panic value %v", p)
		}
		got++
	}
	// Single-request chunks run the per-query path (which does not panic
	// here), so not every caller necessarily panics — but batched chunks
	// must propagate to every member they swallowed.
	if got == 0 {
		t.Skip("dispatcher never formed a multi-request chunk; nothing to assert")
	}
}
