package server

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2h/internal/core"
)

// slowMut wraps the mutable fixture with an injected per-search delay that
// polls the cancellation hook — a stand-in for a long traversal so deadlines
// actually expire mid-search and the backlog actually builds.
type slowMut struct {
	*mutScan
	delay, step time.Duration
}

func (s slowMut) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	deadline := time.Now().Add(s.delay)
	for time.Now().Before(deadline) {
		if opts.Canceled() {
			return nil, core.Stats{}
		}
		time.Sleep(s.step)
	}
	return s.mutScan.Search(q, opts)
}

// TestStressSearchMutateDrain hammers one engine with every concurrent
// behavior the overload machinery must survive at once — deadline-carrying
// searches, shedding, blocking searches, inserts and deletes, panicking
// Filters — then drains it mid-traffic. It pins three properties under
// -race: no error ever escapes the known set, no panic is lost (a
// panicking Filter always reaches its caller, even racing Drain), and the
// engine's goroutines all exit (no leak) with the backlog settled at zero.
func TestStressSearchMutateDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	const d = 8
	data, queries := testData(64, d, 16, 9)
	m := newMutScan(d)
	for i := 0; i < data.N; i++ {
		m.Insert(data.Row(i)[:d])
	}
	slow := slowMut{m, 200 * time.Microsecond, 50 * time.Microsecond}
	e := New(slow, m, Config{
		Workers: 2, MaxBatch: 2, CacheEntries: -1,
		MaxQueue: 8, MaxQueueDelay: time.Hour, // static limit only
	})

	stop := make(chan struct{})
	var served, shed, expired, mutations atomic.Int64
	var wg sync.WaitGroup

	// Deadline-carrying searchers: deadlines from 50µs to 2ms against a
	// 200µs search floor, so expiry, completion and shedding all happen.
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(rng.Intn(1950)+50)*time.Microsecond)
				_, _, err := e.SearchCtx(ctx, queries.Row(i%queries.N), core.SearchOptions{K: 1})
				cancel()
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					expired.Add(1)
				case errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("searcher %d: unexpected error %v", g, err)
					return
				}
			}
		}(g)
	}

	// Blocking searchers (no context): these never shed and never expire,
	// but submitting one can race Drain, which panics by contract — the
	// recover here asserts the panic arrives instead of vanishing into a
	// worker.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				done := func() (done bool) {
					defer func() {
						if r := recover(); r != nil {
							done = true // drained mid-submit: contract kept
						}
					}()
					res, _ := e.Search(queries.Row(i%queries.N), core.SearchOptions{K: 1})
					if len(res) != 1 {
						t.Errorf("blocking search %d: %d results, want 1", g, len(res))
						return true
					}
					served.Add(1)
					return false
				}()
				if done {
					return
				}
			}
		}(g)
	}

	// Panicking Filters: every one must reach its caller — a lost panic
	// (swallowed by a worker, or leaking the pool) fails the test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("filter panic did not reach the caller")
					}
				}()
				e.Search(queries.Row(i%queries.N), core.SearchOptions{
					K:      1,
					Filter: func(int32) bool { panic("boom") },
				})
			}()
		}
	}()

	// Mutators: Insert/Delete intentionally have no closed-check, so they
	// must stay panic-free even when Drain lands between their lock
	// acquisitions.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			var handles []int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				if len(handles) == 0 || rng.Intn(2) == 0 {
					h, err := e.Insert(data.Row(rng.Intn(data.N))[:d])
					if err != nil {
						t.Errorf("mutator %d: insert: %v", g, err)
						return
					}
					handles = append(handles, h)
				} else {
					h := handles[len(handles)-1]
					handles = handles[:len(handles)-1]
					if _, err := e.Delete(h); err != nil {
						t.Errorf("mutator %d: delete: %v", g, err)
						return
					}
				}
				mutations.Add(1)
			}
		}(g)
	}

	// Let the storm run, then drain while traffic is still in flight: the
	// stop signal fires after Drain begins, so late submissions race it.
	time.Sleep(150 * time.Millisecond)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelDrain()
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(stop)
	}()
	if err := e.Drain(drainCtx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("nothing was served; the storm never exercised the engine")
	}
	if expired.Load() == 0 {
		t.Error("no deadline ever expired; the deadlines were not tight enough to test cancellation")
	}
	if mutations.Load() == 0 {
		t.Error("no mutation landed; the mutators never ran")
	}
	t.Logf("served=%d shed=%d expired=%d mutations=%d stats=%+v",
		served.Load(), shed.Load(), expired.Load(), mutations.Load(), e.Stats())

	if _, _, err := e.SearchCtx(context.Background(), queries.Row(0), core.SearchOptions{K: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain SearchCtx err = %v, want ErrDraining", err)
	}
	if st := e.Stats(); st.Backlog != 0 {
		t.Fatalf("Backlog = %d after drain, want 0", st.Backlog)
	}

	// Goroutine leak check: everything the engine spawned must exit. Allow
	// brief settling (timer goroutines, the runtime's own churn).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
