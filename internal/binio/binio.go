// Package binio provides sticky-error little-endian binary readers and
// writers for the index serialization formats. A single error check after a
// run of field operations replaces per-field error plumbing; the first error
// wins and later operations become no-ops.
package binio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt reports a structurally invalid stream.
var ErrCorrupt = errors.New("binio: corrupt stream")

// castagnoli is the CRC-32C polynomial table shared by every checksummed
// record format in this repository (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of b, the record checksum used by the
// dynamic index's write-ahead log.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Writer serializes fixed-width values in little-endian order.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w. Call Flush when done and check its error.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) put(buf []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(buf)
}

// U8 writes one byte.
func (w *Writer) U8(v byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(v)
}

// I32 writes an int32.
func (w *Writer) I32(v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	w.put(buf[:])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.put(buf[:])
}

// F64 writes a float64.
func (w *Writer) F64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.put(buf[:])
}

// Bytes writes raw bytes.
func (w *Writer) Bytes(b []byte) { w.put(b) }

// F32s writes a []float32 payload (no length prefix).
func (w *Writer) F32s(vs []float32) {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		w.put(buf[:])
	}
}

// F64s writes a []float64 payload (no length prefix).
func (w *Writer) F64s(vs []float64) {
	for _, v := range vs {
		w.F64(v)
	}
}

// I32s writes a []int32 payload (no length prefix).
func (w *Writer) I32s(vs []int32) {
	for _, v := range vs {
		w.I32(v)
	}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader deserializes fixed-width values in little-endian order.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) get(buf []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	var buf [1]byte
	if !r.get(buf[:]) {
		return 0
	}
	return buf[0]
}

// I32 reads an int32.
func (r *Reader) I32() int32 {
	var buf [4]byte
	if !r.get(buf[:]) {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

// I64 reads an int64.
func (r *Reader) I64() int64 {
	var buf [8]byte
	if !r.get(buf[:]) {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// F64 reads a float64.
func (r *Reader) F64() float64 {
	var buf [8]byte
	if !r.get(buf[:]) {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// chunkBytes bounds how much any bulk read allocates before bytes actually
// arrive: a corrupt header declaring a gigantic element count costs one
// chunk and fails at the stream's real end, instead of a giant make() up
// front. 64 KiB also batches the underlying reads, replacing the per-value
// round trips through bufio.
const chunkBytes = 64 << 10

// Raw reads n bytes and returns them, or nil once the stream has failed.
// Callers use it to dispatch on one of several accepted magic values.
func (r *Reader) Raw(n int) []byte {
	buf := make([]byte, 0, min(n, chunkBytes))
	for len(buf) < n {
		c := min(n-len(buf), chunkBytes)
		buf = append(buf, make([]byte, c)...)
		if !r.get(buf[len(buf)-c:]) {
			return nil
		}
	}
	return buf
}

// Expect reads len(want) bytes and fails the stream if they differ.
func (r *Reader) Expect(want []byte) {
	buf := make([]byte, len(want))
	if !r.get(buf) {
		return
	}
	for i := range want {
		if buf[i] != want[i] {
			r.err = fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf)
			return
		}
	}
}

// U8s reads n raw bytes, chunked like the other bulk readers so a corrupt
// length costs one chunk rather than one giant allocation.
func (r *Reader) U8s(n int) []uint8 {
	out := make([]uint8, 0, min(n, chunkBytes))
	for len(out) < n {
		c := min(n-len(out), chunkBytes)
		out = append(out, make([]uint8, c)...)
		if !r.get(out[len(out)-c:]) {
			return nil
		}
	}
	return out
}

// F32s reads n float32 values.
func (r *Reader) F32s(n int) []float32 {
	out := make([]float32, 0, min(n, chunkBytes/4))
	var buf [chunkBytes]byte
	for len(out) < n {
		c := min(n-len(out), chunkBytes/4)
		b := buf[:4*c]
		if !r.get(b) {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out
}

// F64s reads n float64 values.
func (r *Reader) F64s(n int) []float64 {
	out := make([]float64, 0, min(n, chunkBytes/8))
	var buf [chunkBytes]byte
	for len(out) < n {
		c := min(n-len(out), chunkBytes/8)
		b := buf[:8*c]
		if !r.get(b) {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out
}

// I32s reads n int32 values.
func (r *Reader) I32s(n int) []int32 {
	out := make([]int32, 0, min(n, chunkBytes/4))
	var buf [chunkBytes]byte
	for len(out) < n {
		c := min(n-len(out), chunkBytes/4)
		b := buf[:4*c]
		if !r.get(b) {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out
}

// Fail records a validation failure with context.
func (r *Reader) Fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }
