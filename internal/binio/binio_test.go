package binio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.I32(-12345)
	w.I64(1 << 40)
	w.F64(math.Pi)
	w.Bytes([]byte("MAGIC123"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U8(); got != 7 {
		t.Fatalf("u8 %d", got)
	}
	if got := r.I32(); got != -12345 {
		t.Fatalf("i32 %d", got)
	}
	if got := r.I64(); got != 1<<40 {
		t.Fatalf("i64 %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("f64 %v", got)
	}
	r.Expect([]byte("MAGIC123"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSlices(t *testing.T) {
	f := func(f32 []float32, f64 []float64, i32 []int32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.F32s(f32)
		w.F64s(f64)
		w.I32s(i32)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		g32 := r.F32s(len(f32))
		g64 := r.F64s(len(f64))
		gi := r.I32s(len(i32))
		if r.Err() != nil {
			return false
		}
		for i := range f32 {
			if math.Float32bits(g32[i]) != math.Float32bits(f32[i]) {
				return false
			}
		}
		for i := range f64 {
			if math.Float64bits(g64[i]) != math.Float64bits(f64[i]) {
				return false
			}
		}
		for i := range i32 {
			if gi[i] != i32[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncatedStreamFails(t *testing.T) {
	r := NewReader(strings.NewReader("ab"))
	r.I32()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
	// Sticky: later reads stay failed and return zero values.
	if got := r.I64(); got != 0 {
		t.Fatalf("sticky reader must return zero, got %d", got)
	}
}

func TestExpectMismatch(t *testing.T) {
	r := NewReader(strings.NewReader("WRONG123"))
	r.Expect([]byte("MAGIC123"))
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
}

func TestFailFormatsContext(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	r.Fail("n=%d out of range", 42)
	if !errors.Is(r.Err(), ErrCorrupt) || !strings.Contains(r.Err().Error(), "n=42") {
		t.Fatalf("got %v", r.Err())
	}
	// First error wins.
	r.Fail("second")
	if strings.Contains(r.Err().Error(), "second") {
		t.Fatal("second Fail must not overwrite the first")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	// Overflow the 4KB bufio buffer to force the underlying write.
	big := make([]float64, 1024)
	w.F64s(big)
	w.F64s(big)
	if w.Err() == nil && w.Flush() == nil {
		t.Fatal("expected write error to surface")
	}
}
