// Package linearscan implements the exhaustive O(nd) baseline for P2HNNS.
// It is the "trivial solution" the paper's introduction describes, and this
// repository's source of exact ground truth for recall evaluation.
package linearscan

import (
	"math"
	"time"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// Scanner scans lifted data points x = (p; 1) exhaustively.
type Scanner struct {
	data *vec.Matrix
}

// New wraps the lifted data matrix. The matrix is not copied.
func New(data *vec.Matrix) *Scanner {
	if data == nil || data.N == 0 {
		panic("linearscan: empty data")
	}
	return &Scanner{data: data}
}

// N returns the number of indexed points.
func (s *Scanner) N() int { return s.data.N }

// Dim returns the lifted dimensionality d.
func (s *Scanner) Dim() int { return s.data.D }

// Search returns the top-k points minimizing |<x, q>|. With an unlimited
// budget the answer is exact; a budget caps the number of points scanned
// (in storage order), matching how candidate budgets apply to the indexes.
func (s *Scanner) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)
	var start time.Time
	if opts.Profile != nil {
		start = time.Now()
	}
	for i := 0; i < s.data.N; i++ {
		if !opts.BudgetLeft(st.Candidates) {
			break
		}
		if opts.Filter != nil && !opts.Filter(int32(i)) {
			continue
		}
		d := math.Abs(vec.Dot(q, s.data.Row(i)))
		st.IPCount++
		st.Candidates++
		tk.Push(int32(i), d)
	}
	if opts.Profile != nil {
		opts.Profile.Add(core.PhaseVerify, time.Since(start))
	}
	return tk.Results(), st
}

// GroundTruth computes the exact top-k answers for every query row.
func GroundTruth(data, queries *vec.Matrix, k int) [][]core.Result {
	s := New(data)
	out := make([][]core.Result, queries.N)
	for i := 0; i < queries.N; i++ {
		out[i], _ = s.Search(queries.Row(i), core.SearchOptions{K: k})
	}
	return out
}
