package linearscan

import (
	"math"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/vec"
)

func TestSearchExactTiny(t *testing.T) {
	// Points on a line, query hyperplane x0 = 2.5 (normal (1,0), offset -2.5).
	data := vec.FromRows([][]float32{{0}, {1}, {2}, {3}, {4}}).AppendOnes()
	q := []float32{1, -2.5}
	s := New(data)
	res, st := s.Search(q, core.SearchOptions{K: 2})
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// Closest to 2.5 are points 2 and 3, both at distance 0.5.
	if res[0].Dist != 0.5 || res[1].Dist != 0.5 {
		t.Fatalf("dists = %v", res)
	}
	if res[0].ID != 2 || res[1].ID != 3 {
		t.Fatalf("ids = %v (tie must break by id)", res)
	}
	if st.Candidates != 5 || st.IPCount != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearchBudget(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}, {2}, {3}}).AppendOnes()
	q := []float32{1, -3} // nearest is point 3 (dist 0)
	s := New(data)
	res, st := s.Search(q, core.SearchOptions{K: 1, Budget: 2})
	if st.Candidates != 2 {
		t.Fatalf("budget ignored: %+v", st)
	}
	// Only points 0,1 scanned; best among them is point 1 at dist 2.
	if res[0].ID != 1 || res[0].Dist != 2 {
		t.Fatalf("res = %v", res)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(vec.NewMatrix(0, 3))
}

func TestGroundTruthShapes(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 4}, 200, 1)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 7, 2)
	gt := GroundTruth(data, queries, 5)
	if len(gt) != 7 {
		t.Fatalf("gt rows = %d", len(gt))
	}
	for i, g := range gt {
		if len(g) != 5 {
			t.Fatalf("query %d: %d results", i, len(g))
		}
		for j := 1; j < len(g); j++ {
			if g[j].Dist < g[j-1].Dist {
				t.Fatalf("query %d results unsorted", i)
			}
		}
	}
}

func TestSearchProfile(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}}).AppendOnes()
	prof := &core.Profile{}
	New(data).Search([]float32{1, 0}, core.SearchOptions{K: 1, Profile: prof})
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("profile must record verification time")
	}
}

func TestSearchMatchesManualMin(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 10}, 300, 3)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 5, 4)
	s := New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		res, _ := s.Search(q, core.SearchOptions{K: 1})
		best := math.Inf(1)
		for j := 0; j < data.N; j++ {
			if d := math.Abs(vec.Dot(q, data.Row(j))); d < best {
				best = d
			}
		}
		if res[0].Dist != best {
			t.Fatalf("query %d: scan=%v manual=%v", i, res[0].Dist, best)
		}
	}
}
