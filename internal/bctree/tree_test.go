package bctree

import (
	"math"
	"testing"

	"p2h/internal/dataset"
	"p2h/internal/vec"
)

func buildTestData(t *testing.T, family dataset.Family, n, d int, seed int64) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: d, Clusters: 8}, n, seed)
	queries := dataset.GenerateQueries(raw, 10, seed+1)
	return raw.AppendOnes(), queries
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(0, 4), Config{})
}

func TestBuildBasicInvariants(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyClustered, 500, 16, 1)
	tree := Build(data, Config{LeafSize: 20, Seed: 1})
	if tree.N() != 500 || tree.Dim() != 17 {
		t.Fatalf("tree %s", tree)
	}
	checkTreeInvariants(t, tree)
}

// checkTreeInvariants verifies the structural properties of Algorithm 4:
// the Ball-Tree invariants (partition, containment, leaf size) plus the
// BC-Tree leaf structures: r_x descending, the ball identity r_x=||x-c||,
// and the cone identity xcos^2 + xsin^2 = ||x||^2 together with the
// Figure 4 relation (||x||sin phi)^2 + (||c|| - ||x||cos phi)^2 = r_x^2.
func checkTreeInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	seen := make([]bool, tree.N())
	for _, id := range tree.ids {
		if seen[id] {
			t.Fatalf("id %d appears twice in reordering", id)
		}
		seen[id] = true
	}
	if len(tree.rx) != tree.N() || len(tree.xcos) != tree.N() || len(tree.xsin) != tree.N() {
		t.Fatalf("point-level arrays sized %d/%d/%d, want %d",
			len(tree.rx), len(tree.xcos), len(tree.xsin), tree.N())
	}
	var nodes, leaves int
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &tree.nodes[ni]
		center := tree.center(ni)
		nodes++
		if n.count() <= 0 {
			t.Fatal("empty node")
		}
		if got := vec.Norm(center); math.Abs(got-n.centerNorm) > 1e-9*(1+got) {
			t.Fatalf("stale centerNorm: %v != %v", n.centerNorm, got)
		}
		for pos := n.start; pos < n.end; pos++ {
			d := vec.Dist(tree.points.Row(int(pos)), center)
			if d > n.radius {
				t.Fatalf("point at pos %d outside ball: %v > %v", pos, d, n.radius)
			}
		}
		if n.isLeaf() {
			leaves++
			if int(n.count()) > tree.leafSize {
				t.Fatalf("leaf size %d > N0=%d", n.count(), tree.leafSize)
			}
			for pos := int(n.start); pos < int(n.end); pos++ {
				i := pos - int(n.start)
				if i > 0 && tree.rx[pos] > tree.rx[pos-1]+1e-12 {
					t.Fatalf("rx not descending at %d: %v > %v", i, tree.rx[pos], tree.rx[pos-1])
				}
				x := tree.points.Row(pos)
				r := vec.Dist(x, center)
				if math.Abs(tree.rx[pos]-r) > 1e-6*(1+r) {
					t.Fatalf("rx[%d]=%v but true dist %v", i, tree.rx[pos], r)
				}
				xn := vec.Norm(x)
				if got := math.Hypot(tree.xcos[pos], tree.xsin[pos]); math.Abs(got-xn) > 1e-6*(1+xn) {
					t.Fatalf("cone identity broken: hypot=%v, ||x||=%v", got, xn)
				}
				if tree.xsin[pos] < 0 {
					t.Fatalf("xsin must be nonnegative, got %v", tree.xsin[pos])
				}
				// Figure 4: the rejection and the center-offset projection
				// form a right triangle with hypotenuse r_x.
				lhs := tree.xsin[pos]*tree.xsin[pos] + (n.centerNorm-tree.xcos[pos])*(n.centerNorm-tree.xcos[pos])
				if math.Abs(lhs-r*r) > 1e-5*(1+r*r) {
					t.Fatalf("Figure 4 identity broken: %v != %v", lhs, r*r)
				}
			}
			return
		}
		l, r := &tree.nodes[n.left], &tree.nodes[n.right]
		if l.start != n.start || r.end != n.end || l.end != r.start {
			t.Fatalf("children do not partition parent")
		}
		if n.left <= ni || n.right <= ni {
			t.Fatalf("children %d,%d not after parent %d in preorder arena", n.left, n.right, ni)
		}
		walk(n.left)
		walk(n.right)
	}
	walk(0)
	if leaves != tree.Leaves() || nodes != tree.Nodes() {
		t.Fatalf("node accounting: counted %d/%d, tree says %d/%d", nodes, leaves, tree.Nodes(), tree.Leaves())
	}
}

// TestLemma1CenterMatchesDirectCentroid verifies that internal centers
// assembled bottom-up via Lemma 1 equal the direct centroid of the node's
// points, up to float32 storage rounding.
func TestLemma1CenterMatchesDirectCentroid(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyHeavyTail, 700, 10, 2)
	tree := Build(data, Config{LeafSize: 30, Seed: 2})
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &tree.nodes[ni]
		center := tree.center(ni)
		ids := make([]int32, 0, n.count())
		for pos := n.start; pos < n.end; pos++ {
			ids = append(ids, pos)
		}
		direct := tree.points.Centroid(ids)
		for j := range direct {
			diff := math.Abs(float64(direct[j]) - float64(center[j]))
			scale := math.Max(1, math.Abs(float64(direct[j])))
			if diff > 1e-4*scale {
				t.Fatalf("center[%d] drifted: lemma1=%v direct=%v", j, center[j], direct[j])
			}
		}
		if !n.isLeaf() {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(0)
}

func TestBuildDeterministic(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyClustered, 400, 12, 3)
	a := Build(data, Config{LeafSize: 25, Seed: 9})
	b := Build(data, Config{LeafSize: 25, Seed: 9})
	if a.Nodes() != b.Nodes() || a.Height() != b.Height() {
		t.Fatal("same seed must build identical trees")
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			t.Fatal("same seed must produce identical reordering")
		}
	}
}

func TestBuildAllIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := vec.FromRows(rows).AppendOnes()
	tree := Build(data, Config{LeafSize: 8, Seed: 1})
	checkTreeInvariants(t, tree)
}

func TestBuildSinglePoint(t *testing.T) {
	data := vec.FromRows([][]float32{{1, 2}}).AppendOnes()
	tree := Build(data, Config{})
	if tree.Nodes() != 1 || tree.Leaves() != 1 || tree.Height() != 1 {
		t.Fatalf("single point tree: %s", tree)
	}
}

func TestIndexBytesLargerThanBallTreeExtras(t *testing.T) {
	// Theorem 6: BC-Tree spends 3 extra n-size arrays over Ball-Tree.
	data, _ := buildTestData(t, dataset.FamilyClustered, 2000, 32, 5)
	tree := Build(data, Config{LeafSize: 100, Seed: 1})
	if tree.IndexBytes() < int64(tree.N())*3*8 {
		t.Fatalf("index accounting misses the 3n arrays: %d", tree.IndexBytes())
	}
	if tree.IndexBytes() >= tree.DataBytes() {
		t.Fatalf("index bytes %d should stay below data bytes %d at N0=100", tree.IndexBytes(), tree.DataBytes())
	}
}

func TestDefaultLeafSizeApplied(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyUniform, 300, 8, 2)
	tree := Build(data, Config{})
	if tree.LeafSize() != DefaultLeafSize {
		t.Fatalf("default leaf size %d", tree.LeafSize())
	}
}
