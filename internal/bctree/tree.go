// Package bctree implements the paper's Section IV: BC-Tree, a Ball-Tree
// whose leaf nodes additionally maintain Ball and Cone structures per data
// point. The extra structures enable two O(1) point-level lower bounds —
// the point-level ball bound (Corollary 1) and the tighter point-level cone
// bound (Theorem 3) — which prune individual candidates inside a leaf before
// the O(d) verification, and a collaborative inner product computing strategy
// (Lemma 2) that nearly halves the node-level bound cost (Theorem 5).
//
// Storage is a flat arena: all nodes live in one []nodeRec slice with
// children addressed by index, all node centers are packed into one
// contiguous centers matrix (row i = center of node i), and the per-point
// ball/cone structures are three position-indexed arrays of length n — each
// storage position belongs to exactly one leaf, so a leaf's slice of those
// arrays is contiguous and its radii stay descending within the slice. Leaf
// verification runs as fused bound kernels plus one blocked inner-product
// call over sequential memory (vec.BallCutoff / vec.ConeSelect /
// vec.DotBlock).
package bctree

import (
	"fmt"

	"p2h/internal/attr"
	"p2h/internal/exec"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// DefaultLeafSize is the paper's default maximum leaf size N0.
const DefaultLeafSize = 100

// radiusSlack inflates stored radii by a relative epsilon so pruning stays
// conservative under floating-point rounding.
const radiusSlack = 1e-9

// boundSlack deflates computed point-level bounds by a relative epsilon, for
// the same reason. Accumulated float64 rounding across the collaborative
// inner product chain stays orders of magnitude below this.
const boundSlack = 1e-9

// noChild marks a leaf's child slots in the flat arena.
const noChild = int32(-1)

// Config parameterizes BC-Tree construction.
type Config struct {
	// LeafSize is the maximum number of points per leaf (the paper's N0).
	// Zero selects DefaultLeafSize.
	LeafSize int
	// Seed drives the random pivot choice of the seed-grow split
	// (Algorithm 2); builds are deterministic given a seed.
	Seed int64
	// Quantize stores an 8-bit quantized mirror of the reordered points and
	// filters leaf rows through its exact error bound after the ball and
	// cone bounds, before float verification. Results are unchanged (the
	// filter is conservative); exact unfiltered searches get cheaper leaf
	// scans for +25% memory.
	Quantize bool
}

func (c Config) normalized() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	return c
}

// nodeRec is one ball of the tree in the flat arena. Leaf nodes have
// left == right == noChild and cover positions [start, end) of the reordered
// storage; their point-level structures are the [start, end) slices of the
// tree's rx/xcos/xsin arrays, ordered by descending r_x. Children always sit
// at larger arena indices than their parent (preorder construction).
type nodeRec struct {
	radius      float64
	centerNorm  float64 // ||center||, precomputed for the cone bound
	start, end  int32
	left, right int32 // arena indices of children, noChild for leaves
}

func (n *nodeRec) count() int32 { return n.end - n.start }
func (n *nodeRec) isLeaf() bool { return n.left == noChild }

// Tree is a BC-Tree over lifted data points x = (p; 1).
type Tree struct {
	points  *vec.Matrix // reordered copy: leaf ranges are contiguous rows
	ids     []int32     // position -> original data id
	nodes   []nodeRec   // flat arena, root at index 0, preorder
	centers *vec.Matrix // nodes x d: packed node centers

	// Position-indexed point-level structures (Algorithm 4 lines 5-9),
	// length n; within each leaf's [start, end) slice rx is descending.
	rx   []float64 // ball radii r_x = ||x - center||
	xcos []float64 // ||x|| cos(phi_x), the projection of x onto center
	xsin []float64 // ||x|| sin(phi_x), the rejection of x from center

	leafSize int
	leaves   int

	// Quantized mirror (Config.Quantize): codes is the 8-bit encoding of the
	// reordered points, position-aligned so a leaf's code block sits at
	// [start*d, end*d) like its float block. Both are nil when quantization
	// is off.
	qz    *quant.Quantizer
	codes []uint8

	// Attribute store and its per-node summaries (AttachAttrs): attrs rows
	// are shard-local/original data ids (the id space of results), and
	// attrSums lets visit() skip subtrees a predicate provably cannot
	// match. Both nil when no attributes are attached.
	attrs    *attr.Store
	attrSums *attr.Summaries

	// Free lists of the execution-engine state (internal/exec): Search and
	// SearchBatch recycle their scratch through these, so steady-state
	// queries allocate nothing.
	searchers exec.Pool[Searcher]
	batchers  exec.Pool[batchSearcher]
}

// center returns node ni's center, a row of the packed centers matrix.
func (t *Tree) center(ni int32) []float32 { return t.centers.Row(int(ni)) }

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N }

// Dim returns the lifted dimensionality.
func (t *Tree) Dim() int { return t.points.D }

// LeafSize returns the configured maximum leaf size N0.
func (t *Tree) LeafSize() int { return t.leafSize }

// Nodes returns the total number of tree nodes (internal + leaf).
func (t *Tree) Nodes() int { return len(t.nodes) }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// Height returns the height of the tree (a single leaf tree has height 1).
func (t *Tree) Height() int { return t.height(0) }

func (t *Tree) height(ni int32) int {
	n := &t.nodes[ni]
	if n.isLeaf() {
		return 1
	}
	hl, hr := t.height(n.left), t.height(n.right)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// Quantized reports whether the tree carries the 8-bit leaf mirror.
func (t *Tree) Quantized() bool { return t.qz != nil }

// AttachAttrs binds a per-point attribute store (row i = the id the tree
// reports as result i) and builds the per-node summaries predicate pushdown
// skips subtrees with. Summaries are derived state: cheap to rebuild, never
// serialized. Passing nil detaches. The caller must not mutate the store
// afterwards.
func (t *Tree) AttachAttrs(st *attr.Store) error {
	if st == nil {
		t.attrs, t.attrSums = nil, nil
		return nil
	}
	if st.N() != t.points.N {
		return fmt.Errorf("bctree: attribute store covers %d rows, index holds %d", st.N(), t.points.N)
	}
	infos := make([]attr.NodeInfo, len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		infos[i] = attr.NodeInfo{Start: n.start, End: n.end, Left: n.left, Right: n.right}
	}
	t.attrs = st
	t.attrSums = attr.BuildSummaries(st, t.ids, infos)
	return nil
}

// Attrs returns the attached attribute store, nil when none.
func (t *Tree) Attrs() *attr.Store { return t.attrs }

// IndexBytes estimates the memory footprint of the index structure: the
// packed centers matrix, the node records, the position->id map, the three
// Θ(n)-size point-level arrays that BC-Tree adds over Ball-Tree (Theorem 6),
// and the quantized mirror when present.
func (t *Tree) IndexBytes() int64 {
	const perNode = 2*8 /*radius+norm*/ + 2*4 /*range*/ + 2*4 /*children*/
	b := t.centers.Bytes() + int64(len(t.nodes))*perNode +
		int64(len(t.ids))*4 + int64(t.points.N)*3*8
	if t.qz != nil {
		b += int64(len(t.codes)) + int64(t.points.D)*(4+4+8)
	}
	if t.attrs != nil {
		b += t.attrs.MemBytes() + t.attrSums.MemBytes()
	}
	return b
}

// DataBytes returns the size of the reordered data copy.
func (t *Tree) DataBytes() int64 { return t.points.Bytes() }

// String summarizes the tree for logs.
func (t *Tree) String() string {
	return fmt.Sprintf("bctree{n=%d d=%d leafsize=%d nodes=%d leaves=%d height=%d}",
		t.N(), t.Dim(), t.leafSize, t.Nodes(), t.leaves, t.Height())
}
