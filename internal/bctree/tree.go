// Package bctree implements the paper's Section IV: BC-Tree, a Ball-Tree
// whose leaf nodes additionally maintain Ball and Cone structures per data
// point. The extra structures enable two O(1) point-level lower bounds —
// the point-level ball bound (Corollary 1) and the tighter point-level cone
// bound (Theorem 3) — which prune individual candidates inside a leaf before
// the O(d) verification, and a collaborative inner product computing strategy
// (Lemma 2) that nearly halves the node-level bound cost (Theorem 5).
package bctree

import (
	"fmt"

	"p2h/internal/vec"
)

// DefaultLeafSize is the paper's default maximum leaf size N0.
const DefaultLeafSize = 100

// radiusSlack inflates stored radii by a relative epsilon so pruning stays
// conservative under floating-point rounding.
const radiusSlack = 1e-9

// boundSlack deflates computed point-level bounds by a relative epsilon, for
// the same reason. Accumulated float64 rounding across the collaborative
// inner product chain stays orders of magnitude below this.
const boundSlack = 1e-9

// Config parameterizes BC-Tree construction.
type Config struct {
	// LeafSize is the maximum number of points per leaf (the paper's N0).
	// Zero selects DefaultLeafSize.
	LeafSize int
	// Seed drives the random pivot choice of the seed-grow split
	// (Algorithm 2); builds are deterministic given a seed.
	Seed int64
}

func (c Config) normalized() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	return c
}

// node is one ball of the tree. Leaf nodes carry the per-point ball and cone
// structures over positions [start, end) of the reordered storage; the slices
// below are indexed by position - start and ordered by descending radius.
type node struct {
	center     []float32
	centerNorm float64 // ||center||, precomputed for the cone bound
	radius     float64
	start, end int32

	left, right *node

	// Leaf-only point-level structures (Algorithm 4 lines 5-9).
	rx   []float64 // ball radii r_x = ||x - center||, descending
	xcos []float64 // ||x|| cos(phi_x), the projection of x onto center
	xsin []float64 // ||x|| sin(phi_x), the rejection of x from center
}

func (n *node) count() int32 { return n.end - n.start }
func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a BC-Tree over lifted data points x = (p; 1).
type Tree struct {
	points   *vec.Matrix // reordered copy: leaf ranges are contiguous rows
	ids      []int32     // position -> original data id
	root     *node
	leafSize int
	nodes    int
	leaves   int
}

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N }

// Dim returns the lifted dimensionality.
func (t *Tree) Dim() int { return t.points.D }

// LeafSize returns the configured maximum leaf size N0.
func (t *Tree) LeafSize() int { return t.leafSize }

// Nodes returns the total number of tree nodes (internal + leaf).
func (t *Tree) Nodes() int { return t.nodes }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// Height returns the height of the tree (a single leaf tree has height 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// IndexBytes estimates the memory footprint of the index structure: node
// centers, radii, child pointers, the position->id map, and the three
// Θ(n)-size leaf arrays that BC-Tree adds over Ball-Tree (Theorem 6).
func (t *Tree) IndexBytes() int64 {
	perNode := int64(t.points.D)*4 + 2*8 /*radius+norm*/ + 2*8 /*children*/ + 2*4 /*range*/
	return int64(t.nodes)*perNode + int64(len(t.ids))*4 + int64(t.points.N)*3*8
}

// DataBytes returns the size of the reordered data copy.
func (t *Tree) DataBytes() int64 { return t.points.Bytes() }

// String summarizes the tree for logs.
func (t *Tree) String() string {
	return fmt.Sprintf("bctree{n=%d d=%d leafsize=%d nodes=%d leaves=%d height=%d}",
		t.N(), t.Dim(), t.leafSize, t.nodes, t.leaves, t.Height())
}
