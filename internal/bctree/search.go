package bctree

import (
	"math"
	"time"

	"p2h/internal/attr"
	"p2h/internal/core"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Search answers a top-k P2HNNS query with Algorithm 5: the Ball-Tree
// branch-and-bound of Algorithm 3 augmented with
//
//   - collaborative inner product computing (Lemma 2): a visited internal
//     node computes the O(d) inner product for its left child only; the right
//     child's follows in O(1) from the node's own inner product, cutting the
//     node-level bound cost almost in half (Theorem 5);
//   - point-level pruning in the leaves (ScanWithPruning): the point-level
//     ball bound (Corollary 1) prunes the tail of the radius-sorted leaf in a
//     batch (vec.BallCutoff finds the cut by binary search), and the
//     point-level cone bound (Theorem 3) prunes single points it misses via
//     the fused vec.ConeSelect kernel; survivors are verified by one blocked
//     vec.DotBlock call when the whole prefix survives.
//
// The ablation switches in opts reproduce the paper's Figure 8 variants.
//
// Search runs on a pooled Searcher, so a steady-state call's only allocation
// is the returned results slice; use a Searcher directly to eliminate that
// one too.
func (t *Tree) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	s := t.acquireSearcher()
	res, st := s.Search(q, opts, nil)
	t.releaseSearcher(s)
	return res, st
}

// Searcher is a reusable single-query executor over one tree: the top-k
// collector and the per-leaf scratch persist across calls, so steady-state
// search allocates nothing beyond growth of the caller's dst. A Searcher is
// not safe for concurrent use; acquire one per goroutine (Tree.Search pools
// them automatically).
type Searcher struct {
	tree    *Tree
	q       []float32
	qnorm   float64
	sqQnorm float64
	tk      core.TopK
	st      core.Stats
	opts    core.SearchOptions
	buf     []float64 // per-leaf scratch for blocked inner products
	sel     []int32   // per-leaf scratch for cone-bound survivors

	// Quantized-filter state, live only while useQuant is set: qf is the
	// query's fitted integer filter (see quant.CodeFilter).
	qf       quant.CodeFilter
	useQuant bool

	// Predicate state, live only while opts.Pred is set on a tree with an
	// attribute store: pred is the predicate compiled against the store,
	// usePush gates the per-node summary skip.
	pred    *attr.Prog
	usePush bool
}

// NewSearcher returns a reusable executor bound to the tree.
func (t *Tree) NewSearcher() *Searcher { return &Searcher{tree: t} }

func (t *Tree) acquireSearcher() *Searcher {
	s := t.searchers.Get()
	s.tree = t
	return s
}

func (t *Tree) releaseSearcher(s *Searcher) { t.searchers.Put(s) }

// Search answers one query, appending the top-k results (ascending
// (Dist, ID)) to dst. Passing a recycled dst makes the call allocation-free
// in steady state.
func (s *Searcher) Search(q []float32, opts core.SearchOptions, dst []core.Result) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	s.q = q
	s.qnorm = vec.Norm(q)
	s.sqQnorm = s.qnorm * s.qnorm
	s.opts = opts
	s.st = core.Stats{}
	s.tk.Init(opts.K)
	run := s.preparePred()
	// The quantized filter applies to exact scans only: budgeted searches
	// keep the float path so "candidates verified" keeps meaning the same
	// work, and Filter-closure searches stay point-at-a-time. A declarative
	// predicate composes with it (rows are predicate-filtered before the
	// code kernel). Results are identical either way (the filter is exact),
	// which the quantized-vs-float equality tests pin down.
	s.useQuant = s.tree.qz != nil && opts.Filter == nil && opts.Budget <= 0 &&
		!opts.DisableQuantFilter
	if run {
		if s.useQuant {
			s.tree.qz.Fit(&s.qf, q)
		}
		ip := vec.Dot(q, s.tree.center(0))
		s.st.IPCount++
		s.visit(0, ip)
	}
	// Drop caller-owned references so the pooled Searcher cannot pin them.
	s.q = nil
	s.opts.Filter = nil
	s.opts.Profile = nil
	s.opts.Cancel = nil
	s.opts.Pred = nil
	s.pred = nil
	s.usePush = false
	return s.tk.DrainInto(dst), s.st
}

// preparePred resolves opts.Pred against the tree's attribute store. It
// reports whether the traversal should run at all: a predicate on a tree
// without attributes constant-folds against the empty payload — it either
// accepts every point (and is dropped) or rejects every point (empty result,
// no traversal).
func (s *Searcher) preparePred() bool {
	s.pred, s.usePush = nil, false
	if s.opts.Pred == nil {
		return true
	}
	if s.tree.attrs == nil {
		return s.opts.Pred.MatchesEmpty()
	}
	s.pred = s.tree.attrs.Compile(s.opts.Pred)
	s.usePush = s.tree.attrSums != nil
	return true
}

// accept reports whether id passes the predicate and the caller filter —
// exactly the acceptance an equivalent Filter closure would compute, which
// is what keeps pushdown results bitwise equal to post-filtering.
func (s *Searcher) accept(id int32) bool {
	if s.pred != nil && !s.pred.Match(id) {
		return false
	}
	return s.opts.Filter == nil || s.opts.Filter(id)
}

// scratch returns a distance buffer of at least m entries, reused across the
// leaves one query visits.
func (s *Searcher) scratch(m int) []float64 {
	if cap(s.buf) < m {
		s.buf = make([]float64, m)
	}
	return s.buf[:m]
}

// visit implements SubBCTreeSearch. ip is <q, center(ni)>, already known to
// the caller: computed directly for the root and for left children, derived
// via Lemma 2 for right children. Pruning is strict (lb > λ): candidates
// tied with the k-th best distance reach the collector, whose canonical
// (Dist, ID) order decides — the invariant that makes exact results
// independent of traversal order (see internal/exec).
func (s *Searcher) visit(ni int32, ip float64) {
	if !s.opts.BudgetLeft(s.st.Candidates) {
		return
	}
	if s.opts.Canceled() {
		return // deadline fired: keep what the collector already holds
	}
	if s.usePush && s.tree.attrSums.Node(ni, s.pred) == attr.TriNo {
		// Predicate pushdown: the node's attribute summaries prove no point
		// under it can match, so the whole subtree is skipped. The skip only
		// removes points a per-row filter would have rejected anyway, so the
		// accepted-candidate sequence — and with it the results, budgeted or
		// not — is unchanged.
		n := &s.tree.nodes[ni]
		s.st.FilterSkippedNodes++
		s.st.FilterSkippedPoints += int64(n.count())
		return
	}
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	lb := math.Abs(ip) - s.qnorm*n.radius
	if lb > s.tk.Lambda() { // lb < 0 < Lambda never prunes, no max needed
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.scanWithPruning(n, ip)
		return
	}

	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	ipl := vec.Dot(s.q, s.tree.center(n.left))
	s.st.IPCount++
	var ipr float64
	if s.opts.DisableCollabIP {
		ipr = vec.Dot(s.q, s.tree.center(n.right))
		s.st.IPCount++
	} else {
		// Lemma 2: <q, rc.c> = (|N| <q, N.c> - |lc| <q, lc.c>) / |rc|.
		cn := float64(n.count())
		cl := float64(s.tree.nodes[n.left].count())
		cr := float64(s.tree.nodes[n.right].count())
		ipr = (cn*ip - cl*ipl) / cr
		s.st.CollabIPs++
	}
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(start))
	}

	first, second := n.left, n.right
	ipf, ips := ipl, ipr
	if s.preferRight(n, ipl, ipr) {
		first, second = n.right, n.left
		ipf, ips = ipr, ipl
	}
	s.visit(first, ipf)
	s.visit(second, ips)
}

// preferRight decides the branch order (Algorithm 5 lines 12-17).
func (s *Searcher) preferRight(n *nodeRec, ipl, ipr float64) bool {
	if s.opts.Preference == core.PrefLowerBound {
		lbl := math.Abs(ipl) - s.qnorm*s.tree.nodes[n.left].radius
		lbr := math.Abs(ipr) - s.qnorm*s.tree.nodes[n.right].radius
		if lbl < 0 {
			lbl = 0
		}
		if lbr < 0 {
			lbr = 0
		}
		return lbr < lbl
	}
	return math.Abs(ipr) < math.Abs(ipl)
}

// scanWithPruning implements Algorithm 5 lines 18-26 over the contiguous,
// radius-sorted storage of the leaf, blocked: the ball bound cuts the tail of
// the leaf in one binary search, the fused cone kernel selects survivors in
// the remaining prefix, and the survivors are verified either by one
// DotBlock call (when the whole prefix survives, the common case on hard
// leaves) or point by point (when the cone bound thinned them out). Bounds
// are evaluated against the λ at leaf entry; λ only shrinks during the scan,
// so the snapshot prunes conservatively and results stay exact.
func (s *Searcher) scanWithPruning(n *nodeRec, ip float64) {
	s.st.LeavesVisited++
	var leafStart time.Time
	var verifyDur time.Duration
	profiling := s.opts.Profile != nil
	if profiling {
		leafStart = time.Now()
	}

	if s.opts.Filter != nil || s.pred != nil {
		// Predicate searches with the quantized mirror keep the code kernel:
		// rows are predicate-filtered first, then code-selected (useQuant
		// already implies Filter == nil and no budget).
		if s.pred != nil && s.useQuant && s.tk.Full() {
			verifyDur = s.scanPredQuant(n, ip)
		} else {
			verifyDur = s.scanFiltered(n, ip)
		}
		if profiling {
			s.opts.Profile.Add(core.PhaseVerify, verifyDur)
			s.opts.Profile.Add(core.PhaseBound, time.Since(leafStart)-verifyDur)
		}
		return
	}

	start := int(n.start)
	count := int(n.count())
	lambda := s.tk.Lambda()
	absIP := math.Abs(ip)

	// Corollary 1: r_x is descending, so the ball bound ascends along the
	// leaf; everything past the cutoff is pruned in a batch.
	m := count
	if !s.opts.DisablePointBall {
		m = vec.BallCutoff(absIP, s.qnorm, lambda, s.tree.rx[start:start+count])
		s.st.PrunedPoints += int64(count - m)
	}

	// Theorem 3 via the fused kernel: select the survivors of the prefix.
	useCone := !s.opts.DisablePointCone && n.centerNorm > 0
	var sel []int32
	dense := true // all of [0, m) survived; allows one blocked verification
	if useCone && m > 0 {
		// ||q|| cos theta = <q, N.c> / ||N.c||; the rejection follows from
		// Pythagoras. Rounding can push the projection a hair past ||q||.
		qcos := ip / n.centerNorm
		qsin := math.Sqrt(math.Max(0, s.sqQnorm-qcos*qcos))
		sel = vec.ConeSelect(qcos, qsin, lambda, boundSlack,
			s.tree.xcos[start:start+m], s.tree.xsin[start:start+m], s.sel[:0])
		s.sel = sel // keep the grown capacity for the next leaf
		s.st.PrunedPoints += int64(m - len(sel))
		dense = len(sel) == m
	}

	// Quantized filter: one integer-kernel pass over what the geometric
	// bounds left standing (the whole prefix, or the cone survivors). Like
	// them it prunes against the λ snapshot and needs a finite λ to act.
	if s.useQuant && m > 0 && s.tk.Full() {
		d := s.tree.points.D
		if dense {
			sel = vec.CodeSelect(s.tree.codes[start*d:(start+m)*d], d,
				s.qf.W, s.qf.Base, s.qf.InvS, s.qf.Eps, lambda, s.sel[:0])
			s.sel = sel
			s.st.PrunedPoints += int64(m - len(sel))
			dense = len(sel) == m
		} else if len(sel) > 0 {
			before := len(sel)
			sel = vec.CodeSelectIdx(s.tree.codes[start*d:(start+m)*d], d,
				s.qf.W, s.qf.Base, s.qf.InvS, s.qf.Eps, lambda, sel)
			s.sel = sel
			s.st.PrunedPoints += int64(before - len(sel))
		}
	}

	// Cap verification work by the remaining candidate budget.
	verify := m
	if !dense {
		verify = len(sel)
	}
	if s.opts.Budget > 0 {
		if left := int(int64(s.opts.Budget) - s.st.Candidates); left < verify {
			verify = left
		}
	}
	if verify <= 0 {
		if profiling {
			s.opts.Profile.Add(core.PhaseBound, time.Since(leafStart))
		}
		return
	}

	var t0 time.Time
	if profiling {
		t0 = time.Now()
	}
	d := s.tree.points.D
	if dense {
		rows := s.tree.points.Data[start*d : (start+verify)*d]
		dists := s.scratch(verify)
		vec.DotBlock(s.q, rows, dists)
		for i := 0; i < verify; i++ {
			s.tk.Push(s.tree.ids[start+i], math.Abs(dists[i]))
		}
	} else {
		for _, i := range sel[:verify] {
			pos := start + int(i)
			v := math.Abs(vec.Dot(s.q, s.tree.points.Row(pos)))
			s.tk.Push(s.tree.ids[pos], v)
		}
	}
	s.st.IPCount += int64(verify)
	s.st.Candidates += int64(verify)
	if profiling {
		verifyDur = time.Since(t0)
		s.opts.Profile.Add(core.PhaseVerify, verifyDur)
		s.opts.Profile.Add(core.PhaseBound, time.Since(leafStart)-verifyDur)
	}
}

// scanFiltered is the point-at-a-time path for filtered queries (a Filter
// closure, a compiled predicate, or both): rejected ids must not cost an
// inner product nor count against the budget, so the bounds are evaluated per
// point with the evolving λ, as in Algorithm 5. It returns the time spent on
// verification for the profile's phase split.
func (s *Searcher) scanFiltered(n *nodeRec, ip float64) time.Duration {
	profiling := s.opts.Profile != nil
	var verifyDur time.Duration
	start := int(n.start)
	count := int(n.count())
	absIP := math.Abs(ip)
	useBall := !s.opts.DisablePointBall
	useCone := !s.opts.DisablePointCone && n.centerNorm > 0
	var qcos, qsin float64
	if useCone {
		qcos = ip / n.centerNorm
		qsin = math.Sqrt(math.Max(0, s.sqQnorm-qcos*qcos))
	}
	for i := 0; i < count; i++ {
		if !s.opts.BudgetLeft(s.st.Candidates) {
			break
		}
		if useBall {
			if lbBall := absIP - s.qnorm*s.tree.rx[start+i]; lbBall > s.tk.Lambda() {
				s.st.PrunedPoints += int64(count - i)
				break
			}
		}
		if useCone {
			sumA := qcos*s.tree.xcos[start+i] - qsin*s.tree.xsin[start+i]
			sumB := qcos*s.tree.xcos[start+i] + qsin*s.tree.xsin[start+i]
			var lbCone float64
			if sumA > 0 && qcos > 0 && s.tree.xcos[start+i] > 0 {
				lbCone = sumA
			} else if sumB < 0 {
				lbCone = -sumB
			}
			if lbCone*(1-boundSlack) > s.tk.Lambda() {
				s.st.PrunedPoints++
				continue
			}
		}
		id := s.tree.ids[start+i]
		if !s.accept(id) {
			continue
		}
		var t0 time.Time
		if profiling {
			t0 = time.Now()
		}
		v := math.Abs(vec.Dot(s.q, s.tree.points.Row(start+i)))
		s.st.IPCount++
		s.st.Candidates++
		s.tk.Push(id, v)
		if profiling {
			verifyDur += time.Since(t0)
		}
	}
	return verifyDur
}

// scanPredQuant is the quantized leaf scan for predicate searches: the ball
// cutoff trims the radius-sorted tail, the remaining rows are filtered by the
// compiled predicate, the cone bound prunes single survivors, and the integer
// code kernel (vec.CodeSelectIdx) removes rows whose error-bounded approximate
// score provably cannot beat the current k-th best, leaving only the remainder
// for float verification. All bounds prune against the λ snapshot at leaf
// entry — conservative, as in scanWithPruning — and predicate-with-quant
// searches are unbudgeted, so results stay bitwise equal to the unquantized
// filtered scan. Returns the verification time for the profile's phase split.
func (s *Searcher) scanPredQuant(n *nodeRec, ip float64) time.Duration {
	var verifyDur time.Duration
	start := int(n.start)
	count := int(n.count())
	lambda := s.tk.Lambda()
	absIP := math.Abs(ip)

	m := count
	if !s.opts.DisablePointBall {
		m = vec.BallCutoff(absIP, s.qnorm, lambda, s.tree.rx[start:start+count])
		s.st.PrunedPoints += int64(count - m)
	}
	useCone := !s.opts.DisablePointCone && n.centerNorm > 0
	var qcos, qsin float64
	if useCone {
		qcos = ip / n.centerNorm
		qsin = math.Sqrt(math.Max(0, s.sqQnorm-qcos*qcos))
	}
	if cap(s.sel) < m {
		s.sel = make([]int32, 0, m)
	}
	sel := s.sel[:0]
	for i := 0; i < m; i++ {
		if !s.pred.Match(s.tree.ids[start+i]) {
			continue
		}
		if useCone {
			sumA := qcos*s.tree.xcos[start+i] - qsin*s.tree.xsin[start+i]
			sumB := qcos*s.tree.xcos[start+i] + qsin*s.tree.xsin[start+i]
			var lbCone float64
			if sumA > 0 && qcos > 0 && s.tree.xcos[start+i] > 0 {
				lbCone = sumA
			} else if sumB < 0 {
				lbCone = -sumB
			}
			if lbCone*(1-boundSlack) > lambda {
				s.st.PrunedPoints++
				continue
			}
		}
		sel = append(sel, int32(i))
	}
	if len(sel) > 0 {
		d := s.tree.points.D
		codes := s.tree.codes[start*d : (start+m)*d]
		before := len(sel)
		sel = vec.CodeSelectIdx(codes, d, s.qf.W, s.qf.Base, s.qf.InvS, s.qf.Eps,
			lambda, sel)
		s.st.PrunedPoints += int64(before - len(sel))
	}
	s.sel = sel
	var t0 time.Time
	if s.opts.Profile != nil {
		t0 = time.Now()
	}
	for _, i := range sel {
		pos := start + int(i)
		v := math.Abs(vec.Dot(s.q, s.tree.points.Row(pos)))
		s.tk.Push(s.tree.ids[pos], v)
	}
	s.st.IPCount += int64(len(sel))
	s.st.Candidates += int64(len(sel))
	if s.opts.Profile != nil {
		verifyDur = time.Since(t0)
	}
	return verifyDur
}
