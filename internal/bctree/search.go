package bctree

import (
	"math"
	"time"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// Search answers a top-k P2HNNS query with Algorithm 5: the Ball-Tree
// branch-and-bound of Algorithm 3 augmented with
//
//   - collaborative inner product computing (Lemma 2): a visited internal
//     node computes the O(d) inner product for its left child only; the right
//     child's follows in O(1) from the node's own inner product, cutting the
//     node-level bound cost almost in half (Theorem 5);
//   - point-level pruning in the leaves (ScanWithPruning): the point-level
//     ball bound (Corollary 1) prunes the tail of the radius-sorted leaf in a
//     batch, and the point-level cone bound (Theorem 3) prunes single points
//     it misses, both in O(1) per point.
//
// The ablation switches in opts reproduce the paper's Figure 8 variants.
func (t *Tree) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)
	s := &searcher{tree: t, q: q, qnorm: vec.Norm(q), sqQnorm: 0, tk: tk, st: &st, opts: opts}
	s.sqQnorm = s.qnorm * s.qnorm
	ip := vec.Dot(q, t.root.center)
	st.IPCount++
	s.visit(t.root, ip)
	return tk.Results(), st
}

type searcher struct {
	tree    *Tree
	q       []float32
	qnorm   float64
	sqQnorm float64
	tk      *core.TopK
	st      *core.Stats
	opts    core.SearchOptions
}

// visit implements SubBCTreeSearch. ip is <q, n.center>, already known to the
// caller: computed directly for the root and for left children, derived via
// Lemma 2 for right children.
func (s *searcher) visit(n *node, ip float64) {
	if !s.opts.BudgetLeft(s.st.Candidates) {
		return
	}
	s.st.NodesVisited++
	lb := math.Abs(ip) - s.qnorm*n.radius
	if lb >= s.tk.Lambda() { // lb < 0 < Lambda never prunes, no max needed
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.scanWithPruning(n, ip)
		return
	}

	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	ipl := vec.Dot(s.q, n.left.center)
	s.st.IPCount++
	var ipr float64
	if s.opts.DisableCollabIP {
		ipr = vec.Dot(s.q, n.right.center)
		s.st.IPCount++
	} else {
		// Lemma 2: <q, rc.c> = (|N| <q, N.c> - |lc| <q, lc.c>) / |rc|.
		cn, cl, cr := float64(n.count()), float64(n.left.count()), float64(n.right.count())
		ipr = (cn*ip - cl*ipl) / cr
		s.st.CollabIPs++
	}
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(start))
	}

	first, second := n.left, n.right
	ipf, ips := ipl, ipr
	if s.preferRight(n, ipl, ipr) {
		first, second = n.right, n.left
		ipf, ips = ipr, ipl
	}
	s.visit(first, ipf)
	s.visit(second, ips)
}

// preferRight decides the branch order (Algorithm 5 lines 12-17).
func (s *searcher) preferRight(n *node, ipl, ipr float64) bool {
	if s.opts.Preference == core.PrefLowerBound {
		lbl := math.Abs(ipl) - s.qnorm*n.left.radius
		lbr := math.Abs(ipr) - s.qnorm*n.right.radius
		if lbl < 0 {
			lbl = 0
		}
		if lbr < 0 {
			lbr = 0
		}
		return lbr < lbl
	}
	return math.Abs(ipr) < math.Abs(ipl)
}

// scanWithPruning implements Algorithm 5 lines 18-26 over the contiguous,
// radius-sorted storage of the leaf.
func (s *searcher) scanWithPruning(n *node, ip float64) {
	s.st.LeavesVisited++
	var leafStart time.Time
	var verifyDur time.Duration
	profiling := s.opts.Profile != nil
	if profiling {
		leafStart = time.Now()
	}

	absIP := math.Abs(ip)
	useBall := !s.opts.DisablePointBall
	useCone := !s.opts.DisablePointCone && n.centerNorm > 0
	var qcos, qsin float64
	if useCone {
		// ||q|| cos theta = <q, N.c> / ||N.c||; the rejection follows from
		// Pythagoras. Rounding can push the projection a hair past ||q||.
		qcos = ip / n.centerNorm
		qsin = math.Sqrt(math.Max(0, s.sqQnorm-qcos*qcos))
	}

	count := int(n.count())
	for i := 0; i < count; i++ {
		if !s.opts.BudgetLeft(s.st.Candidates) {
			break
		}
		if useBall {
			// Corollary 1. r_x is descending, so this bound is ascending
			// along the scan: once it reaches lambda the rest of the leaf
			// is pruned in a batch.
			if lbBall := absIP - s.qnorm*n.rx[i]; lbBall >= s.tk.Lambda() {
				s.st.PrunedPoints += int64(count - i)
				break
			}
		}
		if useCone {
			// Theorem 3, via the paper's O(1) decomposition:
			//   ||x|| ||q|| cos(theta+phi) = qcos*xcos - qsin*xsin
			//   ||x|| ||q|| cos(|theta-phi|) = qcos*xcos + qsin*xsin.
			sumA := qcos*n.xcos[i] - qsin*n.xsin[i]
			sumB := qcos*n.xcos[i] + qsin*n.xsin[i]
			var lbCone float64
			if sumA > 0 && qcos > 0 && n.xcos[i] > 0 {
				lbCone = sumA
			} else if sumB < 0 {
				lbCone = -sumB
			}
			if lbCone*(1-boundSlack) >= s.tk.Lambda() {
				s.st.PrunedPoints++
				continue
			}
		}
		pos := n.start + int32(i)
		id := s.tree.ids[pos]
		if s.opts.Filter != nil && !s.opts.Filter(id) {
			continue
		}
		var t0 time.Time
		if profiling {
			t0 = time.Now()
		}
		d := math.Abs(vec.Dot(s.q, s.tree.points.Row(int(pos))))
		s.st.IPCount++
		s.st.Candidates++
		s.tk.Push(id, d)
		if profiling {
			verifyDur += time.Since(t0)
		}
	}

	if profiling {
		s.opts.Profile.Add(core.PhaseVerify, verifyDur)
		s.opts.Profile.Add(core.PhaseBound, time.Since(leafStart)-verifyDur)
	}
}
