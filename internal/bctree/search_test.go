package bctree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

const distTol = 1e-9

func sameDists(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := math.Abs(a[i].Dist - b[i].Dist)
		scale := math.Max(1, math.Max(a[i].Dist, b[i].Dist))
		if d > distTol*scale {
			return false
		}
	}
	return true
}

// allVariants enumerates the Figure 8 ablation combinations plus the
// collaborative-IP switch; with an unlimited budget all must be exact.
func allVariants() []core.SearchOptions {
	var out []core.SearchOptions
	for _, noBall := range []bool{false, true} {
		for _, noCone := range []bool{false, true} {
			for _, noCollab := range []bool{false, true} {
				out = append(out, core.SearchOptions{
					DisablePointBall: noBall,
					DisablePointCone: noCone,
					DisableCollabIP:  noCollab,
				})
			}
		}
	}
	return out
}

func TestSearchExactMatchesLinearScanAllVariants(t *testing.T) {
	for _, family := range []dataset.Family{dataset.FamilyClustered, dataset.FamilyUniform, dataset.FamilyHeavyTail, dataset.FamilyLowRank, dataset.FamilySparse} {
		raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: 20, Clusters: 8}, 600, 1)
		raw = dataset.Dedup(raw)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 10, 2)
		tree := Build(data, Config{LeafSize: 25, Seed: 3})
		scan := linearscan.New(data)
		for _, k := range []int{1, 5, 10} {
			for i := 0; i < queries.N; i++ {
				q := queries.Row(i)
				want, _ := scan.Search(q, core.SearchOptions{K: k})
				for _, variant := range allVariants() {
					variant.K = k
					got, _ := tree.Search(q, variant)
					if !sameDists(got, want) {
						t.Fatalf("%v k=%d query %d variant %+v: tree=%v scan=%v",
							family, k, i, variant, got, want)
					}
				}
			}
		}
	}
}

func TestSearchBothPreferencesExact(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 6}, 400, 5)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 6)
	tree := Build(data, Config{LeafSize: 20, Seed: 7})
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := scan.Search(q, core.SearchOptions{K: 3})
		for _, pref := range []core.Preference{core.PrefCenter, core.PrefLowerBound} {
			got, _ := tree.Search(q, core.SearchOptions{K: 3, Preference: pref})
			if !sameDists(got, want) {
				t.Fatalf("query %d pref %v: tree=%v scan=%v", i, pref, got, want)
			}
		}
	}
}

// TestPointPruningReducesCandidates checks the point of Section IV-B: with
// the point-level bounds on, fewer candidates are verified than without.
func TestPointPruningReducesCandidates(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 24, Clusters: 16}, 5000, 8)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 9)
	tree := Build(data, Config{LeafSize: 100, Seed: 1})
	var with, without core.Stats
	for i := 0; i < queries.N; i++ {
		_, s1 := tree.Search(queries.Row(i), core.SearchOptions{K: 10})
		with.Add(s1)
		_, s2 := tree.Search(queries.Row(i), core.SearchOptions{K: 10, DisablePointBall: true, DisablePointCone: true})
		without.Add(s2)
	}
	if with.Candidates >= without.Candidates {
		t.Fatalf("point-level pruning did not reduce verification: %d >= %d", with.Candidates, without.Candidates)
	}
	if with.PrunedPoints == 0 {
		t.Fatal("expected pruned points on clustered data")
	}
}

// TestCollabIPHalvesInnerProducts checks Theorem 5: with Lemma 2 on, the
// number of O(d) center inner products is (about) half of the variant that
// computes both children directly.
func TestCollabIPHalvesInnerProducts(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 8}, 3000, 10)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 11)
	tree := Build(data, Config{LeafSize: 50, Seed: 2})
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		_, on := tree.Search(q, core.SearchOptions{K: 1})
		_, off := tree.Search(q, core.SearchOptions{K: 1, DisableCollabIP: true})
		// Center IPs only: subtract the verification IPs (= Candidates).
		onIP := on.IPCount - on.Candidates
		offIP := off.IPCount - off.Candidates
		if on.CollabIPs == 0 {
			t.Fatal("collaborative IPs never used")
		}
		// Theorem 5: C_N -> (C_N+1)/2 over the same traversal. The traversals
		// coincide here because the derived inner products are exact.
		want := (offIP + 1) / 2
		if onIP != want {
			t.Fatalf("query %d: collab IP count %d, want (C_N+1)/2 = %d (C_N=%d)", i, onIP, want, offIP)
		}
	}
}

func TestSearchBudgetRespected(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 10}, 1000, 10)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 5, 11)
	tree := Build(data, Config{LeafSize: 40, Seed: 2})
	for _, budget := range []int{1, 10, 100, 999} {
		for i := 0; i < queries.N; i++ {
			res, st := tree.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			if st.Candidates > int64(budget) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
			if len(res) == 0 {
				t.Fatal("budgeted search must still return something")
			}
		}
	}
}

func TestSearchProfileRecordsPhases(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 4}, 800, 14)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 3, 15)
	tree := Build(data, Config{LeafSize: 30, Seed: 4})
	prof := &core.Profile{}
	for i := 0; i < queries.N; i++ {
		tree.Search(queries.Row(i), core.SearchOptions{K: 5, Profile: prof})
	}
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("profile must record verification time")
	}
	if prof.Get(core.PhaseBound) <= 0 {
		t.Fatal("profile must record bound time")
	}
}

// TestSearchFilteredProfileRecordsPhases pins the phase split on the
// filtered (point-at-a-time) leaf path: verification inner products must be
// charged to PhaseVerify, not lumped into PhaseBound.
func TestSearchFilteredProfileRecordsPhases(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 4}, 800, 14)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 3, 15)
	tree := Build(data, Config{LeafSize: 30, Seed: 4})
	prof := &core.Profile{}
	for i := 0; i < queries.N; i++ {
		tree.Search(queries.Row(i), core.SearchOptions{
			K:       5,
			Profile: prof,
			Filter:  func(id int32) bool { return id%2 == 0 },
		})
	}
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("filtered profile must record verification time")
	}
	if prof.Get(core.PhaseBound) <= 0 {
		t.Fatal("filtered profile must record bound time")
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}, {2}}).AppendOnes()
	tree := Build(data, Config{LeafSize: 2, Seed: 1})
	res, _ := tree.Search([]float32{1, -1}, core.SearchOptions{K: 10})
	if len(res) != 3 {
		t.Fatalf("k>n should return all 3 points, got %d", len(res))
	}
}

// coneBound evaluates the RHS of Inequality 10 for one leaf point, mirroring
// the production code paths for use in bound-soundness properties.
func coneBound(qcos, qsin, xcos, xsin float64) float64 {
	sumA := qcos*xcos - qsin*xsin
	sumB := qcos*xcos + qsin*xsin
	if sumA > 0 && qcos > 0 && xcos > 0 {
		return sumA
	}
	if sumB < 0 {
		return -sumB
	}
	return 0
}

// TestQuickPointBoundsSound checks, over random data and queries, the chain
// of Theorems 2-4: for every leaf point,
//
//	point-ball bound <= point-cone bound <= |<x,q>|  (up to rounding slack).
func TestQuickPointBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 20
		d := rng.Intn(14) + 2
		family := []dataset.Family{dataset.FamilyClustered, dataset.FamilyUniform, dataset.FamilyHeavyTail}[rng.Intn(3)]
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: family, RawDim: d, Clusters: 4}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 3, seed+1)
		tree := Build(data, Config{LeafSize: 16, Seed: seed})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			qnorm := vec.Norm(q)
			ok := true
			var walk func(ni int32)
			walk = func(ni int32) {
				nd := &tree.nodes[ni]
				if !nd.isLeaf() {
					walk(nd.left)
					walk(nd.right)
					return
				}
				ip := vec.Dot(q, tree.center(ni))
				absIP := math.Abs(ip)
				qcos := 0.0
				if nd.centerNorm > 0 {
					qcos = ip / nd.centerNorm
				}
				qsin := math.Sqrt(math.Max(0, qnorm*qnorm-qcos*qcos))
				for pos := int(nd.start); pos < int(nd.end); pos++ {
					truth := math.Abs(vec.Dot(q, tree.points.Row(pos)))
					ball := math.Max(0, absIP-qnorm*tree.rx[pos])
					cone := coneBound(qcos, qsin, tree.xcos[pos], tree.xsin[pos])
					tol := 1e-6 * (1 + truth + qnorm)
					if ball > truth+tol {
						ok = false // ball bound unsound
					}
					if cone > truth+tol {
						ok = false // cone bound unsound
					}
					if cone < ball-tol {
						ok = false // Theorem 4: cone must dominate ball
					}
				}
			}
			walk(0)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCollabIPIdentity checks Lemma 2 directly on built trees: the
// derived right-child inner product matches the direct computation.
func TestQuickCollabIPIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 40
		d := rng.Intn(10) + 2
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyHeavyTail, RawDim: d}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 2, seed+1)
		tree := Build(data, Config{LeafSize: 10, Seed: seed})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			ok := true
			var walk func(ni int32)
			walk = func(ni int32) {
				nd := &tree.nodes[ni]
				if nd.isLeaf() {
					return
				}
				l, r := &tree.nodes[nd.left], &tree.nodes[nd.right]
				ip := vec.Dot(q, tree.center(ni))
				ipl := vec.Dot(q, tree.center(nd.left))
				ipr := vec.Dot(q, tree.center(nd.right))
				cn, cl, cr := float64(nd.count()), float64(l.count()), float64(r.count())
				derived := (cn*ip - cl*ipl) / cr
				scale := math.Max(1, math.Abs(ipr))
				// float32 center storage dominates the error budget here.
				if math.Abs(derived-ipr) > 1e-3*scale {
					ok = false
				}
				walk(nd.left)
				walk(nd.right)
			}
			walk(0)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickExactInvariantToParams: exact results do not depend on leaf size,
// preference, or ablation switches.
func TestQuickExactInvariantToParams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(250) + 50
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyUniform, RawDim: 8}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 2, seed+1)
		ref := linearscan.New(data)
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			want, _ := ref.Search(q, core.SearchOptions{K: 4})
			for _, leaf := range []int{5, 37, 1000} {
				tree := Build(data, Config{LeafSize: leaf, Seed: seed})
				for _, variant := range allVariants() {
					variant.K = 4
					got, _ := tree.Search(q, variant)
					if !sameDists(got, want) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
