package bctree

import (
	"fmt"
	"math"

	"p2h/internal/core"
	"p2h/internal/exec"
	"p2h/internal/vec"
)

// SearchBatch answers one top-k query per row of queries (lifted, unit
// normals — the same contract as Search) in a single shared traversal: the
// arena is walked once for the whole group, collaborative inner products
// (Lemma 2) apply per query, the point-level ball bound cuts each query's
// verified prefix of the radius-sorted leaf, and the union of those prefixes
// is verified for all active queries by one vec.DotBlockMulti call — the
// leaf block streams from memory once per batch instead of once per query.
// The point-level cone bound is skipped in batch mode: it selects per-query
// survivor subsets that would break the dense multi-query verification, and
// with the shared row loads the dense scan is the cheaper trade. Results and
// their ordering are bitwise identical to per-query Search calls (exact
// results are canonical; see internal/exec).
//
// Batches that are not exec.Eligible (budgeted, filtered, or profiled)
// fall back to the per-query path on one pooled Searcher, preserving
// per-query traversal semantics exactly.
func (t *Tree) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	if queries.D != t.points.D {
		panic(fmt.Sprintf("bctree: batch queries have dimension %d, want %d", queries.D, t.points.D))
	}
	opts = opts.Normalized()
	out := make([][]core.Result, queries.N)
	stats := make([]core.Stats, queries.N)
	if queries.N == 0 {
		return out, stats
	}
	if !exec.Eligible(opts) || queries.N == 1 {
		s := t.acquireSearcher()
		exec.Fallback(s, queries, opts, out, stats)
		t.releaseSearcher(s)
		return out, stats
	}
	b := t.batchers.Get()
	b.tree = t
	b.run(queries, opts, out, stats)
	t.batchers.Put(b)
	return out, stats
}

// batchSearcher carries one shared traversal's state; it is pooled on the
// tree and reaches a zero-allocation steady state for the traversal itself
// (the returned result slices are the only per-batch allocations).
type batchSearcher struct {
	tree    *Tree
	queries *vec.Matrix
	opts    core.SearchOptions
	scr     exec.BatchScratch
	stats   []core.Stats
	quant   bool // quantized leaf filtering active for this batch
}

func (b *batchSearcher) run(queries *vec.Matrix, opts core.SearchOptions, out [][]core.Result, stats []core.Stats) {
	t := b.tree
	nq := queries.N
	d := queries.D
	b.queries, b.opts, b.stats = queries, opts, stats
	scr := &b.scr
	scr.Reset(queries, opts.K)
	b.quant = t.qz != nil && !opts.DisableQuantFilter
	if b.quant {
		scr.ResetQuant(t.qz, queries)
	}

	mark := scr.Mark()
	act, ips := scr.Alloc(nq)
	for i := range act {
		act[i] = int32(i)
	}
	root := scr.Center64(0, t.center(0))
	for i := range act {
		ips[i] = vec.Dot64(scr.Q64[i*d:(i+1)*d], root)
		stats[i].IPCount++
	}
	b.visit(0, act, ips)
	scr.Release(mark)

	for i := 0; i < nq; i++ {
		out[i] = scr.Heaps[i].DrainInto(nil)
	}
	b.queries, b.stats = nil, nil
}

// visit walks one node for the whole group: the node-level ball bound
// filters the active set per query (strictly, as in Searcher.visit), leaves
// are verified for all survivors at once, and internal nodes recurse with
// per-child segments carved from the scratch arena. The left child's inner
// product costs O(d) per active query; the right child's follows from
// Lemma 2 in O(1) unless the ablation switch disables it. The branch order
// is the group's center-preference vote — order affects only pruning work,
// never results, which are canonical.
func (b *batchSearcher) visit(ni int32, act []int32, ips []float64) {
	t := b.tree
	scr := &b.scr
	n := &t.nodes[ni]
	live := 0
	for j, qi := range act {
		st := &b.stats[qi]
		st.NodesVisited++
		lb := math.Abs(ips[j]) - scr.QNorms[qi]*n.radius
		if lb > scr.Heaps[qi].Lambda() {
			st.PrunedNodes++
			continue
		}
		act[live], ips[live] = qi, ips[j]
		live++
	}
	if live == 0 {
		return
	}
	act, ips = act[:live], ips[:live]
	if n.isLeaf() {
		b.scanLeaf(n, act, ips)
		return
	}

	mark := scr.Mark()
	actL, ipsL := scr.Alloc(live)
	actR, ipsR := scr.Alloc(live)
	copy(actL, act)
	copy(actR, act)
	d := b.queries.D
	cl64 := scr.Center64(0, t.center(n.left))
	var cr64 []float64
	if b.opts.DisableCollabIP {
		cr64 = scr.Center64(1, t.center(n.right))
	}
	cn := float64(n.count())
	cl := float64(t.nodes[n.left].count())
	cr := float64(t.nodes[n.right].count())
	var sumL, sumR float64
	for j, qi := range act {
		q64 := scr.Q64[int(qi)*d : (int(qi)+1)*d]
		ipl := vec.Dot64(q64, cl64)
		b.stats[qi].IPCount++
		var ipr float64
		if b.opts.DisableCollabIP {
			ipr = vec.Dot64(q64, cr64)
			b.stats[qi].IPCount++
		} else {
			// Lemma 2: <q, rc.c> = (|N| <q, N.c> - |lc| <q, lc.c>) / |rc|.
			ipr = (cn*ips[j] - cl*ipl) / cr
			b.stats[qi].CollabIPs++
		}
		ipsL[j], ipsR[j] = ipl, ipr
		sumL += math.Abs(ipl)
		sumR += math.Abs(ipr)
	}
	if sumR < sumL {
		b.visit(n.right, actR, ipsR)
		b.visit(n.left, actL, ipsL)
	} else {
		b.visit(n.left, actL, ipsL)
		b.visit(n.right, actR, ipsR)
	}
	scr.Release(mark)
}

// scanLeaf verifies the leaf for every active query: the point-level ball
// bound (Corollary 1, strict) cuts each query's prefix of the
// radius-sorted leaf by binary search, then one multi-query kernel call
// computes the distance block over the union prefix and each query keeps
// its own share. A query whose prefix is empty costs nothing beyond its
// pruning bookkeeping.
func (b *batchSearcher) scanLeaf(n *nodeRec, act []int32, ips []float64) {
	if b.quant {
		b.scanLeafQuant(n, act, ips)
		return
	}
	t := b.tree
	m := int(n.count())
	if m == 0 {
		return
	}
	start := int(n.start)
	nact := len(act)
	prefix := b.scr.Prefix(nact)
	maxM := 0
	for j, qi := range act {
		st := &b.stats[qi]
		st.LeavesVisited++
		mj := m
		if !b.opts.DisablePointBall {
			mj = vec.BallCutoff(math.Abs(ips[j]), b.scr.QNorms[qi],
				b.scr.Heaps[qi].Lambda(), t.rx[start:start+m])
			st.PrunedPoints += int64(m - mj)
		}
		prefix[j] = int32(mj)
		if mj > maxM {
			maxM = mj
		}
	}
	if maxM == 0 {
		return
	}

	// Sort the active set by prefix length (descending) so the kernel can
	// stop each query's products exactly at its own pruning cut.
	exec.SortByLimitDesc(act, prefix)
	d := t.points.D
	rows := t.points.Data[start*d : (start+maxM)*d]
	dists := b.scr.Dists(maxM * nact)
	vec.DotBlockMultiIdx(b.scr.Q64, d, act, prefix, rows, b.scr.Row64(d), dists)
	for j, qi := range act {
		mj := int(prefix[j])
		if mj == 0 {
			continue
		}
		st := &b.stats[qi]
		st.IPCount += int64(mj)
		st.Candidates += int64(mj)
		tk := &b.scr.Heaps[qi]
		for r := 0; r < mj; r++ {
			tk.Push(t.ids[start+r], math.Abs(dists[r*nact+j]))
		}
	}
}

// scanLeafQuant is the batched quantized leaf scan. The point-level ball
// bound still cuts each query's prefix of the radius-sorted leaf first; the
// code filter then runs over that prefix of the (4x smaller, cache-resident)
// code block, and only its survivors are verified. As in Ball-Tree batch
// mode, each query filters and verifies independently instead of sharing a
// multi-query kernel — the filter removes most rows, so widening the float
// stream for all queries would do work no survivor needs. Queries whose heap
// is not yet full fall back to a dense float scan of their prefix, exactly
// like the single-query path. Results stay bitwise identical to per-query
// Search (canonical exact results; see internal/exec).
func (b *batchSearcher) scanLeafQuant(n *nodeRec, act []int32, ips []float64) {
	t := b.tree
	m := int(n.count())
	if m == 0 {
		return
	}
	start := int(n.start)
	d := t.points.D
	for j, qi := range act {
		st := &b.stats[qi]
		st.LeavesVisited++
		tk := &b.scr.Heaps[qi]
		mj := m
		if !b.opts.DisablePointBall {
			mj = vec.BallCutoff(math.Abs(ips[j]), b.scr.QNorms[qi],
				tk.Lambda(), t.rx[start:start+m])
			st.PrunedPoints += int64(m - mj)
		}
		if mj == 0 {
			continue
		}
		rows := t.points.Data[start*d : (start+mj)*d]
		q := b.queries.Row(int(qi))
		if !tk.Full() {
			dists := b.scr.Dists(mj)
			vec.DotBlock(q, rows, dists)
			st.IPCount += int64(mj)
			st.Candidates += int64(mj)
			for r := 0; r < mj; r++ {
				tk.Push(t.ids[start+r], math.Abs(dists[r]))
			}
			continue
		}
		w, base, invS, eps := b.scr.QuantFilter(int(qi), d)
		sel := vec.CodeSelect(t.codes[start*d:(start+mj)*d], d,
			w, base, invS, eps, tk.Lambda(), b.scr.Sel(mj))
		st.PrunedPoints += int64(mj - len(sel))
		st.IPCount += int64(len(sel))
		st.Candidates += int64(len(sel))
		if len(sel) == mj {
			dists := b.scr.Dists(mj)
			vec.DotBlock(q, rows, dists)
			for r := 0; r < mj; r++ {
				tk.Push(t.ids[start+r], math.Abs(dists[r]))
			}
		} else {
			for _, r := range sel {
				pos := start + int(r)
				tk.Push(t.ids[pos], math.Abs(vec.Dot(q, t.points.Row(pos))))
			}
		}
	}
}
