package bctree

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 14, Clusters: 6}, 700, 1)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 2)
	orig := Build(data, Config{LeafSize: 30, Seed: 3})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != orig.N() || restored.Dim() != orig.Dim() ||
		restored.Nodes() != orig.Nodes() || restored.Leaves() != orig.Leaves() {
		t.Fatalf("metadata mismatch: %s vs %s", restored, orig)
	}
	checkTreeInvariants(t, restored)
	// Restored trees must search identically, including pruning stats, and
	// across ablation variants (the leaf arrays must survive the trip).
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		for _, variant := range allVariants() {
			variant.K = 7
			a, sa := orig.Search(q, variant)
			b, sb := restored.Search(q, variant)
			if len(a) != len(b) {
				t.Fatalf("query %d: result counts differ", i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("query %d rank %d: %v != %v", i, j, a[j], b[j])
				}
			}
			if sa != sb {
				t.Fatalf("query %d: stats differ: %+v != %+v", i, sa, sb)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 6}, 100, 4)
	data := raw.AppendOnes()
	orig := Build(data, Config{LeafSize: 10, Seed: 5})
	path := filepath.Join(t.TempDir(), "tree.p2hbc")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Nodes() != orig.Nodes() {
		t.Fatalf("nodes %d != %d", restored.Nodes(), orig.Nodes())
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 5}, 80, 6)
	data := raw.AppendOnes()
	orig := Build(data, Config{LeafSize: 10, Seed: 7})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XXXXXXXX"), good[8:]...),
		"truncated":      good[:len(good)-9],
		"balltree magic": append([]byte("P2HBT001"), good[8:]...),
	}
	for name, payload := range cases {
		if _, err := Load(bytes.NewReader(payload)); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}
