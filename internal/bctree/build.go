package bctree

import (
	"math"
	"math/rand"
	"sort"

	"p2h/internal/partition"
	"p2h/internal/vec"
)

// Build constructs a BC-Tree over the lifted data matrix (rows x = (p; 1))
// with Algorithm 4. It uses the same seed-grow splitting rule as Ball-Tree
// and maintains the same center and radius per node, plus the leaf-level ball
// and cone structures. Internal-node centers are assembled from the children
// via Lemma 1 in O(d) instead of O(d|N|). The input matrix is not modified;
// the tree keeps a reordered copy so every leaf occupies a contiguous range
// of rows, sorted by descending r_x for batch pruning.
func Build(data *vec.Matrix, cfg Config) *Tree {
	if data == nil || data.N == 0 {
		panic("bctree: empty data")
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tree{
		ids:      make([]int32, data.N),
		leafSize: cfg.LeafSize,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{data: data, rng: rng, tree: t}
	t.root = b.build(t.ids, 0)
	t.points = data.SubsetRows(t.ids)
	return t
}

type builder struct {
	data *vec.Matrix
	rng  *rand.Rand
	tree *Tree
}

// build recursively constructs the subtree over ids, which occupies positions
// [offset, offset+len(ids)) of the final reordered storage. It partitions
// (and, in leaves, sorts) ids in place.
func (b *builder) build(ids []int32, offset int32) *node {
	b.tree.nodes++
	if len(ids) <= b.tree.leafSize {
		b.tree.leaves++
		return b.buildLeaf(ids, offset)
	}

	n := &node{start: offset, end: offset + int32(len(ids))}
	nl := partition.SeedGrow(b.data, ids, b.rng)
	n.left = b.build(ids[:nl], offset)
	n.right = b.build(ids[nl:], offset+int32(nl))

	// Lemma 1: N.c * |N| = N.lc.c * |N.lc| + N.rc.c * |N.rc|, so the center
	// of an internal node costs O(d) once its children are built.
	n.center = combineCenters(n.left, n.right)
	n.centerNorm = vec.Norm(n.center)
	_, maxDist := b.data.MaxDistFrom(ids, n.center)
	n.radius = maxDist * (1 + radiusSlack)
	return n
}

// combineCenters applies Lemma 1 to derive a parent's center from its
// children's centers and counts.
func combineCenters(l, r *node) []float32 {
	cl, cr := float64(l.count()), float64(r.count())
	inv := 1 / (cl + cr)
	out := make([]float32, len(l.center))
	for i := range out {
		out[i] = float32((cl*float64(l.center[i]) + cr*float64(r.center[i])) * inv)
	}
	return out
}

// buildLeaf computes the leaf's ball (center, radius, r_x) and cone
// (||x||cos phi_x, ||x||sin phi_x) structures — Algorithm 4 lines 3-9 — and
// sorts the leaf's ids in descending order of r_x so the point-level ball
// bound prunes in a batch.
func (b *builder) buildLeaf(ids []int32, offset int32) *node {
	n := &node{
		center: b.data.Centroid(ids),
		start:  offset,
		end:    offset + int32(len(ids)),
	}
	n.centerNorm = vec.Norm(n.center)

	radii := make([]float64, len(ids))
	for i, id := range ids {
		radii[i] = vec.Dist(b.data.Row(int(id)), n.center)
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool { return radii[order[a]] > radii[order[c]] })

	sortedIDs := make([]int32, len(ids))
	n.rx = make([]float64, len(ids))
	n.xcos = make([]float64, len(ids))
	n.xsin = make([]float64, len(ids))
	for pos, idx := range order {
		id := ids[idx]
		sortedIDs[pos] = id
		r := radii[idx]
		n.rx[pos] = r * (1 + radiusSlack)
		x := b.data.Row(int(id))
		xnorm := vec.Norm(x)
		var xcos float64
		if n.centerNorm > 0 {
			xcos = vec.Dot(x, n.center) / n.centerNorm
		}
		// Clamp |cos phi_x| <= 1 scaled by ||x||, then derive the rejection;
		// rounding can push the projection a hair past the norm.
		if xcos > xnorm {
			xcos = xnorm
		} else if xcos < -xnorm {
			xcos = -xnorm
		}
		n.xcos[pos] = xcos
		n.xsin[pos] = math.Sqrt(math.Max(0, xnorm*xnorm-xcos*xcos))
	}
	copy(ids, sortedIDs)
	if n.count() > 0 {
		n.radius = n.rx[0] // already slack-inflated, and rx is descending
	}
	return n
}
