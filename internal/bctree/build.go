package bctree

import (
	"math"
	"math/rand"
	"sort"

	"p2h/internal/partition"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Build constructs a BC-Tree over the lifted data matrix (rows x = (p; 1))
// with Algorithm 4. It uses the same seed-grow splitting rule as Ball-Tree
// and maintains the same center and radius per node, plus the point-level
// ball and cone structures. Internal-node centers are assembled from the
// children via Lemma 1 in O(d) instead of O(d|N|). The input matrix is not
// modified; the tree keeps a reordered copy so every leaf occupies a
// contiguous range of rows, sorted by descending r_x for batch pruning.
// Nodes are appended to the flat arena in preorder, so the root is index 0
// and both children of a node sit at larger indices.
func Build(data *vec.Matrix, cfg Config) *Tree {
	if data == nil || data.N == 0 {
		panic("bctree: empty data")
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tree{
		ids:      make([]int32, data.N),
		rx:       make([]float64, data.N),
		xcos:     make([]float64, data.N),
		xsin:     make([]float64, data.N),
		leafSize: cfg.LeafSize,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{data: data, rng: rng, tree: t}
	b.build(t.ids, 0)
	t.centers = &vec.Matrix{Data: b.centers, N: len(t.nodes), D: data.D}
	t.points = data.SubsetRows(t.ids)
	if cfg.Quantize {
		t.qz = quant.NewQuantizer(t.points)
		t.codes = t.qz.EncodeMatrix(t.points)
	}
	return t
}

type builder struct {
	data    *vec.Matrix
	rng     *rand.Rand
	tree    *Tree
	centers []float32 // packed centers, row ni = center of arena node ni
}

// build recursively constructs the subtree over ids, which occupies positions
// [offset, offset+len(ids)) of the final reordered storage. It partitions
// (and, in leaves, sorts) ids in place and returns the arena index of the
// subtree root. Internal nodes are appended before their children (preorder)
// with their center filled in afterwards via Lemma 1.
func (b *builder) build(ids []int32, offset int32) int32 {
	if len(ids) <= b.tree.leafSize {
		b.tree.leaves++
		return b.buildLeaf(ids, offset)
	}

	d := b.data.D
	ni := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, nodeRec{
		start: offset,
		end:   offset + int32(len(ids)),
		left:  noChild,
		right: noChild,
	})
	b.centers = append(b.centers, make([]float32, d)...) // filled below

	nl := partition.SeedGrow(b.data, ids, b.rng)
	left := b.build(ids[:nl], offset)
	right := b.build(ids[nl:], offset+int32(nl))
	b.tree.nodes[ni].left = left
	b.tree.nodes[ni].right = right

	// Lemma 1: N.c * |N| = N.lc.c * |N.lc| + N.rc.c * |N.rc|, so the center
	// of an internal node costs O(d) once its children are built.
	center := b.centers[int(ni)*d : (int(ni)+1)*d]
	combineCenters(center, &b.tree.nodes[ni], b.tree, b.centers)
	b.tree.nodes[ni].centerNorm = vec.Norm(center)
	_, maxDist := b.data.MaxDistFrom(ids, center)
	b.tree.nodes[ni].radius = maxDist * (1 + radiusSlack)
	return ni
}

// combineCenters applies Lemma 1 to derive a parent's center from its
// children's centers and counts, writing into dst.
func combineCenters(dst []float32, n *nodeRec, t *Tree, centers []float32) {
	d := len(dst)
	lc := centers[int(n.left)*d : (int(n.left)+1)*d]
	rc := centers[int(n.right)*d : (int(n.right)+1)*d]
	cl := float64(t.nodes[n.left].count())
	cr := float64(t.nodes[n.right].count())
	inv := 1 / (cl + cr)
	for i := range dst {
		dst[i] = float32((cl*float64(lc[i]) + cr*float64(rc[i])) * inv)
	}
}

// buildLeaf computes the leaf's ball (center, radius, r_x) and cone
// (||x||cos phi_x, ||x||sin phi_x) structures — Algorithm 4 lines 3-9 — and
// sorts the leaf's ids in descending order of r_x so the point-level ball
// bound prunes in a batch. The structures land in the tree's
// position-indexed arrays at [offset, offset+len(ids)).
func (b *builder) buildLeaf(ids []int32, offset int32) int32 {
	t := b.tree
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, nodeRec{
		start: offset,
		end:   offset + int32(len(ids)),
		left:  noChild,
		right: noChild,
	})
	center := b.data.Centroid(ids)
	b.centers = append(b.centers, center...)
	centerNorm := vec.Norm(center)
	t.nodes[ni].centerNorm = centerNorm

	radii := make([]float64, len(ids))
	for i, id := range ids {
		radii[i] = vec.Dist(b.data.Row(int(id)), center)
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool { return radii[order[a]] > radii[order[c]] })

	sortedIDs := make([]int32, len(ids))
	for pos, idx := range order {
		id := ids[idx]
		sortedIDs[pos] = id
		gpos := int(offset) + pos
		r := radii[idx]
		t.rx[gpos] = r * (1 + radiusSlack)
		x := b.data.Row(int(id))
		xnorm := vec.Norm(x)
		var xcos float64
		if centerNorm > 0 {
			xcos = vec.Dot(x, center) / centerNorm
		}
		// Clamp |cos phi_x| <= 1 scaled by ||x||, then derive the rejection;
		// rounding can push the projection a hair past the norm.
		if xcos > xnorm {
			xcos = xnorm
		} else if xcos < -xnorm {
			xcos = -xnorm
		}
		t.xcos[gpos] = xcos
		t.xsin[gpos] = math.Sqrt(math.Max(0, xnorm*xnorm-xcos*xcos))
	}
	copy(ids, sortedIDs)
	if len(ids) > 0 {
		t.nodes[ni].radius = t.rx[offset] // already slack-inflated, rx descending
	}
	return ni
}
