package bctree

import (
	"bytes"
	"io"
	"os"

	"p2h/internal/binio"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Serialization formats. Version 2 mirrors the in-memory flat arena:
// columnar node arrays and position-indexed point-level structures instead
// of a recursive record stream. Version 3 is version 2 plus a trailing
// quantization section (grid tables and the 8-bit code mirror). Version 1
// (the pointer tree era) is still accepted by Load and converted to the
// arena on the fly; Save writes version 2, or version 3 when the tree is
// quantized, so unquantized files stay readable by older code.
var (
	magicV1 = []byte("P2HBC001")
	magicV2 = []byte("P2HBC002")
	magicV3 = []byte("P2HBC003")
)

// maxSerialDim guards against corrupt headers allocating absurd buffers.
const maxSerialDim = 1 << 20

// Save writes the tree to w in the version 2 flat format, self-contained so
// Load can restore it without the original data matrix. The point-level
// ball and cone arrays ride along so restored trees prune identically.
func (t *Tree) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	if t.qz != nil {
		bw.Bytes(magicV3)
	} else {
		bw.Bytes(magicV2)
	}
	bw.I32(int32(t.leafSize))
	bw.I32(int32(t.points.N))
	bw.I32(int32(t.points.D))
	bw.I32(int32(len(t.nodes)))
	bw.I32(int32(t.leaves))
	bw.I32s(t.ids)
	bw.F32s(t.points.Data)
	bw.F32s(t.centers.Data)
	for i := range t.nodes {
		bw.F64(t.nodes[i].radius)
		bw.F64(t.nodes[i].centerNorm)
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		bw.I32(n.start)
		bw.I32(n.end)
		bw.I32(n.left)
		bw.I32(n.right)
	}
	bw.F64s(t.rx)
	bw.F64s(t.xcos)
	bw.F64s(t.xsin)
	if t.qz != nil {
		quant.WriteSection(bw, t.qz, t.codes)
	}
	return bw.Flush()
}

// Load restores a tree written by Save (version 2) or by the version 1
// format of earlier releases. The stream is validated structurally; corrupt
// input yields an error wrapping binio.ErrCorrupt.
func Load(r io.Reader) (*Tree, error) {
	br := binio.NewReader(r)
	magic := br.Raw(len(magicV2))
	if err := br.Err(); err != nil {
		return nil, err
	}
	v3 := bytes.Equal(magic, magicV3)
	v2 := v3 || bytes.Equal(magic, magicV2)
	if !v2 && !bytes.Equal(magic, magicV1) {
		br.Fail("bad magic %q", magic)
		return nil, br.Err()
	}

	leafSize := int(br.I32())
	n := int(br.I32())
	d := int(br.I32())
	nodes := int(br.I32())
	leaves := int(br.I32())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if leafSize <= 0 || n <= 0 || d <= 0 || d > maxSerialDim {
		br.Fail("bad header: leafSize=%d n=%d d=%d", leafSize, n, d)
		return nil, br.Err()
	}
	if nodes < 1 || nodes > 2*n || leaves < 1 || leaves > nodes {
		br.Fail("bad node counts: nodes=%d leaves=%d n=%d", nodes, leaves, n)
		return nil, br.Err()
	}
	t := &Tree{leafSize: leafSize, leaves: leaves}
	t.ids = br.I32s(n)
	if br.Err() == nil {
		for _, id := range t.ids {
			if id < 0 || int(id) >= n {
				br.Fail("id %d out of range", id)
				break
			}
		}
	}
	data := br.F32s(n * d)
	if err := br.Err(); err != nil {
		return nil, err
	}
	t.points = &vec.Matrix{Data: data, N: n, D: d}

	if v2 {
		loadFlat(br, t, nodes, d)
	} else {
		loadLegacy(br, t, nodes, d)
	}
	if v3 && br.Err() == nil {
		t.qz, t.codes = quant.ReadSection(br, t.points)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if err := validateArena(br, t, leaves); err != nil {
		return nil, err
	}
	return t, nil
}

// loadFlat reads the version 2 columnar node arrays and the position-indexed
// point-level structures.
func loadFlat(br *binio.Reader, t *Tree, nodes, d int) {
	centers := br.F32s(nodes * d)
	if br.Err() != nil {
		return
	}
	t.centers = &vec.Matrix{Data: centers, N: nodes, D: d}
	t.nodes = make([]nodeRec, nodes)
	for i := range t.nodes {
		t.nodes[i].radius = br.F64()
		t.nodes[i].centerNorm = br.F64()
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		n.start = br.I32()
		n.end = br.I32()
		n.left = br.I32()
		n.right = br.I32()
	}
	n := t.points.N
	t.rx = br.F64s(n)
	t.xcos = br.F64s(n)
	t.xsin = br.F64s(n)
}

// loadLegacy reads the version 1 recursive record stream (leaf flag, range,
// radius, centerNorm, center, per-leaf point arrays, then children),
// appending nodes to the arena in the file's preorder and scattering the
// leaf arrays into the position-indexed layout.
func loadLegacy(br *binio.Reader, t *Tree, nodes, d int) {
	n := t.points.N
	t.centers = &vec.Matrix{Data: make([]float32, 0, nodes*d), N: 0, D: d}
	t.rx = make([]float64, n)
	t.xcos = make([]float64, n)
	t.xsin = make([]float64, n)
	ld := &legacyLoader{br: br, t: t, budget: nodes}
	ld.load()
	if br.Err() == nil && ld.budget != 0 {
		br.Fail("node count mismatch: %d unread", ld.budget)
	}
	t.centers.N = len(t.nodes)
}

type legacyLoader struct {
	br     *binio.Reader
	t      *Tree
	budget int // remaining nodes allowed; bounds recursion on corrupt input
}

func (ld *legacyLoader) load() int32 {
	if ld.budget <= 0 {
		ld.br.Fail("more nodes than declared")
		return noChild
	}
	ld.budget--
	ni := int32(len(ld.t.nodes))
	leaf := ld.br.U8()
	ld.t.nodes = append(ld.t.nodes, nodeRec{
		start: ld.br.I32(),
		end:   ld.br.I32(),
		left:  noChild,
		right: noChild,
	})
	nd := &ld.t.nodes[ni]
	nd.radius = ld.br.F64()
	nd.centerNorm = ld.br.F64()
	ld.t.centers.Data = append(ld.t.centers.Data, ld.br.F32s(ld.t.centers.D)...)
	if ld.br.Err() != nil {
		return ni
	}
	if nd.start < 0 || nd.end <= nd.start || nd.end > int32(ld.t.points.N) {
		ld.br.Fail("node range [%d,%d) invalid", nd.start, nd.end)
		return ni
	}
	if leaf == 1 {
		cnt := int(nd.count())
		start := int(nd.start)
		copy(ld.t.rx[start:start+cnt], ld.br.F64s(cnt))
		copy(ld.t.xcos[start:start+cnt], ld.br.F64s(cnt))
		copy(ld.t.xsin[start:start+cnt], ld.br.F64s(cnt))
		return ni
	}
	left := ld.load()
	right := ld.load()
	ld.t.nodes[ni].left = left
	ld.t.nodes[ni].right = right
	return ni
}

// validateArena checks the structural invariants shared by both formats:
// in-range node fields, the root covering [0, n), children partitioning
// their parent at strictly larger arena indices, every node reachable from
// the root exactly once with the declared leaf count, and descending radii
// within each leaf's slice of the point-level arrays.
func validateArena(br *binio.Reader, t *Tree, leaves int) error {
	nodes := int32(len(t.nodes))
	n := int32(t.points.N)
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.start < 0 || nd.end <= nd.start || nd.end > n {
			br.Fail("node %d range [%d,%d) invalid for n=%d", i, nd.start, nd.end, n)
			return br.Err()
		}
		if nd.radius < 0 || nd.centerNorm < 0 {
			br.Fail("node %d negative radius %v or norm %v", i, nd.radius, nd.centerNorm)
			return br.Err()
		}
		if (nd.left == noChild) != (nd.right == noChild) {
			br.Fail("node %d half-leaf: left=%d right=%d", i, nd.left, nd.right)
			return br.Err()
		}
		if nd.left != noChild {
			if nd.left <= int32(i) || nd.left >= nodes || nd.right <= int32(i) || nd.right >= nodes {
				br.Fail("node %d children %d,%d out of order", i, nd.left, nd.right)
				return br.Err()
			}
		}
	}
	if t.nodes[0].start != 0 || t.nodes[0].end != n {
		br.Fail("root range [%d,%d) != [0,%d)", t.nodes[0].start, t.nodes[0].end, n)
		return br.Err()
	}
	visited := make([]bool, nodes)
	leafCount := 0
	var walk func(ni int32)
	walk = func(ni int32) {
		if br.Err() != nil {
			return
		}
		if visited[ni] {
			br.Fail("node %d reachable twice", ni)
			return
		}
		visited[ni] = true
		nd := &t.nodes[ni]
		if nd.isLeaf() {
			leafCount++
			for p := nd.start + 1; p < nd.end; p++ {
				if t.rx[p] > t.rx[p-1] {
					br.Fail("leaf %d radii not descending at position %d", ni, p)
					return
				}
			}
			return
		}
		l, r := &t.nodes[nd.left], &t.nodes[nd.right]
		if l.start != nd.start || r.end != nd.end || l.end != r.start {
			br.Fail("children do not partition [%d,%d)", nd.start, nd.end)
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(0)
	if err := br.Err(); err != nil {
		return err
	}
	for i, ok := range visited {
		if !ok {
			br.Fail("node %d unreachable from root", i)
			return br.Err()
		}
	}
	if leafCount != leaves {
		br.Fail("leaf count %d != declared %d", leafCount, leaves)
		return br.Err()
	}
	return nil
}

// SaveFile writes the tree to the named file.
func (t *Tree) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores a tree from the named file.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
