package bctree

import (
	"bytes"
	"io"
	"os"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/dataset"
)

// writeLegacyV1 emits the version 1 recursive record stream for a tree, as
// (*Tree).Save wrote it before the flat arena era: each leaf record carries
// its own slices of the point-level arrays. Tests use it to prove the loader
// still understands the old format for arbitrary trees; the checked-in
// fixture proves byte compatibility with the real historical writer.
func writeLegacyV1(w io.Writer, t *Tree) error {
	bw := binio.NewWriter(w)
	bw.Bytes(magicV1)
	bw.I32(int32(t.leafSize))
	bw.I32(int32(t.points.N))
	bw.I32(int32(t.points.D))
	bw.I32(int32(len(t.nodes)))
	bw.I32(int32(t.leaves))
	bw.I32s(t.ids)
	bw.F32s(t.points.Data)
	var save func(ni int32)
	save = func(ni int32) {
		n := &t.nodes[ni]
		if n.isLeaf() {
			bw.U8(1)
		} else {
			bw.U8(0)
		}
		bw.I32(n.start)
		bw.I32(n.end)
		bw.F64(n.radius)
		bw.F64(n.centerNorm)
		bw.F32s(t.center(ni))
		if n.isLeaf() {
			bw.F64s(t.rx[n.start:n.end])
			bw.F64s(t.xcos[n.start:n.end])
			bw.F64s(t.xsin[n.start:n.end])
			return
		}
		save(n.left)
		save(n.right)
	}
	save(0)
	return bw.Flush()
}

// expectSameSearch asserts two trees answer a deterministic query workload
// identically across all ablation variants, including pruning stats.
func expectSameSearch(t *testing.T, a, b *Tree, seed int64) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "fixture", Family: dataset.FamilyClustered, RawDim: a.Dim() - 1, Clusters: 6}, 100, seed)
	queries := dataset.GenerateQueries(raw, 12, seed+1)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		for _, variant := range allVariants() {
			variant.K = 7
			ra, sa := a.Search(q, variant)
			rb, sb := b.Search(q, variant)
			if len(ra) != len(rb) {
				t.Fatalf("query %d: result counts differ: %d != %d", i, len(ra), len(rb))
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("query %d rank %d: %v != %v", i, j, ra[j], rb[j])
				}
			}
			if sa != sb {
				t.Fatalf("query %d: stats differ: %+v != %+v", i, sa, sb)
			}
		}
	}
}

// TestLoadLegacyFixture loads bytes written by the historical version 1
// writer and checks the restored tree matches a fresh build of the same data.
func TestLoadLegacyFixture(t *testing.T) {
	f, err := os.Open("testdata/legacy_v1.p2hbc")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := Load(f)
	if err != nil {
		t.Fatalf("loading legacy fixture: %v", err)
	}
	raw := dataset.Generate(dataset.Spec{Name: "fixture", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 6}, 300, 42)
	fresh := Build(raw.AppendOnes(), Config{LeafSize: 20, Seed: 7})
	if restored.N() != fresh.N() || restored.Dim() != fresh.Dim() ||
		restored.Nodes() != fresh.Nodes() || restored.Leaves() != fresh.Leaves() ||
		restored.LeafSize() != fresh.LeafSize() {
		t.Fatalf("metadata mismatch: %s vs %s", restored, fresh)
	}
	checkTreeInvariants(t, restored)
	expectSameSearch(t, restored, fresh, 42)
}

// TestLegacyRoundTripThroughV2 checks the conversion chain: a tree written in
// the old format, loaded (converting to the flat arena), re-saved in version
// 2, and loaded again must search identically to the original.
func TestLegacyRoundTripThroughV2(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyHeavyTail, RawDim: 9}, 450, 11)
	orig := Build(raw.AppendOnes(), Config{LeafSize: 15, Seed: 5})

	var v1 bytes.Buffer
	if err := writeLegacyV1(&v1, orig); err != nil {
		t.Fatal(err)
	}
	fromV1, err := Load(&v1)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := fromV1.Save(&v2); err != nil {
		t.Fatal(err)
	}
	fromV2, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeInvariants(t, fromV2)
	expectSameSearch(t, orig, fromV1, 11)
	expectSameSearch(t, orig, fromV2, 11)
}
