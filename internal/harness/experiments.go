package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"p2h/internal/core"
	"p2h/internal/dataset"
)

// Config parameterizes one experiment run. Zero values select the defaults
// DESIGN.md documents for the scaled reproduction.
type Config struct {
	// Scale multiplies every spec's default point count (default 1.0).
	Scale float64
	// NQ is the number of hyperplane queries per data set (default 50;
	// the paper uses 100).
	NQ int
	// K is the top-k for the time-recall experiments (default 10).
	K int
	// Seed drives data generation and index construction (default 1).
	Seed int64
	// Sets restricts the experiment to the named data sets; nil runs the
	// experiment's paper defaults.
	Sets []string
	// Params carries the method construction parameters.
	Params Params
	// Progress, if non-nil, receives one line per completed step.
	Progress io.Writer
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.NQ <= 0 {
		c.NQ = 50
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Params.MaxLambda == 0 {
		// Keep NH/FH tractable on the very high-dimensional surrogates
		// (Trevi d=4096, P53 d=5408) without silently skipping them.
		c.Params.MaxLambda = 16384
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// resolveSets maps cfg.Sets to specs, or returns the defaults.
func (c Config) resolveSets(defaults []dataset.Spec) ([]dataset.Spec, error) {
	if len(c.Sets) == 0 {
		return defaults, nil
	}
	out := make([]dataset.Spec, 0, len(c.Sets))
	for _, name := range c.Sets {
		spec, ok := dataset.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown data set %q (known: %s)",
				name, strings.Join(dataset.Names(), ", "))
		}
		out = append(out, spec)
	}
	return out, nil
}

func (c Config) scaledN(spec dataset.Spec) int {
	n := int(math.Round(float64(spec.ScaledN) * c.Scale))
	if n < 64 {
		n = 64
	}
	return n
}

func (c Config) workload(spec dataset.Spec) *Workload {
	return Prepare(spec, c.scaledN(spec), c.NQ, c.Seed)
}

// Experiments lists the runnable experiment names in paper order.
func Experiments() []string {
	return []string{"table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation"}
}

// RunExperiment dispatches an experiment by name.
func RunExperiment(name string, cfg Config) (string, error) {
	switch name {
	case "table2":
		return Table2(cfg)
	case "table3":
		return Table3(cfg)
	case "fig5":
		return Fig5(cfg)
	case "fig6":
		return Fig6(cfg)
	case "fig7":
		return Fig7(cfg)
	case "fig8":
		return Fig8(cfg)
	case "fig9":
		return Fig9(cfg)
	case "fig10":
		return Fig10(cfg)
	case "fig11":
		return Fig11(cfg)
	case "ablation":
		return Ablation(cfg)
	}
	return "", fmt.Errorf("harness: unknown experiment %q (known: %s)",
		name, strings.Join(Experiments(), ", "))
}

// Table2 reproduces Table II: the statistics of the (surrogate) data sets.
func Table2(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.Catalog())
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Table II: statistics of data sets (synthetic surrogates; paper columns + surrogate family)",
		Header: []string{"Data Set", "Paper n", "d", "Repro n", "Repro Size (MB)", "Data Type", "Family"},
	}
	for _, spec := range specs {
		w := cfg.workload(spec)
		t.AddRow(
			spec.Name,
			fmt.Sprintf("%d", spec.PaperN),
			fmt.Sprintf("%d", spec.RawDim),
			fmt.Sprintf("%d", w.Raw.N),
			fmtBytes(w.Raw.Bytes()),
			spec.DataType,
			spec.Family.String(),
		)
		cfg.logf("table2: %s done", spec.Name)
	}
	return t.String(), nil
}

// table3Methods is the paper's Table III column order: trees first, then the
// hashing schemes at lambda = d and lambda = 8d.
func table3Methods(p Params) []Method {
	p1, p8 := p, p
	p1.LambdaFactor = 1
	p8.LambdaFactor = 8
	nh1, nh8, fh1, fh8 := NH(p1), NH(p8), FH(p1), FH(p8)
	nh1.Name = "NH(l=d)"
	nh8.Name = "NH(l=8d)"
	fh1.Name = "FH(l=d)"
	fh8.Name = "FH(l=8d)"
	return []Method{BCTree(p), BallTree(p), nh1, nh8, fh1, fh8}
}

// Table3 reproduces Table III: indexing time and index size per method.
func Table3(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	methods := table3Methods(cfg.Params)
	header := []string{"Data Set"}
	for _, m := range methods {
		header = append(header, m.Name+" Time(s)", m.Name+" Size(MB)")
	}
	t := &Table{
		Title:  "Table III: indexing time (seconds) and index size (MB)",
		Header: header,
	}
	for _, spec := range specs {
		w := cfg.workload(spec)
		row := []string{spec.Name}
		for _, m := range methods {
			br := m.BuildTimed(w.Data)
			row = append(row, fmtSeconds(br.BuildTime), fmtBytes(br.Bytes))
			cfg.logf("table3: %s / %s built in %v", spec.Name, m.Name, br.BuildTime)
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// timeRecallFigure renders one time-recall figure: for every data set, one
// series per method over the budget-fraction sweep.
func timeRecallFigure(cfg Config, title string, specs []dataset.Spec,
	methods []Method, base func(m Method) core.SearchOptions) (string, error) {
	var b strings.Builder
	for _, spec := range specs {
		w := cfg.workload(spec)
		var series []Series
		for _, m := range methods {
			ix := m.Build(w.Data)
			opts := core.SearchOptions{}
			if base != nil {
				opts = base(m)
			}
			evals := Sweep(ix, w, cfg.K, nil, opts)
			s := Series{Name: m.Name}
			for _, ev := range evals {
				s.Points = append(s.Points, Point{X: ev.Recall * 100, Y: ev.QueryMS})
			}
			series = append(series, s)
			cfg.logf("%s: %s / %s swept", title, spec.Name, m.Name)
		}
		b.WriteString(FormatSeries(
			fmt.Sprintf("%s — %s (d=%d, n=%d), k=%d", title, spec.Name, spec.RawDim, w.N(), cfg.K),
			"recall%", "ms/query", series))
	}
	return b.String(), nil
}

// Fig5 reproduces Figure 5: query time vs recall for the four methods.
func Fig5(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	return timeRecallFigure(cfg, "Fig 5", specs, DefaultMethods(cfg.Params), nil)
}

// kSweep is the paper's k axis for Figures 6 and 8.
var kSweep = []int{1, 10, 20, 40}

// atRecallFigure renders one query-time-vs-k figure at the target recall.
func atRecallFigure(cfg Config, title string, specs []dataset.Spec,
	methods []Method, target float64, base func(m Method) core.SearchOptions) (string, error) {
	var b strings.Builder
	for _, spec := range specs {
		w := cfg.workload(spec)
		var series []Series
		for _, m := range methods {
			ix := m.Build(w.Data)
			opts := core.SearchOptions{}
			if base != nil {
				opts = base(m)
			}
			s := Series{Name: m.Name}
			for _, k := range kSweep {
				_, ev := FindBudget(ix, w, k, target, opts)
				s.Points = append(s.Points, Point{X: float64(k), Y: ev.QueryMS})
			}
			series = append(series, s)
			cfg.logf("%s: %s / %s done", title, spec.Name, m.Name)
		}
		b.WriteString(FormatSeries(
			fmt.Sprintf("%s — %s (d=%d, n=%d), at about %.0f%% recall", title, spec.Name, spec.RawDim, w.N(), target*100),
			"k", "ms/query", series))
	}
	return b.String(), nil
}

// Fig6 reproduces Figure 6: query time vs k at about 80% recall.
func Fig6(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	return atRecallFigure(cfg, "Fig 6", specs, DefaultMethods(cfg.Params), 0.8, nil)
}

// Fig7 reproduces Figure 7: center vs lower-bound branch preference for
// Ball-Tree and BC-Tree.
func Fig7(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	bcC, bcL, ballC, ballL := BCTree(cfg.Params), BCTree(cfg.Params), BallTree(cfg.Params), BallTree(cfg.Params)
	bcC.Name = "BC-Tree (center)"
	bcL.Name = "BC-Tree (lower bound)"
	ballC.Name = "Ball-Tree (center)"
	ballL.Name = "Ball-Tree (lower bound)"
	methods := []Method{bcC, bcL, ballC, ballL}
	prefs := map[string]core.Preference{
		bcC.Name: core.PrefCenter, bcL.Name: core.PrefLowerBound,
		ballC.Name: core.PrefCenter, ballL.Name: core.PrefLowerBound,
	}
	return timeRecallFigure(cfg, "Fig 7", specs, methods, func(m Method) core.SearchOptions {
		return core.SearchOptions{Preference: prefs[m.Name]}
	})
}

// Fig8 reproduces Figure 8: the point-level bound ablation of BC-Tree at
// about 80% recall.
func Fig8(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	full, woC, woB, woBC := BCTree(cfg.Params), BCTree(cfg.Params), BCTree(cfg.Params), BCTree(cfg.Params)
	full.Name = "BC-Tree"
	woC.Name = "BC-Tree-wo-C"
	woB.Name = "BC-Tree-wo-B"
	woBC.Name = "BC-Tree-wo-BC"
	methods := []Method{full, woC, woB, woBC}
	variants := map[string]core.SearchOptions{
		full.Name: {},
		woC.Name:  {DisablePointCone: true},
		woB.Name:  {DisablePointBall: true},
		woBC.Name: {DisablePointBall: true, DisablePointCone: true},
	}
	return atRecallFigure(cfg, "Fig 8", specs, methods, 0.8, func(m Method) core.SearchOptions {
		return variants[m.Name]
	})
}

// Fig9 reproduces Figure 9: the Figure 5 comparison on the two large-scale
// surrogates.
func Fig9(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.LargeSets())
	if err != nil {
		return "", err
	}
	return timeRecallFigure(cfg, "Fig 9", specs, DefaultMethods(cfg.Params), nil)
}

// fig10Sets are the paper's two profiled data sets.
var fig10Sets = []string{"Cifar-10", "Sun"}

// Fig10 reproduces Figure 10: the per-phase time profile at about 90% recall.
func Fig10(cfg Config) (string, error) {
	cfg = cfg.normalized()
	defaults := make([]dataset.Spec, 0, len(fig10Sets))
	for _, name := range fig10Sets {
		defaults = append(defaults, dataset.ByName(name))
	}
	specs, err := cfg.resolveSets(defaults)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, spec := range specs {
		w := cfg.workload(spec)
		t := &Table{
			Title: fmt.Sprintf("Fig 10 — %s (d=%d, n=%d): time profile at about 90%% recall (ms/query)",
				spec.Name, spec.RawDim, w.N()),
			Header: []string{"Method", "Recall%", "Verification", "Table Lookup", "Lower Bounds", "Others", "Total"},
		}
		for _, m := range DefaultMethods(cfg.Params) {
			ix := m.Build(w.Data)
			budget, _ := FindBudget(ix, w, cfg.K, 0.9, core.SearchOptions{})
			ev := Run(ix, w, core.SearchOptions{K: cfg.K, Budget: budget}, true)
			nq := float64(w.Queries.N)
			perQuery := func(p core.Phase) float64 {
				return ev.Profile.Get(p).Seconds() * 1000 / nq
			}
			total := ev.QueryMS
			others := total - perQuery(core.PhaseVerify) - perQuery(core.PhaseLookup) - perQuery(core.PhaseBound)
			if others < 0 {
				others = 0
			}
			t.AddRow(m.Name,
				fmt.Sprintf("%.1f", ev.Recall*100),
				fmt.Sprintf("%.4f", perQuery(core.PhaseVerify)),
				fmt.Sprintf("%.4f", perQuery(core.PhaseLookup)),
				fmt.Sprintf("%.4f", perQuery(core.PhaseBound)),
				fmt.Sprintf("%.4f", others),
				fmt.Sprintf("%.4f", total),
			)
			cfg.logf("fig10: %s / %s profiled", spec.Name, m.Name)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// leafSweep is the paper's Figure 11 leaf-size axis.
var leafSweep = []int{100, 200, 500, 1000, 2000, 5000, 10000}

// Fig11 reproduces Figure 11: the impact of the leaf size N0 on BC-Tree.
func Fig11(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, spec := range specs {
		w := cfg.workload(spec)
		var series []Series
		for _, n0 := range leafSweep {
			p := cfg.Params
			p.LeafSize = n0
			ix := BCTree(p).Build(w.Data)
			evals := Sweep(ix, w, cfg.K, nil, core.SearchOptions{})
			s := Series{Name: fmt.Sprintf("N0=%d", n0)}
			for _, ev := range evals {
				s.Points = append(s.Points, Point{X: ev.Recall * 100, Y: ev.QueryMS})
			}
			series = append(series, s)
			cfg.logf("fig11: %s / N0=%d swept", spec.Name, n0)
		}
		b.WriteString(FormatSeries(
			fmt.Sprintf("Fig 11 — %s (d=%d, n=%d), k=%d", spec.Name, spec.RawDim, w.N(), cfg.K),
			"recall%", "ms/query", series))
	}
	return b.String(), nil
}

// Ablation measures the design choices DESIGN.md calls out beyond the
// paper's own figures: the collaborative inner product strategy (Theorem 5)
// and the KD-Tree box bound the paper argues against (Section III-A).
func Ablation(cfg Config) (string, error) {
	cfg = cfg.normalized()
	specs, err := cfg.resolveSets(dataset.SmallSets())
	if err != nil {
		return "", err
	}
	t := &Table{
		Title: "Ablation: collaborative inner products (Theorem 5) and the KD-Tree box bound, at about 80% recall",
		Header: []string{"Data Set", "BC ms", "BC-wo-collab ms", "center IPs on", "center IPs off",
			"KD-Tree ms", "Ball-Tree ms"},
	}
	for _, spec := range specs {
		w := cfg.workload(spec)
		bc := BCTree(cfg.Params).Build(w.Data)
		budget, evOn := FindBudget(bc, w, cfg.K, 0.8, core.SearchOptions{})
		evOff := Run(bc, w, core.SearchOptions{K: cfg.K, Budget: budget, DisableCollabIP: true}, false)
		kd := KDTree(cfg.Params).Build(w.Data)
		_, evKD := FindBudget(kd, w, cfg.K, 0.8, core.SearchOptions{})
		ball := BallTree(cfg.Params).Build(w.Data)
		_, evBall := FindBudget(ball, w, cfg.K, 0.8, core.SearchOptions{})
		t.AddRow(spec.Name,
			fmt.Sprintf("%.4f", evOn.QueryMS),
			fmt.Sprintf("%.4f", evOff.QueryMS),
			fmt.Sprintf("%d", evOn.Stats.IPCount-evOn.Stats.Candidates),
			fmt.Sprintf("%d", evOff.Stats.IPCount-evOff.Stats.Candidates),
			fmt.Sprintf("%.4f", evKD.QueryMS),
			fmt.Sprintf("%.4f", evBall.QueryMS),
		)
		cfg.logf("ablation: %s done", spec.Name)
	}
	return t.String(), nil
}

// SortSeriesByX orders every series' points by ascending X (recall sweeps
// come out ordered already; this is for callers composing custom series).
func SortSeriesByX(series []Series) {
	for i := range series {
		sort.Slice(series[i].Points, func(a, b int) bool {
			return series[i].Points[a].X < series[i].Points[b].X
		})
	}
}
