package harness

import (
	"strings"
	"testing"
)

// tinyCfg keeps experiment smoke tests fast: small point counts, few queries,
// cheap hash parameters.
func tinyCfg(sets ...string) Config {
	return Config{
		Scale: 0.02, // Music: 20000*0.02 = 400 points
		NQ:    4,
		K:     5,
		Seed:  1,
		Sets:  sets,
		Params: Params{
			LeafSize: 25,
			HashM:    4,
			HashL:    2,
		},
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", tinyCfg("Music")); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestUnknownSetErrors(t *testing.T) {
	if _, err := Table2(tinyCfg("NotASet")); err == nil {
		t.Fatal("unknown set must error")
	}
}

func TestTable2Smoke(t *testing.T) {
	out, err := Table2(tinyCfg("Music", "Cifar-10"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "Music", "Cifar-10", "Rating", "Image"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	out, err := Table3(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "BC-Tree", "Ball-Tree", "NH(l=d)", "NH(l=8d)", "FH(l=d)", "FH(l=8d)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	out, err := Fig5(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5", "BC-Tree", "Ball-Tree", "FH", "NH", "recall%", "ms/query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	out, err := Fig6(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig 6") || !strings.Contains(out, "80% recall") {
		t.Fatalf("fig6 output:\n%s", out)
	}
}

func TestFig7Smoke(t *testing.T) {
	out, err := Fig7(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BC-Tree (center)", "BC-Tree (lower bound)", "Ball-Tree (center)", "Ball-Tree (lower bound)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	out, err := Fig8(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BC-Tree", "BC-Tree-wo-C", "BC-Tree-wo-B", "BC-Tree-wo-BC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	cfg := tinyCfg("Deep100M")
	cfg.Scale = 0.003 // 200000*0.003 = 600 points
	out, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig 9") || !strings.Contains(out, "Deep100M") {
		t.Fatalf("fig9 output:\n%s", out)
	}
}

func TestFig10Smoke(t *testing.T) {
	out, err := Fig10(tinyCfg("Cifar-10"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 10", "Verification", "Table Lookup", "Lower Bounds", "Others"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	out, err := Fig11(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 11", "N0=100", "N0=10000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	out, err := Ablation(tinyCfg("Music"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BC ms", "BC-wo-collab ms", "KD-Tree ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunExperimentDispatchesAll(t *testing.T) {
	cfg := tinyCfg("Music")
	for _, name := range Experiments() {
		if name == "fig9" || name == "fig10" {
			continue // covered by dedicated smoke tests with their own sets
		}
		if _, err := RunExperiment(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
