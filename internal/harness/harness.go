// Package harness runs the paper's evaluation: it prepares workloads
// (synthetic surrogate data, hyperplane queries, ground truth), evaluates
// indexes over candidate-budget sweeps, and formats the series and tables
// that reproduce Table II, Table III, and Figures 5-11.
package harness

import (
	"fmt"
	"math"
	"time"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

// BuiltIndex is the common surface of every built P2HNNS index.
type BuiltIndex interface {
	// Search answers one top-k hyperplane query.
	Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats)
	// IndexBytes reports the memory footprint of the index structure.
	IndexBytes() int64
}

// Method names one competitor and knows how to build its index over a lifted
// data matrix.
type Method struct {
	Name  string
	Build func(data *vec.Matrix) BuiltIndex
}

// BuildResult carries the Table III measurements for one build.
type BuildResult struct {
	Method    string
	BuildTime time.Duration
	Bytes     int64
	Index     BuiltIndex
}

// BuildTimed builds the method's index and measures wall-clock time and size.
func (m Method) BuildTimed(data *vec.Matrix) BuildResult {
	start := time.Now()
	ix := m.Build(data)
	return BuildResult{
		Method:    m.Name,
		BuildTime: time.Since(start),
		Bytes:     ix.IndexBytes(),
		Index:     ix,
	}
}

// Workload is one prepared data set: deduped raw points, the lifted matrix
// indexes consume, hyperplane queries, and lazily computed ground truth.
type Workload struct {
	Spec    dataset.Spec
	Raw     *vec.Matrix
	Data    *vec.Matrix // lifted: x = (p; 1)
	Queries *vec.Matrix

	gt map[int][][]core.Result
}

// Prepare generates a workload for the spec: n raw points (spec default if
// n <= 0), deduplicated, lifted, with nq hyperplane queries. Deterministic in
// seed.
func Prepare(spec dataset.Spec, n, nq int, seed int64) *Workload {
	raw := dataset.Dedup(dataset.Generate(spec, n, seed))
	return &Workload{
		Spec:    spec,
		Raw:     raw,
		Data:    raw.AppendOnes(),
		Queries: dataset.GenerateQueries(raw, nq, seed+1),
		gt:      make(map[int][][]core.Result),
	}
}

// GroundTruth returns the exact top-k results per query, computed once.
func (w *Workload) GroundTruth(k int) [][]core.Result {
	if gt, ok := w.gt[k]; ok {
		return gt
	}
	gt := linearscan.GroundTruth(w.Data, w.Queries, k)
	w.gt[k] = gt
	return gt
}

// N returns the workload's deduplicated point count.
func (w *Workload) N() int { return w.Data.N }

// Recall measures the fraction of the exact top-k a result list recovered.
// Any returned point whose distance is within the exact k-th distance counts
// as a hit (the tie convention recall evaluations use), capped at k.
func Recall(res, gt []core.Result) float64 {
	if len(gt) == 0 {
		return 1
	}
	kth := gt[len(gt)-1].Dist
	hits := 0
	for _, r := range res {
		if r.Dist <= kth*(1+1e-9)+1e-12 {
			hits++
		}
	}
	if hits > len(gt) {
		hits = len(gt)
	}
	return float64(hits) / float64(len(gt))
}

// Eval measures one configuration: it runs every workload query through the
// index with opts and averages recall and wall-clock time.
type Eval struct {
	Recall    float64 // mean recall over queries
	QueryMS   float64 // mean wall-clock milliseconds per query
	Stats     core.Stats
	Profile   core.Profile // populated when opts.Profile was requested
	WallTotal time.Duration
}

// Run evaluates ix on every query of w under opts. If profile is true the
// per-phase breakdown is collected (at some timing overhead).
func Run(ix BuiltIndex, w *Workload, opts core.SearchOptions, profile bool) Eval {
	opts = opts.Normalized()
	gt := w.GroundTruth(opts.K)
	var ev Eval
	var prof core.Profile
	if profile {
		opts.Profile = &prof
	}
	start := time.Now()
	for i := 0; i < w.Queries.N; i++ {
		res, st := ix.Search(w.Queries.Row(i), opts)
		ev.Recall += Recall(res, gt[i])
		ev.Stats.Add(st)
	}
	ev.WallTotal = time.Since(start)
	nq := float64(w.Queries.N)
	ev.Recall /= nq
	ev.QueryMS = ev.WallTotal.Seconds() * 1000 / nq
	ev.Profile = prof
	return ev
}

// BudgetFractions is the default candidate-fraction sweep for the
// time-recall curves (the paper's approximation knob).
var BudgetFractions = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}

// Sweep evaluates ix across the budget fractions and returns one Eval per
// fraction, in order.
func Sweep(ix BuiltIndex, w *Workload, k int, fractions []float64, base core.SearchOptions) []Eval {
	if len(fractions) == 0 {
		fractions = BudgetFractions
	}
	out := make([]Eval, 0, len(fractions))
	for _, f := range fractions {
		opts := base
		opts.K = k
		opts.Budget = budgetFor(f, w.N())
		out = append(out, Run(ix, w, opts, false))
	}
	return out
}

func budgetFor(fraction float64, n int) int {
	b := int(math.Ceil(fraction * float64(n)))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// FindBudget locates the smallest sweep budget reaching the target recall and
// returns its evaluation. If no fraction reaches the target the full-budget
// evaluation is returned. This pins the paper's "at about 80% recall"
// operating points (Figures 6, 8, 10).
func FindBudget(ix BuiltIndex, w *Workload, k int, target float64, base core.SearchOptions) (int, Eval) {
	var last Eval
	var lastBudget int
	for _, f := range BudgetFractions {
		opts := base
		opts.K = k
		opts.Budget = budgetFor(f, w.N())
		last = Run(ix, w, opts, false)
		lastBudget = opts.Budget
		if last.Recall >= target {
			return opts.Budget, last
		}
	}
	return lastBudget, last
}

// scanIndex adapts the linear scan to BuiltIndex (its "index" is free).
type scanIndex struct{ *linearscan.Scanner }

// IndexBytes is zero: the scan holds no structure beyond the data itself.
func (scanIndex) IndexBytes() int64 { return 0 }

// String names the adapter in logs.
func (scanIndex) String() string { return "linear-scan" }

var _ BuiltIndex = scanIndex{}

// fmtBytes renders a byte count the way Table III does (MB with one digit).
func fmtBytes(b int64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1024*1024))
}

// fmtSeconds renders a duration in seconds with one digit.
func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}
