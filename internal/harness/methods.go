package harness

import (
	"p2h/internal/balltree"
	"p2h/internal/bctree"
	"p2h/internal/fh"
	"p2h/internal/kdtree"
	"p2h/internal/linearscan"
	"p2h/internal/nh"
	"p2h/internal/vec"
)

// Params bundles the per-method construction parameters an experiment varies.
// Zero values select the defaults the paper's Section V-C uses (scaled to the
// reproduction sizes where noted in DESIGN.md).
type Params struct {
	// LeafSize is the trees' N0 (default 100).
	LeafSize int
	// Seed drives all randomized construction.
	Seed int64
	// LambdaFactor multiplies the lifted dimension to obtain NH/FH's
	// sampled transform dimension lambda (paper: 1..8; default 2).
	LambdaFactor int
	// MaxLambda caps lambda on very high-dimensional sets so a reproduction
	// run stays tractable; 0 means no cap.
	MaxLambda int
	// HashM is NH/FH's projection count m (paper reports m=128; the
	// reproduction default is 32).
	HashM int
	// HashL is the collision / separation threshold (default 2).
	HashL int
}

func (p Params) normalized() Params {
	if p.LeafSize <= 0 {
		p.LeafSize = 100
	}
	if p.LambdaFactor <= 0 {
		p.LambdaFactor = 2
	}
	if p.HashM <= 0 {
		p.HashM = 32
	}
	if p.HashL <= 0 {
		p.HashL = 2
	}
	return p
}

func (p Params) lambda(d int) int {
	l := p.LambdaFactor * d
	if p.MaxLambda > 0 && l > p.MaxLambda {
		l = p.MaxLambda
	}
	return l
}

// BallTree returns the Ball-Tree method (paper Section III).
func BallTree(p Params) Method {
	p = p.normalized()
	return Method{Name: "Ball-Tree", Build: func(data *vec.Matrix) BuiltIndex {
		return balltree.Build(data, balltree.Config{LeafSize: p.LeafSize, Seed: p.Seed})
	}}
}

// BCTree returns the BC-Tree method (paper Section IV).
func BCTree(p Params) Method {
	p = p.normalized()
	return Method{Name: "BC-Tree", Build: func(data *vec.Matrix) BuiltIndex {
		return bctree.Build(data, bctree.Config{LeafSize: p.LeafSize, Seed: p.Seed})
	}}
}

// NH returns the NH hashing baseline.
func NH(p Params) Method {
	p = p.normalized()
	return Method{Name: "NH", Build: func(data *vec.Matrix) BuiltIndex {
		return nh.Build(data, nh.Config{
			Lambda: p.lambda(data.D),
			M:      p.HashM,
			L:      p.HashL,
			Seed:   p.Seed,
		})
	}}
}

// FH returns the FH hashing baseline.
func FH(p Params) Method {
	p = p.normalized()
	return Method{Name: "FH", Build: func(data *vec.Matrix) BuiltIndex {
		return fh.Build(data, fh.Config{
			Lambda: p.lambda(data.D),
			M:      p.HashM,
			L:      p.HashL,
			Seed:   p.Seed,
		})
	}}
}

// KDTree returns the KD-Tree extension (DESIGN.md Section 2, item 11).
func KDTree(p Params) Method {
	p = p.normalized()
	return Method{Name: "KD-Tree", Build: func(data *vec.Matrix) BuiltIndex {
		return kdtree.Build(data, kdtree.Config{LeafSize: p.LeafSize})
	}}
}

// LinearScan returns the exhaustive baseline.
func LinearScan() Method {
	return Method{Name: "Scan", Build: func(data *vec.Matrix) BuiltIndex {
		return scanIndex{linearscan.New(data)}
	}}
}

// DefaultMethods returns the paper's four competitors in Figure 5 order.
func DefaultMethods(p Params) []Method {
	return []Method{BCTree(p), BallTree(p), FH(p), NH(p)}
}
