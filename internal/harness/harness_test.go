package harness

import (
	"math"
	"strings"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
)

func tinySpec(family dataset.Family, d int) dataset.Spec {
	return dataset.Spec{Name: "tiny", Family: family, RawDim: d, ScaledN: 400, Clusters: 4}
}

func TestRecallConventions(t *testing.T) {
	gt := []core.Result{{ID: 1, Dist: 0.1}, {ID: 2, Dist: 0.2}, {ID: 3, Dist: 0.3}}
	cases := []struct {
		name string
		res  []core.Result
		want float64
	}{
		{"perfect", gt, 1},
		{"empty", nil, 0},
		{"half", gt[:1], 1.0 / 3},
		{"different ids same dists", []core.Result{{ID: 9, Dist: 0.1}, {ID: 8, Dist: 0.25}, {ID: 7, Dist: 0.3}}, 1},
		{"too far", []core.Result{{ID: 9, Dist: 0.9}}, 0},
		{"overfull capped", []core.Result{{ID: 1, Dist: 0.1}, {ID: 2, Dist: 0.1}, {ID: 3, Dist: 0.1}, {ID: 4, Dist: 0.1}}, 1},
	}
	for _, c := range cases {
		if got := Recall(c.res, gt); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: recall %v want %v", c.name, got, c.want)
		}
	}
	if got := Recall(nil, nil); got != 1 {
		t.Errorf("empty gt should be recall 1, got %v", got)
	}
}

func TestPrepareDeterministic(t *testing.T) {
	spec := tinySpec(dataset.FamilyClustered, 8)
	a := Prepare(spec, 200, 5, 7)
	b := Prepare(spec, 200, 5, 7)
	if a.N() != b.N() || a.Queries.N != b.Queries.N {
		t.Fatal("same seed, different workload shape")
	}
	for i := range a.Data.Data {
		if a.Data.Data[i] != b.Data.Data[i] {
			t.Fatal("same seed, different data")
		}
	}
}

func TestGroundTruthCached(t *testing.T) {
	w := Prepare(tinySpec(dataset.FamilyUniform, 6), 150, 4, 1)
	g1 := w.GroundTruth(5)
	g2 := w.GroundTruth(5)
	if &g1[0] != &g2[0] {
		t.Fatal("ground truth not cached")
	}
	if len(g1) != w.Queries.N || len(g1[0]) != 5 {
		t.Fatalf("ground truth shape %dx%d", len(g1), len(g1[0]))
	}
}

func TestRunFullBudgetExactForTrees(t *testing.T) {
	w := Prepare(tinySpec(dataset.FamilyClustered, 10), 400, 8, 2)
	for _, m := range []Method{BallTree(Params{Seed: 3}), BCTree(Params{Seed: 3}), KDTree(Params{}), LinearScan()} {
		ix := m.Build(w.Data)
		ev := Run(ix, w, core.SearchOptions{K: 5}, false)
		if ev.Recall < 1-1e-12 {
			t.Fatalf("%s: unlimited budget must be exact, recall %v", m.Name, ev.Recall)
		}
		if ev.QueryMS <= 0 {
			t.Fatalf("%s: query time must be positive", m.Name)
		}
	}
}

func TestBuildTimedMeasures(t *testing.T) {
	w := Prepare(tinySpec(dataset.FamilyClustered, 10), 300, 4, 3)
	br := BCTree(Params{Seed: 1}).BuildTimed(w.Data)
	if br.BuildTime <= 0 || br.Bytes <= 0 || br.Index == nil || br.Method != "BC-Tree" {
		t.Fatalf("build result %+v", br)
	}
}

func TestSweepMonotoneBudgets(t *testing.T) {
	w := Prepare(tinySpec(dataset.FamilyClustered, 12), 800, 10, 4)
	ix := BCTree(Params{Seed: 5}).Build(w.Data)
	evals := Sweep(ix, w, 10, nil, core.SearchOptions{})
	if len(evals) != len(BudgetFractions) {
		t.Fatalf("%d evals", len(evals))
	}
	if evals[len(evals)-1].Recall < 1-1e-12 {
		t.Fatalf("full fraction must be exact, got %v", evals[len(evals)-1].Recall)
	}
	// Recall must not collapse as budget grows (tiny jitter tolerated).
	for i := 1; i < len(evals); i++ {
		if evals[i].Recall < evals[i-1].Recall-0.05 {
			t.Fatalf("recall dropped hard at %d: %v -> %v", i, evals[i-1].Recall, evals[i].Recall)
		}
	}
}

func TestFindBudgetHitsTarget(t *testing.T) {
	w := Prepare(tinySpec(dataset.FamilyClustered, 12), 800, 10, 5)
	ix := BallTree(Params{Seed: 6}).Build(w.Data)
	budget, ev := FindBudget(ix, w, 10, 0.8, core.SearchOptions{})
	if ev.Recall < 0.8 {
		t.Fatalf("budget %d recall %v < target", budget, ev.Recall)
	}
	if budget <= 0 || budget > w.N() {
		t.Fatalf("budget %d out of range", budget)
	}
}

func TestMethodsHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range DefaultMethods(Params{}) {
		if seen[m.Name] {
			t.Fatalf("duplicate method name %s", m.Name)
		}
		seen[m.Name] = true
	}
	for _, m := range table3Methods(Params{}) {
		_ = m.Name // all six must be constructible
	}
	if len(table3Methods(Params{})) != 6 {
		t.Fatal("Table III needs six method columns")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"A", "LongColumn"},
	}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + rule + 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// All body lines align to the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("rule width %d != header width %d", len(lines[2]), len(lines[1]))
	}
}

func TestFormatSeriesShape(t *testing.T) {
	out := FormatSeries("fig", "x", "y", []Series{
		{Name: "a", Points: []Point{{1, 2}, {3, 4}}},
	})
	if !strings.Contains(out, "fig") || !strings.Contains(out, "a (x, y):") {
		t.Fatalf("series format:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}
