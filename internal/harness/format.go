package harness

import (
	"fmt"
	"strings"
)

// Table is a titled, column-aligned text table, the output format of the
// Table II / Table III reproductions.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row; cells beyond the header are dropped in rendering.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < len(t.Header); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Point is one (x, y) sample of a plotted curve.
type Point struct {
	X, Y float64
}

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// FormatSeries renders a figure's curves as per-series listings, the text
// stand-in for the paper's plots.
func FormatSeries(title, xlabel, ylabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "  %s (%s, %s):\n", s.Name, xlabel, ylabel)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "    %10.3f  %12.6f\n", p.X, p.Y)
		}
	}
	return b.String()
}
