package quant

import (
	"fmt"
	"math"

	"p2h/internal/vec"
)

// weightMax is the largest magnitude a rounded int16 weight may take. It sits
// one below math.MaxInt16-1 so that math.Round can never push a weight past
// the int16 range, and so each product code*weight stays within the headroom
// the SIMD kernel's 32-bit lanes assume (see vec.CodeDot).
const weightMax = 32766

// epsSlack is the relative inflation applied to the error bound to absorb
// the float64 rounding of the bound computation itself. The true relative
// error of those few operations is ~2^-50; 1e-9 dominates it by orders of
// magnitude while remaining negligible against any real quantization error.
const epsSlack = 1e-9

// arithUlp bounds the relative rounding of one float64 operation, with a 8x
// margin over the true unit roundoff 2^-53. The filter's absolute-value
// summation error term scales this by the number of accumulated terms.
const arithUlp = 8.0 / (1 << 53)

// CodeFilter is a query's fitted quantized filter: the affine form of the
// approximate inner product with integer weights,
//
//	approx(x) = Base + CodeDot(code(x), W) * InvS,
//
// plus the rigorous total error bound Eps with
// |<query,x> - approx(x)| <= Eps for every row the quantizer's per-dimension
// bound holds for (see Quantizer.Validate). A row is prunable exactly when
// |approx| - Eps strictly exceeds the current k-th best distance.
//
// W is retained across Fit calls, so a long-lived searcher re-fits with zero
// steady-state allocations.
type CodeFilter struct {
	Base float64
	InvS float64
	Eps  float64
	W    []int16
}

// Fit computes the filter coefficients of query, reusing f's weight slice
// when it is already large enough.
func (q *Quantizer) Fit(f *CodeFilter, query []float32) {
	d := q.Dim()
	if cap(f.W) < d {
		f.W = make([]int16, d)
	}
	f.W = f.W[:d]
	f.Base, f.InvS, f.Eps = q.FitInto(f.W, query)
}

// FitInto is Fit over a caller-owned weight slice of length Dim() — the form
// the batched engine uses to pack all per-query weights into one arena. It
// returns the affine form's base, the scale to convert the integer dot back
// to the float domain, and the total error bound.
//
// The bound is MaxError (quantization proper) plus an exactly-accounted
// weight-rounding term — each true weight w_j = query_j*step_j (exact in
// float64: two 24-bit mantissas) is rounded to wq_j = round(w_j*S) and every
// code is at most 255, contributing sum_j 255*|w_j - wq_j/S| — plus an
// absolute-value term covering the float64 rounding of evaluating the affine
// form itself. Inflating by epsSlack then absorbs the rounding of computing
// the bound. The filter therefore never prunes a row whose exact distance
// could still win, which is what keeps exact recall at 1.0.
func (q *Quantizer) FitInto(w []int16, query []float32) (base, invS, eps float64) {
	d := q.Dim()
	if len(query) != d {
		panic(fmt.Sprintf("quant: query dimension %d != %d", len(query), d))
	}
	if len(w) != d {
		panic(fmt.Sprintf("quant: weight buffer length %d != %d", len(w), d))
	}
	var absBase, maxW float64
	for j, v := range query {
		t := float64(v) * float64(q.lo[j])
		base += t
		absBase += math.Abs(t)
		if a := math.Abs(float64(v) * float64(q.step[j])); a > maxW {
			maxW = a
		}
	}
	eps = q.MaxError(query)
	if maxW == 0 {
		// All weights vanish (constant dimensions or a zero query): the
		// approximation is the constant base.
		for j := range w {
			w[j] = 0
		}
		eps = eps*(1+epsSlack) + float64(d+4)*arithUlp*absBase
		return base, 0, eps
	}
	s := weightMax / maxW
	var r, sumW float64
	for j, v := range query {
		wj := float64(v) * float64(q.step[j])
		c := math.Round(wj * s)
		w[j] = int16(c)
		r += math.Abs(wj - c/s)
		sumW += math.Abs(wj)
	}
	eps = (eps+levels*r)*(1+epsSlack) +
		float64(d+4)*arithUlp*(absBase+levels*(sumW+r))
	return base, 1 / s, eps
}

// EncodeTo quantizes x into dst, which must have length Dim(). It is Encode
// without the allocation.
func (q *Quantizer) EncodeTo(dst []uint8, x []float32) {
	if len(x) != q.Dim() {
		panic(fmt.Sprintf("quant: vector dimension %d != %d", len(x), q.Dim()))
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("quant: code buffer length %d != %d", len(dst), len(x)))
	}
	for j, v := range x {
		if q.step[j] == 0 {
			dst[j] = 0
			continue
		}
		c := math.Round(float64(v-q.lo[j]) / float64(q.step[j]))
		if c < 0 {
			c = 0
		}
		if c > levels {
			c = levels
		}
		dst[j] = uint8(c)
	}
}

// EncodeMatrix quantizes every row of data into one packed row-major code
// block, the mirror layout the trees store alongside their float arenas.
func (q *Quantizer) EncodeMatrix(data *vec.Matrix) []uint8 {
	if data.D != q.Dim() {
		panic(fmt.Sprintf("quant: matrix dimension %d != %d", data.D, q.Dim()))
	}
	codes := make([]uint8, data.N*data.D)
	for i := 0; i < data.N; i++ {
		q.EncodeTo(codes[i*data.D:(i+1)*data.D], data.Row(i))
	}
	return codes
}

// Tables returns copies of the per-dimension grids, the serializable state of
// the quantizer.
func (q *Quantizer) Tables() (lo, step []float32, halfE []float64) {
	lo = append([]float32(nil), q.lo...)
	step = append([]float32(nil), q.step...)
	halfE = append([]float64(nil), q.halfE...)
	return lo, step, halfE
}

// NewQuantizerFromTables reconstructs a quantizer from serialized grids. It
// validates shape and finiteness; the semantic soundness of the tables
// against a concrete data/code pair is Validate's job.
func NewQuantizerFromTables(lo, step []float32, halfE []float64) (*Quantizer, error) {
	d := len(lo)
	if d == 0 || len(step) != d || len(halfE) != d {
		return nil, fmt.Errorf("quant: table lengths %d/%d/%d", len(lo), len(step), len(halfE))
	}
	for j := 0; j < d; j++ {
		bad := math.IsNaN(float64(lo[j])) || math.IsInf(float64(lo[j]), 0) ||
			!(float64(step[j]) >= 0) || math.IsInf(float64(step[j]), 0) ||
			!(halfE[j] >= 0) || math.IsInf(halfE[j], 0)
		if bad {
			return nil, fmt.Errorf("quant: invalid grid at dimension %d (lo=%v step=%v halfE=%v)",
				j, lo[j], step[j], halfE[j])
		}
	}
	return &Quantizer{
		lo:    append([]float32(nil), lo...),
		step:  append([]float32(nil), step...),
		halfE: append([]float64(nil), halfE...),
	}, nil
}

// Validate checks the invariant every filter bound rests on: for each row i
// and dimension j, the decoded grid point of codes is within halfE_j of the
// stored float value. Loaded containers run this before trusting a quantized
// mirror — a corrupted or inconsistent code block would otherwise silently
// prune true neighbors, which is far worse than failing the load.
func (q *Quantizer) Validate(data *vec.Matrix, codes []uint8) error {
	d := q.Dim()
	if data.D != d {
		return fmt.Errorf("quant: matrix dimension %d != %d", data.D, d)
	}
	if len(codes) != data.N*d {
		return fmt.Errorf("quant: code block length %d != %d rows * %d dims", len(codes), data.N, d)
	}
	const tol = 1 + 1e-9
	for i := 0; i < data.N; i++ {
		row := data.Row(i)
		code := codes[i*d : (i+1)*d]
		for j, v := range row {
			g := float64(q.lo[j]) + float64(code[j])*float64(q.step[j])
			// The negated form catches NaN on either side.
			if !(math.Abs(float64(v)-g) <= q.halfE[j]*tol) {
				return fmt.Errorf("quant: row %d dim %d: value %v vs grid point %v exceeds bound %v",
					i, j, v, g, q.halfE[j])
			}
		}
	}
	return nil
}
