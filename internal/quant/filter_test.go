package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/vec"
)

// TestQuickCodeFilterBound: the integer-weight affine form obeys its error
// bound, |<q,x> - (Base + CodeDot*InvS)| <= Eps, for every indexed vector —
// the soundness property the in-tree filter rests on.
func TestQuickCodeFilterBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 10
		d := rng.Intn(24) + 1
		scale := math.Exp(rng.NormFloat64() * 4) // spans tiny to huge ranges
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64() * scale)
		}
		qz := NewQuantizer(m)
		query := make([]float32, d)
		for j := range query {
			query[j] = float32(rng.NormFloat64())
		}
		var cf CodeFilter
		qz.Fit(&cf, query)
		for i := 0; i < n; i++ {
			row := m.Row(i)
			exact := vec.Dot(query, row)
			ip := vec.CodeDot(qz.Encode(row), cf.W)
			approx := cf.Base + float64(ip)*cf.InvS
			if math.Abs(exact-approx) > cf.Eps {
				t.Logf("seed %d row %d: |%v - %v| = %v > eps %v",
					seed, i, exact, approx, math.Abs(exact-approx), cf.Eps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCodeFilterReusesWeights: Fit on a live filter must not allocate once
// the weight slice has grown to the dimensionality.
func TestCodeFilterReusesWeights(t *testing.T) {
	m := vec.NewMatrix(50, 16)
	rng := rand.New(rand.NewSource(1))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	qz := NewQuantizer(m)
	query := make([]float32, 16)
	for j := range query {
		query[j] = float32(rng.NormFloat64())
	}
	var cf CodeFilter
	qz.Fit(&cf, query)
	allocs := testing.AllocsPerRun(100, func() { qz.Fit(&cf, query) })
	if allocs != 0 {
		t.Fatalf("Fit allocated %v times per run", allocs)
	}
}

func TestEncodeToMatchesEncode(t *testing.T) {
	m := vec.NewMatrix(40, 9)
	rng := rand.New(rand.NewSource(5))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * 3)
	}
	qz := NewQuantizer(m)
	dst := make([]uint8, 9)
	for i := 0; i < m.N; i++ {
		qz.EncodeTo(dst, m.Row(i))
		want := qz.Encode(m.Row(i))
		for j := range dst {
			if dst[j] != want[j] {
				t.Fatalf("row %d dim %d: EncodeTo %d != Encode %d", i, j, dst[j], want[j])
			}
		}
	}
}

func TestTablesRoundTrip(t *testing.T) {
	m := vec.NewMatrix(60, 7)
	rng := rand.New(rand.NewSource(9))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * 2)
	}
	qz := NewQuantizer(m)
	lo, step, halfE := qz.Tables()
	back, err := NewQuantizerFromTables(lo, step, halfE)
	if err != nil {
		t.Fatal(err)
	}
	codes := qz.EncodeMatrix(m)
	if err := back.Validate(m, codes); err != nil {
		t.Fatalf("round-tripped quantizer rejects its own codes: %v", err)
	}
	for i := 0; i < m.N; i++ {
		a := qz.Encode(m.Row(i))
		b := back.Encode(m.Row(i))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d dim %d: %d != %d after round trip", i, j, a[j], b[j])
			}
		}
	}
}

func TestNewQuantizerFromTablesRejectsBadGrids(t *testing.T) {
	nan := float32(math.NaN())
	cases := []struct {
		name  string
		lo    []float32
		step  []float32
		halfE []float64
	}{
		{"empty", nil, nil, nil},
		{"length mismatch", []float32{0, 1}, []float32{1}, []float64{1, 1}},
		{"nan lo", []float32{nan}, []float32{1}, []float64{1}},
		{"negative step", []float32{0}, []float32{-1}, []float64{1}},
		{"nan step", []float32{0}, []float32{nan}, []float64{1}},
		{"negative halfE", []float32{0}, []float32{1}, []float64{-1}},
		{"inf halfE", []float32{0}, []float32{1}, []float64{math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := NewQuantizerFromTables(tc.lo, tc.step, tc.halfE); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestValidateCatchesTampering: flipping a single code or shrinking a halfE
// entry must fail validation — the property the container loader relies on
// to refuse mirrors that would silently prune true neighbors.
func TestValidateCatchesTampering(t *testing.T) {
	m := vec.NewMatrix(30, 5)
	rng := rand.New(rand.NewSource(13))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	qz := NewQuantizer(m)
	codes := qz.EncodeMatrix(m)
	if err := qz.Validate(m, codes); err != nil {
		t.Fatalf("clean codes must validate: %v", err)
	}
	if err := qz.Validate(m, codes[:len(codes)-1]); err == nil {
		t.Fatal("truncated codes must fail")
	}
	tampered := append([]uint8(nil), codes...)
	// Push one code to the opposite end of its grid: the decoded point moves
	// far outside the halfE band unless the dimension is (nearly) constant.
	if tampered[7] < 128 {
		tampered[7] = 255
	} else {
		tampered[7] = 0
	}
	if err := qz.Validate(m, tampered); err == nil {
		t.Fatal("tampered code must fail")
	}
	lo, step, halfE := qz.Tables()
	for j := range halfE {
		halfE[j] /= 16
	}
	tight, err := NewQuantizerFromTables(lo, step, halfE)
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Validate(m, codes); err == nil {
		t.Fatal("understated halfE must fail")
	}
}
