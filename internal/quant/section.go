package quant

import (
	"p2h/internal/binio"
	"p2h/internal/vec"
)

// Serialization of the quantization section shared by the tree formats'
// version 3 streams: a presence flag, the per-dimension grid tables, and the
// packed code mirror of the (already serialized) point rows.

// WriteSection appends the quantization section for qz and its code mirror.
func WriteSection(bw *binio.Writer, qz *Quantizer, codes []uint8) {
	lo, step, halfE := qz.Tables()
	bw.U8(1)
	bw.F32s(lo)
	bw.F32s(step)
	bw.F64s(halfE)
	bw.Bytes(codes)
}

// ReadSection reads a quantization section and returns the validated
// quantizer and code mirror for points. Validation is semantic, not just
// structural: the loaded tables must actually bound the decode error of
// every (point, code) pair, because an inconsistent mirror would silently
// prune true neighbors at query time — the one failure mode worse than a
// corrupt file. A zero presence flag returns nils (an unquantized stream).
func ReadSection(br *binio.Reader, points *vec.Matrix) (*Quantizer, []uint8) {
	switch br.U8() {
	case 0:
		return nil, nil
	case 1:
	default:
		br.Fail("bad quantization flag")
		return nil, nil
	}
	d := points.D
	lo := br.F32s(d)
	step := br.F32s(d)
	halfE := br.F64s(d)
	codes := br.U8s(points.N * d)
	if br.Err() != nil {
		return nil, nil
	}
	qz, err := NewQuantizerFromTables(lo, step, halfE)
	if err != nil {
		br.Fail("%v", err)
		return nil, nil
	}
	if err := qz.Validate(points, codes); err != nil {
		br.Fail("%v", err)
		return nil, nil
	}
	return qz, codes
}
