// Package quant provides per-dimension scalar quantization (8-bit codes)
// with a rigorous inner-product error bound, the fitted integer filter the
// trees run inside their leaf scans, and a filter-then-verify exhaustive
// scan built on the same machinery.
//
// The paper's Section III-A(4) argues Ball-Tree combines easily with other
// optimizations; this package is one such optimization made concrete: codes
// are 4x smaller than float32 vectors, the approximate inner product is
// computed directly on codes, and the error bound makes the filter exact —
// a point is only skipped when its approximate score provably cannot beat
// the current k-th best.
//
// The pieces compose in three layers:
//
//   - Quantizer fits one affine grid per dimension (lo_j + c*step_j,
//     c in 0..255) and records halfE_j, the per-dimension worst-case
//     reconstruction error. Encode/EncodeMatrix produce the code mirror;
//     Validate re-checks the halfE invariant against a concrete data/code
//     pair, which is how loaded containers refuse corrupted mirrors.
//
//   - CodeFilter (Fit/FitInto) turns a query into integer-filter
//     coefficients: int16 weights for vec.CodeDot plus a total error bound
//     Eps that accounts for quantization, weight rounding, and the float64
//     arithmetic of evaluating the bound itself. See DESIGN.md ("Quantized
//     leaf scan") for the full derivation.
//
//   - Scan is the exhaustive filter-then-verify baseline over a whole
//     matrix; internal/balltree and internal/bctree run the same filter
//     per leaf block inside tree traversal.
//
// Everything here preserves exactness: filters only ever skip rows whose
// bound proves they cannot enter the top-k, so exact search with
// quantization returns byte-identical results to the float-only paths.
package quant
