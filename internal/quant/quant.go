package quant

import (
	"fmt"
	"math"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// levels is the number of quantization levels per dimension (8-bit codes).
const levels = 255

// float32Slack bounds the float32 rounding of the stored values and of the
// decode arithmetic, relative to the dimension's magnitude: a few ulps. It
// matters when a dimension's span is so small that the quantization step
// falls below the ulp of the values themselves.
const float32Slack = 4.0 / (1 << 23)

// Quantizer maps float32 vectors to uint8 codes, one affine grid per
// dimension.
type Quantizer struct {
	lo    []float32 // per-dimension minimum
	step  []float32 // per-dimension step ((hi-lo)/levels); 0 for constant dims
	halfE []float64 // per-dimension max absolute reconstruction error
}

// NewQuantizer fits per-dimension grids to the rows of data.
func NewQuantizer(data *vec.Matrix) *Quantizer {
	if data == nil || data.N == 0 {
		panic("quant: empty data")
	}
	d := data.D
	q := &Quantizer{
		lo:    make([]float32, d),
		step:  make([]float32, d),
		halfE: make([]float64, d),
	}
	hi := make([]float32, d)
	copy(q.lo, data.Row(0))
	copy(hi, data.Row(0))
	for i := 1; i < data.N; i++ {
		row := data.Row(i)
		for j, v := range row {
			if v < q.lo[j] {
				q.lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for j := 0; j < d; j++ {
		span := hi[j] - q.lo[j]
		mag := math.Max(math.Abs(float64(q.lo[j])), math.Abs(float64(hi[j])))
		if span > 0 {
			q.step[j] = span / levels
			q.halfE[j] = float64(q.step[j])/2 + float32Slack*mag
		}
	}
	return q
}

// Dim returns the vector dimensionality.
func (q *Quantizer) Dim() int { return len(q.lo) }

// Encode quantizes x into an 8-bit code vector.
func (q *Quantizer) Encode(x []float32) []uint8 {
	if len(x) != q.Dim() {
		panic(fmt.Sprintf("quant: vector dimension %d != %d", len(x), q.Dim()))
	}
	out := make([]uint8, len(x))
	q.EncodeTo(out, x)
	return out
}

// Decode reconstructs the grid point of a code vector. The grid arithmetic
// runs in float64 so the only rounding is the final float32 conversion,
// which halfE covers.
func (q *Quantizer) Decode(code []uint8) []float32 {
	out := make([]float32, len(code))
	for j, c := range code {
		out[j] = float32(float64(q.lo[j]) + float64(c)*float64(q.step[j]))
	}
	return out
}

// MaxError returns, for a given query, the maximum possible difference
// between the exact inner product <query, x> and the approximate inner
// product computed on x's code: sum_j |query_j| * halfE_j.
func (q *Quantizer) MaxError(query []float32) float64 {
	if len(query) != q.Dim() {
		panic(fmt.Sprintf("quant: query dimension %d != %d", len(query), q.Dim()))
	}
	var e float64
	for j, v := range query {
		e += math.Abs(float64(v)) * q.halfE[j]
	}
	return e
}

// QueryCoeffs precomputes the affine form of the approximate inner product:
// <query, decode(code)> = base + sum_j w_j * code_j.
func (q *Quantizer) QueryCoeffs(query []float32) (base float64, w []float64) {
	if len(query) != q.Dim() {
		panic(fmt.Sprintf("quant: query dimension %d != %d", len(query), q.Dim()))
	}
	w = make([]float64, len(query))
	for j, v := range query {
		base += float64(v) * float64(q.lo[j])
		w[j] = float64(v) * float64(q.step[j])
	}
	return base, w
}

// approxIP evaluates the precomputed affine form on one code vector.
func approxIP(base float64, w []float64, code []uint8) float64 {
	s := base
	for j, c := range code {
		s += w[j] * float64(c)
	}
	return s
}

// Scan is an exhaustive P2HNNS baseline over quantized codes: the
// approximate |<x, q>| filters candidates, and only points whose
// approximate score minus the error bound beats the current k-th best are
// verified against the float vectors. Results are exact.
type Scan struct {
	data  *vec.Matrix // original lifted vectors, for verification
	quant *Quantizer
	codes []uint8 // n * d, row-major
}

// NewScan quantizes the lifted data matrix.
func NewScan(data *vec.Matrix) *Scan {
	q := NewQuantizer(data)
	return &Scan{data: data, quant: q, codes: q.EncodeMatrix(data)}
}

// N returns the number of indexed points.
func (s *Scan) N() int { return s.data.N }

// Dim returns the lifted dimensionality.
func (s *Scan) Dim() int { return s.data.D }

// IndexBytes reports the code storage plus the per-dimension grids.
func (s *Scan) IndexBytes() int64 {
	return int64(len(s.codes)) + int64(s.data.D)*(4+4+8)
}

// Search returns the exact top-k: the quantized filter only skips points
// whose approximate score provably cannot beat the current threshold.
// A candidate budget caps exact verifications, as for the other indexes.
func (s *Scan) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)
	var f CodeFilter
	s.quant.Fit(&f, q)
	d := s.data.D
	for i := 0; i < s.data.N; i++ {
		if !opts.BudgetLeft(st.Candidates) {
			break
		}
		if opts.Filter != nil && !opts.Filter(int32(i)) {
			continue
		}
		ip := vec.CodeDot(s.codes[i*d:(i+1)*d], f.W)
		approx := math.Abs(f.Base + float64(ip)*f.InvS)
		// |<x,q>| >= approx - eps: skip only when that floor strictly
		// exceeds the current k-th best distance (ties must reach the
		// collector's canonical (Dist, ID) order, as in the trees).
		if approx-f.Eps > tk.Lambda() {
			st.PrunedPoints++
			continue
		}
		exact := math.Abs(vec.Dot(q, s.data.Row(i)))
		st.IPCount++
		st.Candidates++
		tk.Push(int32(i), exact)
	}
	return tk.Results(), st
}
