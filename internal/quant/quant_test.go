package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func setup(t *testing.T, family dataset.Family, n, d int, seed int64) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: d, Clusters: 6}, n, seed)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 10, seed+1)
}

func TestNewQuantizerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantizer(vec.NewMatrix(0, 3))
}

// TestQuickEncodeDecodeWithinHalfStep: reconstruction error per dimension is
// at most the quantizer's per-dimension bound (half a step plus the float32
// rounding slack), for vectors inside the fitted range.
func TestQuickEncodeDecodeWithinHalfStep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 10
		d := rng.Intn(12) + 1
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64() * 10)
		}
		q := NewQuantizer(m)
		for i := 0; i < n; i++ {
			row := m.Row(i)
			back := q.Decode(q.Encode(row))
			for j := range row {
				if math.Abs(float64(back[j]-row[j])) > q.halfE[j]+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInnerProductErrorBound: |<q,x> - approx| <= MaxError(q) for all
// indexed vectors.
func TestQuickInnerProductErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 10
		d := rng.Intn(10) + 1
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64() * 5)
		}
		quantizer := NewQuantizer(m)
		query := make([]float32, d)
		for j := range query {
			query[j] = float32(rng.NormFloat64())
		}
		base, w := quantizer.QueryCoeffs(query)
		eps := quantizer.MaxError(query)
		for i := 0; i < n; i++ {
			exact := vec.Dot(query, m.Row(i))
			approx := approxIP(base, w, quantizer.Encode(m.Row(i)))
			if math.Abs(exact-approx) > eps+1e-6*(1+math.Abs(exact)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConstantDimensionHandled(t *testing.T) {
	rows := [][]float32{{1, 5, 2}, {1, 6, 3}, {1, 7, 4}} // dim 0 constant
	m := vec.FromRows(rows)
	q := NewQuantizer(m)
	for i := range rows {
		back := q.Decode(q.Encode(m.Row(i)))
		if back[0] != 1 {
			t.Fatalf("constant dim must reconstruct exactly, got %v", back[0])
		}
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	m := vec.FromRows([][]float32{{0}, {10}})
	q := NewQuantizer(m)
	lowCode := q.Encode([]float32{-100})
	highCode := q.Encode([]float32{100})
	if lowCode[0] != 0 || highCode[0] != 255 {
		t.Fatalf("clamping failed: %d %d", lowCode[0], highCode[0])
	}
}

func TestScanExactMatchesLinearScan(t *testing.T) {
	for _, family := range []dataset.Family{dataset.FamilyClustered, dataset.FamilyUniform, dataset.FamilyHeavyTail} {
		data, queries := setup(t, family, 600, 16, 3)
		qs := NewScan(data)
		ref := linearscan.New(data)
		for i := 0; i < queries.N; i++ {
			q := queries.Row(i)
			got, _ := qs.Search(q, core.SearchOptions{K: 5})
			want, _ := ref.Search(q, core.SearchOptions{K: 5})
			for j := range want {
				if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
					t.Fatalf("%v query %d rank %d: %v != %v", family, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestScanPrunesOnClusteredData(t *testing.T) {
	data, queries := setup(t, dataset.FamilyClustered, 4000, 24, 5)
	qs := NewScan(data)
	var st core.Stats
	for i := 0; i < queries.N; i++ {
		_, s := qs.Search(queries.Row(i), core.SearchOptions{K: 1})
		st.Add(s)
	}
	if st.PrunedPoints == 0 {
		t.Fatal("quantized filter never pruned")
	}
	if st.Candidates >= int64(queries.N)*int64(data.N) {
		t.Fatal("no verification saved")
	}
}

func TestScanCompressionRatio(t *testing.T) {
	data, _ := setup(t, dataset.FamilyClustered, 1000, 64, 7)
	qs := NewScan(data)
	// Codes are 1 byte/dim vs 4 bytes/dim floats; allow grid overhead.
	if qs.IndexBytes() >= data.Bytes()/2 {
		t.Fatalf("codes too large: %d vs data %d", qs.IndexBytes(), data.Bytes())
	}
}

func TestScanBudgetRespected(t *testing.T) {
	data, queries := setup(t, dataset.FamilyUniform, 800, 8, 9)
	qs := NewScan(data)
	for _, budget := range []int{1, 50, 500} {
		for i := 0; i < queries.N; i++ {
			res, st := qs.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			if st.Candidates > int64(budget) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
			if len(res) == 0 {
				t.Fatal("budgeted search must return something")
			}
		}
	}
}
