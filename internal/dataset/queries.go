package dataset

import (
	"math"
	"math/rand"

	"p2h/internal/vec"
)

// GenerateQueries builds nq hyperplane queries for the raw data matrix
// (dimension d), modeling the protocol of Huang et al. [30] that the paper
// adopts ("we follow [30] and randomly generate 100 hyperplane queries"):
// the normal vector w is drawn from N(0, I_d) and normalized to unit length
// (the paper's assumption sqrt(sum q_i^2) = 1), and the offset places the
// hyperplane through the data centroid jittered by a fraction of the
// projection spread. Hyperplanes through the data bulk are exactly what the
// motivating applications produce (SVM decision boundaries in active
// learning, maximum-margin clustering splits), and they keep the offset
// coordinate — and hence ||q||, which multiplies every radius in the
// paper's bounds — of the same order as the normal vector.
//
// The returned matrix has dimension d+1: row = (w_1..w_d, b). Its inner
// product with a lifted data point x = (p; 1) is the signed point-to-
// hyperplane distance.
func GenerateQueries(data *vec.Matrix, nq int, seed int64) *vec.Matrix {
	if nq <= 0 {
		panic("dataset: GenerateQueries needs nq > 0")
	}
	if data.N == 0 {
		panic("dataset: GenerateQueries needs non-empty data")
	}
	rng := rand.New(rand.NewSource(seed))
	d := data.D
	centroid := dataCentroid(data)
	q := vec.NewMatrix(nq, d+1)
	w := make([]float32, d)
	for i := 0; i < nq; i++ {
		for j := range w {
			w[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(w)
		// Estimate the spread of projections onto w from a small sample so
		// the jitter scale adapts to the data set.
		spread := projectionSpread(data, w, rng)
		b := -vec.Dot(w, centroid) + rng.NormFloat64()*spread*0.2
		row := q.Row(i)
		copy(row, w)
		row[d] = float32(b)
	}
	return q
}

func dataCentroid(data *vec.Matrix) []float32 {
	acc := make([]float64, data.D)
	for i := 0; i < data.N; i++ {
		vec.AddInto(acc, data.Row(i))
	}
	inv := 1 / float64(data.N)
	for i := range acc {
		acc[i] *= inv
	}
	return vec.Round32(acc)
}

// projectionSpread estimates the standard deviation of <w, p> over a sample
// of at most 64 data points.
func projectionSpread(data *vec.Matrix, w []float32, rng *rand.Rand) float64 {
	sample := 64
	if sample > data.N {
		sample = data.N
	}
	var sum, sumSq float64
	for s := 0; s < sample; s++ {
		v := vec.Dot(w, data.Row(rng.Intn(data.N)))
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(sample)
	varr := sumSq/float64(sample) - mean*mean
	if varr < 1e-12 {
		return 1
	}
	return math.Sqrt(varr)
}
