// Package dataset provides the data substrate for the reproduction: synthetic
// generators standing in for the paper's 16 real-world data sets (Table II),
// the hyperplane-query generator of Huang et al. [30], duplicate removal, and
// an fvecs-style binary interchange format.
//
// The real corpora (Music, GloVe, Sift, ..., Deep100M, Sift100M) total tens
// of gigabytes and cannot ship with this repository, so each one is mapped to
// a synthetic family that preserves the geometric structure the paper's
// pruning bounds interact with: cluster concentration (image descriptors),
// low-rank correlation (text embeddings), heavy-tailed norms (ratings), and
// sparse non-negative blocks (biology). See DESIGN.md Section 5.
package dataset

import (
	"fmt"
	"sort"
)

// Family identifies a synthetic generator family.
type Family int

const (
	// FamilyClustered is a Gaussian mixture: well-separated centers with
	// unit intra-cluster spread. Stands in for image/audio descriptors
	// (Sift, Tiny, Cifar-10, Gist, ...), which are strongly clustered —
	// the regime where ball bounds prune best.
	FamilyClustered Family = iota
	// FamilyLowRank draws points from a low-rank linear model plus noise,
	// mimicking text embeddings (GloVe, NUSW) whose intrinsic dimension
	// is far below d.
	FamilyLowRank
	// FamilyHeavyTail places points uniformly on directions with
	// log-normal radii, mimicking rating/latent-factor data (Music) with
	// a wide norm spread.
	FamilyHeavyTail
	// FamilySparse emits block-sparse non-negative vectors, mimicking
	// bag-of-words / biology features (Enron, P53).
	FamilySparse
	// FamilyUniform is an iid Gaussian cube; no exploitable structure.
	// Used by tests as a worst case, not mapped to a paper data set.
	FamilyUniform
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyClustered:
		return "clustered"
	case FamilyLowRank:
		return "low-rank"
	case FamilyHeavyTail:
		return "heavy-tail"
	case FamilySparse:
		return "sparse"
	case FamilyUniform:
		return "uniform"
	}
	return "unknown"
}

// Spec describes one data set surrogate: the paper's published statistics
// plus the synthetic family and default reproduction size.
type Spec struct {
	Name     string
	Family   Family
	PaperN   int    // row count reported in Table II
	RawDim   int    // data dimension d reported in Table II
	DataType string // Table II data-type column
	ScaledN  int    // default reproduction row count (before -scale)
	Clusters int    // mixture components for FamilyClustered
}

// catalog lists the 16 data sets of Table II in paper order.
var catalog = []Spec{
	{Name: "Music", Family: FamilyHeavyTail, PaperN: 1000000, RawDim: 100, DataType: "Rating", ScaledN: 20000, Clusters: 0},
	{Name: "GloVe", Family: FamilyLowRank, PaperN: 1183514, RawDim: 100, DataType: "Text", ScaledN: 20000, Clusters: 0},
	{Name: "Sift", Family: FamilyClustered, PaperN: 985462, RawDim: 128, DataType: "Image", ScaledN: 20000, Clusters: 64},
	{Name: "UKBench", Family: FamilyClustered, PaperN: 1097907, RawDim: 128, DataType: "Image", ScaledN: 20000, Clusters: 64},
	{Name: "Tiny", Family: FamilyClustered, PaperN: 1000000, RawDim: 384, DataType: "Image", ScaledN: 10000, Clusters: 48},
	{Name: "Msong", Family: FamilyClustered, PaperN: 992272, RawDim: 420, DataType: "Audio", ScaledN: 10000, Clusters: 48},
	{Name: "NUSW", Family: FamilyLowRank, PaperN: 268643, RawDim: 500, DataType: "Image", ScaledN: 8000, Clusters: 0},
	{Name: "Cifar-10", Family: FamilyClustered, PaperN: 50000, RawDim: 512, DataType: "Image", ScaledN: 8000, Clusters: 32},
	{Name: "Sun", Family: FamilyClustered, PaperN: 79106, RawDim: 512, DataType: "Image", ScaledN: 8000, Clusters: 32},
	{Name: "LabelMe", Family: FamilyClustered, PaperN: 181093, RawDim: 512, DataType: "Image", ScaledN: 8000, Clusters: 32},
	{Name: "Gist", Family: FamilyClustered, PaperN: 982694, RawDim: 960, DataType: "Image", ScaledN: 5000, Clusters: 24},
	{Name: "Enron", Family: FamilySparse, PaperN: 94987, RawDim: 1369, DataType: "Text", ScaledN: 4000, Clusters: 0},
	{Name: "Trevi", Family: FamilyClustered, PaperN: 100900, RawDim: 4096, DataType: "Image", ScaledN: 2000, Clusters: 16},
	{Name: "P53", Family: FamilySparse, PaperN: 31153, RawDim: 5408, DataType: "Biology", ScaledN: 1500, Clusters: 0},
	{Name: "Deep100M", Family: FamilyClustered, PaperN: 100000000, RawDim: 96, DataType: "Image", ScaledN: 200000, Clusters: 128},
	{Name: "Sift100M", Family: FamilyClustered, PaperN: 99986452, RawDim: 128, DataType: "Image", ScaledN: 200000, Clusters: 128},
}

// Catalog returns the specs of all 16 surrogate data sets in Table II order.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// SmallSets returns the 14 "small" data sets used by Figures 5-8 and 10-11
// (everything except Deep100M and Sift100M).
func SmallSets() []Spec {
	out := make([]Spec, 0, 14)
	for _, s := range catalog {
		if s.Name != "Deep100M" && s.Name != "Sift100M" {
			out = append(out, s)
		}
	}
	return out
}

// LargeSets returns the two 100M-scale data sets used by Figure 9.
func LargeSets() []Spec {
	return []Spec{ByName("Deep100M"), ByName("Sift100M")}
}

// ByName looks a spec up by its Table II name (case sensitive).
// It panics on unknown names; use Lookup for a soft failure.
func ByName(name string) Spec {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("dataset: unknown data set %q", name))
	}
	return s
}

// Lookup looks a spec up by name and reports whether it exists.
func Lookup(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all catalog names sorted alphabetically.
func Names() []string {
	out := make([]string, len(catalog))
	for i, s := range catalog {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}
