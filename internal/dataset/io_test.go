package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"p2h/internal/vec"
)

func TestFvecsRoundTrip(t *testing.T) {
	m := Generate(Spec{Name: "t", Family: FamilyUniform, RawDim: 13}, 47, 1)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.D != m.D {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.N, got.D, m.N, m.D)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("round trip data mismatch at %d", i)
		}
	}
}

func TestFvecsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.fvecs")
	m := Generate(Spec{Name: "t", Family: FamilyUniform, RawDim: 5}, 11, 2)
	if err := SaveFvecs(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 11 || got.D != 5 {
		t.Fatalf("loaded shape %dx%d", got.N, got.D)
	}
}

func TestLoadFvecsMissingFile(t *testing.T) {
	_, err := LoadFvecs(filepath.Join(t.TempDir(), "nope.fvecs"))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

func TestReadFvecsEmpty(t *testing.T) {
	_, err := ReadFvecs(bytes.NewReader(nil))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty stream: want ErrBadFormat, got %v", err)
	}
}

func TestReadFvecsNegativeDim(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int32(-4))
	_, err := ReadFvecs(&buf)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("negative dim: want ErrBadFormat, got %v", err)
	}
}

func TestReadFvecsHugeDim(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int32(maxDim+1))
	_, err := ReadFvecs(&buf)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("huge dim: want ErrBadFormat, got %v", err)
	}
}

func TestReadFvecsTruncatedRow(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int32(4))
	binary.Write(&buf, binary.LittleEndian, []float32{1, 2}) // 2 of 4 values
	_, err := ReadFvecs(&buf)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated row: want ErrBadFormat, got %v", err)
	}
}

func TestReadFvecsInconsistentDims(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int32(2))
	binary.Write(&buf, binary.LittleEndian, []float32{1, 2})
	binary.Write(&buf, binary.LittleEndian, int32(3))
	binary.Write(&buf, binary.LittleEndian, []float32{1, 2, 3})
	_, err := ReadFvecs(&buf)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("inconsistent dims: want ErrBadFormat, got %v", err)
	}
}

// Property: round trip through fvecs is the identity for random matrices.
func TestQuickFvecsRoundTrip(t *testing.T) {
	f := func(seed int64, nn, dd uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := int(nn%20)+1, int(dd%16)+1
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
		var buf bytes.Buffer
		if err := WriteFvecs(&buf, m); err != nil {
			return false
		}
		got, err := ReadFvecs(&buf)
		if err != nil || got.N != n || got.D != d {
			return false
		}
		for i := range m.Data {
			if got.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
