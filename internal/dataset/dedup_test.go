package dataset

import (
	"testing"

	"p2h/internal/vec"
)

func TestDedupRemovesDuplicates(t *testing.T) {
	m := vec.FromRows([][]float32{
		{1, 2}, {3, 4}, {1, 2}, {5, 6}, {3, 4}, {1, 2},
	})
	got := Dedup(m)
	if got.N != 3 {
		t.Fatalf("Dedup kept %d rows, want 3", got.N)
	}
	want := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	for i, w := range want {
		r := got.Row(i)
		if r[0] != w[0] || r[1] != w[1] {
			t.Fatalf("row %d = %v, want %v (order must be preserved)", i, r, w)
		}
	}
}

func TestDedupNoDuplicatesReturnsSame(t *testing.T) {
	m := vec.FromRows([][]float32{{1, 0}, {0, 1}, {1, 1}})
	got := Dedup(m)
	if got != m {
		t.Fatal("Dedup with no duplicates should return the input matrix unchanged")
	}
}

func TestDedupDistinguishesNegativeZero(t *testing.T) {
	// +0 and -0 have distinct bit patterns; Dedup works on bits, so the two
	// rows are kept. This is intentional: it matches bytewise dedup of the
	// original corpora files.
	m := vec.FromRows([][]float32{{0}, {float32(negZero())}})
	got := Dedup(m)
	if got.N != 2 {
		t.Fatalf("Dedup merged +0 and -0; kept %d rows", got.N)
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestDedupLargeRandomNoCollisionLoss(t *testing.T) {
	m := Generate(Spec{Name: "t", Family: FamilyUniform, RawDim: 6}, 2000, 1)
	got := Dedup(m)
	if got.N != m.N {
		t.Fatalf("random floats should all be unique: %d != %d", got.N, m.N)
	}
}
