package dataset

import (
	"math"
	"testing"

	"p2h/internal/vec"
)

func TestGenerateShapes(t *testing.T) {
	for _, fam := range []Family{FamilyClustered, FamilyLowRank, FamilyHeavyTail, FamilySparse, FamilyUniform} {
		spec := Spec{Name: "t", Family: fam, RawDim: 24, ScaledN: 100, Clusters: 4}
		m := Generate(spec, 0, 1)
		if m.N != 100 || m.D != 24 {
			t.Errorf("%v: shape %dx%d, want 100x24", fam, m.N, m.D)
		}
		m = Generate(spec, 37, 1)
		if m.N != 37 {
			t.Errorf("%v: explicit n ignored, got %d", fam, m.N)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := ByName("Sift")
	a := Generate(spec, 50, 7)
	b := Generate(spec, 50, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := Generate(spec, 50, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must generate different data")
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	Generate(Spec{Name: "bad", Family: FamilyUniform, RawDim: 0}, 10, 1)
}

func TestGeneratePanicsOnUnknownFamily(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown family")
		}
	}()
	Generate(Spec{Name: "bad", Family: Family(99), RawDim: 4}, 10, 1)
}

// Clustered data must have much lower within-cluster spread than global
// spread; we check that nearest-point distances are far below the global
// average distance, which is what makes ball bounds effective.
func TestClusteredHasStructure(t *testing.T) {
	spec := Spec{Name: "c", Family: FamilyClustered, RawDim: 16, Clusters: 8}
	m := Generate(spec, 400, 3)
	nnAvg := avgNearestDist(m, 50)
	globAvg := avgPairDist(m, 200)
	if nnAvg >= globAvg*0.6 {
		t.Fatalf("clustered data lacks structure: nn=%.3f glob=%.3f", nnAvg, globAvg)
	}
}

// Uniform iid data must NOT have that structure at the same ratio.
func TestUniformLacksStructure(t *testing.T) {
	spec := Spec{Name: "u", Family: FamilyUniform, RawDim: 16}
	m := Generate(spec, 400, 3)
	nnAvg := avgNearestDist(m, 50)
	globAvg := avgPairDist(m, 200)
	if nnAvg < globAvg*0.4 {
		t.Fatalf("uniform data unexpectedly clustered: nn=%.3f glob=%.3f", nnAvg, globAvg)
	}
}

func TestHeavyTailNormSpread(t *testing.T) {
	spec := Spec{Name: "h", Family: FamilyHeavyTail, RawDim: 32}
	m := Generate(spec, 500, 5)
	minN, maxN := math.Inf(1), 0.0
	for i := 0; i < m.N; i++ {
		n := vec.Norm(m.Row(i))
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN/minN < 3 {
		t.Fatalf("heavy-tail norms too uniform: min=%.3f max=%.3f", minN, maxN)
	}
}

func TestSparseIsMostlySmall(t *testing.T) {
	spec := Spec{Name: "s", Family: FamilySparse, RawDim: 64}
	m := Generate(spec, 100, 9)
	small := 0
	for _, v := range m.Data {
		if v >= 0 && v < 0.2 {
			small++
		}
		if v < 0 {
			t.Fatal("sparse family must be non-negative")
		}
	}
	frac := float64(small) / float64(len(m.Data))
	if frac < 0.7 {
		t.Fatalf("sparse family not sparse: small fraction %.2f", frac)
	}
}

func avgNearestDist(m *vec.Matrix, sample int) float64 {
	if sample > m.N {
		sample = m.N
	}
	var sum float64
	for i := 0; i < sample; i++ {
		best := math.Inf(1)
		for j := 0; j < m.N; j++ {
			if i == j {
				continue
			}
			d := vec.Dist(m.Row(i), m.Row(j))
			if d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(sample)
}

func avgPairDist(m *vec.Matrix, pairs int) float64 {
	var sum float64
	count := 0
	for i := 0; count < pairs; i++ {
		a := (i * 7919) % m.N
		b := (i*104729 + 1) % m.N
		if a == b {
			continue
		}
		sum += vec.Dist(m.Row(a), m.Row(b))
		count++
	}
	return sum / float64(pairs)
}
