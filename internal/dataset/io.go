package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"p2h/internal/vec"
)

// The interchange format is the fvecs layout used by the corpora the paper
// evaluates (corpus-texmex.irisa.fr): every vector is an int32 dimension
// followed by that many little-endian float32 components. All vectors in a
// file must share one dimension.

// maxDim guards against corrupt headers allocating absurd buffers.
const maxDim = 1 << 20

// ErrBadFormat reports a structurally invalid fvecs stream.
var ErrBadFormat = errors.New("dataset: bad fvecs format")

// WriteFvecs writes m to w in fvecs format.
func WriteFvecs(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.N; i++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(m.D)); err != nil {
			return fmt.Errorf("dataset: write header row %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Row(i)); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadFvecs reads an entire fvecs stream into a matrix.
func ReadFvecs(r io.Reader) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	d := -1
	for rowIdx := 0; ; rowIdx++ {
		var dim int32
		err := binary.Read(br, binary.LittleEndian, &dim)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read header row %d: %w", rowIdx, err)
		}
		if dim <= 0 || dim > maxDim {
			return nil, fmt.Errorf("%w: row %d has dimension %d", ErrBadFormat, rowIdx, dim)
		}
		if d == -1 {
			d = int(dim)
		} else if int(dim) != d {
			return nil, fmt.Errorf("%w: row %d dimension %d != %d", ErrBadFormat, rowIdx, dim, d)
		}
		row := make([]float32, d)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("%w: truncated row %d: %v", ErrBadFormat, rowIdx, err)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadFormat)
	}
	return vec.FromRows(rows), nil
}

// SaveFvecs writes m to the named file.
func SaveFvecs(path string, m *vec.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFvecs(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFvecs reads the named fvecs file.
func LoadFvecs(path string) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f)
}
