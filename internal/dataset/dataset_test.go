package dataset

import (
	"testing"
)

func TestCatalogHas16Sets(t *testing.T) {
	c := Catalog()
	if len(c) != 16 {
		t.Fatalf("catalog has %d sets, want 16", len(c))
	}
	// Table II order: first and last entries.
	if c[0].Name != "Music" || c[15].Name != "Sift100M" {
		t.Fatalf("catalog order wrong: %s ... %s", c[0].Name, c[15].Name)
	}
}

func TestCatalogMatchesTableII(t *testing.T) {
	want := map[string]struct{ n, d int }{
		"Music":    {1000000, 100},
		"GloVe":    {1183514, 100},
		"Sift":     {985462, 128},
		"UKBench":  {1097907, 128},
		"Tiny":     {1000000, 384},
		"Msong":    {992272, 420},
		"NUSW":     {268643, 500},
		"Cifar-10": {50000, 512},
		"Sun":      {79106, 512},
		"LabelMe":  {181093, 512},
		"Gist":     {982694, 960},
		"Enron":    {94987, 1369},
		"Trevi":    {100900, 4096},
		"P53":      {31153, 5408},
		"Deep100M": {100000000, 96},
		"Sift100M": {99986452, 128},
	}
	for name, w := range want {
		s := ByName(name)
		if s.PaperN != w.n || s.RawDim != w.d {
			t.Errorf("%s: got (n=%d,d=%d), Table II says (n=%d,d=%d)", name, s.PaperN, s.RawDim, w.n, w.d)
		}
	}
}

func TestSmallAndLargeSets(t *testing.T) {
	if len(SmallSets()) != 14 {
		t.Fatalf("SmallSets = %d, want 14", len(SmallSets()))
	}
	ls := LargeSets()
	if len(ls) != 2 || ls[0].Name != "Deep100M" || ls[1].Name != "Sift100M" {
		t.Fatalf("LargeSets = %v", ls)
	}
	for _, s := range SmallSets() {
		if s.Name == "Deep100M" || s.Name == "Sift100M" {
			t.Fatalf("SmallSets must not contain %s", s.Name)
		}
	}
}

func TestLookupAndByName(t *testing.T) {
	if _, ok := Lookup("NoSuchSet"); ok {
		t.Fatal("Lookup of unknown set must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ByName of unknown set must panic")
		}
	}()
	ByName("NoSuchSet")
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("Names = %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names not sorted at %d: %s < %s", i, names[i], names[i-1])
		}
	}
}

func TestFamilyString(t *testing.T) {
	cases := map[Family]string{
		FamilyClustered: "clustered",
		FamilyLowRank:   "low-rank",
		FamilyHeavyTail: "heavy-tail",
		FamilySparse:    "sparse",
		FamilyUniform:   "uniform",
		Family(42):      "unknown",
	}
	for f, s := range cases {
		if f.String() != s {
			t.Errorf("Family(%d).String() = %q, want %q", f, f.String(), s)
		}
	}
}
