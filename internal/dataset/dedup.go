package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"p2h/internal/vec"
)

// Dedup removes exact duplicate rows, keeping the first occurrence of each
// distinct vector, mirroring the paper's preprocessing ("we first remove the
// duplicate data points"). The relative row order of survivors is preserved.
func Dedup(m *vec.Matrix) *vec.Matrix {
	type slot struct{ rows []int32 }
	buckets := make(map[uint64]*slot, m.N)
	keep := make([]int32, 0, m.N)
	h := fnv.New64a()
	var buf [4]byte
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		h.Reset()
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
		key := h.Sum64()
		s := buckets[key]
		if s == nil {
			s = &slot{}
			buckets[key] = s
		}
		dup := false
		for _, prev := range s.rows {
			if rowsEqual(m.Row(int(prev)), row) {
				dup = true
				break
			}
		}
		if !dup {
			s.rows = append(s.rows, int32(i))
			keep = append(keep, int32(i))
		}
	}
	if len(keep) == m.N {
		return m
	}
	return m.SubsetRows(keep)
}

func rowsEqual(a, b []float32) bool {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
