package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"p2h/internal/vec"
)

// Generate synthesizes n raw data points of dimension spec.RawDim from the
// spec's family using a deterministic RNG seeded with seed. If n <= 0 the
// spec's ScaledN is used. The returned matrix holds raw points p (the
// trailing 1 of x = (p; 1) is appended by the indexes, not here).
func Generate(spec Spec, n int, seed int64) *vec.Matrix {
	if n <= 0 {
		n = spec.ScaledN
	}
	if spec.RawDim <= 0 {
		panic(fmt.Sprintf("dataset: spec %q has invalid dimension %d", spec.Name, spec.RawDim))
	}
	rng := rand.New(rand.NewSource(seed))
	switch spec.Family {
	case FamilyClustered:
		c := spec.Clusters
		if c <= 0 {
			c = 32
		}
		return genClustered(rng, n, spec.RawDim, c)
	case FamilyLowRank:
		return genLowRank(rng, n, spec.RawDim)
	case FamilyHeavyTail:
		return genHeavyTail(rng, n, spec.RawDim)
	case FamilySparse:
		return genSparse(rng, n, spec.RawDim)
	case FamilyUniform:
		return genUniform(rng, n, spec.RawDim)
	}
	panic(fmt.Sprintf("dataset: unknown family %d", spec.Family))
}

// genClustered draws a Gaussian mixture with per-coordinate center spread
// `spread` and intra-cluster noise scaled by 1/sqrt(d) so that every cluster
// has Euclidean radius of the same order as the center projection spread,
// independent of the ambient dimension. This mirrors real descriptor
// corpora, whose clusters stay tight relative to random-direction projection
// spreads — the property that makes the paper's ball bounds prune. An iid
// unit-sigma mixture (radius sigma*sqrt(d)) would drown every projection and
// no ball bound could ever fire in high d; see FamilyUniform for that
// worst case.
func genClustered(rng *rand.Rand, n, d, clusters int) *vec.Matrix {
	const spread = 4.0
	sigma := spread * 0.5 / math.Sqrt(float64(d))
	centers := vec.NewMatrix(clusters, d)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64() * spread)
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		row := m.Row(i)
		for j := 0; j < d; j++ {
			row[j] = c[j] + float32(rng.NormFloat64()*sigma)
		}
	}
	return m
}

// genLowRank draws x = A z + 0.1 eps with rank r << d, mimicking embedding
// matrices whose intrinsic dimension is small.
func genLowRank(rng *rand.Rand, n, d int) *vec.Matrix {
	r := d / 8
	if r < 4 {
		r = 4
	}
	if r > 48 {
		r = 48
	}
	a := vec.NewMatrix(d, r)
	scale := 1 / math.Sqrt(float64(r))
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64() * scale)
	}
	m := vec.NewMatrix(n, d)
	z := make([]float64, r)
	for i := 0; i < n; i++ {
		for j := range z {
			z[j] = rng.NormFloat64() * 3
		}
		row := m.Row(i)
		for j := 0; j < d; j++ {
			aj := a.Row(j)
			var s float64
			for k := 0; k < r; k++ {
				s += float64(aj[k]) * z[k]
			}
			row[j] = float32(s + 0.1*rng.NormFloat64())
		}
	}
	return m
}

// genHeavyTail distributes directions uniformly on the sphere and radii
// log-normally, producing the wide norm spread of latent-factor data.
func genHeavyTail(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(row)
		radius := math.Exp(rng.NormFloat64()*0.6) * math.Sqrt(float64(d)) * 0.5
		vec.Scale(row, radius)
	}
	return m
}

// genSparse emits non-negative block-sparse vectors: one active block of
// width d/16 per point plus small background noise.
func genSparse(rng *rand.Rand, n, d int) *vec.Matrix {
	block := d / 16
	if block < 4 {
		block = 4
	}
	if block > d {
		block = d
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float32(math.Abs(rng.NormFloat64()) * 0.01)
		}
		start := rng.Intn(d - block + 1)
		for j := start; j < start+block; j++ {
			row[j] = float32(math.Abs(rng.NormFloat64()) * 2)
		}
	}
	return m
}

// genUniform draws iid standard Gaussians (test-only worst case).
func genUniform(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}
