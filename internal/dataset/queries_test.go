package dataset

import (
	"math"
	"testing"

	"p2h/internal/vec"
)

func TestGenerateQueriesShapeAndNormalization(t *testing.T) {
	data := Generate(Spec{Name: "t", Family: FamilyClustered, RawDim: 20, Clusters: 4}, 300, 1)
	q := GenerateQueries(data, 25, 2)
	if q.N != 25 || q.D != 21 {
		t.Fatalf("queries shape %dx%d, want 25x21", q.N, q.D)
	}
	for i := 0; i < q.N; i++ {
		w := q.Row(i)[:20]
		n := vec.Norm(w)
		if math.Abs(n-1) > 1e-5 {
			t.Fatalf("query %d normal not unit: %v", i, n)
		}
	}
}

// The hyperplanes must pass through the data region: for each query there
// must exist points on both sides (otherwise |<x,q>| is minimized at the
// data boundary and the problem degenerates).
func TestGenerateQueriesCutData(t *testing.T) {
	data := Generate(Spec{Name: "t", Family: FamilyClustered, RawDim: 16, Clusters: 8}, 500, 3)
	lifted := data.AppendOnes()
	q := GenerateQueries(data, 20, 4)
	cut := 0
	for i := 0; i < q.N; i++ {
		pos, neg := false, false
		for j := 0; j < lifted.N; j++ {
			v := vec.Dot(lifted.Row(j), q.Row(i))
			if v > 0 {
				pos = true
			} else if v < 0 {
				neg = true
			}
			if pos && neg {
				break
			}
		}
		if pos && neg {
			cut++
		}
	}
	if cut < q.N*3/4 {
		t.Fatalf("only %d/%d hyperplanes cut the data", cut, q.N)
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	data := Generate(Spec{Name: "t", Family: FamilyUniform, RawDim: 8}, 100, 1)
	a := GenerateQueries(data, 10, 42)
	b := GenerateQueries(data, 10, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must generate identical queries")
		}
	}
}

func TestGenerateQueriesPanics(t *testing.T) {
	data := Generate(Spec{Name: "t", Family: FamilyUniform, RawDim: 8}, 10, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nq=0 must panic")
			}
		}()
		GenerateQueries(data, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty data must panic")
			}
		}()
		GenerateQueries(vec.NewMatrix(0, 8), 5, 1)
	}()
}
