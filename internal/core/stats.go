package core

import "time"

// Stats counts the work one query performed. The counters map onto the cost
// model of the paper's Section III-C: candidate verifications (exhaustive
// leaf scans), lower-bound computations, and node traversal.
type Stats struct {
	IPCount       int64 // full O(d) inner products (bound centers + verification)
	Candidates    int64 // data points verified against the query
	NodesVisited  int64 // internal + leaf nodes whose bound was evaluated
	LeavesVisited int64 // leaf nodes scanned
	PrunedNodes   int64 // subtrees cut by the node-level ball bound
	PrunedPoints  int64 // leaf points skipped by point-level bounds
	BucketProbes  int64 // hash-table probes (NH/FH only)
	CollabIPs     int64 // O(1) center inner products obtained via Lemma 2

	// Predicate-pushdown counters (Pred searches on attribute-carrying
	// trees). FilterSkippedNodes counts subtrees skipped because the
	// per-node attribute summaries proved the predicate cannot match;
	// FilterSkippedPoints totals the points under them — work a post-filter
	// scan would have paid per row.
	FilterSkippedNodes  int64
	FilterSkippedPoints int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.IPCount += o.IPCount
	s.Candidates += o.Candidates
	s.NodesVisited += o.NodesVisited
	s.LeavesVisited += o.LeavesVisited
	s.PrunedNodes += o.PrunedNodes
	s.PrunedPoints += o.PrunedPoints
	s.BucketProbes += o.BucketProbes
	s.CollabIPs += o.CollabIPs
	s.FilterSkippedNodes += o.FilterSkippedNodes
	s.FilterSkippedPoints += o.FilterSkippedPoints
}

// Phase identifies one bucket of the Figure 10 time-profile breakdown.
type Phase int

const (
	// PhaseVerify is candidate verification: exact |<x,q>| on data points.
	PhaseVerify Phase = iota
	// PhaseBound is lower-bound computation (tree methods).
	PhaseBound
	// PhaseLookup is hash computation and bucket probing (NH/FH).
	PhaseLookup
	// PhaseOther is everything else (traversal bookkeeping, heap updates).
	PhaseOther
	numPhases
)

// String names the phase as the paper's Figure 10 legend does.
func (p Phase) String() string {
	switch p {
	case PhaseVerify:
		return "Verification"
	case PhaseBound:
		return "Lower Bounds"
	case PhaseLookup:
		return "Table Lookup"
	case PhaseOther:
		return "Others"
	}
	return "Unknown"
}

// Profile accumulates wall-clock time per phase. A nil *Profile disables
// instrumentation; index search loops only call time.Now when one is set.
type Profile struct {
	Durations [numPhases]time.Duration
}

// Add accrues d into phase p. Add on a nil profile is a no-op.
func (pr *Profile) Add(p Phase, d time.Duration) {
	if pr == nil {
		return
	}
	pr.Durations[p] += d
}

// Total returns the sum over all phases.
func (pr *Profile) Total() time.Duration {
	if pr == nil {
		return 0
	}
	var t time.Duration
	for _, d := range pr.Durations {
		t += d
	}
	return t
}

// Get returns the accumulated duration for phase p.
func (pr *Profile) Get(p Phase) time.Duration {
	if pr == nil {
		return 0
	}
	return pr.Durations[p]
}

// Phases lists all phases in display order.
func Phases() []Phase {
	return []Phase{PhaseVerify, PhaseLookup, PhaseBound, PhaseOther}
}
