package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKMaxBasics(t *testing.T) {
	tk := NewTopKMax(3)
	if tk.K() != 3 || tk.Len() != 0 || tk.Full() {
		t.Fatal("fresh collector state")
	}
	if !math.IsInf(tk.Lambda(), -1) {
		t.Fatalf("lambda before full must be -Inf, got %v", tk.Lambda())
	}
	for i, v := range []float64{1, 5, 3} {
		if !tk.Push(int32(i), v) {
			t.Fatalf("push %d must be kept while not full", i)
		}
	}
	if !tk.Full() || tk.Lambda() != 1 {
		t.Fatalf("lambda %v want 1", tk.Lambda())
	}
	if tk.Push(9, 0.5) {
		t.Fatal("weaker score must be rejected")
	}
	if !tk.Push(10, 4) {
		t.Fatal("stronger score must be kept")
	}
	res := tk.Results()
	want := []float64{5, 4, 3}
	for i, r := range res {
		if r.Dist != want[i] {
			t.Fatalf("results %v", res)
		}
	}
}

func TestTopKMaxPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopKMax(0)
}

func TestTopKMaxReset(t *testing.T) {
	tk := NewTopKMax(2)
	tk.Push(1, 1)
	tk.Push(2, 2)
	tk.Reset()
	if tk.Len() != 0 || tk.Full() {
		t.Fatal("reset must empty the collector")
	}
}

func TestTopKMaxDescendingTieOrder(t *testing.T) {
	tk := NewTopKMax(3)
	tk.Push(7, 2)
	tk.Push(3, 2)
	tk.Push(5, 2)
	res := tk.Results()
	if res[0].ID != 3 || res[1].ID != 5 || res[2].ID != 7 {
		t.Fatalf("ties must order by ascending ID: %v", res)
	}
}

// TestQuickTopKMaxMatchesSort: the collector agrees with sorting the whole
// stream descending and taking the first k.
func TestQuickTopKMaxMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		k := rng.Intn(20) + 1
		scores := make([]float64, n)
		tk := NewTopKMax(k)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			tk.Push(int32(i), scores[i])
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		res := tk.Results()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(res) != wantLen {
			return false
		}
		for i, r := range res {
			if r.Dist != sorted[i] {
				return false
			}
		}
		// Lambda equals the weakest kept score once full.
		if n >= k && tk.Lambda() != sorted[k-1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
