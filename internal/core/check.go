package core

import (
	"errors"
	"fmt"

	"p2h/internal/vec"
)

// Query validation errors. The public package re-exports these sentinels so
// both the panicking legacy API and the error-returning Spec/registry API
// report malformed queries through one shared checked path.
var (
	// ErrDimMismatch reports a query whose length does not match the
	// index's dimensionality (d-dimensional points take d+1 query
	// coordinates: the normal plus the offset).
	ErrDimMismatch = errors.New("query dimension mismatch")
	// ErrZeroNormal reports a hyperplane query whose normal is the zero
	// vector, for which point-to-hyperplane distance is undefined.
	ErrZeroNormal = errors.New("hyperplane normal must be non-zero")
)

// CheckQuery validates that q describes a hyperplane over d-dimensional
// points — length d+1 with a non-zero normal — and returns the normal's
// Euclidean length. Every validation site (the panicking index wrappers, the
// serving engine's calling-goroutine checks, the batch paths) goes through
// this one function so the reported conditions cannot drift apart.
func CheckQuery(q []float32, d int) (norm float64, err error) {
	if len(q) != d+1 {
		return 0, fmt.Errorf("%w: query has dimension %d, want %d (normal) + 1 (offset)",
			ErrDimMismatch, len(q), d+1)
	}
	norm = vec.Norm(q[:d])
	if norm == 0 {
		return 0, ErrZeroNormal
	}
	return norm, nil
}

// UnitNormBand reports whether a normal of length n passes as already
// normalized: within one part in 10^6 of unit length the induced distance
// error sits below the float32 resolution of the accumulated inner products,
// and the band admits queries normalized in float32 upstream (e.g. the
// serving layer's canonical forms), sparing them a copy-and-rescale.
func UnitNormBand(n float64) bool { return n > 1-1e-6 && n < 1+1e-6 }
