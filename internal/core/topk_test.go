package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewTopKPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTopK(%d) should panic", k)
				}
			}()
			NewTopK(k)
		}()
	}
}

func TestTopKLambdaBeforeFull(t *testing.T) {
	tk := NewTopK(3)
	if !math.IsInf(tk.Lambda(), 1) {
		t.Fatal("Lambda must be +Inf while not full")
	}
	tk.Push(1, 5)
	tk.Push(2, 1)
	if !math.IsInf(tk.Lambda(), 1) {
		t.Fatal("Lambda must remain +Inf with 2 of 3 results")
	}
	tk.Push(3, 3)
	if tk.Lambda() != 5 {
		t.Fatalf("Lambda = %v, want 5 (worst kept)", tk.Lambda())
	}
}

func TestTopKKeepsBest(t *testing.T) {
	tk := NewTopK(2)
	dists := []float64{9, 4, 7, 1, 8, 2}
	for i, d := range dists {
		tk.Push(int32(i), d)
	}
	got := tk.Results()
	if len(got) != 2 || got[0].Dist != 1 || got[1].Dist != 2 {
		t.Fatalf("Results = %v, want dists [1 2]", got)
	}
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Fatalf("Results ids = %v, want [3 5]", got)
	}
}

func TestTopKRejectsWorse(t *testing.T) {
	tk := NewTopK(1)
	if !tk.Push(0, 2) {
		t.Fatal("first push must be kept")
	}
	if tk.Push(1, 3) {
		t.Fatal("worse candidate must be rejected")
	}
	if tk.Push(2, 2) {
		t.Fatal("equal candidate must be rejected (strict improvement)")
	}
	if !tk.Push(3, 1) {
		t.Fatal("better candidate must be kept")
	}
	if tk.Lambda() != 1 {
		t.Fatalf("Lambda = %v, want 1", tk.Lambda())
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(0, 1)
	tk.Push(1, 2)
	tk.Reset()
	if tk.Len() != 0 || tk.Full() {
		t.Fatal("Reset must empty the collector")
	}
	if !math.IsInf(tk.Lambda(), 1) {
		t.Fatal("Lambda must be +Inf after Reset")
	}
}

func TestSortResultsTieBreak(t *testing.T) {
	rs := []Result{{ID: 5, Dist: 1}, {ID: 2, Dist: 1}, {ID: 9, Dist: 0.5}}
	SortResults(rs)
	if rs[0].ID != 9 || rs[1].ID != 2 || rs[2].ID != 5 {
		t.Fatalf("SortResults = %v", rs)
	}
}

// Property: TopK over a random stream returns exactly the k smallest
// distances, in sorted order.
func TestQuickTopKMatchesSort(t *testing.T) {
	f := func(seed int64, kk, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kk%10) + 1
		n := int(nn%100) + 1
		tk := NewTopK(k)
		dists := make([]float64, n)
		for i := range dists {
			// duplicates on purpose: quantized distances
			dists[i] = math.Floor(rng.Float64()*32) / 4
			tk.Push(int32(i), dists[i])
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		want := sorted
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
		}
		// results are sorted ascending
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Lambda never increases as more candidates are pushed once full.
func TestQuickLambdaMonotone(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kk%5) + 1
		tk := NewTopK(k)
		prev := math.Inf(1)
		for i := 0; i < 200; i++ {
			tk.Push(int32(i), rng.Float64())
			if tk.Full() {
				l := tk.Lambda()
				if l > prev {
					return false
				}
				prev = l
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
