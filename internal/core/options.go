package core

import "p2h/internal/attr"

// Preference selects the branching order of the tree search
// (paper Section III-C, "Branch Preference Choice").
type Preference int

const (
	// PrefCenter visits first the child whose center has the smaller
	// absolute inner product with the query. The paper's default and the
	// uniformly better choice (Figure 7).
	PrefCenter Preference = iota
	// PrefLowerBound visits first the child with the smaller node-level
	// ball bound. Kept for the Figure 7 comparison.
	PrefLowerBound
)

// String returns the label used in experiment output.
func (p Preference) String() string {
	if p == PrefLowerBound {
		return "lower-bound"
	}
	return "center"
}

// SearchOptions parameterizes one P2HNNS query against any index.
type SearchOptions struct {
	// K is the number of neighbors to return. Zero means 1.
	K int
	// Budget caps the number of candidate verifications; once reached the
	// search stops and returns its current best results. This is the
	// paper's "candidate fraction" approximation knob. Budget <= 0 means
	// unlimited, which makes the tree methods exact.
	Budget int
	// Preference picks the branch order for the tree methods.
	Preference Preference
	// Filter, if non-nil, restricts the search to ids it accepts: rejected
	// points are neither verified nor counted against the budget. Used for
	// tombstones (internal/dynamic) and ad-hoc filtering. Being an opaque
	// function, it has no wire form and defeats the serving result cache;
	// prefer Pred for attribute filtering.
	Filter func(id int32) bool
	// Pred, if non-nil, restricts the search to points whose attribute
	// payload satisfies the declarative predicate. Unlike Filter it is
	// data, not code: it serializes (the p2hd JSON "filter" field and the
	// cluster router forward it), participates in the serving result cache
	// via its canonical encoding, and the tree indexes push it down —
	// per-node attribute summaries skip whole subtrees the predicate
	// provably cannot match. Results are exactly the ones an equivalent
	// Filter would produce; rejected points are neither verified nor
	// counted against the budget. On an index without an attribute store
	// the predicate constant-folds against the empty payload: it either
	// accepts everything or nothing. Pred composes with Filter (both must
	// accept). A Pred must be valid (attr.Pred.Validate) and treated as
	// immutable once a search has seen it.
	Pred *attr.Pred
	// Profile, if non-nil, receives the per-phase time breakdown
	// (Figure 10). Leaving it nil removes all timing overhead.
	Profile *Profile
	// Cancel, if non-nil, is polled between traversal steps (the tree
	// methods check it at every node visit, so at least once per leaf
	// block); when it reports true the search abandons the remaining
	// traversal and returns the best results found so far. This is the
	// cooperative half of deadline propagation: a serving layer derives
	// Cancel from a request context so an expired query stops burning the
	// worker instead of finishing a scan nobody is waiting for. Results of
	// a canceled search are valid but possibly incomplete; callers that
	// need to distinguish must check their own cancellation signal after
	// the call.
	Cancel func() bool

	// The three switches below ablate BC-Tree strategies (paper Figure 8
	// and Theorem 5). They are ignored by the other indexes.

	// DisablePointBall turns off the point-level ball bound (Corollary 1),
	// producing the paper's BC-Tree-wo-B variant.
	DisablePointBall bool
	// DisablePointCone turns off the point-level cone bound (Theorem 3),
	// producing the paper's BC-Tree-wo-C variant. Setting both switches
	// yields BC-Tree-wo-BC (exhaustive leaf scans, as Ball-Tree does).
	DisablePointCone bool
	// DisableCollabIP turns off collaborative inner product computing
	// (Lemma 2), so both children of a visited internal node cost a full
	// O(d) inner product. Used by the Theorem 5 ablation bench.
	DisableCollabIP bool
	// DisableQuantFilter turns off the quantized leaf filter on trees built
	// with quantization (Spec.Quantize), forcing the pure float leaf scan.
	// Results are identical either way — the filter is exact — so this is
	// an ablation/escape hatch for measuring the filter's contribution.
	DisableQuantFilter bool
}

// Normalized returns a copy with defaults applied.
func (o SearchOptions) Normalized() SearchOptions {
	if o.K <= 0 {
		o.K = 1
	}
	return o
}

// BudgetLeft reports whether more candidates may be verified given the count
// so far.
func (o SearchOptions) BudgetLeft(verified int64) bool {
	return o.Budget <= 0 || verified < int64(o.Budget)
}

// Canceled polls the cooperative cancellation signal; false when none is
// attached.
func (o SearchOptions) Canceled() bool {
	return o.Cancel != nil && o.Cancel()
}
