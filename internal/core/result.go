package core

import "sort"

// Result is one answer of a top-k P2HNNS query: the data point ID and its
// point-to-hyperplane distance |<x, q>|.
type Result struct {
	ID   int32
	Dist float64
}

// SortResults orders results by ascending distance, breaking ties by ID so
// that output is deterministic across methods.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
