package core

import (
	"errors"
	"math"
	"testing"
)

func TestCheckQuery(t *testing.T) {
	norm, err := CheckQuery([]float32{3, 4, 7}, 2)
	if err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if norm != 5 {
		t.Fatalf("norm = %v, want 5", norm)
	}

	if _, err := CheckQuery([]float32{1, 2}, 2); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("short query: err = %v, want ErrDimMismatch", err)
	}
	if _, err := CheckQuery([]float32{1, 2, 3, 4}, 2); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("long query: err = %v, want ErrDimMismatch", err)
	}
	if _, err := CheckQuery([]float32{0, 0, 1}, 2); !errors.Is(err, ErrZeroNormal) {
		t.Fatalf("zero normal: err = %v, want ErrZeroNormal", err)
	}
}

func TestUnitNormBand(t *testing.T) {
	cases := []struct {
		n    float64
		want bool
	}{
		{1, true},
		{1 + 5e-7, true},
		{1 - 5e-7, true},
		{1 + 2e-6, false},
		{0.5, false},
		{2, false},
		{math.Inf(1), false},
	}
	for _, c := range cases {
		if got := UnitNormBand(c.n); got != c.want {
			t.Errorf("UnitNormBand(%v) = %v, want %v", c.n, got, c.want)
		}
	}
}
