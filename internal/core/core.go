// Package core holds the search machinery shared by every P2HNNS index in
// this repository: result records, the bounded top-k heap that maintains the
// paper's running threshold q.λ, per-query work counters, and the phase
// profile used to reproduce the paper's Figure 10 time breakdown.
package core
