package core

import "math"

// TopK maintains the k best (smallest-distance) results seen so far as a
// bounded max-heap. Lambda, the paper's q.λ, is the distance of the current
// k-th best match — the pruning threshold for every lower bound — and is
// +Inf until k results have been collected.
type TopK struct {
	k    int
	heap []Result // max-heap ordered by Dist (root = worst kept result)
}

// NewTopK returns a collector for the k best results. k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("core: TopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Result, 0, k)}
}

// K returns the configured k.
func (t *TopK) K() int { return t.k }

// Len returns the number of results currently held.
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k results have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Lambda returns the current pruning threshold: the k-th best distance if the
// collector is full, +Inf otherwise.
func (t *TopK) Lambda() float64 {
	if t.Full() {
		return t.heap[0].Dist
	}
	return math.Inf(1)
}

// Push offers a candidate. It is kept if the collector is not yet full or if
// dist beats the current worst kept result. Push reports whether the
// candidate was kept.
func (t *TopK) Push(id int32, dist float64) bool {
	if !t.Full() {
		t.heap = append(t.heap, Result{ID: id, Dist: dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Result{ID: id, Dist: dist}
	t.siftDown(0)
	return true
}

// Results returns the kept results sorted by ascending distance (ties by ID).
// The collector remains usable afterwards.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.heap))
	copy(out, t.heap)
	SortResults(out)
	return out
}

// Reset empties the collector, retaining capacity.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
