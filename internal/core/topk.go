package core

import "math"

// TopK maintains the k best results seen so far as a bounded max-heap.
// Lambda, the paper's q.λ, is the distance of the current k-th best match —
// the pruning threshold for every lower bound — and is +Inf until k results
// have been collected.
//
// Results are ordered by the total order (Dist, ID): among equal distances
// the smaller ID wins. Because the order is total, the kept set is the unique
// minimal k-subset of everything ever pushed, independent of push order. That
// canonicity is what lets the batched traversal (which visits nodes in a
// different order than a per-query search) return bitwise-identical results:
// as long as two executions offer supersets of the true top-k to the
// collector, they keep exactly the same k records.
type TopK struct {
	k    int
	heap []Result // max-heap ordered by (Dist, ID) (root = worst kept result)
}

// resultAfter reports whether a orders strictly after b in the total
// (Dist, ID) order, i.e. a is strictly worse than b.
func resultAfter(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// NewTopK returns a collector for the k best results. k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("core: TopK requires k > 0")
	}
	t := &TopK{heap: make([]Result, 0, k)}
	t.Init(k)
	return t
}

// Init prepares the collector for a fresh query keeping k results, retaining
// the heap storage of earlier queries so steady-state reuse allocates
// nothing. k must be positive.
func (t *TopK) Init(k int) {
	if k <= 0 {
		panic("core: TopK requires k > 0")
	}
	t.k = k
	t.heap = t.heap[:0]
}

// K returns the configured k.
func (t *TopK) K() int { return t.k }

// Len returns the number of results currently held.
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k results have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Lambda returns the current pruning threshold: the k-th best distance if the
// collector is full, +Inf otherwise.
func (t *TopK) Lambda() float64 {
	if t.Full() {
		return t.heap[0].Dist
	}
	return math.Inf(1)
}

// Push offers a candidate. It is kept if the collector is not yet full or if
// (dist, id) orders strictly before the current worst kept result. Push
// reports whether the candidate was kept.
func (t *TopK) Push(id int32, dist float64) bool {
	if !t.Full() {
		t.heap = append(t.heap, Result{ID: id, Dist: dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if !resultAfter(t.heap[0], Result{ID: id, Dist: dist}) {
		return false
	}
	t.heap[0] = Result{ID: id, Dist: dist}
	siftDown(t.heap, 0)
	return true
}

// Results returns the kept results sorted by ascending (Dist, ID). The
// collector remains usable afterwards.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.heap))
	copy(out, t.heap)
	SortResults(out)
	return out
}

// DrainInto appends the kept results, sorted by ascending (Dist, ID), to dst
// and empties the collector. The sort runs in place over the heap storage
// (heapsort on the existing max-heap), so the only allocation is dst growth —
// none at all when dst has capacity. This is the steady-state results path of
// the pooled searchers (internal/exec).
func (t *TopK) DrainInto(dst []Result) []Result {
	h := t.heap
	for n := len(h); n > 1; n-- {
		h[0], h[n-1] = h[n-1], h[0]
		siftDown(h[:n-1], 0)
	}
	dst = append(dst, h...)
	t.heap = t.heap[:0]
	return dst
}

// Reset empties the collector, retaining capacity.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultAfter(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

// siftDown restores the max-heap property of h from index i.
func siftDown(h []Result, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && resultAfter(h[l], h[largest]) {
			largest = l
		}
		if r < n && resultAfter(h[r], h[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
