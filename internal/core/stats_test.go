package core

import (
	"testing"
	"time"
)

func TestStatsAdd(t *testing.T) {
	a := Stats{IPCount: 1, Candidates: 2, NodesVisited: 3, LeavesVisited: 4, PrunedNodes: 5, PrunedPoints: 6, BucketProbes: 7}
	b := a
	a.Add(b)
	if a.IPCount != 2 || a.Candidates != 4 || a.NodesVisited != 6 ||
		a.LeavesVisited != 8 || a.PrunedNodes != 10 || a.PrunedPoints != 12 || a.BucketProbes != 14 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestProfileNilSafe(t *testing.T) {
	var p *Profile
	p.Add(PhaseVerify, time.Second) // must not panic
	if p.Total() != 0 {
		t.Fatal("nil profile Total must be 0")
	}
	if p.Get(PhaseBound) != 0 {
		t.Fatal("nil profile Get must be 0")
	}
}

func TestProfileAccumulates(t *testing.T) {
	p := &Profile{}
	p.Add(PhaseVerify, 2*time.Millisecond)
	p.Add(PhaseVerify, 3*time.Millisecond)
	p.Add(PhaseBound, 1*time.Millisecond)
	if p.Get(PhaseVerify) != 5*time.Millisecond {
		t.Fatalf("verify = %v", p.Get(PhaseVerify))
	}
	if p.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseVerify: "Verification",
		PhaseBound:  "Lower Bounds",
		PhaseLookup: "Table Lookup",
		PhaseOther:  "Others",
		Phase(99):   "Unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
	if len(Phases()) != 4 {
		t.Fatal("Phases() must list 4 phases")
	}
}

func TestSearchOptionsNormalized(t *testing.T) {
	o := SearchOptions{}.Normalized()
	if o.K != 1 {
		t.Fatalf("K default = %d, want 1", o.K)
	}
	o = SearchOptions{K: 7}.Normalized()
	if o.K != 7 {
		t.Fatalf("K = %d, want 7", o.K)
	}
}

func TestBudgetLeft(t *testing.T) {
	o := SearchOptions{Budget: 10}
	if !o.BudgetLeft(9) {
		t.Fatal("budget 10 with 9 verified must allow more")
	}
	if o.BudgetLeft(10) {
		t.Fatal("budget 10 with 10 verified must stop")
	}
	unlimited := SearchOptions{Budget: 0}
	if !unlimited.BudgetLeft(1 << 40) {
		t.Fatal("budget 0 means unlimited")
	}
}

func TestPreferenceString(t *testing.T) {
	if PrefCenter.String() != "center" || PrefLowerBound.String() != "lower-bound" {
		t.Fatal("Preference.String labels wrong")
	}
}
