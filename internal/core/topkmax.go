package core

import (
	"math"
	"sort"
)

// TopKMax maintains the k largest-scored results seen so far as a bounded
// min-heap — the mirror of TopK, used by the furthest-neighbor and maximum
// inner product searches. Lambda is the score of the current k-th best
// (i.e., the smallest kept score): a candidate or node whose upper bound is
// at most Lambda cannot improve the result.
type TopKMax struct {
	k    int
	heap []Result // min-heap ordered by Dist (root = weakest kept result)
}

// NewTopKMax returns a collector for the k largest scores. k must be
// positive.
func NewTopKMax(k int) *TopKMax {
	if k <= 0 {
		panic("core: TopKMax requires k > 0")
	}
	return &TopKMax{k: k, heap: make([]Result, 0, k)}
}

// K returns the configured k.
func (t *TopKMax) K() int { return t.k }

// Len returns the number of results currently held.
func (t *TopKMax) Len() int { return len(t.heap) }

// Full reports whether k results have been collected.
func (t *TopKMax) Full() bool { return len(t.heap) == t.k }

// Lambda returns the pruning threshold: the k-th largest score if the
// collector is full, -Inf otherwise.
func (t *TopKMax) Lambda() float64 {
	if t.Full() {
		return t.heap[0].Dist
	}
	return math.Inf(-1)
}

// Push offers a candidate score; it is kept if the collector is not yet full
// or if it beats the weakest kept result. Push reports whether the candidate
// was kept.
func (t *TopKMax) Push(id int32, score float64) bool {
	if !t.Full() {
		t.heap = append(t.heap, Result{ID: id, Dist: score})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if score <= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Result{ID: id, Dist: score}
	t.siftDown(0)
	return true
}

// Results returns the kept results sorted by descending score (ties by ID).
// The collector remains usable afterwards.
func (t *TopKMax) Results() []Result {
	out := make([]Result, len(t.heap))
	copy(out, t.heap)
	sortResultsDesc(out)
	return out
}

// Reset empties the collector, retaining capacity.
func (t *TopKMax) Reset() { t.heap = t.heap[:0] }

func (t *TopKMax) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist <= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopKMax) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.heap[l].Dist < t.heap[smallest].Dist {
			smallest = l
		}
		if r < n && t.heap[r].Dist < t.heap[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.heap[i], t.heap[smallest] = t.heap[smallest], t.heap[i]
		i = smallest
	}
}

func sortResultsDesc(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist > rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
