// Package transform implements the asymmetric vector transformations that NH
// and FH (Huang et al., SIGMOD 2021, the paper's reference [30]) apply before
// hashing.
//
// The key identity: for lifted data x = (p; 1) and a hyperplane query q, both
// in R^d, the squared inner product factors through a tensor lift,
//
//	<f(x), g(q)> = <x, q>^2,
//
// where f and g expand x and q into the D = d(d+1)/2 monomials x_i*x_j
// (i <= j). Squaring removes the absolute-value operation that makes the P2H
// distance non-metric, at the price of an Omega(d^2) dimension blow-up — the
// overhead the paper's Ball-Tree and BC-Tree avoid.
//
// NH appends one coordinate to turn minimizing <x,q>^2 into Euclidean NNS:
//
//	P(f(x)) = (f(x); sqrt(M - ||f(x)||^2)),  Q(g(q)) = (-g(q); 0),
//	||P - Q||^2 = M + ||g(q)||^2 + 2<x,q>^2,
//
// with M an upper bound on ||f(x)||^2 over the data set, so the nearest
// transformed point has the smallest P2H distance. FH keeps +g(q) instead,
// making it a furthest neighbor search. Both additive constants
// (M + ||g(q)||^2) are exactly the distortion the paper's Section I analyzes.
//
// The full transform is quadratic in d; Sampled approximates it by drawing
// lambda random monomials, reducing the dimension to lambda at the cost of an
// additive estimation error (the paper's randomized-sampling variant).
package transform

import (
	"fmt"
	"math/rand"

	"p2h/internal/vec"
)

// Transform is the common surface of the exact (Full) and approximate
// (Sampled) tensor lifts.
type Transform interface {
	// InDim returns the input dimension d.
	InDim() int
	// Dim returns the transformed dimension.
	Dim() int
	// Data lifts a data vector (f in the identity above).
	Data(x []float32) []float32
	// Query lifts a query vector (g in the identity above).
	Query(q []float32) []float32
	// Bytes reports the transform's own memory footprint.
	Bytes() int64
}

// Full is the exact tensor transform of dimension d(d+1)/2.
type Full struct {
	d int
}

// NewFull returns the exact transform for input dimension d.
func NewFull(d int) *Full {
	if d <= 0 {
		panic(fmt.Sprintf("transform: invalid dimension %d", d))
	}
	return &Full{d: d}
}

// InDim returns the input dimension d.
func (t *Full) InDim() int { return t.d }

// Dim returns the transformed dimension d(d+1)/2.
func (t *Full) Dim() int { return t.d * (t.d + 1) / 2 }

// Data computes f(x): the monomials x_i*x_j for i <= j.
func (t *Full) Data(x []float32) []float32 {
	t.check(x)
	out := make([]float32, 0, t.Dim())
	for i := 0; i < t.d; i++ {
		for j := i; j < t.d; j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// Query computes g(q): q_i*q_j for i == j and 2*q_i*q_j for i < j, so that
// <Data(x), Query(q)> = <x, q>^2 exactly.
func (t *Full) Query(q []float32) []float32 {
	t.check(q)
	out := make([]float32, 0, t.Dim())
	for i := 0; i < t.d; i++ {
		for j := i; j < t.d; j++ {
			v := q[i] * q[j]
			if i != j {
				v *= 2
			}
			out = append(out, v)
		}
	}
	return out
}

func (t *Full) check(v []float32) {
	if len(v) != t.d {
		panic(fmt.Sprintf("transform: vector dimension %d != %d", len(v), t.d))
	}
}

// Bytes reports the memory footprint: Full stores nothing beyond d.
func (t *Full) Bytes() int64 { return 0 }

// Sampled approximates the tensor transform with lambda monomials whose index
// pairs are drawn iid uniformly from [0,d)^2. For any x and q,
//
//	E[<Data(x), Query(q)>] = (lambda / d^2) * <x, q>^2,
//
// an unbiased estimator up to a constant factor that ranking does not see.
// The estimator's variance is the additive error that costs NH and FH their
// theoretical guarantee (paper Section I).
type Sampled struct {
	d      int
	is, js []int32
}

// NewSampled draws a sampled transform of dimension lambda for input
// dimension d, deterministic in seed.
func NewSampled(d, lambda int, seed int64) *Sampled {
	if d <= 0 || lambda <= 0 {
		panic(fmt.Sprintf("transform: invalid shape d=%d lambda=%d", d, lambda))
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Sampled{d: d, is: make([]int32, lambda), js: make([]int32, lambda)}
	for k := 0; k < lambda; k++ {
		t.is[k] = int32(rng.Intn(d))
		t.js[k] = int32(rng.Intn(d))
	}
	return t
}

// InDim returns the input dimension d.
func (t *Sampled) InDim() int { return t.d }

// Dim returns the sampled dimension lambda.
func (t *Sampled) Dim() int { return len(t.is) }

// Data computes the sampled monomials of x.
func (t *Sampled) Data(x []float32) []float32 {
	t.check(x)
	out := make([]float32, len(t.is))
	for k := range t.is {
		out[k] = x[t.is[k]] * x[t.js[k]]
	}
	return out
}

// Query computes the sampled monomials of q. Sampling over ordered pairs
// already weights off-diagonal terms twice in expectation, so no factor 2.
func (t *Sampled) Query(q []float32) []float32 {
	t.check(q)
	out := make([]float32, len(t.is))
	for k := range t.is {
		out[k] = q[t.is[k]] * q[t.js[k]]
	}
	return out
}

func (t *Sampled) check(v []float32) {
	if len(v) != t.d {
		panic(fmt.Sprintf("transform: vector dimension %d != %d", len(v), t.d))
	}
}

// Bytes reports the memory the sampled index pairs occupy.
func (t *Sampled) Bytes() int64 { return int64(len(t.is)) * 8 }

// Interface conformance checks.
var (
	_ Transform = (*Full)(nil)
	_ Transform = (*Sampled)(nil)
)

// DataMatrix applies t.Data to every row of m, producing the transformed
// data matrix NH and FH hash.
func DataMatrix(t Transform, m *vec.Matrix) *vec.Matrix {
	out := vec.NewMatrix(m.N, t.Dim())
	for i := 0; i < m.N; i++ {
		copy(out.Row(i), t.Data(m.Row(i)))
	}
	return out
}
