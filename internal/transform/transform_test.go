package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/vec"
)

func randVec(rng *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestQuickFullIdentity: <f(x), g(q)> == <x, q>^2 exactly (up to rounding).
func TestQuickFullIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(20) + 1
		tr := NewFull(d)
		x, q := randVec(rng, d), randVec(rng, d)
		lhs := vec.Dot(tr.Data(x), tr.Query(q))
		ip := vec.Dot(x, q)
		rhs := ip * ip
		return math.Abs(lhs-rhs) <= 1e-4*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFullDim(t *testing.T) {
	for _, d := range []int{1, 2, 3, 10, 100} {
		tr := NewFull(d)
		want := d * (d + 1) / 2
		if tr.Dim() != want {
			t.Fatalf("d=%d: dim %d want %d", d, tr.Dim(), want)
		}
		if got := len(tr.Data(make([]float32, d))); got != want {
			t.Fatalf("d=%d: Data len %d want %d", d, got, want)
		}
		if got := len(tr.Query(make([]float32, d))); got != want {
			t.Fatalf("d=%d: Query len %d want %d", d, got, want)
		}
	}
}

// TestSampledUnbiased: over many monomial draws the sampled estimate
// concentrates on (lambda/d^2) <x,q>^2.
func TestSampledUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := 8
	x, q := randVec(rng, d), randVec(rng, d)
	ip := vec.Dot(x, q)
	want := ip * ip
	const trials = 400
	lambda := 64
	var sum float64
	for trial := 0; trial < trials; trial++ {
		tr := NewSampled(d, lambda, int64(trial))
		est := vec.Dot(tr.Data(x), tr.Query(q)) * float64(d*d) / float64(lambda)
		sum += est
	}
	mean := sum / trials
	if math.Abs(mean-want) > 0.15*(1+math.Abs(want)) {
		t.Fatalf("sampled estimator biased: mean %v want %v", mean, want)
	}
}

func TestSampledDeterministicInSeed(t *testing.T) {
	a := NewSampled(10, 30, 7)
	b := NewSampled(10, 30, 7)
	x := randVec(rand.New(rand.NewSource(1)), 10)
	fa, fb := a.Data(x), b.Data(x)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed must give the same sampled transform")
		}
	}
	c := NewSampled(10, 30, 8)
	diff := false
	fc := c.Data(x)
	for i := range fa {
		if fa[i] != fc[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should give different transforms")
	}
}

func TestDataMatrixShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := vec.NewMatrix(5, 6)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	tr := NewSampled(6, 12, 1)
	out := DataMatrix(tr, m)
	if out.N != 5 || out.D != 12 {
		t.Fatalf("shape %dx%d", out.N, out.D)
	}
	// Row content must match the per-vector transform.
	for i := 0; i < m.N; i++ {
		want := tr.Data(m.Row(i))
		got := out.Row(i)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("full d=0", func() { NewFull(0) })
	mustPanic("sampled lambda=0", func() { NewSampled(4, 0, 1) })
	mustPanic("full wrong dim", func() { NewFull(4).Data(make([]float32, 3)) })
	mustPanic("sampled wrong dim", func() { NewSampled(4, 8, 1).Query(make([]float32, 5)) })
}
