// Package exec is the query-execution engine shared by the tree indexes:
// reusable single-query searchers with pooled scratch (so steady-state
// search allocates nothing), and the scratch arena behind the batched
// traversal mode that walks a tree's arena once for a whole group of
// queries.
//
// The engine rests on one invariant established by internal/core and the
// strict pruning inequalities in the tree searches: exact results are
// *canonical* — the unique k smallest (Dist, ID) pairs — so any traversal
// order that offers a superset of the true top-k to the collector returns
// bitwise-identical results. That is what lets the batched traversal share
// node visits and leaf verification across queries without replicating each
// query's individual branch order — and what lets a quantized leaf filter
// (ResetQuant/QuantFilter, backed by internal/quant) drop provably-losing
// rows without changing a single returned byte.
//
// BatchScratch is deliberately a bag of flat, growable arrays rather than
// per-query structs: one traversal touches every query's state in tight
// loops, and packing (heaps, norms, widened queries, filter coefficients)
// into contiguous arrays keeps those loops cache-friendly and allocation-
// free in steady state. Eligible gates which option combinations may take
// the shared walk; everything else goes through Fallback on a pooled
// single-query Searcher.
package exec
