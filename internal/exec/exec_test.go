package exec

import (
	"testing"

	"p2h/internal/core"
	"p2h/internal/vec"
)

func TestEligible(t *testing.T) {
	cases := []struct {
		name string
		opts core.SearchOptions
		want bool
	}{
		{"exact", core.SearchOptions{K: 5}, true},
		{"negative-budget", core.SearchOptions{K: 5, Budget: -1}, true},
		{"budget", core.SearchOptions{K: 5, Budget: 10}, false},
		{"filter", core.SearchOptions{K: 5, Filter: func(int32) bool { return true }}, false},
		{"profile", core.SearchOptions{K: 5, Profile: &core.Profile{}}, false},
		{"ablations", core.SearchOptions{K: 5, DisablePointBall: true, DisableCollabIP: true}, true},
	}
	for _, tc := range cases {
		if got := Eligible(tc.opts); got != tc.want {
			t.Errorf("%s: Eligible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPoolRecycles(t *testing.T) {
	type thing struct{ n int }
	var p Pool[thing]
	a := p.Get()
	if a == nil || a.n != 0 {
		t.Fatal("Get must return a zero value when empty")
	}
	a.n = 7
	p.Put(a)
	b := p.Get()
	// sync.Pool may drop entries, so only the recycled case is asserted.
	if b == a && b.n != 7 {
		t.Fatal("recycled value must keep its state")
	}
}

func TestBatchScratchArenaLIFO(t *testing.T) {
	var b BatchScratch
	q := vec.NewMatrix(3, 4)
	b.Reset(q, 2)

	mark := b.Mark()
	act1, ips1 := b.Alloc(3)
	for i := range act1 {
		act1[i] = int32(i)
		ips1[i] = float64(i)
	}
	inner := b.Mark()
	act2, _ := b.Alloc(2)
	act2[0], act2[1] = 7, 8
	if act1[0] != 0 || act1[2] != 2 {
		t.Fatal("sibling alloc must not clobber an earlier segment")
	}
	b.Release(inner)
	// A fresh alloc after release reuses the inner region.
	act3, _ := b.Alloc(2)
	act3[0] = 9
	if b.Mark() != inner+2 {
		t.Fatalf("watermark %d, want %d", b.Mark(), inner+2)
	}
	b.Release(mark)
	if b.Mark() != mark {
		t.Fatalf("watermark %d after release, want %d", b.Mark(), mark)
	}
}

// TestBatchScratchArenaGrowth checks that segments handed out before a
// growth stay readable and writable: the recursion keeps slices into the
// superseded arrays alive on its stack frames.
func TestBatchScratchArenaGrowth(t *testing.T) {
	var b BatchScratch
	b.Reset(vec.NewMatrix(1, 2), 1)
	act1, ips1 := b.Alloc(4)
	for i := range act1 {
		act1[i], ips1[i] = int32(i+1), float64(i+1)
	}
	// Force several growths.
	for i := 0; i < 10; i++ {
		b.Alloc(1 << i)
	}
	for i := range act1 {
		if act1[i] != int32(i+1) || ips1[i] != float64(i+1) {
			t.Fatalf("pre-growth segment corrupted at %d: %d %f", i, act1[i], ips1[i])
		}
	}
	act1[0] = 42 // writes must not fault either
	if act1[0] != 42 {
		t.Fatal("pre-growth segment not writable")
	}
}

func TestBatchScratchResetWidensQueries(t *testing.T) {
	var b BatchScratch
	q := vec.FromRows([][]float32{{1, 2, 2}, {0, 3, 4}})
	b.Reset(q, 3)
	if len(b.Q64) != 6 {
		t.Fatalf("Q64 length %d, want 6", len(b.Q64))
	}
	for i, v := range q.Data {
		if b.Q64[i] != float64(v) {
			t.Fatalf("Q64[%d] = %v, want %v", i, b.Q64[i], float64(v))
		}
	}
	if b.QNorms[0] != 3 || b.QNorms[1] != 5 {
		t.Fatalf("QNorms = %v, want [3 5]", b.QNorms[:2])
	}
	for i := range b.Heaps[:2] {
		if b.Heaps[i].K() != 3 || b.Heaps[i].Len() != 0 {
			t.Fatalf("heap %d not reset", i)
		}
	}
}

func TestSortByLimitDesc(t *testing.T) {
	act := []int32{10, 11, 12, 13, 14}
	limits := []int32{3, 9, 0, 9, 5}
	SortByLimitDesc(act, limits)
	wantLimits := []int32{9, 9, 5, 3, 0}
	wantAct := []int32{11, 13, 14, 10, 12}
	for i := range limits {
		if limits[i] != wantLimits[i] || act[i] != wantAct[i] {
			t.Fatalf("sorted (%v, %v), want (%v, %v)", act, limits, wantAct, wantLimits)
		}
	}
}

// fakeSearcher counts calls and returns its query index.
type fakeSearcher struct{ calls int }

func (f *fakeSearcher) Search(q []float32, opts core.SearchOptions, dst []core.Result) ([]core.Result, core.Stats) {
	f.calls++
	return append(dst, core.Result{ID: int32(f.calls), Dist: float64(q[0])}), core.Stats{IPCount: 1}
}

func TestFallback(t *testing.T) {
	queries := vec.FromRows([][]float32{{1}, {2}, {3}})
	out := make([][]core.Result, 3)
	stats := make([]core.Stats, 3)
	f := &fakeSearcher{}
	Fallback(f, queries, core.SearchOptions{K: 1}, out, stats)
	if f.calls != 3 {
		t.Fatalf("fallback made %d calls, want 3", f.calls)
	}
	for i := range out {
		if len(out[i]) != 1 || out[i][0].Dist != float64(i+1) {
			t.Fatalf("query %d: %v", i, out[i])
		}
		if stats[i].IPCount != 1 {
			t.Fatalf("query %d stats: %+v", i, stats[i])
		}
	}
}
