package exec

import (
	"sync"

	"p2h/internal/core"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Searcher is a reusable single-query executor over one index. Search
// appends the top-k results (ascending (Dist, ID)) to dst and returns the
// extended slice; with a recycled dst and pooled scratch a steady-state call
// performs no allocations.
type Searcher interface {
	Search(q []float32, opts core.SearchOptions, dst []core.Result) ([]core.Result, core.Stats)
}

// Eligible reports whether a batch of queries sharing opts can run through
// the shared batched traversal. Budgeted queries keep per-query traversal
// semantics (the candidate budget is defined relative to a single query's
// visit order), and Filter/Profile/Cancel carry per-query state the shared
// walk cannot split (a cancellation signal belongs to one caller's deadline,
// not to every query sharing the arena walk). Pred likewise takes the
// per-query path: each fallback Searcher compiles the predicate against the
// tree's attribute store and runs the pushdown natively, which the shared
// walk's per-node active sets have no slot for — and per-query results are
// bitwise what the batch would produce anyway.
func Eligible(opts core.SearchOptions) bool {
	return opts.Budget <= 0 && opts.Filter == nil && opts.Pred == nil &&
		opts.Profile == nil && opts.Cancel == nil
}

// Fallback answers queries one at a time through s — the per-query path for
// batches that are not Eligible. out and stats must have queries.N entries.
func Fallback(s Searcher, queries *vec.Matrix, opts core.SearchOptions, out [][]core.Result, stats []core.Stats) {
	for i := 0; i < queries.N; i++ {
		out[i], stats[i] = s.Search(queries.Row(i), opts, nil)
	}
}

// Pool is a typed free list over sync.Pool. The zero value is ready to use;
// Get returns a zero-valued *T when the pool is empty, so owners re-bind any
// per-owner fields (e.g. the tree pointer) after Get.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a pooled or freshly zero-allocated *T.
func (p *Pool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

// Put recycles x for a later Get.
func (p *Pool[T]) Put(x *T) { p.p.Put(x) }

// BatchScratch holds every piece of reusable state one batched traversal
// needs: per-query top-k collectors and norms, the active-set arena the
// recursive walk carves per-node segments from, and the gather/output
// buffers of the multi-query leaf kernels. A zero value is ready; all
// storage grows on demand and is retained across runs, so a pooled
// BatchScratch reaches a zero-allocation steady state.
type BatchScratch struct {
	Heaps  []core.TopK // one collector per query of the batch
	QNorms []float64   // per-query ||q||
	Q64    []float64   // every query widened to float64, packed row-major

	// Active-set arena: visit() allocates one (act, ips) segment per child
	// per node, strictly LIFO with the recursion, via Mark/Alloc/Release.
	act  []int32
	ips  []float64
	mark int

	dists  []float64 // multi-kernel output, row-major by data row
	prefix []int32   // per-active-query verified prefix length (BC-Tree)
	rows64 []float64 // one leaf's row block, widened per visit
	ctr64  []float64 // node centers widened for the bound computations

	// Quantized-filter state (ResetQuant): one fitted integer filter per
	// query of the batch. qw packs the int16 weights row-major (nq x d);
	// qbase/qinvS/qeps hold each query's affine form and error bound; sel is
	// the per-leaf survivor scratch shared by the sequential leaf loop.
	qw    []int16
	qbase []float64
	qinvS []float64
	qeps  []float64
	sel   []int32
}

// Reset prepares the scratch for a batch of nq queries with k results each:
// collectors are (re)initialized, per-query norms computed, and every query
// widened once into Q64 — the packed float64 form the conversion-free
// kernels index for the rest of the traversal. Storage from earlier batches
// is retained.
func (b *BatchScratch) Reset(queries *vec.Matrix, k int) {
	nq := queries.N
	if nq > len(b.Heaps) {
		h := make([]core.TopK, nq)
		copy(h, b.Heaps)
		b.Heaps = h
	}
	for i := 0; i < nq; i++ {
		b.Heaps[i].Init(k)
	}
	if nq > len(b.QNorms) {
		b.QNorms = make([]float64, nq)
	}
	if cap(b.Q64) < len(queries.Data) {
		b.Q64 = make([]float64, len(queries.Data))
	}
	b.Q64 = b.Q64[:len(queries.Data)]
	vec.Widen(b.Q64, queries.Data)
	for i := 0; i < nq; i++ {
		b.QNorms[i] = vec.Norm(queries.Row(i))
	}
	b.mark = 0
}

// ResetQuant fits the quantized filter of every query in the batch into the
// scratch's packed per-query state (see quant.Quantizer.FitInto). Call after
// Reset when the tree carries a quantized mirror; the per-query coefficients
// are then read back with QuantFilter during leaf scans.
func (b *BatchScratch) ResetQuant(qz *quant.Quantizer, queries *vec.Matrix) {
	nq, d := queries.N, queries.D
	if cap(b.qw) < nq*d {
		b.qw = make([]int16, nq*d)
	}
	b.qw = b.qw[:nq*d]
	if nq > len(b.qbase) {
		b.qbase = make([]float64, nq)
		b.qinvS = make([]float64, nq)
		b.qeps = make([]float64, nq)
	}
	for qi := 0; qi < nq; qi++ {
		b.qbase[qi], b.qinvS[qi], b.qeps[qi] =
			qz.FitInto(b.qw[qi*d:(qi+1)*d], queries.Row(qi))
	}
}

// QuantFilter returns query qi's fitted filter coefficients as packed by
// ResetQuant: the weight row plus the affine form and error bound.
func (b *BatchScratch) QuantFilter(qi, d int) (w []int16, base, invS, eps float64) {
	return b.qw[qi*d : (qi+1)*d], b.qbase[qi], b.qinvS[qi], b.qeps[qi]
}

// Sel returns an empty survivor-index slice with capacity at least n, reused
// across the leaf scans of a batch.
func (b *BatchScratch) Sel(n int) []int32 {
	if cap(b.sel) < n {
		b.sel = make([]int32, 0, n)
	}
	return b.sel[:0]
}

// Mark returns the current arena watermark, to be passed to Release once the
// segments allocated after it are dead.
func (b *BatchScratch) Mark() int { return b.mark }

// Alloc carves a fresh (act, ips) segment of n entries from the arena.
// Segments are valid until the matching Release; growth leaves earlier
// segments on the superseded backing arrays, which their holders' stack
// frames keep alive.
func (b *BatchScratch) Alloc(n int) ([]int32, []float64) {
	lo := b.mark
	hi := lo + n
	if hi > len(b.act) {
		size := 2*len(b.act) + n
		b.act = make([]int32, size)
		b.ips = make([]float64, size)
	}
	b.mark = hi
	return b.act[lo:hi:hi], b.ips[lo:hi:hi]
}

// Release rewinds the arena to a watermark previously returned by Mark.
func (b *BatchScratch) Release(mark int) { b.mark = mark }

// Dists returns a distance buffer of n entries for the multi-query kernels,
// reused across leaves.
func (b *BatchScratch) Dists(n int) []float64 {
	if cap(b.dists) < n {
		b.dists = make([]float64, n)
	}
	return b.dists[:n]
}

// Prefix returns an n-entry buffer for per-query verified prefix lengths,
// reused across leaves.
func (b *BatchScratch) Prefix(n int) []int32 {
	if cap(b.prefix) < n {
		b.prefix = make([]int32, n)
	}
	return b.prefix[:n]
}

// Row64 returns the single-row widening scratch (at least n entries) that
// DotBlockMultiIdx fills and re-reads per leaf row.
func (b *BatchScratch) Row64(n int) []float64 {
	if cap(b.rows64) < n {
		b.rows64 = make([]float64, n)
	}
	return b.rows64[:n]
}

// SortByLimitDesc permutes act and limits (kept aligned) so limits is
// non-increasing — the order DotBlockMultiIdx requires to shrink its active
// prefix as rows advance. Insertion sort: active groups are small and often
// already sorted.
func SortByLimitDesc(act, limits []int32) {
	for i := 1; i < len(limits); i++ {
		a, l := act[i], limits[i]
		j := i
		for j > 0 && limits[j-1] < l {
			act[j], limits[j] = act[j-1], limits[j-1]
			j--
		}
		act[j], limits[j] = a, l
	}
}

// Center64 widens node center c into slot (0 or 1) of a reusable
// two-center buffer for the per-node bound computations — one conversion
// per element per visited node, amortized over the active queries.
func (b *BatchScratch) Center64(slot int, c []float32) []float64 {
	d := len(c)
	if cap(b.ctr64) < 2*d {
		b.ctr64 = make([]float64, 2*d)
	}
	out := b.ctr64[slot*d : (slot+1)*d]
	vec.Widen(out, c)
	return out
}
