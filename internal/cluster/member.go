package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"p2h/internal/httpapi"
)

// MemberState is a member daemon's last observed health, as seen by the
// router's prober and per-request outcomes.
type MemberState int32

// The member states, from best to worst for routing purposes. Unknown (the
// state before the first probe answers) ranks between Degraded and Draining:
// an unprobed member may be fine, but a known-healthy or known-degraded one
// is the safer pick.
const (
	StateUnknown MemberState = iota
	StateHealthy
	StateDegraded
	StateDraining
	StateDown
)

// String names the state for /healthz, /metrics and logs.
func (s MemberState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// rank orders states for target selection; lower is preferred.
func (s MemberState) rank() int {
	switch s {
	case StateHealthy:
		return 0
	case StateDegraded:
		return 1
	case StateUnknown:
		return 2
	case StateDraining:
		return 3
	default: // StateDown
		return 4
	}
}

// MemberError is an API-level failure from a member daemon: the member
// answered, with an ErrorResponse. Transport failures stay plain errors.
type MemberError struct {
	// Member is the failing member's name.
	Member string
	// Status is the HTTP status the member answered.
	Status int
	// Code is the stable machine-readable code from the error envelope.
	Code string
	// Msg is the human-readable message.
	Msg string
	// RetryAfter is the member's Retry-After suggestion, when it sent one.
	RetryAfter time.Duration
}

// Error formats the failure with its origin.
func (e *MemberError) Error() string {
	return fmt.Sprintf("member %s: %d %s: %s", e.Member, e.Status, e.Code, e.Msg)
}

// retryable reports whether a different member could plausibly answer where
// this one failed: transport errors and overload/availability statuses are
// retryable, client errors (a bad query is bad everywhere) and expired
// deadlines (no time left anywhere) are not.
func retryable(err error) bool {
	var me *MemberError
	if errors.As(err, &me) {
		switch me.Status {
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusBadGateway, http.StatusServiceUnavailable:
			return true
		}
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// latencyRingSize is the per-member success-latency window the hedge delay
// is derived from: big enough for a stable p99, small enough to track a
// member that slows down within a few hundred requests.
const latencyRingSize = 128

// latencyRing is a fixed window of recent request latencies.
type latencyRing struct {
	mu      sync.Mutex
	samples [latencyRingSize]time.Duration
	n, next int
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next = (r.next + 1) % latencyRingSize
	if r.n < latencyRingSize {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile latency of the window, or zero before any
// sample exists.
func (r *latencyRing) p99() time.Duration {
	r.mu.Lock()
	n := r.n
	buf := make([]time.Duration, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n * 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// member is the router's view of one daemon: its location, its health as
// last probed, and its observed latency window.
type member struct {
	name string
	url  string
	hc   *http.Client

	state   atomic.Int32
	lastErr atomic.Value // string

	requests atomic.Int64
	failures atomic.Int64
	lat      latencyRing
}

func newMember(name string, cfg MemberConfig, hc *http.Client) *member {
	m := &member{name: name, url: cfg.URL, hc: hc}
	m.lastErr.Store("")
	return m
}

func (m *member) getState() MemberState { return MemberState(m.state.Load()) }

func (m *member) setState(s MemberState, reason string) {
	m.state.Store(int32(s))
	m.lastErr.Store(reason)
}

func (m *member) lastError() string {
	s, _ := m.lastErr.Load().(string)
	return s
}

// doJSON performs one request against the member, decoding either the
// success shape into out or the error envelope into a MemberError.
func (m *member) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.url+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		return m.apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError lifts a member's error response into a MemberError.
func (m *member) apiError(resp *http.Response) error {
	me := &MemberError{Member: m.name, Status: resp.StatusCode}
	var envelope httpapi.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&envelope); err == nil {
		me.Code, me.Msg = envelope.Code, envelope.Error
	} else {
		me.Code, me.Msg = "unreadable_error", resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			me.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return me
}

// doSearchJSON is doJSON plus the overload protocol: a 429 is retried after
// the member's Retry-After suggestion for as long as the context allows —
// the member's admission control paces the router instead of failing the
// query — and successful calls feed the latency window the hedge delay is
// derived from.
func (m *member) doSearchJSON(ctx context.Context, path string, body, out any) error {
	for {
		start := time.Now()
		err := m.doJSON(ctx, http.MethodPost, path, body, out)
		m.requests.Add(1)
		if err == nil {
			m.lat.record(time.Since(start))
			return nil
		}
		m.failures.Add(1)
		var me *MemberError
		if !errors.As(err, &me) || me.Status != http.StatusTooManyRequests {
			return err
		}
		wait := me.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// search asks the member one query against its index named index.
func (m *member) search(ctx context.Context, index string, req httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	var resp httpapi.SearchResponse
	if err := m.doSearchJSON(ctx, "/v1/indexes/"+index+"/search", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// searchBatch asks the member a whole batch against its index named index.
func (m *member) searchBatch(ctx context.Context, index string, req httpapi.BatchSearchRequest) (*httpapi.BatchSearchResponse, error) {
	var resp httpapi.BatchSearchResponse
	if err := m.doSearchJSON(ctx, "/v1/indexes/"+index+"/search_batch", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// healthz probes the member, decoding the health body even on the 503 the
// daemon answers while draining or swapping; the HTTP status comes back
// alongside so the caller can tell "sick" from "unreachable".
func (m *member) healthz(ctx context.Context) (httpapi.HealthResponse, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		return httpapi.HealthResponse{}, 0, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return httpapi.HealthResponse{}, 0, err
	}
	defer resp.Body.Close()
	var h httpapi.HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&h); err != nil {
		return httpapi.HealthResponse{}, resp.StatusCode, fmt.Errorf("member %s: healthz body: %w", m.name, err)
	}
	return h, resp.StatusCode, nil
}

// indexInfo fetches one index's info from the member.
func (m *member) indexInfo(ctx context.Context, index string) (httpapi.IndexInfoResponse, error) {
	var info httpapi.IndexInfoResponse
	err := m.doJSON(ctx, http.MethodGet, "/v1/indexes/"+index, nil, &info)
	return info, err
}

// downloadContainer streams the member's fresh snapshot of index into w,
// returning the point count and mutation epoch of the streamed cut.
func (m *member) downloadContainer(ctx context.Context, index string, w io.Writer) (points int, epoch uint64, size int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/indexes/"+index+"/container", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return 0, 0, 0, m.apiError(resp)
	}
	points, _ = strconv.Atoi(resp.Header.Get("X-P2H-Points"))
	epoch, _ = strconv.ParseUint(resp.Header.Get("X-P2H-Epoch"), 10, 64)
	size, err = io.Copy(w, resp.Body)
	return points, epoch, size, err
}

// restore uploads size bytes of container to the member, hot-swapping its
// index named index.
func (m *member) restore(ctx context.Context, index string, r io.Reader, size int64) (httpapi.IndexInfoResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/indexes/"+index+"/restore", r)
	if err != nil {
		return httpapi.IndexInfoResponse{}, err
	}
	req.ContentLength = size
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := m.hc.Do(req)
	if err != nil {
		return httpapi.IndexInfoResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return httpapi.IndexInfoResponse{}, m.apiError(resp)
	}
	var info httpapi.IndexInfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return httpapi.IndexInfoResponse{}, err
	}
	return info, nil
}
