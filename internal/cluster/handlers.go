package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"p2h/internal/httpapi"
)

// MemberStatus is one member's entry in the router's health report.
type MemberStatus struct {
	// URL is the member's location.
	URL string `json:"url"`
	// State is the probed health ("healthy", "degraded", "draining",
	// "down", "unknown").
	State string `json:"state"`
	// LastError explains a non-healthy state.
	LastError string `json:"last_error,omitempty"`
	// Requests and Failures count traffic the router sent the member.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// P99Seconds is the member's observed p99 latency over the recent
	// window (0: no samples yet).
	P99Seconds float64 `json:"p99_seconds"`
}

// ClusterHealthResponse answers GET /healthz on a router. Status is "ok"
// when every shard has a non-down holder, "degraded" (still 200) when some
// member is sick but every shard stays routable, and "unroutable" (503) when
// at least one shard has no live holder.
type ClusterHealthResponse struct {
	Status        string                  `json:"status"`
	UptimeSeconds int64                   `json:"uptime_seconds"`
	Indexes       int                     `json:"indexes"`
	Members       map[string]MemberStatus `json:"members"`
	Reason        string                  `json:"reason,omitempty"`
}

// ShipRequest asks the router to replicate snapshots. An empty index ships
// every logical index; a nil shard ships every shard of the selection.
type ShipRequest struct {
	Index string `json:"index,omitempty"`
	Shard *int   `json:"shard,omitempty"`
}

// ShipResponse reports the shipments.
type ShipResponse struct {
	Reports []ShipReport `json:"reports"`
}

// NewHandler builds the router's HTTP surface:
//
//	GET  /healthz                            cluster + member health
//	GET  /metrics                            Prometheus text format
//	GET  /v1/indexes                         list logical indexes
//	GET  /v1/indexes/{name}                  one logical index's info
//	POST /v1/indexes/{name}/search           scatter-gather one query
//	POST /v1/indexes/{name}/search_batch     scatter-gather a batch
//	POST /v1/cluster/ship                    replicate snapshots to replicas
//
// The index surface matches a member daemon's shapes (errors use the same
// envelope and codes), so single-daemon clients work against a router
// unchanged.
func NewHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h func(http.ResponseWriter, *http.Request)) {
		em := rt.metrics.endpoint(endpoint)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			h(rec, r)
			em.record(rec.status, time.Since(start))
		})
	}
	route("GET /healthz", "healthz", rt.handleHealthz)
	route("GET /metrics", "metrics", rt.handleMetrics)
	route("GET /v1/indexes", "list", rt.handleList)
	route("GET /v1/indexes/{name}", "info", rt.handleInfo)
	route("POST /v1/indexes/{name}/search", "search", rt.handleSearch)
	route("POST /v1/indexes/{name}/search_batch", "search_batch", rt.handleSearchBatch)
	route("POST /v1/cluster/ship", "ship", rt.handleShip)
	return mux
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// fail maps a routing error onto the member daemons' error envelope. A
// member's API error passes through with its own status and code (the
// router adds nothing a client could act on); router-side conditions get
// their own stable codes.
func fail(w http.ResponseWriter, err error) {
	var me *MemberError
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.As(err, &me):
		status, code = me.Status, me.Code
	case errors.Is(err, ErrUnknownIndex):
		status, code = http.StatusNotFound, "index_not_found"
	case errors.Is(err, ErrNoMembers):
		status, code = http.StatusServiceUnavailable, "no_member_available"
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		status, code = http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, errBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	}
	writeJSON(w, status, httpapi.ErrorResponse{Error: err.Error(), Code: code})
}

var errBadRequest = errors.New("bad request")

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: decoding body: %v", errBadRequest, err)
	}
	return nil
}

// Health summarizes cluster routability and per-member detail.
func (rt *Router) Health() (ClusterHealthResponse, int) {
	resp := ClusterHealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(rt.started).Seconds()),
		Indexes:       len(rt.indexes),
		Members:       make(map[string]MemberStatus, len(rt.members)),
	}
	sick := 0
	for name, m := range rt.members {
		st := m.getState()
		resp.Members[name] = MemberStatus{
			URL:        m.url,
			State:      st.String(),
			LastError:  m.lastError(),
			Requests:   m.requests.Load(),
			Failures:   m.failures.Load(),
			P99Seconds: m.lat.p99().Seconds(),
		}
		if st == StateDown || st == StateDraining {
			sick++
		}
	}
	status := http.StatusOK
	for _, ri := range rt.indexes {
		for si, rs := range ri.shards {
			live := false
			for _, holder := range append([]string{rs.cfg.Primary}, rs.cfg.Replicas...) {
				if rt.members[holder].getState() != StateDown {
					live = true
					break
				}
			}
			if !live {
				resp.Status = "unroutable"
				resp.Reason = fmt.Sprintf("index %q shard %d: every holder is down", ri.name, si)
				return resp, http.StatusServiceUnavailable
			}
		}
	}
	if sick > 0 {
		resp.Status = "degraded"
		resp.Reason = fmt.Sprintf("%d member(s) down or draining; all shards still routable", sick)
	}
	return resp, status
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp, status := rt.Health()
	writeJSON(w, status, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	rt.renderMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	resp := httpapi.ListResponse{Indexes: []httpapi.IndexInfoResponse{}}
	for _, name := range rt.IndexNames() {
		info, err := rt.Info(r.Context(), name)
		if err != nil {
			fail(w, err)
			return
		}
		resp.Indexes = append(resp.Indexes, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := rt.Info(r.Context(), r.PathValue("name"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req httpapi.SearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	if req.TimeoutMS < 0 {
		fail(w, fmt.Errorf("%w: negative timeout_ms %d", errBadRequest, req.TimeoutMS))
		return
	}
	ctx, cancel := rt.searchDeadline(r.Context(), req.TimeoutMS)
	defer cancel()
	resp, err := rt.Search(ctx, r.PathValue("name"), req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req httpapi.BatchSearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	if len(req.Queries) == 0 {
		fail(w, fmt.Errorf("%w: empty \"queries\"", errBadRequest))
		return
	}
	if req.TimeoutMS < 0 {
		fail(w, fmt.Errorf("%w: negative timeout_ms %d", errBadRequest, req.TimeoutMS))
		return
	}
	ctx, cancel := rt.searchDeadline(r.Context(), req.TimeoutMS)
	defer cancel()
	resp, err := rt.SearchBatch(ctx, r.PathValue("name"), req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleShip(w http.ResponseWriter, r *http.Request) {
	var req ShipRequest
	if err := decodeBody(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	shard := -1
	if req.Shard != nil {
		if *req.Shard < 0 {
			fail(w, fmt.Errorf("%w: negative shard %d", errBadRequest, *req.Shard))
			return
		}
		shard = *req.Shard
	}
	indexes := rt.IndexNames()
	if req.Index != "" {
		indexes = []string{req.Index}
	}
	var resp ShipResponse
	for _, name := range indexes {
		reports, err := rt.Ship(r.Context(), name, shard)
		resp.Reports = append(resp.Reports, reports...)
		if err != nil {
			fail(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
