package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Prometheus text-format metrics for the router, stdlib only, mirroring the
// member daemons' exposition style: per-endpoint request counters by status
// code, per-endpoint latency histograms, router fan-out counters (hedges,
// hedge wins, fallbacks, ships) and per-member health/traffic series.

const numLatencyBuckets = 16

var latencyBuckets = [numLatencyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type histogram struct {
	counts [numLatencyBuckets]atomic.Int64
	total  atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]*atomic.Int64
	latency histogram
}

func (em *endpointMetrics) record(status int, d time.Duration) {
	em.mu.Lock()
	c := em.byCode[status]
	if c == nil {
		c = &atomic.Int64{}
		em.byCode[status] = c
	}
	em.mu.Unlock()
	c.Add(1)
	em.latency.observe(d)
}

// routerMetrics is the router-wide registry.
type routerMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	hedges    atomic.Int64
	hedgeWins atomic.Int64
	fallbacks atomic.Int64
	ships     atomic.Int64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *routerMetrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{byCode: make(map[int]*atomic.Int64)}
		m.endpoints[name] = em
	}
	return em
}

func formatBucket(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

// render writes the whole exposition. Output is deterministic (sorted label
// values) so tests and diffs stay stable.
func (rt *Router) renderMetrics(w *strings.Builder) {
	m := rt.metrics
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	ems := make(map[string]*endpointMetrics, len(m.endpoints))
	for name, em := range m.endpoints {
		names = append(names, name)
		ems[name] = em
	}
	m.mu.Unlock()
	sort.Strings(names)

	w.WriteString("# HELP p2hd_router_requests_total Router HTTP requests served, by endpoint and status code.\n")
	w.WriteString("# TYPE p2hd_router_requests_total counter\n")
	for _, name := range names {
		em := ems[name]
		em.mu.Lock()
		codes := make([]int, 0, len(em.byCode))
		for code := range em.byCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "p2hd_router_requests_total{endpoint=%q,code=\"%d\"} %d\n",
				name, code, em.byCode[code].Load())
		}
		em.mu.Unlock()
	}

	w.WriteString("# HELP p2hd_router_request_duration_seconds Router request latency, by endpoint.\n")
	w.WriteString("# TYPE p2hd_router_request_duration_seconds histogram\n")
	for _, name := range names {
		h := &ems[name].latency
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "p2hd_router_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, formatBucket(ub), cum)
		}
		total := h.total.Load()
		fmt.Fprintf(w, "p2hd_router_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(w, "p2hd_router_request_duration_seconds_sum{endpoint=%q} %g\n",
			name, time.Duration(h.sumNS.Load()).Seconds())
		fmt.Fprintf(w, "p2hd_router_request_duration_seconds_count{endpoint=%q} %d\n", name, total)
	}

	for _, c := range []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"p2hd_router_hedges_total", "Hedge attempts launched against replicas.", &m.hedges},
		{"p2hd_router_hedge_wins_total", "Shard answers won by a non-primary attempt.", &m.hedgeWins},
		{"p2hd_router_fallbacks_total", "Immediate failovers after a retryable member error.", &m.fallbacks},
		{"p2hd_router_ships_total", "Snapshot shipments completed.", &m.ships},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
	}

	members := rt.MemberNames()
	w.WriteString("# HELP p2hd_router_member_state Member health as probed (0 unknown, 1 healthy, 2 degraded, 3 draining, 4 down).\n")
	w.WriteString("# TYPE p2hd_router_member_state gauge\n")
	for _, name := range members {
		fmt.Fprintf(w, "p2hd_router_member_state{member=%q} %d\n", name, rt.members[name].getState())
	}
	w.WriteString("# HELP p2hd_router_member_requests_total Requests sent to each member.\n")
	w.WriteString("# TYPE p2hd_router_member_requests_total counter\n")
	for _, name := range members {
		fmt.Fprintf(w, "p2hd_router_member_requests_total{member=%q} %d\n", name, rt.members[name].requests.Load())
	}
	w.WriteString("# HELP p2hd_router_member_failures_total Failed requests to each member (transport or API error).\n")
	w.WriteString("# TYPE p2hd_router_member_failures_total counter\n")
	for _, name := range members {
		fmt.Fprintf(w, "p2hd_router_member_failures_total{member=%q} %d\n", name, rt.members[name].failures.Load())
	}
	w.WriteString("# HELP p2hd_router_member_p99_seconds Observed p99 latency per member over the recent window (0: no samples).\n")
	w.WriteString("# TYPE p2hd_router_member_p99_seconds gauge\n")
	for _, name := range members {
		fmt.Fprintf(w, "p2hd_router_member_p99_seconds{member=%q} %g\n", name, rt.members[name].lat.p99().Seconds())
	}
}
