package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	p2h "p2h"
	"p2h/internal/core"
	"p2h/internal/httpapi"
)

// The correctness oracle: a 3-member cluster built from p2h.ShardPlan must
// answer byte-identically to a single daemon serving the equivalent
// in-process sharded index.

type fixture struct {
	t       *testing.T
	data    *p2h.Matrix
	spec    p2h.Spec
	plan    [][]int32
	queries *p2h.Matrix

	oracle   *httptest.Server   // single daemon serving the sharded index
	members  []*httptest.Server // member daemons, one per manager
	managers []*httpapi.Manager

	// slow[i] true makes member i's search handlers hang until the request
	// context cancels (recording on canceled) or a long timeout passes.
	slow     []atomic.Bool
	canceled chan string

	cfg    Config
	rt     *Router
	router *httptest.Server
}

const (
	testShards  = 3
	testMembers = 3
)

// newFixture builds the whole test cluster: the data, the sharded oracle
// daemon, one member daemon per shard (each also holding the next shard as a
// replica), and a router over them. tweak, if non-nil, edits the cluster
// config before the router is built.
func newFixture(t *testing.T, tweak func(*Config)) *fixture {
	t.Helper()
	f := &fixture{
		t:        t,
		slow:     make([]atomic.Bool, testMembers),
		canceled: make(chan string, 64),
	}
	f.data = p2h.Dedup(p2h.GenerateDataset("Sift", 1200, 7))
	f.queries = p2h.GenerateQueries(f.data, 12, 11)
	f.spec = p2h.Spec{Kind: p2h.KindSharded, Shards: testShards, LeafSize: 25, Seed: 42}
	attrs := clusterAttrs(f.data.N)
	dir := t.TempDir()

	// The oracle daemon: the sharded index in one process, with attribute
	// payloads attached so declarative predicates have something to filter.
	sharded, err := p2h.New(f.data, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2h.AttachAttributes(sharded, attrs); err != nil {
		t.Fatal(err)
	}
	shardedPath := filepath.Join(dir, "sharded.p2h")
	if err := p2h.SaveFile(shardedPath, sharded); err != nil {
		t.Fatal(err)
	}
	f.oracle = f.newDaemon(map[string]string{"trees": shardedPath}, -1)

	// The members: shard si's tree is built exactly as Sharded builds it —
	// the plan's rows, the derived seed — so the cluster serves the same
	// trees out of process. Each shard carries its own rows' payloads in
	// shard-local order, exactly as p2htool cluster split -attrs writes them.
	f.plan = p2h.ShardPlan(f.data, f.spec)
	if len(f.plan) != testShards {
		t.Fatalf("plan has %d shards, want %d", len(f.plan), testShards)
	}
	shardPaths := make([]string, testShards)
	for si, part := range f.plan {
		ix, err := p2h.New(f.data.SubsetRows(part), p2h.Spec{
			Kind: p2h.KindBCTree, LeafSize: f.spec.LeafSize, Seed: f.spec.Seed + int64(si) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sub := make([]p2h.PointAttrs, len(part))
		for i, row := range part {
			sub[i] = attrs[row]
		}
		if err := p2h.AttachAttributes(ix, sub); err != nil {
			t.Fatal(err)
		}
		shardPaths[si] = filepath.Join(dir, fmt.Sprintf("shard%d.p2h", si))
		if err := p2h.SaveFile(shardPaths[si], ix); err != nil {
			t.Fatal(err)
		}
	}
	f.cfg = Config{
		Members: map[string]MemberConfig{},
		Indexes: map[string]IndexMap{"trees": {}},
		Hedge:   HedgeConfig{Delay: httpapi.Duration(15 * time.Millisecond)},
	}
	im := f.cfg.Indexes["trees"]
	for mi := 0; mi < testMembers; mi++ {
		// Member mi serves shard mi as primary and shard (mi-1+M)%M as the
		// replica of member (mi-1+M)%M's shard.
		serve := map[string]string{
			fmt.Sprintf("trees-s%d", mi):                             shardPaths[mi],
			fmt.Sprintf("trees-s%d", (mi-1+testMembers)%testMembers): shardPaths[(mi-1+testMembers)%testMembers],
		}
		f.members = append(f.members, f.newMemberDaemon(mi, serve))
		f.cfg.Members[fmt.Sprintf("m%d", mi)] = MemberConfig{URL: f.members[mi].URL}
	}
	for si := range f.plan {
		im.Shards = append(im.Shards, ShardConfig{
			Index:    fmt.Sprintf("trees-s%d", si),
			Primary:  fmt.Sprintf("m%d", si),
			Replicas: []string{fmt.Sprintf("m%d", (si+1)%testMembers)},
			IDs:      f.plan[si],
		})
	}
	f.cfg.Indexes["trees"] = im
	if tweak != nil {
		tweak(&f.cfg)
	}

	rt, err := NewRouter(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	rt.probeRound()
	f.router = httptest.NewServer(NewHandler(rt))
	t.Cleanup(f.router.Close)
	return f
}

// newDaemon stands up one member daemon serving the given name->container
// map. cache<0 disables the result cache so stats stay deterministic.
func (f *fixture) newDaemon(indexes map[string]string, cache int) *httptest.Server {
	f.t.Helper()
	m := httpapi.NewManager(p2h.ServerOptions{Workers: 2, CacheEntries: cache}, time.Second)
	for name, path := range indexes {
		if _, _, err := m.Load(name, httpapi.IndexConfig{Path: path}, false); err != nil {
			f.t.Fatal(err)
		}
	}
	f.managers = append(f.managers, m)
	ts := httptest.NewServer(httpapi.NewHandler(m))
	f.t.Cleanup(func() {
		ts.Close()
		_ = m.Close(context.Background())
	})
	return ts
}

// newMemberDaemon is newDaemon plus the slow-member chaos hook used by the
// hedge tests.
func (f *fixture) newMemberDaemon(mi int, indexes map[string]string) *httptest.Server {
	f.t.Helper()
	ts := f.newDaemon(indexes, -1)
	inner := ts.Config.Handler
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.slow[mi].Load() && strings.Contains(r.URL.Path, "/search") {
			// Drain the body: the server only watches for client disconnect
			// (which cancels r.Context()) once the request body hits EOF.
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
				f.canceled <- fmt.Sprintf("m%d", mi)
				return
			case <-time.After(10 * time.Second):
			}
		}
		inner.ServeHTTP(w, r)
	})
	return ts
}

// post sends raw JSON to a server path and returns status and body.
func post(t *testing.T, ts *httptest.Server, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// mustEqualResponses posts the same body to the oracle and the router and
// requires byte-identical 200 answers.
func (f *fixture) mustEqualResponses(path string, body []byte) {
	f.t.Helper()
	wantStatus, want := post(f.t, f.oracle, path, body)
	gotStatus, got := post(f.t, f.router, path, body)
	if wantStatus != http.StatusOK {
		f.t.Fatalf("oracle answered %d: %s", wantStatus, want)
	}
	if gotStatus != http.StatusOK {
		f.t.Fatalf("router answered %d: %s", gotStatus, got)
	}
	if !bytes.Equal(want, got) {
		f.t.Fatalf("router answer differs from oracle\nbody: %s\noracle: %s\nrouter: %s", body, want, got)
	}
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRouterOracleByteIdentical(t *testing.T) {
	f := newFixture(t, nil)
	n := f.data.N
	cases := []struct {
		name string
		opts httpapi.SearchOptionsJSON
	}{
		{"exact_k10", httpapi.SearchOptionsJSON{K: 10}},
		{"default_k", httpapi.SearchOptionsJSON{}},
		{"budgeted", httpapi.SearchOptionsJSON{K: 10, Budget: 100}},
		{"budget_1", httpapi.SearchOptionsJSON{K: 5, Budget: 1}},
		{"k_exceeds_n", httpapi.SearchOptionsJSON{K: n + 50}},
		{"lower_bound", httpapi.SearchOptionsJSON{K: 10, Preference: "lower-bound"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for qi := 0; qi < f.queries.N; qi++ {
				body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(qi), SearchOptionsJSON: tc.opts})
				f.mustEqualResponses("/v1/indexes/trees/search", body)
			}
		})
	}
}

// clusterAttrs builds the deterministic per-row payloads the fixture attaches
// to both the sharded oracle and the member shard trees: tags at roughly 1%,
// 10% and 50% selectivity plus a numeric field, keyed by global row id.
func clusterAttrs(n int) []p2h.PointAttrs {
	attrs := make([]p2h.PointAttrs, n)
	for i := range attrs {
		var tags []string
		if i%100 == 0 {
			tags = append(tags, "hot")
		}
		if i%10 == 0 {
			tags = append(tags, "warm")
		}
		if i%2 == 0 {
			tags = append(tags, "even")
		}
		attrs[i] = p2h.PointAttrs{
			Tags:   tags,
			Floats: map[string]float64{"score": float64(i%1000) / 1000},
		}
	}
	return attrs
}

// TestRouterPredOracleByteIdentical proves declarative predicates survive the
// wire: a filtered search routed through the cluster — serialized in the
// request body, fanned out to the shard members, merged by the router — must
// answer byte-identically to the single-daemon sharded oracle, across
// selectivities from ~1% to everything-matches-nothing.
func TestRouterPredOracleByteIdentical(t *testing.T) {
	f := newFixture(t, nil)
	cases := []struct {
		name string
		pred *p2h.Pred
	}{
		{"tag_1pct", p2h.TagIs("hot")},
		{"tag_10pct", p2h.TagIs("warm")},
		{"tag_50pct", p2h.TagIs("even")},
		{"range_20pct", p2h.FieldBetween("score", 0.2, 0.4)},
		{"and", p2h.AllOf(p2h.TagIs("even"), p2h.FieldAtLeast("score", 0.5))},
		{"or", p2h.OneOf(p2h.TagIs("hot"), p2h.FieldAtMost("score", 0.05))},
		{"not", p2h.NotOf(p2h.TagIs("even"))},
		{"empty", p2h.TagIs("no-such-tag")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := httpapi.SearchOptionsJSON{K: 10, Filter: tc.pred}
			for qi := 0; qi < f.queries.N; qi++ {
				body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(qi), SearchOptionsJSON: opts})
				f.mustEqualResponses("/v1/indexes/trees/search", body)
			}
			queries := make([][]float32, f.queries.N)
			for qi := range queries {
				queries[qi] = f.queries.Row(qi)
			}
			body := marshal(t, httpapi.BatchSearchRequest{Queries: queries, SearchOptionsJSON: opts})
			f.mustEqualResponses("/v1/indexes/trees/search_batch", body)
		})
	}
	// Budgeted filtered fan-out exercises the router's budget split together
	// with the predicate.
	budgeted := httpapi.SearchOptionsJSON{K: 10, Budget: 150, Filter: p2h.TagIs("warm")}
	for qi := 0; qi < f.queries.N; qi++ {
		body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(qi), SearchOptionsJSON: budgeted})
		f.mustEqualResponses("/v1/indexes/trees/search", body)
	}
}

func TestRouterBatchOracleByteIdentical(t *testing.T) {
	f := newFixture(t, nil)
	queries := make([][]float32, f.queries.N)
	for qi := range queries {
		queries[qi] = f.queries.Row(qi)
	}
	for _, opts := range []httpapi.SearchOptionsJSON{
		{K: 10},
		{K: 10, Budget: 150},
		{K: f.data.N + 10},
	} {
		body := marshal(t, httpapi.BatchSearchRequest{Queries: queries, SearchOptionsJSON: opts})
		f.mustEqualResponses("/v1/indexes/trees/search_batch", body)
	}
}

// TestFilteredMergeOracle covers the filtered case the wire cannot carry
// (Filter is an arbitrary function): searching the member shard trees
// in-process with the translated filter and merging through the router's
// merge path must reproduce the sharded index's filtered answers exactly.
func TestFilteredMergeOracle(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 800, 3))
	spec := p2h.Spec{Kind: p2h.KindSharded, Shards: 3, LeafSize: 20, Seed: 9}
	sharded, err := p2h.New(data, spec)
	if err != nil {
		t.Fatal(err)
	}
	plan := p2h.ShardPlan(data, spec)
	trees := make([]p2h.Index, len(plan))
	var total int64
	for si, part := range plan {
		trees[si], err = p2h.New(data.SubsetRows(part), p2h.Spec{
			Kind: p2h.KindBCTree, LeafSize: spec.LeafSize, Seed: spec.Seed + int64(si) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(part))
	}
	filter := func(id int32) bool { return id%2 == 0 }
	queries := p2h.GenerateQueries(data, 10, 5)
	for _, budget := range []int{0, 120} {
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			opts := p2h.SearchOptions{K: 10, Budget: budget, Filter: filter}
			want, _ := sharded.Search(q, opts)

			lists := make([][]httpapi.ResultJSON, len(trees))
			for si, tree := range trees {
				wire := shardOptions(httpapi.SearchOptionsJSON{K: opts.K, Budget: opts.Budget}, int64(len(plan[si])), total)
				part := plan[si]
				res, _ := tree.Search(q, p2h.SearchOptions{
					K: wire.K, Budget: wire.Budget,
					Filter: func(local int32) bool { return filter(part[local]) },
				})
				list := make([]httpapi.ResultJSON, len(res))
				for i, r := range res {
					list[i] = httpapi.ResultJSON{ID: r.ID, Dist: r.Dist}
				}
				if err := translateIDs(ShardConfig{IDs: part}, list); err != nil {
					t.Fatal(err)
				}
				lists[si] = list
			}
			got := mergeTopK(lists, opts.K)
			if len(got) != len(want) {
				t.Fatalf("budget %d query %d: got %d results, want %d", budget, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
					t.Fatalf("budget %d query %d result %d: got (%d,%v), want (%d,%v)",
						budget, qi, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
				}
			}
			for _, r := range got {
				if !filter(r.ID) {
					t.Fatalf("filtered merge leaked id %d", r.ID)
				}
			}
		}
	}
}

// TestMergeMatchesSortResults pins the merge order to core.SortResults on
// tie-heavy input.
func TestMergeMatchesSortResults(t *testing.T) {
	lists := [][]httpapi.ResultJSON{
		{{ID: 5, Dist: 1.0}, {ID: 2, Dist: 2.0}},
		{{ID: 1, Dist: 1.0}, {ID: 9, Dist: 1.0}, {ID: 3, Dist: 2.0}},
		{},
		{{ID: 0, Dist: 0.5}},
	}
	var flat []core.Result
	for _, l := range lists {
		for _, r := range l {
			flat = append(flat, core.Result{ID: r.ID, Dist: r.Dist})
		}
	}
	core.SortResults(flat)
	got := mergeTopK(lists, 4)
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
	for i := range got {
		if got[i].ID != flat[i].ID || got[i].Dist != flat[i].Dist {
			t.Fatalf("result %d: got (%d,%v), want (%d,%v)", i, got[i].ID, got[i].Dist, flat[i].ID, flat[i].Dist)
		}
	}
}

func TestHedgeCancelsSlowPrimary(t *testing.T) {
	f := newFixture(t, nil)
	f.slow[0].Store(true) // primary of shard 0 hangs; its replica m1 is fast

	body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(0), SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 10}})
	_, want := post(t, f.oracle, "/v1/indexes/trees/search", body)
	start := time.Now()
	gotStatus, got := post(t, f.router, "/v1/indexes/trees/search", body)
	elapsed := time.Since(start)
	if gotStatus != http.StatusOK {
		t.Fatalf("router answered %d: %s", gotStatus, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("hedged answer differs from oracle:\n%s\nvs\n%s", got, want)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v — hedge did not fire", elapsed)
	}
	if f.rt.metrics.hedges.Load() == 0 {
		t.Fatal("no hedge recorded")
	}
	// The loser (the hung primary) must be canceled once the hedge wins.
	select {
	case m := <-f.canceled:
		if m != "m0" {
			t.Fatalf("canceled %s, want m0", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow primary's request was never canceled")
	}
}

func TestMemberDownFallsBackToReplica(t *testing.T) {
	f := newFixture(t, nil)
	body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(1), SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 10}})
	_, want := post(t, f.oracle, "/v1/indexes/trees/search", body)

	// Kill member 0 (primary of shard 0). First query: the router still
	// believes it healthy and falls back on the transport error.
	f.members[0].Close()
	status, got := post(t, f.router, "/v1/indexes/trees/search", body)
	if status != http.StatusOK {
		t.Fatalf("router answered %d after member kill: %s", status, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("fallback answer differs from oracle")
	}
	if f.rt.metrics.fallbacks.Load() == 0 && f.rt.metrics.hedges.Load() == 0 {
		t.Fatal("no fallback or hedge recorded for the dead primary")
	}

	// After a probe round the member is Down and routing avoids it up front.
	f.rt.probeRound()
	if st := f.rt.members["m0"].getState(); st != StateDown {
		t.Fatalf("m0 state after probe = %v, want down", st)
	}
	targets := f.rt.shardTargets(f.cfg.Indexes["trees"].Shards[0])
	if len(targets) != 1 || targets[0].name != "m1" {
		t.Fatalf("targets after probe = %v, want [m1]", memberNames(targets))
	}
	status, got = post(t, f.router, "/v1/indexes/trees/search", body)
	if status != http.StatusOK || !bytes.Equal(want, got) {
		t.Fatalf("post-probe answer wrong: status %d", status)
	}

	// Batch keeps working off the replica too.
	queries := [][]float32{f.queries.Row(0), f.queries.Row(2)}
	bbody := marshal(t, httpapi.BatchSearchRequest{Queries: queries, SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 5}})
	_, bwant := post(t, f.oracle, "/v1/indexes/trees/search_batch", bbody)
	status, bgot := post(t, f.router, "/v1/indexes/trees/search_batch", bbody)
	if status != http.StatusOK || !bytes.Equal(bwant, bgot) {
		t.Fatalf("batch after member kill: status %d", status)
	}

	// Router health reports the sick member but stays routable.
	resp, err := http.Get(f.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h ClusterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("health = %d %q, want 200 degraded", resp.StatusCode, h.Status)
	}
	if h.Members["m0"].State != "down" {
		t.Fatalf("m0 health state = %q, want down", h.Members["m0"].State)
	}
}

func memberNames(ms []*member) []string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.name
	}
	return names
}

func TestShipReplicatesSnapshot(t *testing.T) {
	f := newFixture(t, nil)
	// m2 is not a holder of shard 0; make it one and ship the snapshot over.
	im := f.cfg.Indexes["trees"]
	im.Shards[0].Replicas = append(im.Shards[0].Replicas, "m2")
	rt, err := NewRouter(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.probeRound()

	reports, err := rt.Ship(context.Background(), "trees", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Points != len(f.plan[0]) {
		t.Fatalf("shipped %d points, want %d", rep.Points, len(f.plan[0]))
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("got %d replica results, want 2", len(rep.Replicas))
	}
	for _, rr := range rep.Replicas {
		if !rr.OK {
			t.Fatalf("replica %s failed: %s", rr.Member, rr.Error)
		}
	}
	// m2 now serves the shard.
	info, err := rt.members["m2"].indexInfo(context.Background(), "trees-s0")
	if err != nil {
		t.Fatal(err)
	}
	if info.N != len(f.plan[0]) {
		t.Fatalf("m2 serves %d points, want %d", info.N, len(f.plan[0]))
	}

	// With the primary and first replica gone, the shipped copy answers —
	// and still byte-identically to the oracle.
	body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(3), SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 10}})
	_, want := post(t, f.oracle, "/v1/indexes/trees/search", body)
	f.members[0].Close()
	f.members[1].Close()
	rt.probeRound()
	router := httptest.NewServer(NewHandler(rt))
	defer router.Close()
	status, got := post(t, router, "/v1/indexes/trees/search", body)
	if status != http.StatusOK {
		t.Fatalf("search off shipped replica answered %d: %s", status, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("shipped replica's answer differs from oracle")
	}
}

func TestRouterInfoAndList(t *testing.T) {
	f := newFixture(t, nil)
	var info httpapi.IndexInfoResponse
	resp, err := http.Get(f.router.URL + "/v1/indexes/trees")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Kind != "cluster" || info.N != f.data.N || info.Dim != f.data.D {
		t.Fatalf("info = kind %q n %d dim %d, want cluster %d %d", info.Kind, info.N, info.Dim, f.data.N, f.data.D)
	}
	status, body := post(t, f.router, "/v1/indexes/nope/search",
		marshal(t, httpapi.SearchRequest{Query: f.queries.Row(0)}))
	if status != http.StatusNotFound {
		t.Fatalf("unknown index answered %d: %s", status, body)
	}
}

func TestRouterMetricsExposition(t *testing.T) {
	f := newFixture(t, nil)
	body := marshal(t, httpapi.SearchRequest{Query: f.queries.Row(0), SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 3}})
	post(t, f.router, "/v1/indexes/trees/search", body)
	resp, err := http.Get(f.router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`p2hd_router_requests_total{endpoint="search",code="200"} 1`,
		`p2hd_router_member_state{member="m0"} 1`,
		"p2hd_router_hedges_total",
		"p2hd_router_member_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestStatusReport(t *testing.T) {
	f := newFixture(t, nil)
	rows, members, err := Status(context.Background(), f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != testMembers {
		t.Fatalf("%d members, want %d", len(members), testMembers)
	}
	if len(rows) != testShards*2 {
		t.Fatalf("%d rows, want %d", len(rows), testShards*2)
	}
	for _, row := range rows {
		if row.Points != len(f.plan[row.Shard]) {
			t.Fatalf("row %+v: points %d, want %d", row, row.Points, len(f.plan[row.Shard]))
		}
		if row.Lag != 0 {
			t.Fatalf("row %+v: lag %d, want 0", row, row.Lag)
		}
		if row.State != "healthy" {
			t.Fatalf("row %+v: state %q, want healthy", row, row.State)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Members: map[string]MemberConfig{"a": {URL: "http://x"}, "b": {URL: "http://y"}},
		Indexes: map[string]IndexMap{"i": {Shards: []ShardConfig{
			{Index: "i-s0", Primary: "a", Replicas: []string{"b"}},
		}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	base := func() Config {
		c := good
		c.Indexes = map[string]IndexMap{"i": {Shards: []ShardConfig{
			{Index: "i-s0", Primary: "a", Replicas: []string{"b"}},
		}}}
		return c
	}
	cases := map[string]func(*Config){
		"no members":       func(c *Config) { c.Members = nil },
		"member no url":    func(c *Config) { c.Members = map[string]MemberConfig{"a": {}} },
		"no indexes":       func(c *Config) { c.Indexes = nil },
		"no shards":        func(c *Config) { c.Indexes = map[string]IndexMap{"i": {}} },
		"unknown primary":  func(c *Config) { c.Indexes["i"].Shards[0].Primary = "zz" },
		"unknown replica":  func(c *Config) { c.Indexes["i"].Shards[0].Replicas = []string{"zz"} },
		"duplicate holder": func(c *Config) { c.Indexes["i"].Shards[0].Replicas = []string{"a"} },
		"no member index":  func(c *Config) { c.Indexes["i"].Shards[0].Index = "" },
		"ids plus id_base": func(c *Config) {
			b := int32(5)
			c.Indexes["i"].Shards[0].IDBase = &b
			c.Indexes["i"].Shards[0].IDs = []int32{1}
		},
	}
	for name, tweak := range cases {
		c := base()
		tweak(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestTranslateIDs(t *testing.T) {
	res := []httpapi.ResultJSON{{ID: 0, Dist: 1}, {ID: 2, Dist: 2}}
	if err := translateIDs(ShardConfig{IDs: []int32{7, 8, 9}}, res); err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 7 || res[1].ID != 9 {
		t.Fatalf("ids = %d,%d, want 7,9", res[0].ID, res[1].ID)
	}
	base := int32(100)
	res = []httpapi.ResultJSON{{ID: 3}}
	if err := translateIDs(ShardConfig{IDBase: &base}, res); err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 103 {
		t.Fatalf("id = %d, want 103", res[0].ID)
	}
	if err := translateIDs(ShardConfig{IDs: []int32{7}}, []httpapi.ResultJSON{{ID: 9}}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}
