package cluster

import (
	"context"
	"sort"
)

// StatusRow is one member×shard line of a cluster status report: where one
// copy of one shard lives, what it holds, and how far a replica trails its
// primary.
type StatusRow struct {
	// Index is the logical index name; Shard its position in the partition
	// map; MemberIndex the index name the copy is served under.
	Index       string
	Shard       int
	MemberIndex string
	// Member holds the copy; Role is "primary" or "replica"; State is the
	// member's probed health.
	Member string
	Role   string
	State  string
	// Points and Epoch describe the served copy; -1 when unreachable.
	Points int
	Epoch  int64
	// Lag is a replica's mutation epochs behind its primary; -1 when either
	// side is unreachable (and 0 for primaries).
	Lag int64
	// Err carries the probe failure for unreachable copies.
	Err string
}

// Status probes a cluster config directly — no router needed — and reports
// per-member health and per-shard placement, snapshot versions and
// replication lag. Members are probed concurrently; probeTimeout bounds each
// call.
func Status(ctx context.Context, cfg Config) ([]StatusRow, map[string]MemberStatus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		return nil, nil, err
	}
	rt.probeRound()
	health, _ := rt.Health()

	type copyRef struct {
		index, memberIndex, member, role string
		shard                            int
	}
	var copies []copyRef
	for _, name := range rt.IndexNames() {
		ri := rt.indexes[name]
		for si, rs := range ri.shards {
			copies = append(copies, copyRef{name, rs.cfg.Index, rs.cfg.Primary, "primary", si})
			for _, rep := range rs.cfg.Replicas {
				copies = append(copies, copyRef{name, rs.cfg.Index, rep, "replica", si})
			}
		}
	}

	rows := make([]StatusRow, len(copies))
	done := make(chan int, len(copies))
	for i, c := range copies {
		go func(i int, c copyRef) {
			defer func() { done <- i }()
			row := StatusRow{
				Index: c.index, Shard: c.shard, MemberIndex: c.memberIndex,
				Member: c.member, Role: c.role,
				State:  rt.members[c.member].getState().String(),
				Points: -1, Epoch: -1, Lag: -1,
			}
			cctx, cancel := context.WithTimeout(ctx, cfg.probeTimeout())
			defer cancel()
			info, err := rt.members[c.member].indexInfo(cctx, c.memberIndex)
			if err != nil {
				row.Err = err.Error()
			} else {
				row.Points = info.N
				row.Epoch = int64(info.Stats.Epoch)
			}
			rows[i] = row
		}(i, c)
	}
	for range copies {
		<-done
	}

	// Replication lag: epochs behind the shard's primary.
	primaryEpoch := make(map[[2]any]int64)
	for _, row := range rows {
		if row.Role == "primary" {
			primaryEpoch[[2]any{row.Index, row.Shard}] = row.Epoch
		}
	}
	for i := range rows {
		if rows[i].Epoch < 0 {
			continue
		}
		if rows[i].Role == "primary" {
			rows[i].Lag = 0
			continue
		}
		if pe, ok := primaryEpoch[[2]any{rows[i].Index, rows[i].Shard}]; ok && pe >= 0 {
			rows[i].Lag = pe - rows[i].Epoch
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Role != b.Role {
			return a.Role == "primary"
		}
		return a.Member < b.Member
	})
	return rows, health.Members, nil
}
