package cluster

import (
	"context"
	"fmt"
	"os"
)

// ReplicaShipResult reports one replica's side of a shard ship.
type ReplicaShipResult struct {
	// Member is the replica's name.
	Member string `json:"member"`
	// OK reports a successful restore (the replica is now serving the
	// shipped snapshot).
	OK bool `json:"ok"`
	// Error carries the failure when OK is false.
	Error string `json:"error,omitempty"`
}

// ShipReport reports one shard's snapshot shipment.
type ShipReport struct {
	// Index is the logical index name.
	Index string `json:"index"`
	// Shard is the shard's position in the partition map.
	Shard int `json:"shard"`
	// Source is the member the snapshot was cut on (the shard's primary).
	Source string `json:"source"`
	// Points and Epoch identify the shipped cut, from the primary's
	// container stream headers.
	Points int    `json:"points"`
	Epoch  uint64 `json:"epoch"`
	// Bytes is the container size streamed.
	Bytes int64 `json:"bytes"`
	// Replicas reports each replica's restore.
	Replicas []ReplicaShipResult `json:"replicas"`
}

// Ship replicates index shards: for each selected shard it cuts an atomic
// snapshot on the primary (GET /container), spools it, and streams it to
// every replica (POST /restore), which hot-swaps it in. shard selects one
// shard by position; negative ships them all. Shards without replicas are
// reported with an empty replica list. A replica that fails to restore is
// reported, not fatal — the others still converge.
func (rt *Router) Ship(ctx context.Context, index string, shard int) ([]ShipReport, error) {
	ri, ok := rt.indexes[index]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, index)
	}
	if shard >= len(ri.shards) {
		return nil, fmt.Errorf("cluster: index %q has %d shards, no shard %d", index, len(ri.shards), shard)
	}
	var reports []ShipReport
	for si, rs := range ri.shards {
		if shard >= 0 && si != shard {
			continue
		}
		rep, err := rt.shipShard(ctx, index, si, rs.cfg)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	rt.metrics.ships.Add(1)
	return reports, nil
}

// shipShard ships one shard primary→replicas through a local spool file, so
// the primary streams its snapshot once however many replicas receive it.
func (rt *Router) shipShard(ctx context.Context, index string, si int, sc ShardConfig) (ShipReport, error) {
	rep := ShipReport{Index: index, Shard: si, Source: sc.Primary, Replicas: []ReplicaShipResult{}}
	if len(sc.Replicas) == 0 {
		return rep, nil
	}
	primary := rt.members[sc.Primary]
	spool, err := os.CreateTemp("", "p2h-ship-*.p2h")
	if err != nil {
		return rep, err
	}
	defer os.Remove(spool.Name())
	points, epoch, size, err := primary.downloadContainer(ctx, sc.Index, spool)
	if cerr := spool.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return rep, fmt.Errorf("cluster: snapshot of %q on primary %s: %w", sc.Index, sc.Primary, err)
	}
	rep.Points, rep.Epoch, rep.Bytes = points, epoch, size
	for _, replica := range sc.Replicas {
		rr := ReplicaShipResult{Member: replica}
		f, err := os.Open(spool.Name())
		if err != nil {
			return rep, err
		}
		_, err = rt.members[replica].restore(ctx, sc.Index, f, size)
		f.Close()
		if err != nil {
			rr.Error = err.Error()
		} else {
			rr.OK = true
		}
		rep.Replicas = append(rep.Replicas, rr)
	}
	return rep, nil
}
