package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2h/internal/httpapi"
)

// Routing errors.
var (
	// ErrUnknownIndex reports a request for an index the partition map does
	// not declare.
	ErrUnknownIndex = errors.New("cluster: unknown index")
	// ErrNoMembers reports a shard whose every holder is unroutable.
	ErrNoMembers = errors.New("cluster: no member available for shard")
)

// routedShard is one shard's runtime state: its static placement plus the
// point count, learned from the id map or from the serving member's info
// (the budget split needs shard sizes).
type routedShard struct {
	cfg ShardConfig
	n   atomic.Int64 // points; 0 until learned
}

// routedIndex is one logical index's runtime state.
type routedIndex struct {
	name   string
	shards []*routedShard
	dim    atomic.Int64 // raw dimensionality; 0 until learned
}

// Router fans queries out over the partition map, hedges against slow
// members, and merges shard answers into the exact global top-k.
type Router struct {
	cfg     Config
	members map[string]*member
	indexes map[string]*routedIndex
	metrics *routerMetrics
	started time.Time

	hedgeOff                       bool
	hedgeDelay, hedgeMin, hedgeMax time.Duration
	maxTimeout, defaultTimeout     time.Duration

	proberStop chan struct{}
	proberDone chan struct{}
}

// NewRouter builds a router over a validated partition map. Call Start to
// begin health probing and Close to stop it.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}}
	rt := &Router{
		cfg:     cfg,
		members: make(map[string]*member, len(cfg.Members)),
		indexes: make(map[string]*routedIndex, len(cfg.Indexes)),
		metrics: newRouterMetrics(),
		started: time.Now(),
	}
	rt.hedgeOff = cfg.Hedge.Disable
	rt.hedgeDelay, rt.hedgeMin, rt.hedgeMax = cfg.hedgeDefaults()
	opts := cfg.handlerOptions()
	rt.maxTimeout = opts.MaxTimeout
	if rt.maxTimeout <= 0 {
		rt.maxTimeout = httpapi.DefaultMaxTimeout
	}
	rt.defaultTimeout = opts.DefaultTimeout
	if rt.defaultTimeout <= 0 || rt.defaultTimeout > rt.maxTimeout {
		rt.defaultTimeout = rt.maxTimeout
	}
	for name, mc := range cfg.Members {
		rt.members[name] = newMember(name, mc, hc)
	}
	for name, im := range cfg.Indexes {
		ri := &routedIndex{name: name}
		for _, sc := range im.Shards {
			rs := &routedShard{cfg: sc}
			if len(sc.IDs) > 0 {
				rs.n.Store(int64(len(sc.IDs)))
			}
			ri.shards = append(ri.shards, rs)
		}
		rt.indexes[name] = ri
	}
	return rt, nil
}

// Start launches the background health prober. Safe to skip in tests that
// drive probeRound directly.
func (rt *Router) Start() {
	if rt.proberStop != nil {
		return
	}
	rt.proberStop = make(chan struct{})
	rt.proberDone = make(chan struct{})
	go rt.proberLoop(rt.proberStop, rt.proberDone)
}

// Close stops the prober and waits for it to exit.
func (rt *Router) Close() {
	if rt.proberStop == nil {
		return
	}
	close(rt.proberStop)
	<-rt.proberDone
	rt.proberStop, rt.proberDone = nil, nil
}

// MemberNames returns the member names, sorted.
func (rt *Router) MemberNames() []string {
	names := make([]string, 0, len(rt.members))
	for name := range rt.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IndexNames returns the logical index names, sorted.
func (rt *Router) IndexNames() []string {
	names := make([]string, 0, len(rt.indexes))
	for name := range rt.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// shardTargets orders a shard's holders for one attempt sequence: primary
// first, then replicas, stably re-ranked by observed health so routing
// prefers healthy members over degraded ones and avoids draining and down
// members while any alternative exists. Down members are dropped entirely
// unless every holder is down, in which case all are kept — a stale probe
// must not make a shard unroutable when a member already recovered.
func (rt *Router) shardTargets(sc ShardConfig) []*member {
	cands := make([]*member, 0, 1+len(sc.Replicas))
	cands = append(cands, rt.members[sc.Primary])
	for _, rep := range sc.Replicas {
		cands = append(cands, rt.members[rep])
	}
	ranks := make(map[*member]int, len(cands))
	alive := 0
	for _, m := range cands {
		ranks[m] = m.getState().rank()
		if m.getState() != StateDown {
			alive++
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return ranks[cands[i]] < ranks[cands[j]] })
	if alive > 0 && alive < len(cands) {
		cands = cands[:alive]
	}
	return cands
}

// hedgeDelayFor derives the hedge trigger for an attempt against m: the
// member's observed p99 (a hedge should fire only when this request is
// already in the member's latency tail), clamped to the configured window,
// or the configured fixed delay before any latency has been observed.
func (rt *Router) hedgeDelayFor(m *member) time.Duration {
	d := m.lat.p99()
	if d <= 0 {
		return rt.hedgeDelay
	}
	if d < rt.hedgeMin {
		d = rt.hedgeMin
	}
	if d > rt.hedgeMax {
		d = rt.hedgeMax
	}
	return d
}

// hedgedCall runs call against the ordered targets until one answers: the
// first target is tried immediately; a hedge attempt starts against the next
// target when the first exceeds its hedge delay; a retryable failure falls
// through to the next target immediately. The first success wins and cancels
// every other in-flight attempt. A non-retryable failure (bad request,
// expired deadline) fails the call at once — another member would answer the
// same.
func (rt *Router) hedgedCall(ctx context.Context, targets []*member, call func(context.Context, *member) (any, error)) (any, error) {
	if len(targets) == 0 {
		return nil, ErrNoMembers
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		v   any
		err error
		m   *member
	}
	ch := make(chan attempt, len(targets))
	launch := func(m *member) {
		go func() {
			v, err := call(cctx, m)
			ch <- attempt{v: v, err: err, m: m}
		}()
	}
	launch(targets[0])
	inflight, next := 1, 1

	var hedgeC <-chan time.Time
	if !rt.hedgeOff && next < len(targets) {
		t := time.NewTimer(rt.hedgeDelayFor(targets[0]))
		defer t.Stop()
		hedgeC = t.C
	}
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next < len(targets) {
				rt.metrics.hedges.Add(1)
				launch(targets[next])
				next++
				inflight++
			}
		case a := <-ch:
			inflight--
			if a.err == nil {
				if a.m != targets[0] {
					rt.metrics.hedgeWins.Add(1)
				}
				cancel()
				return a.v, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !retryable(a.err) {
				cancel()
				return nil, a.err
			}
			if next < len(targets) {
				rt.metrics.fallbacks.Add(1)
				launch(targets[next])
				next++
				inflight++
			} else if inflight == 0 {
				return nil, a.err
			}
		}
	}
}

// shardSize returns a shard's point count, learning it from a serving
// member's index info on first need (id-mapped shards know it statically).
func (rt *Router) shardSize(ctx context.Context, ri *routedIndex, si int) (int64, error) {
	rs := ri.shards[si]
	if n := rs.n.Load(); n > 0 {
		return n, nil
	}
	var lastErr error = ErrNoMembers
	for _, m := range rt.shardTargets(rs.cfg) {
		info, err := m.indexInfo(ctx, rs.cfg.Index)
		if err != nil {
			lastErr = err
			continue
		}
		rs.n.Store(int64(info.N))
		if ri.dim.Load() == 0 && info.Dim > 0 {
			ri.dim.Store(int64(info.Dim))
		}
		return int64(info.N), nil
	}
	return 0, lastErr
}

// indexSize returns the logical index's total point count (the budget split
// denominator), learning unknown shard sizes as needed.
func (rt *Router) indexSize(ctx context.Context, ri *routedIndex) (int64, error) {
	var total int64
	for si := range ri.shards {
		n, err := rt.shardSize(ctx, ri, si)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// shardOptions derives shard si's view of the request options, mirroring the
// in-process Sharded index's shardOpts: a positive candidate budget divides
// across shards in proportion to their sizes, ceiling division, floor one.
func shardOptions(opts httpapi.SearchOptionsJSON, shardN, total int64) httpapi.SearchOptionsJSON {
	if opts.Budget > 0 && total > 0 {
		share := (int64(opts.Budget)*shardN + total - 1) / total
		if share < 1 {
			share = 1
		}
		opts.Budget = int(share)
	}
	return opts
}

// remainingMS converts a context's remaining deadline budget into the wire
// timeout_ms forwarded to a member, so the deadline the router promised its
// client propagates through the fan-out (a floor of one keeps an
// about-to-expire request from turning into "no timeout").
func remainingMS(ctx context.Context) int {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := int(time.Until(d) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// searchDeadline derives the request deadline from the client's timeout_ms
// under the router's caps, exactly as a member daemon would.
func (rt *Router) searchDeadline(ctx context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := time.Duration(timeoutMS) * time.Millisecond
	if d <= 0 {
		d = rt.defaultTimeout
	}
	if d > rt.maxTimeout {
		d = rt.maxTimeout
	}
	return context.WithDeadline(ctx, time.Now().Add(d))
}

// Search fans one query out over the index's shards and merges the exact
// top-k. Results are byte-identical to the in-process Sharded index over the
// same partition: same per-shard budget split, same (Dist, ID) merge order,
// same truncation.
func (rt *Router) Search(ctx context.Context, name string, req httpapi.SearchRequest) (*httpapi.SearchResponse, error) {
	ri, ok := rt.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	var total int64
	if req.Budget > 0 {
		var err error
		if total, err = rt.indexSize(ctx, ri); err != nil {
			return nil, err
		}
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	lists := make([][]httpapi.ResultJSON, len(ri.shards))
	stats := make([]httpapi.StatsJSON, len(ri.shards))
	errs := make([]error, len(ri.shards))
	var wg sync.WaitGroup
	for si := range ri.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			rs := ri.shards[si]
			sreq := req
			sreq.SearchOptionsJSON = shardOptions(req.SearchOptionsJSON, rs.n.Load(), total)
			v, err := rt.hedgedCall(ctx, rt.shardTargets(rs.cfg), func(c context.Context, m *member) (any, error) {
				r := sreq
				r.TimeoutMS = remainingMS(c)
				return m.search(c, rs.cfg.Index, r)
			})
			if err != nil {
				errs[si] = err
				return
			}
			resp := v.(*httpapi.SearchResponse)
			if err := translateIDs(rs.cfg, resp.Results); err != nil {
				errs[si] = err
				return
			}
			lists[si], stats[si] = resp.Results, resp.Stats
		}(si)
	}
	wg.Wait()
	// An exact answer needs every shard; any shard failure fails the query.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &httpapi.SearchResponse{Results: mergeTopK(lists, k)}
	for _, st := range stats {
		addStats(&out.Stats, st)
	}
	return out, nil
}

// SearchBatch fans a whole batch out — one batch request per shard, so the
// members' micro-batching engines see the full batch — and merges per query.
// Results are byte-identical to per-query Search calls and to the in-process
// Sharded index's SearchBatch.
func (rt *Router) SearchBatch(ctx context.Context, name string, req httpapi.BatchSearchRequest) (*httpapi.BatchSearchResponse, error) {
	ri, ok := rt.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	var total int64
	if req.Budget > 0 {
		var err error
		if total, err = rt.indexSize(ctx, ri); err != nil {
			return nil, err
		}
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	nq := len(req.Queries)
	shardResp := make([]*httpapi.BatchSearchResponse, len(ri.shards))
	errs := make([]error, len(ri.shards))
	var wg sync.WaitGroup
	for si := range ri.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			rs := ri.shards[si]
			sreq := req
			sreq.SearchOptionsJSON = shardOptions(req.SearchOptionsJSON, rs.n.Load(), total)
			v, err := rt.hedgedCall(ctx, rt.shardTargets(rs.cfg), func(c context.Context, m *member) (any, error) {
				r := sreq
				r.TimeoutMS = remainingMS(c)
				return m.searchBatch(c, rs.cfg.Index, r)
			})
			if err != nil {
				errs[si] = err
				return
			}
			resp := v.(*httpapi.BatchSearchResponse)
			if len(resp.Results) != nq {
				errs[si] = fmt.Errorf("cluster: shard %q answered %d results for %d queries", rs.cfg.Index, len(resp.Results), nq)
				return
			}
			for qi := range resp.Results {
				if err := translateIDs(rs.cfg, resp.Results[qi]); err != nil {
					errs[si] = err
					return
				}
			}
			shardResp[si] = resp
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &httpapi.BatchSearchResponse{Results: make([][]httpapi.ResultJSON, nq)}
	lists := make([][]httpapi.ResultJSON, len(ri.shards))
	for qi := 0; qi < nq; qi++ {
		for si := range ri.shards {
			lists[si] = shardResp[si].Results[qi]
		}
		out.Results[qi] = mergeTopK(lists, k)
	}
	for _, resp := range shardResp {
		addStats(&out.Stats, resp.Stats)
	}
	return out, nil
}

// Info describes one logical index in the member daemons' wire shape (kind
// "cluster"), learning dimensionality and point counts from the members as
// needed — so clients built for a single daemon work against a router
// unchanged.
func (rt *Router) Info(ctx context.Context, name string) (httpapi.IndexInfoResponse, error) {
	ri, ok := rt.indexes[name]
	if !ok {
		return httpapi.IndexInfoResponse{}, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	total, err := rt.indexSize(ctx, ri)
	if err != nil {
		return httpapi.IndexInfoResponse{}, err
	}
	if ri.dim.Load() == 0 {
		// Shard sizes can all be statically known (id maps), in which case no
		// member was consulted yet; learn the dimensionality explicitly.
		for _, m := range rt.shardTargets(ri.shards[0].cfg) {
			info, ierr := m.indexInfo(ctx, ri.shards[0].cfg.Index)
			if ierr == nil {
				ri.dim.Store(int64(info.Dim))
				break
			}
			err = ierr
		}
		if ri.dim.Load() == 0 {
			return httpapi.IndexInfoResponse{}, err
		}
	}
	return httpapi.IndexInfoResponse{
		Name: name,
		Kind: "cluster",
		Dim:  int(ri.dim.Load()),
		N:    int(total),
	}, nil
}
