package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"p2h/internal/httpapi"
)

// Typed configuration errors.
var (
	// ErrBadConfig reports a partition map that cannot drive a router.
	ErrBadConfig = errors.New("cluster: invalid config")
)

// Defaults for the knobs a config may omit.
const (
	// DefaultProbeInterval is the health-prober period.
	DefaultProbeInterval = 1 * time.Second
	// DefaultProbeTimeout bounds one /healthz probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultHedgeDelay is the hedge trigger before any latency has been
	// observed for a member (afterwards the member's p99 drives it).
	DefaultHedgeDelay = 20 * time.Millisecond
	// DefaultHedgeMinDelay floors the p99-derived hedge delay so a fast
	// cluster does not hedge every request on scheduling noise.
	DefaultHedgeMinDelay = 1 * time.Millisecond
	// DefaultHedgeMaxDelay caps the p99-derived hedge delay so one slow
	// outlier window cannot disable hedging entirely.
	DefaultHedgeMaxDelay = 500 * time.Millisecond
)

// MemberConfig declares one member daemon.
type MemberConfig struct {
	// URL is the member's base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// ShardConfig declares one shard of a logical index: where it lives and how
// its shard-local result ids map back to global data ids.
type ShardConfig struct {
	// Index is the index name this shard is served under on its members
	// (every member holding the shard uses the same name).
	Index string `json:"index"`
	// Primary names the member normally serving the shard.
	Primary string `json:"primary"`
	// Replicas name members holding copies, used for hedged requests and
	// failover; Ship refreshes them from the primary's snapshot.
	Replicas []string `json:"replicas,omitempty"`
	// IDs maps shard-local row ids to global data ids (the shard.Plan rows
	// the shard's index was built over). When set, merged results are
	// byte-identical to the in-process Sharded index over the same plan.
	IDs []int32 `json:"ids,omitempty"`
	// IDBase, for contiguous partitions, adds a constant offset to
	// shard-local ids instead of a full IDs table.
	IDBase *int32 `json:"id_base,omitempty"`
}

// IndexMap declares one logical index as an ordered list of shards; shard
// order is the in-process Sharded shard order (it fixes the budget split).
type IndexMap struct {
	// Shards lists the partitions, in shard.Plan order.
	Shards []ShardConfig `json:"shards"`
}

// HedgeConfig tunes the tail-latency hedging of shard fan-outs.
type HedgeConfig struct {
	// Disable turns hedging off (failover on error still happens).
	Disable bool `json:"disable,omitempty"`
	// Delay is the hedge trigger used before a member has latency history
	// (zero: DefaultHedgeDelay).
	Delay httpapi.Duration `json:"delay,omitempty"`
	// MinDelay floors the p99-derived trigger (zero: DefaultHedgeMinDelay).
	MinDelay httpapi.Duration `json:"min_delay,omitempty"`
	// MaxDelay caps the p99-derived trigger (zero: DefaultHedgeMaxDelay).
	MaxDelay httpapi.Duration `json:"max_delay,omitempty"`
}

// Config is the router's static partition map plus its tuning: the members,
// the logical indexes with their shard placement, probe cadence, hedging
// policy and request-deadline bounds.
type Config struct {
	// Listen is the router's bind address (the -listen flag overrides it).
	Listen string `json:"listen,omitempty"`
	// Members maps member names to their locations.
	Members map[string]MemberConfig `json:"members"`
	// Indexes maps logical index names to their partition maps.
	Indexes map[string]IndexMap `json:"indexes"`
	// ProbeInterval is the member health-probe period (zero:
	// DefaultProbeInterval).
	ProbeInterval httpapi.Duration `json:"probe_interval,omitempty"`
	// ProbeTimeout bounds one probe round-trip (zero: DefaultProbeTimeout).
	ProbeTimeout httpapi.Duration `json:"probe_timeout,omitempty"`
	// Hedge tunes hedged requests.
	Hedge HedgeConfig `json:"hedge,omitempty"`
	// MaxTimeout caps any client timeout_ms and backstops requests without
	// one (zero: httpapi.DefaultMaxTimeout), exactly as on a member daemon.
	MaxTimeout httpapi.Duration `json:"max_timeout,omitempty"`
	// DefaultTimeout is the deadline applied to requests naming no
	// timeout_ms (zero: MaxTimeout).
	DefaultTimeout httpapi.Duration `json:"default_timeout,omitempty"`
}

// Validate checks the partition map: every shard must name a known primary,
// known replicas distinct from it, a member-side index name, and at most one
// id-mapping form.
func (c Config) Validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("%w: no members", ErrBadConfig)
	}
	for name, mc := range c.Members {
		if name == "" {
			return fmt.Errorf("%w: member with empty name", ErrBadConfig)
		}
		if mc.URL == "" {
			return fmt.Errorf("%w: member %q: no url", ErrBadConfig, name)
		}
	}
	if len(c.Indexes) == 0 {
		return fmt.Errorf("%w: no indexes", ErrBadConfig)
	}
	for name, im := range c.Indexes {
		if len(im.Shards) == 0 {
			return fmt.Errorf("%w: index %q: no shards", ErrBadConfig, name)
		}
		for si, sc := range im.Shards {
			if sc.Index == "" {
				return fmt.Errorf("%w: index %q shard %d: no member index name", ErrBadConfig, name, si)
			}
			if _, ok := c.Members[sc.Primary]; !ok {
				return fmt.Errorf("%w: index %q shard %d: unknown primary %q", ErrBadConfig, name, si, sc.Primary)
			}
			seen := map[string]bool{sc.Primary: true}
			for _, rep := range sc.Replicas {
				if _, ok := c.Members[rep]; !ok {
					return fmt.Errorf("%w: index %q shard %d: unknown replica %q", ErrBadConfig, name, si, rep)
				}
				if seen[rep] {
					return fmt.Errorf("%w: index %q shard %d: member %q listed twice", ErrBadConfig, name, si, rep)
				}
				seen[rep] = true
			}
			if len(sc.IDs) > 0 && sc.IDBase != nil {
				return fmt.Errorf("%w: index %q shard %d: ids and id_base are mutually exclusive", ErrBadConfig, name, si)
			}
		}
	}
	return nil
}

// LoadConfig reads and validates a JSON partition map. Unknown fields are
// rejected, matching the member daemon's config strictness.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return cfg, nil
}

// probeInterval resolves the probe period.
func (c Config) probeInterval() time.Duration {
	if d := time.Duration(c.ProbeInterval); d > 0 {
		return d
	}
	return DefaultProbeInterval
}

// probeTimeout resolves the probe bound.
func (c Config) probeTimeout() time.Duration {
	if d := time.Duration(c.ProbeTimeout); d > 0 {
		return d
	}
	return DefaultProbeTimeout
}

// hedgeDefaults resolves the hedging knobs.
func (c Config) hedgeDefaults() (delay, minDelay, maxDelay time.Duration) {
	delay, minDelay, maxDelay = DefaultHedgeDelay, DefaultHedgeMinDelay, DefaultHedgeMaxDelay
	if d := time.Duration(c.Hedge.Delay); d > 0 {
		delay = d
	}
	if d := time.Duration(c.Hedge.MinDelay); d > 0 {
		minDelay = d
	}
	if d := time.Duration(c.Hedge.MaxDelay); d > 0 {
		maxDelay = d
	}
	return delay, minDelay, maxDelay
}

// handlerOptions resolves the router's request-deadline policy, shared with
// the member daemons' handler code.
func (c Config) handlerOptions() httpapi.HandlerOptions {
	return httpapi.HandlerOptions{
		MaxTimeout:     time.Duration(c.MaxTimeout),
		DefaultTimeout: time.Duration(c.DefaultTimeout),
	}
}
