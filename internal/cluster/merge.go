package cluster

import (
	"fmt"
	"sort"

	"p2h/internal/httpapi"
)

// mergeTopK merges per-shard top-k lists into the exact global top-k, in the
// canonical order internal/shard (and therefore the in-process Sharded
// index) uses: distance ascending, id ascending on ties. The per-shard lists
// already carry global ids.
func mergeTopK(lists [][]httpapi.ResultJSON, k int) []httpapi.ResultJSON {
	var n int
	for _, l := range lists {
		n += len(l)
	}
	merged := make([]httpapi.ResultJSON, 0, n)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// addStats accumulates b into a; work counters are plain sums, exactly as
// core.Stats.Add aggregates shards in process.
func addStats(a *httpapi.StatsJSON, b httpapi.StatsJSON) {
	a.IPCount += b.IPCount
	a.Candidates += b.Candidates
	a.NodesVisited += b.NodesVisited
	a.LeavesVisited += b.LeavesVisited
	a.PrunedNodes += b.PrunedNodes
	a.PrunedPoints += b.PrunedPoints
	a.BucketProbes += b.BucketProbes
	a.CollabIPs += b.CollabIPs
	a.FilterSkippedNodes += b.FilterSkippedNodes
	a.FilterSkippedPoints += b.FilterSkippedPoints
}

// translateIDs rewrites a shard's local result ids to global ids in place,
// per the shard's declared mapping: an explicit ids table, a constant base
// offset, or the identity when neither is declared.
func translateIDs(sc ShardConfig, res []httpapi.ResultJSON) error {
	switch {
	case len(sc.IDs) > 0:
		for i, r := range res {
			if r.ID < 0 || int(r.ID) >= len(sc.IDs) {
				return fmt.Errorf("cluster: shard %q returned id %d outside its %d-row id map (partition map out of date?)",
					sc.Index, r.ID, len(sc.IDs))
			}
			res[i].ID = sc.IDs[r.ID]
		}
	case sc.IDBase != nil:
		base := *sc.IDBase
		for i := range res {
			res[i].ID += base
		}
	}
	return nil
}
