// Package cluster is the distributed serving layer of p2hd: a scatter-gather
// router that lifts the in-process Sharded index's exact-merge semantics
// over HTTP onto a fleet of member daemons.
//
// A static partition map (Config) declares the cluster: the member daemons,
// and for each logical index the shards — which member index each shard is
// served as, which member is its primary, and which members hold replicas.
// The router fans every /search and /search_batch out to one member per
// shard, translates shard-local result ids back to global ids through the
// map, and merges the per-shard top-k lists in the canonical (Dist, ID)
// order internal/shard defines — so a cluster built from a shard.Plan
// partition answers byte-identically to a single-process Sharded index over
// the same data.
//
// Tail latency is defended with hedged requests: when a shard has a
// replica, a hedge is spawned to it after a delay derived from the primary
// member's observed p99, the first answer wins and the loser's request
// context is canceled. A transport failure falls back to the replica
// immediately, so a member crash mid-request costs one retry, not an error.
// A background prober tracks member /healthz states (respecting the
// daemon's draining/swapping 503s and degraded reporting) and routing
// prefers healthy members over degraded ones, avoiding draining and down
// members while any alternative exists.
//
// Replication rides the daemons' atomic snapshots: Ship streams a shard
// primary's /container snapshot to each replica's /restore endpoint, which
// hot-swaps it in without a restart. The router serves its own /healthz
// (member states), /metrics (fan-out latency, hedge and fallback counters,
// per-member request counts) and a /v1/indexes surface shaped like a member
// daemon's, so clients — including cmd/p2hserve's client mode — cannot tell
// a router from a single daemon.
package cluster
