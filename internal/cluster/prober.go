package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// proberLoop probes every member at the configured interval until stopped.
// The first round runs immediately so routing has real states as soon as the
// router accepts traffic.
func (rt *Router) proberLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	rt.probeRound()
	t := time.NewTicker(rt.cfg.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rt.probeRound()
		}
	}
}

// probeRound probes all members concurrently and installs their new states.
func (rt *Router) probeRound() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.probe(m)
		}(m)
	}
	wg.Wait()
}

// probe classifies one member from its /healthz answer:
//
//   - unreachable, or an unexpected status: Down
//   - 503 with status "draining" or "swapping": Draining (the daemon asked
//     load balancers to stop routing; in-flight work still completes)
//   - 200 reporting degraded: Degraded (serving approximate under an SLO
//     budget ceiling — usable, but a healthy replica is the better pick)
//   - 200 otherwise: Healthy
func (rt *Router) probe(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.probeTimeout())
	defer cancel()
	h, status, err := m.healthz(ctx)
	switch {
	case err != nil:
		m.setState(StateDown, err.Error())
	case status == http.StatusOK && h.Degraded:
		m.setState(StateDegraded, fmt.Sprintf("%d index(es) serving under a budget ceiling", h.DegradedIndexes))
	case status == http.StatusOK:
		m.setState(StateHealthy, "")
	case h.Status == "draining" || h.Status == "swapping":
		m.setState(StateDraining, h.Reason)
	default:
		m.setState(StateDown, fmt.Sprintf("healthz answered %d (%s)", status, h.Status))
	}
}
