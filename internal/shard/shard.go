// Package shard implements the scalable variant the paper's Section
// III-A(4) sketches: because Ball-Tree is a space partition method, a
// massive data set can be split into fine granularities and searched in
// parallel. The index holds one BC-Tree per shard; a query fans out over a
// bounded pool of goroutines and the per-shard top-k results merge into an
// exact global top-k.
//
// Shards are formed by recursive seed-grow splitting (the trees' own
// partition rule), so each shard covers a compact region and its tree prunes
// as well as a monolithic tree over that region would.
package shard

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"p2h/internal/attr"
	"p2h/internal/bctree"
	"p2h/internal/core"
	"p2h/internal/partition"
	"p2h/internal/vec"
)

// Config parameterizes the sharded index.
type Config struct {
	// Shards is the number of partitions (and the maximum query
	// parallelism). Zero selects GOMAXPROCS.
	Shards int
	// LeafSize is each shard tree's N0; zero selects the BC-Tree default.
	LeafSize int
	// Seed drives the shard partitioning and tree construction.
	Seed int64
	// Workers bounds the goroutines used per query. Zero selects
	// min(Shards, GOMAXPROCS); 1 makes queries sequential.
	Workers int
	// Quantize enables the 8-bit quantized leaf mirror on every shard tree;
	// see bctree.Config.Quantize.
	Quantize bool
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = c.Shards
		if p := runtime.GOMAXPROCS(0); c.Workers > p {
			c.Workers = p
		}
	}
	return c
}

// Index is a sharded BC-Tree.
type Index struct {
	trees   []*bctree.Tree
	ids     [][]int32 // shard-local row -> global data id
	n, d    int
	workers int

	// attrs is the global attribute store (row = global data id); each shard
	// tree holds the Subset over its own rows, so predicate pushdown runs
	// per shard and opts.Pred passes through shardOpts untranslated.
	attrs *attr.Store
}

// Plan returns the row partition Build would use for this data and config:
// one slice of row indices per shard, in shard order. It is deterministic in
// cfg.Seed and exactly the partition a Build with the same inputs produces,
// so out-of-process deployments (one tree per daemon) can mirror the
// in-process sharding — and its exact merge semantics — bit for bit.
func Plan(data *vec.Matrix, cfg Config) [][]int32 {
	if data == nil || data.N == 0 {
		panic("shard: empty data")
	}
	cfg = cfg.normalized()
	if cfg.Shards > data.N {
		cfg.Shards = data.N
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	all := make([]int32, data.N)
	for i := range all {
		all[i] = int32(i)
	}
	return splitParts(data, all, cfg.Shards, rng)
}

// Build partitions the lifted data into cfg.Shards compact regions and
// builds one BC-Tree per region.
func Build(data *vec.Matrix, cfg Config) *Index {
	parts := Plan(data, cfg)
	cfg = cfg.normalized()

	ix := &Index{n: data.N, d: data.D, workers: cfg.Workers}
	for si, part := range parts {
		sub := data.SubsetRows(part)
		ids := make([]int32, len(part))
		copy(ids, part)
		ix.ids = append(ix.ids, ids)
		ix.trees = append(ix.trees, bctree.Build(sub, bctree.Config{
			LeafSize: cfg.LeafSize,
			Seed:     cfg.Seed + int64(si) + 1,
			Quantize: cfg.Quantize,
		}))
	}
	return ix
}

// splitParts recursively halves the largest remaining part with the
// seed-grow rule until `want` parts exist.
func splitParts(data *vec.Matrix, ids []int32, want int, rng *rand.Rand) [][]int32 {
	parts := [][]int32{ids}
	for len(parts) < want {
		// Take the largest part. Linear scan: part counts are tiny.
		largest := 0
		for i := 1; i < len(parts); i++ {
			if len(parts[i]) > len(parts[largest]) {
				largest = i
			}
		}
		p := parts[largest]
		if len(p) < 2 {
			break // cannot split further
		}
		nl := partition.SeedGrow(data, p, rng)
		parts[largest] = p[:nl]
		parts = append(parts, p[nl:])
	}
	return parts
}

// N returns the number of indexed points.
func (ix *Index) N() int { return ix.n }

// Dim returns the lifted dimensionality.
func (ix *Index) Dim() int { return ix.d }

// Shards returns the number of shards.
func (ix *Index) Shards() int { return len(ix.trees) }

// Workers returns the per-query goroutine bound the index was built with.
func (ix *Index) Workers() int { return ix.workers }

// LeafSize returns the shard trees' maximum leaf size N0.
func (ix *Index) LeafSize() int { return ix.trees[0].LeafSize() }

// Quantized reports whether the shard trees carry the 8-bit leaf mirror.
func (ix *Index) Quantized() bool { return ix.trees[0].Quantized() }

// AttachAttrs binds a per-point attribute store (row i = global data id i):
// every shard tree gets the Subset over its own rows, in shard-local row
// order, so each tree's pushdown summaries speak its local id space and a
// global predicate needs no per-shard translation. Passing nil detaches.
func (ix *Index) AttachAttrs(st *attr.Store) error {
	if st == nil {
		for _, t := range ix.trees {
			t.AttachAttrs(nil)
		}
		ix.attrs = nil
		return nil
	}
	if st.N() != ix.n {
		return fmt.Errorf("shard: attribute store covers %d rows, index holds %d", st.N(), ix.n)
	}
	for si, t := range ix.trees {
		if err := t.AttachAttrs(st.Subset(ix.ids[si])); err != nil {
			return err
		}
	}
	ix.attrs = st
	return nil
}

// Attrs returns the attached global attribute store, nil when none.
func (ix *Index) Attrs() *attr.Store { return ix.attrs }

// IndexBytes reports the summed footprint of all shard trees plus the
// id maps (and, when attributes are attached, the global store the per-shard
// subsets were carved from).
func (ix *Index) IndexBytes() int64 {
	var total int64
	for si, t := range ix.trees {
		total += t.IndexBytes() + int64(len(ix.ids[si]))*4
	}
	if ix.attrs != nil {
		total += ix.attrs.MemBytes()
	}
	return total
}

// String summarizes the index for logs.
func (ix *Index) String() string {
	return fmt.Sprintf("shard{n=%d d=%d shards=%d workers=%d}", ix.n, ix.d, len(ix.trees), ix.workers)
}

// shardOpts derives shard si's view of the caller's options: the candidate
// budget is divided across shards in proportion to their sizes, and a caller
// filter (which speaks global ids) is wrapped to translate the shard tree's
// local ids.
func (ix *Index) shardOpts(opts core.SearchOptions, si int) core.SearchOptions {
	out := opts
	if opts.Budget > 0 {
		share := (opts.Budget*len(ix.ids[si]) + ix.n - 1) / ix.n
		if share < 1 {
			share = 1
		}
		out.Budget = share
	}
	if opts.Filter != nil {
		userFilter := opts.Filter
		localIDs := ix.ids[si]
		out.Filter = func(local int32) bool {
			return userFilter(localIDs[local])
		}
	}
	return out
}

// forEachShard runs fn(si) for every shard index over at most ix.workers
// goroutines. Exactly min(workers, shards) goroutines are created — never
// one per shard — so a search over many shards cannot flood the scheduler
// regardless of the shard count; the pool pulls shard indices from a shared
// counter.
func (ix *Index) forEachShard(fn func(si int)) {
	nw := ix.workers
	if nw > len(ix.trees) {
		nw = len(ix.trees)
	}
	if nw <= 1 {
		for si := range ix.trees {
			fn(si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= len(ix.trees) {
					return
				}
				fn(si)
			}
		}()
	}
	wg.Wait()
}

// Search fans the query out across the shards (over at most cfg.Workers
// goroutines), asks each shard tree for its local top-k, and merges exactly.
// The candidate budget is divided across shards in proportion to their
// sizes. Per-phase profiling is not supported concurrently; the Profile
// option is ignored.
func (ix *Index) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	opts.Profile = nil

	type shardOut struct {
		res []core.Result
		st  core.Stats
	}
	outs := make([]shardOut, len(ix.trees))

	ix.forEachShard(func(si int) {
		res, st := ix.trees[si].Search(q, ix.shardOpts(opts, si))
		// Map shard-local ids back to global ids.
		for i := range res {
			res[i].ID = ix.ids[si][res[i].ID]
		}
		outs[si] = shardOut{res: res, st: st}
	})

	var st core.Stats
	var merged []core.Result
	for _, o := range outs {
		st.Add(o.st)
		merged = append(merged, o.res...)
	}
	core.SortResults(merged)
	if len(merged) > opts.K {
		merged = merged[:opts.K]
	}
	return merged, st
}

// SearchBatch answers one top-k query per row of queries: every shard tree
// serves the whole batch through its shared batched traversal (falling back
// to per-query search for budgeted or filtered options), and the per-shard
// answers merge exactly per query. Shards are processed over at most
// cfg.Workers goroutines. Results are bitwise identical to per-query Search
// calls. The Profile option is ignored, as in Search.
func (ix *Index) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	opts = opts.Normalized()
	opts.Profile = nil
	nq := queries.N
	out := make([][]core.Result, nq)
	stats := make([]core.Stats, nq)
	if nq == 0 {
		return out, stats
	}

	shardRes := make([][][]core.Result, len(ix.trees))
	shardStats := make([][]core.Stats, len(ix.trees))
	ix.forEachShard(func(si int) {
		res, sts := ix.trees[si].SearchBatch(queries, ix.shardOpts(opts, si))
		ids := ix.ids[si]
		for qi := range res {
			for i := range res[qi] {
				res[qi][i].ID = ids[res[qi][i].ID]
			}
		}
		shardRes[si], shardStats[si] = res, sts
	})

	for qi := 0; qi < nq; qi++ {
		var merged []core.Result
		for si := range ix.trees {
			stats[qi].Add(shardStats[si][qi])
			merged = append(merged, shardRes[si][qi]...)
		}
		core.SortResults(merged)
		if len(merged) > opts.K {
			merged = merged[:opts.K]
		}
		out[qi] = merged
	}
	return out, stats
}
