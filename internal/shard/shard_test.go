package shard

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func setup(t *testing.T, n int, seed int64) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 8}, n, seed)
	raw = dataset.Dedup(raw)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 10, seed+1)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(0, 3), Config{})
}

func TestShardsPartitionData(t *testing.T) {
	data, _ := setup(t, 1000, 1)
	ix := Build(data, Config{Shards: 7, Seed: 2})
	if ix.Shards() != 7 {
		t.Fatalf("shards %d", ix.Shards())
	}
	seen := make([]bool, data.N)
	total := 0
	for _, ids := range ix.ids {
		total += len(ids)
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d in two shards", id)
			}
			seen[id] = true
		}
	}
	if total != data.N {
		t.Fatalf("shards cover %d of %d", total, data.N)
	}
}

func TestSearchExactMatchesLinearScan(t *testing.T) {
	data, queries := setup(t, 900, 3)
	scan := linearscan.New(data)
	for _, shards := range []int{1, 2, 5, 16} {
		ix := Build(data, Config{Shards: shards, LeafSize: 25, Seed: 4})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			got, _ := ix.Search(q, core.SearchOptions{K: 7})
			want, _ := scan.Search(q, core.SearchOptions{K: 7})
			if len(got) != len(want) {
				t.Fatalf("shards=%d query %d: %d results, want %d", shards, qi, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
					t.Fatalf("shards=%d query %d rank %d: %v != %v", shards, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchSequentialWorkerMatchesParallel(t *testing.T) {
	data, queries := setup(t, 800, 5)
	par := Build(data, Config{Shards: 8, Seed: 6})
	seq := Build(data, Config{Shards: 8, Seed: 6, Workers: 1})
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		a, _ := par.Search(q, core.SearchOptions{K: 5})
		b, _ := seq.Search(q, core.SearchOptions{K: 5})
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: parallel %v vs sequential %v", qi, i, a[i], b[i])
			}
		}
	}
}

func TestSearchBudgetSharedAcrossShards(t *testing.T) {
	data, queries := setup(t, 1200, 7)
	ix := Build(data, Config{Shards: 6, Seed: 8})
	for _, budget := range []int{6, 60, 600} {
		for qi := 0; qi < queries.N; qi++ {
			_, st := ix.Search(queries.Row(qi), core.SearchOptions{K: 5, Budget: budget})
			// Each shard's ceil share can add at most one extra candidate.
			if st.Candidates > int64(budget+ix.Shards()) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
		}
	}
}

func TestMoreShardsThanPoints(t *testing.T) {
	rows := [][]float32{{1, 0}, {0, 1}, {1, 1}}
	data := vec.FromRows(rows).AppendOnes()
	ix := Build(data, Config{Shards: 64, Seed: 1})
	if ix.Shards() > data.N {
		t.Fatalf("shards %d > n %d", ix.Shards(), data.N)
	}
	res, _ := ix.Search([]float32{1, 0, -1}, core.SearchOptions{K: 3})
	if len(res) != 3 {
		t.Fatalf("want all 3 points, got %d", len(res))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	data, queries := setup(t, 500, 9)
	a := Build(data, Config{Shards: 4, Seed: 10})
	b := Build(data, Config{Shards: 4, Seed: 10})
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		ra, _ := a.Search(q, core.SearchOptions{K: 5})
		rb, _ := b.Search(q, core.SearchOptions{K: 5})
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("same seed, different results at %d", i)
			}
		}
	}
}

// TestSearchBoundedConcurrency pins the fan-out's goroutine discipline:
// exactly min(Workers, Shards) goroutines process shards — never one per
// shard — so a search over many shards cannot flood the scheduler. The
// filter samples the process goroutine count mid-search; the old
// spawn-then-gate pattern (one goroutine per shard parked on a semaphore)
// fails this even though its semaphore bounded execution.
func TestSearchBoundedConcurrency(t *testing.T) {
	data, queries := setup(t, 800, 13)
	const workers = 2
	ix := Build(data, Config{Shards: 16, Seed: 14, Workers: workers})

	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	observe := func(int32) bool {
		g := int64(runtime.NumGoroutine())
		for {
			p := peak.Load()
			if g <= p || peak.CompareAndSwap(p, g) {
				break
			}
		}
		return true
	}
	for qi := 0; qi < queries.N; qi++ {
		ix.Search(queries.Row(qi), core.SearchOptions{K: 3, Filter: observe})
	}
	if extra := peak.Load() - int64(baseline); extra > workers {
		t.Fatalf("search ran %d extra goroutines, Workers=%d allows at most %d", extra, workers, workers)
	}
}

// TestSearchBatchMatchesSequential checks the sharded batched path returns
// bitwise-identical results to per-query Search across exact, budgeted,
// filtered and k>n options.
func TestSearchBatchMatchesSequential(t *testing.T) {
	data, queries := setup(t, 1100, 15)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		vec.Normalize(q[:len(q)-1])
	}
	ix := Build(data, Config{Shards: 5, LeafSize: 30, Seed: 16})
	for _, tc := range []struct {
		name string
		opts core.SearchOptions
	}{
		{"exact", core.SearchOptions{K: 7}},
		{"kBig", core.SearchOptions{K: data.N + 3}},
		{"budget", core.SearchOptions{K: 7, Budget: 90}},
		{"filtered", core.SearchOptions{K: 7, Filter: func(id int32) bool { return id%4 != 0 }}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch, _ := ix.SearchBatch(queries, tc.opts)
			for qi := 0; qi < queries.N; qi++ {
				want, _ := ix.Search(queries.Row(qi), tc.opts)
				if len(batch[qi]) != len(want) {
					t.Fatalf("query %d: %d results, want %d", qi, len(batch[qi]), len(want))
				}
				for i := range want {
					if batch[qi][i] != want[i] {
						t.Fatalf("query %d rank %d: %+v != %+v", qi, i, batch[qi][i], want[i])
					}
				}
			}
		})
	}
}

func TestIndexBytesSumsShards(t *testing.T) {
	data, _ := setup(t, 600, 11)
	ix := Build(data, Config{Shards: 3, Seed: 12})
	if ix.IndexBytes() <= 0 {
		t.Fatal("bytes must be positive")
	}
	var manual int64
	for si, tr := range ix.trees {
		manual += tr.IndexBytes() + int64(len(ix.ids[si]))*4
	}
	if ix.IndexBytes() != manual {
		t.Fatalf("accounting %d != %d", ix.IndexBytes(), manual)
	}
}
