package shard

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/core"
	"p2h/internal/vec"
)

func serialTestMatrix(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data := serialTestMatrix(400, 7, 1)
	orig := Build(data, Config{Shards: 5, LeafSize: 20, Seed: 3, Workers: 2})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.N() != orig.N() || loaded.Dim() != orig.Dim() ||
		loaded.Shards() != orig.Shards() || loaded.Workers() != orig.Workers() ||
		loaded.LeafSize() != orig.LeafSize() {
		t.Fatalf("shape mismatch: %v vs %v", loaded, orig)
	}

	rng := rand.New(rand.NewSource(99))
	for qi := 0; qi < 20; qi++ {
		q := make([]float32, 7)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		for _, opts := range []core.SearchOptions{
			{K: 5},
			{K: 3, Budget: 60},
		} {
			wantRes, _ := orig.Search(q, opts)
			gotRes, _ := loaded.Search(q, opts)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("query %d opts %+v: results diverge:\n got %v\nwant %v", qi, opts, gotRes, wantRes)
			}
		}
	}

	// Determinism: a second Save of the loaded index is byte-identical.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save -> Load -> Save is not byte-identical")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	data := serialTestMatrix(150, 4, 2)
	orig := Build(data, Config{Shards: 3, LeafSize: 16, Seed: 1, Workers: 1})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()

	for _, cut := range []int{0, 4, len(magic), 20, len(good) / 3, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}

	bad := append([]byte("NOTSHARD"), good[len(magic):]...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// An absurd declared size must fail the bound check, not reach a
	// giant allocation (n is the first header field).
	bad = append([]byte(nil), good...)
	for i := 0; i < 4; i++ {
		bad[len(magic)+i] = 0x7f
	}
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("absurd n: err = %v, want ErrCorrupt", err)
	}

	// Duplicate id across shards: make the first shard's first id equal its
	// second id.
	bad = append([]byte(nil), good...)
	idsOff := len(magic) + 4*4 + 4 // header + first shard's id count
	copy(bad[idsOff:idsOff+4], bad[idsOff+4:idsOff+8])
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("duplicate id: err = %v, want ErrCorrupt", err)
	}
}
