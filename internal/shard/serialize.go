package shard

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"p2h/internal/bctree"
	"p2h/internal/binio"
)

// Serialization format: a header with the global shape, then one
// length-prefixed record per shard (the id map plus the shard tree's own
// serialized payload). The per-shard byte lengths let Load slice the stream
// without parsing tree internals, so shard trees decode in parallel — the
// load-time mirror of the index's query-time fan-out.
var magic = []byte("P2HSH001")

// maxSerialShardBytes bounds one shard payload and maxSerialElems the
// declared global size against corrupt headers allocating absurd buffers: a
// bad length fails as corrupt instead of reaching a make() that would panic.
const (
	maxSerialShardBytes = 1 << 30
	maxSerialElems      = 1 << 31 // 8 GiB of float32 — beyond any real index
)

// Save writes the index to w, self-contained so Load can restore it without
// the original data matrix.
func (ix *Index) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Bytes(magic)
	bw.I32(int32(ix.n))
	bw.I32(int32(ix.d))
	bw.I32(int32(len(ix.trees)))
	bw.I32(int32(ix.workers))
	var payload bytes.Buffer
	for si, t := range ix.trees {
		bw.I32(int32(len(ix.ids[si])))
		bw.I32s(ix.ids[si])
		payload.Reset()
		if err := t.Save(&payload); err != nil {
			return err
		}
		bw.I64(int64(payload.Len()))
		bw.Bytes(payload.Bytes())
	}
	return bw.Flush()
}

// Load restores an index written by Save. The shard payloads are read
// sequentially (their lengths come from the stream) and decoded in parallel.
// Corrupt input yields an error wrapping binio.ErrCorrupt.
func Load(r io.Reader) (*Index, error) {
	br := binio.NewReader(r)
	br.Expect(magic)
	n := int(br.I32())
	d := int(br.I32())
	shards := int(br.I32())
	workers := int(br.I32())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if n <= 0 || d <= 0 || shards < 1 || shards > n || workers < 1 {
		br.Fail("bad header: n=%d d=%d shards=%d workers=%d", n, d, shards, workers)
		return nil, br.Err()
	}
	if int64(n)*int64(d) > maxSerialElems {
		br.Fail("declared size %dx%d exceeds the serialization bound", n, d)
		return nil, br.Err()
	}

	// Allocations below grow with bytes actually read, never with the
	// declared counts alone: a corrupt header claiming 2^31 points or shards
	// must fail at the stream's real end, not reach a multi-GiB make().
	// payloads is appended per record, and the duplicate-id check waits until
	// every id has been read from the stream (bounding n by the input size);
	// the loop itself only range-checks.
	ix := &Index{n: n, d: d, workers: workers}
	var payloads [][]byte
	total := 0
	for si := 0; si < shards; si++ {
		nids := int(br.I32())
		if br.Err() != nil {
			return nil, br.Err()
		}
		if nids < 1 || nids > n {
			br.Fail("shard %d: bad id count %d", si, nids)
			return nil, br.Err()
		}
		ids := br.I32s(nids)
		if br.Err() != nil {
			return nil, br.Err()
		}
		for _, id := range ids {
			if id < 0 || int(id) >= n {
				br.Fail("shard %d: id %d out of range", si, id)
				return nil, br.Err()
			}
		}
		total += nids
		ix.ids = append(ix.ids, ids)

		pn := br.I64()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if pn <= 0 || pn > maxSerialShardBytes {
			br.Fail("shard %d: bad payload length %d", si, pn)
			return nil, br.Err()
		}
		payloads = append(payloads, br.Raw(int(pn)))
		if br.Err() != nil {
			return nil, br.Err()
		}
	}
	if total != n {
		br.Fail("shards cover %d of %d points", total, n)
		return nil, br.Err()
	}
	seen := make([]bool, n)
	for si, ids := range ix.ids {
		for _, id := range ids {
			if seen[id] {
				br.Fail("shard %d: id %d appears twice", si, id)
				return nil, br.Err()
			}
			seen[id] = true
		}
	}

	// Decode the shard trees in parallel over a bounded pool — like the
	// query fan-out, exactly min(GOMAXPROCS, shards) goroutines pull shard
	// indices from a shared counter, never one goroutine per shard, so a
	// container declaring thousands of shards cannot flood the scheduler.
	ix.trees = make([]*bctree.Tree, shards)
	errs := make([]error, shards)
	decode := func(si int) {
		t, err := bctree.Load(bytes.NewReader(payloads[si]))
		if err != nil {
			errs[si] = fmt.Errorf("shard %d: %w", si, err)
			return
		}
		if t.N() != len(ix.ids[si]) || t.Dim() != d {
			errs[si] = fmt.Errorf("shard %d: %w: tree shape %dx%d, want %dx%d",
				si, binio.ErrCorrupt, t.N(), t.Dim(), len(ix.ids[si]), d)
			return
		}
		ix.trees[si] = t
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > shards {
		nw = shards
	}
	if nw <= 1 {
		for si := 0; si < shards; si++ {
			decode(si)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= shards {
						return
					}
					decode(si)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}
