// Package dynamic makes the static BC-Tree mutable: inserts accumulate in a
// buffer that queries scan exhaustively, deletes become tombstones filtered
// out of tree results, and the tree is rebuilt from the live set once the
// buffer and the tombstones together exceed a configurable fraction of the
// indexed points. Point handles are stable across rebuilds.
//
// The paper's trees are static (built once over a fixed data set); this
// wrapper is the standard "static structure + delta" construction that turns
// any bulk-built index into an updatable one while keeping queries exact.
package dynamic

import (
	"fmt"

	"p2h/internal/attr"
	"p2h/internal/bctree"
	"p2h/internal/core"
	"p2h/internal/vec"
)

// Config parameterizes the dynamic index.
type Config struct {
	// LeafSize is the underlying BC-Tree's N0; zero selects the default.
	LeafSize int
	// Seed drives tree construction.
	Seed int64
	// RebuildFraction triggers a rebuild when (buffer size + tombstones)
	// exceeds this fraction of the live set. Zero selects 0.25.
	RebuildFraction float64
	// CompactFraction is the background-compaction trigger used instead of
	// RebuildFraction when SetBackgroundCompaction is on. Zero inherits
	// RebuildFraction; it is kept distinct so a serving deployment can defer
	// inline rebuilds (large RebuildFraction) while compacting in the
	// background at a tighter threshold.
	CompactFraction float64
}

func (c Config) normalized() Config {
	if c.RebuildFraction <= 0 {
		c.RebuildFraction = 0.25
	}
	return c
}

// Index is a mutable P2HNNS index over lifted vectors. It is not safe for
// concurrent mutation; concurrent readers are fine between mutations.
type Index struct {
	cfg Config
	dim int // lifted dimensionality

	rows  *vec.Matrix // all vectors ever inserted; row index = stable handle
	alive []bool
	live  int // number of alive handles

	tree    *bctree.Tree // over a snapshot of handles; nil when empty
	treeIDs []int32      // tree-local id -> handle
	treeDel int          // tombstones inside the tree snapshot
	buffer  []int32      // handles inserted since the last rebuild

	// attrs holds one attribute payload per handle, aligned with rows; nil
	// until the first attributed insert, then padded with empty payloads so
	// indexing stays direct. Predicates evaluate per handle at query time —
	// the mutable delta has no per-node summaries to push down into, which
	// keeps inserts O(1); the static kinds own the pushdown path.
	attrs []attr.Point

	// background suppresses inline rebuilds; a serving engine folds the
	// delta off-thread instead (see compact.go).
	background bool
}

// New creates a dynamic index for lifted vectors of dimension dim
// (raw dimension + 1). Seed an initial bulk load with Insert or InsertAll.
func New(dim int, cfg Config) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("dynamic: invalid dimension %d", dim))
	}
	return &Index{cfg: cfg.normalized(), dim: dim, rows: vec.NewMatrix(0, dim)}
}

// NewFromMatrix bulk-loads the rows of data (lifted vectors); handles are
// the row indices.
func NewFromMatrix(data *vec.Matrix, cfg Config) *Index {
	ix := New(data.D, cfg)
	for i := 0; i < data.N; i++ {
		ix.Insert(data.Row(i))
	}
	ix.Rebuild()
	return ix
}

// N returns the number of live points.
func (ix *Index) N() int { return ix.live }

// Configuration returns the (normalized) construction configuration.
func (ix *Index) Configuration() Config { return ix.cfg }

// Dim returns the lifted dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// BufferLen returns the number of points pending outside the tree.
func (ix *Index) BufferLen() int { return len(ix.buffer) }

// Pending returns the delta queries pay for beyond the tree: buffered
// inserts (scanned exhaustively) plus tree tombstones (filtered during
// traversal). It is what the rebuild and compaction triggers measure.
func (ix *Index) Pending() int { return len(ix.buffer) + ix.treeDel }

// Insert adds a lifted vector and returns its stable handle.
func (ix *Index) Insert(x []float32) int32 {
	handle := ix.insertRow(x)
	if ix.attrs != nil {
		ix.attrs = append(ix.attrs, attr.Point{})
	}
	ix.maybeRebuild()
	return handle
}

// InsertWithAttrs adds a lifted vector with an attribute payload and returns
// its stable handle. The index keeps the payload (callers must not mutate
// it); predicate searches evaluate it per handle.
func (ix *Index) InsertWithAttrs(x []float32, at attr.Point) int32 {
	ix.ensureAttrs() // pad earlier unattributed rows before this one lands
	handle := ix.insertRow(x)
	ix.attrs = append(ix.attrs, at)
	ix.maybeRebuild()
	return handle
}

func (ix *Index) insertRow(x []float32) int32 {
	if len(x) != ix.dim {
		panic(fmt.Sprintf("dynamic: vector dimension %d != %d", len(x), ix.dim))
	}
	handle := int32(ix.rows.N)
	ix.rows.Data = append(ix.rows.Data, x...)
	ix.rows.N++
	ix.alive = append(ix.alive, true)
	ix.live++
	ix.buffer = append(ix.buffer, handle)
	return handle
}

// ensureAttrs pads the attribute column with empty payloads up to the current
// row count, so it stays handle-indexed.
func (ix *Index) ensureAttrs() {
	for len(ix.attrs) < ix.rows.N {
		ix.attrs = append(ix.attrs, attr.Point{})
	}
}

// HasAttrs reports whether any handle ever carried an attribute payload.
func (ix *Index) HasAttrs() bool { return ix.attrs != nil }

// AttrAt returns handle's attribute payload (the zero Point when none was
// recorded). The handle need not be live; dead handles report what they held.
func (ix *Index) AttrAt(handle int32) attr.Point {
	if int(handle) < len(ix.attrs) {
		return ix.attrs[handle]
	}
	return attr.Point{}
}

// SetAttrs replaces the whole attribute column: points[i] becomes handle i's
// payload. len(points) must equal Handles(); pass nil to detach. Used by
// bulk loads and container restores.
func (ix *Index) SetAttrs(points []attr.Point) error {
	if points == nil {
		ix.attrs = nil
		return nil
	}
	if len(points) != ix.rows.N {
		return fmt.Errorf("dynamic: attribute column covers %d handles, index has issued %d",
			len(points), ix.rows.N)
	}
	ix.attrs = points
	return nil
}

// Delete removes a handle. It reports whether the handle was live.
func (ix *Index) Delete(handle int32) bool {
	if handle < 0 || int(handle) >= len(ix.alive) || !ix.alive[handle] {
		return false
	}
	ix.alive[handle] = false
	ix.live--
	// A tombstone inside the tree degrades queries; one in the buffer is
	// removed immediately.
	inBuffer := false
	for i, h := range ix.buffer {
		if h == handle {
			ix.buffer = append(ix.buffer[:i], ix.buffer[i+1:]...)
			inBuffer = true
			break
		}
	}
	if !inBuffer {
		ix.treeDel++
	}
	ix.maybeRebuild()
	return true
}

// Vector returns the stored vector of a live handle (aliasing internal
// storage) and whether the handle is live.
func (ix *Index) Vector(handle int32) ([]float32, bool) {
	if handle < 0 || int(handle) >= len(ix.alive) || !ix.alive[handle] {
		return nil, false
	}
	return ix.rows.Row(int(handle)), true
}

// maybeRebuild rebuilds the tree when the delta (buffer + tombstones)
// outgrows the configured fraction of the live set.
func (ix *Index) maybeRebuild() {
	if ix.background {
		return
	}
	treeLive := 0
	if ix.tree != nil {
		treeLive = len(ix.treeIDs) - ix.treeDel
	}
	delta := len(ix.buffer) + ix.treeDel
	if delta == 0 {
		return
	}
	// Always fold a buffer into a first tree once it is worth building.
	if treeLive == 0 && len(ix.buffer) >= 2*bctree.DefaultLeafSize {
		ix.Rebuild()
		return
	}
	if treeLive > 0 && float64(delta) > ix.cfg.RebuildFraction*float64(ix.live) {
		ix.Rebuild()
	}
}

// Rebuild folds the buffer and drops tombstones by rebuilding the tree over
// the live set. It is also safe to call explicitly (e.g. after a bulk load).
func (ix *Index) Rebuild() {
	if ix.live == 0 {
		ix.tree = nil
		ix.treeIDs = nil
		ix.treeDel = 0
		ix.buffer = nil
		return
	}
	ids := make([]int32, 0, ix.live)
	for h, ok := range ix.alive {
		if ok {
			ids = append(ids, int32(h))
		}
	}
	sub := ix.rows.SubsetRows(ids)
	ix.tree = bctree.Build(sub, bctree.Config{LeafSize: ix.cfg.LeafSize, Seed: ix.cfg.Seed})
	ix.treeIDs = ids
	ix.treeDel = 0
	ix.buffer = nil
}

// Search answers a top-k P2HNNS query over the live set: the tree snapshot
// (with tombstones filtered) plus an exhaustive pass over the buffer.
// Results carry stable handles. opts.Filter composes with the liveness
// filter and receives handles. opts.Pred is evaluated per handle against the
// stored attribute payloads — before the user filter, matching the static
// kinds' acceptance order — and stripped from the options the snapshot tree
// sees (the tree's rows are transient, its summaries would be stale after
// one rebuild; the liveness closure already forces the per-row path).
func (ix *Index) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)

	userFilter := opts.Filter
	pred := opts.Pred
	opts.Filter, opts.Pred = nil, nil
	accepts := func(handle int32) bool {
		if !ix.alive[handle] {
			return false
		}
		if pred != nil && !pred.Matches(ix.AttrAt(handle)) {
			return false
		}
		return userFilter == nil || userFilter(handle)
	}

	if ix.tree != nil {
		treeOpts := opts
		treeIDs := ix.treeIDs
		treeOpts.Filter = func(local int32) bool { return accepts(treeIDs[local]) }
		res, s := ix.tree.Search(q, treeOpts)
		st.Add(s)
		for _, r := range res {
			tk.Push(treeIDs[r.ID], r.Dist)
		}
	}

	for _, handle := range ix.buffer {
		if !opts.BudgetLeft(st.Candidates) {
			break
		}
		if !accepts(handle) {
			continue
		}
		d := vec.AbsDot(q, ix.rows.Row(int(handle)))
		st.IPCount++
		st.Candidates++
		tk.Push(handle, d)
	}
	return tk.Results(), st
}

// IndexBytes reports the tree footprint plus the delta bookkeeping.
func (ix *Index) IndexBytes() int64 {
	var total int64
	if ix.tree != nil {
		total += ix.tree.IndexBytes() + int64(len(ix.treeIDs))*4
	}
	total += int64(len(ix.buffer))*4 + int64(len(ix.alive))
	return total
}

// String summarizes the index for logs.
func (ix *Index) String() string {
	return fmt.Sprintf("dynamic{live=%d buffer=%d tombstones=%d dim=%d}",
		ix.live, len(ix.buffer), ix.treeDel, ix.dim)
}
