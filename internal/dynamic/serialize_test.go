package dynamic

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/core"
	"p2h/internal/vec"
)

// buildMutated constructs a dynamic index holding every interesting state at
// once: a tree snapshot, tombstones inside it, and a pending insert buffer.
func buildMutated(t *testing.T) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := vec.NewMatrix(300, 6)
	for i := range data.Data {
		data.Data[i] = float32(rng.NormFloat64())
	}
	ix := NewFromMatrix(data, Config{LeafSize: 25, Seed: 3})
	// Tombstones inside the snapshot (too few to trigger a rebuild).
	for _, h := range []int32{5, 17, 123} {
		if !ix.Delete(h) {
			t.Fatalf("Delete(%d) = false", h)
		}
	}
	// Buffered inserts on top of the snapshot.
	for i := 0; i < 10; i++ {
		row := make([]float32, 6)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		ix.Insert(row)
	}
	if ix.tree == nil || ix.treeDel == 0 || len(ix.buffer) == 0 {
		t.Fatalf("fixture not in snapshot+delta state: tree=%v del=%d buf=%d",
			ix.tree != nil, ix.treeDel, len(ix.buffer))
	}
	return ix
}

func randQuery(rng *rand.Rand, d int) []float32 {
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	return q
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildMutated(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.N() != orig.N() || loaded.Dim() != orig.Dim() ||
		loaded.BufferLen() != orig.BufferLen() || loaded.treeDel != orig.treeDel ||
		loaded.Configuration() != orig.Configuration() {
		t.Fatalf("state mismatch: %v vs %v", loaded, orig)
	}

	rng := rand.New(rand.NewSource(42))
	for qi := 0; qi < 20; qi++ {
		q := randQuery(rng, 6)
		for _, opts := range []core.SearchOptions{
			{K: 5},
			{K: 4, Budget: 50},
		} {
			wantRes, _ := orig.Search(q, opts)
			gotRes, _ := loaded.Search(q, opts)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("query %d opts %+v: results diverge:\n got %v\nwant %v", qi, opts, gotRes, wantRes)
			}
		}
	}

	// The restored index keeps mutating where the saved one left off:
	// parallel mutations stay equivalent.
	row := randQuery(rng, 6)
	if h1, h2 := orig.Insert(row), loaded.Insert(row); h1 != h2 {
		t.Fatalf("post-load Insert handles diverge: %d vs %d", h1, h2)
	}
	if d1, d2 := orig.Delete(30), loaded.Delete(30); d1 != d2 {
		t.Fatalf("post-load Delete diverges: %v vs %v", d1, d2)
	}
	q := randQuery(rng, 6)
	wantRes, _ := orig.Search(q, core.SearchOptions{K: 5})
	gotRes, _ := loaded.Search(q, core.SearchOptions{K: 5})
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("post-mutation results diverge:\n got %v\nwant %v", gotRes, wantRes)
	}

	// Determinism: a second Save of the loaded index is byte-identical to a
	// second Save of the original.
	var bufA, bufB bytes.Buffer
	if err := orig.Save(&bufA); err != nil {
		t.Fatalf("re-Save orig: %v", err)
	}
	if err := loaded.Save(&bufB); err != nil {
		t.Fatalf("re-Save loaded: %v", err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("Save after identical mutations is not byte-identical")
	}
}

func TestSaveLoadEmptyAndBufferOnly(t *testing.T) {
	// Empty index (never inserted).
	empty := New(4, Config{})
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatalf("Save empty: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if loaded.N() != 0 || loaded.Dim() != 4 || loaded.tree != nil {
		t.Fatalf("empty round-trip: %v", loaded)
	}
	if h := loaded.Insert([]float32{1, 2, 3, 4}); h != 0 {
		t.Fatalf("first handle after empty round-trip = %d", h)
	}

	// Buffer-only index (too small for a first tree).
	small := New(3, Config{})
	for i := 0; i < 5; i++ {
		small.Insert([]float32{float32(i), 1, 2})
	}
	buf.Reset()
	if err := small.Save(&buf); err != nil {
		t.Fatalf("Save buffer-only: %v", err)
	}
	loaded, err = Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load buffer-only: %v", err)
	}
	wantRes, _ := small.Search([]float32{1, 0, 0}, core.SearchOptions{K: 3})
	gotRes, _ := loaded.Search([]float32{1, 0, 0}, core.SearchOptions{K: 3})
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("buffer-only results diverge:\n got %v\nwant %v", gotRes, wantRes)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	orig := buildMutated(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()

	for _, cut := range []int{0, 4, len(magic), 25, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}

	bad := append([]byte("NOTDYNMC"), good[len(magic):]...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// An absurd declared size must fail the bound check, not reach a
	// giant allocation. rows sits after magic + leafSize(4) + seed(8) +
	// rebuild(8) + dim(4).
	bad = append([]byte(nil), good...)
	rowsOff := len(magic) + 4 + 8 + 8 + 4
	for i := 0; i < 4; i++ {
		bad[rowsOff+i] = 0x7f
	}
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("absurd rows: err = %v, want ErrCorrupt", err)
	}

	// A liveness byte outside 0/1.
	bad = append([]byte(nil), good...)
	aliveOff := len(magic) + 4 + 8 + 8 + 4 + 4 + orig.rows.N*orig.dim*4
	bad[aliveOff] = 7
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("bad liveness byte: err = %v, want ErrCorrupt", err)
	}
}
