package dynamic

import (
	"bytes"
	"math/rand"
	"testing"

	"p2h/internal/core"
)

func randLifted(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = rng.Float32()*2 - 1
	}
	v[dim-1] = 1 // lifted coordinate
	return v
}

func searchHandles(t *testing.T, ix *Index, q []float32, k int) []int32 {
	t.Helper()
	res, _ := ix.Search(q, core.SearchOptions{K: k})
	out := make([]int32, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

// TestCompactEquivalence drives identical random mutation streams through a
// synchronous index and a background-compacted one, interleaving compaction
// cycles at arbitrary points, and asserts exact search equivalence
// throughout: tree shape may differ, result sets may not (PR-3 canonical
// ordering makes exact top-k traversal-order-independent).
func TestCompactEquivalence(t *testing.T) {
	const dim, nops = 6, 1200
	rng := rand.New(rand.NewSource(11))
	sync := New(dim, Config{Seed: 1})
	bg := New(dim, Config{Seed: 1})
	bg.SetBackgroundCompaction(true)

	var handles []int32
	for i := 0; i < nops; i++ {
		if len(handles) == 0 || rng.Intn(4) > 0 {
			v := randLifted(rng, dim)
			h1 := sync.Insert(v)
			h2 := bg.Insert(v)
			if h1 != h2 {
				t.Fatalf("op %d: handles diverged %d vs %d", i, h1, h2)
			}
			handles = append(handles, h1)
		} else {
			j := rng.Intn(len(handles))
			h := handles[j]
			ok1 := sync.Delete(h)
			ok2 := bg.Delete(h)
			if ok1 != ok2 {
				t.Fatalf("op %d: delete(%d) diverged %v vs %v", i, h, ok1, ok2)
			}
			handles = append(handles[:j], handles[j+1:]...)
		}
		if bg.CompactionNeeded() && rng.Intn(2) == 0 {
			if !bg.Compact() {
				t.Fatalf("op %d: CompactionNeeded but Compact was a no-op", i)
			}
		}
		if i%100 == 99 {
			if sync.N() != bg.N() || sync.Handles() != bg.Handles() {
				t.Fatalf("op %d: N %d/%d handles %d/%d", i, sync.N(), bg.N(), sync.Handles(), bg.Handles())
			}
			q := randLifted(rng, dim)
			a := searchHandles(t, sync, q, 10)
			b := searchHandles(t, bg, q, 10)
			if len(a) != len(b) {
				t.Fatalf("op %d: result sizes %d vs %d", i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("op %d: result %d: %d vs %d", i, j, a[j], b[j])
				}
			}
		}
	}

	// After a canonicalizing Rebuild both indexes serialize identically:
	// same rows, same liveness, same live set, same (deterministic) tree.
	sync.Rebuild()
	bg.Rebuild()
	var sb, bb bytes.Buffer
	if err := sync.Save(&sb); err != nil {
		t.Fatal(err)
	}
	if err := bg.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
		t.Fatal("Save bytes differ after canonicalizing Rebuild")
	}
}

// TestCompactReconciliation races mutations into the capture/build/install
// window by hand and checks the install-time bookkeeping.
func TestCompactReconciliation(t *testing.T) {
	const dim = 4
	rng := rand.New(rand.NewSource(12))
	ix := New(dim, Config{Seed: 2})
	ix.SetBackgroundCompaction(true)
	for i := 0; i < 500; i++ {
		ix.Insert(randLifted(rng, dim))
	}

	c := ix.BeginCompaction()
	if c == nil {
		t.Fatal("BeginCompaction returned nil with a 500-point buffer")
	}

	// Mutations landing between capture and install: new inserts, a delete
	// of a captured handle, a delete of a handle inserted after capture.
	var late []int32
	for i := 0; i < 50; i++ {
		late = append(late, ix.Insert(randLifted(rng, dim)))
	}
	if !ix.Delete(10) {
		t.Fatal("delete of captured handle failed")
	}
	if !ix.Delete(late[7]) {
		t.Fatal("delete of late handle failed")
	}

	c.Build(ix.cfg)
	ix.Install(c)

	if ix.tree == nil || len(ix.treeIDs) != 500 {
		t.Fatalf("tree over %d ids, want the 500 captured", len(ix.treeIDs))
	}
	if ix.treeDel != 1 {
		t.Fatalf("treeDel = %d, want 1 (handle 10)", ix.treeDel)
	}
	if len(ix.buffer) != 49 {
		t.Fatalf("buffer = %d, want 49 live late inserts", len(ix.buffer))
	}
	for _, h := range ix.buffer {
		if h < 500 {
			t.Fatalf("buffer holds captured handle %d", h)
		}
		if h == late[7] {
			t.Fatal("buffer holds deleted late handle")
		}
	}
	if ix.N() != 548 {
		t.Fatalf("N = %d, want 548", ix.N())
	}

	// The reconciled index answers exactly like a fresh rebuild.
	q := randLifted(rng, dim)
	got := searchHandles(t, ix, q, 20)
	ref := New(dim, Config{Seed: 2})
	for h := 0; h < ix.Handles(); h++ {
		v, ok := ix.Vector(int32(h))
		if ok {
			if rh := ref.Insert(v); rh != int32(h) {
				// ref handles drift past deleted ones; rebuild ref from
				// scratch using the same rows instead.
				t.Fatalf("reference handle %d != %d", rh, h)
			}
		} else {
			// Keep handle spaces aligned: insert the original row, then
			// delete it.
			row := ix.rows.Row(h)
			if rh := ref.Insert(row); rh != int32(h) {
				t.Fatalf("reference handle %d != %d", rh, h)
			}
			ref.Delete(int32(h))
		}
	}
	ref.Rebuild()
	want := searchHandles(t, ref, q, 20)
	if len(got) != len(want) {
		t.Fatalf("result sizes %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestCompactionNeededThresholds pins the trigger predicate.
func TestCompactionNeededThresholds(t *testing.T) {
	const dim = 3
	rng := rand.New(rand.NewSource(13))
	ix := New(dim, Config{RebuildFraction: 100, CompactFraction: 0.5})
	ix.SetBackgroundCompaction(true)

	// No tree yet: triggers at 2*DefaultLeafSize buffered points.
	for i := 0; i < 199; i++ {
		ix.Insert(randLifted(rng, dim))
	}
	if ix.CompactionNeeded() {
		t.Fatal("needed at 199 buffered points before first tree")
	}
	ix.Insert(randLifted(rng, dim))
	if !ix.CompactionNeeded() {
		t.Fatal("not needed at 200 buffered points")
	}
	ix.Compact()
	if ix.CompactionNeeded() {
		t.Fatal("needed immediately after compaction")
	}

	// With a tree: CompactFraction (0.5), not RebuildFraction (100).
	for !ix.CompactionNeeded() {
		ix.Insert(randLifted(rng, dim))
	}
	// delta must just exceed 0.5*live: live=200+k, delta=k → k > 100+k/2.
	if delta := ix.BufferLen(); delta != 201 {
		t.Fatalf("triggered at delta %d, want 201", delta)
	}

	// CompactFraction falls back to RebuildFraction when unset.
	fb := New(dim, Config{RebuildFraction: 0.25})
	fb.SetBackgroundCompaction(true)
	for i := 0; i < 300; i++ {
		fb.Insert(randLifted(rng, dim))
	}
	fb.Compact()
	for !fb.CompactionNeeded() {
		fb.Insert(randLifted(rng, dim))
	}
	// live=300+k, delta=k: trigger at k > 0.25*(300+k) ⇒ 0.75k > 75 ⇒ k=101.
	if delta := fb.BufferLen(); delta != 101 {
		t.Fatalf("fallback triggered at delta %d, want 101", delta)
	}
}
