package dynamic

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"p2h/internal/binio"
)

// walOp is one logical mutation used to drive WAL round-trip tests.
type walOp struct {
	op     byte
	handle int32
	vec    []float32
}

func randomWalOps(rng *rand.Rand, dim, n int) []walOp {
	ops := make([]walOp, 0, n)
	next := int32(0)
	for i := 0; i < n; i++ {
		if next == 0 || rng.Intn(3) > 0 {
			v := make([]float32, dim)
			for j := range v {
				v[j] = rng.Float32()*2 - 1
			}
			ops = append(ops, walOp{op: WALOpInsert, handle: next, vec: v})
			next++
		} else {
			ops = append(ops, walOp{op: WALOpDelete, handle: rng.Int31n(next)})
		}
	}
	return ops
}

func appendOps(t *testing.T, w *WAL, ops []walOp) {
	t.Helper()
	for _, op := range ops {
		var err error
		if op.op == WALOpInsert {
			err = w.AppendInsert(op.handle, op.vec)
		} else {
			err = w.AppendDelete(op.handle)
		}
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func decodeAll(t *testing.T, path string) ([]walOp, WALReplay) {
	t.Helper()
	var got []walOp
	rep, err := DecodeWALFile(path, func(op byte, handle int32, vec []float32, attrs []byte) error {
		got = append(got, walOp{op: op, handle: handle, vec: append([]float32(nil), vec...)})
		return nil
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got, rep
}

func TestWALRoundTrip(t *testing.T) {
	const dim = 5
	path := filepath.Join(t.TempDir(), "ix.wal")
	rng := rand.New(rand.NewSource(1))
	ops := randomWalOps(rng, dim, 200)

	w, err := CreateWAL(path, dim, 7, WALSyncNone)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	appendOps(t, w, ops)
	if got := w.Records(); got != int64(len(ops)) {
		t.Fatalf("Records() = %d, want %d", got, len(ops))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, rep := decodeAll(t, path)
	if rep.Header.Dim != dim || rep.Header.Base != 7 {
		t.Fatalf("header = %+v, want dim %d base 7", rep.Header, dim)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("TornBytes = %d on a clean log", rep.TornBytes)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d records, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].op != ops[i].op || got[i].handle != ops[i].handle {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], ops[i])
		}
		if ops[i].op == WALOpInsert {
			for j := range ops[i].vec {
				if got[i].vec[j] != ops[i].vec[j] {
					t.Fatalf("record %d vec[%d] = %v, want %v", i, j, got[i].vec[j], ops[i].vec[j])
				}
			}
		}
	}

	// Reopen resumes the counters and keeps appending after the old tail.
	w2, rep2, err := OpenWAL(path, dim, 999, WALSyncNone)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rep2.Records != len(ops) || w2.Records() != int64(len(ops)) {
		t.Fatalf("reopen records = %d/%d, want %d", rep2.Records, w2.Records(), len(ops))
	}
	if w2.Base() != 7 {
		t.Fatalf("reopen base = %d, want existing header base 7 (not caller's)", w2.Base())
	}
	if err := w2.AppendDelete(0); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}

	// Truncation empties the log and records the new snapshot boundary.
	if err := w2.TruncateTo(42); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if w2.Records() != 0 || w2.Base() != 42 {
		t.Fatalf("after truncate: records %d base %d", w2.Records(), w2.Base())
	}
	if err := w2.AppendInsert(42, make([]float32, dim)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w2.Close()
	got, rep = decodeAll(t, path)
	if rep.Header.Base != 42 || len(got) != 1 || got[0].handle != 42 {
		t.Fatalf("after truncate+append: base %d records %+v", rep.Header.Base, got)
	}
}

func TestWALTornTail(t *testing.T) {
	const dim = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.wal")
	w, err := CreateWAL(path, dim, 0, WALSyncNone)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ops := randomWalOps(rand.New(rand.NewSource(2)), dim, 20)
	appendOps(t, w, ops)
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file mid-final-record at every possible torn length.
	last := walRecordLen(ops[len(ops)-1].op, dim)
	for cut := int64(1); cut < last; cut++ {
		size := int64(len(full)) - last + cut
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(torn, full[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		rep, err := DecodeWALFile(torn, func(byte, int32, []float32, []byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		if n != len(ops)-1 || rep.TornBytes != cut {
			t.Fatalf("cut %d: decoded %d records torn %d, want %d records torn %d",
				cut, n, rep.TornBytes, len(ops)-1, cut)
		}

		// OpenWAL drops the torn tail; the next append lands cleanly.
		w2, rep2, err := OpenWAL(torn, dim, 0, WALSyncNone)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if rep2.Records != len(ops)-1 {
			t.Fatalf("cut %d: open replayed %d records", cut, rep2.Records)
		}
		if err := w2.AppendDelete(0); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		w2.Close()
		n = 0
		rep, err = DecodeWALFile(torn, func(byte, int32, []float32, []byte) error { n++; return nil })
		if err != nil || rep.TornBytes != 0 || n != len(ops) {
			t.Fatalf("cut %d: after repair decode: n=%d torn=%d err=%v", cut, n, rep.TornBytes, err)
		}
	}
}

func TestWALCorruptionDetected(t *testing.T) {
	const dim = 2
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.wal")
	w, err := CreateWAL(path, dim, 0, WALSyncNone)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	appendOps(t, w, randomWalOps(rand.New(rand.NewSource(3)), dim, 10))
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flipping any single bit anywhere in the file must surface as
	// ErrCorrupt: header (magic, dim, base, crc) and every record byte are
	// all covered by a checksum. No flip may decode cleanly to the same
	// record count, and none may panic.
	for off := 0; off < len(full); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[off] ^= 1 << bit
			rep, err := DecodeWAL(bytes.NewReader(mut), nil)
			if err == nil {
				// A flip in the final record's tail bytes can masquerade as
				// a torn tail only if it corrupted the opcode into an
				// invalid... no: invalid opcodes error. A flip can shorten
				// the decode only by turning a non-final record invalid,
				// which errors. The sole legal clean decode is one that
				// still saw every record — impossible, every byte is
				// checksummed.
				t.Fatalf("flip byte %d bit %d: decode succeeded (%d records, torn %d)",
					off, bit, rep.Records, rep.TornBytes)
			}
			if !errors.Is(err, binio.ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: error %v does not wrap ErrCorrupt", off, bit, err)
			}
		}
	}
}

func TestWALShortFileIsEmpty(t *testing.T) {
	dir := t.TempDir()
	for _, size := range []int{0, 1, walHeaderLen - 1} {
		path := filepath.Join(dir, fmt.Sprintf("short-%d.wal", size))
		if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := DecodeWALFile(path, func(byte, int32, []float32, []byte) error {
			t.Fatalf("size %d: emit called", size)
			return nil
		})
		if err != nil || rep.Records != 0 {
			t.Fatalf("size %d: rep=%+v err=%v, want empty", size, rep, err)
		}
		// OpenWAL recreates the header over the remnant.
		w, _, err := OpenWAL(path, 4, 11, WALSyncNone)
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		if w.Base() != 11 {
			t.Fatalf("size %d: base %d", size, w.Base())
		}
		w.Close()
	}
}

func TestWALOpenRejectsDimMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.wal")
	w, err := CreateWAL(path, 4, 0, WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := OpenWAL(path, 8, 0, WALSyncNone); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("dim-mismatch open: err = %v, want ErrCorrupt", err)
	}
}

func TestWALAppendRejectsWrongWidth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.wal")
	w, err := CreateWAL(path, 4, 0, WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendInsert(0, make([]float32, 3)); err == nil {
		t.Fatal("wrong-width insert accepted")
	}
}

// buildWALBytes assembles an in-memory log for fuzz seeds and corpus
// generation.
func buildWALBytes(dim int, base uint64, ops []walOp, extra []byte) []byte {
	var buf bytes.Buffer
	buf.Write(encodeWALHeader(dim, base))
	for _, op := range ops {
		n := walRecordLen(op.op, dim)
		b := make([]byte, n)
		b[0] = op.op
		binary.LittleEndian.PutUint32(b[1:], uint32(op.handle))
		if op.op == WALOpInsert {
			for i, v := range op.vec {
				binary.LittleEndian.PutUint32(b[5+i*4:], math.Float32bits(v))
			}
		}
		binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
		buf.Write(b)
	}
	buf.Write(extra)
	return buf.Bytes()
}

var genCorpus = flag.Bool("gen-wal-corpus", false, "regenerate testdata/fuzz/FuzzWALDecode seed corpus")

// TestGenerateWALFuzzCorpus rewrites the checked-in seed corpus when run
// with -gen-wal-corpus. The seeds mirror the f.Add cases so that plain
// `go test -fuzz=FuzzWALDecode` starts from interesting structure even
// before new coverage is discovered.
func TestGenerateWALFuzzCorpus(t *testing.T) {
	if !*genCorpus {
		t.Skip("run with -gen-wal-corpus to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range walFuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func walFuzzSeeds() map[string][]byte {
	dim := 3
	ops := []walOp{
		{op: WALOpInsert, handle: 0, vec: []float32{1, -2, 0.5}},
		{op: WALOpInsert, handle: 1, vec: []float32{0, 0, 0}},
		{op: WALOpDelete, handle: 0},
	}
	clean := buildWALBytes(dim, 5, ops, nil)
	torn := clean[:len(clean)-3]
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-1] ^= 0x40
	badOp := buildWALBytes(dim, 5, ops, []byte{9, 0, 0, 0, 0, 1, 2, 3, 4})
	return map[string][]byte{
		"seed-clean":  clean,
		"seed-torn":   torn,
		"seed-flip":   flipped,
		"seed-bad-op": badOp,
		"seed-header": encodeWALHeader(dim, 0),
		"seed-short":  clean[:walHeaderLen-2],
	}
}

// FuzzWALDecode asserts the decoder's contract over arbitrary bytes: it
// never panics, never reports corruption as a clean decode, and classifies
// every stream as exactly one of clean / torn-tail / ErrCorrupt.
func FuzzWALDecode(f *testing.F) {
	for _, data := range walFuzzSeeds() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var n int
		var vecWidths []int
		rep, err := DecodeWAL(bytes.NewReader(data), func(op byte, handle int32, vec []float32, attrs []byte) error {
			n++
			if op == WALOpInsert {
				vecWidths = append(vecWidths, len(vec))
			}
			if handle < 0 {
				t.Fatalf("emit negative handle %d", handle)
			}
			return nil
		})
		if err != nil {
			if !errors.Is(err, binio.ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if n != rep.Records {
			t.Fatalf("emitted %d records, replay says %d", n, rep.Records)
		}
		for _, w := range vecWidths {
			if w != rep.Header.Dim {
				t.Fatalf("emit vec width %d, header dim %d", w, rep.Header.Dim)
			}
		}
		// A clean decode accounts for every input byte: header, intact
		// records, and the reported torn tail.
		if rep.TornBytes < 0 || rep.TornBytes >= walRecordLen(WALOpInsert, rep.Header.Dim) {
			t.Fatalf("torn bytes %d out of range for dim %d", rep.TornBytes, rep.Header.Dim)
		}
	})
}
