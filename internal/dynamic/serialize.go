package dynamic

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"p2h/internal/bctree"
	"p2h/internal/binio"
	"p2h/internal/vec"
)

// Serialization format: the construction configuration, the full handle
// history (every vector ever inserted plus its liveness bit), then the tree
// snapshot and the delta — the snapshot's handle map and serialized BC-Tree,
// and the insert buffer. Load replays that state exactly, so a restored
// index answers queries bitwise-identically and keeps assigning handles
// where the saved one left off.
var magic = []byte("P2HDY001")

// maxSerialDim, maxSerialElems and maxSerialTreeBytes guard corrupt headers
// against absurd allocations: a declared shape whose element count exceeds
// the bound fails as corrupt instead of reaching a make() that would panic.
const (
	maxSerialDim       = 1 << 20
	maxSerialElems     = 1 << 31 // 8 GiB of float32 — beyond any real index
	maxSerialTreeBytes = 1 << 30
)

// Save writes the index to w, self-contained so Load can restore it without
// replaying the original mutation history.
func (ix *Index) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Bytes(magic)
	bw.I32(int32(ix.cfg.LeafSize))
	bw.I64(ix.cfg.Seed)
	bw.F64(ix.cfg.RebuildFraction)
	bw.I32(int32(ix.dim))
	bw.I32(int32(ix.rows.N))
	bw.F32s(ix.rows.Data)
	for _, ok := range ix.alive {
		if ok {
			bw.U8(1)
		} else {
			bw.U8(0)
		}
	}
	if ix.tree == nil {
		bw.U8(0)
	} else {
		bw.U8(1)
		bw.I32(int32(len(ix.treeIDs)))
		bw.I32s(ix.treeIDs)
		var payload bytes.Buffer
		if err := ix.tree.Save(&payload); err != nil {
			return err
		}
		bw.I64(int64(payload.Len()))
		bw.Bytes(payload.Bytes())
	}
	bw.I32(int32(len(ix.buffer)))
	bw.I32s(ix.buffer)
	return bw.Flush()
}

// Load restores an index written by Save. Corrupt input yields an error
// wrapping binio.ErrCorrupt.
func Load(r io.Reader) (*Index, error) {
	br := binio.NewReader(r)
	br.Expect(magic)
	cfg := Config{
		LeafSize:        int(br.I32()),
		Seed:            br.I64(),
		RebuildFraction: br.F64(),
	}
	dim := int(br.I32())
	rows := int(br.I32())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || dim > maxSerialDim || rows < 0 ||
		cfg.LeafSize < 0 || cfg.RebuildFraction < 0 || math.IsNaN(cfg.RebuildFraction) {
		br.Fail("bad header: dim=%d rows=%d leafSize=%d rebuild=%v",
			dim, rows, cfg.LeafSize, cfg.RebuildFraction)
		return nil, br.Err()
	}
	if int64(rows)*int64(dim) > maxSerialElems {
		br.Fail("declared size %dx%d exceeds the serialization bound", rows, dim)
		return nil, br.Err()
	}

	ix := &Index{cfg: cfg.normalized(), dim: dim}
	data := br.F32s(rows * dim)
	if rows > 0 && br.Err() != nil {
		return nil, br.Err()
	}
	if data == nil {
		data = []float32{}
	}
	ix.rows = &vec.Matrix{Data: data, N: rows, D: dim}
	ix.alive = make([]bool, rows)
	for h := 0; h < rows; h++ {
		switch br.U8() {
		case 0:
		case 1:
			ix.alive[h] = true
			ix.live++
		default:
			if br.Err() == nil {
				br.Fail("handle %d: liveness byte not 0/1", h)
			}
			return nil, br.Err()
		}
	}

	inTree := make([]bool, rows)
	switch br.U8() {
	case 0:
	case 1:
		nids := int(br.I32())
		if br.Err() != nil {
			return nil, br.Err()
		}
		if nids < 1 || nids > rows {
			br.Fail("bad snapshot id count %d for %d handles", nids, rows)
			return nil, br.Err()
		}
		ids := br.I32s(nids)
		if br.Err() != nil {
			return nil, br.Err()
		}
		for _, h := range ids {
			if h < 0 || int(h) >= rows {
				br.Fail("snapshot handle %d out of range", h)
				return nil, br.Err()
			}
			if inTree[h] {
				br.Fail("snapshot handle %d appears twice", h)
				return nil, br.Err()
			}
			inTree[h] = true
			if !ix.alive[h] {
				ix.treeDel++ // a tombstone inside the snapshot
			}
		}
		pn := br.I64()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if pn <= 0 || pn > maxSerialTreeBytes {
			br.Fail("bad snapshot payload length %d", pn)
			return nil, br.Err()
		}
		payload := br.Raw(int(pn))
		if br.Err() != nil {
			return nil, br.Err()
		}
		tree, err := bctree.Load(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("snapshot tree: %w", err)
		}
		if tree.N() != nids || tree.Dim() != dim {
			return nil, fmt.Errorf("%w: snapshot tree shape %dx%d, want %dx%d",
				binio.ErrCorrupt, tree.N(), tree.Dim(), nids, dim)
		}
		ix.tree = tree
		ix.treeIDs = ids
	default:
		if br.Err() == nil {
			br.Fail("snapshot flag not 0/1")
		}
		return nil, br.Err()
	}

	nbuf := int(br.I32())
	if br.Err() != nil {
		return nil, br.Err()
	}
	if nbuf < 0 || nbuf > rows {
		br.Fail("bad buffer length %d for %d handles", nbuf, rows)
		return nil, br.Err()
	}
	if nbuf > 0 {
		ix.buffer = br.I32s(nbuf)
		if br.Err() != nil {
			return nil, br.Err()
		}
		for _, h := range ix.buffer {
			if h < 0 || int(h) >= rows {
				br.Fail("buffer handle %d out of range", h)
				return nil, br.Err()
			}
			if !ix.alive[h] {
				br.Fail("buffer handle %d is dead (deletes drop buffered handles)", h)
				return nil, br.Err()
			}
			if inTree[h] {
				br.Fail("buffer handle %d already in the snapshot", h)
				return nil, br.Err()
			}
		}
	}

	// Every live handle must be reachable: in the snapshot or the buffer.
	reachable := len(ix.buffer)
	for _, h := range ix.treeIDs {
		if ix.alive[h] {
			reachable++
		}
	}
	if reachable != ix.live {
		br.Fail("live handles %d, reachable %d", ix.live, reachable)
		return nil, br.Err()
	}
	return ix, nil
}
