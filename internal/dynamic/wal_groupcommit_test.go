package dynamic

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"p2h/internal/faultinject"
)

// TestGroupCommitSingleWriter pins the degraded case: a lone writer that
// appends then waits gets exactly one fsync per record — the classical
// WALSyncAlways behavior.
func TestGroupCommitSingleWriter(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "x.wal"), 4, 0, WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.AppendInsert(int32(i), make([]float32, 4)); err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Syncs(); got != 5 {
		t.Fatalf("lone writer issued %d fsyncs for 5 records, want 5", got)
	}
}

// TestGroupCommitAmortizes runs many concurrent append+wait writers against
// a slowed fsync and checks (a) every waiter returns durable, (b) far fewer
// fsyncs than records were issued — the commit group actually batches.
func TestGroupCommitAmortizes(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "x.wal"), 4, 0, WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("wal.fsync", faultinject.Fault{Delay: 2 * time.Millisecond})

	const writers = 32
	const perWriter = 8
	var appendMu sync.Mutex // stands in for the engine's mutation lock
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				appendMu.Lock()
				err := w.AppendInsert(int32(g*perWriter+i), make([]float32, 4))
				appendMu.Unlock()
				if err == nil {
					err = w.WaitDurable()
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := int64(writers * perWriter)
	if w.Records() != total {
		t.Fatalf("records = %d, want %d", w.Records(), total)
	}
	if s := w.Syncs(); s >= total/2 {
		t.Fatalf("group commit issued %d fsyncs for %d records — no amortization", s, total)
	}
}

// TestGroupCommitFsyncFailureSticky injects an fsync error and checks the
// waiter sees it, later waits stay failed, and TruncateTo forgives.
func TestGroupCommitFsyncFailureSticky(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "x.wal"), 4, 0, WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("wal.fsync", faultinject.Fault{Fail: true, Count: 1})

	if err := w.AppendInsert(0, make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("WaitDurable = %v, want ErrInjected", err)
	}
	// The point is spent, but the failure is sticky: the stranded record can
	// never be promised durable.
	if err := w.WaitDurable(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("second WaitDurable = %v, want sticky ErrInjected", err)
	}
	if err := w.TruncateTo(1); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(1, make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(); err != nil {
		t.Fatalf("WaitDurable after TruncateTo = %v", err)
	}
}

// TestWaitDurableNoneIsNoop pins that WALSyncNone never fsyncs.
func TestWaitDurableNoneIsNoop(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "x.wal"), 4, 0, WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendInsert(0, make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	if w.Syncs() != 0 {
		t.Fatalf("WALSyncNone issued %d fsyncs", w.Syncs())
	}
}
