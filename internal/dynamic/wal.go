package dynamic

// The write-ahead log of a dynamic index. Every Insert/Delete applied through
// a durable serving stack is appended here as one checksummed record before
// the mutation is acknowledged, so a crashed process replays the log on top
// of its latest snapshot and recovers the exact acknowledged state.
//
// File layout (little-endian throughout, one header then records to EOF):
//
//	header:  magic "P2HWL001" | dim u32 | base u64 | crc32c(previous 20 bytes)
//	insert:  op=1 | handle u32 | dim float32s | crc32c(op..vector)
//	delete:  op=2 | handle u32 |               crc32c(op..handle)
//
// dim is the raw point width every insert record carries; base is the
// index's handle count (rows ever inserted) when the log was created or last
// truncated, so replay can tell a log that belongs to an older snapshot
// generation (records below the restored handle count are already inside the
// snapshot and are skipped) from one that skips ahead of it (a gap: records
// are missing, the pair is corrupt).
//
// Torn tails are expected, corruption is not: a crash mid-append leaves a
// prefix of the final record, which DecodeWAL reports as torn bytes and
// OpenWAL truncates away — by construction such a record was never
// acknowledged (acknowledgement follows the completed write). A record whose
// bytes are all present but whose checksum, opcode or shape is wrong can only
// be corruption and fails with an error wrapping binio.ErrCorrupt; it is
// never silently dropped.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"p2h/internal/binio"
)

// WAL record opcodes.
const (
	WALOpInsert byte = 1
	WALOpDelete byte = 2
)

var walMagic = []byte("P2HWL001")

// walHeaderLen is the fixed header size: magic(8) + dim(4) + base(8) + crc(4).
const walHeaderLen = 8 + 4 + 8 + 4

// maxWALDim bounds the header-declared vector width, mirroring the snapshot
// serializer's guard, so a corrupt header fails instead of sizing huge reads.
const maxWALDim = 1 << 20

// WALSync is the log's fsync policy.
type WALSync int

const (
	// WALSyncAlways fsyncs after every appended record before it is
	// acknowledged: no acknowledged mutation is lost even to a machine
	// crash. Each mutation pays one fsync.
	WALSyncAlways WALSync = iota
	// WALSyncNone leaves flushing to the OS: acknowledged mutations survive
	// a process crash (the page cache persists them) but a machine crash may
	// lose a recent suffix. Mutations cost one write call.
	WALSyncNone
)

// WALHeader is the decoded fixed-size log header.
type WALHeader struct {
	// Dim is the raw vector width of every insert record.
	Dim int
	// Base is the index handle count at log creation/truncation.
	Base uint64
}

// WALReplay reports what decoding a log found.
type WALReplay struct {
	Header WALHeader
	// Records is the number of intact records decoded.
	Records int
	// TornBytes is the length of the incomplete final record dropped from
	// the tail (zero for a cleanly closed log).
	TornBytes int64
}

// WAL is an open write-ahead log. Appends are not safe for concurrent use;
// the serving engine serializes them under its mutation lock. Records and
// Base are safe to read concurrently (metrics scrape them live).
type WAL struct {
	f    *os.File
	path string
	dim  int
	mode WALSync

	base    atomic.Uint64
	records atomic.Int64
	buf     []byte
	err     error // sticky append failure; cleared by TruncateTo
}

// walRecordLen is the encoded size of one record of the given opcode.
func walRecordLen(op byte, dim int) int64 {
	n := int64(1 + 4 + 4) // op + handle + crc
	if op == WALOpInsert {
		n += int64(dim) * 4
	}
	return n
}

// WALInsertRecordLen and WALDeleteRecordLen report encoded record sizes, so
// tests and crash harnesses can map byte offsets to record boundaries.
func WALInsertRecordLen(dim int) int64 { return walRecordLen(WALOpInsert, dim) }

// WALDeleteRecordLen reports the encoded size of a delete record.
func WALDeleteRecordLen() int64 { return walRecordLen(WALOpDelete, 0) }

// WALHeaderLen reports the encoded header size.
func WALHeaderLen() int64 { return walHeaderLen }

func encodeWALHeader(dim int, base uint64) []byte {
	b := make([]byte, walHeaderLen)
	copy(b, walMagic)
	binary.LittleEndian.PutUint32(b[8:], uint32(dim))
	binary.LittleEndian.PutUint64(b[12:], base)
	binary.LittleEndian.PutUint32(b[20:], binio.Checksum(b[:20]))
	return b
}

func decodeWALHeader(b []byte) (WALHeader, error) {
	if len(b) < walHeaderLen {
		return WALHeader{}, fmt.Errorf("%w: wal header truncated at %d bytes", binio.ErrCorrupt, len(b))
	}
	for i := range walMagic {
		if b[i] != walMagic[i] {
			return WALHeader{}, fmt.Errorf("%w: bad wal magic %q", binio.ErrCorrupt, b[:8])
		}
	}
	if got, want := binary.LittleEndian.Uint32(b[20:]), binio.Checksum(b[:20]); got != want {
		return WALHeader{}, fmt.Errorf("%w: wal header checksum %08x, want %08x", binio.ErrCorrupt, got, want)
	}
	dim := int(int32(binary.LittleEndian.Uint32(b[8:])))
	if dim <= 0 || dim > maxWALDim {
		return WALHeader{}, fmt.Errorf("%w: wal header dim %d", binio.ErrCorrupt, dim)
	}
	return WALHeader{Dim: dim, Base: binary.LittleEndian.Uint64(b[12:])}, nil
}

// DecodeWAL decodes a log stream, calling emit for every intact record in
// order. Structural corruption — bad magic, checksum mismatch, unknown
// opcode — returns an error wrapping binio.ErrCorrupt; an incomplete final
// record (a torn append from a crash) is not an error and is reported via
// WALReplay.TornBytes. emit may be nil to count records only; a non-nil
// error from emit stops the decode and is returned as-is.
func DecodeWAL(r io.Reader, emit func(op byte, handle int32, vec []float32) error) (WALReplay, error) {
	var rep WALReplay
	head := make([]byte, walHeaderLen)
	if n, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return rep, fmt.Errorf("%w: wal header truncated at %d bytes", binio.ErrCorrupt, n)
		}
		return rep, err
	}
	h, err := decodeWALHeader(head)
	if err != nil {
		return rep, err
	}
	rep.Header = h

	// One reusable buffer sized for the larger record kind.
	rec := make([]byte, walRecordLen(WALOpInsert, h.Dim))
	vec := make([]float32, h.Dim)
	for {
		if _, err := io.ReadFull(r, rec[:1]); err != nil {
			if err == io.EOF {
				return rep, nil // clean end
			}
			return rep, err
		}
		op := rec[0]
		if op != WALOpInsert && op != WALOpDelete {
			return rep, fmt.Errorf("%w: wal record %d: unknown opcode %d", binio.ErrCorrupt, rep.Records, op)
		}
		body := rec[:walRecordLen(op, h.Dim)]
		if n, err := io.ReadFull(r, body[1:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// A prefix of the final record: a torn append, never
				// acknowledged, safe to drop.
				rep.TornBytes = int64(1 + n)
				return rep, nil
			}
			return rep, err
		}
		crcOff := len(body) - 4
		if got, want := binary.LittleEndian.Uint32(body[crcOff:]), binio.Checksum(body[:crcOff]); got != want {
			return rep, fmt.Errorf("%w: wal record %d: checksum %08x, want %08x",
				binio.ErrCorrupt, rep.Records, got, want)
		}
		handle := int32(binary.LittleEndian.Uint32(body[1:]))
		if handle < 0 {
			return rep, fmt.Errorf("%w: wal record %d: negative handle %d", binio.ErrCorrupt, rep.Records, handle)
		}
		var v []float32
		if op == WALOpInsert {
			for i := range vec {
				vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[5+i*4:]))
			}
			v = vec
		}
		if emit != nil {
			if err := emit(op, handle, v); err != nil {
				return rep, err
			}
		}
		rep.Records++
	}
}

// DecodeWALFile decodes the log at path; see DecodeWAL. A missing file
// returns os.ErrNotExist; an empty file decodes as zero records under a
// zero-value header (the state a crash can leave mid-truncation, after the
// snapshot already absorbed every logged record).
func DecodeWALFile(path string, emit func(op byte, handle int32, vec []float32) error) (WALReplay, error) {
	f, err := os.Open(path)
	if err != nil {
		return WALReplay{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return WALReplay{}, err
	}
	if st.Size() < walHeaderLen {
		// Shorter than a header: either a fresh file or the remnant of a
		// crash during TruncateTo, whose records the snapshot that triggered
		// the truncation already persisted. Nothing to replay.
		return WALReplay{}, nil
	}
	return DecodeWAL(f, emit)
}

// CreateWAL creates (or truncates) a log at path for vectors of width dim,
// recording base as the owning index's current handle count.
func CreateWAL(path string, dim int, base uint64, mode WALSync) (*WAL, error) {
	if dim <= 0 || dim > maxWALDim {
		return nil, fmt.Errorf("dynamic: wal dimension %d out of range", dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, path: path, dim: dim, mode: mode}
	w.base.Store(base)
	if err := w.writeHeader(base); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenWAL opens the log at path for appending, creating it when absent (or
// when only a truncation remnant shorter than a header exists). An existing
// log must carry the expected dim; replay reports what the file held, and a
// torn final record is truncated away before the first append. base is the
// owning index's current handle count, written into the header only when the
// file is created fresh.
func OpenWAL(path string, dim int, base uint64, mode WALSync) (*WAL, WALReplay, error) {
	st, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && st.Size() < walHeaderLen) {
		w, cerr := CreateWAL(path, dim, base, mode)
		return w, WALReplay{}, cerr
	}
	if err != nil {
		return nil, WALReplay{}, err
	}
	rep, err := DecodeWALFile(path, nil)
	if err != nil {
		return nil, rep, err
	}
	if rep.Header.Dim != dim {
		return nil, rep, fmt.Errorf("%w: wal %s holds vectors of width %d, index needs %d",
			binio.ErrCorrupt, path, rep.Header.Dim, dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, rep, err
	}
	if rep.TornBytes > 0 {
		if err := f.Truncate(st.Size() - rep.TornBytes); err != nil {
			f.Close()
			return nil, rep, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, rep, err
	}
	w := &WAL{f: f, path: path, dim: dim, mode: mode}
	w.base.Store(rep.Header.Base)
	w.records.Store(int64(rep.Records))
	return w, rep, nil
}

func (w *WAL) writeHeader(base uint64) error {
	if _, err := w.f.Write(encodeWALHeader(w.dim, base)); err != nil {
		return err
	}
	return w.f.Sync()
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Dim returns the vector width of insert records.
func (w *WAL) Dim() int { return w.dim }

// Base returns the handle count recorded at the last truncation.
func (w *WAL) Base() uint64 { return w.base.Load() }

// Records returns the number of records currently in the log (mutations
// pending beyond the last snapshot). Safe to call concurrently with appends.
func (w *WAL) Records() int64 { return w.records.Load() }

// Mode returns the fsync policy.
func (w *WAL) Mode() WALSync { return w.mode }

// append writes one framed record and applies the fsync policy. A failed
// append leaves the log sticky-failed — the file tail may hold a partial
// record, so later appends must not interleave with it — until the next
// TruncateTo resets the file.
func (w *WAL) append(body []byte) error {
	if w.err != nil {
		return fmt.Errorf("dynamic: wal %s failed earlier: %w", w.path, w.err)
	}
	if _, err := w.f.Write(body); err != nil {
		w.err = err
		return err
	}
	if w.mode == WALSyncAlways {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
	}
	w.records.Add(1)
	return nil
}

// AppendInsert logs an applied insert: the handle the index assigned and the
// raw point. The mutation must not be acknowledged unless this returns nil.
func (w *WAL) AppendInsert(handle int32, p []float32) error {
	if len(p) != w.dim {
		return fmt.Errorf("dynamic: wal %s: insert of width %d, log holds %d", w.path, len(p), w.dim)
	}
	n := walRecordLen(WALOpInsert, w.dim)
	if int64(cap(w.buf)) < n {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	b[0] = WALOpInsert
	binary.LittleEndian.PutUint32(b[1:], uint32(handle))
	for i, v := range p {
		binary.LittleEndian.PutUint32(b[5+i*4:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
	return w.append(b)
}

// AppendDelete logs an applied delete of a live handle.
func (w *WAL) AppendDelete(handle int32) error {
	n := walRecordLen(WALOpDelete, 0)
	if int64(cap(w.buf)) < n {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	b[0] = WALOpDelete
	binary.LittleEndian.PutUint32(b[1:], uint32(handle))
	binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
	return w.append(b)
}

// TruncateTo empties the log and records base as the new snapshot boundary:
// every record so far is covered by a snapshot the caller just persisted.
// Called with the same lock held that serializes appends. A crash inside
// leaves a file shorter than a header, which OpenWAL and DecodeWALFile treat
// as empty — correct, because the snapshot persisted first.
func (w *WAL) TruncateTo(base uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.writeHeader(base); err != nil {
		return err
	}
	w.base.Store(base)
	w.records.Store(0)
	w.err = nil
	return nil
}

// Close syncs (regardless of policy) and closes the file.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
