package dynamic

// The write-ahead log of a dynamic index. Every Insert/Delete applied through
// a durable serving stack is appended here as one checksummed record before
// the mutation is acknowledged, so a crashed process replays the log on top
// of its latest snapshot and recovers the exact acknowledged state.
//
// File layout (little-endian throughout, one header then records to EOF):
//
//	header:  magic "P2HWL001" | dim u32 | base u64 | crc32c(previous 20 bytes)
//	insert:  op=1 | handle u32 | dim float32s | crc32c(op..vector)
//	delete:  op=2 | handle u32 |               crc32c(op..handle)
//	insert+: op=3 | handle u32 | dim float32s | alen u32 | alen attr bytes | crc32c(op..attrs)
//
// op=3 is an insert carrying an attribute payload (internal/attr's point wire
// encoding, opaque to this layer); alen is bounded by maxWALAttrLen so a
// corrupt length fails instead of sizing a huge read.
//
// dim is the raw point width every insert record carries; base is the
// index's handle count (rows ever inserted) when the log was created or last
// truncated, so replay can tell a log that belongs to an older snapshot
// generation (records below the restored handle count are already inside the
// snapshot and are skipped) from one that skips ahead of it (a gap: records
// are missing, the pair is corrupt).
//
// Torn tails are expected, corruption is not: a crash mid-append leaves a
// prefix of the final record, which DecodeWAL reports as torn bytes and
// OpenWAL truncates away — by construction such a record was never
// acknowledged (acknowledgement follows the completed write). A record whose
// bytes are all present but whose checksum, opcode or shape is wrong can only
// be corruption and fails with an error wrapping binio.ErrCorrupt; it is
// never silently dropped.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"p2h/internal/binio"
	"p2h/internal/faultinject"
)

// WAL record opcodes.
const (
	WALOpInsert byte = 1
	WALOpDelete byte = 2
	// WALOpInsertAttrs is an insert whose record additionally carries the
	// point's attribute payload (length-prefixed, encoding owned by
	// internal/attr).
	WALOpInsertAttrs byte = 3
)

var walMagic = []byte("P2HWL001")

// walHeaderLen is the fixed header size: magic(8) + dim(4) + base(8) + crc(4).
const walHeaderLen = 8 + 4 + 8 + 4

// maxWALDim bounds the header-declared vector width, mirroring the snapshot
// serializer's guard, so a corrupt header fails instead of sizing huge reads.
const maxWALDim = 1 << 20

// maxWALAttrLen bounds the attribute payload of one op=3 record; it matches
// internal/attr's own encoded-point cap.
const maxWALAttrLen = 1 << 20

// WALSync is the log's fsync policy.
type WALSync int

const (
	// WALSyncAlways makes every appended record durable before it is
	// acknowledged: no acknowledged mutation is lost even to a machine
	// crash. Durability is reached by calling WaitDurable after the append;
	// concurrent waiters share one fsync (group commit), so under load many
	// mutations amortize a single disk flush while a lone writer degrades to
	// the classical fsync-per-append.
	WALSyncAlways WALSync = iota
	// WALSyncNone leaves flushing to the OS: acknowledged mutations survive
	// a process crash (the page cache persists them) but a machine crash may
	// lose a recent suffix. Mutations cost one write call.
	WALSyncNone
)

// WALHeader is the decoded fixed-size log header.
type WALHeader struct {
	// Dim is the raw vector width of every insert record.
	Dim int
	// Base is the index handle count at log creation/truncation.
	Base uint64
}

// WALReplay reports what decoding a log found.
type WALReplay struct {
	Header WALHeader
	// Records is the number of intact records decoded.
	Records int
	// TornBytes is the length of the incomplete final record dropped from
	// the tail (zero for a cleanly closed log).
	TornBytes int64
}

// WAL is an open write-ahead log. Appends are not safe for concurrent use;
// the serving engine serializes them under its mutation lock. WaitDurable is
// safe for concurrent use — that is the point of group commit. Records, Base
// and Syncs are safe to read concurrently (metrics scrape them live).
type WAL struct {
	f    *os.File
	path string
	dim  int
	mode WALSync

	base    atomic.Uint64
	records atomic.Int64
	syncs   atomic.Int64
	buf     []byte
	err     error // sticky append failure; cleared by TruncateTo

	// Group-commit state (WALSyncAlways only). Appends assign monotone
	// sequence numbers; WaitDurable elects the first waiter as leader, which
	// fsyncs once for every record appended so far while followers sleep on
	// the condition, then advances synced and wakes them. gcMu guards the
	// four fields below; the append path touches them only to bump appended.
	gcMu     sync.Mutex
	gcCond   sync.Cond // waiters for synced to advance; Broadcast by leader
	appended uint64    // seq of the latest fully written record
	synced   uint64    // seq through which records are known on disk
	syncing  bool      // a leader's fsync is in flight
	syncErr  error     // sticky group-commit failure; cleared by TruncateTo
}

func newWAL(f *os.File, path string, dim int, mode WALSync) *WAL {
	w := &WAL{f: f, path: path, dim: dim, mode: mode}
	w.gcCond.L = &w.gcMu
	return w
}

// walRecordLen is the encoded size of one record of the given opcode.
func walRecordLen(op byte, dim int) int64 {
	n := int64(1 + 4 + 4) // op + handle + crc
	if op == WALOpInsert {
		n += int64(dim) * 4
	}
	return n
}

// WALInsertRecordLen and WALDeleteRecordLen report encoded record sizes, so
// tests and crash harnesses can map byte offsets to record boundaries.
func WALInsertRecordLen(dim int) int64 { return walRecordLen(WALOpInsert, dim) }

// WALDeleteRecordLen reports the encoded size of a delete record.
func WALDeleteRecordLen() int64 { return walRecordLen(WALOpDelete, 0) }

// WALInsertAttrsRecordLen reports the encoded size of an op=3 record carrying
// an attribute payload of attrLen bytes.
func WALInsertAttrsRecordLen(dim, attrLen int) int64 {
	return walRecordLen(WALOpInsert, dim) + 4 + int64(attrLen)
}

// WALHeaderLen reports the encoded header size.
func WALHeaderLen() int64 { return walHeaderLen }

func encodeWALHeader(dim int, base uint64) []byte {
	b := make([]byte, walHeaderLen)
	copy(b, walMagic)
	binary.LittleEndian.PutUint32(b[8:], uint32(dim))
	binary.LittleEndian.PutUint64(b[12:], base)
	binary.LittleEndian.PutUint32(b[20:], binio.Checksum(b[:20]))
	return b
}

func decodeWALHeader(b []byte) (WALHeader, error) {
	if len(b) < walHeaderLen {
		return WALHeader{}, fmt.Errorf("%w: wal header truncated at %d bytes", binio.ErrCorrupt, len(b))
	}
	for i := range walMagic {
		if b[i] != walMagic[i] {
			return WALHeader{}, fmt.Errorf("%w: bad wal magic %q", binio.ErrCorrupt, b[:8])
		}
	}
	if got, want := binary.LittleEndian.Uint32(b[20:]), binio.Checksum(b[:20]); got != want {
		return WALHeader{}, fmt.Errorf("%w: wal header checksum %08x, want %08x", binio.ErrCorrupt, got, want)
	}
	dim := int(int32(binary.LittleEndian.Uint32(b[8:])))
	if dim <= 0 || dim > maxWALDim {
		return WALHeader{}, fmt.Errorf("%w: wal header dim %d", binio.ErrCorrupt, dim)
	}
	return WALHeader{Dim: dim, Base: binary.LittleEndian.Uint64(b[12:])}, nil
}

// DecodeWAL decodes a log stream, calling emit for every intact record in
// order. Structural corruption — bad magic, checksum mismatch, unknown
// opcode, an oversized attribute length — returns an error wrapping
// binio.ErrCorrupt; an incomplete final record (a torn append from a crash)
// is not an error and is reported via WALReplay.TornBytes. emit may be nil to
// count records only; a non-nil error from emit stops the decode and is
// returned as-is. attrs is the raw attribute payload of an op=3 record (nil
// otherwise), valid only for the duration of the call.
func DecodeWAL(r io.Reader, emit func(op byte, handle int32, vec []float32, attrs []byte) error) (WALReplay, error) {
	var rep WALReplay
	head := make([]byte, walHeaderLen)
	if n, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return rep, fmt.Errorf("%w: wal header truncated at %d bytes", binio.ErrCorrupt, n)
		}
		return rep, err
	}
	h, err := decodeWALHeader(head)
	if err != nil {
		return rep, err
	}
	rep.Header = h

	// One reusable buffer, sized for the fixed record kinds up front and
	// grown on demand for attribute payloads.
	rec := make([]byte, walRecordLen(WALOpInsert, h.Dim))
	vec := make([]float32, h.Dim)
	for {
		if _, err := io.ReadFull(r, rec[:1]); err != nil {
			if err == io.EOF {
				return rep, nil // clean end
			}
			return rep, err
		}
		op := rec[0]
		if op != WALOpInsert && op != WALOpDelete && op != WALOpInsertAttrs {
			return rep, fmt.Errorf("%w: wal record %d: unknown opcode %d", binio.ErrCorrupt, rep.Records, op)
		}
		var body []byte
		if op == WALOpInsertAttrs {
			// Variable-length record: read up to and including the attribute
			// length, then the payload and checksum. A cut anywhere is a torn
			// tail; only a record whose bytes are all present can fail the
			// checksum.
			pre := int(walRecordLen(WALOpInsert, h.Dim)) // op+handle+vec+alen, alen in the crc slot
			if n, err := io.ReadFull(r, rec[1:pre]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					rep.TornBytes = int64(1 + n)
					return rep, nil
				}
				return rep, err
			}
			alen := int(binary.LittleEndian.Uint32(rec[pre-4:]))
			if alen <= 0 || alen > maxWALAttrLen {
				return rep, fmt.Errorf("%w: wal record %d: attribute payload length %d out of range",
					binio.ErrCorrupt, rep.Records, alen)
			}
			total := pre + alen + 4
			if cap(rec) < total {
				grown := make([]byte, total)
				copy(grown, rec[:pre])
				rec = grown
			}
			rec = rec[:cap(rec)]
			if n, err := io.ReadFull(r, rec[pre:total]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					rep.TornBytes = int64(pre + n)
					return rep, nil
				}
				return rep, err
			}
			body = rec[:total]
		} else {
			body = rec[:walRecordLen(op, h.Dim)]
			if n, err := io.ReadFull(r, body[1:]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					// A prefix of the final record: a torn append, never
					// acknowledged, safe to drop.
					rep.TornBytes = int64(1 + n)
					return rep, nil
				}
				return rep, err
			}
		}
		crcOff := len(body) - 4
		if got, want := binary.LittleEndian.Uint32(body[crcOff:]), binio.Checksum(body[:crcOff]); got != want {
			return rep, fmt.Errorf("%w: wal record %d: checksum %08x, want %08x",
				binio.ErrCorrupt, rep.Records, got, want)
		}
		handle := int32(binary.LittleEndian.Uint32(body[1:]))
		if handle < 0 {
			return rep, fmt.Errorf("%w: wal record %d: negative handle %d", binio.ErrCorrupt, rep.Records, handle)
		}
		var v []float32
		var attrs []byte
		if op == WALOpInsert || op == WALOpInsertAttrs {
			for i := range vec {
				vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[5+i*4:]))
			}
			v = vec
		}
		if op == WALOpInsertAttrs {
			attrs = body[5+h.Dim*4+4 : crcOff]
		}
		if emit != nil {
			if err := emit(op, handle, v, attrs); err != nil {
				return rep, err
			}
		}
		rep.Records++
	}
}

// DecodeWALFile decodes the log at path; see DecodeWAL. A missing file
// returns os.ErrNotExist; an empty file decodes as zero records under a
// zero-value header (the state a crash can leave mid-truncation, after the
// snapshot already absorbed every logged record).
func DecodeWALFile(path string, emit func(op byte, handle int32, vec []float32, attrs []byte) error) (WALReplay, error) {
	f, err := os.Open(path)
	if err != nil {
		return WALReplay{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return WALReplay{}, err
	}
	if st.Size() < walHeaderLen {
		// Shorter than a header: either a fresh file or the remnant of a
		// crash during TruncateTo, whose records the snapshot that triggered
		// the truncation already persisted. Nothing to replay.
		return WALReplay{}, nil
	}
	return DecodeWAL(f, emit)
}

// CreateWAL creates (or truncates) a log at path for vectors of width dim,
// recording base as the owning index's current handle count.
func CreateWAL(path string, dim int, base uint64, mode WALSync) (*WAL, error) {
	if dim <= 0 || dim > maxWALDim {
		return nil, fmt.Errorf("dynamic: wal dimension %d out of range", dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := newWAL(f, path, dim, mode)
	w.base.Store(base)
	if err := w.writeHeader(base); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenWAL opens the log at path for appending, creating it when absent (or
// when only a truncation remnant shorter than a header exists). An existing
// log must carry the expected dim; replay reports what the file held, and a
// torn final record is truncated away before the first append. base is the
// owning index's current handle count, written into the header only when the
// file is created fresh.
func OpenWAL(path string, dim int, base uint64, mode WALSync) (*WAL, WALReplay, error) {
	st, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && st.Size() < walHeaderLen) {
		w, cerr := CreateWAL(path, dim, base, mode)
		return w, WALReplay{}, cerr
	}
	if err != nil {
		return nil, WALReplay{}, err
	}
	rep, err := DecodeWALFile(path, nil)
	if err != nil {
		return nil, rep, err
	}
	if rep.Header.Dim != dim {
		return nil, rep, fmt.Errorf("%w: wal %s holds vectors of width %d, index needs %d",
			binio.ErrCorrupt, path, rep.Header.Dim, dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, rep, err
	}
	if rep.TornBytes > 0 {
		if err := f.Truncate(st.Size() - rep.TornBytes); err != nil {
			f.Close()
			return nil, rep, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, rep, err
	}
	w := newWAL(f, path, dim, mode)
	w.base.Store(rep.Header.Base)
	w.records.Store(int64(rep.Records))
	return w, rep, nil
}

func (w *WAL) writeHeader(base uint64) error {
	if _, err := w.f.Write(encodeWALHeader(w.dim, base)); err != nil {
		return err
	}
	return w.f.Sync()
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Dim returns the vector width of insert records.
func (w *WAL) Dim() int { return w.dim }

// Base returns the handle count recorded at the last truncation.
func (w *WAL) Base() uint64 { return w.base.Load() }

// Records returns the number of records currently in the log (mutations
// pending beyond the last snapshot). Safe to call concurrently with appends.
func (w *WAL) Records() int64 { return w.records.Load() }

// Mode returns the fsync policy.
func (w *WAL) Mode() WALSync { return w.mode }

// Syncs returns the number of fsyncs the group-commit path has issued. Under
// load Records grows much faster than Syncs — the ratio is the group-commit
// amortization factor metrics report.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// append writes one framed record and assigns it the next durability sequence
// number. Under WALSyncAlways the record is NOT yet on disk when append
// returns — the caller must not acknowledge the mutation until a following
// WaitDurable succeeds. A failed append leaves the log sticky-failed — the
// file tail may hold a partial record, so later appends must not interleave
// with it — until the next TruncateTo resets the file.
func (w *WAL) append(body []byte) error {
	if w.err != nil {
		return fmt.Errorf("dynamic: wal %s failed earlier: %w", w.path, w.err)
	}
	if _, err := w.f.Write(body); err != nil {
		w.err = err
		return err
	}
	w.records.Add(1)
	if w.mode == WALSyncAlways {
		w.gcMu.Lock()
		w.appended++
		w.gcMu.Unlock()
	}
	return nil
}

// WaitDurable blocks until every record appended before the call is on disk,
// then returns nil. Under WALSyncNone it returns immediately — durability is
// the OS's business there. Safe for concurrent use: the first waiter becomes
// the commit-group leader and fsyncs once on behalf of everything appended so
// far; waiters arriving while that fsync is in flight sleep and either find
// their record covered when it lands or lead the next group. A lone writer
// thus degrades to one fsync per append (the classical WALSyncAlways cost),
// while N concurrent writers amortize one fsync across the whole group.
//
// A failed fsync is returned to every waiter whose records it stranded and
// leaves the log sticky-failed until TruncateTo, mirroring append's contract:
// after an fsync error the kernel may have dropped the dirty pages, so no
// later fsync can retroactively promise those records are durable.
func (w *WAL) WaitDurable() error {
	if w.mode != WALSyncAlways {
		return nil
	}
	w.gcMu.Lock()
	defer w.gcMu.Unlock()
	target := w.appended
	for w.synced < target {
		if w.syncErr != nil {
			return fmt.Errorf("dynamic: wal %s: group commit failed earlier: %w", w.path, w.syncErr)
		}
		if w.syncing {
			w.gcCond.Wait()
			continue
		}
		w.syncing = true
		goal := w.appended // everything written so far rides this fsync
		w.gcMu.Unlock()
		err := w.syncOnce()
		w.gcMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
			w.gcCond.Broadcast()
			return err
		}
		if goal > w.synced {
			w.synced = goal
		}
		w.gcCond.Broadcast()
	}
	return nil
}

// syncOnce issues one fsync through the wal.fsync failpoint, so chaos tests
// can slow or fail the disk underneath the commit group.
func (w *WAL) syncOnce() error {
	if faultinject.Armed() {
		if err := faultinject.Inject("wal.fsync"); err != nil {
			return err
		}
	}
	w.syncs.Add(1)
	return w.f.Sync()
}

// AppendInsert logs an applied insert: the handle the index assigned and the
// raw point. The mutation must not be acknowledged unless this returns nil —
// and, under WALSyncAlways, a following WaitDurable returns nil too.
func (w *WAL) AppendInsert(handle int32, p []float32) error {
	if len(p) != w.dim {
		return fmt.Errorf("dynamic: wal %s: insert of width %d, log holds %d", w.path, len(p), w.dim)
	}
	n := walRecordLen(WALOpInsert, w.dim)
	if int64(cap(w.buf)) < n {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	b[0] = WALOpInsert
	binary.LittleEndian.PutUint32(b[1:], uint32(handle))
	for i, v := range p {
		binary.LittleEndian.PutUint32(b[5+i*4:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
	return w.append(b)
}

// AppendInsertAttrs logs an applied insert that carries an attribute payload
// (the point wire encoding of internal/attr, opaque here). Same durability
// contract as AppendInsert.
func (w *WAL) AppendInsertAttrs(handle int32, p []float32, attrs []byte) error {
	if len(p) != w.dim {
		return fmt.Errorf("dynamic: wal %s: insert of width %d, log holds %d", w.path, len(p), w.dim)
	}
	if len(attrs) == 0 || len(attrs) > maxWALAttrLen {
		return fmt.Errorf("dynamic: wal %s: attribute payload of %d bytes out of range (1..%d)",
			w.path, len(attrs), maxWALAttrLen)
	}
	n := WALInsertAttrsRecordLen(w.dim, len(attrs))
	if int64(cap(w.buf)) < n {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	b[0] = WALOpInsertAttrs
	binary.LittleEndian.PutUint32(b[1:], uint32(handle))
	for i, v := range p {
		binary.LittleEndian.PutUint32(b[5+i*4:], math.Float32bits(v))
	}
	alenOff := 5 + w.dim*4
	binary.LittleEndian.PutUint32(b[alenOff:], uint32(len(attrs)))
	copy(b[alenOff+4:], attrs)
	binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
	return w.append(b)
}

// AppendDelete logs an applied delete of a live handle.
func (w *WAL) AppendDelete(handle int32) error {
	n := walRecordLen(WALOpDelete, 0)
	if int64(cap(w.buf)) < n {
		w.buf = make([]byte, n)
	}
	b := w.buf[:n]
	b[0] = WALOpDelete
	binary.LittleEndian.PutUint32(b[1:], uint32(handle))
	binary.LittleEndian.PutUint32(b[n-4:], binio.Checksum(b[:n-4]))
	return w.append(b)
}

// TruncateTo empties the log and records base as the new snapshot boundary:
// every record so far is covered by a snapshot the caller just persisted.
// Called with the same lock held that serializes appends. A crash inside
// leaves a file shorter than a header, which OpenWAL and DecodeWALFile treat
// as empty — correct, because the snapshot persisted first.
func (w *WAL) TruncateTo(base uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.writeHeader(base); err != nil {
		return err
	}
	w.base.Store(base)
	w.records.Store(0)
	w.err = nil
	// Everything the log held is inside the snapshot now; pending commit
	// groups have nothing left to flush, and a sticky fsync failure is
	// forgiven because the failed records no longer exist.
	w.gcMu.Lock()
	w.synced = w.appended
	w.syncErr = nil
	w.gcCond.Broadcast()
	w.gcMu.Unlock()
	return nil
}

// Close syncs (regardless of policy) and closes the file.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
