package dynamic

// Background delta compaction. In the default (synchronous) mode the index
// folds its delta into a fresh tree inline, inside the Insert/Delete call
// that pushed the delta over RebuildFraction — simple, but the unlucky
// mutation stalls for the whole build while the serving engine holds every
// search out behind the mutation lock. Background mode splits the rebuild
// into three phases so only the two short ones run under the lock:
//
//	capture  (under the mutation lock)  BeginCompaction snapshots the live
//	         handle set and an alias of the row storage. Rows are append-only
//	         — a handle's vector never changes and storage growth either
//	         extends past the captured length or reallocates, leaving the
//	         captured array untouched — so the alias stays valid unlocked.
//	build    (no lock)                  Compaction.Build copies the captured
//	         live rows and builds the replacement tree; searches and
//	         mutations proceed concurrently against the old tree.
//	install  (under the mutation lock)  Install swaps the tree in and
//	         reconciles the mutations that raced the build: captured handles
//	         deleted meanwhile become tombstones in the new tree, handles
//	         inserted meanwhile form the new buffer.
//
// The serving engine owns the schedule: it polls CompactionNeeded after
// mutations and runs one capture/build/install cycle at a time.

import (
	"p2h/internal/bctree"
	"p2h/internal/vec"
)

// Handles returns the number of handles ever issued (the row count,
// including deleted handles). The write-ahead log records it as the replay
// boundary between snapshot contents and logged mutations.
func (ix *Index) Handles() int { return ix.rows.N }

// SetCompactFraction overrides the compaction threshold after construction.
// The payload serialization predates the field, so the container layer
// restores it from the index's Spec (stored in the container header) through
// this setter.
func (ix *Index) SetCompactFraction(f float64) { ix.cfg.CompactFraction = f }

// SetBackgroundCompaction switches delta folding between synchronous (the
// default: Insert/Delete rebuild inline once the delta outgrows
// RebuildFraction) and background (mutations never rebuild; the caller
// drives BeginCompaction/Build/Install off-thread when CompactionNeeded).
func (ix *Index) SetBackgroundCompaction(on bool) { ix.background = on }

// CompactionNeeded reports whether the delta has outgrown the compaction
// threshold: CompactFraction of the live set, or RebuildFraction when
// CompactFraction is unset. Meaningful in background mode, where mutations
// no longer fold the delta themselves.
func (ix *Index) CompactionNeeded() bool {
	frac := ix.cfg.CompactFraction
	if frac <= 0 {
		frac = ix.cfg.RebuildFraction
	}
	treeLive := 0
	if ix.tree != nil {
		treeLive = len(ix.treeIDs) - ix.treeDel
	}
	delta := len(ix.buffer) + ix.treeDel
	if delta == 0 {
		return false
	}
	if treeLive == 0 {
		return len(ix.buffer) >= 2*bctree.DefaultLeafSize
	}
	return float64(delta) > frac*float64(ix.live)
}

// Compaction is one captured rebuild: the live handle set and row storage
// as of BeginCompaction, the built tree after Build.
type Compaction struct {
	ids     []int32     // live handles at capture, ascending
	rows    *vec.Matrix // alias of the captured row-storage prefix
	handles int         // ix.Handles() at capture
	tree    *bctree.Tree
}

// BeginCompaction captures the live set for an off-thread rebuild. It must
// run with mutations excluded (the serving engine's write lock, or single-
// threaded use). It returns nil when there is nothing to fold — no delta, or
// no live points (Install of an empty capture would be a pointless tree
// drop; callers reset trivially small indexes with Rebuild instead).
func (ix *Index) BeginCompaction() *Compaction {
	if ix.live == 0 || len(ix.buffer)+ix.treeDel == 0 {
		return nil
	}
	ids := make([]int32, 0, ix.live)
	for h, ok := range ix.alive {
		if ok {
			ids = append(ids, int32(h))
		}
	}
	return &Compaction{
		ids:     ids,
		rows:    &vec.Matrix{Data: ix.rows.Data[:ix.rows.N*ix.dim], N: ix.rows.N, D: ix.dim},
		handles: ix.rows.N,
	}
}

// Build constructs the replacement tree over the captured live set. It takes
// no locks and runs concurrently with searches and mutations; cfg is read
// from the owning index but is immutable after construction.
func (c *Compaction) Build(cfg Config) {
	sub := c.rows.SubsetRows(c.ids)
	c.tree = bctree.Build(sub, bctree.Config{LeafSize: cfg.LeafSize, Seed: cfg.Seed})
}

// Install swaps the built tree in, reconciling mutations that raced the
// build. It must run with mutations excluded, on the same index that issued
// the capture, after Build has completed.
//
// Correctness of the reconciliation: the new tree covers exactly the capture
// ids. A handle below the capture boundary that is live now was live at
// capture (handles are never resurrected), so it is in the tree; captured
// handles deleted since become tombstones. Every handle at or past the
// boundary was inserted during the build and forms the new buffer.
func (ix *Index) Install(c *Compaction) {
	if c == nil || c.tree == nil {
		panic("dynamic: Install of a nil or unbuilt compaction")
	}
	dead := 0
	for _, h := range c.ids {
		if !ix.alive[h] {
			dead++
		}
	}
	buffer := ix.buffer[:0]
	for h := c.handles; h < ix.rows.N; h++ {
		if ix.alive[h] {
			buffer = append(buffer, int32(h))
		}
	}
	ix.tree = c.tree
	ix.treeIDs = c.ids
	ix.treeDel = dead
	ix.buffer = buffer
}

// Compact runs one full capture/build/install cycle inline. It is the
// single-threaded form of the background cycle, used by tests and by callers
// without a serving engine; unlike Rebuild it exercises exactly the
// reconciliation path the engine uses.
func (ix *Index) Compact() bool {
	c := ix.BeginCompaction()
	if c == nil {
		return false
	}
	c.Build(ix.cfg)
	ix.Install(c)
	return true
}
