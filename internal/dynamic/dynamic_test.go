package dynamic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func liftedData(n, d int, seed int64) (*vec.Matrix, *vec.Matrix) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: d, Clusters: 6}, n, seed)
	raw = dataset.Dedup(raw)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 6, seed+1)
}

// reference is the naive mutable index the dynamic one must agree with.
type reference struct {
	rows  *vec.Matrix
	alive []bool
}

func newReference(d int) *reference {
	return &reference{rows: vec.NewMatrix(0, d)}
}

func (r *reference) insert(x []float32) int32 {
	h := int32(r.rows.N)
	r.rows.Data = append(r.rows.Data, x...)
	r.rows.N++
	r.alive = append(r.alive, true)
	return h
}

func (r *reference) delete(h int32) bool {
	if h < 0 || int(h) >= len(r.alive) || !r.alive[h] {
		return false
	}
	r.alive[h] = false
	return true
}

func (r *reference) search(q []float32, k int) []core.Result {
	tk := core.NewTopK(k)
	for i := 0; i < r.rows.N; i++ {
		if !r.alive[i] {
			continue
		}
		tk.Push(int32(i), vec.AbsDot(q, r.rows.Row(i)))
	}
	return tk.Results()
}

func sameDists(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9*(1+b[i].Dist) {
			return false
		}
	}
	return true
}

func TestNewValidations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, Config{})
}

func TestBulkLoadMatchesScan(t *testing.T) {
	data, queries := liftedData(700, 12, 1)
	ix := NewFromMatrix(data, Config{LeafSize: 30, Seed: 2})
	if ix.N() != data.N || ix.BufferLen() != 0 {
		t.Fatalf("bulk load state: %s", ix)
	}
	scan := linearscan.New(data)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		got, _ := ix.Search(q, core.SearchOptions{K: 5})
		want, _ := scan.Search(q, core.SearchOptions{K: 5})
		if !sameDists(got, want) {
			t.Fatalf("query %d: %v want %v", qi, got, want)
		}
	}
}

func TestInsertedPointIsFound(t *testing.T) {
	data, _ := liftedData(300, 8, 3)
	ix := NewFromMatrix(data, Config{Seed: 4})
	// A point on a known hyperplane: q = (e1; -5) passes through it.
	x := make([]float32, data.D)
	x[0] = 5
	x[data.D-1] = 1
	h := ix.Insert(x)
	q := make([]float32, data.D)
	q[0] = 1
	q[data.D-1] = -5
	res, _ := ix.Search(q, core.SearchOptions{K: 1})
	if res[0].ID != h || res[0].Dist > 1e-6 {
		t.Fatalf("inserted point not found: %v (handle %d)", res, h)
	}
}

func TestDeletedPointDisappears(t *testing.T) {
	data, queries := liftedData(400, 10, 5)
	ix := NewFromMatrix(data, Config{Seed: 6})
	q := queries.Row(0)
	before, _ := ix.Search(q, core.SearchOptions{K: 1})
	if !ix.Delete(before[0].ID) {
		t.Fatal("delete of live handle failed")
	}
	after, _ := ix.Search(q, core.SearchOptions{K: 1})
	if after[0].ID == before[0].ID {
		t.Fatal("deleted point still returned")
	}
	if ix.Delete(before[0].ID) {
		t.Fatal("double delete must report false")
	}
	if ix.Delete(-1) || ix.Delete(int32(data.N+500)) {
		t.Fatal("out-of-range delete must report false")
	}
}

func TestRebuildTriggersAndFoldsBuffer(t *testing.T) {
	data, _ := liftedData(1000, 8, 7)
	ix := NewFromMatrix(data, Config{Seed: 8, RebuildFraction: 0.1})
	x := make([]float32, data.D)
	x[data.D-1] = 1
	// Push well past the 10% delta threshold; the buffer must fold.
	for i := 0; i < 200; i++ {
		x[0] = float32(i)
		ix.Insert(x)
	}
	if ix.BufferLen() > 100 {
		t.Fatalf("buffer never folded: %d pending", ix.BufferLen())
	}
	if ix.N() != data.N+200 {
		t.Fatalf("live count %d", ix.N())
	}
}

func TestEmptyAndDrainedIndex(t *testing.T) {
	ix := New(4, Config{})
	q := []float32{1, 0, 0, -1}
	res, _ := ix.Search(q, core.SearchOptions{K: 3})
	if len(res) != 0 {
		t.Fatalf("empty index returned %v", res)
	}
	h := ix.Insert([]float32{1, 2, 3, 1})
	if got, ok := ix.Vector(h); !ok || got[0] != 1 {
		t.Fatal("vector lookup failed")
	}
	ix.Delete(h)
	if _, ok := ix.Vector(h); ok {
		t.Fatal("vector of deleted handle must not resolve")
	}
	res, _ = ix.Search(q, core.SearchOptions{K: 3})
	if len(res) != 0 {
		t.Fatalf("drained index returned %v", res)
	}
	ix.Rebuild() // explicit rebuild of an empty index must be a no-op
	if ix.N() != 0 {
		t.Fatal("rebuild resurrected points")
	}
}

func TestUserFilterComposesWithLiveness(t *testing.T) {
	data, queries := liftedData(500, 10, 9)
	ix := NewFromMatrix(data, Config{Seed: 10})
	q := queries.Row(0)
	even := func(h int32) bool { return h%2 == 0 }
	res, _ := ix.Search(q, core.SearchOptions{K: 10, Filter: even})
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: %v", r)
		}
	}
}

// TestQuickRandomOpsMatchReference: a random interleaving of inserts,
// deletes, and searches agrees with the naive reference index at every step.
func TestQuickRandomOpsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(6) + 3
		ix := New(d, Config{LeafSize: 10, Seed: seed, RebuildFraction: 0.2})
		ref := newReference(d)
		var handles []int32

		randVec := func() []float32 {
			x := make([]float32, d)
			for j := 0; j < d-1; j++ {
				x[j] = float32(rng.NormFloat64())
			}
			x[d-1] = 1
			return x
		}
		randQuery := func() []float32 {
			q := make([]float32, d)
			for j := range q {
				q[j] = float32(rng.NormFloat64())
			}
			return q
		}

		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(handles) == 0: // insert
				x := randVec()
				h1 := ix.Insert(x)
				h2 := ref.insert(x)
				if h1 != h2 {
					return false
				}
				handles = append(handles, h1)
			case op < 7: // delete a random known handle (possibly dead)
				h := handles[rng.Intn(len(handles))]
				if ix.Delete(h) != ref.delete(h) {
					return false
				}
			default: // search
				if ix.N() == 0 {
					continue
				}
				q := randQuery()
				got, _ := ix.Search(q, core.SearchOptions{K: 3})
				want := ref.search(q, 3)
				if !sameDists(got, want) {
					return false
				}
			}
			if ix.N() != func() int {
				n := 0
				for _, a := range ref.alive {
					if a {
						n++
					}
				}
				return n
			}() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
