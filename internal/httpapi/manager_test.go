package httpapi

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	p2h "p2h"
)

func managerFixture(t *testing.T) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	data := testMatrix(200, 6, 1)
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	return NewManager(p2h.ServerOptions{Workers: 2}, time.Second), dataPath
}

func TestManagerLoadGetUnload(t *testing.T) {
	m, dataPath := managerFixture(t)
	defer m.Close(context.Background())
	_, replaced, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false)
	if err != nil || replaced {
		t.Fatalf("Load: %v %v", replaced, err)
	}
	info, err := m.Get("a")
	if err != nil || info.Kind != p2h.KindBCTree || info.N != 200 || info.Dim != 6 {
		t.Fatalf("Get: %+v %v", info, err)
	}
	if m.Len() != 1 || len(m.List()) != 1 {
		t.Fatalf("Len/List: %d %v", m.Len(), m.List())
	}
	drained, err := m.Unload("a")
	if err != nil || !drained {
		t.Fatalf("Unload: %v %v", drained, err)
	}
	if _, err := m.Get("a"); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("Get after unload: %v", err)
	}
	if _, err := m.Unload("a"); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("double Unload: %v", err)
	}
}

func TestManagerReplaceSemantics(t *testing.T) {
	m, dataPath := managerFixture(t)
	defer m.Close(context.Background())
	if _, _, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBallTree}, Data: dataPath}, false); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("collision: %v", err)
	}
	loadInfo, replaced, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBallTree}, Data: dataPath}, true)
	if err != nil || !replaced {
		t.Fatalf("replace: %v %v", replaced, err)
	}
	// Load reports the index it installed, not a later table lookup.
	if loadInfo.Kind != p2h.KindBallTree || loadInfo.Name != "a" || loadInfo.N != 200 {
		t.Fatalf("Load info: %+v", loadInfo)
	}
	info, err := m.Get("a")
	if err != nil || info.Kind != p2h.KindBallTree {
		t.Fatalf("after replace: %+v %v", info, err)
	}
}

func TestManagerBadNames(t *testing.T) {
	m, dataPath := managerFixture(t)
	defer m.Close(context.Background())
	for _, name := range []string{"", "a/b", "a b", "héllo", string(make([]byte, 80))} {
		if _, _, err := m.Load(name, IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false); !errors.Is(err, ErrBadName) {
			t.Errorf("name %q: err %v, want ErrBadName", name, err)
		}
	}
}

// TestManagerUnloadWaitsForHolders: an unload cannot close an engine out
// from under a handler still holding the entry; the drain completes once the
// reference is released.
func TestManagerUnloadWaitsForHolders(t *testing.T) {
	m, dataPath := managerFixture(t)
	defer m.Close(context.Background())
	if _, _, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false); err != nil {
		t.Fatal(err)
	}
	e, err := m.acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	unloaded := make(chan bool, 1)
	go func() {
		drained, err := m.Unload("a")
		if err != nil {
			t.Error(err)
		}
		unloaded <- drained
	}()
	// While the reference is held, the entry is already invisible...
	deadline := time.After(2 * time.Second)
	for m.Len() != 0 {
		select {
		case <-deadline:
			t.Fatal("unload did not remove the entry")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// ...and the engine still serves the holder.
	q := make([]float32, 7)
	q[0] = 1
	if res, _ := e.srv.Search(q, p2h.SearchOptions{K: 1}); len(res) != 1 {
		t.Fatalf("held engine refused to serve: %v", res)
	}
	e.release()
	if drained := <-unloaded; !drained {
		t.Fatal("unload reported an abandoned engine despite a prompt release")
	}
}

// TestManagerUnloadTimesOutOnStuckHolder: a holder that never releases
// within the drain timeout yields drained=false instead of a hang.
func TestManagerUnloadTimesOutOnStuckHolder(t *testing.T) {
	dir := t.TempDir()
	data := testMatrix(100, 5, 2)
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	m := NewManager(p2h.ServerOptions{Workers: 1}, 50*time.Millisecond)
	if _, _, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false); err != nil {
		t.Fatal(err)
	}
	e, err := m.acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	drained, err := m.Unload("a")
	if err != nil || drained {
		t.Fatalf("Unload with stuck holder: drained=%v err=%v", drained, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Unload blocked far past the drain timeout")
	}
	e.release() // the abandoned engine closes in the background
}

func TestManagerClosedRejectsUse(t *testing.T) {
	m, dataPath := managerFixture(t)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, _, err := m.Load("a", IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}, false); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Load after Close: %v", err)
	}
	if _, err := m.acquire("a"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("acquire after Close: %v", err)
	}
}

// TestManagerInfoRacesMutation races the info/list/metrics read path (which
// probes a mutable index's size and footprint) against Insert/Delete
// traffic; run under -race it pins that Describe reads under the mutation
// lock rather than touching the bare index.
func TestManagerInfoRacesMutation(t *testing.T) {
	dir := t.TempDir()
	data := testMatrix(150, 5, 3)
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	m := NewManager(p2h.ServerOptions{Workers: 2}, time.Second)
	defer m.Close(context.Background())
	if _, _, err := m.Load("dyn", IndexConfig{
		// A small rebuild fraction so the mutation stream triggers tree
		// swaps, the state info() used to read unsynchronized.
		Spec: &p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 16, RebuildFraction: 0.05}, Data: dataPath,
	}, false); err != nil {
		t.Fatal(err)
	}
	e, err := m.acquire("dyn")
	if err != nil {
		t.Fatal(err)
	}
	defer e.release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		p := make([]float32, 5)
		for i := 0; i < 150; i++ {
			p[0] = float32(i)
			h, err := e.srv.Insert(p)
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if _, err := e.srv.Delete(h); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if infos := m.List(); len(infos) != 1 || infos[0].N < 150 {
			t.Fatalf("list mid-mutation: %+v", infos)
		}
		if _, err := m.Get("dyn"); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// TestManagerWALLifecycle walks the durability loop through the manager:
// load a dynamic container with a WAL attached, mutate, unload (the crash
// stand-in — the container file never sees the mutations), reload and find
// them replayed, snapshot and find the log truncated.
func TestManagerWALLifecycle(t *testing.T) {
	dir := t.TempDir()
	ix, err := p2h.New(testMatrix(50, 4, 3), p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dyn.idx")
	if err := p2h.SaveFile(path, ix); err != nil {
		t.Fatal(err)
	}
	m := NewManager(p2h.ServerOptions{Workers: 2, BackgroundCompaction: true}, time.Second)
	defer m.Close(context.Background())
	cfg := IndexConfig{Path: path, WAL: true, WALSync: "none"}

	info, _, err := m.Load("d", cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.WAL == nil || info.WAL.Sync != "none" || info.WAL.Records != 0 || info.WAL.Replayed != 0 {
		t.Fatalf("fresh WAL info: %+v", info.WAL)
	}

	e, err := m.acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.srv.Insert([]float32{1, 2, 3, float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := e.srv.Delete(0); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	e.release()
	info, err = m.Get("d")
	if err != nil || info.WAL.Records != 3 {
		t.Fatalf("after mutations: records=%d err=%v", info.WAL.Records, err)
	}

	// Unload without snapshotting: the mutations exist only in the log.
	if _, err := m.Unload("d"); err != nil {
		t.Fatal(err)
	}
	info, _, err = m.Load("d", cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.WAL.Replayed != 3 || info.WAL.Records != 3 || info.N != 51 {
		t.Fatalf("after reload: %+v n=%d", info.WAL, info.N)
	}

	// Snapshot truncates the log; a further reload replays nothing.
	e, err = m.acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.srv.Snapshot(path)
	e.release()
	if err != nil {
		t.Fatal(err)
	}
	info, err = m.Get("d")
	if err != nil || info.WAL.Records != 0 {
		t.Fatalf("after snapshot: records=%d err=%v", info.WAL.Records, err)
	}
	if _, err := m.Unload("d"); err != nil {
		t.Fatal(err)
	}
	info, _, err = m.Load("d", cfg, false)
	if err != nil || info.WAL.Replayed != 0 || info.N != 51 {
		t.Fatalf("after snapshot reload: %+v n=%d err=%v", info.WAL, info.N, err)
	}
}
