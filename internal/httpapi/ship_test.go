package httpapi

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// rawPost sends non-JSON bytes (container uploads) to the fixture daemon.
func (f *fixture) rawPost(t *testing.T, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := f.ts.Client().Post(f.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestContainerRestoreRoundTrip proves the two halves of snapshot shipping
// compose: the /container stream of one index restores under another name
// and answers queries byte-identically.
func TestContainerRestoreRoundTrip(t *testing.T) {
	f := newFixture(t)

	resp, err := f.ts.Client().Get(f.ts.URL + "/v1/indexes/trees/container")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("container answered %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-P2H-Kind"); got != "bctree" {
		t.Fatalf("X-P2H-Kind = %q, want bctree", got)
	}
	if n, _ := strconv.Atoi(resp.Header.Get("X-P2H-Points")); n != 300 {
		t.Fatalf("X-P2H-Points = %d, want 300", n)
	}
	if cl, _ := strconv.Atoi(resp.Header.Get("Content-Length")); cl != len(raw) {
		t.Fatalf("Content-Length %d but read %d bytes", cl, len(raw))
	}

	// Restore under a fresh name: 201, then an identical answer.
	status, body := f.rawPost(t, "/v1/indexes/copy/restore", raw)
	if status != http.StatusCreated {
		t.Fatalf("fresh restore answered %d: %s", status, body)
	}
	q := f.queries.Row(0)
	s1, a1 := f.do(t, http.MethodPost, "/v1/indexes/trees/search", SearchRequest{Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 10}})
	s2, a2 := f.do(t, http.MethodPost, "/v1/indexes/copy/search", SearchRequest{Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 10}})
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("search answered %d / %d", s1, s2)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatalf("restored copy answers differently:\n%s\nvs\n%s", a1, a2)
	}

	// Restoring again over the same name hot-swaps: 200.
	status, body = f.rawPost(t, "/v1/indexes/copy/restore", raw)
	if status != http.StatusOK {
		t.Fatalf("replacing restore answered %d: %s", status, body)
	}
	s3, a3 := f.do(t, http.MethodPost, "/v1/indexes/copy/search", SearchRequest{Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 10}})
	if s3 != http.StatusOK || !bytes.Equal(a1, a3) {
		t.Fatalf("post-swap search wrong: %d %s", s3, a3)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	f := newFixture(t)
	status, body := f.rawPost(t, "/v1/indexes/junk/restore", []byte("not a container"))
	if status != http.StatusBadRequest && status != http.StatusUnprocessableEntity {
		t.Fatalf("garbage restore answered %d: %s", status, body)
	}
	// The failed load must not have registered the name.
	status, _ = f.do(t, http.MethodGet, "/v1/indexes/junk", nil)
	if status != http.StatusNotFound {
		t.Fatalf("junk index exists after failed restore: %d", status)
	}
	// And the serving set is untouched.
	status, _ = f.do(t, http.MethodPost, "/v1/indexes/trees/search",
		SearchRequest{Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 3}})
	if status != http.StatusOK {
		t.Fatalf("trees broken after bad restore: %d", status)
	}
}

func TestContainerUnknownIndex(t *testing.T) {
	f := newFixture(t)
	resp, err := f.ts.Client().Get(f.ts.URL + "/v1/indexes/nope/container")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("container for unknown index answered %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "index_not_found") {
		t.Fatalf("unexpected error body: %s", raw)
	}
}
