// Package httpapi is the network-facing service layer of the library: a
// multi-index manager plus HTTP handlers that together turn p2h indexes into
// the p2hd daemon. The manager holds any number of named indexes — each one
// a p2h.Server standing over an index opened from a .p2h container or built
// from a declarative Spec — and supports hot load, hot swap and unload
// without restarting: a replacement index is built first, swapped in
// atomically, and the old engine is drained away once its in-flight requests
// finish. The handlers expose search, batched search, mutation, snapshot and
// admin endpoints plus Prometheus-format metrics, all stdlib-only.
package httpapi

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	p2h "p2h"
)

// Typed manager errors; the HTTP layer maps them onto status codes.
var (
	// ErrIndexNotFound reports a name with no loaded index.
	ErrIndexNotFound = errors.New("httpapi: no such index")
	// ErrIndexExists reports a Load of an already-used name without Replace.
	ErrIndexExists = errors.New("httpapi: index already loaded")
	// ErrBadName reports an index name outside [A-Za-z0-9._-]{1,64}.
	ErrBadName = errors.New("httpapi: invalid index name")
	// ErrBadConfig reports an IndexConfig that declares no index (or an
	// ambiguous one).
	ErrBadConfig = errors.New("httpapi: invalid index config")
	// ErrManagerClosed reports use of a manager after Close.
	ErrManagerClosed = errors.New("httpapi: manager closed")
)

// errBadRequest tags request-shape errors (malformed JSON, missing fields);
// the HTTP layer maps it to 400. errBodyTooLarge tags an over-limit body,
// mapped to 413.
var (
	errBadRequest   = errors.New("httpapi: bad request")
	errBodyTooLarge = errors.New("httpapi: request body too large")
)

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func checkName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("%w: %q (want 1-64 of [A-Za-z0-9._-])", ErrBadName, name)
	}
	return nil
}

// mutator matches the Insert/Delete surface of p2h.Dynamic.
type mutator interface {
	Insert(p []float32) int32
	Delete(handle int32) bool
}

// managed is one served index: the engine, its declaration, and a reference
// count that keeps the engine alive while handlers use it.
type managed struct {
	name    string
	srv     *p2h.Server
	cfg     IndexConfig
	kind    string
	dim     int
	mutable bool
	// wal is the index's write-ahead log, nil unless cfg.WAL attached one.
	// Owned by the entry: retirement closes it after the engine drains, so
	// no journaling append can race the close. replayed is the pending
	// record count the load-time replay consumed.
	wal      *p2h.WAL
	replayed int
	// refs counts handlers currently holding the entry. Retirement (unload,
	// hot swap, shutdown) first removes the entry from the table — so no new
	// reference can start — then waits for refs before draining the engine,
	// which makes "Search on closed engine" unreachable from the HTTP layer.
	refs sync.WaitGroup
}

func (e *managed) release() { e.refs.Done() }

// info snapshots the entry for the wire. N and IndexBytes are read live
// through Server.Describe — under the mutation lock — so the probe is safe
// while Insert/Delete traffic flows.
func (e *managed) info() IndexInfoResponse {
	n, bytes := e.srv.Describe()
	info := IndexInfoResponse{
		Name:       e.name,
		Kind:       e.kind,
		Dim:        e.dim,
		N:          n,
		IndexBytes: bytes,
		Mutable:    e.mutable,
		Stats:      toServerStatsJSON(e.srv.Stats()),
		Source:     e.cfg,
	}
	if e.wal != nil {
		info.WAL = &WALInfoJSON{
			Path:     e.wal.Path(),
			Sync:     e.wal.SyncMode().String(),
			Records:  e.wal.Records(),
			Replayed: e.replayed,
			Syncs:    e.wal.Syncs(),
		}
	}
	return info
}

// Manager holds the named indexes a daemon serves. All methods are safe for
// concurrent use.
type Manager struct {
	opts         p2h.ServerOptions
	drainTimeout time.Duration
	// spool is where container uploads (/restore) and transient snapshot
	// streams (/container) are written; empty selects os.TempDir(). Set
	// once via SetSpoolDir before serving.
	spool string

	// draining flips once BeginDrain (or Close) runs: /healthz answers 503
	// so load balancers stop routing while in-flight work still completes.
	// swapping counts hot-swap retirements in progress, for the same signal.
	draining atomic.Bool
	swapping atomic.Int64

	mu      sync.RWMutex
	indexes map[string]*managed
	closed  bool
	// SLO controller lifecycle (see controller.go); nil when not running.
	sloCfg  SLOConfig
	sloStop chan struct{}
	sloDone chan struct{}
}

// NewManager creates an empty manager. opts tunes every index's serving
// engine; drainTimeout bounds unload/swap/shutdown waits (non-positive:
// DefaultDrainTimeout).
func NewManager(opts p2h.ServerOptions, drainTimeout time.Duration) *Manager {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	return &Manager{
		opts:         opts,
		drainTimeout: drainTimeout,
		indexes:      make(map[string]*managed),
	}
}

// SetSpoolDir sets the directory restore uploads and transient container
// streams use (empty: os.TempDir()). Call it before the manager serves
// requests; it is not synchronized against in-flight handlers.
func (m *Manager) SetSpoolDir(dir string) { m.spool = dir }

// spoolDir resolves the spool directory, defaulting to the system temp dir.
func (m *Manager) spoolDir() string {
	if m.spool == "" {
		return os.TempDir()
	}
	return m.spool
}

// buildIndex materializes an IndexConfig into an index, plus the attached
// write-ahead log when the declaration asks for one. Untyped build
// failures (a spec its kind rejects, a spec with no data) are tagged
// ErrBadConfig — the declaration is at fault, not the daemon — while typed
// errors (unknown kind, dim mismatch, bad container, missing file) pass
// through for their own HTTP mapping.
//
// p2h.Open itself replays a pending sidecar log, so by the time AttachWAL
// runs the records are already in the index and it replays nothing — the
// replayed count reported on the wire is therefore probed from the log
// just before Open consumes it.
func buildIndex(cfg IndexConfig) (p2h.Index, *p2h.WAL, int, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, 0, err
	}
	pending := 0
	if cfg.WAL {
		if _, err := p2h.ParseWALSyncMode(cfg.WALSync); err != nil {
			return nil, nil, 0, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		n, err := p2h.CountWALRecords(p2h.WALPath(cfg.Path))
		if err != nil {
			return nil, nil, 0, err
		}
		pending = n
	}
	var ix p2h.Index
	var err error
	if cfg.Path != "" {
		ix, err = p2h.Open(cfg.Path)
	} else {
		var data *p2h.Matrix
		if cfg.Data != "" {
			if data, err = p2h.LoadFvecs(cfg.Data); err != nil {
				return nil, nil, 0, err
			}
		}
		ix, err = p2h.New(data, *cfg.Spec)
	}
	if err != nil {
		if !typedBuildError(err) {
			err = fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		return nil, nil, 0, err
	}
	if !cfg.WAL {
		return ix, nil, 0, nil
	}
	mode, _ := p2h.ParseWALSyncMode(cfg.WALSync)
	wal, err := p2h.AttachWAL(ix, p2h.WALPath(cfg.Path), mode)
	if err != nil {
		if !typedBuildError(err) {
			err = fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		return nil, nil, 0, err
	}
	return ix, wal, pending, nil
}

func typedBuildError(err error) bool {
	for _, typed := range []error{
		p2h.ErrUnknownKind, p2h.ErrDimMismatch, p2h.ErrZeroNormal, p2h.ErrFormat, fs.ErrNotExist,
	} {
		if errors.Is(err, typed) {
			return true
		}
	}
	return false
}

// Load stands up the index cfg declares under name. With replace set an
// existing index of that name is hot-swapped: the new one is built first
// (the old keeps serving), swapped in atomically, and the old engine retired
// in the background once its in-flight requests finish. Without replace an
// existing name is an error. It returns the new index's description — taken
// from the entry it just installed, so a concurrent unload or replace of
// the same name cannot make a successful load report someone else's index —
// and whether an index was replaced.
func (m *Manager) Load(name string, cfg IndexConfig, replace bool) (info IndexInfoResponse, replaced bool, err error) {
	if err := checkName(name); err != nil {
		return IndexInfoResponse{}, false, err
	}
	// Fail fast on a name collision before paying for a build. This check
	// is advisory (the authoritative one runs under the write lock below),
	// but it turns a doomed multi-second build into a microsecond 409.
	if !replace {
		m.mu.RLock()
		_, exists := m.indexes[name]
		m.mu.RUnlock()
		if exists {
			return IndexInfoResponse{}, false, fmt.Errorf("%w: %q", ErrIndexExists, name)
		}
	}
	// Build outside the lock: construction can take seconds and the old
	// index (if any) should serve through all of it.
	ix, wal, replayed, err := buildIndex(cfg)
	if err != nil {
		return IndexInfoResponse{}, false, err
	}
	opts := m.opts
	opts.WAL = wal
	_, mutable := ix.(mutator)
	e := &managed{
		name:     name,
		srv:      p2h.NewServer(ix, opts),
		cfg:      cfg,
		kind:     p2h.KindOf(ix),
		dim:      ix.Dim(),
		mutable:  mutable,
		wal:      wal,
		replayed: replayed,
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		e.srv.Close()
		return IndexInfoResponse{}, false, ErrManagerClosed
	}
	old := m.indexes[name]
	if old != nil && !replace {
		m.mu.Unlock()
		e.srv.Close()
		return IndexInfoResponse{}, false, fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	m.indexes[name] = e
	m.mu.Unlock()

	if old != nil {
		m.swapping.Add(1)
		go func() {
			defer m.swapping.Add(-1)
			m.retire(old)
		}()
	}
	return e.info(), old != nil, nil
}

// BeginDrain marks the daemon as draining: /healthz flips to 503 so load
// balancers stop routing new traffic, while everything already in flight —
// and any stragglers that still arrive — keeps being served. Call it before
// http.Server.Shutdown to turn connection resets into a clean handoff.
func (m *Manager) BeginDrain() { m.draining.Store(true) }

// Draining reports whether BeginDrain (or Close) has run.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Swapping reports whether any hot-swap is still retiring its old engine.
func (m *Manager) Swapping() bool { return m.swapping.Load() > 0 }

// Unload removes the named index and drains its engine, waiting up to the
// manager's drain timeout for in-flight requests. The index is gone from the
// table either way; drained reports whether the engine stopped cleanly
// within the bound.
func (m *Manager) Unload(name string) (drained bool, err error) {
	m.mu.Lock()
	e := m.indexes[name]
	if e == nil {
		m.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	delete(m.indexes, name)
	m.mu.Unlock()
	return m.retire(e), nil
}

// retire waits for the entry's in-flight handlers, then drains its engine,
// both bounded by the drain timeout. A false return means the engine was
// abandoned still running (a stuck worker); it holds no table slot and
// cannot receive new work.
func (m *Manager) retire(e *managed) (drained bool) {
	ctx, cancel := context.WithTimeout(context.Background(), m.drainTimeout)
	defer cancel()
	refsDone := make(chan struct{})
	go func() {
		e.refs.Wait()
		close(refsDone)
	}()
	select {
	case <-refsDone:
	case <-ctx.Done():
		// Handlers still hold the engine; draining now could panic them.
		// Leave the drain to whoever releases last — here we just abandon.
		go func() {
			e.refs.Wait()
			e.srv.Close()
			e.closeWAL()
		}()
		return false
	}
	drained = e.srv.Drain(ctx) == nil
	// The engine is stopped (or abandoned past the bound): no mutation can
	// reach the journal anymore, so the log can be closed. A mutation that
	// raced the drain either journaled before it or failed loudly.
	e.closeWAL()
	return drained
}

func (e *managed) closeWAL() {
	if e.wal != nil {
		_ = e.wal.Close()
	}
}

// acquire returns the named entry with its reference count raised; the
// caller must release() it when done. The engine cannot be closed while the
// reference is held.
func (m *Manager) acquire(name string) (*managed, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrManagerClosed
	}
	e := m.indexes[name]
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	e.refs.Add(1)
	return e, nil
}

// Get returns a live snapshot of the named index's description.
func (m *Manager) Get(name string) (IndexInfoResponse, error) {
	e, err := m.acquire(name)
	if err != nil {
		return IndexInfoResponse{}, err
	}
	defer e.release()
	return e.info(), nil
}

// List describes every loaded index, sorted by name.
func (m *Manager) List() []IndexInfoResponse {
	m.mu.RLock()
	entries := make([]*managed, 0, len(m.indexes))
	for _, e := range m.indexes {
		e.refs.Add(1)
		entries = append(entries, e)
	}
	m.mu.RUnlock()
	infos := make([]IndexInfoResponse, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, e.info())
		e.release()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Len reports the number of loaded indexes.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.indexes)
}

// Close retires every index and rejects further use. It waits — bounded by
// ctx on top of the per-index drain timeout — for the retirements to finish
// and reports the first context error, if any. Intended to run after the
// HTTP server has shut down, so no handler still holds a reference.
func (m *Manager) Close(ctx context.Context) error {
	m.draining.Store(true)
	m.stopSLO()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	entries := make([]*managed, 0, len(m.indexes))
	for _, e := range m.indexes {
		entries = append(entries, e)
	}
	m.indexes = make(map[string]*managed)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for _, e := range entries {
			wg.Add(1)
			go func(e *managed) {
				defer wg.Done()
				m.retire(e)
			}(e)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
